package daiet_test

import (
	"fmt"
	"testing"

	daiet "github.com/daiet/daiet"
)

func TestFacadeQuickstart(t *testing.T) {
	net, err := daiet.NewSingleSwitch(5)
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	reducer, mappers := hosts[4], hosts[:4]
	tree, err := net.InstallTree(reducer, mappers, daiet.TreeOptions{TableSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	col, err := net.NewCollector(reducer, daiet.AggSum, tree.RootChildren())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mappers {
		s, err := net.NewSender(m, reducer)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := s.Send([]byte(fmt.Sprintf("k%d", i)), 1); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if !col.Complete() {
		t.Fatal("incomplete")
	}
	res := col.Result()
	if len(res) != 10 {
		t.Fatalf("keys %d", len(res))
	}
	for k, v := range res {
		if v != 4 {
			t.Fatalf("%s = %d want 4", k, v)
		}
	}
	st := net.TreeStatsFor(tree.TreeID)
	if st.PairsIn != 40 || st.FlushesCompleted != 1 {
		t.Fatalf("tree stats %+v", st)
	}
}

func TestFacadeLeafSpineAndFatTree(t *testing.T) {
	ls, err := daiet.NewLeafSpine(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Hosts()) != 4 {
		t.Fatalf("leaf-spine hosts %d", len(ls.Hosts()))
	}
	ft, err := daiet.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Hosts()) != 16 {
		t.Fatalf("fat-tree hosts %d", len(ft.Hosts()))
	}
	if _, err := daiet.NewFatTree(3); err == nil {
		t.Fatal("odd k must fail")
	}
}

func TestFacadeErrors(t *testing.T) {
	net, err := daiet.NewSingleSwitch(3)
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	if _, err := net.NewSender(daiet.NodeID(0xFFFF), hosts[0]); err == nil {
		t.Fatal("unknown sender host must fail")
	}
	if _, err := net.NewCollector(daiet.NodeID(0xFFFF), daiet.AggSum, 1); err == nil {
		t.Fatal("unknown reducer host must fail")
	}
	if _, err := net.NewCollector(hosts[0], daiet.AggFuncID(99), 1); err == nil {
		t.Fatal("bad agg must fail")
	}
	if _, err := net.InstallTree(hosts[0], nil, daiet.TreeOptions{}); err == nil {
		t.Fatal("no mappers must fail")
	}
}

func TestFacadeUninstall(t *testing.T) {
	net, err := daiet.NewSingleSwitch(3)
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	tree, err := net.InstallTree(hosts[2], hosts[:2], daiet.TreeOptions{TableSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	net.UninstallTree(tree)
	if st := net.TreeStatsFor(tree.TreeID); st.PairsIn != 0 {
		t.Fatalf("stats after uninstall %+v", st)
	}
	// Reinstall works.
	if _, err := net.InstallTree(hosts[2], hosts[:2], daiet.TreeOptions{TableSize: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReliableTreeUnderLoss(t *testing.T) {
	net, err := daiet.NewSingleSwitch(4, daiet.Config{
		Seed: 3,
		Link: daiet.LinkConfig{LossProb: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	reducer, mappers := hosts[3], hosts[:3]
	tree, err := net.InstallReliableTree(reducer, mappers, daiet.TreeOptions{TableSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	col, err := net.NewCollector(reducer, daiet.AggSum, tree.RootChildren())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mappers {
		s, err := net.NewReliableSender(m, reducer, daiet.ReliableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := s.Send([]byte(fmt.Sprintf("k%02d", i)), 2); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	// Loss also affects the reducer's link here (facade applies one link
	// config fabric-wide): flush packets may be lost, so the collector may
	// come up short — but the switch-side aggregation must be exact.
	if err := net.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	st := net.TreeStatsFor(tree.TreeID)
	if st.PairsIn != 150 {
		t.Fatalf("switch saw %d pairs want 150 (dups filtered)", st.PairsIn)
	}
	if st.DupsDropped == 0 && st.GapsDropped == 0 {
		t.Fatal("no retransmission filtering at 8% loss")
	}
	_ = col
}

func TestFacadeDrainTree(t *testing.T) {
	net, err := daiet.NewSingleSwitch(3)
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	tree, err := net.InstallTree(hosts[2], hosts[:2], daiet.TreeOptions{TableSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range hosts[:2] {
		s, _ := net.NewSender(m, hosts[2])
		_ = s.Send([]byte("orphan"), 21)
		s.Flush() // no End: the round never completes
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	kvs, err := net.DrainTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Key != "orphan" || kvs[0].Value != 42 {
		t.Fatalf("drained %+v", kvs)
	}
}

func TestFacadeTracing(t *testing.T) {
	net, err := daiet.NewSingleSwitch(2)
	if err != nil {
		t.Fatal(err)
	}
	rings := net.EnableTracing(32)
	if len(rings) != 1 {
		t.Fatalf("rings %d", len(rings))
	}
	hosts := net.Hosts()
	tree, err := net.InstallTree(hosts[1], hosts[:1], daiet.TreeOptions{TableSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	_ = tree
	s, _ := net.NewSender(hosts[0], hosts[1])
	_ = s.Send([]byte("x"), 1)
	s.End()
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ring := range rings {
		if ring.Total() == 0 {
			t.Fatal("no events traced")
		}
	}
}

func TestFacadeReliableTreeMultiLevel(t *testing.T) {
	// Reliable trees on a multi-switch fabric: aggregation-level switches
	// must accept their child switches' sequenced flush streams through the
	// in-order gate (regression: child-switch traffic must not be dropped
	// as "unknown sender").
	net, err := daiet.NewLeafSpine(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	mappers := hosts[:4] // leaves 0 and 1
	reducer := hosts[4]  // leaf 2
	tree, err := net.InstallReliableTree(reducer, mappers, daiet.TreeOptions{TableSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.SwitchNodes) < 3 {
		t.Fatalf("tree only spans %d switches", len(tree.SwitchNodes))
	}
	col, err := net.NewCollector(reducer, daiet.AggSum, tree.RootChildren())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mappers {
		s, err := net.NewReliableSender(m, reducer, daiet.ReliableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if err := s.Send([]byte(fmt.Sprintf("k%02d", i)), 3); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if !col.Complete() {
		t.Fatalf("multi-level reliable tree incomplete: %+v", col.Stats)
	}
	for i := 0; i < 40; i++ {
		if got := col.Result()[fmt.Sprintf("k%02d", i)]; got != 12 {
			t.Fatalf("k%02d = %d want 12", i, got)
		}
	}
	st := net.TreeStatsFor(tree.TreeID)
	if st.UnknownSender != 0 {
		t.Fatalf("switch-child traffic dropped as unknown: %+v", st)
	}
	if st.AcksOut == 0 {
		t.Fatal("no ACKs emitted")
	}
}
