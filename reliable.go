package daiet

import (
	"fmt"
	"sort"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/trace"
)

// This file exposes the extensions through the façade: the loss-recovery
// protocol (the paper's stated future work), control-plane tree draining,
// and per-switch event tracing.

// Re-exported extension types.
type (
	// ReliableSender is the loss-tolerant worker endpoint (go-back-N over
	// DAIET sequence numbers; see internal/core/reliable.go).
	ReliableSender = core.ReliableSender
	// ReliableConfig tunes window, RTO, retry budget and round epoch.
	ReliableConfig = core.ReliableConfig
	// AckMux routes switch ACKs to a worker's reliable senders.
	AckMux = core.AckMux
	// TraceRing is a bounded ring of switch pipeline events.
	TraceRing = trace.Ring
	// TraceEvent is one recorded pipeline event.
	TraceEvent = trace.Event
)

// InstallReliableTree is InstallTree with the loss-recovery gate enabled:
// the tree's switches accept each mapper's packets in sequence order,
// acknowledge cumulatively, and de-duplicate retransmissions, keeping
// aggregation exactly-once. Use NewReliableSender for the worker side.
func (n *Network) InstallReliableTree(reducer NodeID, mappers []NodeID, opt TreeOptions) (*TreePlan, error) {
	if opt.Agg == 0 {
		opt.Agg = AggSum
	}
	if opt.TableSize == 0 {
		opt.TableSize = 16384
	}
	plan, err := n.Controller.PlanTree(reducer, mappers)
	if err != nil {
		return nil, err
	}
	// Each switch's valid senders are its own tree children: mappers on
	// edge switches, upstream switches on aggregation levels (their flush
	// streams are sequenced too, so the in-order gate passes them).
	childrenOf := make(map[NodeID][]uint32)
	for child, parent := range plan.Parent {
		childrenOf[parent] = append(childrenOf[parent], uint32(child))
	}
	// Sender tables in sorted order: plan.Parent is a map, and table order
	// must not inherit its randomized iteration order (the controller's
	// InstallTree applies the same contract).
	for _, kids := range childrenOf {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}
	installed := make([]NodeID, 0, len(plan.SwitchNodes))
	for _, sw := range plan.SwitchNodes {
		prog := n.Programs[sw]
		if prog == nil {
			n.rollbackTrees(plan, installed)
			return nil, fmt.Errorf("daiet: no program on switch %d", sw)
		}
		err := prog.ConfigureTree(core.TreeConfig{
			TreeID:    plan.TreeID,
			OutPort:   n.Fabric.PortTo(sw, plan.Parent[sw]),
			Children:  plan.Children[sw],
			Agg:       opt.Agg,
			TableSize: opt.TableSize,
			SpillCap:  opt.SpillCap,
			Reliable:  true,
			Senders:   childrenOf[sw],
		})
		if err != nil {
			n.rollbackTrees(plan, installed)
			return nil, err
		}
		installed = append(installed, sw)
	}
	n.plans[plan.TreeID] = plan
	return plan, nil
}

func (n *Network) rollbackTrees(plan *controller.TreePlan, switches []NodeID) {
	for _, sw := range switches {
		n.Programs[sw].RemoveTree(plan.TreeID)
	}
}

// NewReliableSender creates the loss-tolerant counterpart of NewSender and
// registers it on the worker's ACK mux (created on first use).
func (n *Network) NewReliableSender(worker, reducer NodeID, cfg ReliableConfig) (*ReliableSender, error) {
	h := n.hosts[worker]
	if h == nil {
		return nil, fmt.Errorf("daiet: %d is not a host", worker)
	}
	s, err := core.NewReliableSender(h, uint32(reducer), reducer,
		n.cfg.Geometry, n.cfg.MaxPairsPerPacket, cfg)
	if err != nil {
		return nil, err
	}
	if n.muxes == nil {
		n.muxes = make(map[NodeID]*AckMux)
	}
	mux, ok := n.muxes[worker]
	if !ok {
		mux = core.NewAckMux(h)
		n.muxes[worker] = mux
	}
	mux.Register(s)
	return s, nil
}

// DrainTree reads back and clears every pair still held in the tree's
// switch registers — the control-plane recovery path for cancelled or
// reconfigured jobs. Pairs are returned per switch in tree order.
func (n *Network) DrainTree(plan *TreePlan) ([]KV, error) {
	var out []KV
	for _, sw := range plan.SwitchNodes {
		prog := n.Programs[sw]
		if prog == nil {
			continue
		}
		kvs, err := prog.DrainTree(plan.TreeID)
		if err != nil {
			return out, err
		}
		out = append(out, kvs...)
	}
	return out, nil
}

// EnableTracing attaches a fresh event ring of the given capacity to every
// switch and returns the rings keyed by switch ID.
func (n *Network) EnableTracing(capacity int) map[NodeID]*TraceRing {
	out := make(map[NodeID]*TraceRing, len(n.Programs))
	for id, prog := range n.Programs {
		ring := trace.NewRing(capacity)
		prog.Switch().Trace = ring
		out[id] = ring
	}
	return out
}
