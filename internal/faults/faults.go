// Package faults is the deterministic fault-injection subsystem: scripted
// or randomly-drawn fault schedules — link down/up, switch crash/restart
// (losing all in-flight dataplane aggregation state), host stragglers with
// pause/resume — applied to a netsim fabric at quiescent control points.
//
// The paper's prototype assumes the network behaves ("we do not address
// the issue of packet losses"); this package makes the opposite assumption
// concrete so every experiment can become a family of failure-mode
// scenarios. Two properties are load-bearing:
//
//   - Determinism: a Schedule is pure data, Generate is a pure function of
//     its seed, and events are applied in a canonical order at virtual
//     times — so a fault run is as reproducible as a fault-free one, and
//     byte-identical at any Network partition count (-sim-workers).
//   - Quiescent application: the Injector mutates link, switch, and host
//     state only between Network.RunUntil windows, when no event-engine
//     domain goroutine is executing. That is exactly how an out-of-band
//     control plane behaves, and it is what keeps partitioned runs
//     conformant — fault application never races a domain heap.
//
// The control loop a driver runs (see mapreduce.RunJobFT):
//
//	for {
//	    t := next control time (earliest pending fault, liveness poll, ...)
//	    nw.RunUntil(t)      // fabric quiescent at virtual time t
//	    inj.ApplyDue(t)     // inject faults due at t
//	    monitor.Poll(t)     // control plane reacts (failover, reinstall)
//	}
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/netsim"
)

// Kind enumerates fault event types.
type Kind int

// Fault kinds. Down/crash/pause events are paired with a later up/restart/
// resume event by Generate; hand-written schedules may leave a component
// failed forever.
const (
	LinkDown Kind = iota
	LinkUp
	SwitchCrash
	SwitchRestart
	HostPause
	HostResume
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchCrash:
		return "switch-crash"
	case SwitchRestart:
		return "switch-restart"
	case HostPause:
		return "host-pause"
	case HostResume:
		return "host-resume"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault. Link events use A and B (endpoint order
// irrelevant); switch and host events use Node.
type Event struct {
	At   netsim.Time
	Kind Kind
	Node netsim.NodeID
	A, B netsim.NodeID
}

// String renders the event for logs and failure messages.
func (e Event) String() string {
	if e.Kind == LinkDown || e.Kind == LinkUp {
		return fmt.Sprintf("%v %s %d<->%d", e.At, e.Kind, e.A, e.B)
	}
	return fmt.Sprintf("%v %s %d", e.At, e.Kind, e.Node)
}

// Schedule is a fault script. Apply order is canonical: (At, Kind, Node,
// A, B) — independent of construction order, so two schedules with the
// same events behave identically.
type Schedule []Event

// Sort orders the schedule canonically in place and returns it.
func (s Schedule) Sort() Schedule {
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i], s[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return s
}

// GenConfig parameterizes a randomly-drawn schedule. The zero Horizon is
// invalid; counts of zero draw no events of that kind.
type GenConfig struct {
	Seed    uint64
	Horizon netsim.Time // fault onsets land in [Horizon/20, Horizon]

	SwitchCrashes  int // crash+restart pairs, uniform over switches
	LinkFlaps      int // down+up pairs, uniform over links
	HostStragglers int // pause+resume pairs, uniform over hosts

	// Downtime bounds for the failed interval of every pair. Defaults:
	// [Horizon/8, Horizon/2].
	MinDowntime netsim.Time
	MaxDowntime netsim.Time
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MinDowntime == 0 {
		c.MinDowntime = c.Horizon / 8
	}
	if c.MaxDowntime == 0 {
		c.MaxDowntime = c.Horizon / 2
	}
	if c.MinDowntime < 1 {
		c.MinDowntime = 1
	}
	if c.MaxDowntime < c.MinDowntime {
		c.MaxDowntime = c.MinDowntime
	}
	return c
}

// Generate draws a random schedule over the given component sets: each
// fault picks a uniform target, a uniform onset within the horizon, and a
// bounded downtime, always pairing the failure with its recovery event.
// The result is a pure function of cfg and the component lists.
func Generate(cfg GenConfig, switches, hosts []netsim.NodeID, links [][2]netsim.NodeID) (Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: non-positive horizon %v", cfg.Horizon)
	}
	if cfg.SwitchCrashes > 0 && len(switches) == 0 {
		return nil, fmt.Errorf("faults: %d switch crashes requested, no switches", cfg.SwitchCrashes)
	}
	if cfg.LinkFlaps > 0 && len(links) == 0 {
		return nil, fmt.Errorf("faults: %d link flaps requested, no links", cfg.LinkFlaps)
	}
	if cfg.HostStragglers > 0 && len(hosts) == 0 {
		return nil, fmt.Errorf("faults: %d stragglers requested, no hosts", cfg.HostStragglers)
	}
	rng := rand.New(rand.NewSource(int64(hashing.Mix64(cfg.Seed ^ 0xfa0175))))
	onset := func() netsim.Time {
		lo := cfg.Horizon / 20
		if lo < 1 {
			lo = 1
		}
		return lo + netsim.Time(rng.Int63n(int64(cfg.Horizon-lo)+1))
	}
	downtime := func() netsim.Time {
		return cfg.MinDowntime + netsim.Time(rng.Int63n(int64(cfg.MaxDowntime-cfg.MinDowntime)+1))
	}
	// Per-target failed intervals: two overlapping pairs on one component
	// would let the earlier pair's recovery cut the later pair's downtime
	// short, so the schedule would under-deliver the configured fault
	// load. Draws that overlap are redrawn (deterministically).
	type target struct {
		kind Kind
		id   [2]netsim.NodeID
	}
	type interval struct{ from, to netsim.Time }
	busy := make(map[target][]interval)
	place := func(tg target) (netsim.Time, netsim.Time, error) {
		for attempt := 0; attempt < 64; attempt++ {
			from := onset()
			to := from + downtime()
			overlaps := false
			for _, iv := range busy[tg] {
				if from <= iv.to && iv.from <= to {
					overlaps = true
					break
				}
			}
			if overlaps {
				continue
			}
			busy[tg] = append(busy[tg], interval{from, to})
			return from, to, nil
		}
		return 0, 0, fmt.Errorf("faults: cannot place %d %v faults without overlap within horizon %v",
			len(busy[tg])+1, tg.kind, cfg.Horizon)
	}
	var s Schedule
	for i := 0; i < cfg.SwitchCrashes; i++ {
		sw := switches[rng.Intn(len(switches))]
		at, end, err := place(target{kind: SwitchCrash, id: [2]netsim.NodeID{sw}})
		if err != nil {
			return nil, err
		}
		s = append(s,
			Event{At: at, Kind: SwitchCrash, Node: sw},
			Event{At: end, Kind: SwitchRestart, Node: sw})
	}
	for i := 0; i < cfg.LinkFlaps; i++ {
		l := links[rng.Intn(len(links))]
		at, end, err := place(target{kind: LinkDown, id: l})
		if err != nil {
			return nil, err
		}
		s = append(s,
			Event{At: at, Kind: LinkDown, A: l[0], B: l[1]},
			Event{At: end, Kind: LinkUp, A: l[0], B: l[1]})
	}
	for i := 0; i < cfg.HostStragglers; i++ {
		h := hosts[rng.Intn(len(hosts))]
		at, end, err := place(target{kind: HostPause, id: [2]netsim.NodeID{h}})
		if err != nil {
			return nil, err
		}
		s = append(s,
			Event{At: at, Kind: HostPause, Node: h},
			Event{At: end, Kind: HostResume, Node: h})
	}
	return s.Sort(), nil
}

// SwitchTarget is what the injector needs from a crashable switch;
// core.Program implements it. Crash returns the number of aggregated
// pairs resident in switch memory at the moment of failure — the partial
// aggregates a recovery protocol must re-drive.
type SwitchTarget interface {
	Crash() (lostPairs int)
	Restart()
}

// HostTarget is what the injector needs from a straggler-capable host;
// transport.Host implements it.
type HostTarget interface {
	Pause()
	Resume()
}

// Stats counts applied fault events.
type Stats struct {
	Applied   int
	LostPairs int // aggregates resident in crashed switches, summed
}

// Injector applies a schedule to a fabric. All mutation happens in
// ApplyDue, which the driver calls only while the network is quiescent
// (between RunUntil windows) — see the package comment for the contract.
type Injector struct {
	nw       *netsim.Network
	sched    Schedule
	next     int
	switches map[netsim.NodeID]SwitchTarget
	hosts    map[netsim.NodeID]HostTarget

	// OnCrash, when set, observes each switch crash and its lost-pair
	// count (the job driver records which trees lost state).
	OnCrash func(sw netsim.NodeID, lostPairs int)

	Stats Stats
}

// NewInjector builds an injector over a canonical copy of the schedule.
func NewInjector(nw *netsim.Network, sched Schedule,
	switches map[netsim.NodeID]SwitchTarget, hosts map[netsim.NodeID]HostTarget) *Injector {

	return &Injector{
		nw:       nw,
		sched:    append(Schedule(nil), sched...).Sort(),
		switches: switches,
		hosts:    hosts,
	}
}

// NextAt returns the virtual time of the earliest unapplied event.
func (inj *Injector) NextAt() (netsim.Time, bool) {
	if inj.next >= len(inj.sched) {
		return 0, false
	}
	return inj.sched[inj.next].At, true
}

// Done reports whether every event has been applied.
func (inj *Injector) Done() bool { return inj.next >= len(inj.sched) }

// ApplyDue applies every event with At <= now, in canonical order. The
// network must be quiescent (its clocks at now). Unknown targets are
// configuration errors.
func (inj *Injector) ApplyDue(now netsim.Time) error {
	for inj.next < len(inj.sched) && inj.sched[inj.next].At <= now {
		ev := inj.sched[inj.next]
		inj.next++
		if err := inj.apply(ev); err != nil {
			return err
		}
		inj.Stats.Applied++
	}
	return nil
}

func (inj *Injector) apply(ev Event) error {
	switch ev.Kind {
	case LinkDown:
		return inj.nw.SetLinkState(ev.A, ev.B, false)
	case LinkUp:
		return inj.nw.SetLinkState(ev.A, ev.B, true)
	case SwitchCrash:
		t, ok := inj.switches[ev.Node]
		if !ok {
			return fmt.Errorf("faults: %s: unknown switch", ev)
		}
		lost := t.Crash()
		inj.Stats.LostPairs += lost
		if inj.OnCrash != nil {
			inj.OnCrash(ev.Node, lost)
		}
	case SwitchRestart:
		t, ok := inj.switches[ev.Node]
		if !ok {
			return fmt.Errorf("faults: %s: unknown switch", ev)
		}
		t.Restart()
	case HostPause:
		t, ok := inj.hosts[ev.Node]
		if !ok {
			return fmt.Errorf("faults: %s: unknown host", ev)
		}
		t.Pause()
	case HostResume:
		t, ok := inj.hosts[ev.Node]
		if !ok {
			return fmt.Errorf("faults: %s: unknown host", ev)
		}
		t.Resume()
	default:
		return fmt.Errorf("faults: %s: unknown kind", ev)
	}
	return nil
}
