package faults

import (
	"fmt"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/netsim"
)

func genFixture(seed uint64) (Schedule, error) {
	switches := []netsim.NodeID{100, 101}
	hosts := []netsim.NodeID{1, 2, 3}
	links := [][2]netsim.NodeID{{1, 100}, {2, 100}, {3, 101}, {100, 101}}
	return Generate(GenConfig{
		Seed:           seed,
		Horizon:        netsim.Duration(time.Millisecond),
		SwitchCrashes:  2,
		LinkFlaps:      2,
		HostStragglers: 1,
	}, switches, hosts, links)
}

func TestGenerateDeterministicAndPaired(t *testing.T) {
	a, err := genFixture(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := genFixture(7)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c, err := genFixture(8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != 10 { // every fault is a (failure, recovery) pair
		t.Fatalf("schedule has %d events, want 10", len(a))
	}
	// Canonical order and pairing: every failure has a later recovery on
	// the same target.
	recovery := map[Kind]Kind{SwitchCrash: SwitchRestart, LinkDown: LinkUp, HostPause: HostResume}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule out of order at %d: %v", i, a)
		}
	}
	for _, ev := range a {
		rk, isFailure := recovery[ev.Kind]
		if !isFailure {
			continue
		}
		found := false
		for _, other := range a {
			if other.Kind == rk && other.Node == ev.Node && other.A == ev.A &&
				other.B == ev.B && other.At > ev.At {
				found = true
			}
		}
		if !found {
			t.Fatalf("failure %v has no recovery in %v", ev, a)
		}
	}
	// Per-target failed intervals never overlap: an overlapping pair's
	// recovery would cut the other pair's downtime short. Drawn over many
	// seeds to make collisions likely without the redraw logic.
	for seed := uint64(0); seed < 20; seed++ {
		s, err := genFixture(seed)
		if err != nil {
			t.Fatal(err)
		}
		type tgt struct {
			k         Kind
			n, la, lb netsim.NodeID
		}
		open := map[tgt]bool{}
		for _, ev := range s { // canonical order: scan for nested failures
			key := tgt{k: ev.Kind, n: ev.Node, la: ev.A, lb: ev.B}
			switch ev.Kind {
			case SwitchCrash, LinkDown, HostPause:
				if open[key] {
					t.Fatalf("seed %d: overlapping fault intervals on %v:\n%v", seed, ev, s)
				}
				open[key] = true
			case SwitchRestart:
				delete(open, tgt{k: SwitchCrash, n: ev.Node})
			case LinkUp:
				delete(open, tgt{k: LinkDown, la: ev.A, lb: ev.B})
			case HostResume:
				delete(open, tgt{k: HostPause, n: ev.Node})
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1, Horizon: 0}, nil, nil, nil); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Generate(GenConfig{Seed: 1, Horizon: 100, SwitchCrashes: 1}, nil, nil, nil); err == nil {
		t.Fatal("crashes without switches accepted")
	}
}

// fakeSwitch / fakeHost record injector calls.
type fakeSwitch struct {
	down    bool
	crashes int
	lost    int
}

func (f *fakeSwitch) Crash() int { f.down = true; f.crashes++; return f.lost }
func (f *fakeSwitch) Restart()   { f.down = false }

type fakeHost struct{ paused bool }

func (f *fakeHost) Pause()  { f.paused = true }
func (f *fakeHost) Resume() { f.paused = false }

func TestInjectorAppliesInOrder(t *testing.T) {
	nw := netsim.New(1)
	a, b := &nopNode{}, &nopNode{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, netsim.LinkConfig{})

	sw := &fakeSwitch{lost: 17}
	host := &fakeHost{}
	sched := Schedule{
		{At: 300, Kind: SwitchRestart, Node: 2},
		{At: 100, Kind: SwitchCrash, Node: 2},
		{At: 100, Kind: LinkDown, A: 1, B: 2},
		{At: 200, Kind: HostPause, Node: 1},
		{At: 400, Kind: LinkUp, A: 1, B: 2},
		{At: 400, Kind: HostResume, Node: 1},
	}
	var crashedAt netsim.NodeID
	inj := NewInjector(nw, sched,
		map[netsim.NodeID]SwitchTarget{2: sw},
		map[netsim.NodeID]HostTarget{1: host})
	inj.OnCrash = func(id netsim.NodeID, lost int) { crashedAt = id; _ = lost }

	if at, ok := inj.NextAt(); !ok || at != 100 {
		t.Fatalf("NextAt = %v %v", at, ok)
	}
	if err := inj.ApplyDue(150); err != nil {
		t.Fatal(err)
	}
	if !sw.down || nw.LinkUp(1, 2) || crashedAt != 2 {
		t.Fatalf("state after t=150: sw.down=%v linkUp=%v crashedAt=%d",
			sw.down, nw.LinkUp(1, 2), crashedAt)
	}
	if err := inj.ApplyDue(350); err != nil {
		t.Fatal(err)
	}
	if sw.down || !host.paused {
		t.Fatalf("state after t=350: sw.down=%v paused=%v", sw.down, host.paused)
	}
	if inj.Done() {
		t.Fatal("injector done with events pending")
	}
	if err := inj.ApplyDue(400); err != nil {
		t.Fatal(err)
	}
	if !inj.Done() || !nw.LinkUp(1, 2) || host.paused {
		t.Fatalf("final state: done=%v linkUp=%v paused=%v", inj.Done(), nw.LinkUp(1, 2), host.paused)
	}
	if inj.Stats.Applied != 6 || inj.Stats.LostPairs != 17 {
		t.Fatalf("stats %+v", inj.Stats)
	}
}

func TestInjectorUnknownTarget(t *testing.T) {
	nw := netsim.New(1)
	inj := NewInjector(nw, Schedule{{At: 1, Kind: SwitchCrash, Node: 9}}, nil, nil)
	if err := inj.ApplyDue(5); err == nil {
		t.Fatal("unknown switch target accepted")
	}
}

// nopNode satisfies netsim.Node.
type nopNode struct{}

func (*nopNode) Attach(*netsim.Network, netsim.NodeID) {}
func (*nopNode) HandleFrame(int, []byte)               {}
