package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 3; i++ {
		r.Record(Event{Kind: KindRx, A: int64(i)})
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	for i, ev := range snap {
		if ev.A != int64(i) || ev.Seq != uint64(i) {
			t.Fatalf("snapshot[%d] = %+v", i, ev)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{A: int64(i)})
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if snap[0].A != 6 || snap[3].A != 9 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(Event{A: 1})
	r.Record(Event{A: 2})
	if r.Len() != 1 || r.Snapshot()[0].A != 2 {
		t.Fatal("capacity-1 fallback broken")
	}
}

func TestRingDumpFormat(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Node: 5, Kind: KindDrop, A: 2, Note: "parse error"})
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"node=5", "drop", "parse error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q: %s", want, out)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{Kind: KindTx})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total %d", r.Total())
	}
	if r.Len() != 128 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindRx, KindTx, KindDrop, KindRecirculate, KindEmit, KindCustom} {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("missing name for %d", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind format")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("drops")
	c.Add(3)
	if reg.Counter("drops") != c {
		t.Fatal("counter identity")
	}
	if c.Value() != 3 || c.Name() != "drops" {
		t.Fatalf("counter %s=%d", c.Name(), c.Value())
	}
	reg.Counter("tx").Add(1)
	seen := map[string]uint64{}
	reg.Each(func(c *Counter) { seen[c.Name()] = c.Value() })
	if seen["drops"] != 3 || seen["tx"] != 1 {
		t.Fatalf("each: %v", seen)
	}
	var sb strings.Builder
	reg.Dump(&sb)
	if !strings.Contains(sb.String(), "drops 3") {
		t.Fatalf("dump: %s", sb.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("shared").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 4000 {
		t.Fatalf("value %d", got)
	}
}
