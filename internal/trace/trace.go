// Package trace provides a bounded, allocation-light event recorder for
// the dataplane: a fixed-capacity ring of recent events plus monotonic
// counters, the kind of always-on observability an operator needs when a
// switch program misbehaves in production. Recording is O(1), never grows,
// and the ring can be dumped at any time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Event is one recorded occurrence. Fields are fixed-size to keep the ring
// allocation-free after construction.
type Event struct {
	Seq  uint64 // global sequence number
	Node uint32 // originating node
	Kind Kind
	A, B int64 // kind-specific values (port, size, ...)
	Note string
}

// Kind classifies events.
type Kind uint8

// Event kinds recorded by the dataplane adapter.
const (
	KindRx Kind = iota + 1
	KindTx
	KindDrop
	KindRecirculate
	KindEmit
	KindCustom
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRx:
		return "rx"
	case KindTx:
		return "tx"
	case KindDrop:
		return "drop"
	case KindRecirculate:
		return "recirc"
	case KindEmit:
		return "emit"
	case KindCustom:
		return "custom"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Ring is a fixed-capacity circular event buffer, safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
}

// NewRing creates a ring holding the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Ring) Record(ev Event) {
	r.mu.Lock()
	ev.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// Len returns how many events are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total returns how many events were ever recorded.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	var out []Event
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	for s := start; s < r.next; s++ {
		out = append(out, r.buf[s%n])
	}
	return out
}

// Dump writes the retained events to w, oldest first.
func (r *Ring) Dump(w io.Writer) {
	for _, ev := range r.Snapshot() {
		fmt.Fprintf(w, "#%-8d node=%d %-7s a=%-6d b=%-6d %s\n",
			ev.Seq, ev.Node, ev.Kind, ev.A, ev.B, ev.Note)
	}
}

// Counter is a named monotonic counter, safe for concurrent use.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Registry holds named counters; lookups create on demand.
type Registry struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*Counter)} }

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.m[name]
	if !ok {
		c = &Counter{name: name}
		r.m[name] = c
	}
	return c
}

// Each visits all counters in ascending name order, so dumps and any
// derived fingerprints are deterministic.
func (r *Registry) Each(fn func(*Counter)) {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.m))
	for _, c := range r.m {
		counters = append(counters, c)
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name() < counters[j].Name() })
	for _, c := range counters {
		fn(c)
	}
}

// Dump writes "name value" lines for every counter.
func (r *Registry) Dump(w io.Writer) {
	r.Each(func(c *Counter) {
		fmt.Fprintf(w, "%s %d\n", c.Name(), c.Value())
	})
}
