// Package wallclock forbids reading the host's real clock inside
// simulation packages. Every reproduced figure depends on runs being
// byte-identical across machines, -sim-workers settings and reruns;
// time.Now and friends leak wall time into that closed world.
//
// Scope: every package under an internal/ path segment, except the
// declared wall-time packages (the experiment runner and bench formatter,
// which measure real elapsed time as volatile metrics, and the real-socket
// UDP runtime, whose deadlines are genuinely wall-clock). A measurement
// site inside a sim package must either route through an injected clock or
// carry a //simlint:wallclock <reason> annotation naming the volatile
// metric it feeds.
package wallclock

import (
	"go/ast"
	"go/types"
	"slices"

	"github.com/daiet/daiet/internal/analysis/framework"
)

// allowedPackages are the import-path segments (package directory names)
// where wall-clock access is the package's declared business.
var allowedPackages = []string{
	"runner",   // measures real wall time per trial (volatile wall_ms metrics)
	"benchfmt", // formats those wall-time measurements
	"udprt",    // real UDP sockets: OS deadlines are wall time by nature
}

// banned are the time-package identifiers that read or wait on the real
// clock. Pure value types and arithmetic (time.Duration, time.Microsecond)
// remain free.
var banned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep/...) in internal/ sim packages; " +
		"measurement sites must use an injected clock or a reasoned //simlint:wallclock annotation",
	Run: run,
}

func run(pass *framework.Pass) error {
	segs := pass.PathSegments()
	if !slices.Contains(segs, "internal") {
		return nil
	}
	if slices.Contains(allowedPackages, pass.LastSegment()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if banned[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s in a sim package breaks run-to-run byte identity; "+
						"use the event engine's virtual clock, inject a measurement clock, "+
						"or annotate the declared-volatile site with //simlint:wallclock <reason>",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
