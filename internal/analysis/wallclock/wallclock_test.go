package wallclock_test

import (
	"testing"

	"github.com/daiet/daiet/internal/analysis/analysistest"
	"github.com/daiet/daiet/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wallclock.Analyzer,
		"daiet/internal/clockuser", "daiet/internal/runner", "daiet/cmdtool",
		"daiet/internal/telemetry")
}
