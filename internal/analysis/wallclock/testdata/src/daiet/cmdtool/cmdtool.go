// Package cmdtool has no internal/ path segment: the analyzer does not
// apply outside the simulator's internal tree.
package cmdtool

import "time"

func freeOutsideInternal() time.Time { return time.Now() }
