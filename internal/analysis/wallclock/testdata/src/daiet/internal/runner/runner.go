// Package runner is on the wallclock allowlist (it measures real elapsed
// time as volatile metrics): nothing here is a finding.
package runner

import "time"

func measureTrial(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
