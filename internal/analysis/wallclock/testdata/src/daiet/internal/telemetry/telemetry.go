// Package telemetry mirrors the real recorder package: probes must stamp
// records with VIRTUAL time from the simulation clock — a wall-clock read
// here would make the exported timeline differ run-to-run and
// machine-to-machine, breaking the byte-identity contract. The analyzer
// must flag every real-clock read; sim-time arithmetic stays free.
package telemetry

import "time"

// Record is a cut-down timeline record.
type Record struct {
	At   int64 // virtual nanoseconds
	Wall time.Time
}

// Recorder samples gauges on a fixed sim-clock cadence.
type Recorder struct {
	records []Record
}

// sample is the tempting mistake: stamping a probe sample with the host
// clock instead of the node's virtual clock.
func (r *Recorder) sample(simNow int64) {
	r.records = append(r.records, Record{
		At:   simNow,
		Wall: time.Now(), // want `wall-clock time\.Now in a sim package`
	})
}

// flushLatency measures with the host clock — also a finding.
func (r *Recorder) flushLatency(started time.Time) time.Duration {
	return time.Since(started) // want `wall-clock time\.Since in a sim package`
}

// cadence arithmetic uses only time.Duration values and never reads the
// clock, so it stays free.
func (r *Recorder) nextDeadline(now int64, cadence time.Duration) int64 {
	return now + int64(cadence/time.Nanosecond)
}
