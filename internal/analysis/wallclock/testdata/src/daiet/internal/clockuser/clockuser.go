// Package clockuser sits under an internal/ path segment and is not on
// the wall-clock allowlist: every real-clock read is a finding.
package clockuser

import "time"

func badReads() {
	_ = time.Now()                 // want `wall-clock time\.Now in a sim package`
	_ = time.Since(time.Time{})    // want `wall-clock time\.Since in a sim package`
	time.Sleep(time.Millisecond)   // want `wall-clock time\.Sleep in a sim package`
	<-time.After(time.Millisecond) // want `wall-clock time\.After in a sim package`
	_ = time.NewTimer(time.Second) // want `wall-clock time\.NewTimer in a sim package`
}

// Pure time arithmetic and value types never read the clock and stay free.
func goodArithmetic(d time.Duration) time.Duration {
	deadline := 5 * time.Microsecond
	if d > deadline {
		return d.Round(time.Millisecond)
	}
	var t time.Time
	_ = t.IsZero()
	return time.Duration(42)
}

// A declared-volatile measurement site carries a reasoned suppression.
func measuredSite() time.Time {
	return time.Now() //simlint:wallclock feeds the declared-volatile wall_ms metric only
}
