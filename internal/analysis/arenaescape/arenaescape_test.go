package arenaescape_test

import (
	"testing"

	"github.com/daiet/daiet/internal/analysis/analysistest"
	"github.com/daiet/daiet/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenaescape.Analyzer,
		"netsim")
}
