// Package netsim is a hermetic stand-in for the real event engine: the
// same type names (frameArena, fnArena, event, mail) and helper names, so
// the type-name-driven ownership rules bind exactly as they do in the
// real package.
package netsim

type Node interface{ HandleFrame(port int, frame []byte) }

type NodeID uint64

type Time int64

// frameArena and fnArena mirror the real slab arenas.
type frameArena struct {
	node []Node
	port []int32
	buf  [][]byte
	free []int32
	live int
	peak int
}

type fnArena struct {
	fn    []func()
	owner []NodeID
	live  int
}

type event struct {
	at   Time
	src  uint64
	seq  uint64
	slot int32
	exec uint32
}

type mail struct {
	at    Time
	src   uint64
	seq   uint64
	dst   NodeID
	node  Node
	port  int32
	frame []byte
}

type Engine struct {
	frames frameArena
	fns    fnArena
	events []event
	origin uint64
	now    Time
}

// Arena methods may touch their own internals freely.
func (a *frameArena) alloc(n Node, port int32, frame []byte) int32 {
	a.node = append(a.node, n)
	a.port = append(a.port, port)
	a.buf = append(a.buf, frame)
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	return int32(len(a.node) - 1)
}

func (a *frameArena) take(slot int32) (Node, int32, []byte) {
	n, port, frame := a.node[slot], a.port[slot], a.buf[slot]
	a.node[slot] = nil
	a.buf[slot] = nil
	a.free = append(a.free, slot)
	a.live--
	return n, port, frame
}

// The scheduling helpers are the slot's only birthplaces.
func (e *Engine) scheduleFrame(at Time, src, seq uint64, dst NodeID, n Node, port int32, frame []byte) {
	slot := e.frames.alloc(n, port, frame)
	e.events = append(e.events, event{at: at, src: src, seq: seq, slot: slot, exec: uint32(dst)})
}

func (e *Engine) Step() {
	ev := e.events[0]
	e.events = e.events[1:]
	if ev.slot >= 0 {
		n, port, frame := e.frames.take(ev.slot)
		if n != nil {
			n.HandleFrame(int(port), frame)
		}
	}
}

// ArenaStats aggregates occupancy — reads are allowed here, including
// through its closure.
func (e *Engine) ArenaStats() int {
	total := 0
	add := func() {
		total += e.frames.live + e.fns.live
	}
	add()
	return total
}

// send is the only mail producer.
func (e *Engine) send(at Time, dst NodeID, n Node, port int32, frame []byte, box *[]mail) {
	*box = append(*box, mail{at: at, src: e.origin, dst: dst, node: n, port: port, frame: frame})
}

// flushMail re-slots mail through the handoff helper and may zero records.
func (e *Engine) flushMail(box []mail) {
	for i, m := range box {
		e.scheduleFrame(m.at, m.src, m.seq, m.dst, m.node, m.port, m.frame)
		box[i] = mail{}
	}
}

// badPeek retains an arena-owned payload past delivery: the slot recycles
// and the "kept" frame becomes a different packet.
func (e *Engine) badPeek(slot int32) []byte {
	return e.frames.buf[slot] // want `frameArena internals accessed outside the engine's helpers`
}

// badTimerSteal reaches into the callback arena.
func (e *Engine) badTimerSteal(slot int32) func() {
	return e.fns.fn[slot] // want `fnArena internals accessed outside the engine's helpers`
}

// badSlotStash stores a live slot for later use — dangling once the event
// fires.
func (e *Engine) badSlotStash() int32 {
	return e.events[0].slot // want `event arena slot used outside the scheduling helpers`
}

// badEventForge builds a slot-carrying event outside the helpers.
func (e *Engine) badEventForge(at Time, slot int32) {
	e.events = append(e.events, event{at: at, slot: slot}) // want `event with an arena slot constructed outside the scheduling helpers`
}

// badMailForge fabricates a cross-domain record, bypassing the handoff.
func (e *Engine) badMailForge(dst NodeID, frame []byte) mail {
	return mail{dst: dst, frame: frame} // want `cross-domain mail record constructed outside send/flushMail`
}

// goodEventNoSlot: slotless event literals (heap sentinels, tests) are
// fine anywhere.
func (e *Engine) goodEventNoSlot(at Time) {
	e.events = append(e.events, event{at: at, src: e.origin})
}

// goodZeroMail: zeroing a record is GC hygiene, not construction.
func goodZeroMail(box []mail) {
	for i := range box {
		box[i] = mail{}
	}
}

// suppressedPeek keeps the escape hatch working.
func (e *Engine) suppressedPeek(slot int32) []byte {
	return e.frames.buf[slot] //simlint:arenaescape debug-only inspection behind a build tag
}
