// Package arenaescape enforces the frame-arena ownership rule that makes
// the zero-alloc event hot path safe (see internal/netsim/arena.go): an
// arena slot is owned by exactly one engine from alloc to take, payloads
// pass by-reference exactly once (Send -> arena -> HandleFrame), and
// cross-domain frames travel as mail records that re-enter an arena only
// through Engine.scheduleFrame at the barrier. Code that reaches into
// arena storage from anywhere else can retain a frame pointer past its
// delivery — the slot gets recycled and the "retained" frame silently
// becomes a different packet — or smuggle a slot across a domain boundary,
// where it indexes the wrong engine's arena.
//
// The analyzer is type-name driven and flags, in the hot packages (netsim,
// dataplane, telemetry — whose hop sampler sees raw frame bytes), three
// escapes:
//
//   - touching frameArena/fnArena internals outside the engine's own
//     helpers (the arenas' methods, the scheduling/step/migration
//     functions, and ArenaStats),
//   - constructing or dereferencing an event's arena slot outside those
//     helpers (a stored slot is dangling the moment the event fires), and
//   - constructing a cross-domain mail record outside send/flushMail (the
//     only legal path back into an arena is the scheduleFrame handoff).
package arenaescape

import (
	"go/ast"
	"go/types"
	"slices"

	"github.com/daiet/daiet/internal/analysis/framework"
)

// hotPackages are the import-path leaf names the ownership rule governs.
var hotPackages = []string{"netsim", "dataplane", "telemetry"}

// arenaTypes are the slab-arena types whose internals are engine-private.
var arenaTypes = []string{"frameArena", "fnArena"}

// arenaFuncs may touch arena internals and event slots: the scheduling
// helpers (slot birth), Step/eventOwner (slot death/inspection), the
// re-cut migration pair, and the stats aggregator.
var arenaFuncs = []string{
	"scheduleOwned", "scheduleFrame", "Step", "eventOwner",
	"extractMoved", "adopt", "ArenaStats",
}

// mailFuncs may construct cross-domain mail records: send (the only
// producer) and flushMail (the barrier consumer, which zeroes slots).
var mailFuncs = []string{"send", "flushMail"}

var Analyzer = &framework.Analyzer{
	Name: "arenaescape",
	Doc: "flag code touching frame-arena internals, event slots, or cross-domain mail records " +
		"outside the engine's own handoff helpers; arena slots are owned alloc-to-take",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !slices.Contains(hotPackages, pass.LastSegment()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc inspects one function body. FuncLits inherit their enclosing
// declaration's allowance (ArenaStats aggregates via a closure).
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	arenaOK := slices.Contains(arenaFuncs, fd.Name.Name) || receiverIsArena(pass, fd)
	mailOK := slices.Contains(mailFuncs, fd.Name.Name)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !arenaOK && isNamed(exprType(pass, n.X), arenaTypes...) {
				pass.Reportf(n.Sel.Pos(),
					"%s internals accessed outside the engine's helpers; slots are owned alloc-to-take — schedule through Engine.scheduleFrame/Schedule",
					typeName(exprType(pass, n.X)))
			}
			if !arenaOK && n.Sel.Name == "slot" && isNamed(exprType(pass, n.X), "event") {
				pass.Reportf(n.Sel.Pos(),
					"event arena slot used outside the scheduling helpers; a retained slot dangles once the event fires")
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if !arenaOK && isNamed(t, "event") && setsField(n, "slot") {
				pass.Reportf(n.Pos(),
					"event with an arena slot constructed outside the scheduling helpers; use Engine.scheduleFrame/Schedule")
			}
			if !mailOK && isNamed(t, "mail") && len(n.Elts) > 0 {
				pass.Reportf(n.Pos(),
					"cross-domain mail record constructed outside send/flushMail; frames re-enter an arena only via Engine.scheduleFrame")
			}
		}
		return true
	})
}

// setsField reports whether the composite literal assigns the named field,
// positionally or by key.
func setsField(lit *ast.CompositeLit, field string) bool {
	for i, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: every field is set once any element is.
			_ = i
			return true
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return true
		}
	}
	return false
}

// receiverIsArena reports whether fd is a method on one of the arena
// types (their own alloc/take/bytes helpers).
func receiverIsArena(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isNamed(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type, arenaTypes...)
}

// exprType resolves e's static type (identifiers introduced by := resolve
// through their object).
func exprType(pass *framework.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isNamed reports whether t (or its pointee) is a named type with one of
// the given local names.
func isNamed(t types.Type, names ...string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return slices.Contains(names, named.Obj().Name())
}

// typeName renders t's local name for diagnostics.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
