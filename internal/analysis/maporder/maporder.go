// Package maporder flags `range` over a map whose body has order-sensitive
// effects: scheduling events, appending to slices that outlive the loop,
// sending on channels, writing output, or feeding a hash/fingerprint. Go
// randomizes map iteration order per run, so any such loop injects
// nondeterminism directly into event order, metric rows, reports or
// per-node trace fingerprints — the exact artifacts the conformance suite
// pins byte-identical across -sim-workers settings.
//
// The approved shape is to materialize and sort the keys first, then range
// over the sorted slice. The analyzer recognizes the collect-then-sort
// idiom: an append target that is later passed to a sort.* or slices.*
// call inside the same function is not a finding. Genuinely commutative
// map loops (counting, summing into scalars, building another map) are
// order-free and never flagged. Anything else needs either sorted keys or
// a reasoned //simlint:maporder annotation.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/daiet/daiet/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body schedules events, appends to outer slices, writes " +
		"output or feeds a hash — map order is randomized; iterate sorted keys instead",
	Run: run,
}

// sinkPrefixes match callee names that make iteration order observable.
var sinkPrefixes = []string{
	"Schedule", "Send", "Emit", "Write", "Print", "Fprint",
	"Hash", "Fingerprint", "Encode", "Marshal",
}

// sinkExact are exact callee names with the same property.
var sinkExact = map[string]bool{
	"After": true, "NodeAfter": true, "Sum": true, "Sum64": true, "Mix64": true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedObjects(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := orderSink(pass, rng, sorted); sink != "" {
					pass.Reportf(rng.Pos(),
						"iteration over map %s is order-sensitive (%s) but Go randomizes map "+
							"order; range over sorted keys, or annotate //simlint:maporder <reason>",
						exprString(rng.X), sink)
				}
				return true
			})
		}
	}
	return nil
}

// sortedObjects collects every object passed (as an argument root) to a
// sort.* or slices.* call anywhere in the function body: appends into
// these are the sanctioned collect-then-sort idiom. Sortedness propagates
// through range loops — when the element variable of `for _, v := range c`
// is sorted, the container c is treated as sorted too (the per-bucket
// pattern `for _, list := range kids { sort.Slice(list, ...) }`).
func sortedObjects(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.Value == nil {
				return true
			}
			vid, ok := rng.Value.(*ast.Ident)
			if !ok || !out[pass.TypesInfo.ObjectOf(vid)] {
				return true
			}
			if id := rootIdent(rng.X); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && !out[obj] {
					out[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return out
}

// orderSink scans the range body for the first order-sensitive effect and
// describes it; "" means the body looked commutative.
func orderSink(pass *framework.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) string {
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.ObjectOf(lhs)
					if obj == nil || sorted[obj] {
						continue // collected keys that get sorted below
					}
					if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
						sink = "appends to " + lhs.Name + ", which outlives the loop unsorted"
					}
				case *ast.IndexExpr, *ast.SelectorExpr:
					if id := rootIdent(lhs); id != nil {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil && sorted[obj] {
							continue // collected into a container sorted after the loop
						}
					}
					sink = "appends to state that outlives the loop"
				}
			}
		case *ast.CallExpr:
			if name := calleeName(n); name != "" && isSinkName(name) {
				sink = "calls " + name
			}
		}
		return true
	})
	return sink
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return builtin
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isSinkName(name string) bool {
	if sinkExact[name] {
		return true
	}
	for _, p := range sinkPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "expression"
}
