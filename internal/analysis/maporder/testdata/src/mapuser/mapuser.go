// Package mapuser exercises maporder: map iteration with order-sensitive
// effects is a finding; commutative loops and the collect-then-sort idiom
// are not.
package mapuser

import (
	"fmt"
	"sort"
)

func badAppendOutlives(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration over map m is order-sensitive \(appends to keys`
		keys = append(keys, k)
	}
	return keys
}

func badChannelSend(m map[int]int, ch chan int) {
	for k := range m { // want `order-sensitive \(sends on a channel\)`
		ch <- k
	}
}

type engine struct{}

func (engine) Schedule(at int, fn func()) {}

func badSchedules(m map[int]func(), eng engine) {
	for k, fn := range m { // want `order-sensitive \(calls Schedule\)`
		eng.Schedule(k, fn)
	}
}

func badWritesOutput(m map[string]int) {
	for k, v := range m { // want `order-sensitive \(calls Println\)`
		fmt.Println(k, v)
	}
}

// The sanctioned shape: collect keys, sort, then walk the sorted slice.
func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Commutative bodies — counting, summing, building another map — are
// order-free and never flagged.
func goodCommutative(m map[string]int) (int, map[int]string) {
	total := 0
	inverse := map[int]string{}
	for k, v := range m {
		total += v
		inverse[v] = k
	}
	return total, inverse
}

// Per-bucket sort after the loop: sortedness propagates from the element
// variable back to the container.
func goodBucketsSortedLater(m map[int][]int, buckets map[int][]int) {
	for k, vs := range m {
		buckets[k] = append(buckets[k], vs...)
	}
	for _, list := range buckets {
		sort.Ints(list)
	}
}

// Ranging over a slice is always fine, whatever the body does.
func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// A reasoned suppression waives a deliberate unordered walk.
func suppressedWalk(m map[string]int) {
	//simlint:maporder fixture output is a debug dump with no determinism contract
	for k := range m {
		fmt.Println(k)
	}
}
