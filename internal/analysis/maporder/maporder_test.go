package maporder_test

import (
	"testing"

	"github.com/daiet/daiet/internal/analysis/analysistest"
	"github.com/daiet/daiet/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "mapuser")
}
