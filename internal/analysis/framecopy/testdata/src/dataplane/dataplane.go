// Package dataplane plays a hot-path package for framecopy: by-value
// traffic in structs >= 128 bytes is a finding.
package dataplane

// PHV is 48*8 + 32*4 = 512 bytes — two orders of magnitude over threshold.
type PHV struct {
	Slots [48]uint64
	Bytes [32][4]byte
}

// Hdr is 16 bytes — well under threshold, always free.
type Hdr struct {
	Src, Dst uint64
}

func badParam(p PHV) uint64 { // want `parameter passes dataplane\.PHV \(512 bytes\) by value`
	return p.Slots[0]
}

func (p PHV) badReceiver() uint64 { // want `parameter passes dataplane\.PHV \(512 bytes\) by value`
	return p.Slots[0]
}

func badCopies(src *PHV, pool []PHV) {
	local := *src  // want `assignment copies dataplane\.PHV \(512 bytes\)`
	again := local // want `assignment copies dataplane\.PHV \(512 bytes\)`
	_ = again
	for _, f := range pool { // want `range copies dataplane\.PHV \(512 bytes\) per element`
		_ = f.Slots[1]
	}
}

func goodPointerParam(p *PHV) uint64 {
	return p.Slots[0]
}

func goodConstructionAndSmall(h Hdr) PHV {
	fresh := PHV{}
	copyOfSmall := h
	_ = copyOfSmall
	for i := range make([]PHV, 2) {
		_ = i
	}
	return fresh
}

func suppressedCopy(src *PHV) PHV {
	snapshot := *src //simlint:framecopy cold path: one snapshot per trial for the report
	return snapshot
}
