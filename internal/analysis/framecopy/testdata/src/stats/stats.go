// Package stats is off the hot path: large by-value structs are fine here.
package stats

type Wide struct {
	Rows [64]uint64
}

func freeOffHotPath(w Wide) Wide {
	again := w
	return again
}
