// Package framecopy guards the hot-path economics of the simulator's
// frame-context structs. The dataplane Ctx (a full PHV: 48 integer slots,
// 32 byte slots) and its peers are pooled and passed by pointer precisely
// so that per-packet work never memmoves a kilobyte — the same discipline
// PR 5's ring-buffer admission rewrite bought on the netsim side. A stray
// by-value parameter or dereference copy silently reintroduces that cost
// (and, for structs carrying pool or ring state, aliases accounting that
// must stay unique).
//
// The analyzer flags, inside the hot packages (netsim, dataplane, core,
// transport, telemetry), any by-value traffic in structs at or over the size
// threshold: function parameters, copy assignments (x := y, x := *p), and
// range-value copies. Composite-literal construction and function-call
// results are not copies and stay free.
package framecopy

import (
	"go/ast"
	"go/types"
	"slices"

	"github.com/daiet/daiet/internal/analysis/framework"
)

// Threshold is the struct size, in bytes, from which by-value copies are
// flagged. 128 B clears every config struct in the tree while catching
// PHV-sized contexts by two orders of magnitude.
const Threshold = 128

// hotPackages are the import-path leaf names on the per-frame path.
var hotPackages = []string{"netsim", "dataplane", "core", "transport", "telemetry"}

var Analyzer = &framework.Analyzer{
	Name: "framecopy",
	Doc: "flag by-value copies of large frame/ctx structs (>= 128 bytes) in hot-path packages; " +
		"pass pooled contexts by pointer",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !slices.Contains(hotPackages, pass.LastSegment()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, n.Recv)
				checkFieldList(pass, n.Type.Params)
			case *ast.FuncLit:
				checkFieldList(pass, n.Type.Params)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to blank compiles to nothing: not a copy.
					if i < len(n.Lhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkCopyExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyExpr(pass, v)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if name, size, ok := largeStruct(pass, exprType(pass, n.Value)); ok {
						pass.Reportf(n.Value.Pos(),
							"range copies %s (%d bytes) per element; iterate by index or over pointers",
							name, size)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkFieldList(pass *framework.Pass, params *ast.FieldList) {
	if params == nil {
		return
	}
	for _, field := range params.List {
		if name, size, ok := largeStruct(pass, pass.TypesInfo.Types[field.Type].Type); ok {
			pass.Reportf(field.Type.Pos(),
				"parameter passes %s (%d bytes) by value on the hot path; take *%s",
				name, size, name)
		}
	}
}

// checkCopyExpr flags expressions whose evaluation copies a large struct:
// plain reads (identifier, selector, index) and pointer dereferences.
// Composite literals are construction and calls already returned a value;
// neither is an avoidable copy at this site.
func checkCopyExpr(pass *framework.Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if name, size, ok := largeStruct(pass, pass.TypesInfo.Types[rhs].Type); ok {
		pass.Reportf(rhs.Pos(),
			"assignment copies %s (%d bytes) on the hot path; keep a pointer instead",
			name, size)
	}
}

// exprType resolves e's type, falling back to the defined object for
// idents introduced by := (range variables live in Defs, not Types).
func exprType(pass *framework.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// largeStruct reports whether t is a struct type at or over Threshold,
// with a printable name and its size.
func largeStruct(pass *framework.Pass, t types.Type) (string, int64, bool) {
	if t == nil || pass.Sizes == nil {
		return "", 0, false
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return "", 0, false
	}
	size := pass.Sizes.Sizeof(t)
	if size < Threshold {
		return "", 0, false
	}
	name := t.String()
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			name = obj.Pkg().Name() + "." + obj.Name()
		} else {
			name = obj.Name()
		}
	}
	return name, size, true
}
