package framecopy_test

import (
	"testing"

	"github.com/daiet/daiet/internal/analysis/analysistest"
	"github.com/daiet/daiet/internal/analysis/framecopy"
)

func TestFramecopy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), framecopy.Analyzer,
		"dataplane", "stats")
}
