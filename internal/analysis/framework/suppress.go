package framework

import (
	"go/token"
	"strings"
)

// Suppression grammar: a comment of the form
//
//	//simlint:<analyzer> <reason>
//
// waives findings of that analyzer. An end-of-line suppression covers its
// own line; a suppression alone on a line covers the next line. The reason
// is mandatory — a bare //simlint:<analyzer> does not suppress anything
// and is itself reported, so every waived invariant carries a recorded
// justification in the source.
type suppression struct {
	pos      token.Pos
	file     string
	line     int  // line the comment sits on
	ownLine  bool // nothing but whitespace precedes the comment on its line
	analyzer string
	reason   string
}

// targetLine is the source line whose findings this suppression waives.
func (s suppression) targetLine() int {
	if s.ownLine {
		return s.line + 1
	}
	return s.line
}

// parseSuppressions extracts every //simlint: directive in the unit.
func parseSuppressions(unit *Package) []suppression {
	var sups []suppression
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//simlint:")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(text, " ")
				pos := unit.Fset.Position(c.Slash)
				sups = append(sups, suppression{
					pos:      c.Slash,
					file:     pos.Filename,
					line:     pos.Line,
					ownLine:  unit.onlyCommentOnLine(pos),
					analyzer: strings.TrimSpace(name),
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return sups
}

// onlyCommentOnLine reports whether nothing but whitespace precedes the
// comment starting at pos on its source line.
func (u *Package) onlyCommentOnLine(pos token.Position) bool {
	src, ok := u.Srcs[pos.Filename]
	if !ok {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// applySuppressions filters diags through the unit's //simlint: comments.
// active is the set of analyzer names that actually ran; knownNames, when
// non-empty, is the full registry (directives naming analyzers outside it
// are reported as findings — typos must not silently waive nothing).
func applySuppressions(unit *Package, diags []Diagnostic, active, knownNames map[string]bool) []Diagnostic {
	sups := parseSuppressions(unit)
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == d.Analyzer && s.reason != "" &&
				s.file == d.Position.Filename && s.targetLine() == d.Position.Line {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		switch {
		case len(knownNames) > 0 && !knownNames[s.analyzer]:
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Position: unit.Fset.Position(s.pos),
				Analyzer: "simlint",
				Message:  "suppression names unknown analyzer " + s.analyzer,
			})
		case active[s.analyzer] && s.reason == "":
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Position: unit.Fset.Position(s.pos),
				Analyzer: s.analyzer,
				Message:  "suppression without a reason: write //simlint:" + s.analyzer + " <why>",
			})
		}
	}
	return out
}
