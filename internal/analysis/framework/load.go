package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked compilation unit ready for analysis: either
// a package together with its in-package _test.go files, or the external
// "_test" package of a directory.
type Package struct {
	Path  string // import path; external test units get a "_test" suffix
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Srcs  map[string][]byte // filename -> raw source, for suppression layout checks
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Loader parses and type-checks packages from source using only the
// standard library. Imports — both standard-library and module-internal —
// resolve through go/importer's source importer, which type-checks the
// imported package's sources on first use and caches the result, so a
// whole-repository lint pays for each dependency once.
//
// Loaders are not safe for concurrent use; the underlying source importer
// shares caches without locking.
type Loader struct {
	fset  *token.FileSet
	imp   types.ImporterFrom
	sizes types.Sizes

	// FixtureRoot, when non-empty, resolves imports from
	// <FixtureRoot>/src/<importpath> before consulting the real importer,
	// so analyzer testdata can be hermetic: a fixture package may import a
	// stand-in sibling (e.g. a fake "netsim") that exists only under
	// testdata. Fixture units load without their _test.go files and are
	// cached per import path.
	FixtureRoot string
	fixtures    map[string]*Package
}

// NewLoader returns a Loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	l := &Loader{
		fset:     fset,
		sizes:    sizes,
		fixtures: map[string]*Package{},
	}
	l.imp = fixtureImporter{
		l:    l,
		next: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	return l
}

// fixtureImporter tries the loader's fixture tree first, then falls back
// to the source importer (standard library and real module packages).
type fixtureImporter struct {
	l    *Loader
	next types.ImporterFrom
}

func (i fixtureImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i fixtureImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := i.l
	if l.FixtureRoot != "" {
		if u, ok := l.fixtures[path]; ok {
			return u.Types, nil
		}
		dir := filepath.Join(l.FixtureRoot, "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			names, err := listGoFiles(dir, false)
			if err != nil {
				return nil, err
			}
			u, err := l.LoadFiles(dir, path, names)
			if err != nil {
				return nil, err
			}
			l.fixtures[path] = u
			return u.Types, nil
		}
	}
	return i.next.ImportFrom(path, srcDir, mode)
}

// listGoFiles returns dir's .go file names in sorted order, optionally
// including _test.go files.
func listGoFiles(dir string, tests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadFiles type-checks the named files (absolute or dir-relative) as one
// unit with the given import path.
func (l *Loader) LoadFiles(dir, importPath string, names []string) (*Package, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("load %s: no files", importPath)
	}
	unit := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Srcs:  map[string][]byte{},
		Sizes: l.sizes,
	}
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		unit.Srcs[path] = src
		unit.Files = append(unit.Files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp, Sizes: l.sizes}
	pkg, err := conf.Check(importPath, l.fset, unit.Files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	unit.Types = pkg
	unit.Info = info
	return unit, nil
}

// LoadDir reads every .go file in dir (no build-constraint filtering — use
// ListPackages for real packages; this entry point serves analyzer
// testdata) and returns up to two units: the package including its
// in-package tests, and, when present, the external test package.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgFiles, xtestFiles []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(token.NewFileSet(), name, src, parser.PackageClauseOnly)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtestFiles = append(xtestFiles, name)
		} else {
			pkgFiles = append(pkgFiles, name)
		}
	}
	sort.Strings(pkgFiles)
	sort.Strings(xtestFiles)
	var units []*Package
	if len(pkgFiles) > 0 {
		u, err := l.LoadFiles(dir, importPath, pkgFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(xtestFiles) > 0 {
		u, err := l.LoadFiles(dir, importPath+"_test", xtestFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// LoadListed turns one `go list` record into analysis units: the package
// with its in-package test files, plus the external test package if any.
func (l *Loader) LoadListed(lp ListedPackage, includeTests bool) ([]*Package, error) {
	files := append([]string(nil), lp.GoFiles...)
	if includeTests {
		files = append(files, lp.TestGoFiles...)
	}
	var units []*Package
	if len(files) > 0 {
		u, err := l.LoadFiles(lp.Dir, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if includeTests && len(lp.XTestGoFiles) > 0 {
		u, err := l.LoadFiles(lp.Dir, lp.ImportPath+"_test", lp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}
