// Package framework is a self-contained, stdlib-only reimplementation of
// the slice of golang.org/x/tools/go/analysis that simlint needs: an
// Analyzer runs over one type-checked package and reports Diagnostics,
// which the driver filters through //simlint: suppression comments.
//
// The x/tools module is deliberately not a dependency — this repository
// builds offline with no requirements beyond the standard library — so the
// API mirrors go/analysis closely enough that migrating to the real thing
// later is a mechanical rename.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the package in Pass and
// reports findings via Pass.Reportf; returning an error aborts the whole
// lint run (reserved for internal failures, not findings).
type Analyzer struct {
	Name string // short lower-case identifier, used in //simlint:<name> suppressions
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// Pass carries one type-checked compilation unit (a package, or a
// package's external _test unit) through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the unit's import path ("github.com/daiet/daiet/internal/netsim";
	// external test units carry a "_test" suffix). Analyzers scope
	// themselves by path segments, never by directory.
	PkgPath string
	// Sizes measures types with the same model the gc compiler uses, for
	// struct-size checks.
	Sizes types.Sizes

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathSegments splits the unit's import path on '/', trimming any
// external-test suffix, so analyzers can scope by package name segments.
func (p *Pass) PathSegments() []string {
	path := strings.TrimSuffix(p.PkgPath, "_test")
	return strings.Split(path, "/")
}

// LastSegment returns the final import-path segment (the package's
// directory name), with any external-test suffix trimmed.
func (p *Pass) LastSegment() string {
	segs := p.PathSegments()
	return segs[len(segs)-1]
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}

// RunAnalyzers applies every analyzer to the unit and returns the surviving
// diagnostics after suppression filtering: findings on lines carrying a
// reasoned //simlint:<analyzer> comment are dropped, reasonless
// suppressions become findings themselves, and — when knownNames is
// non-empty — suppressions naming an unknown analyzer are flagged too.
// Diagnostics come back sorted by position.
func RunAnalyzers(unit *Package, analyzers []*Analyzer, knownNames map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Types,
			TypesInfo: unit.Info,
			PkgPath:   unit.Path,
			Sizes:     unit.Sizes,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, unit.Path, err)
		}
	}
	diags = applySuppressions(unit, diags, active, knownNames)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
