package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
)

// ListedPackage is the subset of `go list -json` output the driver needs.
// Using go list keeps build-constraint filtering and module resolution
// exactly aligned with the toolchain that compiles the tree.
type ListedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// ListPackages expands package patterns (e.g. "./...") relative to dir by
// shelling out to `go list -json`.
func ListPackages(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []ListedPackage
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
