package framework

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// markAnalyzer flags every call to a function literally named "violate" —
// the smallest possible analyzer, used to pin down suppression semantics.
var markAnalyzer = &Analyzer{
	Name: "mark",
	Doc:  "flags calls to violate()",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "violate" {
					pass.Reportf(call.Pos(), "call to violate")
				}
				return true
			})
		}
		return nil
	},
}

// loadSrc type-checks one file written to a temp dir and runs markAnalyzer
// with the full suppression pipeline.
func loadSrc(t *testing.T, src string, knownNames map[string]bool) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	unit, err := NewLoader().LoadFiles(dir, "suppresstest", []string{"f.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(unit, []*Analyzer{markAnalyzer}, knownNames)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const header = "package suppresstest\n\nfunc violate() {}\n\n"

func TestReasonedSuppressionWaivesSameLine(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\tviolate() //simlint:mark deliberate in this fixture\n"+
		"}\n", nil)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestOwnLineSuppressionWaivesNextLine(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\t//simlint:mark deliberate in this fixture\n"+
		"\tviolate()\n"+
		"}\n", nil)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestOwnLineSuppressionDoesNotReachFurther(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\t//simlint:mark deliberate in this fixture\n"+
		"\tviolate()\n"+
		"\tviolate()\n"+
		"}\n", nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "call to violate") {
		t.Fatalf("want exactly the second call flagged, got %v", diags)
	}
}

func TestBareSuppressionIsAFindingAndDoesNotWaive(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\tviolate() //simlint:mark\n"+
		"}\n", nil)
	if len(diags) != 2 {
		t.Fatalf("want finding + reasonless-suppression finding, got %v", diags)
	}
	var sawViolation, sawReasonless bool
	for _, d := range diags {
		if strings.Contains(d.Message, "call to violate") {
			sawViolation = true
		}
		if strings.Contains(d.Message, "suppression without a reason") {
			sawReasonless = true
		}
	}
	if !sawViolation || !sawReasonless {
		t.Fatalf("missing expected diagnostics in %v", diags)
	}
}

func TestUnknownAnalyzerSuppressionIsAFinding(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\tviolate() //simlint:nosuchcheck because reasons\n"+
		"}\n", map[string]bool{"mark": true})
	if len(diags) != 2 {
		t.Fatalf("want violation + unknown-analyzer finding, got %v", diags)
	}
	var sawUnknown bool
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown analyzer nosuchcheck") {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Fatalf("missing unknown-analyzer finding in %v", diags)
	}
}

func TestSuppressionForDifferentAnalyzerDoesNotWaive(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\tviolate() //simlint:wallclock reasoned, but for another analyzer\n"+
		"}\n", map[string]bool{"mark": true, "wallclock": true})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "call to violate") {
		t.Fatalf("want the violation to survive, got %v", diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := loadSrc(t, header+
		"func f() {\n"+
		"\tviolate()\n"+
		"\tviolate()\n"+
		"}\n", nil)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	if diags[0].Position.Line > diags[1].Position.Line {
		t.Fatalf("diagnostics out of order: %v", diags)
	}
}
