package globalrand_test

import (
	"testing"

	"github.com/daiet/daiet/internal/analysis/analysistest"
	"github.com/daiet/daiet/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), globalrand.Analyzer,
		"randuser", "randv2user")
}
