// Package globalrand bans the process-global math/rand source. Every
// random decision in the simulator must flow from a trial seed through an
// explicit *rand.Rand (rand.New(rand.NewSource(seed))), so that a figure
// row is a pure function of its Trial — package-level rand.Intn and
// rand.Seed read or mutate shared hidden state, which parallel trial
// execution (and any unrelated caller) interleaves nondeterministically.
package globalrand

import (
	"go/ast"
	"go/types"

	"github.com/daiet/daiet/internal/analysis/framework"
)

// allowed are the math/rand identifiers that do not touch the global
// source: explicit-source constructors and type names.
var allowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	// math/rand/v2 additions
	"NewPCG": true, "NewChaCha8": true, "PCG": true, "ChaCha8": true,
}

var Analyzer = &framework.Analyzer{
	Name: "globalrand",
	Doc: "ban package-level math/rand functions and rand.Seed; randomness must come from a " +
		"seeded rand.New(rand.NewSource(...)) derived from the trial seed",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if allowed[sel.Sel.Name] {
				return true
			}
			if sel.Sel.Name == "Seed" {
				pass.Reportf(sel.Pos(),
					"rand.Seed mutates the process-global source; thread a seeded *rand.Rand "+
						"from the trial seed instead")
				return true
			}
			pass.Reportf(sel.Pos(),
				"package-level rand.%s uses the shared global source and is not reproducible "+
					"per trial; use a seeded rand.New(rand.NewSource(...))",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
