// Package randv2user proves the same rules bind math/rand/v2 (which has
// no Seed but the same package-level global source).
package randv2user

import randv2 "math/rand/v2"

func badV2Globals() {
	_ = randv2.IntN(10) // want `package-level rand\.IntN uses the shared global source`
	_ = randv2.Uint64() // want `package-level rand\.Uint64 uses the shared global source`
}

func goodV2Seeded(seed uint64) uint64 {
	rng := randv2.New(randv2.NewPCG(seed, seed^0x9e3779b9))
	return rng.Uint64()
}
