// Package randuser exercises the globalrand rules: package-level math/rand
// reads shared hidden state; explicit seeded sources are the approved path.
package randuser

import "math/rand"

func badGlobals() {
	_ = rand.Intn(10)    // want `package-level rand\.Intn uses the shared global source`
	_ = rand.Float64()   // want `package-level rand\.Float64 uses the shared global source`
	_ = rand.Perm(4)     // want `package-level rand\.Perm uses the shared global source`
	rand.Shuffle(3, nil) // want `package-level rand\.Shuffle uses the shared global source`
	rand.Seed(42)        // want `rand\.Seed mutates the process-global source`
}

// Explicit seeded sources are the approved path: constructors and methods
// on a threaded *rand.Rand are free.
func goodSeeded(seed uint64) int {
	rng := rand.New(rand.NewSource(int64(seed)))
	z := rand.NewZipf(rng, 1.2, 1, 100)
	_ = z.Uint64()
	rng.Shuffle(3, func(i, j int) {})
	return rng.Intn(10)
}

// A reasoned suppression waives a deliberate global use.
func suppressedGlobal() int {
	return rand.Int() //simlint:globalrand fixture demonstrates a reasoned waiver
}
