// Package analysis registers the simlint analyzer bank: the static checks
// that mechanically enforce the simulator's byte-identity contract (see
// README "Determinism invariants"). cmd/simlint runs every registered
// analyzer; adding a new invariant means adding it here and nowhere else.
package analysis

import (
	"github.com/daiet/daiet/internal/analysis/arenaescape"
	"github.com/daiet/daiet/internal/analysis/framecopy"
	"github.com/daiet/daiet/internal/analysis/framework"
	"github.com/daiet/daiet/internal/analysis/globalrand"
	"github.com/daiet/daiet/internal/analysis/maporder"
	"github.com/daiet/daiet/internal/analysis/nodeclock"
	"github.com/daiet/daiet/internal/analysis/wallclock"
)

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		arenaescape.Analyzer,
		framecopy.Analyzer,
		globalrand.Analyzer,
		maporder.Analyzer,
		nodeclock.Analyzer,
		wallclock.Analyzer,
	}
}

// Names returns the registered analyzer names (the valid //simlint:<name>
// suppression targets), in the same stable order.
func Names() []string {
	as := Analyzers()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}
