// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which this offline build
// cannot depend on).
//
// Fixtures live under <analyzer dir>/testdata/src/<importpath>/: the
// directory path below src is the import path the unit is checked under,
// so path-scoped analyzers see realistic package paths. Fixture files may
// import real module packages (e.g. internal/netsim); the loader
// type-checks them from source.
//
// Grammar: an expectation comment `// want "re1" "re2"` on a source line
// requires exactly those diagnostics (in any order) on that line, each
// matching its double-quoted regular expression. Lines without a want
// comment must produce no diagnostics. Suppression directives run through
// the same pipeline as the real driver, so fixtures can assert both that
// reasoned suppressions silence findings and that bare ones are reported.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/daiet/daiet/internal/analysis/framework"
)

var wantRe = regexp.MustCompile(`// want (.*)$`)

// TestData returns the absolute path of the calling test's testdata
// directory (tests run with the package directory as working directory).
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package and asserts the analyzer's post-
// suppression diagnostics match its // want expectations exactly.
// Fixture imports resolve against sibling directories under
// testdata/src first (hermetic stand-ins), then the real importer.
func Run(t *testing.T, testdata string, a *framework.Analyzer, importPaths ...string) {
	t.Helper()
	loader := framework.NewLoader()
	loader.FixtureRoot = testdata
	for _, ip := range importPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(ip))
		units, err := loader.LoadDir(dir, ip)
		if err != nil {
			t.Errorf("load %s: %v", ip, err)
			continue
		}
		for _, unit := range units {
			diags, err := framework.RunAnalyzers(unit, []*framework.Analyzer{a}, nil)
			if err != nil {
				t.Errorf("run %s on %s: %v", a.Name, unit.Path, err)
				continue
			}
			check(t, unit, diags)
		}
	}
}

type key struct {
	file string
	line int
}

// check compares diagnostics against the unit's want comments.
func check(t *testing.T, unit *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	wants := map[key][]string{} // unmatched expectation regexps per line
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := unit.Fset.Position(c.Slash)
				k := key{pos.Filename, pos.Line}
				pats, err := parseWants(m[1])
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				wants[k] = append(wants[k], pats...)
			}
		}
	}
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		if i := matchWant(wants[k], d.Message); i >= 0 {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", unit.Path, d)
	}
	for k, pats := range wants {
		for _, p := range pats {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, p)
		}
	}
}

// parseWants splits `"re1" "re2"` into its quoted patterns. Patterns may
// be double-quoted (Go escapes apply) or backquoted (raw — convenient for
// regexes full of backslashes).
func parseWants(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			raw, s = s[:end+1], s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			raw, s = s[:end+2], s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		pat, err := strconv.Unquote(raw)
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return pats, nil
}

func matchWant(pats []string, msg string) int {
	for i, p := range pats {
		if ok, _ := regexp.MatchString(p, msg); ok {
			return i
		}
	}
	return -1
}
