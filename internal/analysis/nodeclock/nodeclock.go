// Package nodeclock enforces the partitioned-engine timer contract in
// node-context packages (netsim, dataplane, core, transport, controller,
// telemetry):
// code that runs inside node callbacks must take time and timers from
// Network.NodeAfter/NodeNow/Now, never from the raw event engine.
//
// Network.Eng is the single sequential engine and is nil once the fabric
// is partitioned — PR 3 had to reroute every host/switch timer through
// NodeAfter/NodeNow for exactly that reason, and PR 5 still caught a test
// sink crashing on nil Eng. Beyond the crash, scheduling through a foreign
// engine stamps events with interleaving-dependent origins, silently
// breaking the partition-invariant total order that makes runs
// byte-identical at any -sim-workers.
//
// Two rules:
//
//  1. No Network.Eng access. Applies to dataplane/core/transport/
//     controller everywhere, and to netsim's _test.go files (netsim's
//     non-test sources own the engine and are exempt — they ARE the
//     implementation).
//  2. No Engine method calls (After/Now/Schedule/Run/...) in dataplane/
//     core/transport/controller at all: any Engine value reachable there
//     was stashed from Network.Eng and carries the same hazard. netsim's
//     own tests may drive standalone engines directly.
package nodeclock

import (
	"go/ast"
	"go/types"
	"slices"
	"strings"

	"github.com/daiet/daiet/internal/analysis/framework"
)

// nodePackages are the import-path leaf names whose code runs in node
// context (attached to the fabric, executed by the event loop).
var nodePackages = []string{"dataplane", "core", "transport", "controller", "telemetry"}

// engineMethods are the Engine entry points that bypass the node-routing
// layer.
var engineMethods = map[string]bool{
	"After": true, "Now": true, "Schedule": true,
	"Run": true, "RunUntil": true, "Step": true, "Pending": true,
}

var Analyzer = &framework.Analyzer{
	Name: "nodeclock",
	Doc: "in node-context packages, forbid Network.Eng access and raw Engine After/Now/Schedule " +
		"calls; timers and clocks must route through Network.NodeAfter/NodeNow/Now",
	Run: run,
}

func run(pass *framework.Pass) error {
	leaf := pass.LastSegment()
	inNodePkg := slices.Contains(nodePackages, leaf)
	inNetsim := leaf == "netsim"
	if !inNodePkg && !inNetsim {
		return nil
	}
	for _, f := range pass.Files {
		// netsim's non-test sources implement the engine; only its tests
		// are node-context consumers.
		if inNetsim && !pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if n.Sel.Name == "Eng" && isNetsimType(pass.TypesInfo.Types[n.X].Type, "Network") {
					pass.Reportf(n.Sel.Pos(),
						"direct Network.Eng access: Eng is nil once the fabric is partitioned; "+
							"use Network.NodeAfter/NodeNow for node timers and Network.Now for the fabric clock")
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !engineMethods[sel.Sel.Name] || inNetsim {
					return true
				}
				if isNetsimType(pass.TypesInfo.Types[sel.X].Type, "Engine") {
					pass.Reportf(sel.Sel.Pos(),
						"raw Engine.%s call in node context bypasses partition routing and stamps "+
							"interleaving-dependent event origins; use Network.NodeAfter/NodeNow/Now",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isNetsimType reports whether t (or its pointee) is the named netsim type.
func isNetsimType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "netsim" || strings.HasSuffix(path, "/netsim")
}
