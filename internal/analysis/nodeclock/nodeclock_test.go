package nodeclock_test

import (
	"testing"

	"github.com/daiet/daiet/internal/analysis/analysistest"
	"github.com/daiet/daiet/internal/analysis/nodeclock"
)

func TestNodeclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeclock.Analyzer,
		"netsim", "dataplane", "stats")
}
