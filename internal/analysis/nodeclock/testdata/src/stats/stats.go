// Package stats is outside the node-context scope: the analyzer must not
// report anything here even on patterns it would flag in dataplane.
package stats

import "netsim"

func freeOutsideScope(nw *netsim.Network, eng *netsim.Engine) {
	_ = nw.Eng
	eng.After(1, nil)
}
