// Package netsim is a hermetic stand-in for the real engine package: the
// analyzer scopes by import-path leaf name, so these types play the roles
// of netsim.Engine and netsim.Network for the fixtures.
package netsim

type Duration int64

// Engine mimics the sequential event engine.
type Engine struct{ Processed uint64 }

func (e *Engine) After(d Duration, fn func())    {}
func (e *Engine) Now() Duration                  { return 0 }
func (e *Engine) Schedule(d Duration, fn func()) {}
func (e *Engine) Run(max int) error              { return nil }
func (e *Engine) RunUntil(d Duration) error      { return nil }

// Network mimics the fabric: Eng is the raw engine (nil once partitioned).
type Network struct{ Eng *Engine }

func (n *Network) NodeAfter(node int, d Duration, fn func()) {}
func (n *Network) NodeNow(node int) Duration                 { return 0 }
func (n *Network) Now() Duration                             { return 0 }
func (n *Network) Processed() uint64                         { return 0 }

// engineInternals is netsim implementation code: non-test netsim sources
// own the engine and are exempt from both rules.
func engineInternals(n *Network) Duration {
	n.Eng.Schedule(1, nil)
	return n.Eng.Now()
}
