package netsim

// netsim's _test.go files are node-context consumers: rule 1 (no
// Network.Eng access) applies to them even though the package's non-test
// sources are exempt.

func testDrivesFabric(nw *Network) {
	_ = nw.Eng // want `direct Network\.Eng access`
	_ = nw.Processed()
	nw.NodeAfter(0, 10, nil)
	_ = nw.Now()
}

// Rule 2 does not apply inside netsim: its tests may drive standalone
// engines directly (they are testing the engine itself).
func testDrivesStandaloneEngine() {
	var e Engine
	e.After(1, nil)
	_ = e.Now()
}

func testSuppressedWithReason(nw *Network) {
	_ = nw.Eng //simlint:nodeclock fixture exercises the raw engine on an unpartitioned fabric
}
