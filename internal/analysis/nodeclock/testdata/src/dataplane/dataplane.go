// Package dataplane plays a node-context package (import-path leaf
// "dataplane"): both nodeclock rules apply to every file.
package dataplane

import "netsim"

func badEngAccess(nw *netsim.Network) {
	_ = nw.Eng // want `direct Network\.Eng access`
}

func badEngineCalls(eng *netsim.Engine) {
	eng.After(5, nil)    // want `raw Engine\.After call in node context`
	_ = eng.Now()        // want `raw Engine\.Now call in node context`
	eng.Schedule(1, nil) // want `raw Engine\.Schedule call in node context`
}

func goodNodeRouting(nw *netsim.Network) {
	nw.NodeAfter(3, 10, nil)
	_ = nw.NodeNow(3)
	_ = nw.Now()
}

// Unrelated types with the same method names stay free: only netsim.Engine
// values are hazardous.
type localTimer struct{}

func (localTimer) After(d int, fn func()) {}
func (localTimer) Now() int               { return 0 }

func goodLocalTimer() {
	var t localTimer
	t.After(1, nil)
	_ = t.Now()
}
