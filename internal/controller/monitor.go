package controller

import (
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
)

// Monitor is the control plane's timeout-based liveness detector, driven
// entirely by simulated time: the job driver polls it at quiescent control
// points (between Network.RunUntil windows), it probes every switch and
// link out of band — the same direct program/fabric access the rest of the
// controller uses, standing in for a management-network health channel —
// and declares a component dead once it has been unresponsive for
// DeadTimeout. It also catches crash-restart cycles shorter than a polling
// period through the switch boot-generation counter (Program.Crashes):
// a switch that rebooted between polls lost all dataplane state even if
// every poll found it "up".
//
// The monitor owns recovery of baseline state: a switch seen rebooting
// gets its IPv4 routing reinstalled immediately (InstallRoutingOn).
// Aggregation-tree failover is the job driver's business — it reads the
// poll report and the Avoid set and re-plans around the dead set.
type Monitor struct {
	ctl     *Controller
	nw      *netsim.Network
	timeout netsim.Time

	lastAlive map[netsim.NodeID]netsim.Time // last poll that found the switch up
	lastGen   map[netsim.NodeID]uint64      // boot generation at that poll
	linkAlive map[[2]netsim.NodeID]netsim.Time
	lastFlaps map[[2]netsim.NodeID]uint64 // flap generation at the last poll
	deadSw    map[netsim.NodeID]bool
	deadLink  map[[2]netsim.NodeID]bool

	// observer, when non-nil, receives every liveness transition Poll
	// reports, in report (plan) order — the telemetry recorder's feed.
	observer func(now netsim.Time, ev MonitorEvent)
}

// MonitorEvent is one liveness transition as seen by a Poll: Kind is one
// of "switch-dead", "switch-restarted", "link-dead", "link-revived" or
// "link-flapped"; A is the switch (or link endpoint A), B the link's
// other endpoint (zero for switch events).
type MonitorEvent struct {
	Kind string
	A, B netsim.NodeID
}

// SetObserver installs (or, with nil, removes) the monitor's event
// observer. Poll runs only at quiescent control points, so the observer
// inherits that context.
func (m *Monitor) SetObserver(fn func(now netsim.Time, ev MonitorEvent)) {
	m.observer = fn
}

// emit publishes the poll's transitions to the observer in the same
// deterministic order PollReport lists them.
func (m *Monitor) emit(now netsim.Time, rep *PollReport) {
	if m.observer == nil {
		return
	}
	for _, sw := range rep.RestartedSwitches {
		m.observer(now, MonitorEvent{Kind: "switch-restarted", A: sw})
	}
	for _, sw := range rep.NewlyDeadSwitches {
		m.observer(now, MonitorEvent{Kind: "switch-dead", A: sw})
	}
	for _, l := range rep.FlappedLinks {
		m.observer(now, MonitorEvent{Kind: "link-flapped", A: l[0], B: l[1]})
	}
	for _, l := range rep.RevivedLinks {
		m.observer(now, MonitorEvent{Kind: "link-revived", A: l[0], B: l[1]})
	}
	for _, l := range rep.NewlyDeadLinks {
		m.observer(now, MonitorEvent{Kind: "link-dead", A: l[0], B: l[1]})
	}
}

// PollReport is what one Poll observed, in deterministic (plan) order.
type PollReport struct {
	// NewlyDeadSwitches/NewlyDeadLinks crossed the timeout this poll and
	// joined the dead set: trees using them need failover.
	NewlyDeadSwitches []netsim.NodeID
	NewlyDeadLinks    [][2]netsim.NodeID
	// RestartedSwitches rebooted since the previous poll (previously
	// declared dead, or a crash-restart inside one polling period). Their
	// routing has been reinstalled, but all aggregation state they held is
	// gone: trees that spanned them must be re-driven.
	RestartedSwitches []netsim.NodeID
	// RevivedLinks came back up and left the dead set.
	RevivedLinks [][2]netsim.NodeID
	// FlappedLinks took at least one down transition since the previous
	// poll (flap generation advanced), regardless of current state — the
	// only mechanism that can silently discard some of a flow's frames
	// while letting later ones through. Rounds whose trees use a flapped
	// link cannot trust an apparently-complete stream.
	FlappedLinks [][2]netsim.NodeID
}

// Changed reports whether the poll altered the monitor's view at all.
func (r *PollReport) Changed() bool {
	return len(r.NewlyDeadSwitches) > 0 || len(r.NewlyDeadLinks) > 0 ||
		len(r.RestartedSwitches) > 0 || len(r.RevivedLinks) > 0 ||
		len(r.FlappedLinks) > 0
}

// NewMonitor creates a monitor over the controller's fabric. deadTimeout
// is how long a component may be unresponsive before it is declared dead
// (the figure's recovery-timeout axis).
func NewMonitor(ctl *Controller, deadTimeout time.Duration) *Monitor {
	return &Monitor{
		ctl:       ctl,
		nw:        ctl.fab.Net,
		timeout:   netsim.Duration(deadTimeout),
		lastAlive: make(map[netsim.NodeID]netsim.Time),
		lastGen:   make(map[netsim.NodeID]uint64),
		linkAlive: make(map[[2]netsim.NodeID]netsim.Time),
		lastFlaps: make(map[[2]netsim.NodeID]uint64),
		deadSw:    make(map[netsim.NodeID]bool),
		deadLink:  make(map[[2]netsim.NodeID]bool),
	}
}

// Poll probes every switch and plan link at virtual time now. Must be
// called with the network quiescent; successive polls must not move
// backwards in time.
func (m *Monitor) Poll(now netsim.Time) (PollReport, error) {
	var rep PollReport
	for _, sw := range m.ctl.fab.Plan.Switches {
		prog, ok := m.ctl.programs[sw]
		if !ok {
			continue
		}
		gen := prog.Crashes()
		if prog.Alive() {
			rebooted := m.deadSw[sw]
			if prev, seen := m.lastGen[sw]; seen && prev != gen {
				rebooted = true
			}
			if rebooted {
				// Fresh boot with empty tables: restore baseline routing
				// now; the driver restores aggregation state.
				if err := m.ctl.InstallRoutingOn(sw); err != nil {
					return rep, err
				}
				delete(m.deadSw, sw)
				rep.RestartedSwitches = append(rep.RestartedSwitches, sw)
			}
			m.lastAlive[sw] = now
			m.lastGen[sw] = gen
			continue
		}
		if !m.deadSw[sw] && now-m.lastAlive[sw] >= m.timeout {
			m.deadSw[sw] = true
			rep.NewlyDeadSwitches = append(rep.NewlyDeadSwitches, sw)
		}
	}
	for _, l := range m.ctl.fab.Plan.Links {
		key := topology.LinkKey(l.A, l.B)
		if flaps := m.nw.LinkFlaps(l.A, l.B); flaps != m.lastFlaps[key] {
			m.lastFlaps[key] = flaps
			rep.FlappedLinks = append(rep.FlappedLinks, key)
		}
		if m.nw.LinkUp(l.A, l.B) {
			if m.deadLink[key] {
				delete(m.deadLink, key)
				rep.RevivedLinks = append(rep.RevivedLinks, key)
			}
			m.linkAlive[key] = now
			continue
		}
		if !m.deadLink[key] && now-m.linkAlive[key] >= m.timeout {
			m.deadLink[key] = true
			rep.NewlyDeadLinks = append(rep.NewlyDeadLinks, key)
		}
	}
	m.emit(now, &rep)
	return rep, nil
}

// Avoid returns a snapshot of the current dead set in the shape tree
// planning consumes.
func (m *Monitor) Avoid() *topology.Avoid {
	a := &topology.Avoid{
		Nodes: make(map[netsim.NodeID]bool, len(m.deadSw)),
		Links: make(map[[2]netsim.NodeID]bool, len(m.deadLink)),
	}
	for sw := range m.deadSw {
		a.Nodes[sw] = true
	}
	for l := range m.deadLink {
		a.Links[l] = true
	}
	return a
}

// DeadSwitches returns how many switches are currently declared dead.
func (m *Monitor) DeadSwitches() int { return len(m.deadSw) }

// DeadLinks returns how many links are currently declared dead.
func (m *Monitor) DeadLinks() int { return len(m.deadLink) }
