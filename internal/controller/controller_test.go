package controller

import (
	"testing"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
)

func buildFixture(t *testing.T, plan *topology.Plan) (*Controller, *topology.Fabric, map[netsim.NodeID]*core.Program) {
	t.Helper()
	nw := netsim.New(1)
	programs := make(map[netsim.NodeID]*core.Program)
	mkSwitch := func(id netsim.NodeID) netsim.Node {
		p, err := core.NewProgram(core.ProgramConfig{})
		if err != nil {
			t.Fatal(err)
		}
		programs[id] = p
		return p.Switch()
	}
	mkHost := func(netsim.NodeID) netsim.Node { return transport.NewHost() }
	fab := plan.Realize(nw, mkSwitch, mkHost)
	return New(fab, programs), fab, programs
}

func TestPlanTreeSingleSwitch(t *testing.T) {
	plan := topology.SingleSwitch(5, netsim.LinkConfig{})
	ctl, _, _ := buildFixture(t, plan)
	reducer := plan.Hosts[4]
	mappers := plan.Hosts[:4]
	tp, err := ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	if tp.TreeID != uint32(reducer) || tp.Root != reducer {
		t.Fatalf("identity: %+v", tp)
	}
	if len(tp.SwitchNodes) != 1 {
		t.Fatalf("switches %v", tp.SwitchNodes)
	}
	sw := tp.SwitchNodes[0]
	if tp.Children[sw] != 4 {
		t.Fatalf("switch children %d", tp.Children[sw])
	}
	if tp.RootChildren() != 1 {
		t.Fatalf("root children %d", tp.RootChildren())
	}
	if tp.Depth() != 2 {
		t.Fatalf("depth %d", tp.Depth())
	}
	// Every mapper's parent is the switch; the switch's parent the reducer.
	for _, m := range mappers {
		if tp.Parent[m] != sw {
			t.Fatalf("mapper %d parent %d", m, tp.Parent[m])
		}
	}
	if tp.Parent[sw] != reducer {
		t.Fatalf("switch parent %d", tp.Parent[sw])
	}
}

func TestPlanTreeSpanningProperties(t *testing.T) {
	plan, err := topology.FatTree(4, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, _, _ := buildFixture(t, plan)
	reducer := plan.Hosts[15]
	mappers := plan.Hosts[:12]
	tp, err := ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}

	// Invariant 3 (DESIGN.md): acyclic, covers all mappers, parents chain
	// to the root.
	for _, m := range mappers {
		seen := map[netsim.NodeID]bool{}
		cur := m
		for cur != reducer {
			if seen[cur] {
				t.Fatalf("cycle at %d", cur)
			}
			seen[cur] = true
			next, ok := tp.Parent[cur]
			if !ok {
				t.Fatalf("node %d has no parent", cur)
			}
			cur = next
		}
	}

	// Children counts equal the in-degree of the parent relation.
	inDeg := map[netsim.NodeID]int{}
	for child, parent := range tp.Parent {
		_ = child
		inDeg[parent]++
	}
	for node, n := range tp.Children {
		if inDeg[node] != n {
			t.Fatalf("children[%d]=%d but in-degree %d", node, n, inDeg[node])
		}
	}

	// Total tree edges = nodes - 1 (tree property over participating set).
	nodes := map[netsim.NodeID]bool{reducer: true}
	for child, parent := range tp.Parent {
		nodes[child] = true
		nodes[parent] = true
	}
	if len(tp.Parent) != len(nodes)-1 {
		t.Fatalf("edges %d nodes %d: not a tree", len(tp.Parent), len(nodes))
	}
}

func TestPlanTreeErrors(t *testing.T) {
	plan := topology.SingleSwitch(3, netsim.LinkConfig{})
	ctl, _, _ := buildFixture(t, plan)
	if _, err := ctl.PlanTree(plan.Hosts[0], nil); err == nil {
		t.Fatal("no mappers must fail")
	}
	if _, err := ctl.PlanTree(plan.Hosts[0], []netsim.NodeID{plan.Hosts[0]}); err == nil {
		t.Fatal("mapper == reducer must fail")
	}
	if _, err := ctl.PlanTree(netsim.NodeID(999), []netsim.NodeID{plan.Hosts[0]}); err == nil {
		t.Fatal("unreachable reducer must fail")
	}
}

func TestInstallTreeConfiguresEverySwitch(t *testing.T) {
	plan := topology.LeafSpine(2, 2, 2, netsim.LinkConfig{})
	ctl, _, programs := buildFixture(t, plan)
	mappers := []netsim.NodeID{plan.Hosts[0], plan.Hosts[1], plan.Hosts[2]}
	reducer := plan.Hosts[3]
	tp, err := ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.InstallTree(tp, TreeOptions{Agg: core.AggSum, TableSize: 128}); err != nil {
		t.Fatal(err)
	}
	for _, sw := range tp.SwitchNodes {
		if _, ok := programs[sw].TreeStats(tp.TreeID); !ok {
			t.Fatalf("switch %d not configured", sw)
		}
	}
	// Uninstall clears everything.
	ctl.UninstallTree(tp)
	for _, sw := range tp.SwitchNodes {
		if _, ok := programs[sw].TreeStats(tp.TreeID); ok {
			t.Fatalf("switch %d still configured", sw)
		}
		if programs[sw].Registers().Used() != 0 {
			t.Fatalf("switch %d leaked SRAM", sw)
		}
	}
}

func TestInstallTreeValidation(t *testing.T) {
	plan := topology.SingleSwitch(2, netsim.LinkConfig{})
	ctl, _, _ := buildFixture(t, plan)
	tp, err := ctl.PlanTree(plan.Hosts[1], []netsim.NodeID{plan.Hosts[0]})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.InstallTree(tp, TreeOptions{Agg: core.AggSum, TableSize: 0}); err == nil {
		t.Fatal("zero table size must fail")
	}
}

func TestInstallRoutingCoversAllSwitches(t *testing.T) {
	plan, err := topology.FatTree(4, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, _, _ := buildFixture(t, plan)
	if err := ctl.InstallRouting(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramAccessor(t *testing.T) {
	plan := topology.SingleSwitch(2, netsim.LinkConfig{})
	ctl, _, programs := buildFixture(t, plan)
	sw := plan.Switches[0]
	if ctl.Program(sw) != programs[sw] {
		t.Fatal("accessor mismatch")
	}
	if ctl.Program(netsim.NodeID(12345)) != nil {
		t.Fatal("unknown switch must be nil")
	}
}
