// Package controller is the SDN control plane of the reproduction: given a
// job's mapper/reducer placement, it computes one aggregation tree per
// reducer (Figure 2 of the paper — a spanning tree covering all paths from
// the mappers to that reducer) and configures the switches: tree ID, output
// port toward the next tree node, the aggregation function, and the number
// of children each device must hear an END from before flushing.
package controller

import (
	"fmt"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
)

// Controller owns the mapping from switch node IDs to their programs.
type Controller struct {
	fab      *topology.Fabric
	programs map[netsim.NodeID]*core.Program
}

// New creates a controller for a realized fabric. programs maps every
// switch node ID to the DAIET program running on it.
func New(fab *topology.Fabric, programs map[netsim.NodeID]*core.Program) *Controller {
	return &Controller{fab: fab, programs: programs}
}

// InstallRouting installs plain IPv4 forwarding entries on every switch for
// every host, so baseline (non-aggregated) traffic flows.
func (c *Controller) InstallRouting() error {
	for swID := range c.programs {
		if err := c.InstallRoutingOn(swID); err != nil {
			return err
		}
	}
	return nil
}

// InstallRoutingOn installs the forwarding entries for every host on one
// switch — the recovery path for a switch that rebooted with empty tables.
func (c *Controller) InstallRoutingOn(swID netsim.NodeID) error {
	prog, ok := c.programs[swID]
	if !ok {
		return fmt.Errorf("controller: no program registered for switch %d", swID)
	}
	for _, h := range c.fab.Plan.Hosts {
		nh, ok := c.fab.NextHop(swID, h)
		if !ok {
			return fmt.Errorf("controller: switch %d cannot reach host %d", swID, h)
		}
		port := c.fab.PortTo(swID, nh)
		if port < 0 {
			return fmt.Errorf("controller: switch %d has no port to %d", swID, nh)
		}
		if err := prog.InstallRoute(uint32(h), port); err != nil {
			return err
		}
	}
	return nil
}

// TreePlan describes one aggregation tree: parent pointers toward the root
// (the reducer) for every participating node, and per-node child counts.
type TreePlan struct {
	TreeID  uint32
	Root    netsim.NodeID
	Mappers []netsim.NodeID
	// Parent maps each non-root tree node to the next node toward the root.
	Parent map[netsim.NodeID]netsim.NodeID
	// Children counts each tree node's distinct children.
	Children map[netsim.NodeID]int
	// SwitchNodes lists the switches participating, in deterministic order.
	SwitchNodes []netsim.NodeID
}

// RootChildren returns the number of tree children of the reducer itself:
// the number of END packets the collector should expect.
func (p *TreePlan) RootChildren() int { return p.Children[p.Root] }

// Depth returns the maximum number of hops from any mapper to the root.
func (p *TreePlan) Depth() int {
	depth := 0
	for _, m := range p.Mappers {
		d := 0
		for cur := m; cur != p.Root; cur = p.Parent[cur] {
			d++
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// PlanTree computes the aggregation tree for one reducer as the union of
// shortest paths from every mapper. Because next hops are deterministic per
// destination, the union is cycle-free and forms a tree rooted at the
// reducer.
func (c *Controller) PlanTree(reducer netsim.NodeID, mappers []netsim.NodeID) (*TreePlan, error) {
	return c.PlanTreeAvoiding(reducer, mappers, nil)
}

// PlanTreeAvoiding is PlanTree over the fabric minus an avoid set — the
// failover path: after the liveness monitor declares switches or links
// dead, the controller re-plans every affected tree around them. A mapper
// with no surviving path to the reducer makes the plan fail; callers
// retry with a reachable subset (see MapperSubsetAvoiding) or wait for
// recovery.
func (c *Controller) PlanTreeAvoiding(reducer netsim.NodeID, mappers []netsim.NodeID,
	avoid *topology.Avoid) (*TreePlan, error) {

	if len(mappers) == 0 {
		return nil, fmt.Errorf("controller: tree for reducer %d has no mappers", reducer)
	}
	plan := &TreePlan{
		TreeID:   uint32(reducer),
		Root:     reducer,
		Mappers:  append([]netsim.NodeID(nil), mappers...),
		Parent:   make(map[netsim.NodeID]netsim.NodeID),
		Children: make(map[netsim.NodeID]int),
	}
	seenChild := make(map[[2]netsim.NodeID]bool)
	switches := make(map[netsim.NodeID]bool)
	for _, m := range mappers {
		if m == reducer {
			return nil, fmt.Errorf("controller: mapper and reducer are the same node %d", m)
		}
		path := c.fab.PathAvoiding(m, reducer, avoid)
		if path == nil {
			return nil, fmt.Errorf("controller: no path from mapper %d to reducer %d", m, reducer)
		}
		for i := 0; i+1 < len(path); i++ {
			child, parent := path[i], path[i+1]
			if prev, ok := plan.Parent[child]; ok && prev != parent {
				return nil, fmt.Errorf("controller: inconsistent next hop at %d: %d vs %d",
					child, prev, parent)
			}
			plan.Parent[child] = parent
			edge := [2]netsim.NodeID{child, parent}
			if !seenChild[edge] {
				seenChild[edge] = true
				plan.Children[parent]++
			}
			if topology.IsSwitchID(child) {
				switches[child] = true
			}
		}
	}
	for sw := range switches {
		plan.SwitchNodes = append(plan.SwitchNodes, sw)
	}
	sort.Slice(plan.SwitchNodes, func(i, j int) bool { return plan.SwitchNodes[i] < plan.SwitchNodes[j] })
	return plan, nil
}

// MapperSubsetAvoiding splits mappers into those with a surviving path to
// the reducer under the avoid set and those orphaned by failures. The
// fault-tolerant shuffle plans trees over the reachable subset and lets
// orphans wait for recovery.
func (c *Controller) MapperSubsetAvoiding(reducer netsim.NodeID, mappers []netsim.NodeID,
	avoid *topology.Avoid) (reachable, orphaned []netsim.NodeID) {

	next := c.fab.NextHopsAvoiding(reducer, avoid) // one BFS for all mappers
	for _, m := range mappers {
		if _, ok := next[m]; ok && m != reducer {
			reachable = append(reachable, m)
		} else {
			orphaned = append(orphaned, m)
		}
	}
	return reachable, orphaned
}

// TreeOptions carries the aggregation parameters applied uniformly across a
// tree's switches.
type TreeOptions struct {
	Agg       core.AggFuncID
	TableSize int
	SpillCap  int // 0: one packet's worth

	// Epoch/PinEpoch pin every switch of the tree to one recovery round
	// (see core.TreeConfig). The fault-tolerant shuffle bumps the epoch on
	// every round restart.
	Epoch    uint8
	PinEpoch bool

	// Reliable enables the exactly-once gate on every switch of the tree:
	// each switch accepts strictly in-order per-sender sequences from its
	// own tree children (hosts at the leaves, child switches upstream) and
	// acknowledges cumulatively.
	Reliable bool

	// RootReplay/RootRTO enable the switch-side replay buffer on the
	// tree's root switch (the switch whose parent is the reducer). With
	// HopReplay, every switch retains its emissions until its tree parent
	// — gate or collector — acknowledges them: combined with Reliable this
	// makes the whole tree hop-by-hop reliable, as the bigincast
	// experiment runs it.
	RootReplay int
	RootRTO    time.Duration
	HopReplay  bool

	// DataClass/AckClass select the shared-buffer traffic class the tree's
	// switch emissions are admitted under on pooled switches — flushes,
	// spills and replays leave under DataClass, cumulative ACKs under
	// AckClass (see core.TreeConfig and netsim.PoolConfig.Classes). Both
	// default to 0. Tenant is an attribution tag for multi-job runs.
	DataClass int
	AckClass  int
	Tenant    int
}

// InstallTree configures every switch in the plan. On failure, switches
// configured so far are rolled back.
func (c *Controller) InstallTree(plan *TreePlan, opt TreeOptions) error {
	if opt.TableSize <= 0 {
		return fmt.Errorf("controller: table size %d", opt.TableSize)
	}
	// With the gate on, each switch's sender table lists its own tree
	// children, in deterministic (sorted) order.
	var kids map[netsim.NodeID][]uint32
	if opt.Reliable {
		kids = make(map[netsim.NodeID][]uint32, len(plan.SwitchNodes))
		for child, parent := range plan.Parent {
			kids[parent] = append(kids[parent], uint32(child))
		}
		for _, list := range kids {
			sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		}
	}
	done := make([]netsim.NodeID, 0, len(plan.SwitchNodes))
	for _, sw := range plan.SwitchNodes {
		prog, ok := c.programs[sw]
		if !ok {
			c.rollback(plan, done)
			return fmt.Errorf("controller: no program registered for switch %d", sw)
		}
		parent := plan.Parent[sw]
		port := c.fab.PortTo(sw, parent)
		if port < 0 {
			c.rollback(plan, done)
			return fmt.Errorf("controller: switch %d has no port to tree parent %d", sw, parent)
		}
		cfg := core.TreeConfig{
			TreeID:    plan.TreeID,
			OutPort:   port,
			Children:  plan.Children[sw],
			Agg:       opt.Agg,
			TableSize: opt.TableSize,
			SpillCap:  opt.SpillCap,
			Epoch:     opt.Epoch,
			PinEpoch:  opt.PinEpoch,
			DataClass: opt.DataClass,
			AckClass:  opt.AckClass,
			Tenant:    opt.Tenant,
		}
		if opt.Reliable {
			cfg.Reliable = true
			cfg.Senders = kids[sw]
		}
		if parent == plan.Root || opt.HopReplay {
			cfg.RootReplay = opt.RootReplay
			cfg.RootRTO = opt.RootRTO
		}
		err := prog.ConfigureTree(cfg)
		if err != nil {
			c.rollback(plan, done)
			return fmt.Errorf("controller: configuring switch %d: %w", sw, err)
		}
		done = append(done, sw)
	}
	return nil
}

// UninstallTree removes the plan's tree from every switch.
func (c *Controller) UninstallTree(plan *TreePlan) {
	c.rollback(plan, plan.SwitchNodes)
}

func (c *Controller) rollback(plan *TreePlan, switches []netsim.NodeID) {
	for _, sw := range switches {
		if prog, ok := c.programs[sw]; ok {
			prog.RemoveTree(plan.TreeID)
		}
	}
}

// Program returns the program registered for a switch (diagnostics).
func (c *Controller) Program(sw netsim.NodeID) *core.Program { return c.programs[sw] }
