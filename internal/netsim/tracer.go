package netsim

import "fmt"

// INT-style frame tracing: an optional observer sees every transmit-side
// admission attempt — accepted or dropped — with the queue/pool depth the
// admission decision was judged against. The hook exists for the
// telemetry layer (internal/telemetry) to sample per-frame path records
// without netsim knowing anything about wire formats or sampling policy.
//
// Contract:
//
//   - The tracer runs inline on the send path, inside the transmitting
//     node's partition domain. It must be partition-safe the same way a
//     node is: any state it writes keyed by the transmitting node is
//     domain-confined; shared mutable state would race across domains.
//   - FrameTraceInfo is passed by value and the frame slice must not be
//     retained or modified — ownership stays with the network (accepted
//     frames) or dies with the drop. A tracer that needs bytes must copy
//     them (the telemetry sampler only reads header fields inline).
//   - The (Origin, Seq) pair is the half-link's attempt key: Origin is the
//     half-link's partition-invariant ordering origin and Seq counts every
//     admission attempt on it (accepted + all drop reasons), so trace
//     records merge into the same (timestamp, origin, seq) total order the
//     event engine uses — byte-identical at any -sim-workers value.
//   - A nil tracer costs one predictable branch per send; the steady-state
//     hot path stays 0 allocs/op (TestSendTracerOffZeroAlloc pins it).

// FrameVerdict classifies one admission attempt at a transmitting port.
type FrameVerdict uint8

const (
	FrameAccepted FrameVerdict = iota
	FrameDropDown              // link administratively down
	FrameDropPool              // shared-pool DT rejection
	FrameDropFull              // private per-port FIFO overflow
	FrameDropLoss              // injected random loss
)

// String names the verdict for timeline rendering.
func (v FrameVerdict) String() string {
	switch v {
	case FrameAccepted:
		return "accepted"
	case FrameDropDown:
		return "drop-down"
	case FrameDropPool:
		return "drop-pool"
	case FrameDropFull:
		return "drop-full"
	case FrameDropLoss:
		return "drop-loss"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// FrameTraceInfo describes one admission attempt. All fields are values;
// nothing references network internals.
type FrameTraceInfo struct {
	At      Time   // transmitting node's virtual time
	Src     NodeID // transmitting node
	Dst     NodeID // destination node
	DstPort int    // destination ingress port
	Class   int    // traffic class (pool-folded when the node is pooled)
	Size    int    // frame length in bytes

	// QueuedBytes is the transmit queue depth the admission decision saw
	// (after lazy drains): the private FIFO occupancy on poolless nodes.
	QueuedBytes int
	// PoolUsedBytes is the node-wide shared-pool occupancy at admission,
	// or -1 when the node has no pool.
	PoolUsedBytes int

	// Origin/Seq key the attempt in the fabric's partition-invariant
	// order: Origin is the half-link's ordering origin, Seq its attempt
	// counter (strictly increasing per half-link, first attempt = 1).
	Origin uint64
	Seq    uint64

	Verdict FrameVerdict
}

// FrameTracer observes admission attempts. See the contract above.
type FrameTracer interface {
	TraceFrame(info FrameTraceInfo, frame []byte)
}

// SetFrameTracer installs (or, with nil, removes) the network's frame
// tracer. It may only be called while the network is quiescent — before
// Run, or at a RunUntil control point — because the send path reads the
// tracer from domain goroutines during a partitioned window.
func (nw *Network) SetFrameTracer(t FrameTracer) {
	nw.tracer = t
}

// traceFrame reports one admission attempt. Called from send, only when a
// tracer is installed; kept out of line so the traced path never bloats
// the hot path's inlining budget.
func (nw *Network) traceFrame(hl *halfLink, class, size int, now Time, verdict FrameVerdict, frame []byte) {
	pooled := -1
	if hl.pool != nil {
		pooled = hl.pool.used
	}
	nw.tracer.TraceFrame(FrameTraceInfo{
		At:            now,
		Src:           hl.srcNode,
		Dst:           hl.dstNode,
		DstPort:       hl.dstPort,
		Class:         class,
		Size:          size,
		QueuedBytes:   hl.queued,
		PoolUsedBytes: pooled,
		Origin:        hl.key,
		Seq: hl.stats.TxFrames + hl.stats.DropsFull + hl.stats.DropsPool +
			hl.stats.DropsLoss + hl.stats.DropsDown,
		Verdict: verdict,
	}, frame)
}

// ---- node-local statistics for in-domain probes ----

// NodePoolStats is PoolStats drained to node id's OWN domain clock instead
// of the fabric-wide clock, so a node-resident timer (a telemetry probe
// scheduled through NodeAfter) may sample its own switch's pool without
// reading other domains' clocks mid-run — which would be a data race and,
// worse, an interleaving-dependent value. The pool and the node's clock
// are both owned by the node's domain, so the result is deterministic and
// partition-invariant. From quiescent (control-plane) context, PoolStats
// remains the right call.
func (nw *Network) NodePoolStats(id NodeID) (PoolStats, bool) {
	bp := nw.pools[id]
	if bp == nil {
		return PoolStats{}, false
	}
	bp.drainTo(nw.NodeNow(id))
	st := PoolStats{
		TotalBytes: bp.cfg.TotalBytes,
		Used:       bp.used,
		Committed:  bp.committed,
		HighWater:  bp.highWater,
		Drops:      bp.drops,
		Classes:    make([]ClassStats, len(bp.classes)),
	}
	for i, cl := range bp.classes {
		st.Classes[i] = ClassStats{
			ReserveBytes: cl.ReserveBytes,
			Alpha:        cl.Alpha,
			Used:         bp.cls[i].used,
			HighWater:    bp.cls[i].highWater,
			Drops:        bp.cls[i].drops,
		}
	}
	return st, true
}

// NodeQueueDepth returns the transmit-queue occupancy of (id, portNum) in
// bytes, drained to node id's own domain clock: the private FIFO depth on
// poolless ports, the port's contribution to the shared pool otherwise.
// Like NodePoolStats it is safe from the node's own timer callbacks — the
// half-link and the clock belong to the node's domain — and deterministic
// at any -sim-workers value.
func (nw *Network) NodeQueueDepth(id NodeID, portNum int) int {
	ports := nw.ports[id]
	if portNum < 0 || portNum >= len(ports) {
		return 0
	}
	hl := ports[portNum].out
	hl.drainTo(nw.NodeNow(id))
	return hl.queued
}

// NodePortStats is PortStats readable from node id's own timer callbacks:
// the transmit-direction counters of (id, portNum). The counters are
// written only by the node's own sends, which execute in its domain, so
// reading them from the same domain is race-free. (PortStats itself is
// quiescent-context API; the implementation is identical, the contract is
// not.)
func (nw *Network) NodePortStats(id NodeID, portNum int) LinkStats {
	ports := nw.ports[id]
	if portNum < 0 || portNum >= len(ports) {
		return LinkStats{}
	}
	return ports[portNum].out.stats
}
