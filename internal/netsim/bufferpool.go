package netsim

import "fmt"

// Shared-memory switch buffers. Real switch ASICs do not give every port a
// private FIFO: all egress queues carve space out of one on-chip packet
// memory, arbitrated by a Dynamic Threshold (DT) policy in the style of
// Choudhury–Hahne. A node with a BufferPool attached charges every byte its
// half-links accept against the shared memory. Admission is per traffic
// class: each (port, class) queue owns a hard-carved reserve floor and may
// borrow beyond it up to
//
//	limit = reserve + alpha × free
//
// bytes, where free is the UNCOMMITTED memory: TotalBytes minus the sum of
// max(occupancy, reserve) over every (port, class) queue. Carving reserves
// out of the borrowable memory — instead of merely exempting a port below
// its floor from the threshold — makes the floor a physical guarantee: no
// alpha, however aggressive, lets one queue borrow bytes another queue's
// floor has set aside, so a queue inside its reserve is NEVER pool-rejected
// (it can only exhaust its own floor). alpha still trades isolation (small
// alpha: queues cannot starve each other beyond their floors) against
// utilization (large alpha: one hot queue may borrow nearly all uncommitted
// memory).
//
// alpha = 0 with reserve = total/ports degenerates into equal static
// partitioning — reserves then commit the whole memory, free is 0, and the
// pool reproduces the per-port model it replaces byte-for-byte, which the
// bigincast experiment uses as its comparison baseline.
//
// Nodes without a pool keep the standalone-link fallback: each half-link's
// private LinkConfig.QueueBytes FIFO, exactly as before pools existed, so
// historical figures stay reproducible.
//
// Domain ownership: a pool is touched only on admission and drain of
// half-links transmitting FROM its node, and a node's sends always execute
// in its own partition domain (the scheduling confinement contract in
// NodeAfter). Pool state therefore needs no locks and transitions in
// partition-invariant event order, keeping partitioned runs byte-identical.

// ClassConfig sizes one traffic class of a shared buffer pool. Every port
// of the pooled node gets its own hard reserve per class; classes are how
// tenants (or ACK vs DATA traffic) are isolated from each other on one
// fabric (see Network.SendClass and core.TreeConfig.DataClass/AckClass).
type ClassConfig struct {
	// ReserveBytes is the per-port hard floor for this class: the memory is
	// physically carved out of the borrowable pool, so a (port, class)
	// queue below it is never rejected. Default 0 (pure DT).
	ReserveBytes int
	// Alpha is the Dynamic Threshold factor: beyond its reserve, a queue
	// may hold up to Alpha × (uncommitted pool bytes) more. 0 disables
	// borrowing (static partitioning into reserves).
	Alpha float64
}

// PoolConfig sizes one node's shared buffer pool.
type PoolConfig struct {
	// TotalBytes is the shared packet memory (required, > 0).
	TotalBytes int

	// ReserveBytes/Alpha are the single-class shorthand: leaving Classes
	// empty is equivalent to Classes = []ClassConfig{{ReserveBytes, Alpha}}.
	// They must be zero when Classes is set.
	ReserveBytes int
	Alpha        float64

	// Classes declares the pool's traffic classes, indexed by the class a
	// frame is sent under (Network.SendClass). Frames sent with a class
	// outside [0, len) fold into class 0 — the best-effort default — so one
	// aggregation tree can span pools with different class counts.
	Classes []ClassConfig
}

// classes returns the normalized per-class configuration (never empty).
func (c PoolConfig) classes() []ClassConfig {
	if len(c.Classes) > 0 {
		return c.Classes
	}
	return []ClassConfig{{ReserveBytes: c.ReserveBytes, Alpha: c.Alpha}}
}

// sumReserve is one port's total hard carve: the per-class floors summed.
func (c PoolConfig) sumReserve() int {
	sum := 0
	for _, cl := range c.classes() {
		sum += cl.ReserveBytes
	}
	return sum
}

func (c PoolConfig) validate() error {
	if c.TotalBytes <= 0 {
		return fmt.Errorf("netsim: pool TotalBytes %d, want > 0", c.TotalBytes)
	}
	if len(c.Classes) > 0 && (c.ReserveBytes != 0 || c.Alpha != 0) {
		return fmt.Errorf("netsim: pool declares both Classes and legacy ReserveBytes/Alpha")
	}
	for i, cl := range c.classes() {
		if cl.ReserveBytes < 0 || cl.ReserveBytes > c.TotalBytes {
			return fmt.Errorf("netsim: pool class %d ReserveBytes %d outside [0, %d]",
				i, cl.ReserveBytes, c.TotalBytes)
		}
		if cl.Alpha < 0 {
			return fmt.Errorf("netsim: pool class %d Alpha %g, want >= 0", i, cl.Alpha)
		}
	}
	if sum := c.sumReserve(); sum > c.TotalBytes {
		return fmt.Errorf("netsim: pool class reserves sum to %d bytes, memory is %d",
			sum, c.TotalBytes)
	}
	return nil
}

// dtLimit is the Dynamic-Threshold borrowing allowance over the currently
// uncommitted memory: int(alpha × free), truncated toward zero. The
// truncation mode is load-bearing for the byte-identity contract — every
// admission decision must replay identically at any -sim-workers value and
// across re-cut schedules — so the rounding lives here, in exactly one
// place, pinned by TestDTLimitGolden. Do not change it silently.
func dtLimit(alpha float64, free int) int {
	return int(alpha * float64(free))
}

// ClassStats is the observable per-class state of one node's buffer pool.
type ClassStats struct {
	ReserveBytes int
	Alpha        float64
	Used         int    // bytes this class currently occupies, all ports
	HighWater    int    // max Used ever reached
	Drops        uint64 // admissions rejected for this class
}

// PoolStats is the observable state of one node's buffer pool.
type PoolStats struct {
	TotalBytes int
	// Used is the memory currently occupied (drained to the node's clock).
	Used int
	// Committed is the hard-carve commitment: Used plus every (port, class)
	// floor's unused remainder. TotalBytes − Committed is the borrowable
	// memory DT thresholds are computed over.
	Committed int
	// HighWater is the maximum occupancy ever reached — the headline
	// shared-buffer pressure statistic of the bigincast figure.
	HighWater int
	// Drops counts admissions the pool rejected, summed over all ports and
	// classes (per-port attribution is in each port's LinkStats.DropsPool,
	// per-class attribution in Classes).
	Drops uint64
	// Classes reports per-class occupancy and drops, indexed by class.
	Classes []ClassStats
}

// poolRec is one admitted frame awaiting serialization in the shared
// memory: completion time, size, and the (port slot, class) queue it
// occupies — needed to restore that queue's reserve commitment on drain.
type poolRec struct {
	done  Time
	size  int
	slot  int32
	class int32
}

// poolHeap is a monomorphic min-heap of poolRecs ordered by completion
// time. One node's ports serialize independently, so completions interleave
// across ports; the heap releases memory in completion order regardless of
// admission order.
type poolHeap []poolRec

func (h *poolHeap) push(r poolRec) {
	*h = append(*h, r)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].done <= q[i].done {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *poolHeap) pop() poolRec {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q[right].done < q[left].done {
			min = right
		}
		if q[min].done >= q[i].done {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// classAcct is one class's live accounting.
type classAcct struct {
	used      int
	highWater int
	drops     uint64
}

// BufferPool is one node's shared packet memory.
type BufferPool struct {
	cfg     PoolConfig
	classes []ClassConfig // normalized cfg.classes()
	carve   int           // cfg.sumReserve(): one port's full hard carve

	nSlots    int   // registered port slots
	occ       []int // occupancy per (slot, class): occ[slot*len(classes)+class]
	used      int   // Σ occ
	committed int   // Σ max(occ, reserve) — never exceeds TotalBytes
	highWater int
	drops     uint64
	cls       []classAcct
	pending   poolHeap
}

func newBufferPool(cfg PoolConfig) *BufferPool {
	classes := cfg.classes()
	return &BufferPool{
		cfg:     cfg,
		classes: classes,
		carve:   cfg.sumReserve(),
		cls:     make([]classAcct, len(classes)),
	}
}

// carvePorts registers n more port slots, carving each port's reserves out
// of the borrowable memory. Over-committing the physical memory with floors
// is the configuration error the hard-carve model exists to make loud: it
// is rejected here instead of silently degenerating at admission time.
func (bp *BufferPool) carvePorts(n int) error {
	if need := (bp.nSlots + n) * bp.carve; need > bp.cfg.TotalBytes {
		return fmt.Errorf("netsim: pool reserves over-committed: %d ports × %d reserve bytes = %d > %d total",
			bp.nSlots+n, bp.carve, need, bp.cfg.TotalBytes)
	}
	bp.nSlots += n
	bp.committed += n * bp.carve
	bp.occ = append(bp.occ, make([]int, n*len(bp.classes))...)
	return nil
}

// foldClass maps a frame's traffic class into the pool's configured class
// space: out-of-range classes are best-effort (class 0).
func (bp *BufferPool) foldClass(class int) int {
	if class < 0 || class >= len(bp.classes) {
		return 0
	}
	return class
}

// drainTo releases every admitted frame fully serialized at or before now,
// restoring each one's (port, class) reserve commitment as occupancy falls
// back under the floor.
func (bp *BufferPool) drainTo(now Time) {
	for len(bp.pending) > 0 && bp.pending[0].done <= now {
		r := bp.pending.pop()
		idx := int(r.slot)*len(bp.classes) + int(r.class)
		reserve := bp.classes[r.class].ReserveBytes
		q := bp.occ[idx]
		if q > reserve {
			floor := q - r.size
			if floor < reserve {
				floor = reserve
			}
			bp.committed -= q - floor
		}
		bp.occ[idx] = q - r.size
		bp.used -= r.size
		bp.cls[r.class].used -= r.size
	}
}

// admit decides whether the (slot, class) queue may add a size-byte frame.
// The caller must have drained the pool to now first, and folded the class.
//
// The hard-carve invariant — committed = Σ max(occ, reserve) ≤ TotalBytes,
// maintained by carvePorts/charge/drainTo — means a queue inside its floor
// always has physical room: its memory was set aside when the port joined.
// Beyond the floor, the borrowed growth must fit in the uncommitted memory
// AND stay under the class's dynamic threshold.
func (bp *BufferPool) admit(slot, class, size int) bool {
	cl := &bp.classes[class]
	q := bp.occ[slot*len(bp.classes)+class]
	after := q + size
	if after <= cl.ReserveBytes {
		return true // inside the hard floor: only the floor itself bounds us
	}
	free := bp.cfg.TotalBytes - bp.committed
	base := q
	if base < cl.ReserveBytes {
		base = cl.ReserveBytes // the floor absorbs the first reserve bytes
	}
	if after-base > free {
		return false // borrowable memory exhausted
	}
	return after <= cl.ReserveBytes+dtLimit(cl.Alpha, free)
}

// charge records an admitted frame occupying the (slot, class) queue until
// done, growing the commitment by the bytes borrowed beyond the floor.
func (bp *BufferPool) charge(slot, class int, done Time, size int) {
	idx := slot*len(bp.classes) + class
	cl := &bp.classes[class]
	q := bp.occ[idx]
	if after := q + size; after > cl.ReserveBytes {
		base := q
		if base < cl.ReserveBytes {
			base = cl.ReserveBytes
		}
		bp.committed += after - base
	}
	bp.occ[idx] = q + size
	bp.used += size
	if bp.used > bp.highWater {
		bp.highWater = bp.used
	}
	ca := &bp.cls[class]
	ca.used += size
	if ca.used > ca.highWater {
		ca.highWater = ca.used
	}
	bp.pending.push(poolRec{done: done, size: size, slot: int32(slot), class: int32(class)})
}

// rejected counts one refused admission against the pool and the class.
func (bp *BufferPool) rejected(class int) {
	bp.drops++
	bp.cls[class].drops++
}

// reset empties the memory (a crash/reboot losing all buffered frames):
// every class's occupancy returns to zero and the commitment to the bare
// floors, symmetrically across classes. Cumulative statistics survive:
// high-water marks and drop counts describe the run, not the current boot.
func (bp *BufferPool) reset() {
	bp.used = 0
	bp.committed = bp.nSlots * bp.carve
	for i := range bp.occ {
		bp.occ[i] = 0
	}
	for i := range bp.cls {
		bp.cls[i].used = 0
	}
	bp.pending = bp.pending[:0]
}

// SetNodePool attaches a shared buffer pool to node id: every half-link
// transmitting from id switches from its private LinkConfig.QueueBytes FIFO
// to DT admission against this pool. It may be called before or after the
// node's links are connected (later Connects join the pool automatically),
// but must precede Partition and any traffic. Reserves are validated
// against the ports present at call time; ports joining later re-check at
// Connect (which panics, as it does for its other configuration errors).
func (nw *Network) SetNodePool(id NodeID, cfg PoolConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if _, ok := nw.nodes[id]; !ok {
		return fmt.Errorf("netsim: SetNodePool: unknown node %d", id)
	}
	if nw.domains != nil {
		return fmt.Errorf("netsim: SetNodePool after Partition")
	}
	if nw.pools[id] != nil {
		return fmt.Errorf("netsim: node %d already has a pool", id)
	}
	bp := newBufferPool(cfg)
	if err := bp.carvePorts(len(nw.ports[id])); err != nil {
		return fmt.Errorf("netsim: node %d: %w", id, err)
	}
	nw.pools[id] = bp
	for slot, p := range nw.ports[id] {
		p.out.pool = bp
		p.out.poolSlot = int32(slot)
	}
	return nil
}

// PoolStats returns the current state of node id's buffer pool, drained to
// the fabric-wide clock, and whether the node has one. Call only while the
// network is quiescent (before Run, at a RunUntil control point, or after
// Run returns) — the fabric clock is only mode-independent there, which is
// what keeps reported occupancy byte-identical at any -sim-workers value.
func (nw *Network) PoolStats(id NodeID) (PoolStats, bool) {
	bp := nw.pools[id]
	if bp == nil {
		return PoolStats{}, false
	}
	bp.drainTo(nw.Now())
	st := PoolStats{
		TotalBytes: bp.cfg.TotalBytes,
		Used:       bp.used,
		Committed:  bp.committed,
		HighWater:  bp.highWater,
		Drops:      bp.drops,
		Classes:    make([]ClassStats, len(bp.classes)),
	}
	for i, cl := range bp.classes {
		st.Classes[i] = ClassStats{
			ReserveBytes: cl.ReserveBytes,
			Alpha:        cl.Alpha,
			Used:         bp.cls[i].used,
			HighWater:    bp.cls[i].highWater,
			Drops:        bp.cls[i].drops,
		}
	}
	return st, true
}

// ResetPool zeroes node id's egress buffer occupancy accounting — the
// shared pool, when the node has one, and every port's private queue
// accounting either way, so pooled and poolless switches crash the same
// way. Note the model's granularity: netsim schedules a frame's delivery
// at admission time (there is no separate departure event), so frames
// admitted before the crash still arrive at their neighbors, exactly as
// SetLinkState's in-flight semantics keep already-accepted frames alive
// across a link failure. What the reset changes is admission:
// post-restart traffic sees empty queues instead of inheriting the dead
// boot's occupancy. busyTill is deliberately NOT reset — the pre-crash
// frames still occupy the serializer's timeline, so clearing it would
// transiently double the port's effective bandwidth. Like all fault
// operations it may only be called while the network is quiescent.
func (nw *Network) ResetPool(id NodeID) {
	if bp := nw.pools[id]; bp != nil {
		bp.reset()
	}
	for _, p := range nw.ports[id] {
		hl := p.out
		hl.queued = 0
		hl.inflight.clear()
	}
}
