package netsim

import "fmt"

// Shared-memory switch buffers. Real switch ASICs do not give every port a
// private FIFO: all egress queues carve space out of one on-chip packet
// memory, arbitrated by a Dynamic Threshold (DT) policy in the style of
// Choudhury–Hahne. A node with a BufferPool attached charges every byte its
// half-links accept against the shared memory, and a port may only queue up
// to
//
//	limit = reserve + alpha × free
//
// bytes, where free is the pool memory not currently occupied by any port.
// The per-port reserve is a threshold floor: a port inside its reserve is
// exempt from the dynamic threshold (only physical memory exhaustion can
// reject it), so quiet ports stay ahead of the DT squeeze an incast flood
// causes; alpha trades isolation (small alpha: ports cannot starve each
// other) against utilization (large alpha: one hot port may borrow nearly
// all idle memory — including, at alpha > 0, bytes another port's floor
// would have admitted; hard carved reserves are a listed extension).
// alpha = 0 with reserve = total/ports degenerates into equal static
// partitioning — reserves then sum to the whole memory, the floor is a
// true guarantee, and the pool reproduces the per-port model it replaces,
// which the bigincast experiment uses as its comparison baseline.
//
// Nodes without a pool keep the standalone-link fallback: each half-link's
// private LinkConfig.QueueBytes FIFO, exactly as before pools existed, so
// historical figures stay reproducible.
//
// Domain ownership: a pool is touched only on admission and drain of
// half-links transmitting FROM its node, and a node's sends always execute
// in its own partition domain (the scheduling confinement contract in
// NodeAfter). Pool state therefore needs no locks and transitions in
// partition-invariant event order, keeping partitioned runs byte-identical.

// PoolConfig sizes one node's shared buffer pool.
type PoolConfig struct {
	// TotalBytes is the shared packet memory (required, > 0).
	TotalBytes int
	// ReserveBytes is the per-port threshold floor: up to this occupancy a
	// port is exempt from the dynamic threshold and can only be rejected
	// by physical memory exhaustion (with Alpha = 0, reserves are never
	// over-committed and the floor is a hard guarantee). Default 0 (pure
	// DT).
	ReserveBytes int
	// Alpha is the Dynamic Threshold factor: beyond its reserve, a port may
	// hold up to Alpha × (free pool bytes). 0 disables borrowing (static
	// partitioning into reserves).
	Alpha float64
}

// PoolStats is the observable state of one node's buffer pool.
type PoolStats struct {
	TotalBytes int
	// Used is the memory currently occupied (drained to the node's clock).
	Used int
	// HighWater is the maximum occupancy ever reached — the headline
	// shared-buffer pressure statistic of the bigincast figure.
	HighWater int
	// Drops counts admissions the pool rejected, summed over all ports
	// (per-port attribution is in each port's LinkStats.DropsPool).
	Drops uint64
}

// poolRec is one admitted frame awaiting serialization in the shared memory.
type poolRec struct {
	done Time
	size int
}

// poolHeap is a monomorphic min-heap of poolRecs ordered by completion
// time. One node's ports serialize independently, so completions interleave
// across ports; the heap releases memory in completion order regardless of
// admission order.
type poolHeap []poolRec

func (h *poolHeap) push(r poolRec) {
	*h = append(*h, r)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].done <= q[i].done {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *poolHeap) pop() poolRec {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q[right].done < q[left].done {
			min = right
		}
		if q[min].done >= q[i].done {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// BufferPool is one node's shared packet memory.
type BufferPool struct {
	cfg       PoolConfig
	used      int
	highWater int
	drops     uint64
	pending   poolHeap
}

func (c PoolConfig) validate() error {
	if c.TotalBytes <= 0 {
		return fmt.Errorf("netsim: pool TotalBytes %d, want > 0", c.TotalBytes)
	}
	if c.ReserveBytes < 0 || c.ReserveBytes > c.TotalBytes {
		return fmt.Errorf("netsim: pool ReserveBytes %d outside [0, %d]", c.ReserveBytes, c.TotalBytes)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("netsim: pool Alpha %g, want >= 0", c.Alpha)
	}
	return nil
}

// drainTo releases every admitted frame fully serialized at or before now.
func (bp *BufferPool) drainTo(now Time) {
	for len(bp.pending) > 0 && bp.pending[0].done <= now {
		bp.used -= bp.pending.pop().size
	}
}

// admit decides whether a port currently holding portQueued bytes may add a
// size-byte frame, under the dynamic threshold. The caller must have drained
// the pool to now first.
func (bp *BufferPool) admit(portQueued, size int) bool {
	free := bp.cfg.TotalBytes - bp.used
	if size > free {
		return false // the shared memory itself is full
	}
	after := portQueued + size
	if after <= bp.cfg.ReserveBytes {
		return true // inside the port's threshold floor
	}
	// Dynamic threshold: reserve plus a fraction of what is free right now.
	return after <= bp.cfg.ReserveBytes+int(bp.cfg.Alpha*float64(free))
}

// charge records an admitted frame occupying the memory until done.
func (bp *BufferPool) charge(done Time, size int) {
	bp.used += size
	if bp.used > bp.highWater {
		bp.highWater = bp.used
	}
	bp.pending.push(poolRec{done: done, size: size})
}

// reset empties the memory (a crash/reboot losing all buffered frames).
// Cumulative statistics survive: high-water marks and drop counts describe
// the run, not the current boot.
func (bp *BufferPool) reset() {
	bp.used = 0
	bp.pending = bp.pending[:0]
}

// SetNodePool attaches a shared buffer pool to node id: every half-link
// transmitting from id switches from its private LinkConfig.QueueBytes FIFO
// to DT admission against this pool. It may be called before or after the
// node's links are connected (later Connects join the pool automatically),
// but must precede Partition and any traffic.
func (nw *Network) SetNodePool(id NodeID, cfg PoolConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if _, ok := nw.nodes[id]; !ok {
		return fmt.Errorf("netsim: SetNodePool: unknown node %d", id)
	}
	if nw.domains != nil {
		return fmt.Errorf("netsim: SetNodePool after Partition")
	}
	if nw.pools[id] != nil {
		return fmt.Errorf("netsim: node %d already has a pool", id)
	}
	bp := &BufferPool{cfg: cfg}
	nw.pools[id] = bp
	for _, p := range nw.ports[id] {
		p.out.pool = bp
	}
	return nil
}

// PoolStats returns the current state of node id's buffer pool, drained to
// the fabric-wide clock, and whether the node has one. Call only while the
// network is quiescent (before Run, at a RunUntil control point, or after
// Run returns) — the fabric clock is only mode-independent there, which is
// what keeps reported occupancy byte-identical at any -sim-workers value.
func (nw *Network) PoolStats(id NodeID) (PoolStats, bool) {
	bp := nw.pools[id]
	if bp == nil {
		return PoolStats{}, false
	}
	bp.drainTo(nw.Now())
	return PoolStats{
		TotalBytes: bp.cfg.TotalBytes,
		Used:       bp.used,
		HighWater:  bp.highWater,
		Drops:      bp.drops,
	}, true
}

// ResetPool zeroes node id's egress buffer occupancy accounting — the
// shared pool, when the node has one, and every port's private queue
// accounting either way, so pooled and poolless switches crash the same
// way. Note the model's granularity: netsim schedules a frame's delivery
// at admission time (there is no separate departure event), so frames
// admitted before the crash still arrive at their neighbors, exactly as
// SetLinkState's in-flight semantics keep already-accepted frames alive
// across a link failure. What the reset changes is admission:
// post-restart traffic sees empty queues instead of inheriting the dead
// boot's occupancy. busyTill is deliberately NOT reset — the pre-crash
// frames still occupy the serializer's timeline, so clearing it would
// transiently double the port's effective bandwidth. Like all fault
// operations it may only be called while the network is quiescent.
func (nw *Network) ResetPool(id NodeID) {
	if bp := nw.pools[id]; bp != nil {
		bp.reset()
	}
	for _, p := range nw.ports[id] {
		hl := p.out
		hl.queued = 0
		hl.inflight.clear()
	}
}
