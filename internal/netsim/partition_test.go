package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// ---- conformance harness ----
//
// The partitioned engine's contract is replay identity: for the same
// topology and workload, every observable quantity — per-node arrival
// traces, link counters, final clock, even the executed event count — is
// byte-identical whether the fabric runs on one event heap or many. The
// tests here drive random cascading workloads through random topologies and
// compare full trace fingerprints across partition counts and repeated
// runs.

// chatter is a test node that reacts to every arriving frame by forwarding
// mutated copies to random ports, occasionally via a delayed timer. Its RNG
// is consumed strictly in event-execution order, so any divergence in event
// ordering between partitionings snowballs into a different trace
// immediately — it is a determinism amplifier.
type chatter struct {
	nw  *Network
	id  NodeID
	rng *rand.Rand
	log []string
}

func (c *chatter) Attach(nw *Network, id NodeID) {
	c.nw, c.id = nw, id
	c.rng = rand.New(rand.NewSource(int64(id)*0x9e3779b9 + 1))
}

func (c *chatter) HandleFrame(inPort int, frame []byte) {
	var sum uint32
	for _, b := range frame {
		sum = sum*131 + uint32(b)
	}
	c.log = append(c.log, fmt.Sprintf("%d:%d:%d:%x", c.nw.NodeNow(c.id), inPort, len(frame), sum))
	if len(frame) == 0 || frame[0] == 0 {
		return
	}
	nports := c.nw.NumPorts(c.id)
	if nports == 0 {
		return
	}
	// Forward 1-2 mutated, TTL-decremented copies.
	n := 1 + c.rng.Intn(2)
	for i := 0; i < n; i++ {
		nf := append([]byte(nil), frame...)
		nf[0]--
		if len(nf) > 1 {
			nf[1+c.rng.Intn(len(nf)-1)] ^= byte(1 + c.rng.Intn(255))
		}
		port := c.rng.Intn(nports)
		if c.rng.Intn(4) == 0 {
			// Delayed echo through the node's own timer path.
			d := Time(1 + c.rng.Intn(3000))
			c.nw.NodeAfter(c.id, d, func() { c.nw.Send(c.id, port, nf) })
		} else {
			c.nw.Send(c.id, port, nf)
		}
	}
}

// chatterWorld builds a random connected topology of n chatter nodes and
// injects the initial frames. Construction consumes only rng, so the same
// rng seed rebuilds the identical world.
func chatterWorld(t *testing.T, seed int64, n int) (*Network, []*chatter) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := New(uint64(seed))
	nodes := make([]*chatter, n)
	ids := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = &chatter{}
		ids[i] = NodeID(i + 1)
		nw.AddNode(ids[i], nodes[i])
	}
	bandwidths := []int64{100_000_000, 1_000_000_000, 10_000_000_000}
	props := []time.Duration{200 * time.Nanosecond, time.Microsecond, 5 * time.Microsecond}
	queues := []int{2 << 10, 64 << 10, 1 << 20}
	link := func(a, b NodeID) {
		cfg := LinkConfig{
			BandwidthBps: bandwidths[rng.Intn(len(bandwidths))],
			Propagation:  props[rng.Intn(len(props))],
			QueueBytes:   queues[rng.Intn(len(queues))],
		}
		if rng.Intn(4) == 0 {
			cfg.LossProb = 0.05 + 0.2*rng.Float64()
		}
		nw.Connect(a, b, cfg)
	}
	for i := 1; i < n; i++ { // spanning tree keeps the graph connected
		link(ids[i], ids[rng.Intn(i)])
	}
	for e := 0; e < n/2; e++ { // extra chords
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			link(ids[a], ids[b])
		}
	}
	return nw, nodes
}

// inject queues the initial workload: every node fires a few TTL'd frames
// at t=0, the synchronized-start shape that maximizes same-tick ties.
func inject(nw *Network, nodes []*chatter, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	for _, c := range nodes {
		for k := 0; k < 1+rng.Intn(3); k++ {
			frame := make([]byte, 2+rng.Intn(180))
			rng.Read(frame)
			frame[0] = byte(3 + rng.Intn(4)) // TTL
			nw.Send(c.id, rng.Intn(nw.NumPorts(c.id)), frame)
		}
	}
}

// randomGroups deals the n nodes into k groups at random (some may come out
// empty; Partition filters them).
func randomGroups(n, k int, seed int64) [][]NodeID {
	rng := rand.New(rand.NewSource(seed ^ 0x27d4eb2f))
	groups := make([][]NodeID, k)
	for i := 0; i < n; i++ {
		g := rng.Intn(k)
		groups[g] = append(groups[g], NodeID(i+1))
	}
	return groups
}

// fingerprint renders everything the determinism contract covers.
func fingerprint(nw *Network, nodes []*chatter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%v processed=%d total=%+v\n", nw.Now(), nw.Processed(), nw.TotalStats())
	sorted := append([]*chatter(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	for _, c := range sorted {
		fmt.Fprintf(&b, "node %d:", c.id)
		for p := 0; p < nw.NumPorts(c.id); p++ {
			fmt.Fprintf(&b, " p%d=%+v", p, nw.PortStats(c.id, p))
		}
		fmt.Fprintf(&b, " log=%s\n", strings.Join(c.log, ","))
	}
	return b.String()
}

// runWorld builds, optionally partitions, injects, runs, and fingerprints
// one world.
func runWorld(t *testing.T, seed int64, n, domains int) string {
	t.Helper()
	nw, nodes := chatterWorld(t, seed, n)
	if domains > 1 {
		if err := nw.Partition(randomGroups(n, domains, seed)); err != nil {
			t.Fatal(err)
		}
	}
	inject(nw, nodes, seed)
	if err := nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return fingerprint(nw, nodes)
}

// TestPartitionConformanceProperty is the netsim-level conformance suite:
// random topologies and workloads replay byte-identically across partition
// counts (including randomly unbalanced cuts) and across repeated runs.
func TestPartitionConformanceProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("world-%d", trial), func(t *testing.T) {
			t.Parallel()
			seed := int64(1000 + 77*trial)
			n := 8 + trial*3
			seq := runWorld(t, seed, n, 1)
			for _, domains := range []int{2, 3, 4} {
				got := runWorld(t, seed, n, domains)
				if got != seq {
					t.Fatalf("replay diverged at %d domains:\nsequential:\n%s\npartitioned:\n%s",
						domains, seq, got)
				}
			}
			// Repeated run at the same partitioning: identical again.
			if again := runWorld(t, seed, n, 4); again != seq {
				t.Fatal("repeated partitioned run diverged")
			}
		})
	}
}

// TestPartitionSmallLookaheadStress shrinks every link's propagation to a
// handful of ticks, forcing a barrier every few events — the regime that
// shakes out mailbox-ordering and window-boundary bugs, and the dedicated
// workload of the CI -race job.
func TestPartitionSmallLookaheadStress(t *testing.T) {
	run := func(domains int) string {
		nw := New(99)
		nodes := make([]*chatter, 12)
		for i := range nodes {
			nodes[i] = &chatter{}
			nw.AddNode(NodeID(i+1), nodes[i])
		}
		// Ring + chords, all with tiny propagation: lookahead = 51 ticks.
		cfg := LinkConfig{Propagation: 50 * time.Nanosecond, QueueBytes: 16 << 10}
		for i := range nodes {
			nw.Connect(NodeID(i+1), NodeID((i+1)%len(nodes)+1), cfg)
		}
		for i := 0; i < len(nodes); i += 3 {
			nw.Connect(NodeID(i+1), NodeID((i+len(nodes)/2)%len(nodes)+1), cfg)
		}
		if domains > 1 {
			groups := make([][]NodeID, domains)
			for i := range nodes {
				g := i % domains
				groups[g] = append(groups[g], NodeID(i+1))
			}
			if err := nw.Partition(groups); err != nil {
				t.Fatal(err)
			}
		}
		for i := range nodes {
			frame := make([]byte, 40)
			frame[0] = 6 // TTL
			frame[20] = byte(i)
			nw.Send(NodeID(i+1), 0, frame)
		}
		if err := nw.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return fingerprint(nw, nodes)
	}
	seq := run(1)
	for _, d := range []int{2, 4} {
		if got := run(d); got != seq {
			t.Fatalf("small-lookahead run diverged at %d domains", d)
		}
	}
}

// TestPartitionEventBudgetTotal pins the budget semantics the issue fixes:
// maxEvents bounds the TOTAL events executed across all domains, charged
// per event, so the limit is honored exactly — well within one lookahead
// window — and the error surfaces like the sequential one.
func TestPartitionEventBudgetTotal(t *testing.T) {
	build := func(domains int) (*Network, []*chatter) {
		nw := New(7)
		nodes := make([]*chatter, 4)
		for i := range nodes {
			nodes[i] = &chatter{}
			nw.AddNode(NodeID(i+1), nodes[i])
		}
		cfg := LinkConfig{QueueBytes: 1 << 20}
		for i := 0; i < len(nodes); i++ {
			nw.Connect(NodeID(i+1), NodeID((i+1)%len(nodes)+1), cfg)
		}
		if domains > 1 {
			nw.Partition([][]NodeID{{1, 2}, {3, 4}})
		}
		for i := range nodes {
			frame := make([]byte, 32)
			frame[0] = 14 // TTL: a cascade of a few thousand events
			nw.Send(NodeID(i+1), 0, frame)
		}
		return nw, nodes
	}

	// Establish how many events the unbounded run needs.
	nw, _ := build(2)
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	total := nw.Processed()
	if total < 100 {
		t.Fatalf("cascade too small to test budgets: %d events", total)
	}

	// A budget below the total must fail with exactly budget events run.
	budget := total / 2
	nw, _ = build(2)
	err := nw.Run(budget)
	if err == nil {
		t.Fatalf("budget %d of %d events: want error", budget, total)
	}
	if !strings.Contains(err.Error(), "event budget") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := nw.Processed(); got != budget {
		t.Fatalf("executed %d events under budget %d; the budget must be total across domains", got, budget)
	}

	// A budget at or above the total must succeed.
	nw, _ = build(2)
	if err := nw.Run(total + 1); err != nil {
		t.Fatalf("budget %d over total %d: %v", total+1, total, err)
	}
	if got := nw.Processed(); got != total {
		t.Fatalf("processed %d, want %d", got, total)
	}

	// Boundary parity with the sequential engine: a budget of exactly the
	// event count succeeds in both modes, and the sequential twin runs the
	// same number of events.
	nw, _ = build(2)
	if err := nw.Run(total); err != nil {
		t.Fatalf("partitioned: budget == total must succeed: %v", err)
	}
	nw, _ = build(1)
	if err := nw.Run(total); err != nil {
		t.Fatalf("sequential: budget == total must succeed: %v", err)
	}
	if got := nw.Processed(); got != total {
		t.Fatalf("sequential processed %d, want %d (event counts must agree across modes)", got, total)
	}
}

// TestPartitionValidation covers the configuration contract.
func TestPartitionValidation(t *testing.T) {
	mk := func() *Network {
		nw := New(1)
		nw.AddNode(1, &chatter{})
		nw.AddNode(2, &chatter{})
		nw.Connect(1, 2, LinkConfig{})
		return nw
	}

	if err := mk().Partition([][]NodeID{{1, 2}}); err != nil {
		t.Fatalf("single group must be a sequential no-op: %v", err)
	}
	if err := mk().Partition([][]NodeID{{1}, {2, 2}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := mk().Partition([][]NodeID{{1}, {3}}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := mk().Partition([][]NodeID{{1}}); err != nil {
		t.Fatalf("partial single group is still sequential: %v", err)
	}
	if err := mk().Partition([][]NodeID{{1}, {}}); err != nil {
		t.Fatalf("empty groups must be filtered: %v", err)
	}
	nw := mk()
	if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if nw.Domains() != 2 {
		t.Fatalf("domains = %d", nw.Domains())
	}
	if err := nw.Partition([][]NodeID{{1}, {2}}); err == nil {
		t.Fatal("double partition accepted")
	}

	// Traffic before Partition: rejected.
	nw = mk()
	nw.Send(1, 0, []byte{1})
	if err := nw.Partition([][]NodeID{{1}, {2}}); err == nil {
		t.Fatal("partition after traffic accepted")
	}

	// Topology changes after Partition: panic.
	nw = mk()
	if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AddNode after Partition did not panic")
			}
		}()
		nw.AddNode(3, &chatter{})
	}()
}

// TestPartitionNodePanicPropagates keeps the sequential contract that a
// panicking node callback surfaces to Run's caller, even from a domain
// goroutine.
func TestPartitionNodePanicPropagates(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &chatter{})
	nw.AddNode(2, &panicNode{})
	nw.Connect(1, 2, LinkConfig{})
	if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 0, []byte{1, 2, 3})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("node panic swallowed by partitioned run")
		}
	}()
	_ = nw.Run(0)
}

type panicNode struct{}

func (p *panicNode) Attach(*Network, NodeID) {}
func (p *panicNode) HandleFrame(int, []byte) { panic("node exploded") }
