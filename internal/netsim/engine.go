// Package netsim is a deterministic discrete-event, packet-level network
// simulator: the substrate standing in for the paper's single-server bmv2
// testbed and, by extension, for a hardware deployment's data-center fabric.
//
// Design goals, in order: determinism (same seed, same result — experiments
// are asserted in tests), measurement fidelity for the quantities the paper
// reports (packets and bytes arriving at tree roots, queueing behaviour),
// and speed (an event loop with no goroutine-per-packet and no per-frame
// heap allocation — see arena.go; optionally one event loop per fabric
// partition, see Network.Partition).
//
// Frames are raw []byte throughout; nodes parse them with internal/wire and
// internal/dataplane, never via Go-struct side channels.
package netsim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time int64

// Duration converts a time.Duration into simulator ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// String renders the time as a time.Duration for diagnostics.
func (t Time) String() string { return time.Duration(t).String() }

// event is one scheduled callback, packed to 32 bytes with no pointers so
// heap sift copies stay cheap and the GC never scans the queue. Events are
// totally ordered by (at, src, seq): src names the deterministic origin
// that scheduled the event (a node, a half-link, or 0 for setup code) and
// seq is that origin's own schedule counter. Because both components are
// derived from the origin's causal history — never from the global
// interleaving of the event loop — the order is identical whether the
// fabric runs on one event heap or on one heap per partition domain, and
// survives any dynamic re-cut (migration moves events between heaps but
// never rewrites their keys). That invariance is what makes partitioned
// runs byte-identical to sequential ones (asserted by the conformance
// tests in this package and in internal/experiments).
type event struct {
	at  Time
	src uint64
	seq uint64
	// slot locates the event's payload in its engine's arenas: slot >= 0
	// is a frameArena slot (a frame delivery), slot < 0 is ^slot into the
	// fnArena (a callback). See arena.go.
	slot int32
	// exec is the origin context the callback runs under: events the
	// callback schedules are keyed (exec, exec's counter). For timers this
	// equals src; for frame deliveries it is the destination node. Always
	// a 24-bit node ID (or 0 for setup), so it fits uint32.
	exec uint32
}

// eventHeap is a monomorphic binary min-heap ordered by (at, src, seq). It
// replaces container/heap, whose interface{}-typed Push/Pop box every
// event (one allocation per scheduled event) and dispatch comparisons
// through an interface table — measurable overhead on the simulator's
// hottest path. Events live inline in the backing slice; push and pop
// allocate only when the slice itself grows.
type eventHeap []event

// less orders events by timestamp, then by the partition-invariant
// (origin, sequence) key, keeping same-tick events in a deterministic order
// that does not depend on how the fabric is partitioned.
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].seq < h[j].seq
}

// push inserts e and restores the heap invariant by sifting up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event. Events hold no pointers (the
// arenas do), so the vacated tail slot needs no zeroing.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q

	// Sift down from the root.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// init re-establishes the heap invariant over arbitrary contents (used
// after a re-cut filters migrated events out of the backing slice).
func (h eventHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		for {
			left := 2*i + 1
			if left >= n {
				break
			}
			min := left
			if right := left + 1; right < n && h.less(right, left) {
				min = right
			}
			if !h.less(min, i) {
				break
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
}

// budget is the event bound shared by every domain of a partitioned run:
// the total executed across all domains may not exceed max. Domains draw
// allowance in chunks (budgetChunk events at a time) and spend it with
// plain local arithmetic, so the hot path touches the shared atomic once
// per chunk instead of once per event; the unspent remainder is refunded
// at the end of the window, which restores used == events actually
// executed before the coordinator inspects the counter at the barrier —
// the bound stays exact at the stop boundary.
type budget struct {
	used atomic.Uint64
	max  uint64
}

// budgetChunk is the per-domain allowance drawn from the shared budget in
// one reserve. Large enough to amortize the atomic across a window, small
// enough that a near-exhausted budget still spreads over all domains.
const budgetChunk = 256

// reserve draws up to want events of allowance, clamped to what remains.
// Returns 0 when the budget is spent.
func (b *budget) reserve(want uint64) uint64 {
	for {
		u := b.used.Load()
		if u >= b.max {
			return 0
		}
		n := b.max - u
		if n > want {
			n = want
		}
		if b.used.CompareAndSwap(u, u+n) {
			return n
		}
	}
}

// refund returns unspent allowance, so used counts executed events again.
func (b *budget) refund(n uint64) {
	if n != 0 {
		b.used.Add(^(n - 1))
	}
}

// Engine is the discrete-event core: a clock, an ordered event queue, and
// the arenas holding the queued events' payloads. It is not safe for
// concurrent use; a simulation runs either entirely on the caller's
// goroutine or, when the Network is partitioned, with one Engine per
// domain, each confined to its domain's goroutine between barriers.
type Engine struct {
	now    Time
	events eventHeap
	// Processed counts executed events, a cheap progress/livelock indicator.
	Processed uint64
	// txFrames counts frames accepted by this engine's transmitters (the
	// per-domain share of Network.TotalStats().TxFrames).
	txFrames uint64

	// frames/fns hold the payloads of queued events (see arena.go). One
	// arena pair per engine: a domain's in-flight state lives with its
	// heap, so re-cut migration moves slot contents between arenas.
	frames frameArena
	fns    fnArena

	// origin is the ordering-origin context of the currently executing
	// event (0 outside event execution, i.e. during setup). counter caches
	// the per-origin schedule counter so the hot path pays one map lookup
	// per origin *switch*, not per scheduled event.
	origin   uint64
	counter  *uint64
	counters map[uint64]*uint64
}

// NewEngine returns an engine at time zero with an empty queue.
func NewEngine() *Engine {
	e := &Engine{counters: make(map[uint64]*uint64)}
	e.counter = e.counterFor(0)
	return e
}

func (e *Engine) counterFor(origin uint64) *uint64 {
	c := e.counters[origin]
	if c == nil {
		c = new(uint64)
		e.counters[origin] = c
	}
	return c
}

// adoptSetupCounter replaces the engine's origin-0 (setup) schedule
// counter with a shared one. Partition points every domain engine at one
// network-wide setup counter so setup-scheduled events carry globally
// unique, program-ordered keys — without this, a dynamic re-cut could
// merge two heaps whose setup events carry colliding (0, seq) keys.
func (e *Engine) adoptSetupCounter(c *uint64) {
	e.counters[0] = c
	if e.origin == 0 {
		e.counter = c
	}
}

// setOrigin switches the scheduling context to origin (the executing
// event's exec field).
func (e *Engine) setOrigin(origin uint64) {
	if origin != e.origin {
		e.origin = origin
		e.counter = e.counterFor(origin)
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at time at. Scheduling in the past is a programming
// error and panics: allowing it would silently reorder causality. The event
// is keyed under the current origin context, so callbacks scheduled by one
// node (or by setup code) keep their relative order under any partitioning.
func (e *Engine) Schedule(at Time, fn func()) {
	e.scheduleOwned(at, NodeID(e.origin), fn)
}

// scheduleOwned is Schedule with an explicit re-cut owner: the node whose
// domain the pending callback must follow if the fabric is re-cut before
// it fires. Network.NodeAfter passes the target node, so even timers
// scheduled by setup code (origin 0) migrate with their node.
//
// Setup-context schedules with a real owner are keyed by the owner, not
// by origin 0: the owner's counter lives in (and migrates with) the
// node's domain, so concurrent domains never touch the shared setup
// counter mid-run — under origin-0 keys, two domains executing
// setup-scheduled callbacks would race on that counter and stamp
// interleaving-dependent sequence numbers. The owner key is
// partition-invariant, so sequential and partitioned runs still agree
// byte-for-byte; the callback also *executes* as the owner (exec), so
// everything it schedules in turn stays owner-keyed.
func (e *Engine) scheduleOwned(at Time, owner NodeID, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("netsim: schedule at %v before now %v", at, e.now))
	}
	src := e.origin
	ctr := e.counter
	if src == 0 && owner != 0 {
		src = uint64(owner)
		ctr = e.counterFor(src)
	}
	*ctr++
	slot := e.fns.alloc(owner, fn)
	e.events.push(event{at: at, src: src, seq: *ctr, slot: ^slot, exec: uint32(src)})
}

// scheduleFrame enqueues a frame delivery under an explicit (src, seq)
// ordering key derived from the transmitting half-link — identical no
// matter which domain heap the event lands in. The delivery record lives
// in this engine's frame arena; this is the only way a frame enters an
// arena (the cross-domain barrier hands mailed frames back through here).
func (e *Engine) scheduleFrame(at Time, src, seq uint64, dst NodeID, n Node, port int32, frame []byte) {
	if at < e.now {
		panic(fmt.Sprintf("netsim: schedule at %v before now %v", at, e.now))
	}
	slot := e.frames.alloc(n, port, frame)
	e.events.push(event{at: at, src: src, seq: seq, slot: slot, exec: uint32(dst)})
}

// After runs fn d ticks from now.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Step executes the single earliest event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.Processed++
	e.setOrigin(uint64(ev.exec))
	if ev.slot >= 0 {
		n, port, frame := e.frames.take(ev.slot)
		if n != nil {
			n.HandleFrame(int(port), frame)
		}
	} else {
		fn, _ := e.fns.take(^ev.slot)
		fn()
	}
	return true
}

// eventOwner resolves the node a queued event migrates with on re-cut:
// the destination for frame deliveries, the recorded owner for callbacks.
func (e *Engine) eventOwner(ev event) NodeID {
	if ev.slot >= 0 {
		return NodeID(ev.exec)
	}
	return e.fns.owner[^ev.slot]
}

// extractMoved removes every queued event whose owner the re-cut assigns
// to a different domain, handing each to emit together with its arena
// payload, and re-heapifies the remainder. Cold path: runs only inside
// Network.Repartition at a quiescent barrier.
func (e *Engine) extractMoved(moves func(owner NodeID) bool, emit func(ev event, owner NodeID, n Node, port int32, frame []byte, fn func())) {
	kept := e.events[:0]
	for _, ev := range e.events {
		owner := e.eventOwner(ev)
		if !moves(owner) {
			kept = append(kept, ev)
			continue
		}
		if ev.slot >= 0 {
			n, port, frame := e.frames.take(ev.slot)
			emit(ev, owner, n, port, frame, nil)
		} else {
			fn, _ := e.fns.take(^ev.slot)
			emit(ev, owner, nil, 0, nil, fn)
		}
	}
	e.events = kept
	e.events.init()
}

// adopt re-homes a migrated event: the payload is re-slotted into this
// engine's arenas (keeping its original ordering key) and pushed.
func (e *Engine) adopt(ev event, owner NodeID, n Node, port int32, frame []byte, fn func()) {
	if ev.slot >= 0 {
		ev.slot = e.frames.alloc(n, port, frame)
	} else {
		ev.slot = ^e.fns.alloc(owner, fn)
	}
	e.events.push(ev)
}

// Run drains the event queue. maxEvents bounds runaway simulations
// (retransmission livelock under 100% loss, for example); it returns an
// error when events remain beyond the bound and nil when the queue
// empties — a simulation of exactly maxEvents events succeeds, matching
// the partitioned engine's total-budget semantics.
func (e *Engine) Run(maxEvents uint64) error {
	defer e.setOrigin(0)
	for i := uint64(0); ; i++ {
		if maxEvents > 0 && i >= maxEvents {
			if len(e.events) == 0 {
				return nil
			}
			return fmt.Errorf("netsim: event budget %d exhausted at t=%v (%d pending)",
				maxEvents, e.now, len(e.events))
		}
		if !e.Step() {
			return nil
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then stops and
// advances the clock to the deadline. Remaining events stay queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.setOrigin(0)
}

// runWindow executes every queued event strictly earlier than horizon,
// spending chunked allowance from the shared budget (nil = unlimited). It
// reports whether the budget ran out mid-window; the caller re-checks the
// counter at the barrier, after every domain's refund, because a reserve
// that found the budget transiently drained may have been racing chunks
// other domains were about to return. This is one domain's share of one
// conservative horizon window; the caller provides the barrier.
func (e *Engine) runWindow(horizon Time, bud *budget) (exhausted bool) {
	if bud == nil {
		for len(e.events) > 0 && e.events[0].at < horizon {
			e.Step()
		}
		e.setOrigin(0)
		return false
	}
	var allow uint64
	for len(e.events) > 0 && e.events[0].at < horizon {
		if allow == 0 {
			if allow = bud.reserve(budgetChunk); allow == 0 {
				e.setOrigin(0)
				return true
			}
		}
		allow--
		e.Step()
	}
	bud.refund(allow)
	e.setOrigin(0)
	return false
}

// advanceTo moves the clock forward to t without executing anything. The
// partitioned RunUntil uses it at the final barrier so every domain clock
// agrees with the sequential engine's post-RunUntil time; callers must have
// drained all events <= t first.
func (e *Engine) advanceTo(t Time) {
	if e.now < t {
		e.now = t
	}
}

// next returns the timestamp of the earliest queued event, or ok=false when
// the queue is empty.
func (e *Engine) next() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
