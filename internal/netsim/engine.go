// Package netsim is a deterministic discrete-event, packet-level network
// simulator: the substrate standing in for the paper's single-server bmv2
// testbed and, by extension, for a hardware deployment's data-center fabric.
//
// Design goals, in order: determinism (same seed, same result — experiments
// are asserted in tests), measurement fidelity for the quantities the paper
// reports (packets and bytes arriving at tree roots, queueing behaviour),
// and speed (single-threaded event loop, no goroutine-per-packet).
//
// Frames are raw []byte throughout; nodes parse them with internal/wire and
// internal/dataplane, never via Go-struct side channels.
package netsim

import (
	"fmt"
	"time"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time int64

// Duration converts a time.Duration into simulator ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// String renders the time as a time.Duration for diagnostics.
func (t Time) String() string { return time.Duration(t).String() }

// event is one scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier, keeping the simulation fully deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a monomorphic binary min-heap ordered by (at, seq). It
// replaces container/heap, whose interface{}-typed Push/Pop box every
// event (one allocation per scheduled event) and dispatch comparisons
// through an interface table — measurable overhead on the simulator's
// hottest path. Events live inline in the backing slice; push and pop
// allocate only when the slice itself grows.
type eventHeap []event

// less orders events by timestamp, then by scheduling sequence, keeping
// same-tick events in FIFO order and the simulation fully deterministic.
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts e and restores the heap invariant by sifting up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the popped callback's closure becomes collectable.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q

	// Sift down from the root.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Engine is the discrete-event core: a clock and an ordered event queue.
// It is not safe for concurrent use; the entire simulation runs on the
// caller's goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// Processed counts executed events, a cheap progress/livelock indicator.
	Processed uint64
}

// NewEngine returns an engine at time zero with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at time at. Scheduling in the past is a programming
// error and panics: allowing it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("netsim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d ticks from now.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Step executes the single earliest event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.Processed++
	ev.fn()
	return true
}

// Run drains the event queue. maxEvents bounds runaway simulations
// (retransmission livelock under 100% loss, for example); it returns an
// error when the bound is hit and nil when the queue empties.
func (e *Engine) Run(maxEvents uint64) error {
	for i := uint64(0); ; i++ {
		if maxEvents > 0 && i >= maxEvents {
			return fmt.Errorf("netsim: event budget %d exhausted at t=%v (%d pending)",
				maxEvents, e.now, len(e.events))
		}
		if !e.Step() {
			return nil
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then stops and
// advances the clock to the deadline. Remaining events stay queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
