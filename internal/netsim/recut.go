package netsim

import (
	"fmt"
	"math/rand"

	"github.com/daiet/daiet/internal/hashing"
)

// Measured-skew dynamic re-partitioning.
//
// A static rack cut balances *predicted* load (topology's link-degree
// model), but real workloads drift: an incast pushes most events into the
// root's domain, a failed rack goes idle. At every window barrier the
// fabric is quiescent — mail flushed, no domain goroutine running — which
// makes the barrier a safe control point to compare the measured
// per-domain event rates (Network.DomainEvents deltas) against the cut's
// prediction and re-cut when the skew exceeds a threshold, migrating node
// state, pending events and their arena payloads between domains.
//
// Determinism is preserved by construction: events are ordered by
// (timestamp, origin, seq) keys that never change, migration only moves
// events between heaps, and both the trigger (virtual time + event
// counts) and the schedule jitter (seeded rng) are pure functions of the
// simulation's own deterministic state. A run with any re-cut schedule is
// byte-identical to the sequential run — the conformance tests assert it
// with randomized schedules.

// RecutPolicy configures dynamic re-partitioning on a partitioned
// network. Groups receives the current grouping and the per-domain event
// counts measured since the previous evaluation, and returns the new cut
// (one group per existing domain; nil keeps the current cut).
type RecutPolicy struct {
	// Interval is the virtual time between skew evaluations (> 0).
	Interval Time
	// MinSkewPct triggers a re-cut when the busiest domain's measured
	// event count exceeds the mean by more than this percentage.
	MinSkewPct float64
	// Seed, when non-zero, jitters each evaluation interval uniformly in
	// [Interval/2, 3*Interval/2] from a deterministic stream — a seeded
	// random re-cut schedule for conformance stress.
	Seed uint64
	// Groups computes the new cut from the current one and the measured
	// per-domain loads.
	Groups func(current [][]NodeID, measured []uint64) [][]NodeID
}

// recutState is the network's live re-cut bookkeeping.
type recutState struct {
	pol     RecutPolicy
	nextAt  Time
	last    []uint64 // DomainEvents snapshot at the previous evaluation
	rng     *rand.Rand
	evals   uint64
	applied uint64
}

func (st *recutState) interval() Time {
	iv := st.pol.Interval
	if st.rng != nil {
		iv = iv/2 + Time(st.rng.Int63n(int64(iv)+1))
	}
	return iv
}

// SetRecutPolicy installs dynamic re-partitioning. The network must
// already be partitioned; call while quiescent (setup, or a RunUntil
// control point).
func (nw *Network) SetRecutPolicy(p RecutPolicy) error {
	if nw.domains == nil {
		return fmt.Errorf("netsim: SetRecutPolicy on an unpartitioned network")
	}
	if p.Interval <= 0 {
		return fmt.Errorf("netsim: recut policy needs a positive Interval")
	}
	if p.Groups == nil {
		return fmt.Errorf("netsim: recut policy needs a Groups func")
	}
	st := &recutState{pol: p, last: make([]uint64, len(nw.domains))}
	if p.Seed != 0 {
		st.rng = rand.New(rand.NewSource(int64(hashing.Mix64(p.Seed))))
	}
	for i, d := range nw.domains {
		st.last[i] = d.eng.Processed
	}
	st.nextAt = nw.Now() + st.interval()
	nw.recut = st
	return nil
}

// Recuts returns how many dynamic re-cuts have been applied so far.
func (nw *Network) Recuts() uint64 {
	if nw.recut == nil {
		return 0
	}
	return nw.recut.applied
}

// maybeRecut runs one skew evaluation at a window barrier: measure
// per-domain event rates since the last evaluation, advance the schedule
// past next, and re-cut via the policy when the spread is above
// threshold. Caller guarantees quiescence (outboxes empty).
func (nw *Network) maybeRecut(next Time) error {
	st := nw.recut
	for next >= st.nextAt {
		st.nextAt += st.interval()
	}
	st.evals++
	meas := make([]uint64, len(nw.domains))
	var total, max uint64
	for i, d := range nw.domains {
		meas[i] = d.eng.Processed - st.last[i]
		st.last[i] = d.eng.Processed
		total += meas[i]
		if meas[i] > max {
			max = meas[i]
		}
	}
	if total == 0 {
		return nil
	}
	mean := float64(total) / float64(len(nw.domains))
	skewPct := (float64(max) - mean) / mean * 100
	if skewPct <= st.pol.MinSkewPct {
		return nil
	}
	current := make([][]NodeID, len(nw.domains))
	for i, d := range nw.domains {
		current[i] = append([]NodeID(nil), d.nodes...)
	}
	groups := st.pol.Groups(current, meas)
	if groups == nil {
		return nil
	}
	if err := nw.Repartition(groups); err != nil {
		return fmt.Errorf("netsim: dynamic re-cut: %w", err)
	}
	st.applied++
	return nil
}

// Repartition re-cuts a partitioned network onto a new node grouping
// (groups[i] becomes domain i's node set; exactly one group per existing
// domain, every node in exactly one group). It migrates pending events —
// with their arena payloads — and per-node schedule counters to the
// domains that now own them, rebinds the moved nodes' incident half-links,
// and refreshes the per-pair lookahead matrix from the maintained cut-link
// set (O(moved × degree + cut links), not a full link rescan). Ordering
// keys are never rewritten, so the total event order, and therefore every
// simulation result, is unchanged.
//
// It may only be called while the network is quiescent: between Run /
// RunUntil calls, or (internally) at a window barrier. Calling it with
// undelivered cross-domain mail is an error.
func (nw *Network) Repartition(groups [][]NodeID) error {
	if nw.domains == nil {
		return fmt.Errorf("netsim: Repartition before Partition")
	}
	if len(groups) != len(nw.domains) {
		return fmt.Errorf("netsim: Repartition with %d groups for %d domains",
			len(groups), len(nw.domains))
	}
	for _, d := range nw.domains {
		for _, box := range d.out {
			if len(box) != 0 {
				return fmt.Errorf("netsim: Repartition with undelivered cross-domain mail")
			}
		}
	}
	// A re-cut can shrink a pair's lookahead, so it is only safe at an
	// aligned barrier: every pending event at or beyond every domain clock.
	// Between Run/RunUntil calls this always holds (advanceTo equalizes the
	// clocks); the internal path aligns the fabric before calling here.
	var maxClock Time
	for _, d := range nw.domains {
		if d.eng.now > maxClock {
			maxClock = d.eng.now
		}
	}
	for _, d := range nw.domains {
		if at, ok := d.eng.next(); ok && at < maxClock {
			return fmt.Errorf("netsim: Repartition at a skewed barrier (event at %v behind clock %v)",
				at, maxClock)
		}
	}
	nodeDom := make(map[NodeID]*domain, len(nw.nodes))
	var movedNodes []NodeID
	for i, g := range groups {
		d := nw.domains[i]
		for _, id := range g {
			if _, ok := nw.nodes[id]; !ok {
				return fmt.Errorf("netsim: re-cut group %d names unknown node %d", i, id)
			}
			if _, dup := nodeDom[id]; dup {
				return fmt.Errorf("netsim: node %d appears in two re-cut groups", id)
			}
			nodeDom[id] = d
			if nw.nodeDom[id] != d {
				movedNodes = append(movedNodes, id)
			}
		}
	}
	if len(nodeDom) != len(nw.nodes) {
		return fmt.Errorf("netsim: re-cut covers %d of %d nodes", len(nodeDom), len(nw.nodes))
	}
	if len(movedNodes) == 0 {
		return nil
	}

	// Move per-node schedule counters to the engines that now own the
	// nodes (iterating the group slices keeps the order deterministic;
	// counter values travel so origin sequences stay monotone).
	for i, g := range groups {
		to := nw.domains[i].eng
		for _, id := range g {
			from := nw.nodeDom[id]
			if from == nw.domains[i] {
				continue
			}
			key := uint64(id)
			if c, ok := from.eng.counters[key]; ok {
				delete(from.eng.counters, key)
				to.counters[key] = c
			}
		}
	}

	// Migrate pending events whose owner moved: extract from each source
	// heap (with arena payloads), then adopt into the destination heaps.
	// Two passes so no heap is pushed to while it is being filtered.
	type moved struct {
		ev    event
		owner NodeID
		node  Node
		port  int32
		frame []byte
		fn    func()
	}
	moves := make([][]moved, len(nw.domains))
	for _, d := range nw.domains {
		src := d
		d.eng.extractMoved(
			func(owner NodeID) bool {
				nd := nodeDom[owner]
				return nd != nil && nd != src
			},
			func(ev event, owner NodeID, n Node, port int32, frame []byte, fn func()) {
				idx := nodeDom[owner].idx
				moves[idx] = append(moves[idx], moved{ev: ev, owner: owner,
					node: n, port: port, frame: frame, fn: fn})
			})
	}
	for i, ms := range moves {
		e := nw.domains[i].eng
		for _, m := range ms {
			e.adopt(m.ev, m.owner, m.node, m.port, m.frame, m.fn)
		}
	}

	// Rebind node sets, the node->domain index, and — incrementally, only
	// the moved nodes' incident links — the cut set and lookahead matrix.
	for i, d := range nw.domains {
		d.nodes = append(d.nodes[:0], groups[i]...)
	}
	nw.nodeDom = nodeDom
	nw.rebindDomains(movedNodes, nodeDom)
	return nil
}
