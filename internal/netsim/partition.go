package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Partitioned parallel execution: the fabric is split into node-disjoint
// domains, each with its own event heap and goroutine, synchronized with
// conservative link-latency lookahead windows (Kohring-style protocol-level
// parallelism). Every frame crossing a domain boundary is in flight for at
// least one serialization tick plus the link's propagation delay, so each
// domain may safely execute all events strictly earlier than
//
//	horizon = (earliest pending event anywhere) + lookahead
//
// where lookahead is the minimum in-flight latency over all cut links:
// nothing executed inside the window can cause an event before the horizon
// in another domain. Cross-domain deliveries travel through per-domain-pair
// mailboxes and are folded into the destination heap at the barrier between
// windows.
//
// Determinism: events are totally ordered by (timestamp, origin, origin
// sequence) — see engine.go — and a mailed delivery carries the same key it
// would have had on a single shared heap. Each domain therefore executes
// exactly the events a sequential run would hand its nodes, in exactly the
// same order, making partitioned metrics byte-identical to sequential ones
// (asserted by TestPartitionConformanceProperty here and by the registry
// conformance tests in internal/experiments).

// mail is one cross-domain frame delivery in transit between heaps: the
// full ordering key plus the delivery record, payload by reference. It
// deliberately carries no arena slot — the source domain's arena never
// holds it, and the barrier re-slots it into the destination engine's
// arena via Engine.scheduleFrame (the handoff helper the arenaescape
// analyzer pins cross-domain sends to).
type mail struct {
	at    Time
	src   uint64
	seq   uint64
	dst   NodeID
	node  Node
	port  int32
	frame []byte
}

// domain is one partition: an engine, its node set, and one outbox per peer
// domain. Outboxes are written only by this domain's goroutine during a
// window and drained only at the barrier, so they need no locks.
type domain struct {
	idx   int
	eng   *Engine
	nodes []NodeID
	out   [][]mail // out[j]: deliveries destined for domain j
}

// maxTime is the horizon sentinel when no cross-domain links exist (a
// single domain, or disconnected groups): run everything in one window.
const maxTime = Time(math.MaxInt64)

// Partition splits the fabric into one event-engine domain per node group
// and switches Run to the conservative parallel algorithm. It must be
// called after every AddNode/Connect and before any traffic is injected;
// with fewer than two non-empty groups it is a no-op and the network keeps
// its sequential single-engine fast path.
//
// Every node must appear in exactly one group. Any grouping is valid —
// correctness never depends on where the fabric is cut — but the lookahead
// window equals the minimum latency over cut links, so cuts across
// longer-latency links (rack boundaries; see topology.Plan.PartitionGroups)
// synchronize less often and parallelize better.
func (nw *Network) Partition(groups [][]NodeID) error {
	nonEmpty := make([][]NodeID, 0, len(groups))
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	if len(nonEmpty) <= 1 {
		return nil
	}
	if nw.domains != nil {
		return fmt.Errorf("netsim: network already partitioned into %d domains", len(nw.domains))
	}
	if nw.Eng.Processed != 0 || nw.Eng.Pending() != 0 {
		return fmt.Errorf("netsim: Partition after events were scheduled (%d pending, %d processed)",
			nw.Eng.Pending(), nw.Eng.Processed)
	}

	doms := make([]*domain, len(nonEmpty))
	nodeDom := make(map[NodeID]*domain, len(nw.nodes))
	// All domain engines share one setup (origin-0) schedule counter: setup
	// code only runs while the network is quiescent, so the shared counter
	// stamps setup events with exactly the globally unique, program-ordered
	// keys a sequential run would — which keeps them totally ordered even
	// when a dynamic re-cut later merges events from two heaps into one.
	setupCtr := new(uint64)
	for i, g := range nonEmpty {
		d := &domain{idx: i, eng: NewEngine(), out: make([][]mail, len(nonEmpty))}
		d.eng.adoptSetupCounter(setupCtr)
		doms[i] = d
		for _, id := range g {
			if _, ok := nw.nodes[id]; !ok {
				return fmt.Errorf("netsim: partition group %d names unknown node %d", i, id)
			}
			if _, dup := nodeDom[id]; dup {
				return fmt.Errorf("netsim: node %d appears in two partition groups", id)
			}
			nodeDom[id] = d
			d.nodes = append(d.nodes, id)
		}
	}
	if len(nodeDom) != len(nw.nodes) {
		return fmt.Errorf("netsim: partition covers %d of %d nodes", len(nodeDom), len(nw.nodes))
	}

	nw.domains = doms
	nw.nodeDom = nodeDom
	nw.bindDomains(nodeDom)
	nw.Eng = nil // all further scheduling must route through a domain
	return nil
}

// bindDomains points every half-link at its endpoints' domains and
// recomputes the conservative lookahead (minimum in-flight latency over
// cut links). Shared by Partition and Repartition.
func (nw *Network) bindDomains(nodeDom map[NodeID]*domain) {
	lookahead := maxTime
	for _, hl := range nw.half {
		hl.srcDom = nodeDom[hl.srcNode]
		hl.dstDom = nodeDom[hl.dstNode]
		if hl.srcDom != hl.dstDom {
			// A frame sent at t arrives no earlier than t + 1 serialization
			// tick + propagation.
			if la := 1 + Duration(hl.cfg.Propagation); la < lookahead {
				lookahead = la
			}
		}
	}
	nw.lookahead = lookahead
}

// Domains returns how many event-engine domains the network runs on
// (1 while unpartitioned).
func (nw *Network) Domains() int {
	if nw.domains == nil {
		return 1
	}
	return len(nw.domains)
}

// flushMail folds every outbox into its destination heap, re-slotting each
// delivery into the destination engine's frame arena. Called only at
// barriers (and before Run's error returns), when no domain goroutine is
// executing. Push order cannot affect pop order: each record carries its
// full deterministic key. Outbox slices are truncated and reused, so a
// steady-state cross-domain flow allocates nothing after warm-up.
func (nw *Network) flushMail() {
	for _, d := range nw.domains {
		for j := range d.out {
			box := d.out[j]
			if len(box) == 0 {
				continue
			}
			peer := nw.domains[j].eng
			for i, m := range box {
				peer.scheduleFrame(m.at, m.src, m.seq, m.dst, m.node, m.port, m.frame)
				box[i] = mail{} // drop the payload reference for the GC
			}
			d.out[j] = box[:0]
		}
	}
}

// runPartitioned drains all domains with the conservative window algorithm.
// maxEvents bounds the TOTAL number of events executed across every domain
// (the same budget a sequential run counts); 0 means unlimited. The bound
// is charged per event through a shared counter, so domains stop within the
// window in which the fleet-wide count reaches the budget. deadline stops
// execution once no event <= deadline remains (maxTime = run to empty);
// on a deadline stop every domain clock is advanced to the deadline, so a
// partitioned RunUntil leaves exactly the state a sequential one would.
func (nw *Network) runPartitioned(maxEvents uint64, deadline Time) error {
	var bud *budget
	if maxEvents > 0 {
		bud = &budget{max: maxEvents}
	}

	type result struct {
		exhausted bool
		panicked  any
	}
	n := len(nw.domains)
	work := make([]chan Time, n)
	results := make([]result, n)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for i := range nw.domains {
		work[i] = make(chan Time, 1)
		go func(d *domain, ch chan Time, res *result) {
			for horizon := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							res.panicked = r
							stop.Store(true)
						}
						wg.Done()
					}()
					if d.eng.runWindow(horizon, bud) {
						res.exhausted = true
						stop.Store(true)
					}
				}()
			}
		}(nw.domains[i], work[i], &results[i])
	}
	shutdown := func() {
		for _, ch := range work {
			close(ch)
		}
	}

	for {
		// Barrier section: the coordinator owns all domain state here.
		nw.flushMail()
		next := maxTime
		for _, d := range nw.domains {
			if at, ok := d.eng.next(); ok && at < next {
				next = at
			}
		}
		if next == maxTime || next > deadline {
			shutdown()
			if deadline != maxTime {
				for _, d := range nw.domains {
					d.eng.advanceTo(deadline)
				}
			}
			return nil
		}
		if nw.recut != nil && next >= nw.recut.nextAt {
			// Control point: the fabric is quiescent (mail flushed, no
			// goroutine executing), so the coordinator may re-cut. Trigger
			// and schedule depend only on virtual time and per-domain event
			// counts — fully deterministic.
			if err := nw.maybeRecut(next); err != nil {
				shutdown()
				return err
			}
		}
		horizon := maxTime
		if nw.lookahead != maxTime {
			horizon = next + nw.lookahead
		}
		if deadline != maxTime && deadline+1 < horizon {
			horizon = deadline + 1
		}

		wg.Add(n)
		for _, ch := range work {
			ch <- horizon
		}
		wg.Wait()

		if stop.Load() {
			shutdown()
			nw.flushMail()
			for _, res := range results {
				if res.panicked != nil {
					// Re-raise on the caller's goroutine, preserving the
					// sequential contract that node panics surface to (and
					// are recoverable by) whoever called Run.
					panic(res.panicked)
				}
			}
			return fmt.Errorf("netsim: event budget %d exhausted at t=%v (%d pending)",
				maxEvents, nw.Now(), nw.Pending())
		}
	}
}
