package netsim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Partitioned parallel execution: the fabric is split into node-disjoint
// domains, each with its own event heap, synchronized with conservative
// lookahead windows (Kohring-style protocol-level parallelism). Every frame
// crossing a domain boundary is in flight for at least one serialization
// tick plus the link's propagation delay, so lookahead(i→j) — the minimum
// in-flight latency over cut links from domain i to domain j — bounds how
// soon anything domain i does can become visible in domain j.
//
// Synchronization is per communication channel, not global: each domain d
// gets its own earliest-input-time horizon
//
//	horizon_d = min over domains i of (eit_i + pathLookahead(i→d))
//
// where eit_i is the timestamp of i's earliest pending event and
// pathLookahead is the min-plus closure of the pair lookaheads (a chain of
// cut links through intermediate domains can undercut any direct link, and
// the i = d diagonal closes to the cheapest cycle so a domain's own echo
// is bounded too — see rebuildLookaheads). A peer with an empty heap
// contributes +∞ as a source — it can originate nothing this round (work
// relayed through it is charged to the originating domain's path), so it
// does not constrain d at all (up to the run's deadline). Domains whose
// upstream peers are far ahead therefore keep executing in wide windows
// instead of idling at the fleet-wide minimum; only domains whose horizon
// denies them progress sit a round out (counted as idle windows). The old
// scheme — every domain advances to the global minimum plus the minimum
// lookahead over ALL cut links — survives as SyncGlobal for comparison
// (the syncproto figure): one short cut link throttles it fleet-wide.
//
// The coordinator is deterministic by construction: horizons are pure
// functions of the per-domain heap states at the barrier, each round
// dispatches exactly the subset of domains that can progress, and mail is
// folded into peer heaps only at barriers when both endpoints are
// quiescent. Progress is guaranteed because the domain owning the global
// minimum always has a horizon strictly above its own eit (every lookahead
// is at least one tick).
//
// Determinism of results: events are totally ordered by (timestamp, origin,
// origin sequence) — see engine.go — and a mailed delivery carries the same
// key it would have had on a single shared heap. Each domain therefore
// executes exactly the events a sequential run would hand its nodes, in
// exactly the same order, making partitioned metrics byte-identical to
// sequential ones under either protocol (asserted by
// TestPartitionConformanceProperty here and by the registry conformance
// tests in internal/experiments).

// SyncProtocol selects the conservative synchronization scheme of a
// partitioned run. Results are byte-identical under either protocol; only
// scheduling (and therefore wall-clock and the SyncStats diagnostics)
// differs.
type SyncProtocol int

const (
	// SyncEIT (the default) gives each domain its own earliest-input-time
	// horizon from per-domain-pair lookaheads, treating empty peer heaps
	// as +∞.
	SyncEIT SyncProtocol = iota
	// SyncGlobal is the pre-EIT scheme: every domain advances to the
	// global earliest pending event plus the minimum lookahead over all
	// cut links. Kept for the syncproto comparison figure.
	SyncGlobal
)

// SetSyncProtocol selects the synchronization scheme. Call while the
// network is quiescent (setup, or a RunUntil control point). The zero
// value SyncEIT is the default.
func (nw *Network) SetSyncProtocol(p SyncProtocol) { nw.syncProto = p }

// SyncStats are the cumulative synchronization diagnostics of a
// partitioned run. Like arena occupancy they are cut-DEPENDENT — they
// change with the partition count, the protocol and the re-cut schedule —
// so telemetry exports them in the engine section, excluded from the
// byte-identity comparison. For a fixed configuration they are fully
// deterministic (the coordinator's decisions are pure functions of heap
// states at barriers), which is what lets the syncproto figure commit
// them and cmd/benchdiff gate on them.
type SyncStats struct {
	Barriers    uint64 // coordinator rounds (quiescent rendezvous points)
	Windows     uint64 // per-domain execution windows dispatched
	IdleWindows uint64 // domain-rounds with pending work denied by the horizon
	MailFlushed uint64 // cross-domain deliveries folded into peer heaps
	HorizonSum  Time   // summed width (horizon - eit) of bounded windows
	HorizonN    uint64 // bounded windows (run-to-empty windows excluded)
}

// MeanHorizon is the effective mean width of bounded execution windows —
// wider windows mean fewer synchronizations per unit of virtual time.
func (s SyncStats) MeanHorizon() Time {
	if s.HorizonN == 0 {
		return 0
	}
	return s.HorizonSum / Time(s.HorizonN)
}

// SyncStats returns the network's cumulative synchronization diagnostics
// (zero while unpartitioned).
func (nw *Network) SyncStats() SyncStats { return nw.syncStats }

// DomainSync returns per-domain dispatched and idle window counts, indexed
// by domain — the per-domain view of SyncStats.Windows/IdleWindows. A
// domain idling most rounds is paying for a short incoming cut link.
func (nw *Network) DomainSync() (windows, idle []uint64) {
	windows = make([]uint64, len(nw.domains))
	idle = make([]uint64, len(nw.domains))
	for i, d := range nw.domains {
		windows[i] = d.windows
		idle[i] = d.idleWindows
	}
	return windows, idle
}

// mail is one cross-domain frame delivery in transit between heaps: the
// full ordering key plus the delivery record, payload by reference. It
// deliberately carries no arena slot — the source domain's arena never
// holds it, and the barrier re-slots it into the destination engine's
// arena via Engine.scheduleFrame (the handoff helper the arenaescape
// analyzer pins cross-domain sends to).
type mail struct {
	at    Time
	src   uint64
	seq   uint64
	dst   NodeID
	node  Node
	port  int32
	frame []byte
}

// domain is one partition: an engine, its node set, and one outbox per peer
// domain. Outboxes are written only by this domain's worker during a
// window and drained only at the barrier, so they need no locks.
type domain struct {
	idx   int
	eng   *Engine
	nodes []NodeID
	out   [][]mail // out[j]: deliveries destined for domain j

	// windows/idleWindows are this domain's share of SyncStats: rounds it
	// was dispatched vs rounds the horizon denied its pending work.
	windows     uint64
	idleWindows uint64
}

// maxTime is the horizon sentinel when nothing constrains a domain (no
// incoming cut links, or every in-neighbor heap empty): run everything in
// one window.
const maxTime = Time(math.MaxInt64)

// windowJob is one dispatched execution window. It carries the engine
// pointer so a parked worker retains no reference to any simulation state
// between runs — an idle Network is garbage-collectable even while its
// workers live (the finalizer backstop then releases them).
type windowJob struct {
	eng     *Engine
	horizon Time
	bud     *budget
}

// windowResult is one domain's outcome of the current round, written by
// its worker before wg.Done and read by the coordinator after wg.Wait.
type windowResult struct {
	exhausted bool
	panicked  any
}

// workerPool is the persistent per-domain execution crew, spawned once at
// Partition and fed one windowJob per dispatched window — Run/RunUntil no
// longer pay a goroutine spawn per domain per call, which the
// control-point-heavy telemetry RunSampled loop used to feel
// (BenchmarkPartitionRunUntilCadence). Workers park on their channel
// between jobs and exit when it closes.
type workerPool struct {
	work    []chan windowJob
	results []windowResult
	wg      sync.WaitGroup
	stop    atomic.Bool
	closed  sync.Once

	// coordinator scratch, reused across rounds and calls.
	eits     []Time
	horizons []Time
}

func newWorkerPool(n int) *workerPool {
	wp := &workerPool{
		work:     make([]chan windowJob, n),
		results:  make([]windowResult, n),
		eits:     make([]Time, n),
		horizons: make([]Time, n),
	}
	for i := range wp.work {
		ch := make(chan windowJob, 1)
		wp.work[i] = ch
		res := &wp.results[i]
		go func() {
			for job := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							res.panicked = r
							wp.stop.Store(true)
						}
						wp.wg.Done()
					}()
					if job.eng.runWindow(job.horizon, job.bud) {
						res.exhausted = true
						wp.stop.Store(true)
					}
				}()
			}
		}()
	}
	return wp
}

func (wp *workerPool) close() {
	wp.closed.Do(func() {
		for _, ch := range wp.work {
			close(ch)
		}
	})
}

// Close releases the persistent domain workers of a partitioned network.
// Idempotent; a closed network must not Run again. Calling it is optional:
// workers hold no reference to simulation state while parked, and a
// finalizer releases them when an unclosed Network becomes unreachable.
func (nw *Network) Close() {
	if nw.workers != nil {
		runtime.SetFinalizer(nw, nil)
		nw.workers.close()
	}
}

// Partition splits the fabric into one event-engine domain per node group
// and switches Run to the conservative parallel algorithm. It must be
// called after every AddNode/Connect and before any traffic is injected;
// with fewer than two non-empty groups it is a no-op and the network keeps
// its sequential single-engine fast path.
//
// Every node must appear in exactly one group. Any grouping is valid —
// correctness never depends on where the fabric is cut — but horizons are
// bounded by the latencies of incoming cut links, so cuts across
// longer-latency links (rack boundaries; see topology.Plan.PartitionGroups)
// synchronize less often and parallelize better.
func (nw *Network) Partition(groups [][]NodeID) error {
	nonEmpty := make([][]NodeID, 0, len(groups))
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	if len(nonEmpty) <= 1 {
		return nil
	}
	if nw.domains != nil {
		return fmt.Errorf("netsim: network already partitioned into %d domains", len(nw.domains))
	}
	if nw.Eng.Processed != 0 || nw.Eng.Pending() != 0 {
		return fmt.Errorf("netsim: Partition after events were scheduled (%d pending, %d processed)",
			nw.Eng.Pending(), nw.Eng.Processed)
	}

	doms := make([]*domain, len(nonEmpty))
	nodeDom := make(map[NodeID]*domain, len(nw.nodes))
	// All domain engines share one setup (origin-0) schedule counter: setup
	// code only runs while the network is quiescent, so the shared counter
	// stamps setup events with exactly the globally unique, program-ordered
	// keys a sequential run would — which keeps them totally ordered even
	// when a dynamic re-cut later merges events from two heaps into one.
	setupCtr := new(uint64)
	for i, g := range nonEmpty {
		d := &domain{idx: i, eng: NewEngine(), out: make([][]mail, len(nonEmpty))}
		d.eng.adoptSetupCounter(setupCtr)
		doms[i] = d
		for _, id := range g {
			if _, ok := nw.nodes[id]; !ok {
				return fmt.Errorf("netsim: partition group %d names unknown node %d", i, id)
			}
			if _, dup := nodeDom[id]; dup {
				return fmt.Errorf("netsim: node %d appears in two partition groups", id)
			}
			nodeDom[id] = d
			d.nodes = append(d.nodes, id)
		}
	}
	if len(nodeDom) != len(nw.nodes) {
		return fmt.Errorf("netsim: partition covers %d of %d nodes", len(nodeDom), len(nw.nodes))
	}

	nw.domains = doms
	nw.nodeDom = nodeDom
	nw.bindDomains(nodeDom)
	nw.workers = newWorkerPool(len(doms))
	// Backstop for callers that drop a partitioned Network without Close:
	// parked workers reference only the pool, never the Network, so the
	// Network stays collectable and this finalizer releases the goroutines.
	runtime.SetFinalizer(nw, (*Network).Close)
	nw.Eng = nil // all further scheduling must route through a domain
	return nil
}

// bindDomains points every half-link at its endpoints' domains, builds the
// node→incident-half-links index, and seeds the cut-link set and lookahead
// matrix. Called once by Partition; Repartition uses the incremental
// rebindDomains instead.
func (nw *Network) bindDomains(nodeDom map[NodeID]*domain) {
	nw.nodeHalf = make(map[NodeID][]*halfLink, len(nw.nodes))
	nw.cutHalf = nw.cutHalf[:0]
	for _, hl := range nw.half {
		nw.nodeHalf[hl.srcNode] = append(nw.nodeHalf[hl.srcNode], hl)
		nw.nodeHalf[hl.dstNode] = append(nw.nodeHalf[hl.dstNode], hl)
		hl.srcDom = nodeDom[hl.srcNode]
		hl.dstDom = nodeDom[hl.dstNode]
		if hl.srcDom != hl.dstDom && !hl.inCut {
			hl.inCut = true
			nw.cutHalf = append(nw.cutHalf, hl)
		}
	}
	nw.rebuildLookaheads()
}

// rebindDomains updates the domain bindings of links incident to moved
// nodes and refreshes the lookahead matrix from the maintained cut set —
// the Repartition fast path: O(moved nodes × degree + current cut links)
// instead of a full O(all links) rescan per re-cut, which matters at
// megaincast's jittered re-cut cadence.
func (nw *Network) rebindDomains(moved []NodeID, nodeDom map[NodeID]*domain) {
	for _, id := range moved {
		for _, hl := range nw.nodeHalf[id] {
			hl.srcDom = nodeDom[hl.srcNode]
			hl.dstDom = nodeDom[hl.dstNode]
			if hl.srcDom != hl.dstDom && !hl.inCut {
				hl.inCut = true
				nw.cutHalf = append(nw.cutHalf, hl)
			}
		}
	}
	nw.rebuildLookaheads()
}

// rebuildLookaheads recomputes the per-pair lookahead matrix and the
// global minimum from the cut-link set, compacting entries a re-cut pulled
// back inside one domain. A frame sent on a cut link at t arrives no
// earlier than t + 1 serialization tick + propagation, so every direct
// entry is at least one tick — the progress guarantee of the coordinator.
//
// The matrix is then closed over multi-hop relay paths (Floyd–Warshall in
// min-plus): influence can travel i→k→j through an intermediate domain's
// links with total latency below any direct i→j link, and the horizon must
// bound that chain too — a direct-edge-only bound lets a relayed frame
// arrive in its destination's past. The diagonal starts at +∞ and closes
// to the minimum cycle through each domain, guarding against a domain's
// own output echoing back to it; cycles have at least two edges, so the
// self-bound still sits strictly above the domain's own eit.
func (nw *Network) rebuildLookaheads() {
	n := len(nw.domains)
	if len(nw.la) != n {
		nw.la = make([][]Time, n)
		for i := range nw.la {
			nw.la[i] = make([]Time, n)
		}
	}
	for _, row := range nw.la {
		for j := range row {
			row[j] = maxTime
		}
	}
	global := maxTime
	kept := nw.cutHalf[:0]
	for _, hl := range nw.cutHalf {
		if hl.srcDom == hl.dstDom {
			hl.inCut = false // re-cut pulled this link inside a domain
			continue
		}
		kept = append(kept, hl)
		la := 1 + Duration(hl.cfg.Propagation)
		if row := nw.la[hl.srcDom.idx]; la < row[hl.dstDom.idx] {
			row[hl.dstDom.idx] = la
		}
		if la < global {
			global = la
		}
	}
	nw.cutHalf = kept
	nw.lookahead = global

	// Min-plus closure: O(domains³), domains is small (≤ GOMAXPROCS-ish)
	// and this runs only at Partition/Repartition, never on the hot path.
	for k := 0; k < n; k++ {
		rowK := nw.la[k]
		for i := 0; i < n; i++ {
			ik := nw.la[i][k]
			if ik == maxTime {
				continue
			}
			rowI := nw.la[i]
			for j := 0; j < n; j++ {
				if kj := rowK[j]; kj != maxTime && ik+kj < rowI[j] {
					rowI[j] = ik + kj
				}
			}
		}
	}
}

// Domains returns how many event-engine domains the network runs on
// (1 while unpartitioned).
func (nw *Network) Domains() int {
	if nw.domains == nil {
		return 1
	}
	return len(nw.domains)
}

// flushMail folds every outbox into its destination heap, re-slotting each
// delivery into the destination engine's frame arena. Called only at
// barriers (and before Run's error returns), when both endpoints of every
// pair are quiescent. Push order cannot affect pop order: each record
// carries its full deterministic key. Outbox slices are truncated and
// reused, so a steady-state cross-domain flow allocates nothing after
// warm-up.
func (nw *Network) flushMail() {
	for _, d := range nw.domains {
		for j := range d.out {
			box := d.out[j]
			if len(box) == 0 {
				continue
			}
			nw.syncStats.MailFlushed += uint64(len(box))
			peer := nw.domains[j].eng
			for i, m := range box {
				peer.scheduleFrame(m.at, m.src, m.seq, m.dst, m.node, m.port, m.frame)
				box[i] = mail{} // drop the payload reference for the GC
			}
			d.out[j] = box[:0]
		}
	}
}

// runPartitioned drains all domains with the conservative horizon
// algorithm. maxEvents bounds the TOTAL number of events executed across
// every domain (the same budget a sequential run counts); 0 means
// unlimited. The bound is drawn in chunks through a shared counter whose
// unspent allowance is refunded at every barrier, so the stop boundary is
// exact. deadline stops execution once no event <= deadline remains
// (maxTime = run to empty); on a deadline stop every domain clock is
// advanced to the deadline, so a partitioned RunUntil leaves exactly the
// state a sequential one would.
func (nw *Network) runPartitioned(maxEvents uint64, deadline Time) error {
	var bud *budget
	if maxEvents > 0 {
		bud = &budget{max: maxEvents}
	}
	wp := nw.workers
	for i := range wp.results {
		wp.results[i] = windowResult{}
	}
	wp.stop.Store(false)
	eits, horizons := wp.eits, wp.horizons

	// aligning/alignTarget implement the re-cut safety protocol: a re-cut
	// may change the lookahead matrix — typically shrinking some pair's
	// lookahead — so it may only be applied at an ALIGNED barrier, where
	// every pending event lies beyond every domain clock. (Applied at a
	// skewed barrier, the new, shorter lookaheads could let a lagging
	// domain's output arrive in a leading domain's past.) When a re-cut
	// comes due, the target freezes at the leading clock and horizons are
	// capped there until the whole fabric catches up; both the trigger and
	// the catch-up are pure functions of virtual time, so the schedule
	// stays deterministic.
	aligning := false
	var alignTarget Time

	for {
		// Barrier: mail flushed, no worker executing — the coordinator
		// owns all domain state here.
		nw.flushMail()
		next := maxTime
		for i, d := range nw.domains {
			if at, ok := d.eng.next(); ok {
				eits[i] = at
				if at < next {
					next = at
				}
			} else {
				eits[i] = maxTime
			}
		}
		if next == maxTime || next > deadline {
			// Equalize the domain clocks before returning quiescent: to the
			// deadline on a RunUntil stop, and to the fabric-wide last event
			// on a run-to-empty drain — exactly where a sequential engine's
			// single clock ends up. Traffic injected after the return is
			// then stamped sequentially-identically, and it can never land
			// in a leading domain's past.
			at := deadline
			if at == maxTime {
				at = 0
				for _, d := range nw.domains {
					if d.eng.now > at {
						at = d.eng.now
					}
				}
			}
			for _, d := range nw.domains {
				d.eng.advanceTo(at)
			}
			return nil
		}
		if nw.recut != nil && next >= nw.recut.nextAt && !aligning {
			aligning = true
			alignTarget = 0
			for _, d := range nw.domains {
				if d.eng.now > alignTarget {
					alignTarget = d.eng.now
				}
			}
		}
		if aligning && next > alignTarget {
			// Aligned: every pending event is beyond every clock, so any
			// new cut is safe. Trigger and schedule depend only on virtual
			// time and per-domain event counts — fully deterministic.
			// Migration moves events between heaps, so re-read the EITs.
			aligning = false
			if err := nw.maybeRecut(next); err != nil {
				return err
			}
			for i, d := range nw.domains {
				if at, ok := d.eng.next(); ok {
					eits[i] = at
				} else {
					eits[i] = maxTime
				}
			}
		}

		// Compute every domain's horizon from the barrier snapshot, then
		// dispatch the subset that can progress. The round's bookkeeping
		// (windows, idle windows, widths) is a pure function of the
		// snapshot, so the diagnostics are as deterministic as the results.
		nw.syncStats.Barriers++
		dispatched := 0
		for i, d := range nw.domains {
			horizons[i] = 0 // sentinel: not dispatched this round
			if eits[i] > deadline {
				continue // drained (within the deadline): not idle, done
			}
			h := maxTime
			if nw.syncProto == SyncGlobal {
				if nw.lookahead != maxTime {
					h = next + nw.lookahead
				}
			} else {
				for j := range nw.domains {
					la := nw.la[j][i]
					if la == maxTime || eits[j] == maxTime {
						// No lookahead path from j, or j's heap is empty:
						// j can originate nothing this round, so it does
						// not constrain this domain (+∞ rule).
						continue
					}
					if b := eits[j] + la; b < h {
						h = b
					}
				}
			}
			if deadline != maxTime && deadline+1 < h {
				h = deadline + 1
			}
			if aligning && alignTarget+1 < h {
				// A re-cut is due: cap every window at the leading clock so
				// the fabric converges to an aligned barrier. The global-min
				// domain always stays dispatchable (next <= alignTarget here),
				// so alignment makes progress every round.
				h = alignTarget + 1
			}
			if eits[i] >= h {
				// Pending work, denied by the horizon: the protocol's
				// idle cost — what SyncEIT shrinks on short-cut fabrics.
				d.idleWindows++
				nw.syncStats.IdleWindows++
				continue
			}
			horizons[i] = h
			d.windows++
			nw.syncStats.Windows++
			if h != maxTime {
				nw.syncStats.HorizonSum += h - eits[i]
				nw.syncStats.HorizonN++
			}
			dispatched++
		}

		wp.wg.Add(dispatched)
		for i, d := range nw.domains {
			if horizons[i] != 0 {
				wp.work[i] <- windowJob{eng: d.eng, horizon: horizons[i], bud: bud}
			}
		}
		wp.wg.Wait()

		if wp.stop.Load() {
			nw.flushMail()
			for i := range wp.results {
				if r := wp.results[i].panicked; r != nil {
					// Re-raise on the caller's goroutine, preserving the
					// sequential contract that node panics surface to (and
					// are recoverable by) whoever called Run.
					panic(r)
				}
			}
			// A domain's mid-window reserve can find the budget transiently
			// drained while chunks other domains were still holding get
			// refunded at the barrier; only a genuinely spent budget stops
			// the run, keeping used == executed == maxEvents exactly.
			if bud != nil && bud.used.Load() >= bud.max {
				return fmt.Errorf("netsim: event budget %d exhausted at t=%v (%d pending)",
					maxEvents, nw.Now(), nw.Pending())
			}
			wp.stop.Store(false)
			for i := range wp.results {
				wp.results[i] = windowResult{}
			}
		}
	}
}
