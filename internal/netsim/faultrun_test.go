package netsim

import (
	"fmt"
	"testing"
	"time"
)

// Tests for the fault-subsystem substrate: administrative link state and
// the quiescent-control RunUntil primitive, sequential and partitioned.

func TestSetLinkStateDropsAndRevives(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{})

	if !nw.LinkUp(1, 2) {
		t.Fatal("fresh link reported down")
	}
	if err := nw.SetLinkState(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if nw.LinkUp(1, 2) {
		t.Fatal("downed link reported up")
	}
	nw.Send(1, 0, make([]byte, 64))
	nw.Send(2, 0, make([]byte, 64)) // both directions fail
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(a.frames)+len(b.frames) != 0 {
		t.Fatalf("frames crossed a downed link: %d/%d", len(a.frames), len(b.frames))
	}
	if st := nw.PortStats(1, 0); st.DropsDown != 1 || st.TxFrames != 0 {
		t.Fatalf("a->b stats %+v", st)
	}
	if st := nw.PortStats(2, 0); st.DropsDown != 1 {
		t.Fatalf("b->a stats %+v", st)
	}

	if err := nw.SetLinkState(1, 2, true); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 0, make([]byte, 64))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 1 {
		t.Fatalf("revived link delivered %d frames", len(b.frames))
	}
	// One administrative down-up cycle = one flap, not one per direction;
	// a redundant down while already down is not a new flap.
	if got := nw.LinkFlaps(1, 2); got != 1 {
		t.Fatalf("LinkFlaps = %d after one cycle, want 1", got)
	}
	_ = nw.SetLinkState(1, 2, false)
	_ = nw.SetLinkState(1, 2, false)
	_ = nw.SetLinkState(1, 2, true)
	if got := nw.LinkFlaps(2, 1); got != 2 {
		t.Fatalf("LinkFlaps = %d after second cycle, want 2", got)
	}
	if err := nw.SetLinkState(1, 42, false); err == nil {
		t.Fatal("no error for unknown link")
	}
}

func TestLinkDownLeavesInFlightFrames(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000_000, Propagation: time.Microsecond})
	nw.Send(1, 0, make([]byte, 125)) // arrives at 2µs
	// The frame left the transmitter before the failure: it still arrives.
	if err := nw.SetLinkState(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 1 {
		t.Fatalf("in-flight frame lost: %d delivered", len(b.frames))
	}
}

// relay forwards frames down a chain with a per-hop timer, recording every
// arrival — enough activity to make RunUntil windows and link flaps
// observable. Frames carry a TTL byte; the relay decrements and forwards
// out the "other" port until it hits zero.
type relay struct {
	nw  *Network
	id  NodeID
	log []string
}

func (r *relay) Attach(nw *Network, id NodeID) { r.nw, r.id = nw, id }
func (r *relay) HandleFrame(inPort int, frame []byte) {
	r.log = append(r.log, fmt.Sprintf("t=%v ttl=%d port=%d", r.nw.NodeNow(r.id), frame[0], inPort))
	if frame[0] == 0 {
		return
	}
	out := 0
	if r.nw.NumPorts(r.id) > 1 && inPort == 0 {
		out = 1
	}
	next := append([]byte(nil), frame...)
	next[0]--
	r.nw.NodeAfter(r.id, 200, func() { r.nw.Send(r.id, out, next) })
}

// TestRunUntilConformance drives the same chain workload — including
// mid-run link flaps applied at quiescent control points — sequentially
// and partitioned, and requires byte-identical per-node logs, stats, and
// clocks. This is the contract the fault injector relies on.
func TestRunUntilConformance(t *testing.T) {
	run := func(partitioned bool) string {
		nw := New(3)
		nodes := make([]*relay, 4)
		for i := range nodes {
			nodes[i] = &relay{}
			nw.AddNode(NodeID(i+1), nodes[i])
		}
		cfg := LinkConfig{BandwidthBps: 1_000_000_000, Propagation: 3 * time.Microsecond}
		nw.Connect(1, 2, cfg)
		nw.Connect(2, 3, cfg)
		nw.Connect(3, 4, cfg)
		if partitioned {
			if err := nw.Partition([][]NodeID{{1, 2}, {3, 4}}); err != nil {
				t.Fatal(err)
			}
		}
		// Seed several bouncing frames.
		for i := 0; i < 4; i++ {
			f := make([]byte, 64)
			f[0] = byte(10 + i)
			nw.Send(1, 0, f)
		}
		// Quiescent control loop: advance in windows, flap the middle link.
		steps := []struct {
			at   Time
			down *bool
		}{
			{at: Duration(10 * time.Microsecond)},
			{at: Duration(20 * time.Microsecond), down: boolPtr(true)},
			{at: Duration(35 * time.Microsecond), down: boolPtr(false)},
			{at: Duration(50 * time.Microsecond)},
		}
		for _, s := range steps {
			if err := nw.RunUntil(s.at); err != nil {
				t.Fatal(err)
			}
			if got := nw.Now(); got != s.at {
				t.Fatalf("clock %v after RunUntil(%v)", got, s.at)
			}
			if s.down != nil {
				if err := nw.SetLinkState(2, 3, !*s.down); err != nil {
					t.Fatal(err)
				}
				// Inject fresh traffic from the control plane, as the
				// fault driver's round restarts do.
				f := make([]byte, 64)
				f[0] = 6
				nw.Send(2, 1, f)
			}
		}
		if err := nw.Run(0); err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("end=%v processed=%d total=%+v\n", nw.Now(), nw.Processed(), nw.TotalStats())
		for i, n := range nodes {
			out += fmt.Sprintf("node%d: %v\n", i+1, n.log)
		}
		return out
	}
	seq := run(false)
	par := run(true)
	if seq != par {
		t.Fatalf("RunUntil diverged between sequential and partitioned:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

func boolPtr(b bool) *bool { return &b }

// TestResetPoolOnCrash: a crash at a quiescent control point zeroes the
// node's shared buffer occupancy accounting while cumulative statistics
// survive, and post-restart admissions start against an empty pool — in
// both engine modes, identically. (Already-admitted frames keep their
// scheduled deliveries: netsim models departure at admission time.)
func TestResetPoolOnCrash(t *testing.T) {
	run := func(partitioned bool) string {
		nw := New(5)
		a, b := &sink{}, &sink{}
		nw.AddNode(1, a)
		nw.AddNode(2, b)
		nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 1 << 30})
		if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 300, Alpha: 8}); err != nil {
			t.Fatal(err)
		}
		if partitioned {
			if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			nw.Send(1, 0, make([]byte, 100)) // 3 admitted, 1 pool drop
		}
		// Advance a little: the first frame (800 µs) has not serialized yet,
		// so the memory is still fully occupied at the control point.
		if err := nw.RunUntil(Duration(100 * time.Microsecond)); err != nil {
			t.Fatal(err)
		}
		before, _ := nw.PoolStats(1)
		if before.Used != 300 {
			t.Fatalf("pre-crash pool %+v, want 300 B occupied", before)
		}
		nw.ResetPool(1) // the crash: buffered frames are gone
		after, _ := nw.PoolStats(1)
		if after.Used != 0 || after.HighWater != 300 || after.Drops != 1 {
			t.Fatalf("post-crash pool %+v; want empty with stats intact", after)
		}
		// Post-restart traffic is admitted against the empty memory.
		for i := 0; i < 3; i++ {
			nw.Send(1, 0, make([]byte, 100))
		}
		if err := nw.Run(0); err != nil {
			t.Fatal(err)
		}
		final, _ := nw.PoolStats(1)
		return fmt.Sprintf("end=%v stats=%+v pool=%+v delivered=%d",
			nw.Now(), nw.PortStats(1, 0), final, len(b.frames))
	}
	seq := run(false)
	if par := run(true); par != seq {
		t.Fatalf("ResetPool diverged between modes:\nseq: %s\npar: %s", seq, par)
	}
}

// TestResetPoolWithoutPool: a poolless node's private queue accounting
// still clears (pooled and poolless switches crash symmetrically); an
// unknown node is a safe no-op.
func TestResetPoolWithoutPool(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 300})
	for i := 0; i < 4; i++ {
		nw.Send(1, 0, make([]byte, 100)) // fills the 300 B private FIFO
	}
	if st := nw.PortStats(1, 0); st.DropsFull != 1 {
		t.Fatalf("pre-crash stats %+v", st)
	}
	nw.ResetPool(1) // crash: the dead boot's occupancy must not survive
	nw.Send(1, 0, make([]byte, 100))
	if st := nw.PortStats(1, 0); st.TxFrames != 4 || st.DropsFull != 1 {
		t.Fatalf("post-crash stats %+v; want the fresh frame admitted", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	nw.ResetPool(42) // unknown node: no-op
}

// TestRunUntilIdleAdvancesClocks: with nothing queued, RunUntil still
// moves every clock to the deadline in both modes.
func TestRunUntilIdleAdvancesClocks(t *testing.T) {
	for _, partitioned := range []bool{false, true} {
		nw := New(1)
		nw.AddNode(1, &sink{})
		nw.AddNode(2, &sink{})
		nw.Connect(1, 2, LinkConfig{})
		if partitioned {
			if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.RunUntil(12345); err != nil {
			t.Fatal(err)
		}
		if nw.Now() != 12345 {
			t.Fatalf("partitioned=%v: clock %v want 12345", partitioned, nw.Now())
		}
	}
}
