package netsim

import (
	"testing"
)

// fwdNode forwards every received frame out port 0 — its uplink, because
// the benchmark wires each switch's uplink first. It models the switch
// dataplane with zero per-frame state so the benchmark isolates the
// engine: heap, arenas, link serialization and DT pool admission.
type fwdNode struct {
	nw *Network
	id NodeID
}

func (f *fwdNode) Attach(nw *Network, id NodeID) { f.nw, f.id = nw, id }
func (f *fwdNode) HandleFrame(_ int, frame []byte) {
	f.nw.Send(f.id, 0, frame)
}

// countSink counts deliveries without retaining the payload, so the
// benchmark's steady state allocates nothing.
type countSink struct{ n uint64 }

func (*countSink) Attach(*Network, NodeID)       {}
func (s *countSink) HandleFrame(_ int, _ []byte) { s.n++ }

// BenchmarkMegaIncast is the megaincast figure's per-frame cost in pure
// engine terms: 1024 senders across 16 racks feed 2 spines and one root
// through forwarding switches with shared-memory DT pools — three store-
// and-forward hops per frame. Each iteration injects one frame; the
// fabric drains after every full sender round, so ns/op amortizes the
// whole tree traversal and the heap/arena churn of ~1024 in-flight
// frames. The headline is allocs/op: the steady state must allocate
// nothing.
func BenchmarkMegaIncast(b *testing.B) {
	const (
		racks   = 16
		spines  = 2
		perRack = 64 // 1024 senders
	)
	nw := New(1)
	root := NodeID(1)
	sink := &countSink{}
	nw.AddNode(root, sink)
	spineIDs := make([]NodeID, spines)
	for i := range spineIDs {
		spineIDs[i] = NodeID(2 + i)
		nw.AddNode(spineIDs[i], &fwdNode{})
		nw.Connect(spineIDs[i], root, LinkConfig{}) // uplink first: port 0
		nw.SetNodePool(spineIDs[i], PoolConfig{TotalBytes: 1 << 20, ReserveBytes: 2 << 10, Alpha: 2})
	}
	hosts := make([]NodeID, 0, racks*perRack)
	for r := 0; r < racks; r++ {
		leaf := NodeID(10 + r)
		nw.AddNode(leaf, &fwdNode{})
		nw.Connect(leaf, spineIDs[r%spines], LinkConfig{}) // uplink first: port 0
		nw.SetNodePool(leaf, PoolConfig{TotalBytes: 512 << 10, ReserveBytes: 2 << 10, Alpha: 2})
		for h := 0; h < perRack; h++ {
			id := NodeID(100 + r*perRack + h)
			nw.AddNode(id, &countSink{}) // hosts only transmit here
			nw.Connect(id, leaf, LinkConfig{})
			hosts = append(hosts, id)
		}
	}
	frame := make([]byte, 256)
	// Warm the arenas and pool state through one full round.
	for _, h := range hosts {
		nw.Send(h, 0, frame)
	}
	if err := nw.Run(0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(hosts[i%len(hosts)], 0, frame)
		if i%len(hosts) == len(hosts)-1 {
			if err := nw.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := nw.Run(0); err != nil {
		b.Fatal(err)
	}
	if sink.n == 0 {
		b.Fatal("no frame reached the root")
	}
}
