package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/daiet/daiet/internal/hashing"
)

// NodeID identifies a host or switch in the fabric. IDs live in a 24-bit
// space so they map into the 10.0.0.0/8 addressing plan of internal/wire.
type NodeID uint32

// halfLinkKeyBase offsets half-link ordering origins above the 24-bit node
// ID space, so frame-delivery keys can never collide with node or setup
// scheduling origins.
const halfLinkKeyBase uint64 = 1 << 32

// Node is anything attached to the fabric. Attach is called exactly once,
// when the node is added; HandleFrame is called by the event loop whenever a
// frame arrives on one of the node's ports. The frame slice is owned by the
// callee after the call; the network never touches it again.
type Node interface {
	Attach(nw *Network, id NodeID)
	HandleFrame(inPort int, frame []byte)
}

// LinkConfig describes one bidirectional link. The zero value is replaced
// by defaults matching a 10 Gb/s data-center edge link.
type LinkConfig struct {
	BandwidthBps int64         // bits per second; default 10e9
	Propagation  time.Duration // one-way propagation delay; default 1µs
	QueueBytes   int           // per-direction FIFO capacity; default 256 KiB
	LossProb     float64       // i.i.d. frame drop probability; default 0
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 10_000_000_000
	}
	if c.Propagation == 0 {
		c.Propagation = time.Microsecond
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 256 << 10
	}
	return c
}

// LinkStats counts traffic for one direction of a link.
type LinkStats struct {
	TxFrames  uint64
	TxBytes   uint64
	DropsFull uint64 // tail drops from private-queue overflow (no pool)
	DropsPool uint64 // dynamic-threshold rejections by the node's shared pool
	DropsLoss uint64 // injected random losses
	DropsDown uint64 // frames sent while the link was administratively down
}

// txRec is one accepted frame's serialization record: the time its bytes
// finish leaving the queue, and how many there were.
type txRec struct {
	done Time
	size int
}

// halfLink is one direction of a link: a serializing transmitter feeding a
// propagation delay into the peer node's port. All of a half-link's mutable
// state is owned by the source node's partition domain: only code running
// in that domain transmits on it.
type halfLink struct {
	cfg      LinkConfig
	srcNode  NodeID
	dstNode  NodeID
	dstPort  int
	dst      Node // resolved destination, cached so send never hits the node map
	busyTill Time // when the transmitter finishes its current backlog
	queued   int  // bytes accepted but not yet fully serialized
	stats    LinkStats
	rng      *rand.Rand

	// down marks the direction administratively failed (fault injection):
	// frames sent while down are counted and discarded. Frames already
	// accepted keep their scheduled deliveries — they left the transmitter
	// before the failure. Toggled only through SetLinkState, and only while
	// the network is quiescent.
	down bool

	// key is the half-link's ordering origin (halfLinkKeyBase | index) and
	// txSeq its per-accepted-frame sequence. Together they key every frame
	// delivery this half-link produces, so arrival order at the destination
	// heap is deterministic and independent of partitioning.
	key   uint64
	txSeq uint64

	// srcDom/dstDom are the partition domains of the two endpoints, nil
	// while the network is unpartitioned. inCut marks membership in the
	// network's maintained cut-link set (see rebuildLookaheads).
	srcDom *domain
	dstDom *domain
	inCut  bool

	// pool, when non-nil, is the shared buffer memory of the source node:
	// admission charges it under the dynamic threshold instead of the
	// private cfg.QueueBytes FIFO (see bufferpool.go). poolSlot is this
	// port's slot in the pool's per-(port, class) occupancy accounting,
	// assigned when the port joins the pool.
	pool     *BufferPool
	poolSlot int32

	// inflight records accepted frames not yet drained from the queue
	// accounting, as a circular ring ordered by completion time (one port
	// serializes FIFO, so push order is completion order). Occupancy is only
	// ever consulted at admission time, so instead of scheduling one engine
	// event per frame to decrement queued (half of all send-side events
	// before this existed), drains are applied lazily at the next admission:
	// pop every record whose serialization finished at or before now. The
	// ring never shifts its contents, keeping big-incast burst admission
	// O(1) amortized (BenchmarkBurstAdmission guards this).
	inflight ring
}

// ring is a growable circular queue of txRecs: head is the oldest live
// record, n the live count. Pop is O(1) with no memmove; push is O(1)
// amortized (doubling on overflow).
type ring struct {
	buf  []txRec
	head int
	n    int
}

func (r *ring) push(rec txRec) {
	if r.n == len(r.buf) {
		grown := make([]txRec, 2*len(r.buf)+4)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = rec
	r.n++
}

func (r *ring) front() *txRec { return &r.buf[r.head] }

func (r *ring) popFront() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
}

func (r *ring) clear() { r.head, r.n = 0, 0 }

// drainTo applies every queue drain due at or before now.
func (hl *halfLink) drainTo(now Time) {
	for hl.inflight.n > 0 && hl.inflight.front().done <= now {
		hl.queued -= hl.inflight.front().size
		hl.inflight.popFront()
	}
}

// Port names one endpoint of a link from a node's point of view.
type port struct {
	out *halfLink
}

// linkPair indexes every half-link between one endpoint pair (several,
// when parallel links exist) for O(1) administrative state queries, and
// carries the pair's admin state: down, and the flap generation (up→down
// transitions) a liveness monitor compares across polls to catch flaps
// shorter than its polling period.
type linkPair struct {
	halves []*halfLink
	down   bool
	flaps  uint64
}

// pairKey normalizes a link's endpoints into the Network.links key order.
func pairKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Network glues nodes together with links on top of an Engine.
type Network struct {
	// Eng is the single sequential event engine. After Partition it is nil:
	// each domain owns its own engine, and callers use Now/NodeNow/NodeAfter
	// (which also work unpartitioned) instead of touching Eng directly.
	Eng   *Engine
	nodes map[NodeID]Node
	ports map[NodeID][]*port
	half  []*halfLink
	links map[[2]NodeID]*linkPair
	pools map[NodeID]*BufferPool
	seed  uint64

	// Partitioned mode (see partition.go). domains is nil until Partition
	// is called with more than one group; nodeDom maps every node to its
	// domain. recut, when non-nil, re-evaluates the cut at window barriers
	// (see recut.go).
	domains []*domain
	nodeDom map[NodeID]*domain
	recut   *recutState

	// Conservative synchronization state. la[i][j] is the per-pair
	// lookahead (min in-flight latency over cut links from domain i to j,
	// maxTime when none exist); lookahead is the global minimum SyncGlobal
	// uses; cutHalf is the maintained cut-link set the matrix is rebuilt
	// from (O(cut), not O(links), per re-cut) and nodeHalf the
	// node→incident-links index the incremental rebind walks. workers is
	// the persistent per-domain worker pool, spawned once at Partition.
	la        [][]Time
	lookahead Time
	cutHalf   []*halfLink
	nodeHalf  map[NodeID][]*halfLink
	workers   *workerPool
	syncProto SyncProtocol
	syncStats SyncStats

	// accEvents/accFrames/accSync remember what this network already
	// published into the process-wide SimCounters/SyncCounters (arena.go).
	accEvents uint64
	accFrames uint64
	accSync   SyncStats

	// tracer, when non-nil, observes every transmit-side admission attempt
	// (see tracer.go). Installed only while quiescent; read inline on the
	// send path by domain goroutines.
	tracer FrameTracer
}

// New creates an empty network over a fresh engine. seed drives all loss
// randomness; the same seed reproduces the same drops.
func New(seed uint64) *Network {
	return &Network{
		Eng:   NewEngine(),
		nodes: make(map[NodeID]Node),
		ports: make(map[NodeID][]*port),
		links: make(map[[2]NodeID]*linkPair),
		pools: make(map[NodeID]*BufferPool),
		seed:  seed,
	}
}

// AddNode attaches n under the given ID. Duplicate IDs are a configuration
// error and panic.
func (nw *Network) AddNode(id NodeID, n Node) {
	if nw.domains != nil {
		panic("netsim: AddNode after Partition")
	}
	if _, dup := nw.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node id %d", id))
	}
	nw.nodes[id] = n
	n.Attach(nw, id)
}

// Node returns the node registered under id, or nil.
func (nw *Network) Node(id NodeID) Node { return nw.nodes[id] }

// NumPorts returns how many ports node id currently has.
func (nw *Network) NumPorts(id NodeID) int { return len(nw.ports[id]) }

// Connect joins a and b with a bidirectional link and returns the port
// numbers allocated on each side. Both nodes must already be added.
func (nw *Network) Connect(a, b NodeID, cfg LinkConfig) (aPort, bPort int) {
	if nw.domains != nil {
		panic("netsim: Connect after Partition")
	}
	if _, ok := nw.nodes[a]; !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", a))
	}
	if _, ok := nw.nodes[b]; !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", b))
	}
	cfg = cfg.withDefaults()
	aPort = len(nw.ports[a])
	bPort = len(nw.ports[b])
	// Derive independent, deterministic RNG streams per half-link.
	mk := func(salt uint64) *rand.Rand {
		return rand.New(rand.NewSource(int64(hashing.Mix64(nw.seed ^ salt))))
	}
	ab := &halfLink{cfg: cfg, srcNode: a, dstNode: b, dstPort: bPort,
		dst: nw.nodes[b],
		key: halfLinkKeyBase | uint64(len(nw.half)),
		rng: mk(uint64(a)<<32 | uint64(b)<<8 | uint64(aPort))}
	ba := &halfLink{cfg: cfg, srcNode: b, dstNode: a, dstPort: aPort,
		dst: nw.nodes[a],
		key: halfLinkKeyBase | uint64(len(nw.half)+1),
		rng: mk(uint64(b)<<32 | uint64(a)<<8 | uint64(bPort) | 1<<63)}
	// Ports born after SetNodePool join the node's pool, each carving its
	// own reserve slot; an over-committed carve is a configuration error.
	nw.joinPool(a, ab)
	nw.joinPool(b, ba)
	nw.ports[a] = append(nw.ports[a], &port{out: ab})
	nw.ports[b] = append(nw.ports[b], &port{out: ba})
	nw.half = append(nw.half, ab, ba)
	key := pairKey(a, b)
	lp := nw.links[key]
	if lp == nil {
		lp = &linkPair{}
		nw.links[key] = lp
	}
	lp.halves = append(lp.halves, ab, ba)
	return aPort, bPort
}

// joinPool attaches hl to node id's shared pool, when one exists, carving
// the port's reserve slot. Called from Connect, which panics on its other
// configuration errors too.
func (nw *Network) joinPool(id NodeID, hl *halfLink) {
	bp := nw.pools[id]
	if bp == nil {
		return
	}
	slot := bp.nSlots
	if err := bp.carvePorts(1); err != nil {
		panic(fmt.Sprintf("netsim: connect: node %d: %v", id, err))
	}
	hl.pool, hl.poolSlot = bp, int32(slot)
}

// Send transmits frame out of (from, portNum) under traffic class 0. The
// network takes ownership of the frame slice. Frames that overflow the port
// queue or hit injected loss are counted and dropped.
func (nw *Network) Send(from NodeID, portNum int, frame []byte) {
	nw.send(nw.outHalf(from, portNum), 0, frame)
}

// SendClass is Send with an explicit traffic class: on pooled nodes the
// frame is admitted against that class's hard-carved reserve and dynamic
// threshold (see PoolConfig.Classes); classes outside the pool's configured
// range fold into class 0, and poolless nodes ignore the class entirely.
func (nw *Network) SendClass(from NodeID, portNum, class int, frame []byte) {
	nw.send(nw.outHalf(from, portNum), class, frame)
}

// SendBurst transmits several frames out of (from, portNum) back-to-back,
// as if Send were called once per frame, amortizing the port lookup and
// queue-drain bookkeeping over the burst. Batched senders (core.Sender and
// friends) funnel here.
func (nw *Network) SendBurst(from NodeID, portNum int, frames [][]byte) {
	hl := nw.outHalf(from, portNum)
	for _, frame := range frames {
		nw.send(hl, 0, frame)
	}
}

func (nw *Network) outHalf(from NodeID, portNum int) *halfLink {
	ports := nw.ports[from]
	if portNum < 0 || portNum >= len(ports) {
		panic(fmt.Sprintf("netsim: node %d has no port %d", from, portNum))
	}
	return ports[portNum].out
}

func (nw *Network) send(hl *halfLink, class int, frame []byte) {
	eng := nw.Eng
	if hl.srcDom != nil {
		eng = hl.srcDom.eng
	}
	size := len(frame)
	if hl.down {
		hl.stats.DropsDown++
		if nw.tracer != nil {
			nw.traceFrame(hl, class, size, eng.Now(), FrameDropDown, frame)
		}
		return
	}
	now := eng.Now()
	hl.drainTo(now)

	if hl.pool != nil {
		// Shared-memory admission: the (port, class) queue's occupancy is
		// judged against its hard floor and the dynamic threshold over the
		// node-wide pool.
		class = hl.pool.foldClass(class)
		hl.pool.drainTo(now)
		if !hl.pool.admit(int(hl.poolSlot), class, size) {
			hl.pool.rejected(class)
			hl.stats.DropsPool++
			if nw.tracer != nil {
				nw.traceFrame(hl, class, size, now, FrameDropPool, frame)
			}
			return
		}
	} else if hl.queued+size > hl.cfg.QueueBytes {
		hl.stats.DropsFull++
		if nw.tracer != nil {
			nw.traceFrame(hl, class, size, now, FrameDropFull, frame)
		}
		return
	}
	if hl.cfg.LossProb > 0 && hl.rng.Float64() < hl.cfg.LossProb {
		hl.stats.DropsLoss++
		if nw.tracer != nil {
			nw.traceFrame(hl, class, size, now, FrameDropLoss, frame)
		}
		return
	}

	start := hl.busyTill
	if start < now {
		start = now
	}
	txTime := Time(int64(size) * 8 * int64(time.Second) / hl.cfg.BandwidthBps)
	if txTime < 1 {
		txTime = 1
	}
	done := start + txTime
	hl.busyTill = done
	hl.queued += size
	hl.inflight.push(txRec{done: done, size: size})
	if hl.pool != nil {
		hl.pool.charge(int(hl.poolSlot), class, done, size)
	}
	hl.stats.TxFrames++
	hl.stats.TxBytes += uint64(size)
	hl.txSeq++
	eng.txFrames++
	if nw.tracer != nil {
		// Accepted attempts are traced after the charge, so the reported
		// occupancy includes the frame itself — its position at the tail of
		// the queue it just joined. Drop records report the occupancy the
		// rejection was judged against.
		nw.traceFrame(hl, class, size, now, FrameAccepted, frame)
	}

	arrival := done + Duration(hl.cfg.Propagation)
	if hl.srcDom == nil || hl.dstDom == hl.srcDom {
		// Same event heap: deliver locally under the half-link's key. The
		// delivery record goes into this engine's frame arena — no closure,
		// no per-frame heap allocation.
		eng.scheduleFrame(arrival, hl.key, hl.txSeq, hl.dstNode, hl.dst, int32(hl.dstPort), frame)
		return
	}
	// Cross-domain: mail the delivery to the destination domain. The record
	// carries its full ordering key and payload by reference — it references
	// no arena, so the barrier can re-slot it into the peer's arena (the
	// handoff helper, Engine.scheduleFrame) in any order without perturbing
	// determinism.
	hl.srcDom.out[hl.dstDom.idx] = append(hl.srcDom.out[hl.dstDom.idx],
		mail{at: arrival, src: hl.key, seq: hl.txSeq, dst: hl.dstNode, node: hl.dst,
			port: int32(hl.dstPort), frame: frame})
}

// engFor returns the engine that owns node id's events: the domain engine
// when partitioned, the single sequential engine otherwise.
func (nw *Network) engFor(id NodeID) *Engine {
	if nw.nodeDom != nil {
		d := nw.nodeDom[id]
		if d == nil {
			panic(fmt.Sprintf("netsim: node %d not covered by any partition", id))
		}
		return d.eng
	}
	return nw.Eng
}

// NodeAfter schedules fn d ticks from node id's current virtual time, on
// the event heap that owns the node. Node-resident timers (host timeouts,
// switch recirculation) must use this instead of touching Eng so they land
// on the right domain when the fabric is partitioned.
//
// Confinement contract: during a partitioned Run, a node callback may only
// schedule on its OWN node (id must belong to the domain executing the
// callback). Scheduling on another domain's node would mutate a heap that
// domain's goroutine owns — a data race the CI -race stress tests catch —
// and would stamp the event with a foreign, interleaving-dependent origin,
// breaking the partition-invariant order. Cross-node influence must travel
// as frames (Send), never as timers. Setup code (before Run) may schedule
// on any node.
func (nw *Network) NodeAfter(id NodeID, d Time, fn func()) {
	eng := nw.engFor(id)
	eng.scheduleOwned(eng.now+d, id, fn)
}

// NodeNow returns node id's current virtual time (its domain clock).
func (nw *Network) NodeNow(id NodeID) Time {
	return nw.engFor(id).Now()
}

// Now returns the fabric-wide virtual time: the latest domain clock. After
// Run drains every queue this equals the timestamp of the last executed
// event, exactly as in a sequential run.
func (nw *Network) Now() Time {
	if nw.domains == nil {
		return nw.Eng.Now()
	}
	var t Time
	for _, d := range nw.domains {
		if d.eng.Now() > t {
			t = d.eng.Now()
		}
	}
	return t
}

// Processed returns the total number of events executed across all event
// heaps.
func (nw *Network) Processed() uint64 {
	if nw.domains == nil {
		return nw.Eng.Processed
	}
	var n uint64
	for _, d := range nw.domains {
		n += d.eng.Processed
	}
	return n
}

// DomainEvents returns the number of events each partition domain has
// executed, indexed by domain (a single-element slice while unpartitioned).
// The spread across domains is the measured load skew of the partition cut:
// a domain stuck near zero while another does all the work means the cut
// wasted its goroutine. topology.Plan.PartitionGroups balances predicted
// load to keep this flat; tests compare the prediction against these
// counters.
func (nw *Network) DomainEvents() []uint64 {
	if nw.domains == nil {
		return []uint64{nw.Eng.Processed}
	}
	out := make([]uint64, len(nw.domains))
	for i, d := range nw.domains {
		out[i] = d.eng.Processed
	}
	return out
}

// Pending returns the total number of queued events across all event heaps
// (excluding undelivered cross-domain mail, which only exists transiently
// inside Run).
func (nw *Network) Pending() int {
	if nw.domains == nil {
		return nw.Eng.Pending()
	}
	n := 0
	for _, d := range nw.domains {
		n += d.eng.Pending()
	}
	return n
}

// SetLinkState marks every link between a and b administratively up or down
// in both directions. Down links count and discard subsequent sends;
// deliveries already scheduled still arrive (those frames were in flight).
// It may only be called while the network is quiescent — before Run, or at
// a RunUntil control point — because link state is owned by the domain
// goroutines during a partitioned window.
func (nw *Network) SetLinkState(a, b NodeID, up bool) error {
	lp := nw.links[pairKey(a, b)]
	if lp == nil {
		return fmt.Errorf("netsim: no link between %d and %d", a, b)
	}
	if !up && !lp.down {
		lp.flaps++
	}
	lp.down = !up
	for _, hl := range lp.halves {
		hl.down = !up
	}
	return nil
}

// LinkFlaps returns how many up→down transitions the link between a and b
// has taken — the flap generation (one per administrative down, both
// directions fail together). A monitor that sees it advance between two
// polls knows the link failed in the interim even if both polls found it
// up, exactly as Program.Crashes exposes switch reboots faster than the
// polling period.
func (nw *Network) LinkFlaps(a, b NodeID) uint64 {
	lp := nw.links[pairKey(a, b)]
	if lp == nil {
		return 0
	}
	return lp.flaps
}

// LinkUp reports whether a link between a and b exists and is
// administratively up.
func (nw *Network) LinkUp(a, b NodeID) bool {
	lp := nw.links[pairKey(a, b)]
	return lp != nil && !lp.down
}

// PortStats returns a copy of the transmit-direction statistics of
// (node, port).
func (nw *Network) PortStats(id NodeID, portNum int) LinkStats {
	ports := nw.ports[id]
	if portNum < 0 || portNum >= len(ports) {
		return LinkStats{}
	}
	return ports[portNum].out.stats
}

// TotalStats sums transmit statistics over every half-link in the fabric.
func (nw *Network) TotalStats() LinkStats {
	var t LinkStats
	for _, hl := range nw.half {
		t.TxFrames += hl.stats.TxFrames
		t.TxBytes += hl.stats.TxBytes
		t.DropsFull += hl.stats.DropsFull
		t.DropsPool += hl.stats.DropsPool
		t.DropsLoss += hl.stats.DropsLoss
	}
	return t
}

// Run drains the event loop: sequentially on the single engine, or — after
// Partition — as a conservative parallel simulation, one goroutine per
// domain (see partition.go). maxEvents bounds the total executed event
// count across all domains; 0 means unlimited.
func (nw *Network) Run(maxEvents uint64) error {
	defer nw.account()
	if nw.domains == nil {
		return nw.Eng.Run(maxEvents)
	}
	return nw.runPartitioned(maxEvents, maxTime)
}

// RunUntil executes every event with timestamp <= deadline, then advances
// all clocks to the deadline and returns with the network quiescent. Later
// events stay queued. This is the control-plane synchronization point of
// the fault subsystem: between RunUntil calls the caller owns all state
// (fault injection, liveness polling, tree re-planning) and may schedule
// new work at >= deadline, exactly like setup code — whether the fabric is
// sequential or partitioned, the observable behaviour is identical.
func (nw *Network) RunUntil(deadline Time) error {
	defer nw.account()
	if nw.domains == nil {
		nw.Eng.RunUntil(deadline)
		return nil
	}
	return nw.runPartitioned(0, deadline)
}
