package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/daiet/daiet/internal/hashing"
)

// NodeID identifies a host or switch in the fabric. IDs live in a 24-bit
// space so they map into the 10.0.0.0/8 addressing plan of internal/wire.
type NodeID uint32

// Node is anything attached to the fabric. Attach is called exactly once,
// when the node is added; HandleFrame is called by the event loop whenever a
// frame arrives on one of the node's ports. The frame slice is owned by the
// callee after the call; the network never touches it again.
type Node interface {
	Attach(nw *Network, id NodeID)
	HandleFrame(inPort int, frame []byte)
}

// LinkConfig describes one bidirectional link. The zero value is replaced
// by defaults matching a 10 Gb/s data-center edge link.
type LinkConfig struct {
	BandwidthBps int64         // bits per second; default 10e9
	Propagation  time.Duration // one-way propagation delay; default 1µs
	QueueBytes   int           // per-direction FIFO capacity; default 256 KiB
	LossProb     float64       // i.i.d. frame drop probability; default 0
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 10_000_000_000
	}
	if c.Propagation == 0 {
		c.Propagation = time.Microsecond
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 256 << 10
	}
	return c
}

// LinkStats counts traffic for one direction of a link.
type LinkStats struct {
	TxFrames  uint64
	TxBytes   uint64
	DropsFull uint64 // tail drops from queue overflow
	DropsLoss uint64 // injected random losses
}

// txRec is one accepted frame's serialization record: the time its bytes
// finish leaving the queue, and how many there were.
type txRec struct {
	done Time
	size int
}

// halfLink is one direction of a link: a serializing transmitter feeding a
// propagation delay into the peer node's port.
type halfLink struct {
	cfg      LinkConfig
	dstNode  NodeID
	dstPort  int
	busyTill Time // when the transmitter finishes its current backlog
	queued   int  // bytes accepted but not yet fully serialized
	stats    LinkStats
	rng      *rand.Rand

	// inflight records accepted frames not yet drained from the queue
	// accounting. Occupancy is only ever consulted at admission time, so
	// instead of scheduling one engine event per frame to decrement queued
	// (half of all send-side events before this existed), drains are applied
	// lazily at the next admission: pop every record whose serialization
	// finished at or before now. head indexes the first live record; the
	// slice compacts when the dead prefix dominates.
	inflight []txRec
	head     int
}

// drainTo applies every queue drain due at or before now.
func (hl *halfLink) drainTo(now Time) {
	i := hl.head
	for i < len(hl.inflight) && hl.inflight[i].done <= now {
		hl.queued -= hl.inflight[i].size
		i++
	}
	hl.head = i
	if i == len(hl.inflight) {
		hl.inflight = hl.inflight[:0]
		hl.head = 0
	} else if i >= 32 && i*2 >= len(hl.inflight) {
		n := copy(hl.inflight, hl.inflight[i:])
		hl.inflight = hl.inflight[:n]
		hl.head = 0
	}
}

// Port names one endpoint of a link from a node's point of view.
type port struct {
	out *halfLink
}

// Network glues nodes together with links on top of an Engine.
type Network struct {
	Eng   *Engine
	nodes map[NodeID]Node
	ports map[NodeID][]*port
	half  []*halfLink
	seed  uint64
}

// New creates an empty network over a fresh engine. seed drives all loss
// randomness; the same seed reproduces the same drops.
func New(seed uint64) *Network {
	return &Network{
		Eng:   NewEngine(),
		nodes: make(map[NodeID]Node),
		ports: make(map[NodeID][]*port),
		seed:  seed,
	}
}

// AddNode attaches n under the given ID. Duplicate IDs are a configuration
// error and panic.
func (nw *Network) AddNode(id NodeID, n Node) {
	if _, dup := nw.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node id %d", id))
	}
	nw.nodes[id] = n
	n.Attach(nw, id)
}

// Node returns the node registered under id, or nil.
func (nw *Network) Node(id NodeID) Node { return nw.nodes[id] }

// NumPorts returns how many ports node id currently has.
func (nw *Network) NumPorts(id NodeID) int { return len(nw.ports[id]) }

// Connect joins a and b with a bidirectional link and returns the port
// numbers allocated on each side. Both nodes must already be added.
func (nw *Network) Connect(a, b NodeID, cfg LinkConfig) (aPort, bPort int) {
	if _, ok := nw.nodes[a]; !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", a))
	}
	if _, ok := nw.nodes[b]; !ok {
		panic(fmt.Sprintf("netsim: connect: unknown node %d", b))
	}
	cfg = cfg.withDefaults()
	aPort = len(nw.ports[a])
	bPort = len(nw.ports[b])
	// Derive independent, deterministic RNG streams per half-link.
	mk := func(salt uint64) *rand.Rand {
		return rand.New(rand.NewSource(int64(hashing.Mix64(nw.seed ^ salt))))
	}
	ab := &halfLink{cfg: cfg, dstNode: b, dstPort: bPort,
		rng: mk(uint64(a)<<32 | uint64(b)<<8 | uint64(aPort))}
	ba := &halfLink{cfg: cfg, dstNode: a, dstPort: aPort,
		rng: mk(uint64(b)<<32 | uint64(a)<<8 | uint64(bPort) | 1<<63)}
	nw.ports[a] = append(nw.ports[a], &port{out: ab})
	nw.ports[b] = append(nw.ports[b], &port{out: ba})
	nw.half = append(nw.half, ab, ba)
	return aPort, bPort
}

// Send transmits frame out of (from, portNum). The network takes ownership
// of the frame slice. Frames that overflow the port queue or hit injected
// loss are counted and dropped.
func (nw *Network) Send(from NodeID, portNum int, frame []byte) {
	nw.send(nw.outHalf(from, portNum), frame)
}

// SendBurst transmits several frames out of (from, portNum) back-to-back,
// as if Send were called once per frame, amortizing the port lookup and
// queue-drain bookkeeping over the burst. Batched senders (core.Sender and
// friends) funnel here.
func (nw *Network) SendBurst(from NodeID, portNum int, frames [][]byte) {
	hl := nw.outHalf(from, portNum)
	for _, frame := range frames {
		nw.send(hl, frame)
	}
}

func (nw *Network) outHalf(from NodeID, portNum int) *halfLink {
	ports := nw.ports[from]
	if portNum < 0 || portNum >= len(ports) {
		panic(fmt.Sprintf("netsim: node %d has no port %d", from, portNum))
	}
	return ports[portNum].out
}

func (nw *Network) send(hl *halfLink, frame []byte) {
	size := len(frame)
	now := nw.Eng.Now()
	hl.drainTo(now)

	if hl.queued+size > hl.cfg.QueueBytes {
		hl.stats.DropsFull++
		return
	}
	if hl.cfg.LossProb > 0 && hl.rng.Float64() < hl.cfg.LossProb {
		hl.stats.DropsLoss++
		return
	}

	start := hl.busyTill
	if start < now {
		start = now
	}
	txTime := Time(int64(size) * 8 * int64(time.Second) / hl.cfg.BandwidthBps)
	if txTime < 1 {
		txTime = 1
	}
	done := start + txTime
	hl.busyTill = done
	hl.queued += size
	hl.inflight = append(hl.inflight, txRec{done: done, size: size})
	hl.stats.TxFrames++
	hl.stats.TxBytes += uint64(size)

	arrival := done + Duration(hl.cfg.Propagation)
	dst, dstPort := hl.dstNode, hl.dstPort
	nw.Eng.Schedule(arrival, func() {
		if n := nw.nodes[dst]; n != nil {
			n.HandleFrame(dstPort, frame)
		}
	})
}

// PortStats returns a copy of the transmit-direction statistics of
// (node, port).
func (nw *Network) PortStats(id NodeID, portNum int) LinkStats {
	ports := nw.ports[id]
	if portNum < 0 || portNum >= len(ports) {
		return LinkStats{}
	}
	return ports[portNum].out.stats
}

// TotalStats sums transmit statistics over every half-link in the fabric.
func (nw *Network) TotalStats() LinkStats {
	var t LinkStats
	for _, hl := range nw.half {
		t.TxFrames += hl.stats.TxFrames
		t.TxBytes += hl.stats.TxBytes
		t.DropsFull += hl.stats.DropsFull
		t.DropsLoss += hl.stats.DropsLoss
	}
	return t
}

// Run drains the event loop (see Engine.Run).
func (nw *Network) Run(maxEvents uint64) error { return nw.Eng.Run(maxEvents) }
