package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// runWorldRecut is runWorld with a dynamic re-cut policy: a seeded random
// schedule (jittered intervals) and a Groups func that re-deals every node
// into the same number of domains at random. Any re-cut schedule must
// replay byte-identically to the sequential run.
func runWorldRecut(t *testing.T, seed int64, n, domains int, recutSeed uint64) string {
	t.Helper()
	nw, nodes := chatterWorld(t, seed, n)
	if err := nw.Partition(randomGroups(n, domains, seed)); err != nil {
		t.Fatal(err)
	}
	if nw.Domains() > 1 {
		rng := rand.New(rand.NewSource(int64(recutSeed) ^ 0x6a09e667))
		err := nw.SetRecutPolicy(RecutPolicy{
			Interval:   Duration(2 * time.Microsecond),
			MinSkewPct: 0, // re-cut on any measured imbalance
			Seed:       recutSeed,
			Groups: func(current [][]NodeID, measured []uint64) [][]NodeID {
				groups := make([][]NodeID, len(current))
				for _, g := range current {
					for _, id := range g {
						k := rng.Intn(len(groups))
						groups[k] = append(groups[k], id)
					}
				}
				return groups
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	inject(nw, nodes, seed)
	if err := nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return fingerprint(nw, nodes)
}

// TestRecutConformanceProperty extends the partition conformance property
// with dynamic re-partitioning: random topologies and workloads, random
// initial cuts, and randomized seeded re-cut schedules all replay
// byte-identically to the sequential run.
func TestRecutConformanceProperty(t *testing.T) {
	var recuts uint64
	for trial := 0; trial < 4; trial++ {
		seed := int64(4000 + 131*trial)
		n := 9 + trial*3
		seq := runWorld(t, seed, n, 1)
		for _, domains := range []int{2, 3, 4} {
			for _, recutSeed := range []uint64{1, 42} {
				got := runWorldRecut(t, seed, n, domains, recutSeed)
				if got != seq {
					t.Fatalf("trial %d: re-cut replay diverged at %d domains (recut seed %d):\nsequential:\n%s\nre-cut:\n%s",
						trial, domains, recutSeed, seq, got)
				}
			}
		}
		// Count applied re-cuts on one more run so the property is known
		// to exercise actual migrations, not an idle policy.
		nw, nodes := chatterWorld(t, seed, n)
		if err := nw.Partition(randomGroups(n, 3, seed)); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		if err := nw.SetRecutPolicy(RecutPolicy{
			Interval: Duration(2 * time.Microsecond),
			Seed:     9,
			Groups: func(current [][]NodeID, measured []uint64) [][]NodeID {
				groups := make([][]NodeID, len(current))
				for _, g := range current {
					for _, id := range g {
						k := rng.Intn(len(groups))
						groups[k] = append(groups[k], id)
					}
				}
				return groups
			},
		}); err != nil {
			t.Fatal(err)
		}
		inject(nw, nodes, seed)
		if err := nw.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		recuts += nw.Recuts()
	}
	if recuts == 0 {
		t.Fatal("no dynamic re-cut was ever applied; the property tested nothing")
	}
}

// TestRepartitionAtControlPoints drives the public quiescent-point API:
// alternating RunUntil windows with explicit Repartition calls must
// replay byte-identically to a sequential run over the same schedule.
func TestRepartitionAtControlPoints(t *testing.T) {
	const seed, n = 5150, 12
	run := func(recut bool) string {
		nw, nodes := chatterWorld(t, seed, n)
		if err := nw.Partition(randomGroups(n, 3, seed)); err != nil {
			t.Fatal(err)
		}
		inject(nw, nodes, seed)
		for step := 1; step <= 8; step++ {
			if err := nw.RunUntil(Time(step) * Duration(3*time.Microsecond)); err != nil {
				t.Fatal(err)
			}
			if recut {
				if err := nw.Repartition(randomGroups(n, 3, seed+int64(step))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := nw.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return fingerprint(nw, nodes)
	}
	seqNW, seqNodes := chatterWorld(t, seed, n)
	inject(seqNW, seqNodes, seed)
	for step := 1; step <= 8; step++ {
		if err := seqNW.RunUntil(Time(step) * Duration(3*time.Microsecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seqNW.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	seq := fingerprint(seqNW, seqNodes)

	if got := run(false); got != seq {
		t.Fatalf("static partitioned control-point run diverged:\n%s\nvs\n%s", got, seq)
	}
	if got := run(true); got != seq {
		t.Fatalf("re-cut control-point run diverged:\n%s\nvs\n%s", got, seq)
	}
}

// TestRepartitionValidation covers the re-cut configuration contract.
func TestRepartitionValidation(t *testing.T) {
	mk := func() *Network {
		nw := New(1)
		for id := NodeID(1); id <= 4; id++ {
			nw.AddNode(id, &chatter{})
		}
		nw.Connect(1, 2, LinkConfig{})
		nw.Connect(3, 4, LinkConfig{})
		nw.Connect(2, 3, LinkConfig{})
		return nw
	}

	if err := mk().Repartition([][]NodeID{{1, 2, 3, 4}}); err == nil {
		t.Fatal("Repartition before Partition accepted")
	}
	nw := mk()
	if err := nw.Partition([][]NodeID{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Repartition([][]NodeID{{1, 2, 3, 4}}); err == nil {
		t.Fatal("group-count change accepted")
	}
	if err := nw.Repartition([][]NodeID{{1, 2, 3}, {4, 4}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := nw.Repartition([][]NodeID{{1, 2, 3}, {9}}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := nw.Repartition([][]NodeID{{1, 2}, {3}}); err == nil {
		t.Fatal("partial cover accepted")
	}
	// Identical grouping: a deterministic no-op.
	if err := nw.Repartition([][]NodeID{{1, 2}, {3, 4}}); err != nil {
		t.Fatalf("no-op re-cut rejected: %v", err)
	}
	// A full shuffle, including an empty group, is legal.
	if err := nw.Repartition([][]NodeID{{3, 1, 4, 2}, {}}); err != nil {
		t.Fatalf("legal re-cut rejected: %v", err)
	}
	if err := nw.Repartition([][]NodeID{{1, 2}, {3, 4}}); err != nil {
		t.Fatalf("re-cut back rejected: %v", err)
	}

	// Policy validation.
	groups := func([][]NodeID, []uint64) [][]NodeID { return nil }
	if err := mk().SetRecutPolicy(RecutPolicy{Interval: 1, Groups: groups}); err == nil {
		t.Fatal("policy on unpartitioned network accepted")
	}
	if err := nw.SetRecutPolicy(RecutPolicy{Groups: groups}); err == nil {
		t.Fatal("policy without Interval accepted")
	}
	if err := nw.SetRecutPolicy(RecutPolicy{Interval: 1}); err == nil {
		t.Fatal("policy without Groups accepted")
	}
	if err := nw.SetRecutPolicy(RecutPolicy{Interval: 1, Groups: groups}); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	if nw.Recuts() != 0 {
		t.Fatalf("Recuts = %d before any run", nw.Recuts())
	}
}

// TestArenaRecycling pins the zero-steady-state-allocation design: a long
// sequential run recycles frame slots through the free list, so capacity
// tracks peak in-flight frames, not total frames, and nothing stays live
// after the run drains.
func TestArenaRecycling(t *testing.T) {
	nw := New(3)
	a, b := &chatter{}, &chatter{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{QueueBytes: 1 << 20})
	for i := 0; i < 200; i++ {
		frame := make([]byte, 64)
		frame[0] = 5 // TTL
		frame[1] = byte(i)
		nw.Send(1, 0, frame)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	st := nw.ArenaStats()
	frames := nw.TotalStats().TxFrames
	if st.FrameLive != 0 {
		t.Fatalf("%d frame slots live after drain", st.FrameLive)
	}
	if st.FramePeak == 0 || st.Bytes == 0 {
		t.Fatalf("arena stats not tracked: %+v", st)
	}
	if uint64(st.FrameCap) >= frames {
		t.Fatalf("frame slots are not recycled: cap %d for %d frames", st.FrameCap, frames)
	}
	if ev, fr := SimCounters(); ev == 0 || fr == 0 {
		t.Fatalf("SimCounters not accumulating: events=%d frames=%d", ev, fr)
	}
}
