package netsim

import (
	"testing"
)

// collectTracer retains every FrameTraceInfo it sees (test-only; real
// tracers must not allocate on the steady path).
type collectTracer struct {
	infos []FrameTraceInfo
}

func (c *collectTracer) TraceFrame(info FrameTraceInfo, frame []byte) {
	c.infos = append(c.infos, info)
}

// TestFrameTracerVerdicts drives one attempt of every verdict through a
// traced fabric and checks the reported occupancy and attempt keying.
func TestFrameTracerVerdicts(t *testing.T) {
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 100, Alpha: 4})
	tr := &collectTracer{}
	nw.SetFrameTracer(tr)

	// 12 sends on port 0: the slow fabric admits 8 (see
	// TestPoolSharedMemoryFills) and pool-rejects 4.
	for i := 0; i < 12; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	if len(tr.infos) != 12 {
		t.Fatalf("traced %d attempts, want 12", len(tr.infos))
	}
	for i, info := range tr.infos {
		if want := uint64(i + 1); info.Seq != want {
			t.Fatalf("attempt %d: seq %d, want %d", i, info.Seq, want)
		}
		if info.Src != 1 || info.Dst != 2 || info.Size != 100 {
			t.Fatalf("attempt %d: %+v", i, info)
		}
		if i < 8 {
			if info.Verdict != FrameAccepted {
				t.Fatalf("attempt %d: verdict %v, want accepted", i, info.Verdict)
			}
			// Accepted records include the frame just charged.
			if want := (i + 1) * 100; info.PoolUsedBytes != want {
				t.Fatalf("attempt %d: pool %d, want %d", i, info.PoolUsedBytes, want)
			}
		} else {
			if info.Verdict != FrameDropPool {
				t.Fatalf("attempt %d: verdict %v, want drop-pool", i, info.Verdict)
			}
			// Drops report the occupancy the rejection was judged against.
			if info.PoolUsedBytes != 800 {
				t.Fatalf("attempt %d: pool %d, want 800", i, info.PoolUsedBytes)
			}
		}
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}

	// Origins differ per half-link and stay partition-invariant.
	tr.infos = nil
	nw.Send(1, 1, make([]byte, 50))
	if len(tr.infos) != 1 || tr.infos[0].Origin == 0 {
		t.Fatalf("port 1 trace %+v", tr.infos)
	}
	if tr.infos[0].Dst != 3 || tr.infos[0].Seq != 1 {
		t.Fatalf("port 1 trace %+v", tr.infos[0])
	}
}

// TestFrameTracerPoollessAndDownVerdicts covers the verdicts poolWorld
// cannot produce: private-FIFO overflow, injected loss, and admin-down.
func TestFrameTracerPoollessAndDownVerdicts(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	nw.AddNode(3, &sink{})
	nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 150})
	nw.Connect(1, 3, LinkConfig{LossProb: 1})
	tr := &collectTracer{}
	nw.SetFrameTracer(tr)

	nw.Send(1, 0, make([]byte, 100)) // accepted, queued 100
	nw.Send(1, 0, make([]byte, 100)) // 200 > 150: drop-full
	nw.Send(1, 1, make([]byte, 100)) // LossProb 1: drop-loss
	if err := nw.SetLinkState(1, 2, false); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 0, make([]byte, 100)) // drop-down

	want := []struct {
		verdict FrameVerdict
		seq     uint64
		queued  int
		pool    int
	}{
		{FrameAccepted, 1, 100, -1},
		{FrameDropFull, 2, 100, -1},
		{FrameDropLoss, 1, 0, -1},
		{FrameDropDown, 3, 100, -1},
	}
	if len(tr.infos) != len(want) {
		t.Fatalf("traced %d attempts, want %d", len(tr.infos), len(want))
	}
	for i, w := range want {
		got := tr.infos[i]
		if got.Verdict != w.verdict || got.Seq != w.seq ||
			got.QueuedBytes != w.queued || got.PoolUsedBytes != w.pool {
			t.Fatalf("attempt %d: got %+v, want %+v", i, got, w)
		}
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestSendTracerOffZeroAlloc pins the hot-path contract from tracer.go:
// with no tracer installed, the steady-state send+drain path allocates
// nothing — the hook costs one nil check.
func TestSendTracerOffZeroAlloc(t *testing.T) {
	nw := New(1)
	s := &countSink{}
	nw.AddNode(1, &countSink{})
	nw.AddNode(2, s)
	nw.Connect(1, 2, LinkConfig{})
	frame := make([]byte, 256)
	// Warm the arenas through one round.
	nw.Send(1, 0, frame)
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		nw.Send(1, 0, frame)
		if err := nw.Run(0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("tracer-off send path: %v allocs/op, want 0", allocs)
	}
	if s.n == 0 {
		t.Fatal("no frames delivered")
	}
}
