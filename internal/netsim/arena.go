package netsim

import (
	"sync/atomic"
	"unsafe"
)

// Per-domain slab arenas for the event hot path.
//
// Before PR 7 every frame delivery allocated a closure (capturing the
// destination node, port and payload) that lived on the heap until the
// event fired — at million-frame scale that is millions of short-lived
// allocations per simulated second and a GC constantly walking the event
// heap. Arenas replace the closure with an int32 slot into per-engine
// struct-of-arrays storage: the fields the heap and halfLink admission
// touch (timestamps, origin/seq keys) stay inline in the 32-byte event
// struct, while the delivery record (node, port, payload reference) lives
// in the engine's arena, recycled through a LIFO free list. Steady state
// allocates nothing: BenchmarkFrameDelivery, BenchmarkBurstAdmission and
// BenchmarkMegaIncast all report 0 allocs/op.
//
// Ownership rule (enforced by the arenaescape analyzer): an arena slot is
// owned by exactly one engine, from alloc to take. Payloads stay
// by-reference — the []byte is never copied — and ownership of the payload
// passes with the slot: the sender gives it up at Send, the arena holds it
// while the frame is in flight, and take hands it to the destination
// node's HandleFrame, after which the arena retains nothing. Only the
// engine's own push/take helpers may touch arena internals; cross-domain
// frames travel as explicit mail records and re-enter an arena only
// through Engine.scheduleFrame at the barrier (the handoff helper).

// frameArena is the struct-of-arrays store for in-flight frame
// deliveries: parallel slices indexed by slot. Slots are recycled LIFO so
// a steady-state workload touches a small, cache-resident prefix.
type frameArena struct {
	node []Node
	port []int32
	buf  [][]byte
	free []int32
	live int
	peak int
}

// alloc claims a slot and stores one delivery record in it.
func (a *frameArena) alloc(n Node, port int32, frame []byte) int32 {
	var slot int32
	if k := len(a.free); k > 0 {
		slot = a.free[k-1]
		a.free = a.free[:k-1]
		a.node[slot] = n
		a.port[slot] = port
		a.buf[slot] = frame
	} else {
		slot = int32(len(a.node))
		a.node = append(a.node, n)
		a.port = append(a.port, port)
		a.buf = append(a.buf, frame)
	}
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	return slot
}

// take moves the slot's record out of the arena and recycles the slot.
// Ownership of the payload passes to the caller; the arena keeps no
// reference.
func (a *frameArena) take(slot int32) (Node, int32, []byte) {
	n, port, frame := a.node[slot], a.port[slot], a.buf[slot]
	a.node[slot] = nil
	a.buf[slot] = nil
	a.free = append(a.free, slot)
	a.live--
	return n, port, frame
}

// bytes is the arena's resident metadata footprint (backing arrays and
// free list; payload bytes are owned by their producers and excluded).
func (a *frameArena) bytes() int64 {
	return int64(cap(a.node))*int64(unsafe.Sizeof(Node(nil))) +
		int64(cap(a.port))*int64(unsafe.Sizeof(int32(0))) +
		int64(cap(a.buf))*int64(unsafe.Sizeof([]byte(nil))) +
		int64(cap(a.free))*int64(unsafe.Sizeof(int32(0)))
}

// fnArena is the slot store for callback events (timers, control-plane
// work): the closure plus the node that owns it for re-cut migration.
type fnArena struct {
	fn    []func()
	owner []NodeID
	free  []int32
	live  int
	peak  int
}

func (a *fnArena) alloc(owner NodeID, fn func()) int32 {
	var slot int32
	if k := len(a.free); k > 0 {
		slot = a.free[k-1]
		a.free = a.free[:k-1]
		a.fn[slot] = fn
		a.owner[slot] = owner
	} else {
		slot = int32(len(a.fn))
		a.fn = append(a.fn, fn)
		a.owner = append(a.owner, owner)
	}
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	return slot
}

// take moves the slot's callback out of the arena and recycles the slot.
func (a *fnArena) take(slot int32) (func(), NodeID) {
	fn, owner := a.fn[slot], a.owner[slot]
	a.fn[slot] = nil
	a.free = append(a.free, slot)
	a.live--
	return fn, owner
}

func (a *fnArena) bytes() int64 {
	return int64(cap(a.fn))*int64(unsafe.Sizeof((func())(nil))) +
		int64(cap(a.owner))*int64(unsafe.Sizeof(NodeID(0))) +
		int64(cap(a.free))*int64(unsafe.Sizeof(int32(0)))
}

// ArenaStats aggregates arena occupancy across every event engine of a
// network — the "peak arena bytes" figure of the megaincast experiment.
type ArenaStats struct {
	FrameCap  int   // frame slots ever allocated (capacity; never shrinks)
	FrameLive int   // frame slots currently holding an in-flight delivery
	FramePeak int   // high-water mark of live frame slots
	TimerCap  int   // callback slots ever allocated
	TimerPeak int   // high-water mark of live callback slots
	Bytes     int64 // resident arena metadata bytes (payloads excluded)
}

// ArenaStats returns the summed arena statistics of all domains (or of
// the single sequential engine).
func (nw *Network) ArenaStats() ArenaStats {
	var st ArenaStats
	add := func(e *Engine) {
		st.FrameCap += len(e.frames.node)
		st.FrameLive += e.frames.live
		st.FramePeak += e.frames.peak
		st.TimerCap += len(e.fns.fn)
		st.TimerPeak += e.fns.peak
		st.Bytes += e.frames.bytes() + e.fns.bytes()
	}
	if nw.domains == nil {
		add(nw.Eng)
		return st
	}
	for _, d := range nw.domains {
		add(d.eng)
	}
	return st
}

// simEvents and simFrames are process-wide counters of executed events
// and accepted frames, accumulated at the end of every Network.Run /
// RunUntil. cmd/daiet-bench reads deltas around each figure to report
// events_total, events_per_sec and allocs_per_frame in BENCH_results.json
// (schema 6). They are monotone and deterministic for a fixed figure
// order (-parallel 1).
var (
	simEvents atomic.Uint64
	simFrames atomic.Uint64
)

// simBarriers/simWindows/simIdleWindows are the process-wide totals of the
// partitioned engine's synchronization diagnostics (SyncStats), published
// the same way. cmd/daiet-bench reads deltas around each figure to report
// sync_barriers, sync_windows and sync_idle_windows per record (schema 9).
var (
	simBarriers    atomic.Uint64
	simWindows     atomic.Uint64
	simIdleWindows atomic.Uint64
)

// SimCounters returns the process-wide totals of executed simulator
// events and accepted (transmitted) frames.
func SimCounters() (events, frames uint64) {
	return simEvents.Load(), simFrames.Load()
}

// SyncCounters returns the process-wide totals of partitioned-engine
// synchronization rounds: barriers (coordinator rounds), dispatched
// execution windows, and idle windows (domain-rounds denied by a horizon).
func SyncCounters() (barriers, windows, idleWindows uint64) {
	return simBarriers.Load(), simWindows.Load(), simIdleWindows.Load()
}

// account publishes this network's event/frame/sync progress into the
// process-wide counters. Called once per Run/RunUntil return.
func (nw *Network) account() {
	ev := nw.Processed()
	simEvents.Add(ev - nw.accEvents)
	nw.accEvents = ev
	fr := nw.framesScheduled()
	simFrames.Add(fr - nw.accFrames)
	nw.accFrames = fr
	ss := nw.syncStats
	simBarriers.Add(ss.Barriers - nw.accSync.Barriers)
	simWindows.Add(ss.Windows - nw.accSync.Windows)
	simIdleWindows.Add(ss.IdleWindows - nw.accSync.IdleWindows)
	nw.accSync = ss
}

// framesScheduled sums accepted-frame counts over all engines (each
// engine counts the frames its domain's transmitters accepted).
func (nw *Network) framesScheduled() uint64 {
	if nw.domains == nil {
		return nw.Eng.txFrames
	}
	var n uint64
	for _, d := range nw.domains {
		n += d.eng.txFrames
	}
	return n
}
