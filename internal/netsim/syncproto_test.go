package netsim

import (
	"testing"
	"time"
)

// ---- per-channel synchronization tests ----
//
// The EIT protocol's motivating regime is a heterogeneous cut: one short
// link between two domains next to many long ones. The global scheme pays
// the shortest cut link fleet-wide — every domain synchronizes at the
// global minimum plus ~the short latency — while per-channel horizons
// confine the cost to the channel that has it. The tests here pin three
// properties: results stay byte-identical under either protocol (and equal
// to the sequential run), the diagnostics are deterministic, and EIT
// measurably beats global on the heterogeneous cut (wider windows, fewer
// barriers).

// hetWorld builds three 4-node islands of chatter nodes. Islands are
// internally dense (short intra-links, which the cut never touches), and
// the island pairs are bridged by exactly one link each: 0-1 by a SHORT
// link, 0-2 and 1-2 by long ones. Partitioning by island makes the 0→1
// channel the throttle the global protocol pays everywhere.
func hetWorld(t *testing.T, seed int64, short time.Duration) (*Network, []*chatter, [][]NodeID) {
	t.Helper()
	const perIsland, islands = 4, 3
	nw := New(uint64(seed))
	nodes := make([]*chatter, perIsland*islands)
	groups := make([][]NodeID, islands)
	for i := range nodes {
		nodes[i] = &chatter{}
		id := NodeID(i + 1)
		nw.AddNode(id, nodes[i])
		groups[i/perIsland] = append(groups[i/perIsland], id)
	}
	intra := LinkConfig{Propagation: 300 * time.Nanosecond, QueueBytes: 64 << 10}
	for g := 0; g < islands; g++ {
		base := NodeID(g*perIsland + 1)
		for k := 0; k < perIsland; k++ {
			nw.Connect(base+NodeID(k), base+NodeID((k+1)%perIsland), intra)
		}
	}
	long := LinkConfig{Propagation: 20 * time.Microsecond, QueueBytes: 64 << 10}
	shortCfg := LinkConfig{Propagation: short, QueueBytes: 64 << 10}
	nw.Connect(groups[0][0], groups[1][0], shortCfg) // the throttle channel
	nw.Connect(groups[0][1], groups[2][0], long)
	nw.Connect(groups[1][1], groups[2][1], long)
	return nw, nodes, groups
}

func runHetWorld(t *testing.T, seed int64, short time.Duration, partition bool, proto SyncProtocol) (string, SyncStats) {
	t.Helper()
	nw, nodes, groups := hetWorld(t, seed, short)
	if partition {
		if err := nw.Partition(groups); err != nil {
			t.Fatal(err)
		}
		nw.SetSyncProtocol(proto)
	}
	inject(nw, nodes, seed)
	if err := nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return fingerprint(nw, nodes), nw.SyncStats()
}

// TestSyncProtocolConformance: on the heterogeneous cut (one short link,
// two long ones), both protocols replay byte-identically to the sequential
// run, and their SyncStats diagnostics are themselves deterministic across
// repeated runs.
func TestSyncProtocolConformance(t *testing.T) {
	for _, short := range []time.Duration{50 * time.Nanosecond, time.Microsecond} {
		short := short
		t.Run(short.String(), func(t *testing.T) {
			t.Parallel()
			const seed = 31337
			seq, _ := runHetWorld(t, seed, short, false, SyncEIT)
			for _, proto := range []SyncProtocol{SyncEIT, SyncGlobal} {
				got, stats := runHetWorld(t, seed, short, true, proto)
				if got != seq {
					t.Fatalf("protocol %d diverged from sequential:\n%s\nvs\n%s", proto, got, seq)
				}
				again, stats2 := runHetWorld(t, seed, short, true, proto)
				if again != seq {
					t.Fatalf("protocol %d: repeated run diverged", proto)
				}
				if stats != stats2 {
					t.Fatalf("protocol %d: diagnostics not deterministic:\n%+v\nvs\n%+v",
						proto, stats, stats2)
				}
				if stats.Barriers == 0 || stats.Windows == 0 {
					t.Fatalf("protocol %d: no synchronization recorded: %+v", proto, stats)
				}
			}
		})
	}
}

// TestSyncEITBeatsGlobal pins the performance claim behind the redesign:
// with one short cut link among long ones, per-channel horizons execute
// fewer, wider windows than the global scheme — the short channel's cost
// stays on its channel instead of throttling the fleet.
func TestSyncEITBeatsGlobal(t *testing.T) {
	const seed = 777
	_, eit := runHetWorld(t, seed, 50*time.Nanosecond, true, SyncEIT)
	_, global := runHetWorld(t, seed, 50*time.Nanosecond, true, SyncGlobal)

	if eit.Barriers >= global.Barriers {
		t.Errorf("EIT barriers %d, global %d: want fewer", eit.Barriers, global.Barriers)
	}
	if eit.Windows >= global.Windows {
		t.Errorf("EIT windows %d, global %d: want fewer", eit.Windows, global.Windows)
	}
	if eit.MeanHorizon() <= global.MeanHorizon() {
		t.Errorf("EIT mean horizon %v, global %v: want wider",
			eit.MeanHorizon(), global.MeanHorizon())
	}
	t.Logf("EIT:    %+v (mean horizon %v)", eit, eit.MeanHorizon())
	t.Logf("global: %+v (mean horizon %v)", global, global.MeanHorizon())
}

// TestDomainSyncAccounting checks the per-domain window/idle split sums to
// the fabric totals.
func TestDomainSyncAccounting(t *testing.T) {
	nw, nodes, groups := hetWorld(t, 4242, 50*time.Nanosecond)
	if err := nw.Partition(groups); err != nil {
		t.Fatal(err)
	}
	inject(nw, nodes, 4242)
	if err := nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	windows, idle := nw.DomainSync()
	if len(windows) != 3 || len(idle) != 3 {
		t.Fatalf("DomainSync lengths %d/%d, want 3/3", len(windows), len(idle))
	}
	var w, id uint64
	for i := range windows {
		w += windows[i]
		id += idle[i]
	}
	st := nw.SyncStats()
	if w != st.Windows || id != st.IdleWindows {
		t.Fatalf("per-domain sums (%d, %d) != totals (%d, %d)", w, id, st.Windows, st.IdleWindows)
	}
}

// TestRebindLookaheadsMatchesFullRebuild pins the incremental Repartition
// path: after a series of re-cuts, the maintained cut set and path-closed
// lookahead matrix must equal a from-scratch recomputation over every link.
func TestRebindLookaheadsMatchesFullRebuild(t *testing.T) {
	const seed, n = 9090, 12
	nw, nodes := chatterWorld(t, seed, n)
	if err := nw.Partition(randomGroups(n, 3, seed)); err != nil {
		t.Fatal(err)
	}
	inject(nw, nodes, seed)
	for step := 1; step <= 6; step++ {
		if err := nw.RunUntil(Time(step) * Duration(2*time.Microsecond)); err != nil {
			t.Fatal(err)
		}
		if err := nw.Repartition(randomGroups(n, 3, seed+int64(step))); err != nil {
			t.Fatal(err)
		}

		// Reference: direct per-pair minima over ALL half-links, then the
		// same min-plus closure.
		nd := len(nw.domains)
		ref := make([][]Time, nd)
		for i := range ref {
			ref[i] = make([]Time, nd)
			for j := range ref[i] {
				ref[i][j] = maxTime
			}
		}
		refGlobal := maxTime
		for _, hl := range nw.half {
			src, dst := nw.nodeDom[hl.srcNode], nw.nodeDom[hl.dstNode]
			if src == dst {
				if hl.inCut {
					t.Fatalf("step %d: internal link still flagged inCut", step)
				}
				continue
			}
			la := 1 + Duration(hl.cfg.Propagation)
			if la < ref[src.idx][dst.idx] {
				ref[src.idx][dst.idx] = la
			}
			if la < refGlobal {
				refGlobal = la
			}
		}
		if nw.lookahead != refGlobal {
			t.Fatalf("step %d: cached global lookahead %v, reference %v", step, nw.lookahead, refGlobal)
		}
		for k := 0; k < nd; k++ {
			for i := 0; i < nd; i++ {
				if ref[i][k] == maxTime {
					continue
				}
				for j := 0; j < nd; j++ {
					if ref[k][j] != maxTime && ref[i][k]+ref[k][j] < ref[i][j] {
						ref[i][j] = ref[i][k] + ref[k][j]
					}
				}
			}
		}
		for i := 0; i < nd; i++ {
			for j := 0; j < nd; j++ {
				if nw.la[i][j] != ref[i][j] {
					t.Fatalf("step %d: la[%d][%d] = %v, reference %v",
						step, i, j, nw.la[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestPartitionBudgetChunkBoundaries sweeps budgets around the chunk size
// the shared counter is drawn in: exactness must not depend on where the
// stop lands inside a chunk.
func TestPartitionBudgetChunkBoundaries(t *testing.T) {
	build := func() *Network {
		nw := New(7)
		for i := 0; i < 4; i++ {
			nw.AddNode(NodeID(i+1), &chatter{})
		}
		cfg := LinkConfig{QueueBytes: 1 << 20}
		for i := 0; i < 4; i++ {
			nw.Connect(NodeID(i+1), NodeID((i+1)%4+1), cfg)
		}
		nw.Partition([][]NodeID{{1, 2}, {3, 4}})
		for i := 0; i < 4; i++ {
			frame := make([]byte, 32)
			frame[0] = 14 // TTL: a cascade of a few thousand events
			nw.Send(NodeID(i+1), 0, frame)
		}
		return nw
	}
	nw := build()
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	total := nw.Processed()
	if total < 3*budgetChunk {
		t.Fatalf("cascade too small for chunk boundaries: %d events", total)
	}
	for _, b := range []uint64{budgetChunk - 1, budgetChunk, budgetChunk + 1,
		2*budgetChunk - 1, 2 * budgetChunk, total - 1} {
		nw := build()
		if err := nw.Run(b); err == nil {
			t.Fatalf("budget %d of %d: want exhaustion error", b, total)
		}
		if got := nw.Processed(); got != b {
			t.Fatalf("budget %d: executed %d events, want exactly the budget", b, got)
		}
	}
}

// BenchmarkPartitionRunUntilCadence measures the per-control-point cost of
// a partitioned fabric driven at telemetry's RunSampled cadence: many short
// RunUntil windows. This is the loop the persistent worker pool exists for —
// before it, every window paid one goroutine spawn per domain per call.
func BenchmarkPartitionRunUntilCadence(b *testing.B) {
	const domains = 4
	nw := New(1)
	var reps []NodeID
	for d := 0; d < domains; d++ {
		a, z := NodeID(2*d+1), NodeID(2*d+2)
		nw.AddNode(a, &fwdNode{})
		nw.AddNode(z, &fwdNode{})
		nw.Connect(a, z, LinkConfig{Propagation: time.Microsecond, QueueBytes: 64 << 10})
		reps = append(reps, a)
	}
	for d := 0; d < domains; d++ { // ring of long cut links between domains
		nw.Connect(reps[d], reps[(d+1)%domains],
			LinkConfig{Propagation: 5 * time.Microsecond, QueueBytes: 64 << 10})
	}
	groups := make([][]NodeID, domains)
	for d := 0; d < domains; d++ {
		groups[d] = []NodeID{NodeID(2*d + 1), NodeID(2*d + 2)}
	}
	if err := nw.Partition(groups); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 128)
	for d := 0; d < domains; d++ { // one frame ping-pongs forever per domain
		nw.Send(NodeID(2*d+1), 0, frame)
	}
	cadence := Duration(500 * time.Nanosecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.RunUntil(Time(i+1) * cadence); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMegaIncastDomains is BenchmarkMegaIncast cut into domains along
// the rack uplinks (the long-link case): 16 racks dealt into 4 domains,
// root and spines in the first. Wall-clock here against BenchmarkMegaIncast
// is the engine-level speedup figure of the per-channel horizon protocol.
func BenchmarkMegaIncastDomains(b *testing.B) {
	const (
		racks   = 16
		spines  = 2
		perRack = 64 // 1024 senders
		domains = 4
	)
	nw := New(1)
	root := NodeID(1)
	sink := &countSink{}
	nw.AddNode(root, sink)
	groups := make([][]NodeID, domains)
	groups[0] = append(groups[0], root)
	spineIDs := make([]NodeID, spines)
	for i := range spineIDs {
		spineIDs[i] = NodeID(2 + i)
		nw.AddNode(spineIDs[i], &fwdNode{})
		nw.Connect(spineIDs[i], root, LinkConfig{}) // uplink first: port 0
		nw.SetNodePool(spineIDs[i], PoolConfig{TotalBytes: 1 << 20, ReserveBytes: 2 << 10, Alpha: 2})
		groups[0] = append(groups[0], spineIDs[i])
	}
	uplink := LinkConfig{Propagation: 2 * time.Microsecond} // the domain cut
	hosts := make([]NodeID, 0, racks*perRack)
	for r := 0; r < racks; r++ {
		dom := 1 + r%(domains-1)
		leaf := NodeID(10 + r)
		nw.AddNode(leaf, &fwdNode{})
		nw.Connect(leaf, spineIDs[r%spines], uplink) // uplink first: port 0
		nw.SetNodePool(leaf, PoolConfig{TotalBytes: 512 << 10, ReserveBytes: 2 << 10, Alpha: 2})
		groups[dom] = append(groups[dom], leaf)
		for h := 0; h < perRack; h++ {
			id := NodeID(100 + r*perRack + h)
			nw.AddNode(id, &countSink{}) // hosts only transmit here
			nw.Connect(id, leaf, LinkConfig{})
			hosts = append(hosts, id)
			groups[dom] = append(groups[dom], id)
		}
	}
	if err := nw.Partition(groups); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 256)
	// Warm the arenas and pool state through one full round.
	for _, h := range hosts {
		nw.Send(h, 0, frame)
	}
	if err := nw.Run(0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(hosts[i%len(hosts)], 0, frame)
		if i%len(hosts) == len(hosts)-1 {
			if err := nw.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := nw.Run(0); err != nil {
		b.Fatal(err)
	}
	if sink.n == 0 {
		b.Fatal("no frame reached the root")
	}
	if nw.Domains() != domains {
		b.Fatalf("domains = %d", nw.Domains())
	}
}
