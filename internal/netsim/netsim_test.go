package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	// Same timestamp: insertion order must win.
	e.Schedule(20, func() { order = append(order, 4) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order %v want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic scheduling in the past")
		}
	}()
	e.Schedule(5, func() {})
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(1, func() {
		e.After(1, func() {
			hits++
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if hits != 1 || e.Now() != 2 {
		t.Fatalf("hits=%d now=%v", hits, e.Now())
	}
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.Schedule(0, loop)
	if err := e.Run(100); err == nil {
		t.Fatal("want budget error")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.RunUntil(15)
	if ran != 1 || e.Now() != 15 || e.Pending() != 1 {
		t.Fatalf("ran=%d now=%v pending=%d", ran, e.Now(), e.Pending())
	}
	e.RunUntil(25)
	if ran != 2 || e.Now() != 25 {
		t.Fatalf("ran=%d now=%v", ran, e.Now())
	}
}

// sink records every frame it receives with its arrival time.
type sink struct {
	nw     *Network
	id     NodeID
	frames [][]byte
	times  []Time
}

func (s *sink) Attach(nw *Network, id NodeID) { s.nw, s.id = nw, id }
func (s *sink) HandleFrame(inPort int, frame []byte) {
	s.frames = append(s.frames, frame)
	s.times = append(s.times, s.nw.NodeNow(s.id))
}

func TestDeliveryAndTiming(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	ap, bp := nw.Connect(1, 2, LinkConfig{
		BandwidthBps: 1_000_000_000, // 1 Gb/s => 8 ns per byte
		Propagation:  time.Microsecond,
	})
	if ap != 0 || bp != 0 {
		t.Fatalf("ports %d %d", ap, bp)
	}
	frame := make([]byte, 125) // 1000 bits => 1000 ns at 1 Gb/s
	nw.Send(1, 0, frame)
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 1 {
		t.Fatalf("b got %d frames", len(b.frames))
	}
	// tx 1000 ns + prop 1000 ns = 2 µs.
	if b.times[0] != 2000 {
		t.Fatalf("arrival at %v want 2µs", b.times[0])
	}
	st := nw.PortStats(1, 0)
	if st.TxFrames != 1 || st.TxBytes != 125 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSerializationDelaysBackToBackFrames(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000_000, Propagation: time.Microsecond})
	// Two frames sent at t=0 must serialize: second arrives one tx-time later.
	nw.Send(1, 0, make([]byte, 125))
	nw.Send(1, 0, make([]byte, 125))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.times) != 2 {
		t.Fatalf("frames %d", len(b.times))
	}
	if b.times[1]-b.times[0] != 1000 {
		t.Fatalf("spacing %v want 1000ns", b.times[1]-b.times[0])
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{
		BandwidthBps: 1_000_000, // slow: 8 µs per byte
		QueueBytes:   300,
	})
	for i := 0; i < 5; i++ {
		nw.Send(1, 0, make([]byte, 100)) // 500 bytes into a 300-byte queue
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	st := nw.PortStats(1, 0)
	if st.DropsFull != 2 || st.TxFrames != 3 {
		t.Fatalf("stats %+v", st)
	}
	if len(b.frames) != 3 {
		t.Fatalf("delivered %d", len(b.frames))
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	// Queue occupancy must fall as frames serialize, even though drains are
	// applied lazily (no per-frame engine event): a queue that was full at
	// t=0 accepts new frames once earlier ones have left.
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{
		BandwidthBps: 1_000_000, // 8 µs per byte => 800 µs per 100 B frame
		QueueBytes:   300,
	})
	for i := 0; i < 4; i++ {
		nw.Send(1, 0, make([]byte, 100)) // fourth overflows
	}
	if st := nw.PortStats(1, 0); st.DropsFull != 1 {
		t.Fatalf("expected 1 drop at t=0, got %+v", st)
	}
	// After the first frame serializes, one slot is free again.
	if err := nw.RunUntil(Duration(800 * time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 0, make([]byte, 100))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	st := nw.PortStats(1, 0)
	if st.DropsFull != 1 || st.TxFrames != 4 {
		t.Fatalf("stats %+v; want the post-drain frame accepted", st)
	}
	if len(b.frames) != 4 {
		t.Fatalf("delivered %d", len(b.frames))
	}
}

func TestSendBurstMatchesRepeatedSend(t *testing.T) {
	run := func(burst bool) ([]Time, LinkStats) {
		nw := New(1)
		a, b := &sink{}, &sink{}
		nw.AddNode(1, a)
		nw.AddNode(2, b)
		nw.Connect(1, 2, LinkConfig{
			BandwidthBps: 1_000_000_000,
			Propagation:  time.Microsecond,
			QueueBytes:   300, // two 125 B frames fit, the third drops
		})
		frames := [][]byte{make([]byte, 125), make([]byte, 125), make([]byte, 125)}
		if burst {
			nw.SendBurst(1, 0, frames)
		} else {
			for _, f := range frames {
				nw.Send(1, 0, f)
			}
		}
		if err := nw.Run(0); err != nil {
			t.Fatal(err)
		}
		return b.times, nw.PortStats(1, 0)
	}
	seqTimes, seqStats := run(false)
	burstTimes, burstStats := run(true)
	if seqStats != burstStats {
		t.Fatalf("stats diverge: %+v vs %+v", seqStats, burstStats)
	}
	if seqStats.DropsFull != 1 {
		t.Fatalf("overflow not exercised: %+v", seqStats)
	}
	if len(seqTimes) != len(burstTimes) {
		t.Fatalf("deliveries %d vs %d", len(seqTimes), len(burstTimes))
	}
	for i := range seqTimes {
		if seqTimes[i] != burstTimes[i] {
			t.Fatalf("arrival %d: %v vs %v", i, seqTimes[i], burstTimes[i])
		}
	}
}

func TestLossInjectionDeterministic(t *testing.T) {
	run := func(seed uint64) uint64 {
		nw := New(seed)
		a, b := &sink{}, &sink{}
		nw.AddNode(1, a)
		nw.AddNode(2, b)
		nw.Connect(1, 2, LinkConfig{LossProb: 0.5})
		for i := 0; i < 200; i++ {
			nw.Send(1, 0, make([]byte, 64))
		}
		if err := nw.Run(0); err != nil {
			t.Fatal(err)
		}
		return nw.PortStats(1, 0).DropsLoss
	}
	d1, d2 := run(42), run(42)
	if d1 != d2 {
		t.Fatalf("same seed, different drops: %d vs %d", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("implausible drop count %d at p=0.5", d1)
	}
	if d3 := run(43); d3 == d1 {
		// Not impossible, but with 200 Bernoulli(0.5) trials a collision in
		// counts is unlikely enough to flag a seeding bug.
		t.Logf("note: different seeds produced identical drop counts (%d)", d1)
	}
}

func TestBidirectionalIndependentQueues(t *testing.T) {
	nw := New(1)
	a, b := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, b)
	nw.Connect(1, 2, LinkConfig{})
	nw.Send(1, 0, make([]byte, 10))
	nw.Send(2, 0, make([]byte, 20))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(a.frames) != 1 || len(b.frames) != 1 {
		t.Fatalf("a=%d b=%d", len(a.frames), len(b.frames))
	}
	tot := nw.TotalStats()
	if tot.TxFrames != 2 || tot.TxBytes != 30 {
		t.Fatalf("total %+v", tot)
	}
}

func TestMultiplePortsPerNode(t *testing.T) {
	nw := New(1)
	sw, h1, h2 := &sink{}, &sink{}, &sink{}
	nw.AddNode(10, sw)
	nw.AddNode(1, h1)
	nw.AddNode(2, h2)
	swP1, _ := nw.Connect(10, 1, LinkConfig{})
	swP2, _ := nw.Connect(10, 2, LinkConfig{})
	if swP1 != 0 || swP2 != 1 {
		t.Fatalf("switch ports %d %d", swP1, swP2)
	}
	if nw.NumPorts(10) != 2 || nw.NumPorts(1) != 1 {
		t.Fatal("port counts")
	}
	nw.Send(10, 1, []byte{9}) // out port 1 -> h2
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(h2.frames) != 1 || len(h1.frames) != 0 {
		t.Fatalf("h1=%d h2=%d", len(h1.frames), len(h2.frames))
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate node")
		}
	}()
	nw.AddNode(1, &sink{})
}

func TestSendOnBadPortPanics(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on bad port")
		}
	}()
	nw.Send(1, 0, []byte{1})
}

func TestPortStatsUnknownPort(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	if st := nw.PortStats(1, 5); st != (LinkStats{}) {
		t.Fatalf("want zero stats, got %+v", st)
	}
}

// Property: frames between one (sender, port) pair arrive in FIFO order
// regardless of sizes — the invariant the DAIET END semantics depend on.
func TestFIFOOrderingProperty(t *testing.T) {
	f := func(seed int64, sizesRaw []uint8) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 100 {
			sizesRaw = sizesRaw[:100]
		}
		nw := New(uint64(seed))
		a, b := &sink{}, &sink{}
		nw.AddNode(1, a)
		nw.AddNode(2, b)
		nw.Connect(1, 2, LinkConfig{QueueBytes: 1 << 20})
		for i, s := range sizesRaw {
			frame := make([]byte, int(s)+1)
			frame[0] = byte(i)
			nw.Send(1, 0, frame)
		}
		if err := nw.Run(0); err != nil {
			return false
		}
		if len(b.frames) != len(sizesRaw) {
			return false
		}
		for i, fr := range b.frames {
			if fr[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEventLoop measures raw scheduler throughput.
func BenchmarkEventLoop(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, func() {})
		e.Step()
	}
}

// BenchmarkFrameDelivery measures one frame through link serialization,
// propagation and delivery.
func BenchmarkFrameDelivery(b *testing.B) {
	nw := New(1)
	a, c := &sink{}, &sink{}
	nw.AddNode(1, a)
	nw.AddNode(2, c)
	nw.Connect(1, 2, LinkConfig{})
	frame := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(1, 0, frame)
		if err := nw.Run(0); err != nil {
			b.Fatal(err)
		}
		c.frames = c.frames[:0]
	}
}
