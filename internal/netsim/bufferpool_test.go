package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// poolWorld builds one source node (1) with two outgoing links (to sinks 2
// and 3) over a deliberately slow fabric, so queued bytes linger and pool
// occupancy is observable.
func poolWorld(t *testing.T, cfg PoolConfig) (*Network, *sink, *sink) {
	t.Helper()
	nw := New(1)
	b, c := &sink{}, &sink{}
	nw.AddNode(1, &sink{})
	nw.AddNode(2, b)
	nw.AddNode(3, c)
	slow := LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 1 << 30} // 8 µs/byte
	nw.Connect(1, 2, slow)
	nw.Connect(1, 3, slow)
	if err := nw.SetNodePool(1, cfg); err != nil {
		t.Fatal(err)
	}
	return nw, b, c
}

// TestPoolSharedMemoryFills: with alpha high enough, one port may claim the
// whole shared memory; once full, every port is rejected and drops are
// attributed to the port that overflowed.
func TestPoolSharedMemoryFills(t *testing.T) {
	nw, b, c := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 100, Alpha: 4})
	for i := 0; i < 12; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	// The DT cap for one port: at 900 B queued only 100 B are free, so the
	// threshold is 100 + 4×100 = 500 < 1000 — the 10th frame is rejected
	// even though it would physically fit. alpha bounds how much of the
	// memory one port may monopolize.
	if st := nw.PortStats(1, 0); st.TxFrames != 9 || st.DropsPool != 3 || st.DropsFull != 0 {
		t.Fatalf("port 0 stats %+v", st)
	}
	// The other port's reserve still admits out of the remaining 100 B;
	// after that the memory is physically full and everyone is rejected.
	nw.Send(1, 1, make([]byte, 100))
	nw.Send(1, 1, make([]byte, 100))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 || st.DropsPool != 1 {
		t.Fatalf("port 1 stats %+v", st)
	}
	ps, ok := nw.PoolStats(1)
	if !ok {
		t.Fatal("node 1 has no pool")
	}
	if ps.Used != 1000 || ps.HighWater != 1000 || ps.Drops != 4 {
		t.Fatalf("pool stats %+v", ps)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 9 || len(c.frames) != 1 {
		t.Fatalf("delivered %d/%d", len(b.frames), len(c.frames))
	}
	// Everything serialized: the memory drains back to empty.
	if ps, _ := nw.PoolStats(1); ps.Used != 0 || ps.HighWater != 1000 {
		t.Fatalf("post-run pool stats %+v", ps)
	}
}

// TestPoolStaticPartition: alpha = 0 with reserve = total/ports degenerates
// into equal static partitioning — a port stops at its reserve even though
// the rest of the memory is idle.
func TestPoolStaticPartition(t *testing.T) {
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 500, Alpha: 0})
	for i := 0; i < 7; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	if st := nw.PortStats(1, 0); st.TxFrames != 5 || st.DropsPool != 2 {
		t.Fatalf("static partition: port 0 stats %+v", st)
	}
	// The other port's reserve is untouched.
	nw.Send(1, 1, make([]byte, 100))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 || st.DropsPool != 0 {
		t.Fatalf("static partition: port 1 stats %+v", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDynamicThreshold pins the DT formula: beyond its reserve a port
// may hold at most alpha × free additional bytes, so a congested pool
// admits less.
func TestPoolDynamicThreshold(t *testing.T) {
	// Reserve 0, alpha 1: first 100 B frame sees free=1000, limit 1000 →
	// admitted. Occupancy 100 → free 900, limit 900; queued 100+100=200 ≤
	// 900 → admitted... the port asymptotically approaches alpha/(1+alpha)
	// of the memory: 500 for alpha 1.
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 0, Alpha: 1})
	sent := 0
	for i := 0; i < 20; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	sent = int(nw.PortStats(1, 0).TxFrames)
	if sent != 5 {
		t.Fatalf("alpha=1 admitted %d × 100 B, want 5 (the DT fixed point)", sent)
	}
	// The second port still gets its own DT share of what is left.
	nw.Send(1, 1, make([]byte, 100))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 {
		t.Fatalf("port 1 locked out below the threshold: %+v", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDrainReadmits: occupancy falls as frames serialize, so a port
// rejected at t=0 is admitted after the backlog drains — the lazy-drain
// equivalence the private-queue model already guarantees.
func TestPoolDrainReadmits(t *testing.T) {
	nw, b, _ := poolWorld(t, PoolConfig{TotalBytes: 300, ReserveBytes: 0, Alpha: 8})
	for i := 0; i < 4; i++ {
		nw.Send(1, 0, make([]byte, 100)) // fourth rejected: memory holds 3
	}
	if st := nw.PortStats(1, 0); st.TxFrames != 3 || st.DropsPool != 1 {
		t.Fatalf("t=0 stats %+v", st)
	}
	// After the first frame serializes (800 µs at 1 Mb/s), memory is free.
	if err := nw.RunUntil(Duration(800 * time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 0, make([]byte, 100))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	st := nw.PortStats(1, 0)
	if st.TxFrames != 4 || st.DropsPool != 1 {
		t.Fatalf("post-drain stats %+v; want the late frame admitted", st)
	}
	if len(b.frames) != 4 {
		t.Fatalf("delivered %d", len(b.frames))
	}
}

// TestPoolConfigValidation covers the configuration contract.
func TestPoolConfigValidation(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	nw.Connect(1, 2, LinkConfig{})
	if err := nw.SetNodePool(1, PoolConfig{}); err == nil {
		t.Fatal("zero TotalBytes accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, ReserveBytes: 200}); err == nil {
		t.Fatal("reserve beyond total accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, Alpha: -1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := nw.SetNodePool(9, PoolConfig{TotalBytes: 100}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, Alpha: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, Alpha: 1}); err == nil {
		t.Fatal("duplicate pool accepted")
	}
	if _, ok := nw.PoolStats(2); ok {
		t.Fatal("poolless node reported a pool")
	}
	// Pools must exist before Partition; afterwards installation is refused.
	if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetNodePool(2, PoolConfig{TotalBytes: 100}); err == nil {
		t.Fatal("SetNodePool after Partition accepted")
	}
}

// TestPoolBeforeConnect: links connected after the pool is attached join it.
func TestPoolBeforeConnect(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 150, Alpha: 4}); err != nil {
		t.Fatal(err)
	}
	nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 1 << 30})
	nw.Send(1, 0, make([]byte, 100))
	nw.Send(1, 0, make([]byte, 100)) // exceeds the 150 B memory
	if st := nw.PortStats(1, 0); st.TxFrames != 1 || st.DropsPool != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPartitionConformance: pooled admission is part of the replay
// contract — random chatter workloads over fabrics where some nodes carry
// shared pools must fingerprint identically at any partitioning, including
// pool occupancy statistics.
func TestPoolPartitionConformance(t *testing.T) {
	run := func(seed int64, domains int) string {
		nw, nodes := chatterWorld(t, seed, 12)
		// Give a deterministic subset of nodes tight shared pools so DT
		// rejections actually happen under the chatter load.
		for i := 0; i < 12; i += 3 {
			id := NodeID(i + 1)
			if err := nw.SetNodePool(id, PoolConfig{
				TotalBytes:   512,
				ReserveBytes: 64,
				Alpha:        0.5,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if domains > 1 {
			if err := nw.Partition(randomGroups(12, domains, seed)); err != nil {
				t.Fatal(err)
			}
		}
		inject(nw, nodes, seed)
		if err := nw.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		out := fingerprint(nw, nodes)
		var poolDrops uint64
		for i := 0; i < 12; i += 3 {
			ps, ok := nw.PoolStats(NodeID(i + 1))
			if !ok {
				t.Fatalf("node %d lost its pool", i+1)
			}
			poolDrops += ps.Drops
			out += fmt.Sprintf("pool %d: %+v\n", i+1, ps)
		}
		return fmt.Sprintf("pooldrops=%d\n%s", poolDrops, out)
	}
	for _, seed := range []int64{11, 23} {
		seq := run(seed, 1)
		if strings.HasPrefix(seq, "pooldrops=0\n") {
			t.Fatalf("workload produced no pool drops; fingerprint:\n%s", seq)
		}
		for _, domains := range []int{2, 4} {
			if got := run(seed, domains); got != seq {
				t.Fatalf("pooled replay diverged at %d domains:\nsequential:\n%s\npartitioned:\n%s",
					domains, seq, got)
			}
		}
	}
}

// BenchmarkBurstAdmission guards the O(1)-amortized admission path: a
// standing backlog of thousands of inflight frames (the big-incast regime)
// must not make each further admission scan or shift the records.
func BenchmarkBurstAdmission(b *testing.B) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	nw.Connect(1, 2, LinkConfig{
		BandwidthBps: 1_000_000, // slow: backlog only grows during the burst
		QueueBytes:   1 << 62,   // never tail-drop: admission cost only
		Propagation:  time.Hour, // deliveries stay far in the future
	})
	frame := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(1, 0, frame)
	}
}
