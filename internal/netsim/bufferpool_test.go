package netsim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// poolWorld builds one source node (1) with two outgoing links (to sinks 2
// and 3) over a deliberately slow fabric, so queued bytes linger and pool
// occupancy is observable.
func poolWorld(t *testing.T, cfg PoolConfig) (*Network, *sink, *sink) {
	t.Helper()
	nw := New(1)
	b, c := &sink{}, &sink{}
	nw.AddNode(1, &sink{})
	nw.AddNode(2, b)
	nw.AddNode(3, c)
	slow := LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 1 << 30} // 8 µs/byte
	nw.Connect(1, 2, slow)
	nw.Connect(1, 3, slow)
	if err := nw.SetNodePool(1, cfg); err != nil {
		t.Fatal(err)
	}
	return nw, b, c
}

// TestPoolSharedMemoryFills: with alpha high enough one port may borrow
// most of the shared memory — but never another port's carved floor. Both
// reserves are committed up front, so the borrowable memory is total minus
// both floors, and the idle port keeps its floor plus DT slack for itself.
func TestPoolSharedMemoryFills(t *testing.T) {
	nw, b, c := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 100, Alpha: 4})
	for i := 0; i < 12; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	// Both 100 B floors are committed at carve time, so port 0 starts with
	// free = 800 borrowable bytes. Each frame beyond its own floor commits
	// another 100 B; at 800 B queued free is down to 100 and the threshold
	// is 100 + 4×100 = 500 < 900 — the 9th frame is rejected. The old
	// threshold-exemption model admitted one more: that extra frame was
	// physically eating the idle port's floor.
	if st := nw.PortStats(1, 0); st.TxFrames != 8 || st.DropsPool != 4 || st.DropsFull != 0 {
		t.Fatalf("port 0 stats %+v", st)
	}
	// The idle port's floor held: its first frame lands inside the carved
	// reserve, and a second still fits the remaining borrowable 100 B.
	nw.Send(1, 1, make([]byte, 100))
	nw.Send(1, 1, make([]byte, 100))
	if st := nw.PortStats(1, 1); st.TxFrames != 2 || st.DropsPool != 0 {
		t.Fatalf("port 1 stats %+v", st)
	}
	ps, ok := nw.PoolStats(1)
	if !ok {
		t.Fatal("node 1 has no pool")
	}
	if ps.Used != 1000 || ps.Committed != 1000 || ps.HighWater != 1000 || ps.Drops != 4 {
		t.Fatalf("pool stats %+v", ps)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 8 || len(c.frames) != 2 {
		t.Fatalf("delivered %d/%d", len(b.frames), len(c.frames))
	}
	// Everything serialized: the memory drains back to the bare floors.
	if ps, _ := nw.PoolStats(1); ps.Used != 0 || ps.Committed != 200 || ps.HighWater != 1000 {
		t.Fatalf("post-run pool stats %+v", ps)
	}
}

// TestPoolReserveFloorHolds is the regression test for the reserve-floor
// bug: under the old model a reserve only exempted a port from the DT
// threshold, while the physical size > free check still applied — so an
// aggressor at high alpha could occupy the entire memory and a victim
// port's first frame, squarely inside its configured floor, was rejected.
// With hard-carved reserves the floor is physical: the victim inside its
// reserve is NEVER pool-rejected, no matter how aggressive the aggressor.
func TestPoolReserveFloorHolds(t *testing.T) {
	const (
		total   = 64 << 10
		reserve = 2 << 10
	)
	nw, b, c := poolWorld(t, PoolConfig{TotalBytes: total, ReserveBytes: reserve, Alpha: 64})
	// Aggressor: port 0 floods 1 KiB frames at an alpha so large the DT
	// threshold never binds. It may fill everything EXCEPT the victim's
	// carved 2 KiB floor: 2 KiB own floor + 60 KiB borrowable = 62 frames.
	for i := 0; i < 80; i++ {
		nw.Send(1, 0, make([]byte, 1024))
	}
	if st := nw.PortStats(1, 0); st.TxFrames != 62 || st.DropsPool != 18 {
		t.Fatalf("aggressor stats %+v", st)
	}
	// Victim: a single 1.5 KiB frame inside its untouched floor. The old
	// model rejected exactly this send (occupancy 64 KiB, free 0, size >
	// free); the carved floor admits it unconditionally.
	nw.Send(1, 1, make([]byte, 1536))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 || st.DropsPool != 0 {
		t.Fatalf("victim inside its reserve was pool-rejected: %+v", st)
	}
	// A second victim frame exceeds the floor with zero borrowable memory
	// left — rejected by the victim's own exhausted allowance, which is the
	// only way an under-floor port can lose.
	nw.Send(1, 1, make([]byte, 1536))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 || st.DropsPool != 1 {
		t.Fatalf("victim beyond its reserve: %+v", st)
	}
	ps, _ := nw.PoolStats(1)
	if ps.Committed != total || ps.Used != 62*1024+1536 {
		t.Fatalf("pool stats %+v", ps)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 62 || len(c.frames) != 1 {
		t.Fatalf("delivered %d/%d", len(b.frames), len(c.frames))
	}
}

// TestDTLimitGolden pins dtLimit's rounding: truncation toward zero, not
// rounding to nearest. Admission decisions replay byte-identically across
// -sim-workers values and re-cut schedules only if every domain computes
// the identical limit, so the rounding mode is part of the determinism
// contract.
func TestDTLimitGolden(t *testing.T) {
	cases := []struct {
		alpha float64
		free  int
		want  int
	}{
		{0, 1 << 20, 0},
		{1, 1000, 1000},
		{0.5, 999, 499},  // 499.5 truncates down
		{0.5, 1001, 500}, // 500.5 truncates down too — not banker's rounding
		{1.5, 3, 4},      // 4.5 → 4
		{0.25, 7, 1},     // 1.75 → 1
		{0.7, 10, 7},
		{0.3, 10, 3},
		{0.1, 30, 3},
		{8, 300, 2400},
		{64, 1024, 65536},
		{2, 0, 0},
	}
	for _, c := range cases {
		if got := dtLimit(c.alpha, c.free); got != c.want {
			t.Errorf("dtLimit(%v, %d) = %d, want %d", c.alpha, c.free, got, c.want)
		}
	}
}

// TestPoolStaticPartition: alpha = 0 with reserve = total/ports degenerates
// into equal static partitioning — a port stops at its reserve even though
// the rest of the memory is idle.
func TestPoolStaticPartition(t *testing.T) {
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 500, Alpha: 0})
	for i := 0; i < 7; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	if st := nw.PortStats(1, 0); st.TxFrames != 5 || st.DropsPool != 2 {
		t.Fatalf("static partition: port 0 stats %+v", st)
	}
	// The other port's reserve is untouched.
	nw.Send(1, 1, make([]byte, 100))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 || st.DropsPool != 0 {
		t.Fatalf("static partition: port 1 stats %+v", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDynamicThreshold pins the DT formula: beyond its reserve a port
// may hold at most alpha × free additional bytes, so a congested pool
// admits less.
func TestPoolDynamicThreshold(t *testing.T) {
	// Reserve 0, alpha 1: first 100 B frame sees free=1000, limit 1000 →
	// admitted. Occupancy 100 → free 900, limit 900; queued 100+100=200 ≤
	// 900 → admitted... the port asymptotically approaches alpha/(1+alpha)
	// of the memory: 500 for alpha 1.
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 0, Alpha: 1})
	sent := 0
	for i := 0; i < 20; i++ {
		nw.Send(1, 0, make([]byte, 100))
	}
	sent = int(nw.PortStats(1, 0).TxFrames)
	if sent != 5 {
		t.Fatalf("alpha=1 admitted %d × 100 B, want 5 (the DT fixed point)", sent)
	}
	// The second port still gets its own DT share of what is left.
	nw.Send(1, 1, make([]byte, 100))
	if st := nw.PortStats(1, 1); st.TxFrames != 1 {
		t.Fatalf("port 1 locked out below the threshold: %+v", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDrainReadmits: occupancy falls as frames serialize, so a port
// rejected at t=0 is admitted after the backlog drains — the lazy-drain
// equivalence the private-queue model already guarantees.
func TestPoolDrainReadmits(t *testing.T) {
	nw, b, _ := poolWorld(t, PoolConfig{TotalBytes: 300, ReserveBytes: 0, Alpha: 8})
	for i := 0; i < 4; i++ {
		nw.Send(1, 0, make([]byte, 100)) // fourth rejected: memory holds 3
	}
	if st := nw.PortStats(1, 0); st.TxFrames != 3 || st.DropsPool != 1 {
		t.Fatalf("t=0 stats %+v", st)
	}
	// After the first frame serializes (800 µs at 1 Mb/s), memory is free.
	if err := nw.RunUntil(Duration(800 * time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 0, make([]byte, 100))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	st := nw.PortStats(1, 0)
	if st.TxFrames != 4 || st.DropsPool != 1 {
		t.Fatalf("post-drain stats %+v; want the late frame admitted", st)
	}
	if len(b.frames) != 4 {
		t.Fatalf("delivered %d", len(b.frames))
	}
}

// TestPoolConfigValidation covers the configuration contract.
func TestPoolConfigValidation(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	nw.Connect(1, 2, LinkConfig{})
	if err := nw.SetNodePool(1, PoolConfig{}); err == nil {
		t.Fatal("zero TotalBytes accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, ReserveBytes: 200}); err == nil {
		t.Fatal("reserve beyond total accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, Alpha: -1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := nw.SetNodePool(9, PoolConfig{TotalBytes: 100}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, ReserveBytes: 10,
		Classes: []ClassConfig{{ReserveBytes: 10}}}); err == nil {
		t.Fatal("Classes plus legacy ReserveBytes accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100,
		Classes: []ClassConfig{{Alpha: -0.5}}}); err == nil {
		t.Fatal("negative per-class alpha accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100,
		Classes: []ClassConfig{{ReserveBytes: 60}, {ReserveBytes: 60}}}); err == nil {
		t.Fatal("per-class reserves summing beyond total accepted")
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, Alpha: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, Alpha: 1}); err == nil {
		t.Fatal("duplicate pool accepted")
	}
	if _, ok := nw.PoolStats(2); ok {
		t.Fatal("poolless node reported a pool")
	}
	// Pools must exist before Partition; afterwards installation is refused.
	if err := nw.Partition([][]NodeID{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetNodePool(2, PoolConfig{TotalBytes: 100}); err == nil {
		t.Fatal("SetNodePool after Partition accepted")
	}
}

// TestPoolBeforeConnect: links connected after the pool is attached join it.
func TestPoolBeforeConnect(t *testing.T) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 150, Alpha: 4}); err != nil {
		t.Fatal(err)
	}
	nw.Connect(1, 2, LinkConfig{BandwidthBps: 1_000_000, QueueBytes: 1 << 30})
	nw.Send(1, 0, make([]byte, 100))
	nw.Send(1, 0, make([]byte, 100)) // exceeds the 150 B memory
	if st := nw.PortStats(1, 0); st.TxFrames != 1 || st.DropsPool != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolOverCommitRejected: hard floors are physical, so the sum of every
// port's reserves may not exceed the memory. The check runs against the
// ports present at SetNodePool time; exactly-total is legal (pure static
// partitioning).
func TestPoolOverCommitRejected(t *testing.T) {
	mk := func() *Network {
		nw := New(1)
		nw.AddNode(1, &sink{})
		nw.AddNode(2, &sink{})
		nw.AddNode(3, &sink{})
		nw.Connect(1, 2, LinkConfig{})
		nw.Connect(1, 3, LinkConfig{})
		return nw
	}
	// 2 ports × 60 B floors = 120 B > 100 B memory: rejected even though a
	// single port's reserve is within range.
	if err := mk().SetNodePool(1, PoolConfig{TotalBytes: 100, ReserveBytes: 60}); err == nil {
		t.Fatal("over-committed per-port reserves accepted")
	}
	// 2 ports × (30+20) B class floors = 100 B: equality is the static
	// split and must be accepted.
	if err := mk().SetNodePool(1, PoolConfig{TotalBytes: 100,
		Classes: []ClassConfig{{ReserveBytes: 30}, {ReserveBytes: 20}}}); err != nil {
		t.Fatal(err)
	}
	// A port joining at Connect time re-checks the carve; over-committing
	// then is a configuration panic, like Connect's other misuses.
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	nw.AddNode(3, &sink{})
	if err := nw.SetNodePool(1, PoolConfig{TotalBytes: 100, ReserveBytes: 60}); err != nil {
		t.Fatal(err)
	}
	nw.Connect(1, 2, LinkConfig{}) // first port: 60 ≤ 100
	defer func() {
		if recover() == nil {
			t.Fatal("second port over-committing the carve did not panic")
		}
	}()
	nw.Connect(1, 3, LinkConfig{})
}

// TestPoolMultiClassIsolation: classes are the tenant boundary. An
// aggressor flooding class 1 on one port cannot push class 0 — even on the
// SAME port — out of its own carved floor, and drops are attributed to the
// class that overflowed.
func TestPoolMultiClassIsolation(t *testing.T) {
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000,
		Classes: []ClassConfig{{ReserveBytes: 100, Alpha: 0.5}, {ReserveBytes: 50, Alpha: 8}}})
	// Aggressor: class 1 on port 0, alpha 8. Floors commit 2×(100+50) = 300
	// up front, so it borrows from free = 700 beyond its own 50 B floor.
	for i := 0; i < 12; i++ {
		nw.SendClass(1, 0, 1, make([]byte, 100))
	}
	// 7 frames: 50 floor + 650 borrowed leaves free = 50; the 8th needs 100
	// borrowable. DT never binds at alpha 8.
	if st := nw.PortStats(1, 0); st.TxFrames != 7 || st.DropsPool != 5 {
		t.Fatalf("aggressor class-1 stats %+v", st)
	}
	// Victim: class 0 traffic on the same port and on the other port both
	// land inside their own 100 B class floors — admitted unconditionally.
	nw.SendClass(1, 0, 0, make([]byte, 80))
	nw.SendClass(1, 1, 0, make([]byte, 80))
	if st := nw.PortStats(1, 0); st.TxFrames != 8 {
		t.Fatalf("class 0 on the aggressor's port was rejected: %+v", st)
	}
	if st := nw.PortStats(1, 1); st.TxFrames != 1 || st.DropsPool != 0 {
		t.Fatalf("class 0 on the idle port was rejected: %+v", st)
	}
	ps, _ := nw.PoolStats(1)
	if len(ps.Classes) != 2 {
		t.Fatalf("pool stats %+v", ps)
	}
	if c0 := ps.Classes[0]; c0.Used != 160 || c0.Drops != 0 {
		t.Fatalf("class 0 stats %+v", c0)
	}
	if c1 := ps.Classes[1]; c1.Used != 700 || c1.Drops != 5 {
		t.Fatalf("class 1 stats %+v", c1)
	}
	if ps.Used != 860 || ps.Drops != 5 {
		t.Fatalf("pool stats %+v", ps)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPoolClassFolding: frames sent under a class the pool does not declare
// fold into class 0, so one tree can span pools with different class
// counts; negative classes fold the same way.
func TestPoolClassFolding(t *testing.T) {
	nw, b, _ := poolWorld(t, PoolConfig{TotalBytes: 1000, ReserveBytes: 100, Alpha: 4})
	nw.SendClass(1, 0, 7, make([]byte, 100))
	nw.SendClass(1, 0, -1, make([]byte, 100))
	ps, _ := nw.PoolStats(1)
	if len(ps.Classes) != 1 || ps.Classes[0].Used != 200 {
		t.Fatalf("out-of-range classes did not fold to class 0: %+v", ps)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(b.frames) != 2 {
		t.Fatalf("delivered %d", len(b.frames))
	}
}

// TestPoolResetClassSymmetry: a crash (ResetPool) empties every class's
// occupancy and returns the commitment to the bare floors, symmetrically —
// no class inherits the dead boot's accounting. Cumulative statistics
// (high-water, drops) describe the run and survive.
func TestPoolResetClassSymmetry(t *testing.T) {
	nw, _, _ := poolWorld(t, PoolConfig{TotalBytes: 1000,
		Classes: []ClassConfig{{ReserveBytes: 100, Alpha: 8}, {ReserveBytes: 100, Alpha: 8}}})
	for i := 0; i < 4; i++ {
		nw.SendClass(1, 0, 0, make([]byte, 100))
		nw.SendClass(1, 1, 1, make([]byte, 100))
	}
	pre, _ := nw.PoolStats(1)
	if pre.Used != 800 || pre.Classes[0].Used != 400 || pre.Classes[1].Used != 400 {
		t.Fatalf("pre-crash pool stats %+v", pre)
	}
	nw.ResetPool(1)
	ps, _ := nw.PoolStats(1)
	if ps.Used != 0 || ps.Classes[0].Used != 0 || ps.Classes[1].Used != 0 {
		t.Fatalf("post-crash occupancy not symmetric: %+v", ps)
	}
	// Commitment back to the bare floors: 2 ports × 2 classes × 100 B.
	if ps.Committed != 400 {
		t.Fatalf("post-crash commitment %d, want bare floors 400", ps.Committed)
	}
	if ps.HighWater != pre.HighWater || ps.Classes[0].HighWater != pre.Classes[0].HighWater {
		t.Fatalf("high-water marks did not survive the crash: %+v vs %+v", ps, pre)
	}
	// The rebooted memory admits a full fresh load on both classes.
	for i := 0; i < 4; i++ {
		nw.SendClass(1, 0, 0, make([]byte, 100))
		nw.SendClass(1, 1, 1, make([]byte, 100))
	}
	if ps, _ := nw.PoolStats(1); ps.Used != 800 || ps.Drops != 0 {
		t.Fatalf("post-reboot pool stats %+v", ps)
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
}

// classChatter is the chatter determinism amplifier with class-tagged
// sends: the traffic class is derived from frame bytes, so multi-class
// pool admission decisions are woven through the random cascade. Classes
// run 0..2 against 2-class pools, exercising fold-to-0 as well.
type classChatter struct {
	nw  *Network
	id  NodeID
	rng *rand.Rand
	log []string
}

func (c *classChatter) Attach(nw *Network, id NodeID) {
	c.nw, c.id = nw, id
	c.rng = rand.New(rand.NewSource(int64(id)*0x9e3779b9 + 7))
}

func (c *classChatter) HandleFrame(inPort int, frame []byte) {
	var sum uint32
	for _, b := range frame {
		sum = sum*131 + uint32(b)
	}
	c.log = append(c.log, fmt.Sprintf("%d:%d:%d:%x", c.nw.NodeNow(c.id), inPort, len(frame), sum))
	if len(frame) < 2 || frame[0] == 0 {
		return
	}
	nports := c.nw.NumPorts(c.id)
	if nports == 0 {
		return
	}
	n := 1 + c.rng.Intn(2)
	for i := 0; i < n; i++ {
		nf := append([]byte(nil), frame...)
		nf[0]--
		nf[1+c.rng.Intn(len(nf)-1)] ^= byte(1 + c.rng.Intn(255))
		port := c.rng.Intn(nports)
		class := int(nf[1]) % 3
		if c.rng.Intn(4) == 0 {
			d := Time(1 + c.rng.Intn(3000))
			c.nw.NodeAfter(c.id, d, func() { c.nw.SendClass(c.id, port, class, nf) })
		} else {
			c.nw.SendClass(c.id, port, class, nf)
		}
	}
}

// classWorld builds a random connected topology of classChatter nodes and
// attaches tight 2-class pools to every third node.
func classWorld(t *testing.T, seed int64, n int) (*Network, []*classChatter) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := New(uint64(seed))
	nodes := make([]*classChatter, n)
	for i := range nodes {
		nodes[i] = &classChatter{}
		nw.AddNode(NodeID(i+1), nodes[i])
	}
	bandwidths := []int64{100_000_000, 1_000_000_000}
	props := []time.Duration{200 * time.Nanosecond, time.Microsecond}
	link := func(a, b NodeID) {
		nw.Connect(a, b, LinkConfig{
			BandwidthBps: bandwidths[rng.Intn(len(bandwidths))],
			Propagation:  props[rng.Intn(len(props))],
			QueueBytes:   64 << 10,
		})
	}
	for i := 1; i < n; i++ {
		link(NodeID(i+1), NodeID(rng.Intn(i)+1))
	}
	for e := 0; e < n/2; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			link(NodeID(a+1), NodeID(b+1))
		}
	}
	for i := 0; i < n; i += 3 {
		if err := nw.SetNodePool(NodeID(i+1), PoolConfig{
			TotalBytes: 512,
			Classes:    []ClassConfig{{ReserveBytes: 16, Alpha: 0.5}, {ReserveBytes: 8, Alpha: 0.25}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return nw, nodes
}

// classFingerprint renders everything the multi-class determinism contract
// covers: traces, port counters, and full per-class pool statistics.
func classFingerprint(t *testing.T, nw *Network, nodes []*classChatter, n int) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "now=%v processed=%d total=%+v\n", nw.Now(), nw.Processed(), nw.TotalStats())
	for _, c := range nodes {
		fmt.Fprintf(&b, "node %d:", c.id)
		for p := 0; p < nw.NumPorts(c.id); p++ {
			fmt.Fprintf(&b, " p%d=%+v", p, nw.PortStats(c.id, p))
		}
		fmt.Fprintf(&b, " log=%s\n", strings.Join(c.log, ","))
	}
	for i := 0; i < n; i += 3 {
		ps, ok := nw.PoolStats(NodeID(i + 1))
		if !ok {
			t.Fatalf("node %d lost its pool", i+1)
		}
		fmt.Fprintf(&b, "pool %d: %+v\n", i+1, ps)
	}
	return b.String()
}

// TestPoolMultiClassPartitionConformance: per-class admission, occupancy
// and drop attribution are part of the replay contract — byte-identical at
// 1/2/4 domains and under a random mid-run re-cut schedule.
func TestPoolMultiClassPartitionConformance(t *testing.T) {
	const n = 12
	injectClass := func(nw *Network, nodes []*classChatter, seed int64) {
		rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
		for _, c := range nodes {
			for k := 0; k < 1+rng.Intn(3); k++ {
				frame := make([]byte, 2+rng.Intn(180))
				rng.Read(frame)
				frame[0] = byte(3 + rng.Intn(4))
				nw.SendClass(c.id, rng.Intn(nw.NumPorts(c.id)), int(frame[1])%3, frame)
			}
		}
	}
	run := func(seed int64, domains, recuts int) string {
		nw, nodes := classWorld(t, seed, n)
		if domains > 1 {
			if err := nw.Partition(randomGroups(n, domains, seed)); err != nil {
				t.Fatal(err)
			}
		}
		injectClass(nw, nodes, seed)
		for step := 1; step <= recuts; step++ {
			if err := nw.RunUntil(Time(step) * Duration(5*time.Microsecond)); err != nil {
				t.Fatal(err)
			}
			if err := nw.Repartition(randomGroups(n, domains, seed+int64(step))); err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return classFingerprint(t, nw, nodes, n)
	}
	for _, seed := range []int64{7, 31} {
		seq := run(seed, 1, 0)
		if !strings.Contains(seq, "Drops:") {
			t.Fatalf("fingerprint lost pool stats:\n%s", seq)
		}
		for _, domains := range []int{2, 4} {
			if got := run(seed, domains, 0); got != seq {
				t.Fatalf("multi-class replay diverged at %d domains:\nsequential:\n%s\npartitioned:\n%s",
					domains, seq, got)
			}
		}
		// Re-cut schedule: same workload, domain cut shuffled mid-run.
		if got := run(seed, 3, 4); got != seq {
			t.Fatalf("multi-class replay diverged under re-cut:\nsequential:\n%s\nre-cut:\n%s",
				seq, got)
		}
	}
}

// TestPoolPartitionConformance: pooled admission is part of the replay
// contract — random chatter workloads over fabrics where some nodes carry
// shared pools must fingerprint identically at any partitioning, including
// pool occupancy statistics.
func TestPoolPartitionConformance(t *testing.T) {
	run := func(seed int64, domains int) string {
		nw, nodes := chatterWorld(t, seed, 12)
		// Give a deterministic subset of nodes tight shared pools so DT
		// rejections actually happen under the chatter load.
		for i := 0; i < 12; i += 3 {
			id := NodeID(i + 1)
			if err := nw.SetNodePool(id, PoolConfig{
				TotalBytes:   512,
				ReserveBytes: 64,
				Alpha:        0.5,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if domains > 1 {
			if err := nw.Partition(randomGroups(12, domains, seed)); err != nil {
				t.Fatal(err)
			}
		}
		inject(nw, nodes, seed)
		if err := nw.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		out := fingerprint(nw, nodes)
		var poolDrops uint64
		for i := 0; i < 12; i += 3 {
			ps, ok := nw.PoolStats(NodeID(i + 1))
			if !ok {
				t.Fatalf("node %d lost its pool", i+1)
			}
			poolDrops += ps.Drops
			out += fmt.Sprintf("pool %d: %+v\n", i+1, ps)
		}
		return fmt.Sprintf("pooldrops=%d\n%s", poolDrops, out)
	}
	for _, seed := range []int64{11, 23} {
		seq := run(seed, 1)
		if strings.HasPrefix(seq, "pooldrops=0\n") {
			t.Fatalf("workload produced no pool drops; fingerprint:\n%s", seq)
		}
		for _, domains := range []int{2, 4} {
			if got := run(seed, domains); got != seq {
				t.Fatalf("pooled replay diverged at %d domains:\nsequential:\n%s\npartitioned:\n%s",
					domains, seq, got)
			}
		}
	}
}

// BenchmarkBurstAdmission guards the O(1)-amortized admission path: a
// standing backlog of thousands of inflight frames (the big-incast regime)
// must not make each further admission scan or shift the records.
func BenchmarkBurstAdmission(b *testing.B) {
	nw := New(1)
	nw.AddNode(1, &sink{})
	nw.AddNode(2, &sink{})
	nw.Connect(1, 2, LinkConfig{
		BandwidthBps: 1_000_000, // slow: backlog only grows during the burst
		QueueBytes:   1 << 62,   // never tail-drop: admission cost only
		Propagation:  time.Hour, // deliveries stay far in the future
	})
	frame := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(1, 0, frame)
	}
}
