package dataplane

import (
	"fmt"
	"sync/atomic"
)

// MatchKind selects a table's matching semantics.
type MatchKind int

// Supported match kinds. Exact covers DAIET's tree-ID tables; LPM covers
// IP forwarding; Ternary covers priority ACL-style rules.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// ActionFunc is the body of a table action. It receives the metered
// execution context and the entry's action data. ActionFuncs must confine
// their effects to Ctx primitives; that is what keeps the "limited set of
// actions" constraint honest.
type ActionFunc func(ctx *Ctx, params []uint64)

// Entry is one table entry: an action plus its parameters.
type Entry struct {
	Action ActionFunc
	Params []uint64
}

// ternaryEntry is a masked match with priority (higher wins).
type ternaryEntry struct {
	key, mask []byte
	priority  int
	entry     Entry
}

// Table is a match-action table. Tables are installed into pipeline stages
// and populated by the controller at run time (the SDN flow-rule path,
// paper §5: "the controller can configure a P4 data plane by pushing flow
// rules to a set of tables").
//
// A Table may be applied at most once per packet per pipeline pass,
// mirroring the P4 constraint the paper calls out (§5 constraint (i)).
type Table struct {
	Name    string
	Kind    MatchKind
	Default *Entry

	exact   map[string]Entry
	ternary []ternaryEntry

	// Hits/Misses are atomic so control-plane goroutines may read them
	// while the (single-threaded) dataplane updates them.
	Hits   atomic.Uint64
	Misses atomic.Uint64
}

// NewTable creates an empty table.
func NewTable(name string, kind MatchKind) *Table {
	return &Table{Name: name, Kind: kind, exact: make(map[string]Entry)}
}

// Clear removes every entry (crash recovery: a rebooted switch comes back
// with empty tables until the controller reinstalls state). Hit/miss
// counters survive — they are observability, not dataplane state.
func (t *Table) Clear() {
	t.exact = make(map[string]Entry)
	t.ternary = nil
}

// AddExact installs an exact-match entry. The key bytes are copied.
func (t *Table) AddExact(key []byte, e Entry) error {
	if t.Kind != MatchExact {
		return fmt.Errorf("dataplane: table %q is not exact-match", t.Name)
	}
	t.exact[string(key)] = e
	return nil
}

// DeleteExact removes an exact-match entry if present.
func (t *Table) DeleteExact(key []byte) {
	delete(t.exact, string(key))
}

// AddTernary installs a masked entry with a priority.
func (t *Table) AddTernary(key, mask []byte, priority int, e Entry) error {
	if t.Kind != MatchTernary {
		return fmt.Errorf("dataplane: table %q is not ternary", t.Name)
	}
	if len(key) != len(mask) {
		return fmt.Errorf("dataplane: table %q key/mask length mismatch", t.Name)
	}
	t.ternary = append(t.ternary, ternaryEntry{
		key:      append([]byte(nil), key...),
		mask:     append([]byte(nil), mask...),
		priority: priority,
		entry:    e,
	})
	return nil
}

// Size returns the number of installed entries.
func (t *Table) Size() int { return len(t.exact) + len(t.ternary) }

// lookup finds the entry for key, falling back to the default.
func (t *Table) lookup(key []byte) (Entry, bool) {
	switch t.Kind {
	case MatchExact:
		if e, ok := t.exact[string(key)]; ok {
			return e, true
		}
	case MatchTernary:
		best := -1
		var bestEntry Entry
		for _, te := range t.ternary {
			if len(te.key) != len(key) {
				continue
			}
			match := true
			for i := range key {
				if key[i]&te.mask[i] != te.key[i]&te.mask[i] {
					match = false
					break
				}
			}
			if match && te.priority > best {
				best = te.priority
				bestEntry = te.entry
			}
		}
		if best >= 0 {
			return bestEntry, true
		}
	case MatchLPM:
		// LPM over byte-aligned prefixes: try longest prefix first.
		for l := len(key); l >= 0; l-- {
			if e, ok := t.exact[string(key[:l])]; ok {
				return e, true
			}
		}
	}
	if t.Default != nil {
		return *t.Default, true
	}
	return Entry{}, false
}

// AddLPM installs a prefix entry (byte-granular) into an LPM table.
func (t *Table) AddLPM(prefix []byte, e Entry) error {
	if t.Kind != MatchLPM {
		return fmt.Errorf("dataplane: table %q is not LPM", t.Name)
	}
	t.exact[string(prefix)] = e
	return nil
}
