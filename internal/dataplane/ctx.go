package dataplane

import (
	"errors"
	"fmt"

	"github.com/daiet/daiet/internal/hashing"
)

// PHV sizing: programs address metadata by small constant slot numbers,
// like fields in a P4 packet header vector.
const (
	PHVIntSlots  = 48
	PHVByteSlots = 32
)

// Verdict is the fate of a packet after a pipeline pass.
type Verdict int

// Possible verdicts. The zero value is Drop so that a program that never
// decides anything fails closed.
const (
	VerdictDrop Verdict = iota
	VerdictForward
	VerdictRecirculate
	VerdictStall
)

// Errors surfaced by Ctx primitives. They abort the current pass; the
// pipeline converts them into drops plus violation counters.
var (
	ErrOpBudget     = errors.New("dataplane: per-packet operation budget exceeded")
	ErrParseBudget  = errors.New("dataplane: parser exceeded its byte budget")
	ErrTableReapply = errors.New("dataplane: table applied twice in one pass")
	ErrRegBounds    = errors.New("dataplane: register index out of bounds")
)

// emit is one generated packet: the mirror/packet-generator path real
// switches use for flushes. class selects the shared-buffer traffic class
// the egress admission runs under (netsim.SendClass).
type emit struct {
	port  int
	class int
	frame []byte
}

// Ctx is the execution context one packet sees while traversing the
// pipeline. Programs touch packet bytes, metadata and registers exclusively
// through Ctx primitives, each of which is metered against the pass's
// operation budget. Ctx is pooled by the Switch; programs must not retain
// it across packets.
type Ctx struct {
	// Frame is the raw packet. Programs read it via Extract and may not
	// resize it; rewrites happen through WriteFrame.
	frame    []byte
	parseOff int

	// PHV: integer and byte-slice metadata slots. Byte slots typically
	// alias the frame (zero copy), as a real PHV references extracted
	// headers.
	U [PHVIntSlots]uint64
	B [PHVByteSlots][]byte

	// InPort is the ingress port of the current pass.
	InPort int
	// RecircCount counts how many times this packet has recirculated.
	RecircCount int

	verdict  Verdict
	outPort  int
	outClass int
	emits    []emit

	ops         int
	opBudget    int
	parseBudget int

	applied map[*Table]bool
	err     error
}

func (c *Ctx) reset(frame []byte, inPort, opBudget, parseBudget int) {
	c.frame = frame
	c.parseOff = 0
	c.InPort = inPort
	c.RecircCount = 0
	c.verdict = VerdictDrop
	c.outPort = -1
	c.outClass = 0
	c.emits = c.emits[:0]
	c.ops = 0
	c.opBudget = opBudget
	c.parseBudget = parseBudget
	c.err = nil
	for i := range c.U {
		c.U[i] = 0
	}
	for i := range c.B {
		c.B[i] = nil
	}
	if c.applied == nil {
		c.applied = make(map[*Table]bool)
	} else {
		for k := range c.applied {
			delete(c.applied, k)
		}
	}
}

// resetForPass clears per-pass state but keeps PHV contents, used between
// recirculation passes (metadata survives recirculation on real targets via
// packet tags; we carry the PHV for simplicity and parity with bmv2's
// recirculate metadata).
func (c *Ctx) resetForPass() {
	c.parseOff = 0
	c.verdict = VerdictDrop
	c.outPort = -1
	c.outClass = 0
	c.ops = 0
	for k := range c.applied {
		delete(c.applied, k)
	}
	c.err = nil
}

// fail records the first primitive error; later primitives become no-ops.
func (c *Ctx) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first primitive error of the current pass, if any.
func (c *Ctx) Err() error { return c.err }

// Ops returns the number of metered operations consumed so far this pass.
func (c *Ctx) Ops() int { return c.ops }

// op meters one primitive invocation.
func (c *Ctx) op() bool {
	if c.err != nil {
		return false
	}
	c.ops++
	if c.ops > c.opBudget {
		c.fail(ErrOpBudget)
		return false
	}
	return true
}

// FrameLen returns the length of the raw frame.
func (c *Ctx) FrameLen() int { return len(c.frame) }

// Extract returns the next n bytes of the frame and advances the parse
// cursor. It enforces the hardware parse budget (the paper: "current P4
// hardware switches are expected to parse only around 200-300 B").
func (c *Ctx) Extract(n int) []byte {
	if !c.op() {
		return nil
	}
	if c.parseOff+n > c.parseBudget {
		c.fail(ErrParseBudget)
		return nil
	}
	if c.parseOff+n > len(c.frame) {
		c.fail(fmt.Errorf("dataplane: extract %d bytes at %d beyond frame end %d",
			n, c.parseOff, len(c.frame)))
		return nil
	}
	b := c.frame[c.parseOff : c.parseOff+n]
	c.parseOff += n
	return b
}

// ParseOffset returns the current parse cursor.
func (c *Ctx) ParseOffset() int { return c.parseOff }

// Apply looks key up in t and runs the matching action. Re-applying the
// same table in one pass is the P4 error the paper describes working
// around with manual loop unrolling; it aborts the pass.
func (c *Ctx) Apply(t *Table, key []byte) {
	if !c.op() {
		return
	}
	if c.applied[t] {
		c.fail(fmt.Errorf("%w: %s", ErrTableReapply, t.Name))
		return
	}
	c.applied[t] = true
	e, ok := t.lookup(key)
	if !ok {
		t.Misses.Add(1)
		return
	}
	t.Hits.Add(1)
	if e.Action != nil {
		e.Action(c, e.Params)
	}
}

// RegRead reads integer register r at idx.
func (c *Ctx) RegRead(r *Register, idx int) uint64 {
	if !c.op() {
		return 0
	}
	if idx < 0 || idx >= len(r.Cells) {
		c.fail(fmt.Errorf("%w: %s[%d] len %d", ErrRegBounds, r.Name, idx, len(r.Cells)))
		return 0
	}
	return r.Cells[idx]
}

// RegWrite writes integer register r at idx, masking to the cell width.
func (c *Ctx) RegWrite(r *Register, idx int, v uint64) {
	if !c.op() {
		return
	}
	if idx < 0 || idx >= len(r.Cells) {
		c.fail(fmt.Errorf("%w: %s[%d] len %d", ErrRegBounds, r.Name, idx, len(r.Cells)))
		return
	}
	r.Cells[idx] = v & r.mask
}

// BRegRead returns cell idx of byte register r (aliasing its storage; the
// caller must not hold it past the pass).
func (c *Ctx) BRegRead(r *ByteRegister, idx int) []byte {
	if !c.op() {
		return nil
	}
	if idx < 0 || idx >= r.count {
		c.fail(fmt.Errorf("%w: %s[%d] len %d", ErrRegBounds, r.Name, idx, r.count))
		return nil
	}
	return r.cell(idx)
}

// BRegWrite copies src into cell idx of byte register r, zero-padding to
// the cell width. Oversized sources abort the pass.
func (c *Ctx) BRegWrite(r *ByteRegister, idx int, src []byte) {
	if !c.op() {
		return
	}
	if idx < 0 || idx >= r.count {
		c.fail(fmt.Errorf("%w: %s[%d] len %d", ErrRegBounds, r.Name, idx, r.count))
		return
	}
	if len(src) > r.Width {
		c.fail(fmt.Errorf("dataplane: write of %d bytes into %d-byte cells of %s",
			len(src), r.Width, r.Name))
		return
	}
	cell := r.cell(idx)
	n := copy(cell, src)
	for i := n; i < len(cell); i++ {
		cell[i] = 0
	}
}

// Hash computes the target's hash extern over b.
func (c *Ctx) Hash(b []byte) uint64 {
	if !c.op() {
		return 0
	}
	return hashing.FNV1a64(b)
}

// HashIndex maps b into [0, size).
func (c *Ctx) HashIndex(b []byte, size int) int {
	if !c.op() {
		return 0
	}
	if size <= 0 {
		c.fail(fmt.Errorf("dataplane: HashIndex size %d", size))
		return 0
	}
	return int(hashing.FNV1a64(b) % uint64(size))
}

// Forward sets the verdict to forward out of port, under traffic class 0.
func (c *Ctx) Forward(port int) {
	if c.err != nil {
		return
	}
	c.verdict = VerdictForward
	c.outPort = port
	c.outClass = 0
}

// ForwardClass is Forward with an explicit shared-buffer traffic class: the
// egress admission on a pooled switch runs against that class's carved
// reserve and threshold (see netsim.PoolConfig.Classes).
func (c *Ctx) ForwardClass(port, class int) {
	if c.err != nil {
		return
	}
	c.verdict = VerdictForward
	c.outPort = port
	c.outClass = class
}

// Drop sets the verdict to drop.
func (c *Ctx) Drop() {
	if c.err != nil {
		return
	}
	c.verdict = VerdictDrop
}

// Recirculate requeues the packet for another pipeline pass (bounded by the
// pipeline's recirculation limit). PHV metadata survives the pass boundary.
func (c *Ctx) Recirculate() {
	if c.err != nil {
		return
	}
	c.verdict = VerdictRecirculate
}

// Stall parks the packet for a later retry of the same pass: the program
// is waiting on external state (an acknowledgement freeing replay-buffer
// space) rather than doing more work. Unlike Recirculate it does not count
// against the recirculation limit — the switch re-presents the packet
// after its StallLatency. PHV metadata survives, as with recirculation.
func (c *Ctx) Stall() {
	if c.err != nil {
		return
	}
	c.verdict = VerdictStall
}

// Emit queues a generated packet for transmission out of port under
// traffic class 0: the mirror/packet-generation path used to flush
// aggregated state. The frame is owned by the dataplane after the call.
func (c *Ctx) Emit(port int, frame []byte) {
	if !c.op() {
		return
	}
	c.emits = append(c.emits, emit{port: port, frame: frame})
}

// EmitClass is Emit with an explicit shared-buffer traffic class — how a
// tree's flushes (DataClass) and acknowledgements (AckClass) land in their
// tenant's carved slice of a pooled switch's memory.
func (c *Ctx) EmitClass(port, class int, frame []byte) {
	if !c.op() {
		return
	}
	c.emits = append(c.emits, emit{port: port, class: class, frame: frame})
}

// WriteFrame rewrites n bytes of the frame at off (header rewrites).
func (c *Ctx) WriteFrame(off int, src []byte) {
	if !c.op() {
		return
	}
	if off < 0 || off+len(src) > len(c.frame) {
		c.fail(fmt.Errorf("dataplane: frame write [%d:%d) beyond len %d", off, off+len(src), len(c.frame)))
		return
	}
	copy(c.frame[off:], src)
}
