package dataplane

import "testing"

// TestCtxPoolBounded guards the Switch free-list cap: retiring more
// contexts than maxFreeCtxs must not grow the pool without bound
// (recirculation-heavy workloads previously leaked one Ctx per burst).
func TestCtxPoolBounded(t *testing.T) {
	s := &Switch{}
	for i := 0; i < 4*maxFreeCtxs; i++ {
		s.putCtx(&Ctx{frame: make([]byte, 64)})
	}
	if len(s.free) != maxFreeCtxs {
		t.Fatalf("free list has %d contexts, cap is %d", len(s.free), maxFreeCtxs)
	}
	// Recycled contexts must not retain their frames.
	for _, c := range s.free {
		if c.frame != nil {
			t.Fatal("pooled ctx retains frame buffer")
		}
	}
	// Draining and refilling stays within the cap.
	for i := 0; i < maxFreeCtxs; i++ {
		if c := s.getCtx(); c == nil {
			t.Fatal("getCtx returned nil from non-empty pool")
		}
	}
	if len(s.free) != 0 {
		t.Fatalf("pool not drained: %d left", len(s.free))
	}
}
