package dataplane

import (
	"fmt"

	"github.com/daiet/daiet/internal/wire"
)

// ParserFunc extracts headers from the frame into the PHV using Ctx
// primitives. A nil return means "accept"; returning an error rejects the
// packet (counted, dropped).
type ParserFunc func(ctx *Ctx) error

// StageFunc is the logic of one pipeline stage.
type StageFunc func(ctx *Ctx)

// Stage is one match-action stage.
type Stage struct {
	Name  string
	Logic StageFunc
}

// PipelineConfig bounds a pipeline's execution, defaulting to Tofino-like
// numbers.
type PipelineConfig struct {
	// OpBudget is the metered-primitive budget per pass. Default 512: a
	// generous stand-in for "tens of nanoseconds worth" of work across a
	// dozen stages.
	OpBudget int
	// ParseBudget is the max bytes the parser may examine (default
	// wire.MaxParseBudget, the paper's 300 B).
	ParseBudget int
	// MaxRecirc bounds recirculation passes per packet (default 4096; a
	// flush of a 16K-entry register file needs ~1640 passes).
	MaxRecirc int
	// MaxStages bounds the number of stages (default 16, an RMT-like depth).
	MaxStages int
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.OpBudget == 0 {
		c.OpBudget = 512
	}
	if c.ParseBudget == 0 {
		c.ParseBudget = wire.MaxParseBudget
	}
	if c.MaxRecirc == 0 {
		c.MaxRecirc = 4096
	}
	if c.MaxStages == 0 {
		c.MaxStages = 16
	}
	return c
}

// Pipeline is a parser plus an ordered list of stages.
type Pipeline struct {
	Name   string
	Parser ParserFunc
	stages []Stage
	cfg    PipelineConfig
}

// NewPipeline creates a pipeline with the given config (zero value =
// defaults).
func NewPipeline(name string, parser ParserFunc, cfg PipelineConfig) *Pipeline {
	return &Pipeline{Name: name, Parser: parser, cfg: cfg.withDefaults()}
}

// AddStage appends a stage; exceeding the stage budget is a load-time
// error, matching how a real program fails to fit the chip.
func (p *Pipeline) AddStage(name string, logic StageFunc) error {
	if len(p.stages) >= p.cfg.MaxStages {
		return fmt.Errorf("dataplane: pipeline %q exceeds %d stages", p.Name, p.cfg.MaxStages)
	}
	p.stages = append(p.stages, Stage{Name: name, Logic: logic})
	return nil
}

// Config returns the pipeline's effective configuration.
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// PassResult describes the outcome of running one pass.
type passResult struct {
	verdict  Verdict
	outPort  int
	outClass int
	err      error
}

// runPass executes parser and stages over ctx once.
func (p *Pipeline) runPass(ctx *Ctx) passResult {
	if p.Parser != nil {
		if err := p.Parser(ctx); err != nil {
			return passResult{verdict: VerdictDrop, err: err}
		}
		if ctx.err != nil {
			return passResult{verdict: VerdictDrop, err: ctx.err}
		}
	}
	for i := range p.stages {
		p.stages[i].Logic(ctx)
		if ctx.err != nil {
			return passResult{verdict: VerdictDrop, err: ctx.err}
		}
	}
	return passResult{verdict: ctx.verdict, outPort: ctx.outPort, outClass: ctx.outClass}
}
