package dataplane

import (
	"encoding/binary"
	"testing"
)

// BenchmarkRegisterAccess measures the metered register read/write path.
func BenchmarkRegisterAccess(b *testing.B) {
	rf := NewRegisterFile(1 << 20)
	r, err := rf.AllocRegister("bench", 4, 16384)
	if err != nil {
		b.Fatal(err)
	}
	var c Ctx
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.reset(nil, 0, 1<<30, 300)
		for j := 0; j < 64; j++ {
			v := c.RegRead(r, j)
			c.RegWrite(r, j, v+1)
		}
	}
}

// BenchmarkTableExactLookup measures exact-match apply with 1K entries.
func BenchmarkTableExactLookup(b *testing.B) {
	tbl := NewTable("bench", MatchExact)
	for i := 0; i < 1024; i++ {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], uint32(i))
		if err := tbl.AddExact(key[:], Entry{Action: func(*Ctx, []uint64) {}}); err != nil {
			b.Fatal(err)
		}
	}
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], 512)
	var c Ctx
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.reset(nil, 0, 1<<30, 300)
		c.Apply(tbl, key[:])
	}
}

// BenchmarkHashIndex measures the metered hash primitive.
func BenchmarkHashIndex(b *testing.B) {
	var c Ctx
	c.reset(nil, 0, 1<<30, 300)
	key := []byte("sixteen-byte-key")
	for i := 0; i < b.N; i++ {
		_ = c.HashIndex(key, 16384)
	}
}

// BenchmarkTernaryLookup measures masked matching over 64 rules.
func BenchmarkTernaryLookup(b *testing.B) {
	tbl := NewTable("acl", MatchTernary)
	for i := 0; i < 64; i++ {
		key := []byte{byte(i), 0, 0, 0}
		mask := []byte{0xff, 0, 0, 0}
		if err := tbl.AddTernary(key, mask, i, Entry{Action: func(*Ctx, []uint64) {}}); err != nil {
			b.Fatal(err)
		}
	}
	probe := []byte{32, 1, 2, 3}
	var c Ctx
	for i := 0; i < b.N; i++ {
		c.reset(nil, 0, 1<<30, 300)
		c.Apply(tbl, probe)
	}
}

// The paper keeps an index stack "to store the indices of the used cells
// in the two arrays. This facilitates flushing the results to the next
// node, avoiding a costly scan of the arrays." These two benchmarks
// quantify that design choice at the paper's occupancy point (~2K used
// cells in a 16K table, the Figure-3 operating point).

const (
	flushTableSize = 16384
	flushUsedCells = 2000
)

func setupFlushState(b *testing.B) (*Register, *Register, *Register) {
	b.Helper()
	rf := NewRegisterFile(1 << 20)
	valid, err := rf.AllocRegister("valid", 1, flushTableSize)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := rf.AllocRegister("stack", 4, flushTableSize)
	if err != nil {
		b.Fatal(err)
	}
	top, err := rf.AllocRegister("top", 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Spread the used cells across the table like a hash would.
	var c Ctx
	c.reset(nil, 0, 1<<30, 300)
	for i := 0; i < flushUsedCells; i++ {
		idx := (i * 8191) % flushTableSize
		c.RegWrite(valid, idx, 1)
		c.RegWrite(stack, i, uint64(idx))
	}
	c.RegWrite(top, 0, flushUsedCells)
	return valid, stack, top
}

// BenchmarkFlushViaIndexStack pops exactly the used cells.
func BenchmarkFlushViaIndexStack(b *testing.B) {
	valid, stack, top := setupFlushState(b)
	var c Ctx
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.reset(nil, 0, 1<<31, 300)
		n := int(c.RegRead(top, 0))
		touched := 0
		for j := 0; j < n; j++ {
			idx := int(c.RegRead(stack, j))
			_ = c.RegRead(valid, idx)
			touched++
		}
		if touched != flushUsedCells {
			b.Fatal("wrong cell count")
		}
	}
}

// BenchmarkFlushViaFullScan walks every cell looking for occupancy — the
// alternative the paper rejects.
func BenchmarkFlushViaFullScan(b *testing.B) {
	valid, _, _ := setupFlushState(b)
	var c Ctx
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.reset(nil, 0, 1<<31, 300)
		touched := 0
		for idx := 0; idx < flushTableSize; idx++ {
			if c.RegRead(valid, idx) == 1 {
				touched++
			}
		}
		if touched != flushUsedCells {
			b.Fatal("wrong cell count")
		}
	}
}
