package dataplane

import (
	"errors"
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/trace"
)

// Counters aggregates a switch's observable behaviour. The control plane
// reads them; tests assert on them.
type Counters struct {
	RxFrames     uint64
	TxFrames     uint64
	Emitted      uint64 // generated packets (flushes)
	Recirculated uint64 // recirculation passes taken
	Stalls       uint64 // stall retries taken (replay-buffer backpressure)

	DropsProgram uint64 // program decided to drop (or made no decision)
	DropsParse   uint64 // parser rejected the packet
	DropsBudget  uint64 // per-packet op budget exceeded
	DropsRecirc  uint64 // recirculation limit exceeded
	DropsError   uint64 // other program errors (table reapply, bounds)
	DropsDown    uint64 // frames arriving (or in flight) while crashed
}

// Drops returns the sum of all drop reasons.
func (c Counters) Drops() uint64 {
	return c.DropsProgram + c.DropsParse + c.DropsBudget + c.DropsRecirc + c.DropsError + c.DropsDown
}

// maxFreeCtxs bounds the per-switch Ctx free list. Recirculation-heavy
// workloads can have many contexts in flight at once; without a cap every
// retired context is retained forever, a slow leak on long-running fabrics.
// The cap covers the realistic in-flight burst while letting excess
// contexts (and the frame buffers they reference) return to the GC.
const maxFreeCtxs = 64

// Switch is a netsim.Node running a Pipeline over a RegisterFile: the
// simulated programmable ASIC.
type Switch struct {
	nw   *netsim.Network
	id   netsim.NodeID
	pipe *Pipeline
	regs *RegisterFile

	// RecircLatency is the extra delay per recirculation pass; the paper
	// notes recirculation "comes at the cost of additional processing
	// latency and lowers the forwarding capacity".
	RecircLatency netsim.Time

	// StallLatency is the retry delay for VerdictStall passes — packets
	// parked on external state such as replay-buffer backpressure. Longer
	// than RecircLatency because the switch is waiting on a round trip,
	// not on its own pipeline.
	StallLatency netsim.Time

	// down marks the switch crashed: every arriving or in-flight frame is
	// dropped until SetDown(false). Fault injection toggles it while the
	// network is quiescent.
	down bool

	// Trace, when set, records per-packet pipeline events (rx, tx, drops
	// with reasons, recirculation, generated packets) into a bounded ring
	// for post-mortem inspection. Nil disables tracing at zero cost.
	Trace *trace.Ring

	Counters Counters

	free []*Ctx
}

// NewSwitch wraps pipe and regs into a fabric node.
func NewSwitch(pipe *Pipeline, regs *RegisterFile) *Switch {
	return &Switch{
		pipe:          pipe,
		regs:          regs,
		RecircLatency: netsim.Duration(500 * time.Nanosecond),
		StallLatency:  netsim.Duration(2 * time.Microsecond),
	}
}

// SetDown crashes (true) or revives (false) the switch. While down, every
// frame — arriving, recirculating, or stalled — is dropped and counted
// under DropsDown. Revival restores forwarding only; tables and registers
// are whatever the owning Program left them as.
func (s *Switch) SetDown(down bool) { s.down = down }

// ResetBuffers zeroes the switch's shared packet-memory occupancy (its
// netsim buffer pool, when one is attached), so a rebooted switch admits
// traffic against an empty memory instead of the dead boot's accounting
// (netsim schedules deliveries at admission, so already-admitted frames
// still arrive — see Network.ResetPool). Poolless switches clear their
// private per-port queue accounting the same way. Part of crash
// semantics — core.Program.Crash calls it alongside wiping tables and
// registers. Call only while the network is quiescent.
func (s *Switch) ResetBuffers() { s.nw.ResetPool(s.id) }

// Down reports whether the switch is crashed.
func (s *Switch) Down() bool { return s.down }

// After schedules fn on the switch's own event-engine domain, d ticks from
// its current virtual time — the control-logic timer the replay-buffer
// retransmitter uses. Valid after Attach.
func (s *Switch) After(d netsim.Time, fn func()) { s.nw.NodeAfter(s.id, d, fn) }

// Now returns the switch's current virtual time (its domain clock).
func (s *Switch) Now() netsim.Time { return s.nw.NodeNow(s.id) }

// Inject transmits a program-generated frame out of port from control
// logic running outside a pipeline pass (timer-driven retransmission),
// under traffic class 0. It is accounted like an emitted packet. Injection
// on a crashed switch or an invalid port is counted and dropped.
func (s *Switch) Inject(port int, frame []byte) { s.InjectClass(port, 0, frame) }

// InjectClass is Inject with an explicit shared-buffer traffic class, so
// replay retransmissions leave under the same class as the original
// emission.
func (s *Switch) InjectClass(port, class int, frame []byte) {
	if s.down {
		s.Counters.DropsDown++
		return
	}
	if port < 0 || port >= s.nw.NumPorts(s.id) {
		s.Counters.DropsProgram++
		return
	}
	s.Counters.Emitted++
	s.Counters.TxFrames++
	s.trace(trace.KindEmit, int64(port), int64(len(frame)), "")
	s.nw.SendClass(s.id, port, class, frame)
}

// Attach implements netsim.Node.
func (s *Switch) Attach(nw *netsim.Network, id netsim.NodeID) { s.nw, s.id = nw, id }

// ID returns the fabric node ID (valid after Attach).
func (s *Switch) ID() netsim.NodeID { return s.id }

// Registers exposes the switch's register file to the control plane.
func (s *Switch) Registers() *RegisterFile { return s.regs }

// Pipeline returns the running pipeline.
func (s *Switch) Pipeline() *Pipeline { return s.pipe }

func (s *Switch) getCtx() *Ctx {
	if n := len(s.free); n > 0 {
		c := s.free[n-1]
		s.free = s.free[:n-1]
		return c
	}
	return &Ctx{}
}

func (s *Switch) putCtx(c *Ctx) {
	if len(s.free) >= maxFreeCtxs {
		return
	}
	c.frame = nil
	s.free = append(s.free, c)
}

// HandleFrame implements netsim.Node: one ingress packet enters the
// pipeline.
func (s *Switch) HandleFrame(inPort int, frame []byte) {
	s.Counters.RxFrames++
	s.trace(trace.KindRx, int64(inPort), int64(len(frame)), "")
	if s.down {
		s.Counters.DropsDown++
		s.trace(trace.KindDrop, int64(inPort), 0, "switch down")
		return
	}
	cfg := s.pipe.cfg
	ctx := s.getCtx()
	ctx.reset(frame, inPort, cfg.OpBudget, cfg.ParseBudget)
	s.process(ctx)
}

// process runs one pipeline pass and acts on the verdict, scheduling
// further recirculation passes on the event loop.
func (s *Switch) process(ctx *Ctx) {
	if s.down {
		// A crash kills recirculating and stalled packets too.
		s.Counters.DropsDown++
		s.trace(trace.KindDrop, int64(ctx.InPort), 0, "switch down")
		s.putCtx(ctx)
		return
	}
	res := s.pipe.runPass(ctx)

	// Generated packets leave regardless of the original packet's fate
	// (they were emitted before any failure point — Emit is metered, so an
	// emit after an error is a no-op).
	for _, e := range ctx.emits {
		s.Counters.Emitted++
		s.Counters.TxFrames++
		s.trace(trace.KindEmit, int64(e.port), int64(len(e.frame)), "")
		s.nw.SendClass(s.id, e.port, e.class, e.frame)
	}
	ctx.emits = ctx.emits[:0]

	if res.err != nil {
		switch {
		case errors.Is(res.err, ErrParseBudget):
			s.Counters.DropsParse++
		case errors.Is(res.err, ErrOpBudget):
			s.Counters.DropsBudget++
		default:
			s.Counters.DropsError++
		}
		s.trace(trace.KindDrop, int64(ctx.InPort), 0, res.err.Error())
		s.putCtx(ctx)
		return
	}

	switch res.verdict {
	case VerdictForward:
		if res.outPort < 0 || res.outPort >= s.nw.NumPorts(s.id) {
			s.Counters.DropsProgram++
			s.trace(trace.KindDrop, int64(res.outPort), 0, "invalid egress port")
			s.putCtx(ctx)
			return
		}
		s.Counters.TxFrames++
		s.trace(trace.KindTx, int64(res.outPort), int64(len(ctx.frame)), "")
		s.nw.SendClass(s.id, res.outPort, res.outClass, ctx.frame)
		s.putCtx(ctx)
	case VerdictRecirculate:
		if ctx.RecircCount >= s.pipe.cfg.MaxRecirc {
			s.Counters.DropsRecirc++
			s.trace(trace.KindDrop, int64(ctx.InPort), 0, "recirculation limit")
			s.putCtx(ctx)
			return
		}
		ctx.RecircCount++
		s.Counters.Recirculated++
		s.trace(trace.KindRecirculate, int64(ctx.RecircCount), 0, "")
		ctx.resetForPass()
		s.nw.NodeAfter(s.id, s.RecircLatency, func() { s.process(ctx) })
	case VerdictStall:
		// Waiting on external state: retry the pass later without charging
		// the recirculation limit (progress resumes when the state changes,
		// not when the pipeline loops).
		s.Counters.Stalls++
		ctx.resetForPass()
		s.nw.NodeAfter(s.id, s.StallLatency, func() { s.process(ctx) })
	default:
		s.Counters.DropsProgram++
		s.trace(trace.KindDrop, int64(ctx.InPort), 0, "program drop")
		s.putCtx(ctx)
	}
}

// trace records one event when tracing is enabled.
func (s *Switch) trace(kind trace.Kind, a, b int64, note string) {
	if s.Trace == nil {
		return
	}
	s.Trace.Record(trace.Event{Node: uint32(s.id), Kind: kind, A: a, B: b, Note: note})
}
