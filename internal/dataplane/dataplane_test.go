package dataplane

import (
	"encoding/binary"
	"errors"
	"testing"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/trace"
	"github.com/daiet/daiet/internal/wire"
)

func TestRegisterFileBudget(t *testing.T) {
	rf := NewRegisterFile(100)
	r, err := rf.AllocRegister("a", 4, 20) // 80 bytes
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 || rf.Used() != 80 {
		t.Fatalf("len=%d used=%d", r.Len(), rf.Used())
	}
	if _, err := rf.AllocRegister("b", 4, 10); err == nil { // 40 > 20 left
		t.Fatal("want over-budget error")
	}
	if _, err := rf.AllocByteRegister("c", 2, 10); err != nil { // exactly 20
		t.Fatal(err)
	}
	if rf.Used() != rf.Budget() {
		t.Fatalf("used=%d budget=%d", rf.Used(), rf.Budget())
	}
	rf.Free("a")
	if rf.Used() != 20 {
		t.Fatalf("after free used=%d", rf.Used())
	}
	if _, err := rf.AllocRegister("b", 8, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAllocValidation(t *testing.T) {
	rf := NewRegisterFile(1000)
	if _, err := rf.AllocRegister("w0", 0, 1); err == nil {
		t.Fatal("width 0 must fail")
	}
	if _, err := rf.AllocRegister("w9", 9, 1); err == nil {
		t.Fatal("width 9 must fail")
	}
	if _, err := rf.AllocRegister("c0", 4, 0); err == nil {
		t.Fatal("count 0 must fail")
	}
	if _, err := rf.AllocRegister("ok", 4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.AllocRegister("ok", 4, 2); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := rf.AllocByteRegister("b", 0, 1); err == nil {
		t.Fatal("byte width 0 must fail")
	}
}

func TestRegisterWidthMasking(t *testing.T) {
	rf := NewRegisterFile(1000)
	r, _ := rf.AllocRegister("narrow", 2, 4)
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.RegWrite(r, 1, 0x12345678)
	if got := c.RegRead(r, 1); got != 0x5678 {
		t.Fatalf("masked write: %#x", got)
	}
	r8, _ := rf.AllocRegister("wide", 8, 1)
	c.RegWrite(r8, 0, ^uint64(0))
	if got := c.RegRead(r8, 0); got != ^uint64(0) {
		t.Fatalf("full width: %#x", got)
	}
}

func TestCtxRegisterBounds(t *testing.T) {
	rf := NewRegisterFile(1000)
	r, _ := rf.AllocRegister("r", 4, 4)
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.RegRead(r, 4)
	if !errors.Is(c.Err(), ErrRegBounds) {
		t.Fatalf("want bounds error, got %v", c.Err())
	}
	// After an error all primitives are inert.
	c.RegWrite(r, 0, 7)
	if r.Cells[0] != 0 {
		t.Fatal("primitive ran after error")
	}
}

func TestByteRegisterReadWrite(t *testing.T) {
	rf := NewRegisterFile(1000)
	br, _ := rf.AllocByteRegister("keys", 8, 4)
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.BRegWrite(br, 2, []byte("hi"))
	got := c.BRegRead(br, 2)
	if string(got[:2]) != "hi" || got[2] != 0 || len(got) != 8 {
		t.Fatalf("cell %v", got)
	}
	// Overwrite with shorter content must clear the tail.
	c.BRegWrite(br, 2, []byte("abcdef"))
	c.BRegWrite(br, 2, []byte("z"))
	got = c.BRegRead(br, 2)
	if got[0] != 'z' || got[1] != 0 {
		t.Fatalf("stale bytes after short write: %v", got)
	}
	c.BRegWrite(br, 2, make([]byte, 9))
	if c.Err() == nil {
		t.Fatal("oversized write must error")
	}
}

func TestCtxOpBudget(t *testing.T) {
	rf := NewRegisterFile(1000)
	r, _ := rf.AllocRegister("r", 8, 1)
	var c Ctx
	c.reset(nil, 0, 3, 300)
	c.RegWrite(r, 0, 1)
	c.RegWrite(r, 0, 2)
	c.RegWrite(r, 0, 3)
	if c.Err() != nil {
		t.Fatalf("within budget: %v", c.Err())
	}
	c.RegWrite(r, 0, 4)
	if !errors.Is(c.Err(), ErrOpBudget) {
		t.Fatalf("want budget error, got %v", c.Err())
	}
	if r.Cells[0] != 3 {
		t.Fatalf("write after budget ran: %d", r.Cells[0])
	}
}

func TestCtxParseBudget(t *testing.T) {
	var c Ctx
	c.reset(make([]byte, 400), 0, 100, 300)
	if b := c.Extract(300); len(b) != 300 {
		t.Fatalf("extract: %d", len(b))
	}
	c.Extract(1)
	if !errors.Is(c.Err(), ErrParseBudget) {
		t.Fatalf("want parse budget error, got %v", c.Err())
	}
}

func TestCtxExtractBeyondFrame(t *testing.T) {
	var c Ctx
	c.reset(make([]byte, 10), 0, 100, 300)
	c.Extract(11)
	if c.Err() == nil {
		t.Fatal("want error extracting past frame end")
	}
}

func TestTableExactMatch(t *testing.T) {
	tbl := NewTable("t", MatchExact)
	var hit uint64
	err := tbl.AddExact([]byte{1, 2}, Entry{Action: func(c *Ctx, p []uint64) { hit = p[0] }, Params: []uint64{42}})
	if err != nil {
		t.Fatal(err)
	}
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{1, 2})
	if hit != 42 || tbl.Hits.Load() != 1 {
		t.Fatalf("hit=%d hits=%d", hit, tbl.Hits.Load())
	}
	c.Apply(tbl, []byte{9, 9}) // reapply — must error
	if !errors.Is(c.Err(), ErrTableReapply) {
		t.Fatalf("want reapply error, got %v", c.Err())
	}
}

func TestTableMissAndDefault(t *testing.T) {
	tbl := NewTable("t", MatchExact)
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{5})
	if tbl.Misses.Load() != 1 || c.Err() != nil {
		t.Fatalf("misses=%d err=%v", tbl.Misses.Load(), c.Err())
	}
	var def bool
	tbl.Default = &Entry{Action: func(*Ctx, []uint64) { def = true }}
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{5})
	if !def {
		t.Fatal("default action did not run")
	}
	if tbl.Kind != MatchExact {
		t.Fatal("kind changed")
	}
	if err := tbl.AddTernary(nil, nil, 0, Entry{}); err == nil {
		t.Fatal("AddTernary on exact table must fail")
	}
}

func TestTableTernaryPriority(t *testing.T) {
	tbl := NewTable("acl", MatchTernary)
	var got uint64
	mk := func(v uint64) Entry {
		return Entry{Action: func(c *Ctx, p []uint64) { got = p[0] }, Params: []uint64{v}}
	}
	// Low priority: match anything.
	if err := tbl.AddTernary([]byte{0}, []byte{0x00}, 1, mk(1)); err != nil {
		t.Fatal(err)
	}
	// High priority: match 0x0a exactly.
	if err := tbl.AddTernary([]byte{0x0a}, []byte{0xff}, 10, mk(2)); err != nil {
		t.Fatal(err)
	}
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{0x0a})
	if got != 2 {
		t.Fatalf("priority: got %d", got)
	}
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{0x0b})
	if got != 1 {
		t.Fatalf("fallback: got %d", got)
	}
	if err := tbl.AddTernary([]byte{1, 2}, []byte{1}, 0, Entry{}); err == nil {
		t.Fatal("mismatched key/mask must fail")
	}
	if err := tbl.AddExact(nil, Entry{}); err == nil {
		t.Fatal("AddExact on ternary table must fail")
	}
}

func TestTableLPM(t *testing.T) {
	tbl := NewTable("routes", MatchLPM)
	var got uint64
	mk := func(v uint64) Entry {
		return Entry{Action: func(c *Ctx, p []uint64) { got = p[0] }, Params: []uint64{v}}
	}
	if err := tbl.AddLPM([]byte{10}, mk(8)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddLPM([]byte{10, 1}, mk(16)); err != nil {
		t.Fatal(err)
	}
	var c Ctx
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{10, 1, 2, 3})
	if got != 16 {
		t.Fatalf("want longest prefix, got %d", got)
	}
	c.reset(nil, 0, 100, 300)
	c.Apply(tbl, []byte{10, 9, 2, 3})
	if got != 8 {
		t.Fatalf("want /8, got %d", got)
	}
	if tbl.Size() != 2 {
		t.Fatalf("size %d", tbl.Size())
	}
	if err := tbl.AddLPM(nil, Entry{}); err != nil {
		t.Fatal(err) // zero-length prefix = default route, allowed
	}
}

// buildEchoSwitch builds a 1-pipeline switch that forwards every frame to a
// port taken from a forwarding table keyed on the destination MAC's node ID.
func buildFwdPipeline(t *testing.T, fwd *Table) *Pipeline {
	t.Helper()
	parser := func(c *Ctx) error {
		hdr := c.Extract(wire.EthernetHeaderLen)
		if c.Err() != nil {
			return c.Err()
		}
		c.B[0] = hdr[0:6] // dst mac
		return nil
	}
	p := NewPipeline("l2", parser, PipelineConfig{})
	if err := p.AddStage("forward", func(c *Ctx) {
		c.Apply(fwd, c.B[0])
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

type captureHost struct {
	frames [][]byte
}

func (h *captureHost) Attach(*netsim.Network, netsim.NodeID) {}
func (h *captureHost) HandleFrame(_ int, f []byte)           { h.frames = append(h.frames, f) }

func ethFrame(dst, src uint32, payload []byte) []byte {
	buf := wire.NewBuffer(wire.DefaultHeadroom, len(payload))
	buf.AppendBytes(payload)
	e := wire.Ethernet{Dst: wire.MACFromNode(dst), Src: wire.MACFromNode(src), EtherType: wire.EtherTypeIPv4}
	e.SerializeTo(buf)
	return buf.Bytes()
}

func TestSwitchForwardsViaTable(t *testing.T) {
	nw := netsim.New(1)
	fwd := NewTable("fwd", MatchExact)
	sw := NewSwitch(buildFwdPipeline(t, fwd), NewRegisterFile(1<<20))
	h1, h2 := &captureHost{}, &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h1)
	nw.AddNode(2, h2)
	nw.Connect(100, 1, netsim.LinkConfig{})
	p2, _ := nw.Connect(100, 2, netsim.LinkConfig{})

	forwardAction := func(c *Ctx, p []uint64) { c.Forward(int(p[0])) }
	mac2 := wire.MACFromNode(2)
	if err := fwd.AddExact(mac2[:], Entry{Action: forwardAction, Params: []uint64{uint64(p2)}}); err != nil {
		t.Fatal(err)
	}

	nw.Send(1, 0, ethFrame(2, 1, []byte("hi")))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(h2.frames) != 1 || len(h1.frames) != 0 {
		t.Fatalf("h1=%d h2=%d", len(h1.frames), len(h2.frames))
	}
	if sw.Counters.RxFrames != 1 || sw.Counters.TxFrames != 1 || sw.Counters.Drops() != 0 {
		t.Fatalf("counters %+v", sw.Counters)
	}
}

func TestSwitchDropsOnTableMiss(t *testing.T) {
	nw := netsim.New(1)
	fwd := NewTable("fwd", MatchExact)
	sw := NewSwitch(buildFwdPipeline(t, fwd), NewRegisterFile(1<<20))
	h1 := &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h1)
	nw.Connect(100, 1, netsim.LinkConfig{})
	nw.Send(1, 0, ethFrame(9, 1, nil)) // no entry for node 9
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if sw.Counters.DropsProgram != 1 {
		t.Fatalf("counters %+v", sw.Counters)
	}
}

func TestSwitchDropsMalformedFrame(t *testing.T) {
	nw := netsim.New(1)
	fwd := NewTable("fwd", MatchExact)
	sw := NewSwitch(buildFwdPipeline(t, fwd), NewRegisterFile(1<<20))
	h1 := &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h1)
	nw.Connect(100, 1, netsim.LinkConfig{})
	nw.Send(1, 0, []byte{1, 2, 3}) // shorter than an Ethernet header
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if sw.Counters.DropsError+sw.Counters.DropsParse != 1 {
		t.Fatalf("counters %+v", sw.Counters)
	}
}

func TestSwitchForwardToBadPortDrops(t *testing.T) {
	nw := netsim.New(1)
	fwd := NewTable("fwd", MatchExact)
	sw := NewSwitch(buildFwdPipeline(t, fwd), NewRegisterFile(1<<20))
	h1 := &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h1)
	nw.Connect(100, 1, netsim.LinkConfig{})
	mac2 := wire.MACFromNode(2)
	_ = fwd.AddExact(mac2[:], Entry{Action: func(c *Ctx, p []uint64) { c.Forward(5) }})
	nw.Send(1, 0, ethFrame(2, 1, nil))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if sw.Counters.DropsProgram != 1 {
		t.Fatalf("counters %+v", sw.Counters)
	}
}

func TestSwitchRecirculationCountsAndBounds(t *testing.T) {
	nw := netsim.New(1)
	rf := NewRegisterFile(1 << 20)
	// Program: recirculate 3 times (tracked in U[0]), then forward out the
	// ingress port.
	p := NewPipeline("recirc", nil, PipelineConfig{MaxRecirc: 10})
	if err := p.AddStage("loop", func(c *Ctx) {
		if c.U[0] < 3 {
			c.U[0]++
			c.Recirculate()
			return
		}
		c.Forward(c.InPort)
	}); err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(p, rf)
	h := &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h)
	nw.Connect(100, 1, netsim.LinkConfig{})
	nw.Send(1, 0, ethFrame(2, 1, nil))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 1 {
		t.Fatalf("frames %d", len(h.frames))
	}
	if sw.Counters.Recirculated != 3 {
		t.Fatalf("recirc count %d", sw.Counters.Recirculated)
	}

	// Now a program that recirculates forever: must hit the bound.
	nw2 := netsim.New(1)
	p2 := NewPipeline("hot", nil, PipelineConfig{MaxRecirc: 5})
	_ = p2.AddStage("spin", func(c *Ctx) { c.Recirculate() })
	sw2 := NewSwitch(p2, NewRegisterFile(1<<20))
	h2 := &captureHost{}
	nw2.AddNode(100, sw2)
	nw2.AddNode(1, h2)
	nw2.Connect(100, 1, netsim.LinkConfig{})
	nw2.Send(1, 0, ethFrame(2, 1, nil))
	if err := nw2.Run(0); err != nil {
		t.Fatal(err)
	}
	if sw2.Counters.DropsRecirc != 1 {
		t.Fatalf("counters %+v", sw2.Counters)
	}
}

func TestSwitchEmitGeneratesPackets(t *testing.T) {
	nw := netsim.New(1)
	p := NewPipeline("gen", nil, PipelineConfig{})
	_ = p.AddStage("emit", func(c *Ctx) {
		// Generate two packets, then drop the trigger.
		for i := 0; i < 2; i++ {
			f := make([]byte, 8)
			binary.BigEndian.PutUint64(f, uint64(i))
			c.Emit(c.InPort, f)
		}
		c.Drop()
	})
	sw := NewSwitch(p, NewRegisterFile(1<<20))
	h := &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h)
	nw.Connect(100, 1, netsim.LinkConfig{})
	nw.Send(1, 0, ethFrame(2, 1, nil))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 2 {
		t.Fatalf("frames %d", len(h.frames))
	}
	if sw.Counters.Emitted != 2 || sw.Counters.DropsProgram != 1 {
		t.Fatalf("counters %+v", sw.Counters)
	}
}

func TestSwitchOpBudgetViolationCounted(t *testing.T) {
	nw := netsim.New(1)
	rf := NewRegisterFile(1 << 20)
	r, _ := rf.AllocRegister("r", 8, 1)
	p := NewPipeline("hog", nil, PipelineConfig{OpBudget: 10})
	_ = p.AddStage("burn", func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.RegWrite(r, 0, uint64(i))
		}
		c.Forward(0)
	})
	sw := NewSwitch(p, rf)
	h := &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h)
	nw.Connect(100, 1, netsim.LinkConfig{})
	nw.Send(1, 0, ethFrame(2, 1, nil))
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if sw.Counters.DropsBudget != 1 || len(h.frames) != 0 {
		t.Fatalf("counters %+v frames %d", sw.Counters, len(h.frames))
	}
}

func TestPipelineStageLimit(t *testing.T) {
	p := NewPipeline("deep", nil, PipelineConfig{MaxStages: 2})
	if err := p.AddStage("a", func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage("b", func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage("c", func(*Ctx) {}); err == nil {
		t.Fatal("want stage-limit error")
	}
}

func TestCtxHashPrimitives(t *testing.T) {
	var c Ctx
	c.reset(nil, 0, 100, 300)
	h1 := c.Hash([]byte("k"))
	h2 := c.Hash([]byte("k"))
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	idx := c.HashIndex([]byte("k"), 128)
	if idx < 0 || idx >= 128 {
		t.Fatalf("index %d", idx)
	}
	c.HashIndex([]byte("k"), 0)
	if c.Err() == nil {
		t.Fatal("want error for size 0")
	}
}

func TestCtxWriteFrame(t *testing.T) {
	var c Ctx
	c.reset([]byte{1, 2, 3, 4}, 0, 100, 300)
	c.WriteFrame(1, []byte{9, 9})
	if c.frame[1] != 9 || c.frame[2] != 9 || c.frame[0] != 1 {
		t.Fatalf("frame %v", c.frame)
	}
	c.WriteFrame(3, []byte{7, 7})
	if c.Err() == nil {
		t.Fatal("want out-of-bounds error")
	}
}

func TestSwitchTracing(t *testing.T) {
	nw := netsim.New(1)
	fwd := NewTable("fwd", MatchExact)
	sw := NewSwitch(buildFwdPipeline(t, fwd), NewRegisterFile(1<<20))
	sw.Trace = trace.NewRing(64)
	h1, h2 := &captureHost{}, &captureHost{}
	nw.AddNode(100, sw)
	nw.AddNode(1, h1)
	nw.AddNode(2, h2)
	nw.Connect(100, 1, netsim.LinkConfig{})
	p2, _ := nw.Connect(100, 2, netsim.LinkConfig{})
	mac2 := wire.MACFromNode(2)
	_ = fwd.AddExact(mac2[:], Entry{Action: func(c *Ctx, p []uint64) { c.Forward(int(p[0])) }, Params: []uint64{uint64(p2)}})

	nw.Send(1, 0, ethFrame(2, 1, []byte("traced")))
	nw.Send(1, 0, ethFrame(9, 1, nil)) // miss -> drop
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	events := sw.Trace.Snapshot()
	var kinds []trace.Kind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
		if ev.Node != 100 {
			t.Fatalf("wrong node in event %+v", ev)
		}
	}
	want := []trace.Kind{trace.KindRx, trace.KindTx, trace.KindRx, trace.KindDrop}
	if len(kinds) != len(want) {
		t.Fatalf("events %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: %v want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}
