// Package dataplane models an RMT-style programmable switch ASIC in the
// spirit of Bosshart et al.'s "Forwarding Metamorphosis" and the Tofino
// chip the paper targets: a programmable parser followed by a multi-stage
// match-action pipeline with stateful register arrays and hard resource
// limits.
//
// The paper's §2 ("Judicious network computing") enumerates the constraints
// that shaped DAIET, and this package enforces every one of them at run
// time rather than trusting programs to behave:
//
//   - Limited memory size: registers are allocated from a fixed SRAM budget
//     (tens of MBs on a Tofino-class chip); over-allocation fails loudly.
//   - Limited set of actions: programs act through a restricted execution
//     context (Ctx) whose primitives — header extraction, register access,
//     hashing, simple ALU work — are individually metered.
//   - Few operations per packet: each pipeline pass has an operation
//     budget; exceeding it drops the packet and increments a violation
//     counter, the simulator's analogue of failing to compile to hardware.
//   - No loops: a table can be applied at most once per packet per pass
//     (P4's constraint, paper §5(i)); bounded recirculation is the only way
//     to iterate, and it costs forwarding capacity like the paper says.
package dataplane

import (
	"fmt"
)

// RegisterFile owns the stateful memory of one switch, allocated against an
// SRAM budget.
type RegisterFile struct {
	budgetBytes int
	usedBytes   int
	u64s        map[string]*Register
	bytesRegs   map[string]*ByteRegister
}

// NewRegisterFile creates a file with the given SRAM budget in bytes. The
// paper's sizing example (§5) puts a reasonable hardware budget at ~10 MB.
func NewRegisterFile(budgetBytes int) *RegisterFile {
	return &RegisterFile{
		budgetBytes: budgetBytes,
		u64s:        make(map[string]*Register),
		bytesRegs:   make(map[string]*ByteRegister),
	}
}

// Used returns the bytes currently allocated.
func (rf *RegisterFile) Used() int { return rf.usedBytes }

// Budget returns the total SRAM budget in bytes.
func (rf *RegisterFile) Budget() int { return rf.budgetBytes }

func (rf *RegisterFile) reserve(name string, n int) error {
	if rf.usedBytes+n > rf.budgetBytes {
		return fmt.Errorf("dataplane: register %q needs %d B but only %d of %d B remain",
			name, n, rf.budgetBytes-rf.usedBytes, rf.budgetBytes)
	}
	rf.usedBytes += n
	return nil
}

// Register is an array of integer cells, width 1..8 bytes each. Values are
// masked to the cell width on write, like hardware would truncate.
type Register struct {
	Name  string
	Width int // bytes per cell
	Cells []uint64
	mask  uint64
}

// AllocRegister allocates an integer register array. Width must be 1..8.
func (rf *RegisterFile) AllocRegister(name string, width, count int) (*Register, error) {
	if width < 1 || width > 8 {
		return nil, fmt.Errorf("dataplane: register %q width %d outside 1..8", name, width)
	}
	if count < 1 {
		return nil, fmt.Errorf("dataplane: register %q count %d < 1", name, count)
	}
	if _, dup := rf.u64s[name]; dup {
		return nil, fmt.Errorf("dataplane: duplicate register %q", name)
	}
	if err := rf.reserve(name, width*count); err != nil {
		return nil, err
	}
	mask := ^uint64(0)
	if width < 8 {
		mask = (1 << (8 * width)) - 1
	}
	r := &Register{Name: name, Width: width, Cells: make([]uint64, count), mask: mask}
	rf.u64s[name] = r
	return r, nil
}

// Len returns the number of cells.
func (r *Register) Len() int { return len(r.Cells) }

// ByteRegister is an array of fixed-width byte cells (for keys).
type ByteRegister struct {
	Name  string
	Width int // bytes per cell
	data  []byte
	count int
}

// AllocByteRegister allocates a byte register array.
func (rf *RegisterFile) AllocByteRegister(name string, width, count int) (*ByteRegister, error) {
	if width < 1 {
		return nil, fmt.Errorf("dataplane: byte register %q width %d < 1", name, width)
	}
	if count < 1 {
		return nil, fmt.Errorf("dataplane: byte register %q count %d < 1", name, count)
	}
	if _, dup := rf.bytesRegs[name]; dup {
		return nil, fmt.Errorf("dataplane: duplicate byte register %q", name)
	}
	if err := rf.reserve(name, width*count); err != nil {
		return nil, err
	}
	r := &ByteRegister{Name: name, Width: width, data: make([]byte, width*count), count: count}
	rf.bytesRegs[name] = r
	return r, nil
}

// Len returns the number of cells.
func (r *ByteRegister) Len() int { return r.count }

// cell returns the storage for cell i; callers are the metered Ctx
// primitives.
func (r *ByteRegister) cell(i int) []byte {
	off := i * r.Width
	return r.data[off : off+r.Width]
}

// Cell exposes cell i for control-plane access (P4Runtime-style register
// reads), mirroring how Register.Cells is reachable out of band. Dataplane
// programs must keep using the metered Ctx primitives.
func (r *ByteRegister) Cell(i int) []byte {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("dataplane: control-plane read of %s[%d] (len %d)", r.Name, i, r.count))
	}
	return r.cell(i)
}

// Free releases a register by name (both kinds), returning its bytes to the
// budget. Unknown names are no-ops; freeing is used when jobs are torn down.
func (rf *RegisterFile) Free(name string) {
	if r, ok := rf.u64s[name]; ok {
		rf.usedBytes -= r.Width * len(r.Cells)
		delete(rf.u64s, name)
	}
	if r, ok := rf.bytesRegs[name]; ok {
		rf.usedBytes -= r.Width * r.count
		delete(rf.bytesRegs, name)
	}
}
