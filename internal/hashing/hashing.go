// Package hashing provides the key-hashing primitives shared by the DAIET
// dataplane program and the end-host library.
//
// The paper (§4) hashes each key to an index into the per-tree key/value
// register arrays ("a hash function is used to convert a key to an index in
// the array", with single-slot buckets and a spillover queue on collision).
// Programmable switch ASICs expose cheap non-cryptographic hashes (CRC
// variants); we model that with FNV-1a, which has the same cost/quality
// class and is trivially expressible in match-action hardware.
package hashing

// FNV-1a constants (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNV1a64 returns the 64-bit FNV-1a hash of b.
func FNV1a64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// FNV1a32 returns the 32-bit FNV-1a hash of b. The 32-bit variant is what a
// P4 target's hash extern typically produces.
func FNV1a32(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// Index maps key bytes into [0, size). size must be > 0; Index panics
// otherwise because a zero-sized register array is a programming error that
// must fail loudly at configuration time, not corrupt state at run time.
func Index(key []byte, size int) int {
	if size <= 0 {
		panic("hashing: Index with non-positive size")
	}
	return int(FNV1a64(key) % uint64(size))
}

// Mix64 is a cheap integer finalizer (SplitMix64) used wherever the
// simulator needs to derive independent sub-seeds from one experiment seed.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ECMPPick selects one of n equal-cost paths from flow-identifying bytes,
// mirroring how a switch hashes the 5-tuple onto a next hop. n must be > 0.
func ECMPPick(flowKey []byte, n int) int {
	if n <= 0 {
		panic("hashing: ECMPPick with non-positive n")
	}
	return int(FNV1a32(flowKey) % uint32(n))
}
