package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFNVKnownVectors(t *testing.T) {
	// Standard FNV-1a test vectors.
	cases := []struct {
		in  string
		h32 uint32
		h64 uint64
	}{
		{"", 2166136261, 14695981039346656037},
		{"a", 0xe40c292c, 0xaf63dc4c8601ec8c},
		{"foobar", 0xbf9cf968, 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := FNV1a32([]byte(c.in)); got != c.h32 {
			t.Errorf("FNV1a32(%q) = %#x want %#x", c.in, got, c.h32)
		}
		if got := FNV1a64([]byte(c.in)); got != c.h64 {
			t.Errorf("FNV1a64(%q) = %#x want %#x", c.in, got, c.h64)
		}
	}
}

func TestIndexInRangeProperty(t *testing.T) {
	f := func(key []byte, rawSize uint16) bool {
		size := int(rawSize%16384) + 1
		idx := Index(key, size)
		return idx >= 0 && idx < size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDeterministic(t *testing.T) {
	key := []byte("hello")
	if Index(key, 1024) != Index(key, 1024) {
		t.Fatal("Index must be deterministic")
	}
}

func TestIndexPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for size 0")
		}
	}()
	Index([]byte("x"), 0)
}

func TestECMPPickInRange(t *testing.T) {
	f := func(key []byte, rawN uint8) bool {
		n := int(rawN%64) + 1
		p := ECMPPick(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestECMPPickPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for n 0")
		}
	}()
	ECMPPick([]byte("x"), 0)
}

func TestMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 must be deterministic")
	}
}

func TestCollisionFreeVocabulary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, tableSize = 2000, 16384
	words, err := CollisionFreeVocabulary(rng, n, 16, 16, tableSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != n {
		t.Fatalf("want %d words, got %d", n, len(words))
	}
	seenWord := map[string]bool{}
	seenIdx := map[int]bool{}
	for _, w := range words {
		if len(w) == 0 || len(w) > 16 {
			t.Fatalf("word length out of range: %q", w)
		}
		if seenWord[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seenWord[w] = true
		idx := Index(PadKey([]byte(w), 16), tableSize)
		if seenIdx[idx] {
			t.Fatalf("hash collision for %q at %d", w, idx)
		}
		seenIdx[idx] = true
	}
}

func TestPadKey(t *testing.T) {
	p := PadKey([]byte("ab"), 4)
	if len(p) != 4 || p[0] != 'a' || p[1] != 'b' || p[2] != 0 || p[3] != 0 {
		t.Fatalf("pad %v", p)
	}
	full := []byte("abcd")
	if got := PadKey(full, 4); &got[0] != &full[0] {
		t.Fatal("full-width key must be returned as-is")
	}
	if got := PadKey([]byte("abcde"), 4); len(got) != 5 {
		t.Fatal("over-width key must be unchanged")
	}
}

func TestCollisionFreeVocabularyRejectsOverfull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := CollisionFreeVocabulary(rng, 10, 16, 16, 5); err == nil {
		t.Fatal("want error when n > tableSize")
	}
	if _, err := CollisionFreeVocabulary(rng, 10, 0, 16, 100); err == nil {
		t.Fatal("want error when maxLen < 1")
	}
}

func TestCollisionFreeVocabularyDeterministicPerSeed(t *testing.T) {
	a, err := CollisionFreeVocabulary(rand.New(rand.NewSource(3)), 100, 12, 16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollisionFreeVocabulary(rand.New(rand.NewSource(3)), 100, 12, 16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vocabulary not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestRandomWordShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		w := RandomWord(rng, 16)
		if len(w) < 3 || len(w) > 16 {
			t.Fatalf("word length %d out of [3,16]", len(w))
		}
		for _, c := range w {
			if c < 'a' || c > 'z' {
				t.Fatalf("unexpected rune %q in %q", c, w)
			}
		}
	}
	// maxLen below the usual minimum still works.
	if w := RandomWord(rng, 2); len(w) != 2 {
		t.Fatalf("maxLen=2 word: %q", w)
	}
}
