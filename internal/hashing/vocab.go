package hashing

import (
	"fmt"
	"math/rand"
)

// PadKey zero-pads key on the right to width bytes, the representation a
// fixed-size-key dataplane hashes and compares. Keys already at or beyond
// width are returned unchanged (callers enforce their own length limits).
func PadKey(key []byte, width int) []byte {
	if len(key) >= width {
		return key
	}
	p := make([]byte, width)
	copy(p, key)
	return p
}

// CollisionFreeVocabulary generates n distinct words (each at most maxLen
// bytes, lowercase letters) whose register indices under Index(·, tableSize)
// are pairwise distinct. The paper's evaluation input is "a 500 MB file
// containing random words that are not causing hash collisions" (§5,
// footnote 5: "Our current prototype does not manage collisions"); this
// constructs exactly that kind of corpus vocabulary.
//
// padWidth > 0 hashes each word zero-padded to that many bytes — the exact
// byte string a fixed-size-key switch program hashes — so collision freedom
// holds on the wire, not just in memory.
//
// It fails with an error if n > tableSize or if it cannot place n words
// within a generous retry budget (which only happens when n is very close
// to tableSize).
func CollisionFreeVocabulary(rng *rand.Rand, n, maxLen, padWidth, tableSize int) ([]string, error) {
	if n > tableSize {
		return nil, fmt.Errorf("hashing: %d collision-free words cannot fit a %d-slot table", n, tableSize)
	}
	if maxLen < 1 {
		return nil, fmt.Errorf("hashing: maxLen must be >= 1, got %d", maxLen)
	}
	if padWidth > 0 && maxLen > padWidth {
		return nil, fmt.Errorf("hashing: maxLen %d exceeds padWidth %d", maxLen, padWidth)
	}
	usedIdx := make(map[int]bool, n)
	usedWord := make(map[string]bool, n)
	words := make([]string, 0, n)
	// The retry budget is proportional to n and to the fill factor; for the
	// fill levels the experiments use (<= 100%), random probing converges
	// quickly because every retry resamples an independent word.
	budget := 200*n + 10000
	for len(words) < n {
		if budget == 0 {
			return nil, fmt.Errorf("hashing: gave up placing %d collision-free words into %d slots", n, tableSize)
		}
		budget--
		w := randomWord(rng, maxLen)
		if usedWord[w] {
			continue
		}
		hashed := []byte(w)
		if padWidth > 0 {
			hashed = PadKey(hashed, padWidth)
		}
		idx := Index(hashed, tableSize)
		if usedIdx[idx] {
			continue
		}
		usedWord[w] = true
		usedIdx[idx] = true
		words = append(words, w)
	}
	return words, nil
}

// randomWord samples a word of length 3..maxLen of lowercase letters.
func randomWord(rng *rand.Rand, maxLen int) string {
	minLen := 3
	if maxLen < minLen {
		minLen = maxLen
	}
	n := minLen
	if maxLen > minLen {
		n += rng.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// RandomWord exposes randomWord for workload generators that want the same
// word-shape distribution without the collision-free constraint.
func RandomWord(rng *rand.Rand, maxLen int) string { return randomWord(rng, maxLen) }
