package telemetry

import (
	"encoding/binary"
	"sort"

	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/wire"
)

// INT-style path tracing: a seeded, bounded sample of frames carries a
// per-hop record through the fabric. The sampling decision is a pure
// function of frame CONTENT (the DAIET tree/seq identity when the frame is
// a DAIET packet, the Ethernet addresses otherwise), so a frame sampled at
// its first hop is sampled at every hop it transits unmodified — the
// records at successive switches stitch into a path, which is what the
// INT data plane does with its per-hop metadata stack, minus the extra
// header bytes (our "header" is the deterministic sampling rule itself).

// PathTraceConfig sizes the frame sampler.
type PathTraceConfig struct {
	// SampleEvery selects roughly one flow in SampleEvery (0 disables
	// tracing entirely — the hot path then never sees the sampler).
	SampleEvery uint64
	// Seed perturbs the sampling hash so repeated runs can sample
	// different flow subsets while each run stays deterministic.
	Seed uint64
	// Capacity is each node's hop-slab budget in records (default 2048).
	// Slabs are sticky: the first Capacity sampled hops are kept, later
	// ones counted as dropped — a fixed, gated memory budget per node.
	Capacity int
}

func (c PathTraceConfig) withDefaults() PathTraceConfig {
	if c.Capacity == 0 {
		c.Capacity = 2048
	}
	return c
}

// pathTracer implements netsim.FrameTracer. Hop slabs are preallocated
// per node before the run starts and the node→slab map is read-only
// afterwards, so concurrent TraceFrame calls from different partition
// domains touch disjoint slabs — the arena ownership rule applied to
// telemetry: each record lives in storage owned by the domain that wrote
// it, and merging happens only at quiescence.
type pathTracer struct {
	cfg     PathTraceConfig
	slabs   map[netsim.NodeID]*series
	ordered []*series // ascending node ID, for stable iteration
}

func newPathTracer(cfg PathTraceConfig, nodes []netsim.NodeID) *pathTracer {
	cfg = cfg.withDefaults()
	ids := append([]netsim.NodeID(nil), nodes...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t := &pathTracer{cfg: cfg, slabs: make(map[netsim.NodeID]*series, len(ids))}
	for _, id := range ids {
		if _, dup := t.slabs[id]; dup {
			continue
		}
		s := newSeries(hopOriginBase|uint64(id), cfg.Capacity, true)
		t.slabs[id] = s
		t.ordered = append(t.ordered, s)
	}
	return t
}

// TraceFrame samples one admission attempt. Runs inline on the send path
// inside the transmitting node's domain; it only reads the frame's header
// bytes and appends to the transmitting node's own slab.
func (t *pathTracer) TraceFrame(info netsim.FrameTraceInfo, frame []byte) {
	if hashing.Mix64(t.cfg.Seed^flowKey(frame))%t.cfg.SampleEvery != 0 {
		return
	}
	s := t.slabs[info.Src]
	if s == nil {
		return // untracked hop (e.g. a sender's NIC when only switches are traced)
	}
	depth := info.PoolUsedBytes
	if depth < 0 {
		depth = info.QueuedBytes
	}
	s.append(Record{
		At:   info.At,
		Kind: KindHop,
		Node: info.Src,
		K:    int32(info.Class),
		V0:   int64(info.Dst),
		V1:   int64(info.DstPort),
		V2:   int64(depth),
		V3:   int64(info.Size),
		V4:   int64(info.Verdict),
	})
}

// daietOffset is where the DAIET header starts in a standard frame:
// Ethernet, then option-less IPv4, then UDP.
const daietOffset = wire.EthernetHeaderLen + wire.IPv4HeaderLen + wire.UDPHeaderLen

// flowKey derives the sampling identity from frame content alone, so the
// same frame hashes identically at every hop. DAIET packets key on
// (tree, sequence, type) — the aggregation protocol's own flow identity,
// stable across spine transit and ACK reflection. Anything else keys on
// the Ethernet address pair and length, which at least stays stable for
// unmodified forwards. Top bit separates the two namespaces.
func flowKey(frame []byte) uint64 {
	if len(frame) >= daietOffset+wire.DaietHeaderLen &&
		binary.BigEndian.Uint16(frame[12:14]) == wire.EtherTypeIPv4 &&
		frame[wire.EthernetHeaderLen+9] == wire.ProtocolUDP &&
		binary.BigEndian.Uint16(frame[36:38]) == wire.UDPPortDaiet &&
		binary.BigEndian.Uint16(frame[daietOffset:daietOffset+2]) == wire.DaietMagic {
		tree := binary.BigEndian.Uint32(frame[daietOffset+4 : daietOffset+8])
		seq := binary.BigEndian.Uint32(frame[daietOffset+8 : daietOffset+12])
		typ := frame[daietOffset+3]
		return uint64(tree)<<40 | uint64(seq)<<8 | uint64(typ)
	}
	if len(frame) >= wire.EthernetHeaderLen {
		mac := binary.BigEndian.Uint64(frame[0:8]) ^ uint64(binary.BigEndian.Uint32(frame[8:12]))<<17
		return 1<<63 | mac&^(1<<63) ^ uint64(len(frame))
	}
	return 1<<63 | uint64(len(frame))
}
