package telemetry

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
)

// Config sizes one Recorder.
type Config struct {
	// Cadence is the node-probe sampling period in virtual time (default
	// 50µs): each watched switch samples its own pool, ports and trees on
	// its own domain clock every Cadence ticks.
	Cadence netsim.Time
	// ControlEvery is the RunSampled control-point period (default
	// 10×Cadence): the driver runs the fabric in RunUntil windows of this
	// width and takes one quiescent control-plane sample per window.
	ControlEvery netsim.Time
	// Capacity is each probe stream's ring capacity in records (default
	// 4096). Overflow overwrites the oldest records and is counted.
	Capacity int
	// PathTrace configures INT-style frame sampling; the zero value
	// disables it.
	PathTrace PathTraceConfig
}

func (c Config) withDefaults() Config {
	if c.Cadence == 0 {
		c.Cadence = netsim.Duration(50 * time.Microsecond)
	}
	if c.ControlEvery == 0 {
		c.ControlEvery = 10 * c.Cadence
	}
	if c.Capacity == 0 {
		c.Capacity = 4096
	}
	c.PathTrace = c.PathTrace.withDefaults()
	return c
}

// probe is one watched switch: a record stream written exclusively by the
// node's own timer callbacks, so it is domain-confined by the same
// scheduling-confinement contract node logic obeys, and its contents are
// partition-invariant because the node's state at its own virtual time is.
type probe struct {
	rec    *Recorder
	id     netsim.NodeID
	prog   *core.Program
	trees  []uint32 // snapshot at Start, ascending
	nPorts int
	lastTx []uint64 // per-port accepted frames at the previous sample
	lastDr []uint64 // per-port dropped frames at the previous sample
	s      *series
}

// Recorder is the telemetry subsystem's front end: it owns every record
// stream (probes, control, hop slabs), arms the probe timers, and drives
// sampled runs. All buffers are preallocated at registration time; the
// steady-state sampling path appends into rings.
type Recorder struct {
	cfg    Config
	nw     *netsim.Network
	probes []*probe
	byNode map[netsim.NodeID]*probe

	control *series
	engine  []EngineSample
	tracer  *pathTracer

	// stopped is set (at a quiescent control point) once the workload has
	// drained: probe timers observe it and stop re-arming, letting the
	// fabric reach Pending() == 0. Written only while no domain goroutine
	// runs; read from node callbacks.
	stopped bool
	started bool
}

// EngineSample is one control-point engine-diagnostics reading. It is the
// timeline's deliberately cut-DEPENDENT section: arena occupancy and the
// synchronization counters are per-domain state that changes with the cut,
// the protocol and the re-cut schedule, so these samples are excluded from
// the byte-identity comparison, exactly as the figure framework excludes
// Volatile metrics. For a fixed configuration every field is nonetheless
// deterministic.
type EngineSample struct {
	At        netsim.Time
	Domains   int
	FrameLive int
	FramePeak int
	TimerPeak int
	Bytes     int64
	Recuts    uint64

	// Cumulative synchronization diagnostics of the partitioned engine
	// (netsim.SyncStats): coordinator barriers, dispatched and idle
	// execution windows, and the mean bounded-window width so far.
	Barriers    uint64
	Windows     uint64
	IdleWindows uint64
	MeanHorizon netsim.Time
}

// NewRecorder creates a recorder over nw. Watch switches and enable path
// tracing before Start; Start before traffic runs.
func NewRecorder(nw *netsim.Network, cfg Config) *Recorder {
	return &Recorder{
		cfg:     cfg.withDefaults(),
		nw:      nw,
		byNode:  make(map[netsim.NodeID]*probe),
		control: newSeries(0, cfg.withDefaults().Capacity, false),
	}
}

// Config returns the recorder's effective (defaulted) configuration.
func (r *Recorder) Config() Config { return r.cfg }

// WatchSwitch registers node id for cadence probing. prog, when non-nil,
// adds per-tree register-residency samples. Must be called after the
// node's links are connected (the port set is snapshotted here) and
// before Start.
func (r *Recorder) WatchSwitch(id netsim.NodeID, prog *core.Program) error {
	if r.started {
		return fmt.Errorf("telemetry: WatchSwitch(%d) after Start", id)
	}
	if _, dup := r.byNode[id]; dup {
		return fmt.Errorf("telemetry: node %d already watched", id)
	}
	n := r.nw.NumPorts(id)
	p := &probe{
		rec:    r,
		id:     id,
		prog:   prog,
		nPorts: n,
		lastTx: make([]uint64, n),
		lastDr: make([]uint64, n),
		s:      newSeries(uint64(id), r.cfg.Capacity, false),
	}
	r.probes = append(r.probes, p)
	r.byNode[id] = p
	return nil
}

// EnablePathTrace installs the INT-style frame sampler over the given
// nodes (typically the fabric's switches), preallocating one hop slab per
// node. No-op when Config.PathTrace.SampleEvery is zero. Must run before
// Start and before any traffic.
func (r *Recorder) EnablePathTrace(nodes []netsim.NodeID) {
	if r.cfg.PathTrace.SampleEvery == 0 || len(nodes) == 0 {
		return
	}
	r.tracer = newPathTracer(r.cfg.PathTrace, nodes)
	r.nw.SetFrameTracer(r.tracer)
}

// Start snapshots each watched program's tree set and arms every probe's
// first timer. Call from setup context (before Run), after trees are
// installed.
func (r *Recorder) Start() {
	if r.started {
		return
	}
	r.started = true
	for _, p := range r.probes {
		if p.prog != nil {
			p.trees = p.prog.Trees()
		}
		r.nw.NodeAfter(p.id, r.cfg.Cadence, p.tick)
	}
}

// tick is one probe firing: sample, then re-arm — unless the recorder has
// been stopped, which ends the timer chain so the fabric can drain.
func (p *probe) tick() {
	if p.rec.stopped {
		return
	}
	p.sample()
	p.rec.nw.NodeAfter(p.id, p.rec.cfg.Cadence, p.tick)
}

// sample reads the node's pool, ports and trees at its own virtual time.
// Everything read here is owned by the node's domain; nothing crosses a
// domain boundary.
func (p *probe) sample() {
	nw := p.rec.nw
	now := nw.NodeNow(p.id)
	if ps, ok := nw.NodePoolStats(p.id); ok {
		p.s.append(Record{At: now, Kind: KindPool, Node: p.id,
			V0: int64(ps.Used), V1: int64(ps.Committed), V2: int64(ps.HighWater), V3: int64(ps.Drops)})
		for c, cs := range ps.Classes {
			p.s.append(Record{At: now, Kind: KindClass, Node: p.id, K: int32(c),
				V0: int64(cs.Used), V1: int64(cs.HighWater), V2: int64(cs.Drops), V3: int64(cs.ReserveBytes)})
		}
	}
	for port := 0; port < p.nPorts; port++ {
		depth := nw.NodeQueueDepth(p.id, port)
		st := nw.NodePortStats(p.id, port)
		tx := st.TxFrames
		dr := st.DropsPool + st.DropsFull + st.DropsLoss + st.DropsDown
		p.s.append(Record{At: now, Kind: KindPort, Node: p.id, K: int32(port),
			V0: int64(depth), V1: int64(tx - p.lastTx[port]), V2: int64(dr - p.lastDr[port]), V3: int64(tx)})
		p.lastTx[port], p.lastDr[port] = tx, dr
	}
	if p.prog != nil {
		for _, tid := range p.trees {
			res, ok := p.prog.TreeResidency(tid)
			if !ok {
				continue // tree removed (failover re-planning)
			}
			st, _ := p.prog.TreeStats(tid)
			p.s.append(Record{At: now, Kind: KindTree, Node: p.id, K: int32(tid),
				V0: int64(res.Cells), V1: int64(res.SpillPairs), V2: int64(res.ReplayLen),
				V3: int64(st.FlushPacketsOut), V4: int64(st.RootRetransmissions)})
		}
	}
}

// SampleControl takes one control-point sample. Call only while the
// fabric is quiescent (before Run, at a RunUntil control point, or after
// Run); RunSampled calls it once per window. Pending and Processed at a
// quiescent deadline are mode-invariant, so the control stream stays in
// the deterministic section; the arena gauges go to the engine section.
func (r *Recorder) SampleControl() {
	now := r.nw.Now()
	r.control.append(Record{At: now, Kind: KindControl,
		V0: int64(r.nw.Pending()), V1: int64(r.nw.Processed())})
	as := r.nw.ArenaStats()
	ss := r.nw.SyncStats()
	r.engine = append(r.engine, EngineSample{
		At:          now,
		Domains:     r.nw.Domains(),
		FrameLive:   as.FrameLive,
		FramePeak:   as.FramePeak,
		TimerPeak:   as.TimerPeak,
		Bytes:       as.Bytes,
		Recuts:      r.nw.Recuts(),
		Barriers:    ss.Barriers,
		Windows:     ss.Windows,
		IdleWindows: ss.IdleWindows,
		MeanHorizon: ss.MeanHorizon(),
	})
}

// ControlEvent appends one labelled control-plane record (fault
// injections, job-driver decisions) at virtual time now. Quiescent
// context only.
func (r *Recorder) ControlEvent(now netsim.Time, note string, node netsim.NodeID, v0 int64) {
	r.control.append(Record{At: now, Kind: KindControl, Node: node, V0: v0, Note: note})
}

// ObserveMonitor subscribes the recorder to a controller liveness
// monitor: every Poll observation (dead/restarted switches, dead/revived/
// flapped links) becomes a KindMonitor record. Poll runs only at
// quiescent control points, so the records join the control stream.
func (r *Recorder) ObserveMonitor(m *controller.Monitor) {
	m.SetObserver(func(now netsim.Time, ev controller.MonitorEvent) {
		r.control.append(Record{At: now, Kind: KindMonitor, Node: ev.A,
			V0: int64(ev.B), Note: ev.Kind})
	})
}

// RunSampled drives the network to completion in ControlEvery windows,
// taking one control sample per window, then winds the probe timers down
// and drains the fabric. maxEvents bounds the total executed event count
// like Network.Run, enforced at window granularity. The recorder must be
// Started.
func (r *Recorder) RunSampled(maxEvents uint64) error {
	if !r.started {
		return fmt.Errorf("telemetry: RunSampled before Start")
	}
	nw := r.nw
	deadline := nw.Now()
	for {
		deadline += r.cfg.ControlEvery
		if err := nw.RunUntil(deadline); err != nil {
			return err
		}
		r.SampleControl()
		if maxEvents > 0 && nw.Processed() >= maxEvents && nw.Pending() > len(r.probes) {
			return fmt.Errorf("telemetry: event budget %d exhausted at t=%v (%d pending)",
				maxEvents, nw.Now(), nw.Pending())
		}
		if nw.Pending() <= len(r.probes) {
			// Every remaining event is a probe timer (each watched node
			// keeps exactly one outstanding until stopped): the workload
			// has drained. Stop the chains and let the fabric empty.
			r.stopped = true
			if err := nw.Run(0); err != nil {
				return err
			}
			r.SampleControl()
			return nil
		}
	}
}

// Timeline merges every deterministic stream — probes in watch order, the
// control stream, and the hop slabs — into (At, Origin, Seq) order and
// attaches the engine-diagnostics section.
func (r *Recorder) Timeline() *Timeline {
	total := len(r.control.buf)
	for _, p := range r.probes {
		total += len(p.s.buf)
	}
	var dropped uint64 = r.control.dropped
	recs := make([]Record, 0, total)
	recs = r.control.snapshot(recs)
	for _, p := range r.probes {
		recs = p.s.snapshot(recs)
		dropped += p.s.dropped
	}
	if r.tracer != nil {
		for _, s := range r.tracer.ordered {
			recs = s.snapshot(recs)
			dropped += s.dropped
		}
	}
	sortRecords(recs)
	return &Timeline{
		Cadence: r.cfg.Cadence,
		Records: recs,
		Dropped: dropped,
		Engine:  append([]EngineSample(nil), r.engine...),
	}
}
