// Package telemetry is the simulator's deterministic observability layer:
// sim-time probes sampled on a fixed virtual-clock cadence, INT-style
// sampled per-frame path records, and a merged timeline export — the
// time-resolved view the end-of-run snapshot counters (PoolStats,
// LinkStats, TreeStats) cannot give.
//
// Everything here obeys the engine's determinism contract. Records are
// keyed (At, Origin, Seq) exactly like simulator events: At is virtual
// time, Origin names the deterministic stream that produced the record (a
// node's probe, a node's hop sampler, or origin 0 for control-plane
// samples), and Seq is that stream's own counter. Each stream's contents
// depend only on its node's causal history — never on the global
// interleaving of domain goroutines — so the merged timeline is
// byte-identical at any -sim-workers value and under any re-cut schedule
// (the conformance tests in internal/experiments assert it). The one
// cut-dependent quantity, per-domain arena occupancy, lives in a separate
// engine-diagnostics section excluded from the determinism comparison,
// mirroring the Volatile-metrics convention of the figure framework.
package telemetry

import (
	"fmt"

	"github.com/daiet/daiet/internal/netsim"
)

// Kind classifies one timeline record.
type Kind uint8

const (
	// KindPool is one node's shared-pool gauge: V0 used bytes, V1
	// committed bytes, V2 high-water, V3 cumulative pool drops.
	KindPool Kind = iota
	// KindClass is one (node, class) gauge, K = class index: V0 used
	// bytes, V1 class high-water, V2 cumulative class drops, V3 the
	// class's hard-carved reserve.
	KindClass
	// KindPort is one (node, port) transmit gauge, K = port: V0 queue
	// depth in bytes, V1 frames accepted since the previous sample, V2
	// frames dropped since the previous sample, V3 cumulative accepted.
	KindPort
	// KindTree is one (node, tree) aggregation gauge, K = tree ID: V0
	// occupied register cells, V1 spillover-bucket pairs, V2 retained
	// replay packets, V3 cumulative flush packets out, V4 cumulative
	// replay retransmissions.
	KindTree
	// KindControl is a control-point sample at a fabric-quiescent moment:
	// V0 pending events, V1 total events processed.
	KindControl
	// KindMonitor is a controller liveness/failover observation: Node and
	// V0 name the component (switch, or link endpoints), Note the event.
	KindMonitor
	// KindHop is one sampled frame's admission attempt at a transmit
	// port, K = traffic class: V0 destination node, V1 destination port,
	// V2 queue/pool depth at admission, V3 frame size, V4 the
	// netsim.FrameVerdict.
	KindHop
)

var kindNames = [...]string{"pool", "class", "port", "tree", "control", "monitor", "hop"}

// String renders the kind's timeline token.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// parseKind inverts String for the timeline reader.
func parseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown record kind %q", s)
}

// hopOriginBase offsets hop-stream origins above the 24-bit node ID space
// so a node's hop sampler and its probe merge as distinct streams (probe
// origin = node ID, control origin = 0).
const hopOriginBase uint64 = 1 << 32

// Record is one timeline entry. Fixed-shape by design: five value slots
// whose meaning the Kind pins down, so the whole probe path appends into
// preallocated rings without per-sample indirection.
type Record struct {
	At     netsim.Time
	Origin uint64
	Seq    uint64
	Kind   Kind
	Node   netsim.NodeID
	K      int32 // class / port / tree discriminator (kind-specific)
	V0     int64
	V1     int64
	V2     int64
	V3     int64
	V4     int64
	Note   string // static label, control/monitor records only
}

// series is one deterministic record stream: a preallocated buffer with a
// per-stream sequence counter. Two retention modes: ring (overwrite the
// oldest record — probe series, where the recent window matters) and
// sticky (keep the first cap records — hop slabs, whose budget is a fixed
// gate and whose ramp-up is the interesting part). Both overflow modes
// are deterministic because the stream itself is.
type series struct {
	origin  uint64
	seq     uint64 // records ever written; the next record's Seq is seq+1
	buf     []Record
	sticky  bool
	dropped uint64
}

func newSeries(origin uint64, capacity int, sticky bool) *series {
	return &series{origin: origin, buf: make([]Record, 0, capacity), sticky: sticky}
}

// append stamps r with the stream's (origin, seq) key and stores it.
func (s *series) append(r Record) {
	s.seq++
	r.Origin, r.Seq = s.origin, s.seq
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, r)
		return
	}
	s.dropped++
	if s.sticky {
		return
	}
	// Ring mode: the slot of the oldest retained record is seq mod cap.
	s.buf[int((s.seq-1)%uint64(len(s.buf)))] = r
}

// snapshot appends the stream's retained records to dst in Seq order.
func (s *series) snapshot(dst []Record) []Record {
	n := len(s.buf)
	if n == 0 {
		return dst
	}
	if s.sticky || s.seq <= uint64(n) {
		return append(dst, s.buf...)
	}
	head := int(s.seq % uint64(n)) // oldest retained record
	dst = append(dst, s.buf[head:]...)
	return append(dst, s.buf[:head]...)
}
