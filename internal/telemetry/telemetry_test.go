package telemetry

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/netsim"
)

func TestSeriesRingOverwritesOldest(t *testing.T) {
	s := newSeries(7, 4, false)
	for i := 1; i <= 6; i++ {
		s.append(Record{V0: int64(i)})
	}
	if s.dropped != 2 {
		t.Fatalf("dropped %d, want 2", s.dropped)
	}
	got := s.snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, r := range got {
		if want := uint64(i + 3); r.Seq != want || r.V0 != int64(want) || r.Origin != 7 {
			t.Fatalf("slot %d: %+v (want seq %d)", i, r, want)
		}
	}
}

func TestSeriesStickyKeepsFirst(t *testing.T) {
	s := newSeries(9, 3, true)
	for i := 1; i <= 5; i++ {
		s.append(Record{V0: int64(i)})
	}
	got := s.snapshot(nil)
	if len(got) != 3 || s.dropped != 2 {
		t.Fatalf("retained %d dropped %d, want 3/2", len(got), s.dropped)
	}
	for i, r := range got {
		if want := uint64(i + 1); r.Seq != want || r.V0 != int64(want) {
			t.Fatalf("slot %d: %+v", i, r)
		}
	}
}

func TestSortRecordsTotalOrder(t *testing.T) {
	recs := []Record{
		{At: 20, Origin: 1, Seq: 1},
		{At: 10, Origin: 2, Seq: 2},
		{At: 10, Origin: 1, Seq: 3},
		{At: 10, Origin: 1, Seq: 1},
	}
	sortRecords(recs)
	want := []Record{
		{At: 10, Origin: 1, Seq: 1},
		{At: 10, Origin: 1, Seq: 3},
		{At: 10, Origin: 2, Seq: 2},
		{At: 20, Origin: 1, Seq: 1},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("order %+v", recs)
	}
}

func TestTimelineRoundTrip(t *testing.T) {
	tl := &Timeline{
		Cadence: 50_000,
		Dropped: 3,
		Records: []Record{
			{At: 1, Origin: 0, Seq: 1, Kind: KindControl, V0: 12, V1: 34},
			{At: 2, Origin: 5, Seq: 1, Kind: KindPool, Node: 5, V0: 100, V1: 200, V2: 300, V3: 4},
			{At: 2, Origin: 5, Seq: 2, Kind: KindClass, Node: 5, K: 1, V0: 10},
			{At: 3, Origin: hopOriginBase | 5, Seq: 1, Kind: KindHop, Node: 5, K: 2, V0: 9, V1: 1, V2: 512, V3: 256, V4: int64(netsim.FrameDropPool)},
			{At: 4, Origin: 0, Seq: 2, Kind: KindMonitor, Node: 7, V0: 8, Note: `link-dead with "spaces"`},
		},
		Engine: []EngineSample{
			{At: 4, Domains: 2, FrameLive: 1, FramePeak: 9, TimerPeak: 3, Bytes: 4096, Recuts: 1,
				Barriers: 17, Windows: 30, IdleWindows: 4, MeanHorizon: 1500},
		},
	}
	var buf bytes.Buffer
	if _, err := tl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tl) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, tl)
	}
	// DeterministicBytes excludes the engine section but keeps the rest.
	det := tl.DeterministicBytes()
	if bytes.Contains(det, []byte("engine ")) {
		t.Fatal("DeterministicBytes contains engine lines")
	}
	stripped := *tl
	stripped.Engine = nil
	if !bytes.Equal(det, stripped.Bytes()) {
		t.Fatal("DeterministicBytes != full render minus engine")
	}
}

// pulseSender drives the recorder integration tests: every interval it
// sends one frame out port 0 until count frames have left.
type pulseSender struct {
	nw       *netsim.Network
	id       netsim.NodeID
	interval netsim.Time
	count    int
	frame    []byte
}

func (p *pulseSender) Attach(nw *netsim.Network, id netsim.NodeID) { p.nw, p.id = nw, id }
func (p *pulseSender) HandleFrame(int, []byte)                     {}
func (p *pulseSender) start() {
	p.nw.NodeAfter(p.id, p.interval, p.tick)
}
func (p *pulseSender) tick() {
	if p.count <= 0 {
		return
	}
	p.count--
	p.nw.Send(p.id, 0, p.frame)
	if p.count > 0 {
		p.nw.NodeAfter(p.id, p.interval, p.tick)
	}
}

// forward relays every frame out port 0.
type forward struct {
	nw *netsim.Network
	id netsim.NodeID
}

func (f *forward) Attach(nw *netsim.Network, id netsim.NodeID) { f.nw, f.id = nw, id }
func (f *forward) HandleFrame(_ int, frame []byte)             { f.nw.Send(f.id, 0, frame) }

type devnull struct{}

func (devnull) Attach(*netsim.Network, netsim.NodeID) {}
func (devnull) HandleFrame(int, []byte)               {}

// probeWorld: sender 10 → pooled switch 1 → sink 2, with a long enough
// pulse train that several probe cadences elapse mid-traffic.
func probeWorld(t *testing.T) (*netsim.Network, *pulseSender) {
	t.Helper()
	nw := netsim.New(1)
	nw.AddNode(1, &forward{})
	nw.AddNode(2, devnull{})
	sender := &pulseSender{interval: netsim.Duration(10 * time.Microsecond),
		count: 100, frame: make([]byte, 512)}
	nw.AddNode(10, sender)
	nw.Connect(1, 2, netsim.LinkConfig{BandwidthBps: 100_000_000}) // port 0: uplink
	nw.Connect(10, 1, netsim.LinkConfig{})
	if err := nw.SetNodePool(1, netsim.PoolConfig{TotalBytes: 1 << 20, ReserveBytes: 4 << 10, Alpha: 2}); err != nil {
		t.Fatal(err)
	}
	return nw, sender
}

func TestRecorderSampledRun(t *testing.T) {
	nw, sender := probeWorld(t)
	rec := NewRecorder(nw, Config{})
	if err := rec.WatchSwitch(1, nil); err != nil {
		t.Fatal(err)
	}
	rec.Start()
	sender.start()
	if err := rec.RunSampled(0); err != nil {
		t.Fatal(err)
	}
	if sender.count != 0 {
		t.Fatalf("sender stalled with %d frames left", sender.count)
	}
	if pending := nw.Pending(); pending != 0 {
		t.Fatalf("%d events pending after RunSampled", pending)
	}
	tl := rec.Timeline()
	counts := map[Kind]int{}
	for i := range tl.Records {
		counts[tl.Records[i].Kind]++
	}
	if counts[KindPool] == 0 || counts[KindPort] == 0 || counts[KindControl] == 0 {
		t.Fatalf("record mix %v", counts)
	}
	if counts[KindClass] != counts[KindPool] {
		t.Fatalf("one-class pool: %d class records vs %d pool records", counts[KindClass], counts[KindPool])
	}
	if len(tl.Engine) < 2 {
		t.Fatalf("%d engine samples", len(tl.Engine))
	}
	// The merged timeline must already be in key order, with unique keys.
	for i := 1; i < len(tl.Records); i++ {
		a, b := &tl.Records[i-1], &tl.Records[i]
		if a.At > b.At || (a.At == b.At && a.Origin > b.Origin) ||
			(a.At == b.At && a.Origin == b.Origin && a.Seq >= b.Seq) {
			t.Fatalf("records %d/%d out of order: %+v then %+v", i-1, i, a, b)
		}
	}
	// A port record's cumulative-tx gauge must end at the frame count.
	var lastTx int64
	for i := range tl.Records {
		r := &tl.Records[i]
		if r.Kind == KindPort && r.Node == 1 && r.K == 0 {
			lastTx = r.V3
		}
	}
	if lastTx != 100 {
		t.Fatalf("final cumulative tx %d, want 100", lastTx)
	}
}

func TestRecorderPathTrace(t *testing.T) {
	nw, sender := probeWorld(t)
	rec := NewRecorder(nw, Config{
		PathTrace: PathTraceConfig{SampleEvery: 1, Capacity: 64},
	})
	if err := rec.WatchSwitch(1, nil); err != nil {
		t.Fatal(err)
	}
	rec.EnablePathTrace([]netsim.NodeID{1})
	rec.Start()
	sender.start()
	if err := rec.RunSampled(0); err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline()
	hops := 0
	for i := range tl.Records {
		r := &tl.Records[i]
		if r.Kind != KindHop {
			continue
		}
		hops++
		if r.Node != 1 || r.Origin != hopOriginBase|1 {
			t.Fatalf("hop record from unexpected origin: %+v", r)
		}
		if r.V0 != 2 || r.V3 != 512 || netsim.FrameVerdict(r.V4) != netsim.FrameAccepted {
			t.Fatalf("hop record %+v", r)
		}
	}
	// SampleEvery 1 samples every flow; the switch relays 64 of the 100
	// frames into the sticky slab, the rest overflow.
	if hops != 64 {
		t.Fatalf("%d hop records, want 64 (slab capacity)", hops)
	}
	if tl.Dropped == 0 {
		t.Fatal("slab overflow not counted")
	}
}
