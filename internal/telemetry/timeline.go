package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/daiet/daiet/internal/netsim"
)

// Timeline is one recorded run, merged and ready for export. Records is
// the deterministic section — byte-identical at any -sim-workers value
// and under any re-cut schedule. Engine is the cut-dependent diagnostics
// section, excluded from DeterministicBytes.
type Timeline struct {
	Cadence netsim.Time
	Records []Record
	Dropped uint64 // records lost to ring overwrite / slab overflow, all streams
	Engine  []EngineSample
}

// sortRecords orders recs by the simulator's partition-invariant event
// key. (At, Origin, Seq) is unique across streams — Origin namespaces the
// stream, Seq counts within it — so the order is total and stable.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
}

// timelineMagic heads the text serialization; the version suffix gates
// format evolution like benchfmt.Schema gates the figure schema. v2 added
// the synchronization counters (barriers, windows, idle windows, mean
// horizon) to engine lines.
const timelineMagic = "daiet-timeline v2"

// WriteTo serializes the timeline in its line-oriented text format:
//
//	daiet-timeline v2
//	cadence <ns>
//	dropped <n>
//	r <at> <origin> <seq> <kind> <node> <k> <v0> <v1> <v2> <v3> <v4> <"note">
//	...
//	engine <at> <domains> <framelive> <framepeak> <timerpeak> <bytes> <recuts> <barriers> <windows> <idlewindows> <meanhorizon>
//	...
//
// Record lines come first, in (At, Origin, Seq) order; engine lines last.
func (tl *Timeline) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(written int, err error) error {
		n += int64(written)
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s\ncadence %d\ndropped %d\n", timelineMagic, tl.Cadence, tl.Dropped)); err != nil {
		return n, err
	}
	for i := range tl.Records {
		r := &tl.Records[i]
		if err := count(fmt.Fprintf(bw, "r %d %d %d %s %d %d %d %d %d %d %d %q\n",
			r.At, r.Origin, r.Seq, r.Kind, r.Node, r.K, r.V0, r.V1, r.V2, r.V3, r.V4, r.Note)); err != nil {
			return n, err
		}
	}
	for _, e := range tl.Engine {
		if err := count(fmt.Fprintf(bw, "engine %d %d %d %d %d %d %d %d %d %d %d\n",
			e.At, e.Domains, e.FrameLive, e.FramePeak, e.TimerPeak, e.Bytes, e.Recuts,
			e.Barriers, e.Windows, e.IdleWindows, e.MeanHorizon)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Bytes renders the full timeline, engine section included.
func (tl *Timeline) Bytes() []byte {
	var buf bytes.Buffer
	_, _ = tl.WriteTo(&buf)
	return buf.Bytes()
}

// DeterministicBytes renders only the deterministic section — header and
// record lines, no engine diagnostics. Two runs of the same workload at
// different -sim-workers values or re-cut schedules produce identical
// DeterministicBytes; the conformance suite compares exactly this.
func (tl *Timeline) DeterministicBytes() []byte {
	stripped := Timeline{Cadence: tl.Cadence, Records: tl.Records, Dropped: tl.Dropped}
	return stripped.Bytes()
}

// ReadTimeline parses the text format WriteTo emits.
func ReadTimeline(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("telemetry: empty timeline")
	}
	if got := sc.Text(); got != timelineMagic {
		return nil, fmt.Errorf("telemetry: bad timeline header %q (want %q)", got, timelineMagic)
	}
	tl := &Timeline{}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		var err error
		switch verb {
		case "cadence":
			var v int64
			v, err = strconv.ParseInt(rest, 10, 64)
			tl.Cadence = netsim.Time(v)
		case "dropped":
			tl.Dropped, err = strconv.ParseUint(rest, 10, 64)
		case "r":
			err = parseRecordLine(rest, tl)
		case "engine":
			var e EngineSample
			_, err = fmt.Sscanf(rest, "%d %d %d %d %d %d %d %d %d %d %d",
				&e.At, &e.Domains, &e.FrameLive, &e.FramePeak, &e.TimerPeak, &e.Bytes, &e.Recuts,
				&e.Barriers, &e.Windows, &e.IdleWindows, &e.MeanHorizon)
			tl.Engine = append(tl.Engine, e)
		default:
			err = fmt.Errorf("unknown verb %q", verb)
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: timeline line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading timeline: %w", err)
	}
	return tl, nil
}

// parseRecordLine parses the 12 fixed fields then the quoted note (which
// may contain spaces, so it cannot go through Fields/Sscanf).
func parseRecordLine(rest string, tl *Timeline) error {
	fields := strings.SplitN(rest, " ", 12)
	if len(fields) != 12 {
		return fmt.Errorf("want 12 record fields, got %d", len(fields))
	}
	var r Record
	var err error
	geti := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	r.At = netsim.Time(geti(fields[0]))
	r.Origin, _ = strconv.ParseUint(fields[1], 10, 64)
	r.Seq, _ = strconv.ParseUint(fields[2], 10, 64)
	if err == nil {
		r.Kind, err = parseKind(fields[3])
	}
	r.Node = netsim.NodeID(geti(fields[4]))
	r.K = int32(geti(fields[5]))
	r.V0 = geti(fields[6])
	r.V1 = geti(fields[7])
	r.V2 = geti(fields[8])
	r.V3 = geti(fields[9])
	r.V4 = geti(fields[10])
	if err != nil {
		return err
	}
	if r.Note, err = strconv.Unquote(fields[11]); err != nil {
		return fmt.Errorf("bad note %s: %w", fields[11], err)
	}
	tl.Records = append(tl.Records, r)
	return nil
}
