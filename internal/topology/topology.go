// Package topology builds data-center fabric layouts over netsim and
// answers path queries for the controller.
//
// The paper's prototype ran a single bmv2 switch between 24 mappers and 12
// reducers; its outlook (§1, §7) targets racks and clusters. The package
// provides that single-switch rack plus leaf-spine and k-ary fat-tree
// fabrics so multi-switch aggregation trees (Figure 2) can be exercised.
//
// A Plan is pure data (IDs and links); Realize instantiates nodes into a
// Network via caller-supplied constructors, keeping this package free of
// dependencies on switch or host implementations.
package topology

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/netsim"
)

// ID allocation plan: hosts from HostBase, switches from SwitchBase. Both
// fit the 24-bit node space of the wire addressing scheme.
const (
	HostBase   netsim.NodeID = 1
	SwitchBase netsim.NodeID = 0x800000
)

// IsSwitchID reports whether id falls in the switch range.
func IsSwitchID(id netsim.NodeID) bool { return id >= SwitchBase }

// Link is one planned bidirectional link.
type Link struct {
	A, B netsim.NodeID
	Cfg  netsim.LinkConfig
}

// Plan is a fabric blueprint: node IDs plus links. Plans are deterministic
// for given parameters.
type Plan struct {
	Name     string
	Hosts    []netsim.NodeID
	Switches []netsim.NodeID
	Links    []Link

	// Pools assigns shared-memory buffer pools to nodes (normally switches):
	// Realize installs each one via netsim.Network.SetNodePool, switching
	// that node's egress queues from private per-port FIFOs to Dynamic
	// Threshold admission against one shared memory. Nodes absent from the
	// map keep the LinkConfig.QueueBytes fallback, so plans without pools
	// reproduce all historical figures bit-for-bit.
	Pools map[netsim.NodeID]netsim.PoolConfig
}

// SetPool assigns a shared buffer pool to one node of the plan. The
// config is not validated here; like the rest of a plan's structure
// (duplicate nodes, unknown link endpoints), an invalid pool config is a
// configuration error that panics at Realize time.
func (p *Plan) SetPool(id netsim.NodeID, cfg netsim.PoolConfig) {
	if p.Pools == nil {
		p.Pools = make(map[netsim.NodeID]netsim.PoolConfig)
	}
	p.Pools[id] = cfg
}

// SetSwitchPools assigns cfg to every switch in the plan — the uniform
// single-tier sizing. Multi-tier fabrics (leaf vs spine SRAM) call SetPool
// per tier instead.
func (p *Plan) SetSwitchPools(cfg netsim.PoolConfig) {
	for _, sw := range p.Switches {
		p.SetPool(sw, cfg)
	}
}

// SingleSwitch is the paper's evaluation fabric: n hosts on one switch.
func SingleSwitch(nHosts int, cfg netsim.LinkConfig) *Plan {
	p := &Plan{Name: fmt.Sprintf("single-switch-%dh", nHosts)}
	sw := SwitchBase
	p.Switches = []netsim.NodeID{sw}
	for i := 0; i < nHosts; i++ {
		h := HostBase + netsim.NodeID(i)
		p.Hosts = append(p.Hosts, h)
		p.Links = append(p.Links, Link{A: h, B: sw, Cfg: cfg})
	}
	return p
}

// LeafSpine builds a 2-tier Clos: nLeaf leaves each with hostsPerLeaf
// hosts, fully meshed to nSpine spines.
func LeafSpine(nLeaf, nSpine, hostsPerLeaf int, cfg netsim.LinkConfig) *Plan {
	p := &Plan{Name: fmt.Sprintf("leaf-spine-%dx%dx%d", nLeaf, nSpine, hostsPerLeaf)}
	leaves := make([]netsim.NodeID, nLeaf)
	for i := range leaves {
		leaves[i] = SwitchBase + netsim.NodeID(i)
		p.Switches = append(p.Switches, leaves[i])
	}
	spines := make([]netsim.NodeID, nSpine)
	for i := range spines {
		spines[i] = SwitchBase + netsim.NodeID(nLeaf+i)
		p.Switches = append(p.Switches, spines[i])
	}
	h := HostBase
	for _, leaf := range leaves {
		for j := 0; j < hostsPerLeaf; j++ {
			p.Hosts = append(p.Hosts, h)
			p.Links = append(p.Links, Link{A: h, B: leaf, Cfg: cfg})
			h++
		}
		for _, spine := range spines {
			p.Links = append(p.Links, Link{A: leaf, B: spine, Cfg: cfg})
		}
	}
	return p
}

// FatTree builds the canonical k-ary fat-tree (k even): k pods, each with
// k/2 edge and k/2 aggregation switches, (k/2)^2 cores, and k^3/4 hosts.
func FatTree(k int, cfg netsim.LinkConfig) (*Plan, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree requires even k >= 2, got %d", k)
	}
	p := &Plan{Name: fmt.Sprintf("fat-tree-k%d", k)}
	half := k / 2
	next := SwitchBase
	alloc := func() netsim.NodeID {
		id := next
		next++
		p.Switches = append(p.Switches, id)
		return id
	}
	cores := make([]netsim.NodeID, half*half)
	for i := range cores {
		cores[i] = alloc()
	}
	host := HostBase
	for pod := 0; pod < k; pod++ {
		aggs := make([]netsim.NodeID, half)
		edges := make([]netsim.NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = alloc()
		}
		for i := 0; i < half; i++ {
			edges[i] = alloc()
		}
		for i, agg := range aggs {
			// Each agg connects to its core group.
			for j := 0; j < half; j++ {
				p.Links = append(p.Links, Link{A: agg, B: cores[i*half+j], Cfg: cfg})
			}
			for _, e := range edges {
				p.Links = append(p.Links, Link{A: agg, B: e, Cfg: cfg})
			}
		}
		for _, e := range edges {
			for j := 0; j < half; j++ {
				p.Hosts = append(p.Hosts, host)
				p.Links = append(p.Links, Link{A: host, B: e, Cfg: cfg})
				host++
			}
		}
	}
	return p, nil
}

// PartitionGroups computes the rack-cut partitioning of the plan for the
// parallel event engine (netsim.Network.Partition): one unit per rack (an
// edge switch plus the hosts attached to it), hostless switches (spines,
// aggregations, cores) pooled into one fabric unit. Cutting at rack
// boundaries keeps the chatty host<->leaf traffic inside one domain and
// pays synchronization only on inter-rack links.
//
// Units are packed into the n groups by predicted event load (each unit's
// link-degree sum — every port an attached link gives a unit node is a
// stream of frame-delivery work), longest-processing-time first into the
// currently lightest group. Uneven fabrics (racks of different sizes, a fat
// spine unit) therefore come out with the lowest predicted skew a static
// assignment can give, instead of whatever round-robin dealt — the measured
// counterpart is netsim.Network.DomainEvents. Ties break deterministically
// (first group wins), so the grouping is a pure function of the plan.
//
// When n exceeds the number of rack units (a single-switch plan, say), the
// plan is cut inside racks instead: nodes are dealt individually, so the
// fan-in senders of an incast spread across domains. Any grouping is
// correct — the cut only affects the lookahead window, never results.
func (p *Plan) PartitionGroups(n int) [][]netsim.NodeID {
	all := make([]netsim.NodeID, 0, len(p.Switches)+len(p.Hosts))
	all = append(all, p.Switches...)
	all = append(all, p.Hosts...)
	if n <= 1 || len(all) <= 1 {
		return [][]netsim.NodeID{all}
	}
	if n > len(all) {
		n = len(all)
	}

	units := p.partitionUnits()
	if len(units) >= n {
		deg := p.degrees()
		weights := make([]float64, len(units))
		for i, u := range units {
			for _, id := range u {
				weights[i] += float64(deg[id])
			}
		}
		return lptPack(units, weights, n)
	}
	// Fewer racks than requested domains: cut inside racks, dealing nodes
	// individually (unit order keeps each switch near the front of its bin).
	bins := make([][]netsim.NodeID, n)
	i := 0
	for _, u := range units {
		for _, id := range u {
			bins[i%n] = append(bins[i%n], id)
			i++
		}
	}
	return bins
}

// SetCorePropagation sets the propagation delay of every switch-to-switch
// link of the plan, leaving host links untouched. Rack cuts run along the
// core tier, so this is the knob that widens (or narrows) the partitioned
// engine's synchronization lookahead: the syncproto figure sweeps it to
// contrast short- and long-haul cut channels.
func (p *Plan) SetCorePropagation(d time.Duration) {
	for i := range p.Links {
		if IsSwitchID(p.Links[i].A) && IsSwitchID(p.Links[i].B) {
			p.Links[i].Cfg.Propagation = d
		}
	}
}

// NoCutLink marks a domain pair with no direct cut link in the matrix
// CutLookaheads returns.
const NoCutLink = time.Duration(math.MaxInt64)

// CutLookaheads extracts, for a prospective grouping, the minimum
// propagation delay over the cut links between every ordered domain pair —
// the direct per-channel lookahead structure the partitioned engine will
// synchronize on (the engine adds one serialization tick per link and
// closes the matrix over relay paths). Pairs with no direct cut link hold
// NoCutLink; the diagonal always does. Tests and figures use it to confirm
// a topology really has the heterogeneous cut (one short channel among
// long ones) a sync-protocol comparison needs.
func (p *Plan) CutLookaheads(groups [][]netsim.NodeID) [][]time.Duration {
	dom := make(map[netsim.NodeID]int, len(p.Hosts)+len(p.Switches))
	for g, ids := range groups {
		for _, id := range ids {
			dom[id] = g
		}
	}
	la := make([][]time.Duration, len(groups))
	for i := range la {
		la[i] = make([]time.Duration, len(groups))
		for j := range la[i] {
			la[i][j] = NoCutLink
		}
	}
	for _, l := range p.Links {
		a, aok := dom[l.A]
		b, bok := dom[l.B]
		if !aok || !bok || a == b {
			continue
		}
		// Links realize bidirectionally, so the channel exists both ways.
		if l.Cfg.Propagation < la[a][b] {
			la[a][b] = l.Cfg.Propagation
			la[b][a] = l.Cfg.Propagation
		}
	}
	return la
}

// lptPack is the one LPT bin-packing implementation shared by the static
// cut (PartitionGroups) and the measured-rate re-cut (Reweigh): heaviest
// unit first, into the currently lightest bin. The stable sort and
// first-minimum scan break ties deterministically, so the packing is a
// pure function of (units, weights, n).
func lptPack(units [][]netsim.NodeID, weights []float64, n int) [][]netsim.NodeID {
	bins := make([][]netsim.NodeID, n)
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	loads := make([]float64, n)
	for _, ui := range order {
		min := 0
		for b := 1; b < n; b++ {
			if loads[b] < loads[min] {
				min = b
			}
		}
		bins[min] = append(bins[min], units[ui]...)
		loads[min] += weights[ui]
	}
	return bins
}

// degrees counts link endpoints per node — the static proxy for each node's
// event rate the group balancer packs by.
func (p *Plan) degrees() map[netsim.NodeID]int {
	deg := make(map[netsim.NodeID]int, len(p.Hosts)+len(p.Switches))
	for _, l := range p.Links {
		deg[l.A]++
		deg[l.B]++
	}
	return deg
}

// PredictedLoads returns each group's predicted event load (link-degree
// sum) under the plan's weight model — the quantity PartitionGroups
// balances. Exposed so tests and diagnostics can quantify cut skew against
// the measured netsim.Network.DomainEvents.
func (p *Plan) PredictedLoads(groups [][]netsim.NodeID) []int {
	deg := p.degrees()
	loads := make([]int, len(groups))
	for i, g := range groups {
		for _, id := range g {
			loads[i] += deg[id]
		}
	}
	return loads
}

// Reweigh computes a re-cut of the plan's rack units from measured
// per-domain event counts: the same LPT packing as PartitionGroups, but
// with each unit's static link-degree weight scaled by how much hotter or
// colder its current domain ran than the static model predicted
// (measured share / predicted share). A domain that did twice its
// predicted share of the work makes all of its units twice as heavy, so
// the re-cut spreads them; a cold domain's units merge. current is the
// grouping in effect (one group per domain, as netsim reports it) and
// measured the per-domain event counts over the measurement window.
// Returns nil — keep the current cut — when nothing was measured or the
// shapes do not line up.
func (p *Plan) Reweigh(current [][]netsim.NodeID, measured []uint64) [][]netsim.NodeID {
	n := len(current)
	if n == 0 || len(measured) != n {
		return nil
	}
	var total uint64
	for _, m := range measured {
		total += m
	}
	predicted := p.PredictedLoads(current)
	predTotal := 0
	for _, l := range predicted {
		predTotal += l
	}
	if total == 0 || predTotal == 0 {
		return nil
	}
	domOf := make(map[netsim.NodeID]int, len(p.Hosts)+len(p.Switches))
	for i, g := range current {
		for _, id := range g {
			domOf[id] = i
		}
	}
	factor := make([]float64, n)
	for i := range factor {
		predShare := float64(predicted[i]) / float64(predTotal)
		measShare := float64(measured[i]) / float64(total)
		if predShare <= 0 {
			factor[i] = 1
		} else {
			factor[i] = measShare / predShare
		}
	}
	units := p.partitionUnits()
	if len(units) < n {
		return nil // sub-rack cuts keep their initial dealing
	}
	deg := p.degrees()
	weights := make([]float64, len(units))
	for i, u := range units {
		for _, id := range u {
			w := float64(deg[id])
			if dom, ok := domOf[id]; ok {
				w *= factor[dom]
			}
			weights[i] += w
		}
	}
	return lptPack(units, weights, n)
}

// partitionUnits computes the plan's atomic partition units: one unit per
// rack (an edge switch plus its attached hosts), hostless switches pooled
// into one fabric unit, orphan hosts one unit each.
func (p *Plan) partitionUnits() [][]netsim.NodeID {
	// Host -> attached switch (first link wins; every plan this package
	// builds gives hosts exactly one uplink).
	attach := make(map[netsim.NodeID]netsim.NodeID, len(p.Hosts))
	for _, l := range p.Links {
		h, sw := l.A, l.B
		if IsSwitchID(h) {
			h, sw = sw, h
		}
		if IsSwitchID(h) || !IsSwitchID(sw) {
			continue // switch-switch or host-host link
		}
		if _, ok := attach[h]; !ok {
			attach[h] = sw
		}
	}
	hostsOf := make(map[netsim.NodeID][]netsim.NodeID, len(p.Switches))
	for _, h := range p.Hosts {
		if sw, ok := attach[h]; ok {
			hostsOf[sw] = append(hostsOf[sw], h)
		}
	}

	var units [][]netsim.NodeID
	var spine []netsim.NodeID
	for _, sw := range p.Switches {
		if hs := hostsOf[sw]; len(hs) > 0 {
			unit := make([]netsim.NodeID, 0, 1+len(hs))
			units = append(units, append(append(unit, sw), hs...))
		} else {
			spine = append(spine, sw)
		}
	}
	if len(spine) > 0 {
		units = append(units, spine)
	}
	for _, h := range p.Hosts {
		if _, ok := attach[h]; !ok {
			units = append(units, []netsim.NodeID{h})
		}
	}
	return units
}

// PartitionUnits returns how many rack-cut units the plan decomposes into —
// the natural upper bound on useful event-engine domains (beyond it, cuts
// land inside racks and synchronize on short edge-link latencies).
func (p *Plan) PartitionUnits() int { return len(p.partitionUnits()) }

// AutoPartitions is the domain count Partitions picks for n == 0:
// min(rack-cut units, GOMAXPROCS). More domains than units would cut inside
// racks; more than GOMAXPROCS would multiplex goroutines with no cores to
// run them.
func (p *Plan) AutoPartitions() int {
	n := p.PartitionUnits()
	if procs := runtime.GOMAXPROCS(0); procs < n {
		n = procs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Partitions splits the realized fabric into n parallel event-engine
// domains along the plan's rack cut (see PartitionGroups). n == 1 keeps the
// sequential engine; n <= 0 autotunes the count via AutoPartitions. Must be
// called before any traffic is injected.
func (f *Fabric) Partitions(n int) error {
	if n <= 0 {
		n = f.Plan.AutoPartitions()
	}
	if n <= 1 {
		return nil
	}
	return f.Net.Partition(f.Plan.PartitionGroups(n))
}

// RecutConfig enables measured-skew dynamic re-partitioning on top of the
// static rack cut (see Fabric.PartitionsDynamic). The zero value disables
// re-cutting, so it can ride along in experiment configs at no cost.
type RecutConfig struct {
	// Every is the virtual-time cadence of skew evaluations; <= 0 disables
	// dynamic re-cutting.
	Every time.Duration
	// MinSkewPct is the measured event-count skew — busiest domain over
	// the mean, in percent — above which the cut is recomputed.
	MinSkewPct float64
	// Seed, when non-zero, jitters the evaluation schedule (netsim's
	// seeded random re-cut points, used by the conformance tests).
	Seed uint64
}

// PartitionsDynamic is Partitions plus a dynamic re-cut policy: at every
// evaluation point the engine's measured per-domain event counts
// (netsim.Network.DomainEvents deltas) are compared against the cut's
// prediction, and when the skew exceeds rc.MinSkewPct the rack units are
// re-packed by Plan.Reweigh — the same LPT as the initial cut, driven by
// measured rates. Determinism is unchanged: any re-cut schedule replays
// byte-identically (the re-cut only moves state between engines, never
// reorders events).
func (f *Fabric) PartitionsDynamic(n int, rc RecutConfig) error {
	if err := f.Partitions(n); err != nil {
		return err
	}
	if rc.Every <= 0 || f.Net.Domains() <= 1 {
		return nil
	}
	plan := f.Plan
	return f.Net.SetRecutPolicy(netsim.RecutPolicy{
		Interval:   netsim.Duration(rc.Every),
		MinSkewPct: rc.MinSkewPct,
		Seed:       rc.Seed,
		Groups:     plan.Reweigh,
	})
}

// Edge is one adjacency entry: the local out-port that reaches Peer.
type Edge struct {
	Peer netsim.NodeID
	Port int
}

// Fabric is a realized plan: nodes added, links connected, ports recorded.
type Fabric struct {
	Plan *Plan
	Net  *netsim.Network
	adj  map[netsim.NodeID][]Edge
	// bfs memoizes per-destination predecessor maps (next hop toward dst).
	bfs map[netsim.NodeID]map[netsim.NodeID]netsim.NodeID
	// Dense mirror of the graph, built once in Realize. Routing install at
	// fabric scale (megaincast: one BFS per host over a thousand nodes) is
	// map-bound, so the empty-avoid path — every InstallRouting and tree
	// plan — runs on slice-indexed adjacency instead. Next-hop choices are
	// identical to the map BFS: candidate order is the per-node edge order
	// either way, and the ECMP pick hashes (node, dst) IDs only.
	ids  []netsim.NodeID                   // dense index -> node ID
	idx  map[netsim.NodeID]int32           // node ID -> dense index
	dadj [][]int32                         // dense adjacency, same edge order as adj
	nh   map[netsim.NodeID][]netsim.NodeID // per-dst dense next hops (0 = unreachable)
}

// Realize adds every planned node to nw (switches via mkSwitch, hosts via
// mkHost) and connects every planned link, returning the queryable fabric.
func (p *Plan) Realize(nw *netsim.Network,
	mkSwitch, mkHost func(netsim.NodeID) netsim.Node) *Fabric {

	f := &Fabric{
		Plan: p,
		Net:  nw,
		adj:  make(map[netsim.NodeID][]Edge),
		bfs:  make(map[netsim.NodeID]map[netsim.NodeID]netsim.NodeID),
	}
	for _, id := range p.Switches {
		nw.AddNode(id, mkSwitch(id))
	}
	for _, id := range p.Hosts {
		nw.AddNode(id, mkHost(id))
	}
	for _, l := range p.Links {
		pa, pb := nw.Connect(l.A, l.B, l.Cfg)
		f.adj[l.A] = append(f.adj[l.A], Edge{Peer: l.B, Port: pa})
		f.adj[l.B] = append(f.adj[l.B], Edge{Peer: l.A, Port: pb})
	}
	// Dense graph mirror for the routing fast path: switches then hosts,
	// edges in the same order as adj.
	f.idx = make(map[netsim.NodeID]int32, len(p.Switches)+len(p.Hosts))
	f.nh = make(map[netsim.NodeID][]netsim.NodeID)
	for _, id := range append(append([]netsim.NodeID(nil), p.Switches...), p.Hosts...) {
		f.idx[id] = int32(len(f.ids))
		f.ids = append(f.ids, id)
	}
	f.dadj = make([][]int32, len(f.ids))
	for i, id := range f.ids {
		for _, e := range f.adj[id] {
			f.dadj[i] = append(f.dadj[i], f.idx[e.Peer])
		}
	}
	installed := 0
	for _, id := range append(append([]netsim.NodeID(nil), p.Switches...), p.Hosts...) {
		if cfg, ok := p.Pools[id]; ok {
			if err := nw.SetNodePool(id, cfg); err != nil {
				panic(fmt.Sprintf("topology: installing pool on node %d: %v", id, err))
			}
			installed++
		}
	}
	if installed != len(p.Pools) {
		// A Pools key naming a node outside the plan would otherwise be
		// silently skipped — and the experiment would quietly run on
		// per-port FIFOs instead of the pool it asked for.
		for id := range p.Pools {
			if !containsNode(p.Switches, id) && !containsNode(p.Hosts, id) {
				panic(fmt.Sprintf("topology: pool configured for node %d, which is not in the plan", id))
			}
		}
	}
	return f
}

func containsNode(ids []netsim.NodeID, id netsim.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency of id (stable order).
func (f *Fabric) Neighbors(id netsim.NodeID) []Edge { return f.adj[id] }

// PortTo returns the port on `from` that directly reaches `to`, or -1.
func (f *Fabric) PortTo(from, to netsim.NodeID) int {
	for _, e := range f.adj[from] {
		if e.Peer == to {
			return e.Port
		}
	}
	return -1
}

// Avoid names failed fabric components the control plane wants path
// computation to route around: dead switches and administratively-down
// links. The zero value (or nil) avoids nothing. Link keys are normalized
// endpoint pairs — use LinkKey.
type Avoid struct {
	Nodes map[netsim.NodeID]bool
	Links map[[2]netsim.NodeID]bool
}

// LinkKey normalizes a link's endpoints into the Avoid.Links key order.
func LinkKey(a, b netsim.NodeID) [2]netsim.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]netsim.NodeID{a, b}
}

// empty reports whether the avoid set excludes nothing (nil-safe).
func (a *Avoid) empty() bool {
	return a == nil || (len(a.Nodes) == 0 && len(a.Links) == 0)
}

func (a *Avoid) node(id netsim.NodeID) bool { return a != nil && a.Nodes[id] }

func (a *Avoid) link(x, y netsim.NodeID) bool {
	return a != nil && a.Links[LinkKey(x, y)]
}

// nextHopMap computes, via reverse BFS from dst, the next hop toward dst
// from every reachable node, excluding everything in avoid. When several
// equal-cost next hops exist, one is chosen by hashing (node, dst) —
// ECMP-style spreading, so different destinations' aggregation trees use
// different spines while every single destination still gets one
// deterministic loop-free tree (the property the paper's correctness
// argument needs). Results are memoized per destination for the empty
// avoid set only: failover queries see the fabric's current failures, so
// they recompute each time.
func (f *Fabric) nextHopMap(dst netsim.NodeID, avoid *Avoid) map[netsim.NodeID]netsim.NodeID {
	if avoid.empty() {
		// Fast path: materialize the memoized map from the dense BFS.
		if m, ok := f.bfs[dst]; ok {
			return m
		}
		dn := f.nextHopDense(dst)
		m := map[netsim.NodeID]netsim.NodeID{dst: dst}
		for i, nh := range dn {
			if nh != 0 {
				m[f.ids[i]] = nh
			}
		}
		f.bfs[dst] = m
		return m
	}
	next := map[netsim.NodeID]netsim.NodeID{dst: dst}
	if avoid.node(dst) {
		return next
	}
	// Pass 1: BFS distances from dst (traffic never transits hosts).
	dist := map[netsim.NodeID]int{dst: 0}
	queue := []netsim.NodeID{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !IsSwitchID(cur) && cur != dst {
			continue // hosts are leaves of the BFS
		}
		for _, e := range f.adj[cur] {
			if _, seen := dist[e.Peer]; seen {
				continue
			}
			if avoid.node(e.Peer) || avoid.link(cur, e.Peer) {
				continue
			}
			dist[e.Peer] = dist[cur] + 1
			queue = append(queue, e.Peer)
		}
	}
	// Pass 2: per node, collect all equal-cost next hops and hash-pick.
	var key [8]byte
	for node, d := range dist {
		if node == dst {
			continue
		}
		var candidates []netsim.NodeID
		for _, e := range f.adj[node] {
			if avoid.node(e.Peer) || avoid.link(node, e.Peer) {
				continue
			}
			if nd, ok := dist[e.Peer]; ok && nd == d-1 {
				// The next hop must be able to carry transit traffic (be a
				// switch) unless it is the destination itself.
				if IsSwitchID(e.Peer) || e.Peer == dst {
					candidates = append(candidates, e.Peer)
				}
			}
		}
		if len(candidates) == 0 {
			continue // unreachable through valid transit
		}
		binary.BigEndian.PutUint32(key[0:4], uint32(node))
		binary.BigEndian.PutUint32(key[4:8], uint32(dst))
		next[node] = candidates[hashing.ECMPPick(key[:], len(candidates))]
	}
	return next
}

// nextHopDense is nextHopMap's empty-avoid fast path on the dense graph
// mirror: one slice-indexed BFS per destination, memoized. Entry i is the
// next hop from f.ids[i] toward dst, or 0 (never a valid NodeID) when
// unreachable. Candidate order and the ECMP pick match the map BFS
// exactly, so the chosen routes are identical.
func (f *Fabric) nextHopDense(dst netsim.NodeID) []netsim.NodeID {
	if dn, ok := f.nh[dst]; ok {
		return dn
	}
	n := len(f.ids)
	next := make([]netsim.NodeID, n)
	di, known := f.idx[dst]
	if !known {
		f.nh[dst] = next
		return next
	}
	// Pass 1: BFS distances from dst (traffic never transits hosts).
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[di] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, di)
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if !IsSwitchID(f.ids[cur]) && cur != di {
			continue // hosts are leaves of the BFS
		}
		for _, peer := range f.dadj[cur] {
			if dist[peer] < 0 {
				dist[peer] = dist[cur] + 1
				queue = append(queue, peer)
			}
		}
	}
	// Pass 2: per node, collect all equal-cost next hops and hash-pick.
	var key [8]byte
	var candidates []netsim.NodeID
	for node := int32(0); node < int32(n); node++ {
		d := dist[node]
		if d <= 0 {
			continue // unreached, or dst itself
		}
		candidates = candidates[:0]
		for _, peer := range f.dadj[node] {
			if dist[peer] == d-1 {
				// The next hop must be able to carry transit traffic (be a
				// switch) unless it is the destination itself.
				if peerID := f.ids[peer]; IsSwitchID(peerID) || peerID == dst {
					candidates = append(candidates, peerID)
				}
			}
		}
		if len(candidates) == 0 {
			continue // unreachable through valid transit
		}
		binary.BigEndian.PutUint32(key[0:4], uint32(f.ids[node]))
		binary.BigEndian.PutUint32(key[4:8], uint32(dst))
		next[node] = candidates[hashing.ECMPPick(key[:], len(candidates))]
	}
	f.nh[dst] = next
	return next
}

// NextHop returns the neighbor `from` should forward to in order to reach
// dst along a shortest path, and whether dst is reachable.
func (f *Fabric) NextHop(from, dst netsim.NodeID) (netsim.NodeID, bool) {
	return f.NextHopAvoiding(from, dst, nil)
}

// NextHopAvoiding is NextHop over the fabric minus the avoid set.
func (f *Fabric) NextHopAvoiding(from, dst netsim.NodeID, avoid *Avoid) (netsim.NodeID, bool) {
	if from == dst {
		return dst, true
	}
	if avoid.empty() {
		// Dense lookup: no per-query map materialization.
		fi, ok := f.idx[from]
		if !ok {
			return 0, false
		}
		nh := f.nextHopDense(dst)[fi]
		return nh, nh != 0
	}
	nh, ok := f.nextHopMap(dst, avoid)[from]
	return nh, ok
}

// NextHopsAvoiding returns the whole next-hop-toward-dst map under the
// avoid set (read-only for the caller). Batch reachability queries — "which
// of these mappers can still reach the reducer?" — should use one call to
// this instead of one PathAvoiding BFS per mapper: the map is O(V+E) to
// build and answers every membership query for free.
func (f *Fabric) NextHopsAvoiding(dst netsim.NodeID, avoid *Avoid) map[netsim.NodeID]netsim.NodeID {
	return f.nextHopMap(dst, avoid)
}

// Path returns the node sequence from src to dst inclusive, or nil when
// unreachable.
func (f *Fabric) Path(src, dst netsim.NodeID) []netsim.NodeID {
	return f.PathAvoiding(src, dst, nil)
}

// PathAvoiding returns the node sequence from src to dst inclusive through
// the fabric minus the avoid set, or nil when no such path exists. The
// controller re-plans aggregation trees with this after declaring switches
// or links dead.
func (f *Fabric) PathAvoiding(src, dst netsim.NodeID, avoid *Avoid) []netsim.NodeID {
	if avoid.node(src) {
		return nil
	}
	m := f.nextHopMap(dst, avoid)
	if _, ok := m[src]; !ok {
		return nil
	}
	path := []netsim.NodeID{src}
	cur := src
	for cur != dst {
		cur = m[cur]
		path = append(path, cur)
		if len(path) > len(f.adj)+1 {
			// Defensive: a cycle here would mean nextHopMap is broken.
			panic("topology: path longer than node count")
		}
	}
	return path
}

// HostsSorted returns the plan's hosts in ascending ID order.
func (f *Fabric) HostsSorted() []netsim.NodeID {
	hs := append([]netsim.NodeID(nil), f.Plan.Hosts...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}
