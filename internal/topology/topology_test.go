package topology

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/netsim"
)

// nopNode satisfies netsim.Node for structural tests.
type nopNode struct{}

func (nopNode) Attach(*netsim.Network, netsim.NodeID) {}
func (nopNode) HandleFrame(int, []byte)               {}

func realize(t *testing.T, p *Plan) *Fabric {
	t.Helper()
	nw := netsim.New(1)
	mk := func(netsim.NodeID) netsim.Node { return nopNode{} }
	return p.Realize(nw, mk, mk)
}

func TestSingleSwitchShape(t *testing.T) {
	p := SingleSwitch(4, netsim.LinkConfig{})
	if len(p.Hosts) != 4 || len(p.Switches) != 1 || len(p.Links) != 4 {
		t.Fatalf("shape: %d hosts %d switches %d links", len(p.Hosts), len(p.Switches), len(p.Links))
	}
	f := realize(t, p)
	sw := p.Switches[0]
	if !IsSwitchID(sw) || IsSwitchID(p.Hosts[0]) {
		t.Fatal("ID ranges wrong")
	}
	for _, h := range p.Hosts {
		path := f.Path(h, p.Hosts[0])
		if h == p.Hosts[0] {
			if len(path) != 1 {
				t.Fatalf("self path %v", path)
			}
			continue
		}
		if len(path) != 3 || path[1] != sw {
			t.Fatalf("path %v", path)
		}
	}
}

func TestLeafSpineShapeAndPaths(t *testing.T) {
	p := LeafSpine(3, 2, 4, netsim.LinkConfig{})
	if len(p.Hosts) != 12 || len(p.Switches) != 5 {
		t.Fatalf("shape: %d hosts %d switches", len(p.Hosts), len(p.Switches))
	}
	// links: 12 host links + 3*2 mesh links
	if len(p.Links) != 18 {
		t.Fatalf("links %d", len(p.Links))
	}
	f := realize(t, p)
	// Same-leaf hosts: 2 hops (h-leaf-h).
	same := f.Path(p.Hosts[0], p.Hosts[1])
	if len(same) != 3 {
		t.Fatalf("same-leaf path %v", same)
	}
	// Cross-leaf: h-leaf-spine-leaf-h = 5 nodes.
	cross := f.Path(p.Hosts[0], p.Hosts[11])
	if len(cross) != 5 {
		t.Fatalf("cross-leaf path %v", cross)
	}
	for _, mid := range cross[1 : len(cross)-1] {
		if !IsSwitchID(mid) {
			t.Fatalf("host transits traffic in %v", cross)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	p, err := FatTree(4, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hosts) != 16 {
		t.Fatalf("hosts %d want 16", len(p.Hosts))
	}
	if len(p.Switches) != 20 {
		t.Fatalf("switches %d want 20", len(p.Switches))
	}
	// k=4: 16 host links + 8 edges*2 agg links... total = 16 + (pods 4 * (2 aggs * (2 core + 2 edge))) = 16+32 = 48
	if len(p.Links) != 48 {
		t.Fatalf("links %d want 48", len(p.Links))
	}
	if _, err := FatTree(3, netsim.LinkConfig{}); err == nil {
		t.Fatal("odd k must fail")
	}
	if _, err := FatTree(0, netsim.LinkConfig{}); err == nil {
		t.Fatal("zero k must fail")
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	p, err := FatTree(4, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := realize(t, p)
	for _, a := range p.Hosts {
		for _, b := range p.Hosts {
			path := f.Path(a, b)
			if path == nil {
				t.Fatalf("no path %d->%d", a, b)
			}
			if path[0] != a || path[len(path)-1] != b {
				t.Fatalf("endpoints wrong: %v", path)
			}
			// No host transit.
			for _, mid := range path[1:max(1, len(path)-1)] {
				if mid != b && !IsSwitchID(mid) {
					t.Fatalf("host transit in %v", path)
				}
			}
			// Fat-tree diameter for hosts: h-e-a-c-a-e-h = 7 nodes max.
			if len(path) > 7 {
				t.Fatalf("path too long: %v", path)
			}
		}
	}
}

func TestNextHopConsistentWithPath(t *testing.T) {
	p := LeafSpine(2, 2, 2, netsim.LinkConfig{})
	f := realize(t, p)
	src, dst := p.Hosts[0], p.Hosts[3]
	path := f.Path(src, dst)
	for i := 0; i < len(path)-1; i++ {
		nh, ok := f.NextHop(path[i], dst)
		if !ok || nh != path[i+1] {
			t.Fatalf("NextHop(%d,%d)=%d,%v; path %v", path[i], dst, nh, ok, path)
		}
	}
	if nh, ok := f.NextHop(dst, dst); !ok || nh != dst {
		t.Fatal("self next-hop")
	}
}

func TestPortToMatchesAdjacency(t *testing.T) {
	p := SingleSwitch(3, netsim.LinkConfig{})
	f := realize(t, p)
	sw := p.Switches[0]
	for i, h := range p.Hosts {
		port := f.PortTo(sw, h)
		if port != i {
			t.Fatalf("PortTo(sw,%d)=%d want %d", h, port, i)
		}
		if f.PortTo(h, sw) != 0 {
			t.Fatal("host uplink must be port 0")
		}
	}
	if f.PortTo(p.Hosts[0], p.Hosts[1]) != -1 {
		t.Fatal("unconnected pair must be -1")
	}
}

func TestUnreachableReturnsNil(t *testing.T) {
	// Two disjoint single-switch islands.
	nw := netsim.New(1)
	mk := func(netsim.NodeID) netsim.Node { return nopNode{} }
	p := SingleSwitch(2, netsim.LinkConfig{})
	f := p.Realize(nw, mk, mk)
	// Add an isolated node manually.
	iso := netsim.NodeID(500)
	nw.AddNode(iso, nopNode{})
	if f.Path(p.Hosts[0], iso) != nil {
		t.Fatal("want nil path to isolated node")
	}
	if _, ok := f.NextHop(p.Hosts[0], iso); ok {
		t.Fatal("want unreachable")
	}
}

func TestHostsSorted(t *testing.T) {
	p := LeafSpine(2, 1, 3, netsim.LinkConfig{})
	f := realize(t, p)
	hs := f.HostsSorted()
	for i := 1; i < len(hs); i++ {
		if hs[i-1] >= hs[i] {
			t.Fatalf("not sorted: %v", hs)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestECMPSpreadsDestinationsAcrossSpines(t *testing.T) {
	// 2 leaves, 4 spines, several hosts: next hops toward different
	// destination hosts on the far leaf should not all use one spine.
	p := LeafSpine(2, 4, 8, netsim.LinkConfig{})
	f := realize(t, p)
	leaf0 := p.Switches[0]
	spines := map[netsim.NodeID]bool{}
	for _, dst := range p.Hosts[8:] { // hosts on leaf 1
		nh, ok := f.NextHop(leaf0, dst)
		if !ok {
			t.Fatalf("no next hop to %d", dst)
		}
		if !IsSwitchID(nh) {
			t.Fatalf("next hop %d is not a switch", nh)
		}
		spines[nh] = true
	}
	if len(spines) < 2 {
		t.Fatalf("all 8 destinations use %d spine(s); ECMP not spreading", len(spines))
	}
}

func TestECMPStillLoopFreePerDestination(t *testing.T) {
	// Per destination, the chosen next hops must still form a tree: walk
	// from every node and ensure the root is reached without cycles.
	p := LeafSpine(3, 3, 4, netsim.LinkConfig{})
	f := realize(t, p)
	for _, dst := range p.Hosts {
		for _, src := range p.Hosts {
			if src == dst {
				continue
			}
			seen := map[netsim.NodeID]bool{}
			cur := src
			for cur != dst {
				if seen[cur] {
					t.Fatalf("loop toward %d at %d", dst, cur)
				}
				seen[cur] = true
				nh, ok := f.NextHop(cur, dst)
				if !ok {
					t.Fatalf("stuck at %d toward %d", cur, dst)
				}
				cur = nh
			}
		}
	}
}

// TestPartitionGroupsCoverEveryNodeOnce: the rack-cut grouping is a true
// partition of every plan shape, at any requested domain count.
func TestPartitionGroupsCoverEveryNodeOnce(t *testing.T) {
	plans := []*Plan{
		SingleSwitch(25, netsim.LinkConfig{}),
		LeafSpine(3, 2, 6, netsim.LinkConfig{}),
		LeafSpine(8, 4, 12, netsim.LinkConfig{}),
	}
	if ft, err := FatTree(4, netsim.LinkConfig{}); err != nil {
		t.Fatal(err)
	} else {
		plans = append(plans, ft)
	}
	for _, p := range plans {
		total := len(p.Hosts) + len(p.Switches)
		for _, n := range []int{1, 2, 4, 7, total, total + 5} {
			groups := p.PartitionGroups(n)
			if len(groups) > n && n >= 1 {
				t.Fatalf("%s n=%d: %d groups", p.Name, n, len(groups))
			}
			seen := map[netsim.NodeID]int{}
			for _, g := range groups {
				for _, id := range g {
					seen[id]++
				}
			}
			if len(seen) != total {
				t.Fatalf("%s n=%d: groups cover %d of %d nodes", p.Name, n, len(seen), total)
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("%s n=%d: node %d in %d groups", p.Name, n, id, c)
				}
			}
		}
	}
}

// TestPartitionGroupsRackCut: with one domain per rack, every host lands in
// the same group as its leaf switch — the cut runs along inter-rack links.
func TestPartitionGroupsRackCut(t *testing.T) {
	const leaves, spines, perLeaf = 4, 2, 6
	p := LeafSpine(leaves, spines, perLeaf, netsim.LinkConfig{})
	groups := p.PartitionGroups(leaves) // spine unit folds into a rack bin
	groupOf := map[netsim.NodeID]int{}
	for gi, g := range groups {
		for _, id := range g {
			groupOf[id] = gi
		}
	}
	for _, l := range p.Links {
		h, sw := l.A, l.B
		if IsSwitchID(h) {
			h, sw = sw, h
		}
		if IsSwitchID(h) || !IsSwitchID(sw) {
			continue // leaf-spine link: allowed to cross
		}
		if groupOf[h] != groupOf[sw] {
			t.Fatalf("host %d split from its leaf %d (groups %d vs %d)",
				h, sw, groupOf[h], groupOf[sw])
		}
	}
}

// TestFabricPartitionsRuns: a partitioned realized fabric still delivers.
func TestFabricPartitionsRuns(t *testing.T) {
	p := LeafSpine(3, 2, 4, netsim.LinkConfig{})
	f := realize(t, p)
	if err := f.Partitions(3); err != nil {
		t.Fatal(err)
	}
	if got := f.Net.Domains(); got != 3 {
		t.Fatalf("domains = %d, want 3", got)
	}
	if err := f.Partitions(1); err != nil { // n<=1 stays a no-op request
		t.Fatal(err)
	}
	if err := f.Net.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionAutotune: Partitions(0) picks min(rack-cut units,
// GOMAXPROCS) instead of falling back to the sequential engine.
func TestPartitionAutotune(t *testing.T) {
	p := LeafSpine(3, 2, 4, netsim.LinkConfig{})
	if got := p.PartitionUnits(); got != 4 { // 3 racks + 1 spine pool
		t.Fatalf("PartitionUnits = %d, want 4", got)
	}

	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	if got := p.AutoPartitions(); got != 4 {
		t.Fatalf("AutoPartitions at GOMAXPROCS=8: %d, want 4", got)
	}
	f := realize(t, p)
	if err := f.Partitions(0); err != nil {
		t.Fatal(err)
	}
	if got := f.Net.Domains(); got != 4 {
		t.Fatalf("auto domains = %d, want 4", got)
	}

	runtime.GOMAXPROCS(2)
	if got := p.AutoPartitions(); got != 2 {
		t.Fatalf("AutoPartitions at GOMAXPROCS=2: %d, want 2", got)
	}

	// A single-switch plan has one rack unit: auto stays sequential.
	runtime.GOMAXPROCS(8)
	single := SingleSwitch(6, netsim.LinkConfig{})
	if got := single.AutoPartitions(); got != 1 {
		t.Fatalf("single-switch AutoPartitions = %d, want 1", got)
	}
	fs := realize(t, single)
	if err := fs.Partitions(0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Net.Domains(); got != 1 {
		t.Fatalf("single-switch auto domains = %d, want 1", got)
	}
}

// TestPathAvoiding: failover path queries route around dead switches and
// links, and report unreachability when nothing survives.
func TestPathAvoiding(t *testing.T) {
	p := LeafSpine(2, 2, 2, netsim.LinkConfig{})
	f := realize(t, p)
	src, dst := p.Hosts[0], p.Hosts[3] // different racks: must cross a spine
	base := f.Path(src, dst)
	if base == nil || len(base) != 5 {
		t.Fatalf("base path %v", base)
	}
	spineOnPath := base[2]
	if !IsSwitchID(spineOnPath) {
		t.Fatalf("mid node %d not a switch", spineOnPath)
	}

	avoid := &Avoid{Nodes: map[netsim.NodeID]bool{spineOnPath: true}}
	alt := f.PathAvoiding(src, dst, avoid)
	if alt == nil {
		t.Fatal("no failover path around one dead spine")
	}
	for _, n := range alt {
		if n == spineOnPath {
			t.Fatalf("avoided node %d on path %v", spineOnPath, alt)
		}
	}

	// Killing both spines disconnects the racks.
	spines := map[netsim.NodeID]bool{SwitchBase + 2: true, SwitchBase + 3: true}
	if got := f.PathAvoiding(src, dst, &Avoid{Nodes: spines}); got != nil {
		t.Fatalf("path %v through dead spines", got)
	}

	// Downing the host's uplink orphans it.
	leaf := SwitchBase
	la := &Avoid{Links: map[[2]netsim.NodeID]bool{LinkKey(src, leaf): true}}
	if got := f.PathAvoiding(src, dst, la); got != nil {
		t.Fatalf("path %v through dead uplink", got)
	}
	// The memoized no-avoid path is untouched by avoid queries.
	if got := f.Path(src, dst); fmt.Sprint(got) != fmt.Sprint(base) {
		t.Fatalf("memoized path changed: %v vs %v", got, base)
	}
}

// unevenPlan is a handcrafted fabric with very different rack sizes: one
// giant rack (16 hosts), three tiny ones (2 hosts each), and a spine.
func unevenPlan() *Plan {
	p := &Plan{Name: "uneven"}
	spine := SwitchBase + 100
	p.Switches = append(p.Switches, spine)
	h := HostBase
	for rack, size := range []int{16, 2, 2, 2} {
		sw := SwitchBase + netsim.NodeID(rack)
		p.Switches = append(p.Switches, sw)
		p.Links = append(p.Links, Link{A: sw, B: spine})
		for i := 0; i < size; i++ {
			p.Hosts = append(p.Hosts, h)
			p.Links = append(p.Links, Link{A: h, B: sw})
			h++
		}
	}
	return p
}

// TestPartitionGroupsBalanced: LPT packing must not stack the giant rack
// with other units while bins sit near-empty — the predicted max load is
// the giant rack alone, which no static rack-cut assignment can beat.
func TestPartitionGroupsBalanced(t *testing.T) {
	p := unevenPlan()
	groups := p.PartitionGroups(2)
	loads := p.PredictedLoads(groups)
	if len(loads) != 2 {
		t.Fatalf("groups %d", len(loads))
	}
	max, sum := 0, 0
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	// The giant rack (16 hosts × deg 1 + leaf deg 17 = 33) is the floor for
	// the max bin; everything else must be packed opposite it.
	deg := p.degrees()
	giant := deg[SwitchBase]
	for _, h := range p.Hosts[:16] {
		giant += deg[h]
	}
	if max != giant {
		t.Fatalf("max predicted load %d (loads %v), want the giant rack alone (%d)", max, loads, giant)
	}
	if min := sum - max; min == 0 {
		t.Fatalf("one bin empty: loads %v", loads)
	}
}

// TestDomainEventsMatchPartition: the per-domain executed-event counters sum
// to the fabric total and follow the cut's load split.
func TestDomainEventsMatchPartition(t *testing.T) {
	p := LeafSpine(3, 1, 4, netsim.LinkConfig{})
	nw := netsim.New(7)
	mk := func(netsim.NodeID) netsim.Node { return nopNode{} }
	f := p.Realize(nw, mk, mk)
	if err := f.Partitions(3); err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Hosts {
		nw.Send(h, 0, make([]byte, 64))
	}
	if err := nw.Run(0); err != nil {
		t.Fatal(err)
	}
	ev := nw.DomainEvents()
	if len(ev) != 3 {
		t.Fatalf("DomainEvents len %d, want 3", len(ev))
	}
	var sum uint64
	for _, e := range ev {
		sum += e
	}
	if sum != nw.Processed() {
		t.Fatalf("DomainEvents sum %d != Processed %d", sum, nw.Processed())
	}
	if sum == 0 {
		t.Fatal("no events executed")
	}
}

// TestRealizeInstallsPools: pools declared on the plan are live on the
// realized network, and poolless nodes keep the QueueBytes fallback.
func TestRealizeInstallsPools(t *testing.T) {
	p := SingleSwitch(3, netsim.LinkConfig{})
	p.SetSwitchPools(netsim.PoolConfig{TotalBytes: 4096, ReserveBytes: 128, Alpha: 1})
	nw := netsim.New(1)
	mk := func(netsim.NodeID) netsim.Node { return nopNode{} }
	p.Realize(nw, mk, mk)
	ps, ok := nw.PoolStats(p.Switches[0])
	if !ok || ps.TotalBytes != 4096 {
		t.Fatalf("switch pool missing or wrong: %+v ok=%v", ps, ok)
	}
	if _, ok := nw.PoolStats(p.Hosts[0]); ok {
		t.Fatal("host unexpectedly has a pool")
	}
}

// TestReweighSharesLPTWithInitialCut: with measured loads exactly matching
// the static prediction, Reweigh must reproduce the initial cut — one LPT
// implementation, two callers.
func TestReweighSharesLPTWithInitialCut(t *testing.T) {
	p := unevenPlan()
	groups := p.PartitionGroups(2)
	pred := p.PredictedLoads(groups)
	measured := make([]uint64, len(pred))
	for i, l := range pred {
		measured[i] = uint64(l) * 1000 // same shares, different magnitude
	}
	re := p.Reweigh(groups, measured)
	if re == nil {
		t.Fatal("Reweigh returned nil for a valid measurement")
	}
	if fmt.Sprint(re) != fmt.Sprint(groups) {
		t.Fatalf("prediction-matching measurement changed the cut:\nstatic: %v\nreweigh: %v", groups, re)
	}
}

// TestReweighUnevenRacks: when the measured rates contradict the static
// model — the giant rack ran cold, the small racks ran hot — the re-cut
// must rebalance by measured weight, moving small racks away from the
// domain the static model overloaded.
func TestReweighUnevenRacks(t *testing.T) {
	p := unevenPlan()
	groups := p.PartitionGroups(2)
	// Find the domain holding the giant rack (leaf SwitchBase+0).
	giantDom := -1
	for i, g := range groups {
		for _, id := range g {
			if id == SwitchBase {
				giantDom = i
			}
		}
	}
	if giantDom < 0 {
		t.Fatal("giant rack not placed")
	}
	// Measure the giant rack's domain as nearly idle and the rest as hot.
	measured := make([]uint64, len(groups))
	for i := range measured {
		if i == giantDom {
			measured[i] = 1
		} else {
			measured[i] = 100_000
		}
	}
	re := p.Reweigh(groups, measured)
	if re == nil {
		t.Fatal("Reweigh returned nil")
	}
	// Every node still appears exactly once.
	seen := map[netsim.NodeID]int{}
	for _, g := range re {
		for _, id := range g {
			seen[id]++
		}
	}
	for _, id := range append(append([]netsim.NodeID(nil), p.Switches...), p.Hosts...) {
		if seen[id] != 1 {
			t.Fatalf("node %d appears %d times in re-cut %v", id, seen[id], re)
		}
	}
	// The cold giant rack must now share its domain with other units: its
	// measured weight no longer justifies a domain of its own.
	for i, g := range re {
		hasGiant := false
		for _, id := range g {
			if id == SwitchBase {
				hasGiant = true
			}
		}
		if hasGiant && len(g) <= 17 {
			t.Fatalf("group %d still holds the giant rack alone (%d nodes): %v", i, len(g), re)
		}
	}
	// Degenerate measurements keep the current cut.
	if got := p.Reweigh(groups, make([]uint64, len(groups))); got != nil {
		t.Fatalf("all-zero measurement re-cut: %v", got)
	}
	if got := p.Reweigh(groups, []uint64{1}); got != nil {
		t.Fatal("shape-mismatched measurement accepted")
	}
	if got := p.Reweigh(nil, nil); got != nil {
		t.Fatal("empty current accepted")
	}
}

// TestPartitionsDynamicRuns: the dynamic variant behaves like Partitions
// and installs a live policy that re-cuts deterministically.
func TestPartitionsDynamicRuns(t *testing.T) {
	run := func(rc RecutConfig, n int) (string, uint64) {
		p := LeafSpine(4, 1, 3, netsim.LinkConfig{})
		nw := netsim.New(11)
		mk := func(netsim.NodeID) netsim.Node { return nopNode{} }
		f := p.Realize(nw, mk, mk)
		if err := f.PartitionsDynamic(n, rc); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 50; round++ {
			for _, h := range p.Hosts {
				nw.Send(h, 0, make([]byte, 64))
			}
			if err := nw.RunUntil(netsim.Duration(time.Duration(round+1) * 40 * time.Microsecond)); err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.Run(0); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %d %v", nw.Now(), nw.Processed(), nw.TotalStats()), nw.Recuts()
	}
	static, recuts := run(RecutConfig{}, 4)
	if recuts != 0 {
		t.Fatalf("zero RecutConfig re-cut %d times", recuts)
	}
	dyn, _ := run(RecutConfig{Every: 30 * time.Microsecond, MinSkewPct: 1, Seed: 3}, 4)
	if dyn != static {
		t.Fatalf("dynamic re-cut changed results:\nstatic: %s\ndynamic: %s", static, dyn)
	}
	seq, _ := run(RecutConfig{Every: 30 * time.Microsecond, MinSkewPct: 1, Seed: 3}, 1)
	if seq != static {
		t.Fatalf("sequential diverged:\nstatic: %s\nsequential: %s", static, seq)
	}
}

// TestSetCorePropagation: only switch-to-switch links change; host access
// links keep their configured delay.
func TestSetCorePropagation(t *testing.T) {
	p := LeafSpine(4, 2, 3, netsim.LinkConfig{Propagation: 500 * time.Nanosecond})
	p.SetCorePropagation(20 * time.Microsecond)
	core, access := 0, 0
	for _, l := range p.Links {
		if IsSwitchID(l.A) && IsSwitchID(l.B) {
			core++
			if l.Cfg.Propagation != 20*time.Microsecond {
				t.Fatalf("core link %v-%v propagation %v", l.A, l.B, l.Cfg.Propagation)
			}
		} else {
			access++
			if l.Cfg.Propagation != 500*time.Nanosecond {
				t.Fatalf("access link %v-%v propagation changed to %v", l.A, l.B, l.Cfg.Propagation)
			}
		}
	}
	if core != 4*2 || access != 4*3 {
		t.Fatalf("saw %d core and %d access links", core, access)
	}
}

// TestCutLookaheads pins the per-pair extraction: minimum over the cut
// links of each pair, NoCutLink where no direct link crosses, symmetric,
// NoCutLink diagonal.
func TestCutLookaheads(t *testing.T) {
	p := LeafSpine(2, 2, 2, netsim.LinkConfig{Propagation: 10 * time.Microsecond})
	// One short core link: leaf 0 to spine 0.
	short := 100 * time.Nanosecond
	leaf0, spine0 := p.Switches[0], p.Switches[2]
	found := false
	for i := range p.Links {
		if p.Links[i].A == leaf0 && p.Links[i].B == spine0 {
			p.Links[i].Cfg.Propagation = short
			found = true
		}
	}
	if !found {
		t.Fatal("no leaf0-spine0 link in the plan")
	}

	// Three groups: leaf0 rack, leaf1 rack, the two spines.
	groups := [][]netsim.NodeID{
		{p.Switches[0], p.Hosts[0], p.Hosts[1]},
		{p.Switches[1], p.Hosts[2], p.Hosts[3]},
		{p.Switches[2], p.Switches[3]},
	}
	la := p.CutLookaheads(groups)
	if len(la) != 3 {
		t.Fatalf("matrix rank %d", len(la))
	}
	for i := range la {
		if la[i][i] != NoCutLink {
			t.Fatalf("diagonal [%d][%d] = %v", i, i, la[i][i])
		}
		for j := range la {
			if la[i][j] != la[j][i] {
				t.Fatalf("asymmetric: [%d][%d]=%v [%d][%d]=%v", i, j, la[i][j], j, i, la[j][i])
			}
		}
	}
	// Racks never link to each other directly; both reach the spine group,
	// rack 0 through the shortened link.
	if la[0][1] != NoCutLink {
		t.Fatalf("rack-rack channel %v, want NoCutLink", la[0][1])
	}
	if la[0][2] != short {
		t.Fatalf("rack0-spine channel %v, want %v", la[0][2], short)
	}
	if la[1][2] != 10*time.Microsecond {
		t.Fatalf("rack1-spine channel %v, want %v", la[1][2], 10*time.Microsecond)
	}
}
