// Package workload generates the synthetic inputs the experiments consume:
// the paper's WordCount corpus ("a 500 MB file containing random words that
// are not causing hash collisions", §5) with controllable vocabulary size,
// word multiplicity and collision behaviour.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/daiet/daiet/internal/hashing"
)

// PartitionOf maps a word to its reducer partition. It must be shared by
// the corpus generator (which calibrates per-partition vocabularies) and
// the MapReduce partitioner.
//
// The raw FNV hash is deliberately passed through Mix64 first: the switch's
// register index is FNV1a64 mod tableSize, and FNV's low bits are weak
// enough that `FNV mod nReducers` and `FNV mod tableSize` correlate
// strongly when both moduli are powers of two — which would quietly shrink
// each partition's usable register space. The finalizer decorrelates them.
func PartitionOf(word string, keyWidth, nReducers int) int {
	if nReducers <= 0 {
		panic("workload: PartitionOf with nReducers <= 0")
	}
	padded := hashing.PadKey([]byte(word), keyWidth)
	return int(hashing.Mix64(hashing.FNV1a64(padded)) % uint64(nReducers))
}

// CorpusSpec parameterizes corpus generation.
type CorpusSpec struct {
	Seed uint64
	// Reducers is the number of partitions.
	Reducers int
	// VocabPerReducer is the number of distinct words per partition. With
	// CollisionFree set it must be <= TableSize.
	VocabPerReducer int
	// MeanMultiplicity is the average number of occurrences per word. The
	// paper's Figure-3 operating point corresponds to ~8-9 (data reduction
	// 1 - 1/m ~= 88%).
	MeanMultiplicity float64
	// MaxWordLen bounds word length (paper: 16).
	MaxWordLen int
	// KeyWidth is the fixed key width words will be padded to on the wire.
	KeyWidth int
	// TableSize is the per-tree register table size words must fit.
	TableSize int
	// CollisionFree makes each partition's vocabulary collision-free under
	// the switch's register hash (the paper's prototype requirement).
	CollisionFree bool
	// Skewed draws multiplicities from a heavy-tailed distribution instead
	// of concentrating near the mean (an ablation knob; the paper's random
	// corpus is unskewed).
	Skewed bool
}

func (s CorpusSpec) withDefaults() CorpusSpec {
	if s.Reducers == 0 {
		s.Reducers = 1
	}
	if s.VocabPerReducer == 0 {
		s.VocabPerReducer = 1024
	}
	if s.MeanMultiplicity == 0 {
		s.MeanMultiplicity = 8.3
	}
	if s.MaxWordLen == 0 {
		s.MaxWordLen = 16
	}
	if s.KeyWidth == 0 {
		s.KeyWidth = 16
	}
	if s.TableSize == 0 {
		s.TableSize = 16384
	}
	return s
}

// Corpus is a generated word stream plus its bookkeeping.
type Corpus struct {
	Spec CorpusSpec
	// Stream is the full shuffled word sequence (the input "file").
	Stream []string
	// Vocab holds each partition's distinct words.
	Vocab [][]string
	// TotalWords is len(Stream); UniqueWords the summed vocabulary sizes.
	TotalWords  int
	UniqueWords int
}

// Generate builds a corpus per spec. Generation is deterministic per seed.
func Generate(spec CorpusSpec) (*Corpus, error) {
	spec = spec.withDefaults()
	if spec.CollisionFree && spec.VocabPerReducer > spec.TableSize {
		return nil, fmt.Errorf("workload: %d words per partition exceed table size %d",
			spec.VocabPerReducer, spec.TableSize)
	}
	if spec.MaxWordLen > spec.KeyWidth {
		return nil, fmt.Errorf("workload: max word length %d exceeds key width %d",
			spec.MaxWordLen, spec.KeyWidth)
	}
	rng := rand.New(rand.NewSource(int64(hashing.Mix64(spec.Seed))))

	c := &Corpus{Spec: spec, Vocab: make([][]string, spec.Reducers)}
	usedWord := make(map[string]bool)
	// usedIdx tracks per-partition occupied register slots (collision-free
	// mode only).
	usedIdx := make([]map[int]bool, spec.Reducers)
	for i := range usedIdx {
		usedIdx[i] = make(map[int]bool)
	}
	need := spec.Reducers * spec.VocabPerReducer
	budget := 500*need + 100_000
	for done := 0; done < need; {
		if budget == 0 {
			return nil, fmt.Errorf("workload: could not place %d words (placed %d)", need, done)
		}
		budget--
		w := hashing.RandomWord(rng, spec.MaxWordLen)
		if usedWord[w] {
			continue
		}
		p := PartitionOf(w, spec.KeyWidth, spec.Reducers)
		if len(c.Vocab[p]) >= spec.VocabPerReducer {
			continue
		}
		if spec.CollisionFree {
			idx := hashing.Index(hashing.PadKey([]byte(w), spec.KeyWidth), spec.TableSize)
			if usedIdx[p][idx] {
				continue
			}
			usedIdx[p][idx] = true
		}
		usedWord[w] = true
		c.Vocab[p] = append(c.Vocab[p], w)
		done++
	}

	// Emit each word MeanMultiplicity times on average.
	for p := range c.Vocab {
		for _, w := range c.Vocab[p] {
			m := multiplicity(rng, spec)
			for i := 0; i < m; i++ {
				c.Stream = append(c.Stream, w)
			}
		}
	}
	rng.Shuffle(len(c.Stream), func(i, j int) {
		c.Stream[i], c.Stream[j] = c.Stream[j], c.Stream[i]
	})
	c.TotalWords = len(c.Stream)
	c.UniqueWords = need
	return c, nil
}

// multiplicity samples one word's occurrence count, mean MeanMultiplicity,
// minimum 1.
func multiplicity(rng *rand.Rand, spec CorpusSpec) int {
	mean := spec.MeanMultiplicity
	if spec.Skewed {
		// Geometric-ish heavy tail with the requested mean.
		p := 1.0 / mean
		m := 1
		for rng.Float64() > p && m < int(mean*50) {
			m++
		}
		return m
	}
	// Concentrated: floor(mean) or ceil(mean) with the right probability.
	lo := int(mean)
	frac := mean - float64(lo)
	if rng.Float64() < frac {
		return lo + 1
	}
	if lo < 1 {
		return 1
	}
	return lo
}

// Splits cuts the stream into n contiguous splits (the mappers' input
// shards), sizes differing by at most one.
func (c *Corpus) Splits(n int) [][]string {
	if n <= 0 {
		panic("workload: Splits with n <= 0")
	}
	out := make([][]string, n)
	base := len(c.Stream) / n
	rem := len(c.Stream) % n
	pos := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out[i] = c.Stream[pos : pos+sz]
		pos += sz
	}
	return out
}
