package workload

import (
	"math"
	"testing"

	"github.com/daiet/daiet/internal/hashing"
)

func TestGenerateDefaults(t *testing.T) {
	c, err := Generate(CorpusSpec{Seed: 1, Reducers: 4, VocabPerReducer: 50, MeanMultiplicity: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.UniqueWords != 200 {
		t.Fatalf("unique %d", c.UniqueWords)
	}
	mean := float64(c.TotalWords) / float64(c.UniqueWords)
	if math.Abs(mean-5) > 0.5 {
		t.Fatalf("mean multiplicity %.2f want ~5", mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := CorpusSpec{Seed: 42, Reducers: 3, VocabPerReducer: 30, MeanMultiplicity: 4}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stream) != len(b.Stream) {
		t.Fatal("stream lengths differ")
	}
	for i := range a.Stream {
		if a.Stream[i] != b.Stream[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestPartitionAgreement(t *testing.T) {
	// Every word in partition p's vocabulary must map back to partition p
	// under the shared partitioner — otherwise the register-table sizing
	// guarantee breaks.
	c, err := Generate(CorpusSpec{Seed: 7, Reducers: 6, VocabPerReducer: 40, MeanMultiplicity: 3})
	if err != nil {
		t.Fatal(err)
	}
	for p, vocab := range c.Vocab {
		if len(vocab) != 40 {
			t.Fatalf("partition %d has %d words", p, len(vocab))
		}
		for _, w := range vocab {
			if got := PartitionOf(w, c.Spec.KeyWidth, 6); got != p {
				t.Fatalf("word %q in vocab %d partitions to %d", w, p, got)
			}
		}
	}
}

func TestCollisionFreePerPartition(t *testing.T) {
	const tableSize = 512
	c, err := Generate(CorpusSpec{
		Seed: 3, Reducers: 4, VocabPerReducer: 100,
		MeanMultiplicity: 2, TableSize: tableSize, CollisionFree: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, vocab := range c.Vocab {
		seen := map[int]bool{}
		for _, w := range vocab {
			idx := hashing.Index(hashing.PadKey([]byte(w), c.Spec.KeyWidth), tableSize)
			if seen[idx] {
				t.Fatalf("partition %d: register collision for %q", p, w)
			}
			seen[idx] = true
		}
	}
}

func TestGenerateRejectsImpossibleSpecs(t *testing.T) {
	if _, err := Generate(CorpusSpec{Reducers: 1, VocabPerReducer: 100, TableSize: 50, CollisionFree: true}); err == nil {
		t.Fatal("vocab > table size must fail")
	}
	if _, err := Generate(CorpusSpec{MaxWordLen: 20, KeyWidth: 16}); err == nil {
		t.Fatal("word length > key width must fail")
	}
}

func TestSplits(t *testing.T) {
	c, err := Generate(CorpusSpec{Seed: 1, Reducers: 2, VocabPerReducer: 20, MeanMultiplicity: 3})
	if err != nil {
		t.Fatal(err)
	}
	splits := c.Splits(7)
	total := 0
	min, max := len(c.Stream), 0
	for _, s := range splits {
		total += len(s)
		if len(s) < min {
			min = len(s)
		}
		if len(s) > max {
			max = len(s)
		}
	}
	if total != len(c.Stream) {
		t.Fatalf("splits lose words: %d vs %d", total, len(c.Stream))
	}
	if max-min > 1 {
		t.Fatalf("unbalanced splits: min %d max %d", min, max)
	}
}

func TestSkewedMultiplicity(t *testing.T) {
	c, err := Generate(CorpusSpec{
		Seed: 5, Reducers: 1, VocabPerReducer: 500, MeanMultiplicity: 8, Skewed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(c.TotalWords) / float64(c.UniqueWords)
	if mean < 5 || mean > 12 {
		t.Fatalf("skewed mean %.2f outside sanity band", mean)
	}
	// Skew implies some word appears much more often than the mean.
	counts := map[string]int{}
	for _, w := range c.Stream {
		counts[w]++
	}
	maxC := 0
	for _, n := range counts {
		if n > maxC {
			maxC = n
		}
	}
	if maxC < int(2.5*mean) {
		t.Fatalf("no heavy tail: max count %d mean %.1f", maxC, mean)
	}
}

func TestPartitionOfPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	PartitionOf("x", 16, 0)
}
