package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// TestSwitchSurvivesGarbageFrames drives random byte blobs and mutated
// DAIET frames through a configured switch: the program must never panic,
// and its counters must account every input as received.
func TestSwitchSurvivesGarbageFrames(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%50 + 1

		nw := netsim.New(uint64(seed))
		prog, err := core.NewProgram(core.ProgramConfig{})
		if err != nil {
			return false
		}
		sw := topology.SwitchBase
		nw.AddNode(sw, prog.Switch())
		host := &frameSource{}
		nw.AddNode(1, host)
		nw.Connect(sw, 1, netsim.LinkConfig{})
		if err := prog.InstallRoute(1, 0); err != nil {
			return false
		}
		if err := prog.ConfigureTree(core.TreeConfig{
			TreeID: 1, Children: 1, TableSize: 16, Agg: core.AggSum,
		}); err != nil {
			return false
		}

		for i := 0; i < n; i++ {
			var frame []byte
			switch rng.Intn(3) {
			case 0: // pure garbage
				frame = make([]byte, rng.Intn(400))
				rng.Read(frame)
			case 1: // valid frame, then corrupted at a random position
				frame = validDaietFrame(rng)
				if len(frame) > 0 {
					frame[rng.Intn(len(frame))] ^= byte(1 + rng.Intn(255))
				}
			default: // truncated valid frame
				full := validDaietFrame(rng)
				frame = full[:rng.Intn(len(full)+1)]
			}
			nw.Send(1, 0, frame)
		}
		if err := nw.Run(1_000_000); err != nil {
			return false
		}
		c := prog.Switch().Counters
		return c.RxFrames == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// frameSource is a do-nothing host for robustness tests.
type frameSource struct{}

func (*frameSource) Attach(*netsim.Network, netsim.NodeID) {}
func (*frameSource) HandleFrame(int, []byte)               {}

// validDaietFrame builds a well-formed frame with a random number of pairs.
func validDaietFrame(rng *rand.Rand) []byte {
	n := rng.Intn(11)
	buf := wire.NewBuffer(wire.DefaultHeadroom, 256)
	for i := 0; i < n; i++ {
		key := make([]byte, 1+rng.Intn(16))
		rng.Read(key)
		_ = wire.AppendPair(buf, wire.DefaultGeometry, key, rng.Uint32())
	}
	hdr := wire.DaietHeader{
		Type:     wire.DaietType(1 + rng.Intn(4)),
		TreeID:   uint32(rng.Intn(3)),
		Seq:      rng.Uint32(),
		NumPairs: uint16(n),
		Flags:    uint16(rng.Intn(1 << 16)),
	}
	return wire.BuildDaietFrame(buf, hdr, 1, uint32(rng.Intn(3)), wire.UDPPortDaiet)
}

// TestCollectorSurvivesGarbagePayloads fuzzes the reducer-side decoder.
func TestCollectorSurvivesGarbagePayloads(t *testing.T) {
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(7, sum, wire.DefaultGeometry, 1)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		p := make([]byte, rng.Intn(300))
		rng.Read(p)
		col.Ingest(p) // must never panic
	}
	if col.Complete() {
		t.Fatal("garbage completed the stream")
	}
}

// TestTreeStateInvariantsUnderRandomTraffic checks the conservation
// invariant (DESIGN.md #4) under randomized valid traffic: every pair that
// enters a switch is stored, combined, or spilled — never lost.
func TestTreeStateInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64, tableRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tableSize := 1 + int(tableRaw)%32

		nw := netsim.New(uint64(seed))
		prog, err := core.NewProgram(core.ProgramConfig{})
		if err != nil {
			return false
		}
		sw := topology.SwitchBase
		nw.AddNode(sw, prog.Switch())
		nw.AddNode(1, &frameSource{})
		nw.AddNode(2, &frameSource{})
		nw.Connect(sw, 1, netsim.LinkConfig{})
		nw.Connect(sw, 2, netsim.LinkConfig{})
		_ = prog.InstallRoute(1, 0)
		_ = prog.InstallRoute(2, 1)
		if err := prog.ConfigureTree(core.TreeConfig{
			TreeID: 2, Children: 1, TableSize: tableSize, Agg: core.AggSum,
		}); err != nil {
			return false
		}

		nPairs := 0
		for p := 0; p < 20; p++ {
			buf := wire.NewBuffer(wire.DefaultHeadroom, 256)
			n := rng.Intn(11)
			for i := 0; i < n; i++ {
				key := []byte{byte('a' + rng.Intn(8)), byte('a' + rng.Intn(8))}
				_ = wire.AppendPair(buf, wire.DefaultGeometry, key, 1)
			}
			hdr := wire.DaietHeader{Type: wire.TypeData, TreeID: 2, NumPairs: uint16(n)}
			nw.Send(1, 0, wire.BuildDaietFrame(buf, hdr, 1, 2, wire.UDPPortDaiet))
			nPairs += n
		}
		if err := nw.Run(1_000_000); err != nil {
			return false
		}
		st, ok := prog.TreeStats(2)
		if !ok {
			return false
		}
		return st.PairsIn == uint64(nPairs) &&
			st.PairsStored+st.PairsCombined+st.PairsSpilled == st.PairsIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
