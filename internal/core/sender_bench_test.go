package core_test

import (
	"fmt"
	"testing"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// BenchmarkSenderBurst measures the send-side scheduling cost of streaming
// one map task's pairs into the fabric at different burst sizes: maxBurst 1
// is the historical one-carrier-call-per-packet path, larger bursts
// coalesce per-packet carrier hand-offs and engine scheduling into
// per-burst work. Delivered results are identical at every burst size
// (asserted by the unit tests); only the constant factor moves.
func BenchmarkSenderBurst(b *testing.B) {
	const pairs = 4000
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	for _, burst := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				nw := netsim.New(1)
				programs := map[netsim.NodeID]*core.Program{}
				hosts := map[netsim.NodeID]*transport.Host{}
				plan := topology.SingleSwitch(2, netsim.LinkConfig{})
				fab := plan.Realize(nw,
					func(id netsim.NodeID) netsim.Node {
						prog, err := core.NewProgram(core.ProgramConfig{})
						if err != nil {
							b.Fatal(err)
						}
						programs[id] = prog
						return prog.Switch()
					},
					func(id netsim.NodeID) netsim.Node {
						h := transport.NewHost()
						hosts[id] = h
						return h
					})
				if err := controller.New(fab, programs).InstallRouting(); err != nil {
					b.Fatal(err)
				}
				worker, reducer := plan.Hosts[0], plan.Hosts[1]
				s, err := core.NewSender(hosts[worker], uint32(reducer), reducer,
					wire.DefaultGeometry, 10)
				if err != nil {
					b.Fatal(err)
				}
				s.SetMaxBurst(burst)
				for k := 0; k < pairs; k++ {
					if err := s.Send(keys[k%len(keys)], uint32(k)); err != nil {
						b.Fatal(err)
					}
				}
				s.End()
				if err := nw.Run(0); err != nil {
					b.Fatal(err)
				}
				events = nw.Processed()
			}
			b.ReportMetric(float64(events)/float64(pairs/10), "events/pkt")
		})
	}
}
