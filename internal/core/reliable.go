package core

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// Reliability extension. The paper leaves packet losses to future work
// ("In the current prototype, we do not address the issue of packet
// losses"); this file implements the natural first step the wire format
// already reserves space for: reliable delivery on the worker→switch edge
// hop, with
//
//   - sender-side go-back-N over the DAIET sequence number (window, RTO,
//     bounded retries), and
//   - switch-side in-order filtering per (tree, sender) with cumulative
//     ACK generation — which keeps aggregation idempotent under
//     retransmission even for non-idempotent combiners like sum.
//
// Multi-hop reliability (protecting switch→switch and switch→reducer
// flushes) needs switch-side retransmit buffers and is out of scope, as in
// SwitchML-style systems where reliability remains host-driven.

// TimerCarrier extends Carrier with timer scheduling, which retransmission
// needs. transport.Host implements it over the simulator clock;
// udprt.Client implements it with real timers.
type TimerCarrier interface {
	Carrier
	After(d time.Duration, fn func())
}

// ReliableConfig tunes a ReliableSender. The zero value gets defaults.
type ReliableConfig struct {
	Window     int           // max unacknowledged packets (default 32)
	RTO        time.Duration // retransmission timeout (default 2ms)
	MaxRetries int           // give-up bound per stall (default 50)
	// Epoch distinguishes rounds on the same tree. The switch treats a
	// seq-0 packet with a newer epoch as the start of a fresh stream and
	// can still acknowledge stragglers of the previous epoch — resolving
	// the lost-final-ACK ambiguity (the protocol's TIME_WAIT analogue).
	// Applications increment it per round (mod 256).
	Epoch uint8
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.RTO == 0 {
		c.RTO = 2 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 50
	}
	return c
}

// ReliableStats counts a reliable sender's activity.
type ReliableStats struct {
	PairsSent       uint64
	DataPackets     uint64
	EndPackets      uint64
	Transmissions   uint64 // first transmissions + retransmissions
	Retransmissions uint64
	AcksReceived    uint64
}

// ReliableSender is the loss-tolerant counterpart of Sender: it assigns
// consecutive sequence numbers to DATA packets and the final END, retains
// payloads until cumulatively acknowledged by the switch, and retransmits
// from the lowest unacknowledged sequence on timeout.
//
// It is not safe for concurrent use; over real sockets, serialize calls
// and timer callbacks externally.
type ReliableSender struct {
	carrier  TimerCarrier
	bc       BurstCarrier // non-nil when carrier supports bursts
	cfg      ReliableConfig
	geom     wire.PairGeometry
	maxPairs int
	treeID   uint32
	dst      netsim.NodeID

	buf *wire.Buffer
	n   int

	nextSeq  uint32   // next sequence to assign
	sndUna   uint32   // lowest unacknowledged sequence
	payloads [][]byte // payloads[i] is seq sndUna+i; unsent if beyond sent
	sent     uint32   // sequences [sndUna, sndUna+sent) are in flight
	ended    bool
	failed   error
	timerGen int
	timerOn  bool
	retries  int

	// OnComplete fires once when the END is acknowledged.
	OnComplete func()
	// OnError fires once if MaxRetries is exhausted.
	OnError func(error)

	Stats ReliableStats
}

// NewReliableSender creates a reliable sender for one (worker, tree)
// stream.
func NewReliableSender(carrier TimerCarrier, treeID uint32, dst netsim.NodeID,
	geom wire.PairGeometry, maxPairs int, cfg ReliableConfig) (*ReliableSender, error) {

	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if maxPairs <= 0 {
		maxPairs = geom.MaxPairsPerPacket()
		if maxPairs > wire.DefaultMaxPairs {
			maxPairs = wire.DefaultMaxPairs
		}
	}
	bc, _ := carrier.(BurstCarrier)
	return &ReliableSender{
		carrier:  carrier,
		bc:       bc,
		cfg:      cfg.withDefaults(),
		geom:     geom,
		maxPairs: maxPairs,
		treeID:   treeID,
		dst:      dst,
	}, nil
}

// Send appends one pair, packetizing as the buffer fills.
func (s *ReliableSender) Send(key []byte, value uint32) error {
	if s.ended {
		return fmt.Errorf("core: reliable Send after End on tree %d", s.treeID)
	}
	if s.failed != nil {
		return s.failed
	}
	if s.buf == nil {
		s.buf = wire.NewBuffer(wire.DefaultHeadroom, s.maxPairs*s.geom.PairWidth())
		s.n = 0
	}
	if err := wire.AppendPair(s.buf, s.geom, key, value); err != nil {
		return err
	}
	s.n++
	s.Stats.PairsSent++
	if s.n >= s.maxPairs {
		s.sealData()
	}
	return nil
}

// End seals pending pairs and queues the END packet. Completion is
// signalled via OnComplete when the END is acknowledged.
func (s *ReliableSender) End() {
	if s.ended {
		return
	}
	if s.n > 0 {
		s.sealData()
	}
	s.ended = true
	buf := wire.NewBuffer(wire.DefaultHeadroom, 0)
	hdr := wire.DaietHeader{
		Type:   wire.TypeEnd,
		TreeID: s.treeID,
		Seq:    s.nextSeq,
		Flags:  uint16(s.cfg.Epoch) << 8,
	}
	hdr.SerializeTo(buf)
	s.enqueue(buf.Bytes())
	s.Stats.EndPackets++
}

// Done reports whether every packet, including the END, is acknowledged.
func (s *ReliableSender) Done() bool {
	return s.ended && len(s.payloads) == 0 && s.failed == nil
}

// Err returns the terminal error after a give-up, if any.
func (s *ReliableSender) Err() error { return s.failed }

// sealData finalizes the current buffer into a sequenced DATA payload.
func (s *ReliableSender) sealData() {
	hdr := wire.DaietHeader{
		Type:     wire.TypeData,
		TreeID:   s.treeID,
		Seq:      s.nextSeq,
		NumPairs: uint16(s.n),
		Flags:    uint16(s.cfg.Epoch) << 8,
	}
	hdr.SerializeTo(s.buf)
	s.enqueue(s.buf.Bytes())
	s.Stats.DataPackets++
	s.buf = nil
	s.n = 0
}

// enqueue stores a payload under the next sequence number and pumps.
func (s *ReliableSender) enqueue(payload []byte) {
	// The payload slice is retained for retransmission; copy it out of any
	// shared buffer.
	s.payloads = append(s.payloads, append([]byte(nil), payload...))
	s.nextSeq++
	s.pump()
}

// pump transmits queued payloads within the window.
func (s *ReliableSender) pump() {
	if s.failed != nil {
		return
	}
	first := s.sent
	for int(s.sent) < len(s.payloads) && int(s.sent) < s.cfg.Window {
		s.sent++
	}
	if s.sent > first {
		s.transmit(s.payloads[first:s.sent])
	}
	s.armTimer()
}

// transmit hands payloads to the carrier, as one burst when supported —
// window fills and go-back-N retransmissions are the bursty paths.
func (s *ReliableSender) transmit(payloads [][]byte) {
	if s.bc != nil && len(payloads) > 1 {
		s.bc.SendUDPBurst(s.dst, wire.UDPPortDaiet, wire.UDPPortDaiet, payloads)
	} else {
		for _, p := range payloads {
			s.carrier.SendUDP(s.dst, wire.UDPPortDaiet, wire.UDPPortDaiet, p)
		}
	}
	s.Stats.Transmissions += uint64(len(payloads))
}

func (s *ReliableSender) armTimer() {
	if s.timerOn || len(s.payloads) == 0 || s.failed != nil {
		return
	}
	s.timerOn = true
	gen := s.timerGen
	s.carrier.After(s.cfg.RTO, func() { s.onTimer(gen) })
}

func (s *ReliableSender) onTimer(gen int) {
	s.timerOn = false
	if gen != s.timerGen || len(s.payloads) == 0 || s.failed != nil {
		return
	}
	s.retries++
	if s.retries > s.cfg.MaxRetries {
		s.failed = fmt.Errorf("core: tree %d: gave up after %d retries at seq %d",
			s.treeID, s.cfg.MaxRetries, s.sndUna)
		if s.OnError != nil {
			s.OnError(s.failed)
		}
		return
	}
	// Go-back-N: retransmit everything in flight, as one burst.
	s.transmit(s.payloads[:s.sent])
	s.Stats.Retransmissions += uint64(s.sent)
	s.armTimer()
}

// HandleAck processes a cumulative acknowledgement: every sequence below
// ackSeq is released.
func (s *ReliableSender) HandleAck(ackSeq uint32) {
	s.Stats.AcksReceived++
	if s.failed != nil {
		return
	}
	acked := int32(ackSeq - s.sndUna)
	if acked <= 0 || int(acked) > len(s.payloads) {
		return // stale or absurd ACK
	}
	s.payloads = s.payloads[acked:]
	s.sndUna = ackSeq
	if uint32(acked) >= s.sent {
		s.sent = 0
	} else {
		s.sent -= uint32(acked)
	}
	s.retries = 0
	s.timerGen++
	s.timerOn = false
	if s.Done() {
		if s.OnComplete != nil {
			f := s.OnComplete
			s.OnComplete = nil
			f()
		}
		return
	}
	s.pump()
}

// AckMux demultiplexes inbound DAIET traffic on a worker host: ACK packets
// route to the ReliableSender for their tree; everything else is ignored
// (workers do not collect). Reducer hosts keep using Collector.Attach.
type AckMux struct {
	senders map[uint32]*ReliableSender
}

// NewAckMux installs the mux on the host's DAIET port and returns it.
func NewAckMux(h *transport.Host) *AckMux {
	m := &AckMux{senders: make(map[uint32]*ReliableSender)}
	h.HandleUDP(wire.UDPPortDaiet, func(_ wire.IPv4Addr, _ uint16, payload []byte) {
		m.Ingest(payload)
	})
	return m
}

// Register attaches a sender to its tree ID.
func (m *AckMux) Register(s *ReliableSender) { m.senders[s.treeID] = s }

// Ingest routes one DAIET payload (exposed for real-socket carriers).
// ACKs from a different epoch are dropped: they acknowledge another round.
func (m *AckMux) Ingest(payload []byte) {
	var hdr wire.DaietHeader
	if _, err := hdr.DecodeFrom(payload); err != nil {
		return
	}
	if hdr.Type != wire.TypeAck {
		return
	}
	s, ok := m.senders[hdr.TreeID]
	if !ok {
		return
	}
	if uint8(hdr.Flags>>8) != s.cfg.Epoch {
		return
	}
	s.HandleAck(hdr.Seq)
}
