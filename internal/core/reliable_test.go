package core_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// buildLossyRig builds a single-switch fabric where mapper links drop
// frames with probability lossProb while the reducer's link is clean (the
// extension protects the worker->switch edge hop; see reliable.go).
func buildLossyRig(t *testing.T, nMappers int, lossProb float64) (*rig, []netsim.NodeID, netsim.NodeID) {
	t.Helper()
	r := &rig{
		nw:       netsim.New(99),
		programs: make(map[netsim.NodeID]*core.Program),
		hosts:    make(map[netsim.NodeID]*transport.Host),
	}
	// Hand-build the plan so per-link loss differs.
	sw := topology.SwitchBase
	plan := &topology.Plan{Name: "lossy", Switches: []netsim.NodeID{sw}}
	for i := 0; i < nMappers+1; i++ {
		h := topology.HostBase + netsim.NodeID(i)
		plan.Hosts = append(plan.Hosts, h)
		cfg := netsim.LinkConfig{}
		if i < nMappers {
			cfg.LossProb = lossProb
		}
		plan.Links = append(plan.Links, topology.Link{A: h, B: sw, Cfg: cfg})
	}
	mkSwitch := func(id netsim.NodeID) netsim.Node {
		prog, err := core.NewProgram(core.ProgramConfig{})
		if err != nil {
			t.Fatal(err)
		}
		r.programs[id] = prog
		return prog.Switch()
	}
	mkHost := func(id netsim.NodeID) netsim.Node {
		h := transport.NewHost()
		r.hosts[id] = h
		return h
	}
	r.fab = plan.Realize(r.nw, mkSwitch, mkHost)
	r.ctl = controller.New(r.fab, r.programs)
	if err := r.ctl.InstallRouting(); err != nil {
		t.Fatal(err)
	}
	return r, plan.Hosts[:nMappers], plan.Hosts[nMappers]
}

// installReliableTree installs one tree with the reliability gate on.
func installReliableTree(t *testing.T, r *rig, reducer netsim.NodeID, mappers []netsim.NodeID, tableSize int) *controller.TreePlan {
	t.Helper()
	plan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	senders := make([]uint32, len(mappers))
	for i, m := range mappers {
		senders[i] = uint32(m)
	}
	for _, sw := range plan.SwitchNodes {
		err := r.programs[sw].ConfigureTree(core.TreeConfig{
			TreeID:    plan.TreeID,
			OutPort:   r.fab.PortTo(sw, plan.Parent[sw]),
			Children:  plan.Children[sw],
			Agg:       core.AggSum,
			TableSize: tableSize,
			Reliable:  true,
			Senders:   senders,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return plan
}

func TestReliableAggregationUnderLoss(t *testing.T) {
	const nMappers, keys = 3, 120
	r, mappers, reducer := buildLossyRig(t, nMappers, 0.15)
	plan := installReliableTree(t, r, reducer, mappers, 1024)

	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, plan.RootChildren())
	col.Attach(r.hosts[reducer])

	want := map[string]uint32{}
	var senders []*core.ReliableSender
	for mi, m := range mappers {
		mux := core.NewAckMux(r.hosts[m])
		s, err := core.NewReliableSender(r.hosts[m], uint32(reducer), reducer,
			wire.DefaultGeometry, 10, core.ReliableConfig{RTO: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		mux.Register(s)
		senders = append(senders, s)
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key%03d", k)
			val := uint32(mi*1000 + k)
			want[key] += val
			if err := s.Send([]byte(key), val); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := r.nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}

	if !col.Complete() {
		t.Fatalf("collector incomplete under loss: %+v", col.Stats)
	}
	// Exactly-once despite retransmission: sums must match the reference.
	got := col.Result()
	if len(got) != len(want) {
		t.Fatalf("keys %d want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %d want %d (duplicate aggregation?)", k, got[k], v)
		}
	}
	var retrans uint64
	for _, s := range senders {
		if !s.Done() {
			t.Fatalf("sender not done: err=%v", s.Err())
		}
		retrans += s.Stats.Retransmissions
	}
	if retrans == 0 {
		t.Fatal("no retransmissions at 15% loss — loss injection broken?")
	}
	// Switch-side: duplicates must have been filtered.
	st, _ := r.programs[plan.SwitchNodes[0]].TreeStats(plan.TreeID)
	if st.DupsDropped+st.GapsDropped == 0 {
		t.Fatalf("gate never filtered anything: %+v", st)
	}
	if st.AcksOut == 0 {
		t.Fatal("no ACKs emitted")
	}
}

func TestUnreliableSendersLoseDataUnderLoss(t *testing.T) {
	// Control experiment: the base protocol under the same loss fails to
	// complete — the gap the extension closes.
	const nMappers = 3
	r, mappers, reducer := buildLossyRig(t, nMappers, 0.15)
	plan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.InstallTree(plan, controller.TreeOptions{Agg: core.AggSum, TableSize: 1024}); err != nil {
		t.Fatal(err)
	}
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, plan.RootChildren())
	col.Attach(r.hosts[reducer])
	for _, m := range mappers {
		s, _ := core.NewSender(r.hosts[m], uint32(reducer), reducer, wire.DefaultGeometry, 10)
		for k := 0; k < 120; k++ {
			_ = s.Send([]byte(fmt.Sprintf("key%03d", k)), 1)
		}
		s.End()
	}
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	// With 15% loss over ~39 packets, some DATA or END is essentially
	// guaranteed to vanish: either the round stalls (lost END) or some
	// key's sum falls short of the true value 3 (lost DATA).
	if col.Complete() {
		short := 0
		for k := 0; k < 120; k++ {
			if col.Result()[fmt.Sprintf("key%03d", k)] != uint32(nMappers) {
				short++
			}
		}
		if short == 0 {
			t.Fatal("lossy unreliable run completed perfectly; loss injection broken?")
		}
	}
}

func TestReliableSenderGivesUpEventually(t *testing.T) {
	// 100% loss: the sender must fail cleanly, not livelock.
	r, mappers, reducer := buildLossyRig(t, 1, 1.0)
	installReliableTree(t, r, reducer, mappers, 64)

	var gotErr error
	mux := core.NewAckMux(r.hosts[mappers[0]])
	s, err := core.NewReliableSender(r.hosts[mappers[0]], uint32(reducer), reducer,
		wire.DefaultGeometry, 10, core.ReliableConfig{RTO: 100 * time.Microsecond, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	mux.Register(s)
	s.OnError = func(e error) { gotErr = e }
	_ = s.Send([]byte("k"), 1)
	s.End()
	if err := r.nw.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil || s.Err() == nil {
		t.Fatal("sender never gave up under 100% loss")
	}
	if s.Done() {
		t.Fatal("Done must be false after failure")
	}
}

func TestReliableRejectsUnknownSender(t *testing.T) {
	r, mappers, reducer := buildLossyRig(t, 2, 0)
	// Only mapper 0 is registered.
	plan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	sw := plan.SwitchNodes[0]
	if err := r.programs[sw].ConfigureTree(core.TreeConfig{
		TreeID:    plan.TreeID,
		OutPort:   r.fab.PortTo(sw, reducer),
		Children:  plan.Children[sw],
		Agg:       core.AggSum,
		TableSize: 64,
		Reliable:  true,
		Senders:   []uint32{uint32(mappers[0])},
	}); err != nil {
		t.Fatal(err)
	}
	// The unregistered mapper's packets must be dropped and counted.
	s, _ := core.NewSender(r.hosts[mappers[1]], uint32(reducer), reducer, wire.DefaultGeometry, 10)
	_ = s.Send([]byte("x"), 1)
	s.End()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	st, _ := r.programs[sw].TreeStats(plan.TreeID)
	if st.UnknownSender == 0 {
		t.Fatalf("unknown sender not counted: %+v", st)
	}
	if st.PairsIn != 0 {
		t.Fatalf("unknown sender's pairs were aggregated: %+v", st)
	}
}

func TestReliableConfigValidation(t *testing.T) {
	p, err := core.NewProgram(core.ProgramConfig{})
	if err != nil {
		t.Fatal(err)
	}
	err = p.ConfigureTree(core.TreeConfig{
		TreeID: 1, Children: 1, TableSize: 8, Agg: core.AggSum, Reliable: true,
	})
	if err == nil {
		t.Fatal("reliable without senders must fail")
	}
	if p.Registers().Used() != 0 {
		t.Fatalf("failed config leaked %d bytes", p.Registers().Used())
	}
}

func TestReliableTwoRounds(t *testing.T) {
	// Sequence numbers reset after flush: a second round with fresh senders
	// must work on the same tree.
	r, mappers, reducer := buildLossyRig(t, 2, 0.1)
	plan := installReliableTree(t, r, reducer, mappers, 256)
	sum, _ := core.FuncByID(core.AggSum)

	muxes := make([]*core.AckMux, len(mappers))
	for i, m := range mappers {
		muxes[i] = core.NewAckMux(r.hosts[m])
	}
	for round := 1; round <= 2; round++ {
		col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, plan.RootChildren())
		col.Attach(r.hosts[reducer])
		want := map[string]uint32{}
		for _, m := range mappers {
			s, err := core.NewReliableSender(r.hosts[m], uint32(reducer), reducer,
				wire.DefaultGeometry, 10, core.ReliableConfig{
					RTO:   500 * time.Microsecond,
					Epoch: uint8(round), // distinguishes the rounds on the wire
				})
			if err != nil {
				t.Fatal(err)
			}
			muxes[indexOf(mappers, m)].Register(s)
			for k := 0; k < 30; k++ {
				key := fmt.Sprintf("r%dk%02d", round, k)
				want[key] += uint32(k)
				if err := s.Send([]byte(key), uint32(k)); err != nil {
					t.Fatal(err)
				}
			}
			s.End()
		}
		if err := r.nw.Run(20_000_000); err != nil {
			t.Fatal(err)
		}
		if !col.Complete() {
			t.Fatalf("round %d incomplete: %+v", round, col.Stats)
		}
		for k, v := range want {
			if col.Result()[k] != v {
				t.Fatalf("round %d key %q = %d want %d", round, k, col.Result()[k], v)
			}
		}
	}
}

func indexOf(ids []netsim.NodeID, id netsim.NodeID) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}
