package core

import (
	"sort"

	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// CollectorStats counts what a reducer receives — the quantities Figure 3
// measures (data volume and packet counts at the tree roots).
type CollectorStats struct {
	Packets           uint64 // all DAIET packets received
	DataPackets       uint64
	EndPackets        uint64
	AggregatedPackets uint64 // packets flagged as switch flush output
	SpillPackets      uint64 // packets flagged as spillover
	PairsReceived     uint64
	PayloadBytes      uint64 // DAIET header + pairs bytes received
	UniqueKeys        uint64 // distinct keys in the final result
}

// Collector is the reducer-side half of the DAIET protocol: it receives
// (possibly pre-aggregated) pairs, applies the final combine, and signals
// completion when the expected number of END packets has arrived.
//
// Because in-network aggregation destroys the mapper-side sort order, the
// collector exposes SortedResult for the reducer's mandatory full sort
// (paper §4: "the intermediate results must be sorted at the reducer").
type Collector struct {
	geom         wire.PairGeometry
	agg          AggFunc
	expectedEnds int
	endsSeen     int
	treeID       uint32

	result   map[string]uint32
	complete bool

	// KeepRaw, when set before traffic arrives, records every received
	// pair in RawPairs in arrival order. The MapReduce harness uses the
	// raw stream to measure the reducer's real sort+combine time (the
	// paper's reduce-time panel).
	KeepRaw  bool
	RawPairs []KV

	// OnComplete fires once, when the last expected END arrives.
	OnComplete func()

	Stats CollectorStats
}

// NewCollector builds a collector for one tree. expectedEnds is the number
// of END packets that terminate the stream: with in-network aggregation
// that is the reducer's tree child count (typically 1, its ToR switch);
// without it, the number of mappers.
func NewCollector(treeID uint32, agg AggFunc, geom wire.PairGeometry, expectedEnds int) *Collector {
	return &Collector{
		geom:         geom,
		agg:          agg,
		expectedEnds: expectedEnds,
		treeID:       treeID,
		result:       make(map[string]uint32),
	}
}

// Attach registers the collector on the host's DAIET UDP port.
func (c *Collector) Attach(h *transport.Host) {
	h.HandleUDP(wire.UDPPortDaiet, func(_ wire.IPv4Addr, _ uint16, payload []byte) {
		c.handle(payload)
	})
}

// Ingest feeds one raw DAIET UDP payload into the collector. Alternative
// carriers (the real-socket runtime in internal/udprt) call this directly.
func (c *Collector) Ingest(payload []byte) { c.handle(payload) }

// Complete reports whether all expected ENDs have arrived.
func (c *Collector) Complete() bool { return c.complete }

// handle ingests one DAIET UDP payload.
func (c *Collector) handle(payload []byte) {
	var hdr wire.DaietHeader
	rest, err := hdr.DecodeFrom(payload)
	if err != nil {
		return // undecodable datagram: ignore, like any UDP service
	}
	if hdr.TreeID != c.treeID {
		return
	}
	c.Stats.Packets++
	c.Stats.PayloadBytes += uint64(len(payload))
	if hdr.Flags&wire.FlagAggregated != 0 {
		c.Stats.AggregatedPackets++
	}
	if hdr.Flags&wire.FlagSpill != 0 {
		c.Stats.SpillPackets++
	}
	switch hdr.Type {
	case wire.TypeData:
		c.Stats.DataPackets++
		view, err := wire.NewPairView(c.geom, rest, int(hdr.NumPairs))
		if err != nil {
			return
		}
		for i := 0; i < view.Len(); i++ {
			key := string(wire.TrimKey(view.Key(i)))
			v := view.Value(i)
			if cur, ok := c.result[key]; ok {
				c.result[key] = c.agg.Combine(cur, v)
			} else {
				c.result[key] = c.agg.Combine(c.agg.Identity(), v)
			}
			if c.KeepRaw {
				c.RawPairs = append(c.RawPairs, KV{Key: key, Value: v})
			}
			c.Stats.PairsReceived++
		}
	case wire.TypeEnd:
		c.Stats.EndPackets++
		c.endsSeen++
		if c.endsSeen == c.expectedEnds && !c.complete {
			c.complete = true
			c.Stats.UniqueKeys = uint64(len(c.result))
			if c.OnComplete != nil {
				c.OnComplete()
			}
		}
	}
}

// Result returns the aggregated key-value map (live reference; callers
// should treat it as read-only until the stream completes).
func (c *Collector) Result() map[string]uint32 { return c.result }

// SortedResult returns the aggregated pairs sorted by key: the reducer-side
// sort pass the paper charges against DAIET's unsorted delivery.
func (c *Collector) SortedResult() []KV {
	out := make([]KV, 0, len(c.result))
	for k, v := range c.result {
		out = append(out, KV{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KV is one aggregated key-value pair.
type KV struct {
	Key   string
	Value uint32
}
