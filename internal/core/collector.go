package core

import (
	"sort"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// CollectorStats counts what a reducer receives — the quantities Figure 3
// measures (data volume and packet counts at the tree roots).
type CollectorStats struct {
	Packets           uint64 // all DAIET packets received
	DataPackets       uint64
	EndPackets        uint64
	AggregatedPackets uint64 // packets flagged as switch flush output
	SpillPackets      uint64 // packets flagged as spillover
	PairsReceived     uint64
	PayloadBytes      uint64 // DAIET header + pairs bytes received
	UniqueKeys        uint64 // distinct keys in the final result

	// Epoch-filter and root-gate counters.
	StaleEpochDropped uint64 // packets from a non-current round, discarded
	RootDups          uint64 // root-hop duplicates discarded (re-ACKed)
	RootGaps          uint64 // root-hop out-of-order drops (await retransmit)
	RootAcksOut       uint64 // cumulative ACKs sent back to root switches
}

// Collector is the reducer-side half of the DAIET protocol: it receives
// (possibly pre-aggregated) pairs, applies the final combine, and signals
// completion when the expected number of END packets has arrived.
//
// Because in-network aggregation destroys the mapper-side sort order, the
// collector exposes SortedResult for the reducer's mandatory full sort
// (paper §4: "the intermediate results must be sorted at the reducer").
type Collector struct {
	geom         wire.PairGeometry
	agg          AggFunc
	expectedEnds int
	endsSeen     int
	treeID       uint32

	result   map[string]uint32
	complete bool

	// Epoch filter (BeginEpoch): when active, only packets whose flags
	// high byte matches epoch are processed — the reducer-side half of the
	// round-based exactly-once contract.
	epochFilter bool
	epoch       uint8

	// Root-hop gate (EnableRootAck): per-source in-order filtering with
	// cumulative acknowledgements for switch flush streams (packets flagged
	// FlagAggregated/FlagSpill), mirroring the switch-side edge gate. host
	// carries the ACKs; it is set by Attach.
	rootGate bool
	rootExp  map[uint32]uint32 // src node -> next expected sequence
	host     *transport.Host

	// KeepRaw, when set before traffic arrives, records every received
	// pair in RawPairs in arrival order. The MapReduce harness uses the
	// raw stream to measure the reducer's real sort+combine time (the
	// paper's reduce-time panel).
	KeepRaw  bool
	RawPairs []KV

	// OnComplete fires once, when the last expected END arrives.
	OnComplete func()

	Stats CollectorStats
}

// NewCollector builds a collector for one tree. expectedEnds is the number
// of END packets that terminate the stream: with in-network aggregation
// that is the reducer's tree child count (typically 1, its ToR switch);
// without it, the number of mappers.
func NewCollector(treeID uint32, agg AggFunc, geom wire.PairGeometry, expectedEnds int) *Collector {
	return &Collector{
		geom:         geom,
		agg:          agg,
		expectedEnds: expectedEnds,
		treeID:       treeID,
		result:       make(map[string]uint32),
	}
}

// Attach registers the collector on the host's DAIET UDP port.
func (c *Collector) Attach(h *transport.Host) {
	c.host = h
	h.HandleUDP(wire.UDPPortDaiet, func(src wire.IPv4Addr, _ uint16, payload []byte) {
		c.handle(src, payload)
	})
}

// Ingest feeds one raw DAIET UDP payload into the collector. Alternative
// carriers (the real-socket runtime in internal/udprt) call this directly.
// The source address is unknown on this path, so the root-hop gate does
// not apply.
func (c *Collector) Ingest(payload []byte) { c.handle(wire.IPv4Addr{}, payload) }

// Complete reports whether all expected ENDs have arrived.
func (c *Collector) Complete() bool { return c.complete }

// BeginEpoch resets the collector for a fresh round: accumulated results,
// raw pairs, and END accounting are discarded, and from now on only
// packets tagged with the given epoch are processed. The fault-tolerant
// shuffle calls it once per recovery round; lifetime Stats keep
// accumulating so discarded stale traffic stays observable.
func (c *Collector) BeginEpoch(epoch uint8, expectedEnds int) {
	c.epochFilter = true
	c.epoch = epoch
	c.expectedEnds = expectedEnds
	c.endsSeen = 0
	c.complete = false
	c.result = make(map[string]uint32)
	c.RawPairs = nil
	if c.rootExp != nil {
		c.rootExp = make(map[uint32]uint32)
	}
}

// EnableRootAck turns on the root-hop reliability gate: switch flush
// packets (FlagAggregated/FlagSpill) are accepted strictly in per-source
// sequence order, duplicates and gaps are dropped, and every decision is
// answered with a cumulative ACK to the emitting switch — the collector
// half of the TreeConfig.RootReplay extension. Requires Attach (ACKs need
// a carrier).
func (c *Collector) EnableRootAck() {
	c.rootGate = true
	if c.rootExp == nil {
		c.rootExp = make(map[uint32]uint32)
	}
}

// rootGated applies the per-source in-order filter to one switch flush
// packet and reports whether it must be discarded.
func (c *Collector) rootGated(src wire.IPv4Addr, hdr *wire.DaietHeader) bool {
	srcNode := src.NodeID()
	exp := c.rootExp[srcNode]
	switch {
	case hdr.Seq == exp:
		c.rootExp[srcNode] = exp + 1
		c.sendRootAck(srcNode, exp+1)
		return false
	case hdr.Seq < exp:
		c.Stats.RootDups++
		c.sendRootAck(srcNode, exp)
		return true
	default:
		c.Stats.RootGaps++
		c.sendRootAck(srcNode, exp)
		return true
	}
}

// sendRootAck emits one cumulative acknowledgement toward a root switch.
func (c *Collector) sendRootAck(dst uint32, cumSeq uint32) {
	if c.host == nil {
		return // Ingest-fed collector: no carrier to answer on
	}
	buf := wire.NewBuffer(wire.DefaultHeadroom, 0)
	hdr := wire.DaietHeader{
		Type:   wire.TypeAck,
		TreeID: c.treeID,
		Seq:    cumSeq,
		Flags:  uint16(c.epoch) << 8,
	}
	hdr.SerializeTo(buf)
	c.host.SendUDP(netsim.NodeID(dst), wire.UDPPortDaiet, wire.UDPPortDaiet, buf.Bytes())
	c.Stats.RootAcksOut++
}

// handle ingests one DAIET UDP payload.
func (c *Collector) handle(src wire.IPv4Addr, payload []byte) {
	var hdr wire.DaietHeader
	rest, err := hdr.DecodeFrom(payload)
	if err != nil {
		return // undecodable datagram: ignore, like any UDP service
	}
	if hdr.TreeID != c.treeID {
		return
	}
	if c.epochFilter && uint8(hdr.Flags>>8) != c.epoch {
		c.Stats.StaleEpochDropped++
		return
	}
	if c.rootGate && src != (wire.IPv4Addr{}) &&
		(hdr.Type == wire.TypeData || hdr.Type == wire.TypeEnd) &&
		hdr.Flags&(wire.FlagAggregated|wire.FlagSpill) != 0 {
		if c.rootGated(src, &hdr) {
			return
		}
	}
	c.Stats.Packets++
	c.Stats.PayloadBytes += uint64(len(payload))
	if hdr.Flags&wire.FlagAggregated != 0 {
		c.Stats.AggregatedPackets++
	}
	if hdr.Flags&wire.FlagSpill != 0 {
		c.Stats.SpillPackets++
	}
	switch hdr.Type {
	case wire.TypeData:
		c.Stats.DataPackets++
		view, err := wire.NewPairView(c.geom, rest, int(hdr.NumPairs))
		if err != nil {
			return
		}
		for i := 0; i < view.Len(); i++ {
			key := string(wire.TrimKey(view.Key(i)))
			v := view.Value(i)
			if cur, ok := c.result[key]; ok {
				c.result[key] = c.agg.Combine(cur, v)
			} else {
				c.result[key] = c.agg.Combine(c.agg.Identity(), v)
			}
			if c.KeepRaw {
				c.RawPairs = append(c.RawPairs, KV{Key: key, Value: v})
			}
			c.Stats.PairsReceived++
		}
	case wire.TypeEnd:
		c.Stats.EndPackets++
		c.endsSeen++
		if c.endsSeen == c.expectedEnds && !c.complete {
			c.complete = true
			c.Stats.UniqueKeys = uint64(len(c.result))
			if c.OnComplete != nil {
				c.OnComplete()
			}
		}
	}
}

// Result returns the aggregated key-value map (live reference; callers
// should treat it as read-only until the stream completes).
func (c *Collector) Result() map[string]uint32 { return c.result }

// SortedResult returns the aggregated pairs sorted by key: the reducer-side
// sort pass the paper charges against DAIET's unsorted delivery.
func (c *Collector) SortedResult() []KV {
	out := make([]KV, 0, len(c.result))
	for k, v := range c.result {
		out = append(out, KV{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KV is one aggregated key-value pair.
type KV struct {
	Key   string
	Value uint32
}
