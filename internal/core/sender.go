package core

import (
	"fmt"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/wire"
)

// Carrier abstracts how DAIET payloads reach the network: the simulated
// transport.Host satisfies it as-is, and internal/udprt provides a real
// net.UDPConn-backed implementation, so Sender and Collector run unchanged
// over both (the paper's claim of platform generality, §4).
type Carrier interface {
	// SendUDP transmits payload as one UDP datagram to node dst.
	SendUDP(dst netsim.NodeID, srcPort, dstPort uint16, payload []byte)
	// ID returns the local node's fabric ID.
	ID() netsim.NodeID
}

// BurstCarrier is an optional Carrier extension for carriers that can
// accept a batch of datagrams in one call. transport.Host implements it by
// handing the whole batch to the fabric at once, coalescing the per-packet
// scheduling overhead into per-burst work; carriers without it (real
// sockets) fall back to one SendUDP per payload. Payload order is
// delivery-attempt order either way.
type BurstCarrier interface {
	Carrier
	SendUDPBurst(dst netsim.NodeID, srcPort, dstPort uint16, payloads [][]byte)
}

// SenderStats counts a sender's output.
type SenderStats struct {
	PairsSent    uint64
	DataPackets  uint64
	EndPackets   uint64
	PayloadBytes uint64 // DAIET header + pairs, i.e. UDP payload bytes
}

// Sender is the worker-side half of the DAIET protocol: it packetizes one
// map task's intermediate key-value pairs for one aggregation tree
// (reducer) into fixed-size-pair DATA packets and terminates the stream
// with an END packet.
//
// The paper's serialization discussion (§4) applies: pairs are fixed-size
// so packetization never splits a pair, and packets carry at most one parse
// budget's worth of pairs.
type Sender struct {
	carrier  Carrier
	bc       BurstCarrier // non-nil when carrier supports bursts
	geom     wire.PairGeometry
	maxPairs int
	treeID   uint32
	dst      netsim.NodeID
	srcPort  uint16

	seq   uint32
	buf   *wire.Buffer
	n     int
	ended bool
	epoch uint8

	// maxBurst bounds how many sealed packets accumulate before they are
	// handed to the carrier. 1 (the default) transmits every packet the
	// moment it seals, the historical behaviour; bulk producers such as the
	// MapReduce shuffle raise it via SetMaxBurst to amortize per-packet
	// carrier and scheduling costs.
	maxBurst int
	pending  [][]byte

	Stats SenderStats
}

// NewSender creates a sender for one (worker, tree) stream. dst is the tree
// root (the reducer's node ID, which equals the tree ID in this fabric).
func NewSender(carrier Carrier, treeID uint32, dst netsim.NodeID,
	geom wire.PairGeometry, maxPairs int) (*Sender, error) {

	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if maxPairs <= 0 {
		maxPairs = geom.MaxPairsPerPacket()
		if maxPairs > wire.DefaultMaxPairs {
			maxPairs = wire.DefaultMaxPairs
		}
	}
	bc, _ := carrier.(BurstCarrier)
	return &Sender{
		carrier:  carrier,
		bc:       bc,
		geom:     geom,
		maxPairs: maxPairs,
		treeID:   treeID,
		dst:      dst,
		srcPort:  wire.UDPPortDaiet,
		maxBurst: 1,
	}, nil
}

// SetMaxBurst sets how many sealed packets the sender batches per carrier
// hand-off (minimum 1 = unbatched). Packets never linger past Flush or
// End. Frame order is always preserved; wire timing is too as long as no
// virtual time elapses between a packet's seal and its burst flush (true
// for bulk producers that queue a whole stream before running the event
// loop — a sender that Sends across event-loop steps should stay at 1, or
// Flush at its timing boundaries).
func (s *Sender) SetMaxBurst(n int) {
	if n < 1 {
		n = 1
	}
	s.maxBurst = n
}

// SetEpoch tags every subsequent packet with a round epoch (flags high
// byte, the same convention ReliableConfig.Epoch uses). Epoch-pinned trees
// and epoch-filtering collectors use it to separate recovery rounds; the
// default 0 matches unpinned configurations.
func (s *Sender) SetEpoch(e uint8) { s.epoch = e }

// Send appends one pair to the current packet, transmitting it when full.
func (s *Sender) Send(key []byte, value uint32) error {
	if s.ended {
		return fmt.Errorf("core: Send after End on tree %d", s.treeID)
	}
	if s.buf == nil {
		s.buf = wire.NewBuffer(wire.DefaultHeadroom, s.maxPairs*s.geom.PairWidth())
		s.n = 0
	}
	if err := wire.AppendPair(s.buf, s.geom, key, value); err != nil {
		return err
	}
	s.n++
	s.Stats.PairsSent++
	if s.n >= s.maxPairs {
		s.sealData()
	}
	return nil
}

// Flush transmits any partially filled packet and drains the burst buffer.
func (s *Sender) Flush() {
	if s.n > 0 {
		s.sealData()
	}
	s.flushBurst()
}

// End flushes pending pairs and sends the END packet. Further Sends fail.
func (s *Sender) End() {
	if s.ended {
		return
	}
	if s.n > 0 {
		s.sealData()
	}
	s.ended = true
	buf := wire.NewBuffer(wire.DefaultHeadroom, 0)
	hdr := wire.DaietHeader{Type: wire.TypeEnd, TreeID: s.treeID, Seq: s.nextSeq(),
		Flags: uint16(s.epoch) << 8}
	hdr.SerializeTo(buf)
	s.Stats.EndPackets++
	s.Stats.PayloadBytes += wire.DaietHeaderLen
	s.pending = append(s.pending, buf.Bytes())
	s.flushBurst()
}

func (s *Sender) nextSeq() uint32 {
	v := s.seq
	s.seq++
	return v
}

// sealData finalizes the current buffer into a DATA packet and enqueues it,
// flushing the burst when it reaches the configured size.
func (s *Sender) sealData() {
	hdr := wire.DaietHeader{
		Type:     wire.TypeData,
		TreeID:   s.treeID,
		Seq:      s.nextSeq(),
		NumPairs: uint16(s.n),
		Flags:    uint16(s.epoch) << 8,
	}
	hdr.SerializeTo(s.buf)
	s.Stats.DataPackets++
	s.Stats.PayloadBytes += uint64(s.buf.Len())
	s.pending = append(s.pending, s.buf.Bytes())
	s.buf = nil
	s.n = 0
	if len(s.pending) >= s.maxBurst {
		s.flushBurst()
	}
}

// flushBurst hands every pending packet to the carrier, as one burst when
// the carrier supports it.
func (s *Sender) flushBurst() {
	switch {
	case len(s.pending) == 0:
	case s.bc != nil && len(s.pending) > 1:
		s.bc.SendUDPBurst(s.dst, s.srcPort, wire.UDPPortDaiet, s.pending)
	default:
		for _, p := range s.pending {
			s.carrier.SendUDP(s.dst, s.srcPort, wire.UDPPortDaiet, p)
		}
	}
	s.pending = s.pending[:0]
}
