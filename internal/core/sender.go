package core

import (
	"fmt"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/wire"
)

// Carrier abstracts how DAIET payloads reach the network: the simulated
// transport.Host satisfies it as-is, and internal/udprt provides a real
// net.UDPConn-backed implementation, so Sender and Collector run unchanged
// over both (the paper's claim of platform generality, §4).
type Carrier interface {
	// SendUDP transmits payload as one UDP datagram to node dst.
	SendUDP(dst netsim.NodeID, srcPort, dstPort uint16, payload []byte)
	// ID returns the local node's fabric ID.
	ID() netsim.NodeID
}

// SenderStats counts a sender's output.
type SenderStats struct {
	PairsSent    uint64
	DataPackets  uint64
	EndPackets   uint64
	PayloadBytes uint64 // DAIET header + pairs, i.e. UDP payload bytes
}

// Sender is the worker-side half of the DAIET protocol: it packetizes one
// map task's intermediate key-value pairs for one aggregation tree
// (reducer) into fixed-size-pair DATA packets and terminates the stream
// with an END packet.
//
// The paper's serialization discussion (§4) applies: pairs are fixed-size
// so packetization never splits a pair, and packets carry at most one parse
// budget's worth of pairs.
type Sender struct {
	carrier  Carrier
	geom     wire.PairGeometry
	maxPairs int
	treeID   uint32
	dst      netsim.NodeID
	srcPort  uint16

	seq   uint32
	buf   *wire.Buffer
	n     int
	ended bool

	Stats SenderStats
}

// NewSender creates a sender for one (worker, tree) stream. dst is the tree
// root (the reducer's node ID, which equals the tree ID in this fabric).
func NewSender(carrier Carrier, treeID uint32, dst netsim.NodeID,
	geom wire.PairGeometry, maxPairs int) (*Sender, error) {

	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if maxPairs <= 0 {
		maxPairs = geom.MaxPairsPerPacket()
		if maxPairs > wire.DefaultMaxPairs {
			maxPairs = wire.DefaultMaxPairs
		}
	}
	return &Sender{
		carrier:  carrier,
		geom:     geom,
		maxPairs: maxPairs,
		treeID:   treeID,
		dst:      dst,
		srcPort:  wire.UDPPortDaiet,
	}, nil
}

// Send appends one pair to the current packet, transmitting it when full.
func (s *Sender) Send(key []byte, value uint32) error {
	if s.ended {
		return fmt.Errorf("core: Send after End on tree %d", s.treeID)
	}
	if s.buf == nil {
		s.buf = wire.NewBuffer(wire.DefaultHeadroom, s.maxPairs*s.geom.PairWidth())
		s.n = 0
	}
	if err := wire.AppendPair(s.buf, s.geom, key, value); err != nil {
		return err
	}
	s.n++
	s.Stats.PairsSent++
	if s.n >= s.maxPairs {
		s.flushData()
	}
	return nil
}

// Flush transmits any partially filled packet.
func (s *Sender) Flush() {
	if s.n > 0 {
		s.flushData()
	}
}

// End flushes pending pairs and sends the END packet. Further Sends fail.
func (s *Sender) End() {
	if s.ended {
		return
	}
	s.Flush()
	s.ended = true
	buf := wire.NewBuffer(wire.DefaultHeadroom, 0)
	hdr := wire.DaietHeader{Type: wire.TypeEnd, TreeID: s.treeID, Seq: s.nextSeq()}
	hdr.SerializeTo(buf)
	s.Stats.EndPackets++
	s.Stats.PayloadBytes += wire.DaietHeaderLen
	s.carrier.SendUDP(s.dst, s.srcPort, wire.UDPPortDaiet, buf.Bytes())
}

func (s *Sender) nextSeq() uint32 {
	v := s.seq
	s.seq++
	return v
}

func (s *Sender) flushData() {
	hdr := wire.DaietHeader{
		Type:     wire.TypeData,
		TreeID:   s.treeID,
		Seq:      s.nextSeq(),
		NumPairs: uint16(s.n),
	}
	hdr.SerializeTo(s.buf)
	s.Stats.DataPackets++
	s.Stats.PayloadBytes += uint64(s.buf.Len())
	s.carrier.SendUDP(s.dst, s.srcPort, wire.UDPPortDaiet, s.buf.Bytes())
	s.buf = nil
	s.n = 0
}
