package core_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// buildRootLossyRig: mapper links clean, reducer (root) link lossy — the
// hop the switch-side replay buffer protects.
func buildRootLossyRig(t *testing.T, nMappers int, rootLoss float64) (*rig, []netsim.NodeID, netsim.NodeID) {
	t.Helper()
	sw := topology.SwitchBase
	plan := &topology.Plan{Name: "rootlossy", Switches: []netsim.NodeID{sw}}
	for i := 0; i < nMappers+1; i++ {
		h := topology.HostBase + netsim.NodeID(i)
		plan.Hosts = append(plan.Hosts, h)
		cfg := netsim.LinkConfig{}
		if i == nMappers {
			cfg.LossProb = rootLoss
		}
		plan.Links = append(plan.Links, topology.Link{A: h, B: sw, Cfg: cfg})
	}
	r := buildRig(t, plan, core.ProgramConfig{})
	return r, plan.Hosts[:nMappers], plan.Hosts[nMappers]
}

// TestRootReplayRecoversFlushLoss: with the switch→reducer hop dropping
// frames (data AND acks), the bounded replay buffer plus collector gate
// must still deliver the aggregate exactly once.
func TestRootReplayRecoversFlushLoss(t *testing.T) {
	const nMappers, keys = 3, 400
	r, mappers, reducer := buildRootLossyRig(t, nMappers, 0.25)
	plan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	senderIDs := make([]uint32, len(mappers))
	for i, m := range mappers {
		senderIDs[i] = uint32(m)
	}
	for _, swn := range plan.SwitchNodes {
		if err := r.programs[swn].ConfigureTree(core.TreeConfig{
			TreeID:     plan.TreeID,
			OutPort:    r.fab.PortTo(swn, plan.Parent[swn]),
			Children:   plan.Children[swn],
			Agg:        core.AggSum,
			TableSize:  256, // far fewer cells than keys: spills + long flush
			Reliable:   true,
			Senders:    senderIDs,
			RootReplay: 16,
			RootRTO:    300 * time.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, plan.RootChildren())
	col.Attach(r.hosts[reducer])
	col.EnableRootAck()

	want := map[string]uint32{}
	for mi, m := range mappers {
		mux := core.NewAckMux(r.hosts[m])
		s, err := core.NewReliableSender(r.hosts[m], uint32(reducer), reducer,
			wire.DefaultGeometry, 10, core.ReliableConfig{RTO: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		mux.Register(s)
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key%03d", k)
			val := uint32(mi*7 + k)
			want[key] += val
			if err := s.Send([]byte(key), val); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := r.nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !col.Complete() {
		t.Fatalf("collector incomplete under root loss: %+v", col.Stats)
	}
	got := col.Result()
	if len(got) != len(want) {
		t.Fatalf("keys %d want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %d want %d (lost or duplicated flush)", k, got[k], v)
		}
	}
	st, _ := r.programs[plan.SwitchNodes[0]].TreeStats(plan.TreeID)
	if st.RootRetransmissions == 0 {
		t.Fatalf("no root retransmissions at 25%% root loss: %+v", st)
	}
	if st.RootAcksIn == 0 || col.Stats.RootAcksOut == 0 {
		t.Fatalf("ack loop never ran: switch %+v collector %+v", st, col.Stats)
	}
	if col.Stats.RootDups == 0 && col.Stats.RootGaps == 0 {
		t.Fatalf("collector gate filtered nothing: %+v", col.Stats)
	}
}

// TestRootReplayBoundedBackpressure: a replay cap far smaller than the
// flush length forces flush stalls, and the stream still completes — the
// bounded-buffer contract.
func TestRootReplayBoundedBackpressure(t *testing.T) {
	const nMappers, keys = 2, 300
	r, mappers, reducer := buildRootLossyRig(t, nMappers, 0)
	plan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	senderIDs := make([]uint32, len(mappers))
	for i, m := range mappers {
		senderIDs[i] = uint32(m)
	}
	swn := plan.SwitchNodes[0]
	if err := r.programs[swn].ConfigureTree(core.TreeConfig{
		TreeID:     plan.TreeID,
		OutPort:    r.fab.PortTo(swn, plan.Parent[swn]),
		Children:   plan.Children[swn],
		Agg:        core.AggSum,
		TableSize:  1024,
		Reliable:   true,
		Senders:    senderIDs,
		RootReplay: 2, // flush needs ~30 packets: must stall repeatedly
	}); err != nil {
		t.Fatal(err)
	}
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, plan.RootChildren())
	col.Attach(r.hosts[reducer])
	col.EnableRootAck()
	for _, m := range mappers {
		mux := core.NewAckMux(r.hosts[m])
		s, err := core.NewReliableSender(r.hosts[m], uint32(reducer), reducer,
			wire.DefaultGeometry, 10, core.ReliableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		mux.Register(s)
		for k := 0; k < keys; k++ {
			if err := s.Send([]byte(fmt.Sprintf("key%03d", k)), 1); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := r.nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !col.Complete() {
		t.Fatalf("collector incomplete: %+v", col.Stats)
	}
	st, _ := r.programs[swn].TreeStats(plan.TreeID)
	if st.FlushStalls == 0 {
		t.Fatalf("tiny replay cap never stalled the flush: %+v", st)
	}
	if got := col.Result()["key007"]; got != uint32(nMappers) {
		t.Fatalf("key007 = %d want %d", got, nMappers)
	}
}

// TestProgramCrashLosesStateAndRestarts: Crash wipes trees, registers and
// routes (reporting resident pairs), Restart comes back empty, and the
// boot generation advances.
func TestProgramCrashLosesStateAndRestarts(t *testing.T) {
	plan := topology.SingleSwitch(3, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	mappers, reducer := plan.Hosts[:2], plan.Hosts[2]
	tplan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	prog := r.programs[tplan.SwitchNodes[0]]
	if err := prog.ConfigureTree(core.TreeConfig{
		TreeID: tplan.TreeID, OutPort: r.fab.PortTo(tplan.SwitchNodes[0], reducer),
		Children: tplan.Children[tplan.SwitchNodes[0]], Agg: core.AggSum, TableSize: 128,
	}); err != nil {
		t.Fatal(err)
	}
	// Stream pairs but no END: aggregates stay resident in the switch.
	s, err := core.NewSender(r.hosts[mappers[0]], tplan.TreeID, reducer, wire.DefaultGeometry, 10)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		if err := s.Send([]byte(fmt.Sprintf("k%02d", k)), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}

	if !prog.Alive() || prog.Crashes() != 0 {
		t.Fatalf("pre-crash state: alive=%v gen=%d", prog.Alive(), prog.Crashes())
	}
	// Resident = everything that entered minus what already left as spill
	// packets (collisions overflowing the bucket are emitted downstream).
	st, _ := prog.TreeStats(tplan.TreeID)
	lost := prog.Crash()
	if lost <= 0 || uint64(lost)+st.PairsSpillSent != 50 {
		t.Fatalf("crash reported %d resident pairs (+%d spilled out), want 50 total",
			lost, st.PairsSpillSent)
	}
	if prog.Alive() || prog.Crashes() != 1 {
		t.Fatalf("post-crash state: alive=%v gen=%d", prog.Alive(), prog.Crashes())
	}
	if got := len(prog.Trees()); got != 0 {
		t.Fatalf("%d trees survived the crash", got)
	}
	if used := prog.Registers().Used(); used != 0 {
		t.Fatalf("%d register bytes survived the crash", used)
	}
	// Down switch drops everything.
	s2, _ := core.NewSender(r.hosts[mappers[1]], tplan.TreeID, reducer, wire.DefaultGeometry, 10)
	_ = s2.Send([]byte("x"), 1)
	s2.Flush()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	prog.Restart()
	if !prog.Alive() {
		t.Fatal("restart did not revive the switch")
	}
	// Fresh boot forwards nothing until the controller reinstalls routes.
	pre := r.hosts[reducer].Stats.FramesRx
	s3, _ := core.NewSender(r.hosts[mappers[1]], tplan.TreeID, reducer, wire.DefaultGeometry, 10)
	_ = s3.Send([]byte("y"), 1)
	s3.Flush()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := r.hosts[reducer].Stats.FramesRx; got != pre {
		t.Fatalf("rebooted switch forwarded %d frames with empty tables", got-pre)
	}
	if err := r.ctl.InstallRoutingOn(tplan.SwitchNodes[0]); err != nil {
		t.Fatal(err)
	}
	s4, _ := core.NewSender(r.hosts[mappers[1]], tplan.TreeID, reducer, wire.DefaultGeometry, 10)
	_ = s4.Send([]byte("z"), 1)
	s4.Flush()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := r.hosts[reducer].Stats.FramesRx; got != pre+1 {
		t.Fatalf("reinstalled routes delivered %d frames, want 1", got-pre)
	}
}

// TestEpochPinningFiltersStaleTraffic: a pinned tree drops DATA/END from
// any other epoch; the collector's epoch filter does the same on the host.
func TestEpochPinningFiltersStaleTraffic(t *testing.T) {
	plan := topology.SingleSwitch(3, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	mappers, reducer := plan.Hosts[:2], plan.Hosts[2]
	tplan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	swn := tplan.SwitchNodes[0]
	// Children: 1 — the pinned round has exactly one current-epoch sender;
	// the stale mapper's END must not count toward the flush trigger.
	if err := r.programs[swn].ConfigureTree(core.TreeConfig{
		TreeID: tplan.TreeID, OutPort: r.fab.PortTo(swn, reducer),
		Children: 1, Agg: core.AggSum, TableSize: 128,
		Epoch: 3, PinEpoch: true,
	}); err != nil {
		t.Fatal(err)
	}
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, 1)
	col.Attach(r.hosts[reducer])
	col.BeginEpoch(3, 1)

	// Epoch 2 (stale) and epoch 3 (current) streams from the two mappers.
	for i, m := range mappers {
		s, err := core.NewSender(r.hosts[m], tplan.TreeID, reducer, wire.DefaultGeometry, 10)
		if err != nil {
			t.Fatal(err)
		}
		s.SetEpoch(uint8(2 + i))
		for k := 0; k < 20; k++ {
			if err := s.Send([]byte(fmt.Sprintf("k%02d", k)), uint32(100+i)); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if !col.Complete() {
		t.Fatalf("current epoch incomplete: %+v", col.Stats)
	}
	st, _ := r.programs[swn].TreeStats(tplan.TreeID)
	if st.StaleEpochDropped == 0 {
		t.Fatalf("switch aggregated a stale epoch: %+v", st)
	}
	// Only epoch-3 values (101) survive.
	for k, v := range col.Result() {
		if v != 101 {
			t.Fatalf("key %q = %d: stale epoch leaked into the aggregate", k, v)
		}
	}

	// With the tree torn down, stale traffic reaches the reducer as plain
	// forwarded UDP; the collector's own epoch filter must discard it.
	r.programs[swn].RemoveTree(tplan.TreeID)
	s, err := core.NewSender(r.hosts[mappers[0]], tplan.TreeID, reducer, wire.DefaultGeometry, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.SetEpoch(2)
	if err := s.Send([]byte("stale"), 999); err != nil {
		t.Fatal(err)
	}
	s.End()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if col.Stats.StaleEpochDropped == 0 {
		t.Fatalf("collector accepted stale-epoch traffic: %+v", col.Stats)
	}
	if _, leaked := col.Result()["stale"]; leaked {
		t.Fatal("stale pair leaked into the result")
	}
}
