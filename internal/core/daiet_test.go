package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// rig is a realized fabric with DAIET programs on every switch and plain
// hosts everywhere else.
type rig struct {
	nw       *netsim.Network
	fab      *topology.Fabric
	ctl      *controller.Controller
	programs map[netsim.NodeID]*core.Program
	hosts    map[netsim.NodeID]*transport.Host
}

func buildRig(t *testing.T, plan *topology.Plan, pcfg core.ProgramConfig) *rig {
	t.Helper()
	r := &rig{
		nw:       netsim.New(1),
		programs: make(map[netsim.NodeID]*core.Program),
		hosts:    make(map[netsim.NodeID]*transport.Host),
	}
	mkSwitch := func(id netsim.NodeID) netsim.Node {
		prog, err := core.NewProgram(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		r.programs[id] = prog
		return prog.Switch()
	}
	mkHost := func(id netsim.NodeID) netsim.Node {
		h := transport.NewHost()
		r.hosts[id] = h
		return h
	}
	r.fab = plan.Realize(r.nw, mkSwitch, mkHost)
	r.ctl = controller.New(r.fab, r.programs)
	if err := r.ctl.InstallRouting(); err != nil {
		t.Fatal(err)
	}
	return r
}

// refAggregate computes the ground-truth result.
func refAggregate(agg core.AggFunc, pairs []core.KV) map[string]uint32 {
	out := make(map[string]uint32)
	for _, p := range pairs {
		if cur, ok := out[p.Key]; ok {
			out[p.Key] = agg.Combine(cur, p.Value)
		} else {
			out[p.Key] = agg.Combine(agg.Identity(), p.Value)
		}
	}
	return out
}

func equalMaps(a, b map[string]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// runJob drives one aggregation round: each mapper sends its share of pairs
// toward the single reducer, then END. It returns the collector.
func runJob(t *testing.T, r *rig, reducer netsim.NodeID, mappers []netsim.NodeID,
	shares [][]core.KV, opt controller.TreeOptions, aggregate bool) (*core.Collector, *controller.TreePlan) {
	t.Helper()
	plan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	expectedEnds := len(mappers)
	if aggregate {
		if err := r.ctl.InstallTree(plan, opt); err != nil {
			t.Fatal(err)
		}
		expectedEnds = plan.RootChildren()
	}
	agg, err := core.FuncByID(opt.Agg)
	if err != nil {
		t.Fatal(err)
	}
	col := core.NewCollector(uint32(reducer), agg, wire.DefaultGeometry, expectedEnds)
	col.Attach(r.hosts[reducer])

	for i, m := range mappers {
		s, err := core.NewSender(r.hosts[m], uint32(reducer), reducer, wire.DefaultGeometry, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range shares[i] {
			if err := s.Send([]byte(kv.Key), kv.Value); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
	}
	if err := r.nw.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !col.Complete() {
		t.Fatalf("collector incomplete: %+v", col.Stats)
	}
	return col, plan
}

func TestEndToEndSingleSwitchAggregation(t *testing.T) {
	plan := topology.SingleSwitch(5, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[4]
	mappers := plan.Hosts[:4]

	// Every mapper sends the same 30 keys: maximal overlap.
	var all []core.KV
	shares := make([][]core.KV, len(mappers))
	for i := range mappers {
		for k := 0; k < 30; k++ {
			kv := core.KV{Key: fmt.Sprintf("key%02d", k), Value: uint32(i + k)}
			shares[i] = append(shares[i], kv)
			all = append(all, kv)
		}
	}
	sum, _ := core.FuncByID(core.AggSum)
	col, cplan := runJob(t, r, reducer, mappers, shares,
		controller.TreeOptions{Agg: core.AggSum, TableSize: 1024}, true)

	if !equalMaps(col.Result(), refAggregate(sum, all)) {
		t.Fatalf("aggregated result differs from reference")
	}
	// 120 pairs in, 30 distinct out: the reduction the paper measures.
	if col.Stats.PairsReceived != 30 {
		t.Fatalf("pairs received %d want 30", col.Stats.PairsReceived)
	}
	if col.Stats.EndPackets != 1 {
		t.Fatalf("reducer must see exactly one END, got %d", col.Stats.EndPackets)
	}
	if col.Stats.AggregatedPackets == 0 {
		t.Fatal("no flush packets seen")
	}
	// Switch-side stats.
	sw := cplan.SwitchNodes[0]
	st, ok := r.programs[sw].TreeStats(uint32(reducer))
	if !ok {
		t.Fatal("missing tree stats")
	}
	if st.PairsIn != 120 || st.PairsStored != 30 || st.PairsCombined != 90 || st.PairsSpilled != 0 {
		t.Fatalf("switch stats %+v", st)
	}
	if st.EndPacketsIn != 4 || st.EndPacketsOut != 1 || st.FlushesCompleted != 1 {
		t.Fatalf("END accounting %+v", st)
	}
}

func TestBaselineNoAggregation(t *testing.T) {
	plan := topology.SingleSwitch(3, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[2]
	mappers := plan.Hosts[:2]
	shares := [][]core.KV{
		{{Key: "a", Value: 1}, {Key: "b", Value: 2}},
		{{Key: "a", Value: 3}, {Key: "c", Value: 4}},
	}
	sum, _ := core.FuncByID(core.AggSum)
	col, _ := runJob(t, r, reducer, mappers, shares,
		controller.TreeOptions{Agg: core.AggSum, TableSize: 64}, false /* baseline */)

	// All 4 pairs arrive unaggregated; reducer-side combine still correct.
	if col.Stats.PairsReceived != 4 {
		t.Fatalf("pairs %d want 4", col.Stats.PairsReceived)
	}
	if col.Stats.EndPackets != 2 {
		t.Fatalf("ends %d want 2", col.Stats.EndPackets)
	}
	want := refAggregate(sum, append(shares[0], shares[1]...))
	if !equalMaps(col.Result(), want) {
		t.Fatal("baseline result wrong")
	}
}

func TestSpilloverOnCollision(t *testing.T) {
	// Table of one cell: first key occupies it; every other distinct key
	// collides and must travel via the spillover bucket, yet the final
	// result must be exact.
	plan := topology.SingleSwitch(2, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[1]
	mappers := plan.Hosts[:1]

	var share []core.KV
	for i := 0; i < 25; i++ {
		share = append(share, core.KV{Key: fmt.Sprintf("w%02d", i), Value: 1})
	}
	// Duplicates of the first key aggregate in-register or in the reducer.
	share = append(share, core.KV{Key: "w00", Value: 5})

	sum, _ := core.FuncByID(core.AggSum)
	col, cplan := runJob(t, r, reducer, mappers, [][]core.KV{share},
		controller.TreeOptions{Agg: core.AggSum, TableSize: 1}, true)

	if !equalMaps(col.Result(), refAggregate(sum, share)) {
		t.Fatal("spillover broke correctness")
	}
	st, _ := r.programs[cplan.SwitchNodes[0]].TreeStats(uint32(reducer))
	if st.PairsSpilled == 0 || st.SpillPacketsOut == 0 {
		t.Fatalf("expected spills, got %+v", st)
	}
	if col.Stats.SpillPackets == 0 {
		t.Fatal("reducer saw no spill-flagged packets")
	}
	// Conservation: stored + combined + spilled == pairs in.
	if st.PairsStored+st.PairsCombined+st.PairsSpilled != st.PairsIn {
		t.Fatalf("pair conservation violated: %+v", st)
	}
}

func TestMultiLevelTreeAggregation(t *testing.T) {
	// Leaf-spine: mappers under two different leaves, reducer under a
	// third; aggregation happens at each leaf and at the spine level of the
	// reducer's path.
	plan := topology.LeafSpine(3, 2, 2, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	// hosts: leaf0 {h0,h1}, leaf1 {h2,h3}, leaf2 {h4,h5}
	mappers := []netsim.NodeID{plan.Hosts[0], plan.Hosts[1], plan.Hosts[2], plan.Hosts[3]}
	reducer := plan.Hosts[4]

	shares := make([][]core.KV, len(mappers))
	var all []core.KV
	for i := range mappers {
		for k := 0; k < 50; k++ {
			kv := core.KV{Key: fmt.Sprintf("key%03d", k%20), Value: uint32(i*100 + k)}
			shares[i] = append(shares[i], kv)
			all = append(all, kv)
		}
	}
	sum, _ := core.FuncByID(core.AggSum)
	col, cplan := runJob(t, r, reducer, mappers, shares,
		controller.TreeOptions{Agg: core.AggSum, TableSize: 512}, true)

	if !equalMaps(col.Result(), refAggregate(sum, all)) {
		t.Fatal("multi-level aggregation wrong")
	}
	if len(cplan.SwitchNodes) < 3 {
		t.Fatalf("tree only has %d switches", len(cplan.SwitchNodes))
	}
	if col.Stats.EndPackets != 1 {
		t.Fatalf("ends %d", col.Stats.EndPackets)
	}
	// 200 pairs in, 20 distinct keys out.
	if col.Stats.PairsReceived != 20 {
		t.Fatalf("pairs %d want 20", col.Stats.PairsReceived)
	}
	// Every tree switch must have flushed exactly once.
	for _, sw := range cplan.SwitchNodes {
		st, ok := r.programs[sw].TreeStats(uint32(reducer))
		if !ok || st.FlushesCompleted != 1 {
			t.Fatalf("switch %d stats %+v", sw, st)
		}
	}
}

func TestTwoRoundsReuseTree(t *testing.T) {
	plan := topology.SingleSwitch(3, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[2]
	mappers := plan.Hosts[:2]
	cplan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.InstallTree(cplan, controller.TreeOptions{Agg: core.AggSum, TableSize: 64}); err != nil {
		t.Fatal(err)
	}
	sum, _ := core.FuncByID(core.AggSum)

	for round := 1; round <= 2; round++ {
		col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, cplan.RootChildren())
		col.Attach(r.hosts[reducer])
		var all []core.KV
		for _, m := range mappers {
			s, _ := core.NewSender(r.hosts[m], uint32(reducer), reducer, wire.DefaultGeometry, 0)
			for k := 0; k < 15; k++ {
				kv := core.KV{Key: fmt.Sprintf("r%dk%d", round, k), Value: uint32(round * k)}
				all = append(all, kv)
				if err := s.Send([]byte(kv.Key), kv.Value); err != nil {
					t.Fatal(err)
				}
			}
			s.End()
		}
		if err := r.nw.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if !col.Complete() {
			t.Fatalf("round %d incomplete", round)
		}
		if !equalMaps(col.Result(), refAggregate(sum, all)) {
			t.Fatalf("round %d result wrong", round)
		}
	}
}

func TestMinMaxCountFunctions(t *testing.T) {
	for _, tc := range []struct {
		agg  core.AggFuncID
		want map[string]uint32
	}{
		{core.AggMin, map[string]uint32{"x": 2, "y": 7}},
		{core.AggMax, map[string]uint32{"x": 9, "y": 7}},
		{core.AggSum, map[string]uint32{"x": 16, "y": 7}},
	} {
		plan := topology.SingleSwitch(3, netsim.LinkConfig{})
		r := buildRig(t, plan, core.ProgramConfig{})
		reducer := plan.Hosts[2]
		mappers := plan.Hosts[:2]
		shares := [][]core.KV{
			{{Key: "x", Value: 9}, {Key: "y", Value: 7}},
			{{Key: "x", Value: 2}, {Key: "x", Value: 5}},
		}
		col, _ := runJob(t, r, reducer, mappers, shares,
			controller.TreeOptions{Agg: tc.agg, TableSize: 16}, true)
		if !equalMaps(col.Result(), tc.want) {
			t.Fatalf("agg %d: got %v want %v", tc.agg, col.Result(), tc.want)
		}
	}
}

// The paper's central correctness invariant: in-network aggregation must
// never change the final result, for any split of pairs across mappers, any
// table size (collisions included) and any packet boundaries.
func TestAggregationCorrectnessProperty(t *testing.T) {
	f := func(seed int64, tableSizeRaw uint8, nMappersRaw uint8, nPairsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tableSize := 1 + int(tableSizeRaw)%64
		nMappers := 1 + int(nMappersRaw)%4
		nPairs := int(nPairsRaw) % 300

		plan := topology.SingleSwitch(nMappers+1, netsim.LinkConfig{})
		r := buildRig(t, plan, core.ProgramConfig{})
		reducer := plan.Hosts[nMappers]
		mappers := plan.Hosts[:nMappers]

		vocabSize := 1 + rng.Intn(40)
		shares := make([][]core.KV, nMappers)
		var all []core.KV
		for i := 0; i < nPairs; i++ {
			kv := core.KV{
				Key:   fmt.Sprintf("w%d", rng.Intn(vocabSize)),
				Value: uint32(rng.Intn(1000)),
			}
			m := rng.Intn(nMappers)
			shares[m] = append(shares[m], kv)
			all = append(all, kv)
		}
		sum, _ := core.FuncByID(core.AggSum)
		col, _ := runJob(t, r, reducer, mappers, shares,
			controller.TreeOptions{Agg: core.AggSum, TableSize: tableSize}, true)
		return equalMaps(col.Result(), refAggregate(sum, all))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSenderPacketization(t *testing.T) {
	plan := topology.SingleSwitch(2, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	h := r.hosts[plan.Hosts[0]]
	s, err := core.NewSender(h, 42, plan.Hosts[1], wire.DefaultGeometry, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := s.Send([]byte(fmt.Sprintf("k%d", i)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.End()
	// 25 pairs at 10/packet: 2 full + 1 partial + 1 END.
	if s.Stats.DataPackets != 3 || s.Stats.EndPackets != 1 || s.Stats.PairsSent != 25 {
		t.Fatalf("stats %+v", s.Stats)
	}
	if err := s.Send([]byte("late"), 1); err == nil {
		t.Fatal("Send after End must fail")
	}
	s.End() // idempotent
	if s.Stats.EndPackets != 1 {
		t.Fatal("End not idempotent")
	}
}

func TestSenderRejectsOversizedKey(t *testing.T) {
	plan := topology.SingleSwitch(2, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	s, _ := core.NewSender(r.hosts[plan.Hosts[0]], 1, plan.Hosts[1], wire.DefaultGeometry, 0)
	if err := s.Send(make([]byte, 17), 1); err == nil {
		t.Fatal("oversized key must fail")
	}
}

func TestCollectorIgnoresForeignTraffic(t *testing.T) {
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(7, sum, wire.DefaultGeometry, 1)

	plan := topology.SingleSwitch(2, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[1]
	col.Attach(r.hosts[reducer])

	// Wrong tree ID (99) must be ignored entirely.
	s, _ := core.NewSender(r.hosts[plan.Hosts[0]], 99, reducer, wire.DefaultGeometry, 0)
	_ = s.Send([]byte("k"), 1)
	s.End()
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if col.Stats.Packets != 0 || col.Complete() {
		t.Fatalf("foreign traffic processed: %+v", col.Stats)
	}
}

func TestProgramRejectsBadConfigs(t *testing.T) {
	p, err := core.NewProgram(core.ProgramConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConfigureTree(core.TreeConfig{TreeID: 1, Children: 1, TableSize: 0, Agg: core.AggSum}); err == nil {
		t.Fatal("zero table size must fail")
	}
	if err := p.ConfigureTree(core.TreeConfig{TreeID: 1, Children: 0, TableSize: 8, Agg: core.AggSum}); err == nil {
		t.Fatal("zero children must fail")
	}
	if err := p.ConfigureTree(core.TreeConfig{TreeID: 1, Children: 1, TableSize: 8, Agg: 999}); err == nil {
		t.Fatal("unknown agg must fail")
	}
	if err := p.ConfigureTree(core.TreeConfig{TreeID: 1, Children: 1, TableSize: 8, Agg: core.AggSum}); err != nil {
		t.Fatal(err)
	}
	if err := p.ConfigureTree(core.TreeConfig{TreeID: 1, Children: 1, TableSize: 8, Agg: core.AggSum}); err == nil {
		t.Fatal("duplicate tree must fail")
	}
}

func TestTreeTeardownFreesSRAM(t *testing.T) {
	p, err := core.NewProgram(core.ProgramConfig{SRAMBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Registers().Used()
	if err := p.ConfigureTree(core.TreeConfig{TreeID: 5, Children: 2, TableSize: 1024, Agg: core.AggSum}); err != nil {
		t.Fatal(err)
	}
	if p.Registers().Used() <= before {
		t.Fatal("no SRAM consumed")
	}
	p.RemoveTree(5)
	if p.Registers().Used() != before {
		t.Fatalf("SRAM leaked: %d vs %d", p.Registers().Used(), before)
	}
	if len(p.Trees()) != 0 {
		t.Fatal("tree still listed")
	}
	p.RemoveTree(5) // idempotent
}

func TestSRAMBudgetRollback(t *testing.T) {
	// Budget fits the keys array but not the rest: ConfigureTree must fail
	// and leave usage at zero.
	p, err := core.NewProgram(core.ProgramConfig{SRAMBudget: 20 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	err = p.ConfigureTree(core.TreeConfig{TreeID: 9, Children: 1, TableSize: 1024, Agg: core.AggSum})
	if err == nil {
		t.Fatal("want SRAM exhaustion")
	}
	if p.Registers().Used() != 0 {
		t.Fatalf("partial allocation leaked: %d bytes", p.Registers().Used())
	}
}

// TestPaperOperatingPoint runs the paper's configuration in miniature: a
// collision-free vocabulary that fits the register table, with mean
// multiplicity ~8, and checks the data reduction lands in the Figure-3 band.
func TestPaperOperatingPoint(t *testing.T) {
	const (
		nMappers  = 6
		tableSize = 2048
		vocab     = 500
		repeats   = 8
	)
	rng := rand.New(rand.NewSource(99))
	words, err := hashing.CollisionFreeVocabulary(rng, vocab, 16, wire.DefaultKeyWidth, tableSize)
	if err != nil {
		t.Fatal(err)
	}
	plan := topology.SingleSwitch(nMappers+1, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[nMappers]
	mappers := plan.Hosts[:nMappers]

	shares := make([][]core.KV, nMappers)
	var all []core.KV
	for i := 0; i < vocab*repeats; i++ {
		kv := core.KV{Key: words[i%vocab], Value: 1}
		m := rng.Intn(nMappers)
		shares[m] = append(shares[m], kv)
		all = append(all, kv)
	}
	sum, _ := core.FuncByID(core.AggSum)
	col, cplan := runJob(t, r, reducer, mappers, shares,
		controller.TreeOptions{Agg: core.AggSum, TableSize: tableSize}, true)

	if !equalMaps(col.Result(), refAggregate(sum, all)) {
		t.Fatal("result wrong")
	}
	st, _ := r.programs[cplan.SwitchNodes[0]].TreeStats(uint32(reducer))
	if st.PairsSpilled != 0 {
		t.Fatalf("collision-free vocabulary still spilled %d pairs", st.PairsSpilled)
	}
	reduction := 1 - float64(col.Stats.PairsReceived)/float64(len(all))
	if reduction < 0.85 || reduction > 0.90 {
		t.Fatalf("reduction %.3f outside paper band [0.85, 0.90]", reduction)
	}
}

func TestControllerInstallRollsBackOnFailure(t *testing.T) {
	// Two-level tree where the second switch's SRAM cannot fit the tree:
	// install must fail and the first switch must be clean.
	plan := topology.LeafSpine(2, 1, 1, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{SRAMBudget: 64 << 10})
	mappers := []netsim.NodeID{plan.Hosts[0]}
	reducer := plan.Hosts[1]
	cplan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	err = r.ctl.InstallTree(cplan, controller.TreeOptions{Agg: core.AggSum, TableSize: 16384})
	if err == nil {
		t.Fatal("want SRAM failure")
	}
	for _, sw := range cplan.SwitchNodes {
		if used := r.programs[sw].Registers().Used(); used != 0 {
			t.Fatalf("switch %d leaked %d bytes", sw, used)
		}
	}
}

func TestDrainTreeRecoversMidRoundState(t *testing.T) {
	// A job is torn down mid-round (no ENDs sent): the control plane drains
	// the switch registers and no pair is lost — the paper's "no worse
	// than without in-network computation" failure requirement.
	plan := topology.SingleSwitch(3, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	reducer := plan.Hosts[2]
	mappers := plan.Hosts[:2]
	cplan, err := r.ctl.PlanTree(reducer, mappers)
	if err != nil {
		t.Fatal(err)
	}
	// Table of 2 cells forces spillover, so the drain covers both paths.
	if err := r.ctl.InstallTree(cplan, controller.TreeOptions{Agg: core.AggSum, TableSize: 2}); err != nil {
		t.Fatal(err)
	}
	sum, _ := core.FuncByID(core.AggSum)

	want := map[string]uint32{}
	for mi, m := range mappers {
		s, _ := core.NewSender(r.hosts[m], uint32(reducer), reducer, wire.DefaultGeometry, 10)
		for k := 0; k < 9; k++ {
			key := fmt.Sprintf("k%d", k)
			val := uint32(mi*10 + k)
			want[key] += val
			if err := s.Send([]byte(key), val); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush() // stream data but never End()
	}
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}

	sw := cplan.SwitchNodes[0]
	drained, err := r.programs[sw].DrainTree(uint32(reducer))
	if err != nil {
		t.Fatal(err)
	}
	// Spill packets that already left the switch reached the reducer; fold
	// them in with the drained pairs for the recovery result.
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, 1)
	got := map[string]uint32{}
	_ = col
	for _, kv := range drained {
		if cur, ok := got[kv.Key]; ok {
			got[kv.Key] = sum.Combine(cur, kv.Value)
		} else {
			got[kv.Key] = kv.Value
		}
	}
	// Nothing reached the reducer (spill cap 10 never filled with 9+9 pairs
	// across 2 cells? spillover may have flushed) — account for whatever did.
	host := r.hosts[reducer]
	_ = host
	// Conservation check via switch stats: drained + sent-downstream == in.
	st, _ := r.programs[sw].TreeStats(uint32(reducer))
	recovered := uint64(0)
	for range drained {
		recovered++
	}
	if st.PairsSpillSent+recovered == 0 || st.PairsIn != 18 {
		t.Fatalf("accounting: %+v drained=%d", st, recovered)
	}
	// Every key that never left via spill must be in the drained set with
	// its exact partial sum. Keys that left via spill packets were already
	// counted by the reducer path; we verify the drain covers the rest by
	// totals: sum of drained values + sum of spill-sent pair values ==
	// sum of all sent values. Spill-sent values are observable at the
	// reducer host's collector... but no END arrived, so instead verify
	// via value conservation on the drain side only when nothing spilled.
	if st.SpillPacketsOut == 0 {
		if len(got) != len(want) {
			t.Fatalf("drained %d keys want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("drained %q = %d want %d", k, got[k], v)
			}
		}
	}
	// A second drain finds nothing.
	again, err := r.programs[sw].DrainTree(uint32(reducer))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second drain returned %d pairs", len(again))
	}
	// The tree remains usable for a fresh round after the drain.
	col2 := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, cplan.RootChildren())
	col2.Attach(r.hosts[reducer])
	for _, m := range mappers {
		s, _ := core.NewSender(r.hosts[m], uint32(reducer), reducer, wire.DefaultGeometry, 10)
		if err := s.Send([]byte("fresh"), 1); err != nil {
			t.Fatal(err)
		}
		s.End()
	}
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if !col2.Complete() || col2.Result()["fresh"] != 2 {
		t.Fatalf("post-drain round broken: %v", col2.Result())
	}

	if _, err := r.programs[sw].DrainTree(9999); err == nil {
		t.Fatal("draining unknown tree must fail")
	}
}

func TestConcurrentJobsShareFabric(t *testing.T) {
	// Two jobs (two reducers) run interleaved through one switch: per-tree
	// register isolation and demux must keep both exact.
	plan := topology.SingleSwitch(6, netsim.LinkConfig{})
	r := buildRig(t, plan, core.ProgramConfig{})
	mappers := plan.Hosts[:4]
	redA, redB := plan.Hosts[4], plan.Hosts[5]

	planA, err := r.ctl.PlanTree(redA, mappers)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := r.ctl.PlanTree(redB, mappers)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.InstallTree(planA, controller.TreeOptions{Agg: core.AggSum, TableSize: 256}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.InstallTree(planB, controller.TreeOptions{Agg: core.AggMax, TableSize: 256}); err != nil {
		t.Fatal(err)
	}
	sum, _ := core.FuncByID(core.AggSum)
	max, _ := core.FuncByID(core.AggMax)
	colA := core.NewCollector(uint32(redA), sum, wire.DefaultGeometry, planA.RootChildren())
	colA.Attach(r.hosts[redA])
	colB := core.NewCollector(uint32(redB), max, wire.DefaultGeometry, planB.RootChildren())
	colB.Attach(r.hosts[redB])

	wantA := map[string]uint32{}
	wantB := map[string]uint32{}
	for mi, m := range mappers {
		sA, _ := core.NewSender(r.hosts[m], uint32(redA), redA, wire.DefaultGeometry, 10)
		sB, _ := core.NewSender(r.hosts[m], uint32(redB), redB, wire.DefaultGeometry, 10)
		for k := 0; k < 30; k++ {
			key := fmt.Sprintf("key%02d", k)
			vA := uint32(mi + k)
			vB := uint32(mi * k)
			wantA[key] += vA
			if cur, ok := wantB[key]; !ok || vB > cur {
				wantB[key] = vB
			}
			// Interleave sends across the two jobs.
			if err := sA.Send([]byte(key), vA); err != nil {
				t.Fatal(err)
			}
			if err := sB.Send([]byte(key), vB); err != nil {
				t.Fatal(err)
			}
		}
		sA.End()
		sB.End()
	}
	if err := r.nw.Run(0); err != nil {
		t.Fatal(err)
	}
	if !colA.Complete() || !colB.Complete() {
		t.Fatalf("incomplete: A=%v B=%v", colA.Complete(), colB.Complete())
	}
	if !equalMaps(colA.Result(), wantA) {
		t.Fatal("job A corrupted by job B")
	}
	if !equalMaps(colB.Result(), wantB) {
		t.Fatal("job B corrupted by job A")
	}
	// Register isolation: both trees allocated separately on the switch.
	sw := planA.SwitchNodes[0]
	if len(r.programs[sw].Trees()) != 2 {
		t.Fatalf("trees: %v", r.programs[sw].Trees())
	}
}
