package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/dataplane"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/wire"
)

// PHV slot assignment for the DAIET switch program. Integer slots carry
// parsed header fields and control metadata; byte slots alias frame regions.
const (
	slotIsDaiet = iota
	slotDaietType
	slotTreeID
	slotNumPairs
	slotFlags
	slotSeq
	slotAggregate // set when the tree table hits: this packet is ours
	slotFlushMode // persists across recirculation during a flush
	slotSenderIdx // 1 + sender index for reliable trees (0 = unknown)
)

const (
	bslotDstIP = iota
	bslotSrcIP
	bslotPairs
)

// ProgramConfig parameterizes one switch's DAIET program.
type ProgramConfig struct {
	// Geometry fixes the on-wire pair layout (default: the paper's 16-byte
	// keys + 4-byte values).
	Geometry wire.PairGeometry
	// MaxPairsPerPacket bounds pairs parsed per packet. Zero derives it
	// from the geometry and the hardware parse budget, then caps it at the
	// paper's 10.
	MaxPairsPerPacket int
	// SRAMBudget is the register file budget in bytes (default 10 MB, the
	// paper's §5 sizing).
	SRAMBudget int
	// Pipeline overrides dataplane limits (zero value = defaults).
	Pipeline dataplane.PipelineConfig
}

func (c ProgramConfig) withDefaults() ProgramConfig {
	if c.Geometry.KeyWidth == 0 {
		c.Geometry = wire.DefaultGeometry
	}
	if c.MaxPairsPerPacket == 0 {
		c.MaxPairsPerPacket = c.Geometry.MaxPairsPerPacket()
		if c.MaxPairsPerPacket > wire.DefaultMaxPairs {
			c.MaxPairsPerPacket = wire.DefaultMaxPairs
		}
	}
	if c.SRAMBudget == 0 {
		c.SRAMBudget = 10 << 20
	}
	return c
}

// TreeConfig is the per-switch slice of one aggregation tree, pushed by the
// controller (paper §4: tree ID, output port, aggregation function, and the
// number of children to expect traffic from).
type TreeConfig struct {
	TreeID    uint32 // == reducer's node ID
	OutPort   int    // port toward the next node in the tree
	Children  int    // how many tree children send to this switch
	Agg       AggFuncID
	TableSize int // cells in the key/value register arrays
	SpillCap  int // pairs the spillover bucket holds (default: one packet's worth)

	// Reliable enables the loss-recovery extension on this edge hop: the
	// switch accepts each sender's packets strictly in sequence order,
	// acknowledges cumulatively, and drops duplicates — keeping
	// aggregation exactly-once under sender retransmission. Senders lists
	// the node IDs allowed to feed this tree (required when Reliable).
	Reliable bool
	Senders  []uint32

	// Epoch tags the job round this configuration serves. Every packet
	// emitted downstream carries it in the flags high byte; with PinEpoch
	// set, DATA/END packets from any other epoch are dropped (and counted)
	// instead of aggregated. The fault-tolerant MapReduce driver pins one
	// epoch per recovery round so stale in-flight traffic from an aborted
	// round can never contaminate its successor.
	Epoch    uint8
	PinEpoch bool

	// DataClass/AckClass select the shared-buffer traffic class (see
	// netsim.PoolConfig.Classes) this tree's egress traffic is admitted
	// under on pooled switches: downstream DATA/END flushes, spills, and
	// replay retransmissions leave under DataClass; upstream cumulative
	// acknowledgements under AckClass. Multi-tenant installs give each
	// tenant's trees their own class so one tenant's incast cannot fill
	// another tenant's carved reserve floor. Both default to 0 (the pool's
	// first class); pools with fewer classes fold out-of-range classes to 0,
	// and poolless switches ignore them.
	DataClass int
	AckClass  int

	// Tenant tags the tree with the job/tenant that owns it — pure
	// attribution for multi-job runs (mapreduce.RunJobs); the dataplane
	// ignores it.
	Tenant int

	// RootReplay enables the switch-side downstream reliability extension
	// on this hop: the switch retains up to RootReplay emitted packets in
	// a bounded per-tree replay buffer until its tree parent cumulatively
	// acknowledges them, go-back-N retransmits on RootRTO timeout, and
	// pauses the flush loop (VerdictStall) while the buffer is full. On a
	// tree's root switch the acknowledging parent is the reducer's
	// collector (EnableRootAck); on an interior switch it is the parent
	// switch's reliable gate — configure every switch this way (with each
	// parent's Senders listing its child switches) for hop-by-hop
	// reliable trees, as the bigincast experiment does. RootRTO defaults
	// to 500µs.
	RootReplay int
	RootRTO    time.Duration
}

// TreeStats counts one tree's activity on one switch.
type TreeStats struct {
	DataPacketsIn uint64
	EndPacketsIn  uint64
	PairsIn       uint64
	PairsStored   uint64 // stored into an empty cell
	PairsCombined uint64 // aggregated into an existing cell
	PairsSpilled  uint64 // hash collision, sent to spillover

	SpillPacketsOut  uint64
	FlushPacketsOut  uint64
	PairsFlushed     uint64 // pairs sent downstream from registers
	PairsSpillSent   uint64 // pairs sent downstream from the spillover bucket
	EndPacketsOut    uint64
	FlushesCompleted uint64

	// Reliability-extension counters.
	AcksOut       uint64 // cumulative ACKs emitted to senders
	DupsDropped   uint64 // in-window duplicates discarded (re-ACKed)
	GapsDropped   uint64 // out-of-order packets discarded (await retransmit)
	UnknownSender uint64 // reliable packets from unregistered senders

	// Epoch-pinning and root-replay counters.
	StaleEpochDropped   uint64 // DATA/END from a non-pinned epoch, discarded
	RootAcksIn          uint64 // collector ACKs consumed
	RootRetransmissions uint64 // replay-buffer go-back-N retransmissions
	FlushStalls         uint64 // flush passes paused on a full replay buffer
}

// treeState bundles the registers backing one tree on one switch.
type treeState struct {
	cfg TreeConfig
	agg AggFunc

	keys      *dataplane.ByteRegister // key per cell
	vals      *dataplane.Register     // 4-byte value per cell
	valid     *dataplane.Register     // occupancy bit per cell
	stack     *dataplane.Register     // index stack (used-cell indices)
	stackTop  *dataplane.Register     // 1 cell
	spill     *dataplane.ByteRegister // spillover bucket, one pair per cell
	spillCnt  *dataplane.Register     // 1 cell
	remaining *dataplane.Register     // 1 cell: pending children ENDs
	seq       *dataplane.Register     // 1 cell: egress sequence numbers

	// Reliability extension (nil unless cfg.Reliable).
	senderTable *dataplane.Table    // src IP -> sender index
	expSeq      *dataplane.Register // next expected sequence per sender
	epoch       *dataplane.Register // current round epoch per sender
	lastFinal   *dataplane.Register // final cumulative ack of the previous epoch

	// Root-replay extension (cfg.RootReplay > 0): emitted packets retained
	// until cumulatively acknowledged. replayBase is the sequence number of
	// replay[0]; entries are consecutive.
	replay        []replayPkt
	replayBase    uint32
	replayTimerOn bool
	replayGen     int

	Stats TreeStats
}

// replayPkt is one retained downstream packet: enough to retransmit it,
// including the traffic class the original emission left under.
type replayPkt struct {
	port  int
	class int
	frame []byte
}

// regNames lists the register names a tree allocates, for teardown.
func treeRegNames(id uint32) []string {
	return []string{
		fmt.Sprintf("tree%d_keys", id),
		fmt.Sprintf("tree%d_vals", id),
		fmt.Sprintf("tree%d_valid", id),
		fmt.Sprintf("tree%d_stack", id),
		fmt.Sprintf("tree%d_stacktop", id),
		fmt.Sprintf("tree%d_spill", id),
		fmt.Sprintf("tree%d_spillcnt", id),
		fmt.Sprintf("tree%d_remaining", id),
		fmt.Sprintf("tree%d_seq", id),
		fmt.Sprintf("tree%d_expseq", id),
		fmt.Sprintf("tree%d_epoch", id),
		fmt.Sprintf("tree%d_lastfinal", id),
	}
}

// Program is the DAIET switch program: Algorithm 1 of the paper compiled
// against the dataplane pipeline, plus baseline IPv4 forwarding for all
// other traffic (and for DAIET trees that are not configured — which is
// exactly the paper's "UDP baseline without in-network aggregation").
type Program struct {
	cfg      ProgramConfig
	geom     wire.PairGeometry
	maxPairs int

	regs      *dataplane.RegisterFile
	pipe      *dataplane.Pipeline
	sw        *dataplane.Switch
	treeTable *dataplane.Table
	fwdTable  *dataplane.Table
	trees     map[uint32]*treeState

	// crashes counts Crash calls — the "boot generation" a liveness monitor
	// compares across polls to detect crash-restart cycles shorter than its
	// polling period.
	crashes uint64
	selfIP  wire.IPv4Addr // lazily cached IPFromNode(switch ID)
}

// NewProgram builds the pipeline and wraps it in a Switch ready to be added
// to a fabric.
func NewProgram(cfg ProgramConfig) (*Program, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	// Load-time feasibility: the parser must be able to extract a full
	// packet's pairs within the hardware parse budget. Rejecting here
	// mirrors a P4 program failing to compile to the target, instead of
	// silently dropping full packets at run time.
	pcfg := cfg.Pipeline
	parseBudget := pcfg.ParseBudget
	if parseBudget == 0 {
		parseBudget = wire.MaxParseBudget
	}
	headers := wire.EthernetHeaderLen + wire.IPv4HeaderLen + wire.UDPHeaderLen + wire.DaietHeaderLen
	if need := headers + cfg.MaxPairsPerPacket*cfg.Geometry.PairWidth(); need > parseBudget {
		return nil, fmt.Errorf(
			"core: %d pairs of %d-byte keys need %d parse bytes, budget is %d",
			cfg.MaxPairsPerPacket, cfg.Geometry.KeyWidth, need, parseBudget)
	}
	p := &Program{
		cfg:      cfg,
		geom:     cfg.Geometry,
		maxPairs: cfg.MaxPairsPerPacket,
		regs:     dataplane.NewRegisterFile(cfg.SRAMBudget),
		trees:    make(map[uint32]*treeState),
	}
	p.treeTable = dataplane.NewTable("daiet_trees", dataplane.MatchExact)
	p.fwdTable = dataplane.NewTable("ipv4_fwd", dataplane.MatchExact)

	p.pipe = dataplane.NewPipeline("daiet", p.parse, cfg.Pipeline)
	if err := p.pipe.AddStage("tree_lookup", p.stageTreeLookup); err != nil {
		return nil, err
	}
	if err := p.pipe.AddStage("aggregate", p.stageAggregate); err != nil {
		return nil, err
	}
	if err := p.pipe.AddStage("forward", p.stageForward); err != nil {
		return nil, err
	}
	p.sw = dataplane.NewSwitch(p.pipe, p.regs)
	return p, nil
}

// Switch returns the fabric node running this program.
func (p *Program) Switch() *dataplane.Switch { return p.sw }

// Registers exposes the register file (controller/diagnostics use).
func (p *Program) Registers() *dataplane.RegisterFile { return p.regs }

// Geometry returns the program's pair geometry.
func (p *Program) Geometry() wire.PairGeometry { return p.geom }

// MaxPairsPerPacket returns the per-packet pair bound.
func (p *Program) MaxPairsPerPacket() int { return p.maxPairs }

// TreeStats returns a copy of the named tree's counters.
func (p *Program) TreeStats(treeID uint32) (TreeStats, bool) {
	st, ok := p.trees[treeID]
	if !ok {
		return TreeStats{}, false
	}
	return st.Stats, true
}

// TreeResidency is a point-in-time gauge of one tree's register-file
// occupancy — the state a telemetry probe samples on cadence, as opposed
// to TreeStats' cumulative counters. All four gauges are plain reads of
// switch-local registers, so sampling them from the switch's own timer
// context is race-free and deterministic.
type TreeResidency struct {
	Cells      int // occupied aggregation cells (stack depth)
	TableSize  int // configured cell capacity
	SpillPairs int // pairs parked in the spillover bucket
	ReplayLen  int // retained root-replay packets awaiting ack
}

// TreeResidency returns the named tree's current register residency.
func (p *Program) TreeResidency(treeID uint32) (TreeResidency, bool) {
	st, ok := p.trees[treeID]
	if !ok {
		return TreeResidency{}, false
	}
	return TreeResidency{
		Cells:      int(st.stackTop.Cells[0]),
		TableSize:  st.valid.Len(),
		SpillPairs: int(st.spillCnt.Cells[0]),
		ReplayLen:  len(st.replay),
	}, true
}

// Trees returns the configured tree IDs in ascending order (the tree set
// is a map; iteration order must not leak into reports).
func (p *Program) Trees() []uint32 {
	out := make([]uint32, 0, len(p.trees))
	for id := range p.trees {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstallRoute adds plain IPv4 forwarding: packets addressed to node dst
// leave through port.
func (p *Program) InstallRoute(dst uint32, port int) error {
	ip := wire.IPFromNode(dst)
	return p.fwdTable.AddExact(ip[:], dataplane.Entry{
		Action: func(c *dataplane.Ctx, params []uint64) { c.Forward(int(params[0])) },
		Params: []uint64{uint64(port)},
	})
}

// ConfigureTree allocates the tree's registers and activates aggregation
// for its tree ID. Allocation failures (SRAM exhausted) roll back cleanly.
//
//simlint:framecopy control-plane call, once per tree install; the copy is deliberate — defaults are patched into the local cfg before it is stored
func (p *Program) ConfigureTree(cfg TreeConfig) (err error) {
	if _, dup := p.trees[cfg.TreeID]; dup {
		return fmt.Errorf("core: tree %d already configured", cfg.TreeID)
	}
	if cfg.TableSize <= 0 {
		return fmt.Errorf("core: tree %d: table size %d", cfg.TreeID, cfg.TableSize)
	}
	if cfg.Children <= 0 {
		return fmt.Errorf("core: tree %d: children %d", cfg.TreeID, cfg.Children)
	}
	if cfg.SpillCap == 0 {
		cfg.SpillCap = p.maxPairs
	}
	if cfg.RootReplay > 0 && cfg.RootRTO == 0 {
		cfg.RootRTO = 500 * time.Microsecond
	}
	agg, err := FuncByID(cfg.Agg)
	if err != nil {
		return err
	}

	names := treeRegNames(cfg.TreeID)
	defer func() {
		if err != nil {
			for _, n := range names {
				p.regs.Free(n)
			}
		}
	}()

	st := &treeState{cfg: cfg, agg: agg}
	if st.keys, err = p.regs.AllocByteRegister(names[0], p.geom.KeyWidth, cfg.TableSize); err != nil {
		return err
	}
	if st.vals, err = p.regs.AllocRegister(names[1], wire.ValueWidth, cfg.TableSize); err != nil {
		return err
	}
	if st.valid, err = p.regs.AllocRegister(names[2], 1, cfg.TableSize); err != nil {
		return err
	}
	if st.stack, err = p.regs.AllocRegister(names[3], 4, cfg.TableSize); err != nil {
		return err
	}
	if st.stackTop, err = p.regs.AllocRegister(names[4], 4, 1); err != nil {
		return err
	}
	if st.spill, err = p.regs.AllocByteRegister(names[5], p.geom.PairWidth(), cfg.SpillCap); err != nil {
		return err
	}
	if st.spillCnt, err = p.regs.AllocRegister(names[6], 2, 1); err != nil {
		return err
	}
	if st.remaining, err = p.regs.AllocRegister(names[7], 4, 1); err != nil {
		return err
	}
	if st.seq, err = p.regs.AllocRegister(names[8], 4, 1); err != nil {
		return err
	}
	if cfg.Reliable {
		if len(cfg.Senders) == 0 {
			err = fmt.Errorf("core: tree %d: reliable mode needs a sender list", cfg.TreeID)
			return err
		}
		if st.expSeq, err = p.regs.AllocRegister(names[9], 4, len(cfg.Senders)); err != nil {
			return err
		}
		if st.epoch, err = p.regs.AllocRegister(names[10], 1, len(cfg.Senders)); err != nil {
			return err
		}
		if st.lastFinal, err = p.regs.AllocRegister(names[11], 4, len(cfg.Senders)); err != nil {
			return err
		}
		st.senderTable = dataplane.NewTable(fmt.Sprintf("tree%d_senders", cfg.TreeID), dataplane.MatchExact)
		for i, sender := range cfg.Senders {
			ip := wire.IPFromNode(sender)
			if err = st.senderTable.AddExact(ip[:], dataplane.Entry{
				Action: func(c *dataplane.Ctx, params []uint64) {
					c.U[slotSenderIdx] = params[0] + 1
				},
				Params: []uint64{uint64(i)},
			}); err != nil {
				return err
			}
		}
	}
	// Control-plane initialization (not metered: the controller writes
	// registers out of band, like a P4Runtime register write).
	st.remaining.Cells[0] = uint64(cfg.Children)

	var key [4]byte
	binary.BigEndian.PutUint32(key[:], cfg.TreeID)
	if err = p.treeTable.AddExact(key[:], dataplane.Entry{
		Action: func(c *dataplane.Ctx, _ []uint64) { c.U[slotAggregate] = 1 },
	}); err != nil {
		return err
	}
	p.trees[cfg.TreeID] = st
	return nil
}

// DrainTree is the control-plane escape hatch for failure handling (paper
// §2: "an application should be no worse than without in-network
// computation"): it reads every aggregated pair still held in the tree's
// registers — via the index stack, plus the spillover bucket — resets the
// tree's state for a fresh round, and returns the pairs so the controller
// can deliver them out of band (for example when a job is cancelled or a
// switch must be reconfigured mid-round). Reads are control-plane register
// access (P4Runtime-style), not metered dataplane work.
func (p *Program) DrainTree(treeID uint32) ([]KV, error) {
	st, ok := p.trees[treeID]
	if !ok {
		return nil, fmt.Errorf("core: drain: tree %d not configured", treeID)
	}
	var out []KV
	top := int(st.stackTop.Cells[0])
	for i := 0; i < top; i++ {
		idx := int(st.stack.Cells[i])
		if idx < 0 || idx >= st.valid.Len() || st.valid.Cells[idx] == 0 {
			continue
		}
		out = append(out, KV{
			Key:   string(wire.TrimKey(st.keys.Cell(idx))),
			Value: uint32(st.vals.Cells[idx]),
		})
		st.valid.Cells[idx] = 0
	}
	st.stackTop.Cells[0] = 0
	cnt := int(st.spillCnt.Cells[0])
	for i := 0; i < cnt; i++ {
		cell := st.spill.Cell(i)
		out = append(out, KV{
			Key:   string(wire.TrimKey(cell[:p.geom.KeyWidth])),
			Value: binary.BigEndian.Uint32(cell[p.geom.KeyWidth:]),
		})
	}
	st.spillCnt.Cells[0] = 0
	st.remaining.Cells[0] = uint64(st.cfg.Children)
	return out, nil
}

// Crash simulates a switch power failure: all dataplane state — every
// tree's registers (including partial aggregates and replay buffers), the
// tree table, the forwarding table, and the shared packet-memory occupancy
// accounting — is lost, and the switch drops all traffic until Restart.
// It returns how many aggregated pairs were resident in switch memory at
// the moment of the crash: the partial aggregates a recovery protocol
// must re-drive. Call only while the network is quiescent (a
// fault-injection control point).
func (p *Program) Crash() (lostPairs int) {
	ids := make([]uint32, 0, len(p.trees))
	for id, st := range p.trees {
		lostPairs += int(st.stackTop.Cells[0]) + int(st.spillCnt.Cells[0])
		ids = append(ids, id)
	}
	// Tear down in ascending tree order: RemoveTree cancels replay state,
	// and crash handling must replay identically at any -sim-workers.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.RemoveTree(id)
	}
	p.fwdTable.Clear()
	p.crashes++
	p.sw.SetDown(true)
	p.sw.ResetBuffers()
	return lostPairs
}

// Restart revives a crashed switch with empty tables: it forwards nothing
// and aggregates nothing until the controller reinstalls routing and
// trees, exactly like a rebooted device joining the fabric.
func (p *Program) Restart() { p.sw.SetDown(false) }

// Alive reports whether the switch is up (responding to the control
// plane).
func (p *Program) Alive() bool { return !p.sw.Down() }

// Crashes returns the boot-generation counter: how many times the switch
// has crashed. A liveness monitor that sees the generation advance between
// polls knows a crash-restart cycle happened even if every poll found the
// switch up.
func (p *Program) Crashes() uint64 { return p.crashes }

// RemoveTree tears one tree down, freeing its registers.
func (p *Program) RemoveTree(treeID uint32) {
	if _, ok := p.trees[treeID]; !ok {
		return
	}
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], treeID)
	p.treeTable.DeleteExact(key[:])
	for _, n := range treeRegNames(treeID) {
		p.regs.Free(n)
	}
	delete(p.trees, treeID)
}

// parse is the pipeline's parser: Ethernet, IPv4, then (for DAIET packets)
// UDP, the DAIET preamble and the pair area — all within the hardware parse
// budget enforced by Ctx.Extract.
func (p *Program) parse(c *dataplane.Ctx) error {
	eh := c.Extract(wire.EthernetHeaderLen)
	if c.Err() != nil {
		return c.Err()
	}
	if binary.BigEndian.Uint16(eh[12:14]) != wire.EtherTypeIPv4 {
		return wire.ErrBadEtherType
	}
	ih := c.Extract(wire.IPv4HeaderLen)
	if c.Err() != nil {
		return c.Err()
	}
	c.B[bslotSrcIP] = ih[12:16]
	c.B[bslotDstIP] = ih[16:20]
	c.U[slotIsDaiet] = 0
	if ih[9] != wire.ProtocolUDP {
		return nil
	}
	uh := c.Extract(wire.UDPHeaderLen)
	if c.Err() != nil {
		return c.Err()
	}
	if binary.BigEndian.Uint16(uh[2:4]) != wire.UDPPortDaiet {
		return nil
	}
	dh := c.Extract(wire.DaietHeaderLen)
	if c.Err() != nil {
		return c.Err()
	}
	if binary.BigEndian.Uint16(dh[0:2]) != wire.DaietMagic {
		return wire.ErrBadMagic
	}
	if dh[2] != wire.DaietVersion {
		return wire.ErrBadDaietVer
	}
	numPairs := int(binary.BigEndian.Uint16(dh[12:14]))
	if numPairs > p.maxPairs {
		// A hardware parser could not have extracted this many pairs.
		return fmt.Errorf("%w: %d pairs exceed parser capacity %d",
			wire.ErrBadLength, numPairs, p.maxPairs)
	}
	c.U[slotDaietType] = uint64(dh[3])
	c.U[slotTreeID] = uint64(binary.BigEndian.Uint32(dh[4:8]))
	c.U[slotSeq] = uint64(binary.BigEndian.Uint32(dh[8:12]))
	c.U[slotNumPairs] = uint64(numPairs)
	c.U[slotFlags] = uint64(binary.BigEndian.Uint16(dh[14:16]))
	if numPairs > 0 {
		c.B[bslotPairs] = c.Extract(numPairs * p.geom.PairWidth())
		if c.Err() != nil {
			return c.Err()
		}
	} else {
		c.B[bslotPairs] = nil
	}
	c.U[slotIsDaiet] = 1
	return nil
}

// stageTreeLookup matches the packet's tree ID against configured trees.
func (p *Program) stageTreeLookup(c *dataplane.Ctx) {
	c.U[slotAggregate] = 0
	if c.U[slotIsDaiet] != 1 {
		return
	}
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], uint32(c.U[slotTreeID]))
	c.Apply(p.treeTable, key[:])
}

// stageAggregate runs Algorithm 1 for packets belonging to a configured
// tree; other packets pass through untouched.
func (p *Program) stageAggregate(c *dataplane.Ctx) {
	if c.U[slotAggregate] != 1 {
		return
	}
	st := p.trees[uint32(c.U[slotTreeID])]
	if st == nil {
		// Table and map out of sync would be a control-plane bug; fail to
		// plain forwarding rather than corrupting state.
		c.U[slotAggregate] = 0
		return
	}
	if c.U[slotFlushMode] == 1 {
		if st.cfg.PinEpoch && uint8(c.U[slotFlags]>>8) != st.cfg.Epoch {
			// Zombie flush: a recirculating flush context from an aborted
			// round outlived its tree, and the tree ID is now occupied by a
			// fresh epoch. Draining the new round's registers here would
			// corrupt it — kill the context instead.
			st.Stats.StaleEpochDropped++
			c.U[slotFlushMode] = 0
			c.Drop()
			return
		}
		p.flushPass(c, st)
		return
	}
	typ := wire.DaietType(c.U[slotDaietType])
	if typ == wire.TypeAck && st.cfg.RootReplay > 0 && p.isSelf(c.B[bslotDstIP]) {
		// A collector acknowledgement for this switch's own downstream
		// stream: consume it against the replay buffer.
		p.handleRootAck(c, st)
		return
	}
	if typ != wire.TypeData && typ != wire.TypeEnd {
		// ACK/NACK belong to the end-host reliability extension; the base
		// program lets them through to their destination.
		c.U[slotAggregate] = 0
		return
	}
	if st.cfg.PinEpoch && uint8(c.U[slotFlags]>>8) != st.cfg.Epoch {
		// Stale traffic from another round (an aborted predecessor, or a
		// straggler that outlived its tree): exactly-once across recovery
		// rounds requires dropping it, never aggregating it.
		st.Stats.StaleEpochDropped++
		c.Drop()
		return
	}
	if st.cfg.Reliable && !p.reliableGate(c, st) {
		return // duplicate, gap, or unknown sender: already handled
	}
	switch typ {
	case wire.TypeData:
		p.aggregateData(c, st)
	case wire.TypeEnd:
		p.handleEnd(c, st)
	}
}

// reliableGate enforces per-sender, per-epoch in-order delivery and emits
// cumulative ACKs. It returns true when the packet is the next expected
// one and should be processed.
//
// Epoch rules (mod 256, "newer" = forward distance < 128):
//   - same epoch: classic go-back-N — accept seq==exp, re-ACK duplicates,
//     dup-ACK gaps;
//   - newer epoch with seq 0: a fresh round begins — adopt it;
//   - newer epoch with seq > 0: the round's opener was lost — drop and
//     wait for go-back-N to resend from 0;
//   - older epoch: a straggler of a finished round — re-ACK its recorded
//     final cumulative sequence so the sender can terminate.
func (p *Program) reliableGate(c *dataplane.Ctx, st *treeState) bool {
	c.U[slotSenderIdx] = 0
	c.Apply(st.senderTable, c.B[bslotSrcIP])
	if c.Err() != nil {
		return false
	}
	if c.U[slotSenderIdx] == 0 {
		st.Stats.UnknownSender++
		c.Drop()
		return false
	}
	idx := int(c.U[slotSenderIdx] - 1)
	src := wire.IPv4Addr{c.B[bslotSrcIP][0], c.B[bslotSrcIP][1], c.B[bslotSrcIP][2], c.B[bslotSrcIP][3]}.NodeID()
	pktEpoch := uint8(c.U[slotFlags] >> 8)
	curEpoch := uint8(c.RegRead(st.epoch, idx))
	seq := uint32(c.U[slotSeq])

	if pktEpoch != curEpoch {
		if epochNewer(pktEpoch, curEpoch) {
			if seq != 0 {
				// New round but its first packet is missing: go-back-N
				// will resend from 0.
				st.Stats.GapsDropped++
				c.Drop()
				return false
			}
			// Record the finished round's final ACK before adopting the
			// new epoch.
			c.RegWrite(st.lastFinal, idx, c.RegRead(st.expSeq, idx))
			c.RegWrite(st.epoch, idx, uint64(pktEpoch))
			c.RegWrite(st.expSeq, idx, 0)
			curEpoch = pktEpoch
			// Fall through to the same-epoch logic with exp == 0.
		} else {
			// Straggler of a previous epoch (its final ACK was lost):
			// re-acknowledge that round's completion.
			st.Stats.DupsDropped++
			p.emitAck(c, st, src, uint32(c.RegRead(st.lastFinal, idx)), pktEpoch)
			c.Drop()
			return false
		}
	}

	exp := uint32(c.RegRead(st.expSeq, idx))
	switch {
	case seq == exp:
		c.RegWrite(st.expSeq, idx, uint64(exp+1))
		if wire.DaietType(c.U[slotDaietType]) == wire.TypeEnd {
			// The stream is complete: remember its final cumulative ACK
			// for post-round stragglers.
			c.RegWrite(st.lastFinal, idx, uint64(exp+1))
		}
		p.emitAck(c, st, src, exp+1, curEpoch)
		return c.Err() == nil
	case seq < exp:
		// Duplicate of something already aggregated: re-ACK, do not
		// re-apply (exactly-once aggregation under retransmission).
		st.Stats.DupsDropped++
		p.emitAck(c, st, src, exp, curEpoch)
		c.Drop()
		return false
	default:
		// Gap: an earlier packet was lost; dup-ACK the prefix we hold.
		st.Stats.GapsDropped++
		p.emitAck(c, st, src, exp, curEpoch)
		c.Drop()
		return false
	}
}

// isSelf reports whether ip is this switch's own address (valid once the
// switch is attached to a fabric; cached after first use).
func (p *Program) isSelf(ip []byte) bool {
	if p.selfIP == (wire.IPv4Addr{}) {
		p.selfIP = wire.IPFromNode(uint32(p.sw.ID()))
	}
	return len(ip) == 4 && wire.IPv4Addr{ip[0], ip[1], ip[2], ip[3]} == p.selfIP
}

// handleRootAck consumes a collector's cumulative acknowledgement of this
// tree's downstream stream: every replay entry below the ACKed sequence is
// released, and the retransmit timer is re-armed over what remains.
func (p *Program) handleRootAck(c *dataplane.Ctx, st *treeState) {
	if st.cfg.PinEpoch && uint8(c.U[slotFlags]>>8) != st.cfg.Epoch {
		// A straggler ACK from a previous round: honoring its cumulative
		// sequence against this round's replay buffer would release
		// packets the collector never acknowledged.
		st.Stats.StaleEpochDropped++
		c.Drop()
		return
	}
	st.Stats.RootAcksIn++
	ack := uint32(c.U[slotSeq])
	if n := int(int32(ack - st.replayBase)); n > 0 {
		if n > len(st.replay) {
			n = len(st.replay)
		}
		st.replay = st.replay[n:]
		st.replayBase += uint32(n)
		st.replayGen++ // progress: restart the retransmit clock
		st.replayTimerOn = false
		p.armReplayTimer(st)
	}
	c.Drop() // consumed
}

// recordReplay retains one just-emitted downstream packet for
// retransmission and arms the timer. The frame is copied: the emitted
// original is owned by the fabric once transmitted.
func (p *Program) recordReplay(st *treeState, port int, frame []byte) {
	st.replay = append(st.replay, replayPkt{
		port: port, class: st.cfg.DataClass, frame: append([]byte(nil), frame...)})
	p.armReplayTimer(st)
}

// replayFull reports whether the bounded replay buffer has no room for
// another emission — the flush loop's backpressure signal.
func (p *Program) replayFull(st *treeState) bool {
	return st.cfg.RootReplay > 0 && len(st.replay) >= st.cfg.RootReplay
}

func (p *Program) armReplayTimer(st *treeState) {
	if st.replayTimerOn || len(st.replay) == 0 {
		return
	}
	st.replayTimerOn = true
	gen := st.replayGen
	p.sw.After(netsim.Duration(st.cfg.RootRTO), func() { p.onReplayTimer(st, gen) })
}

// onReplayTimer is the go-back-N retransmission path for the
// switch→reducer hop: everything unacknowledged is re-injected. There is
// no give-up bound — job-level recovery owns liveness decisions; the
// caller's event budget bounds pathological cases.
func (p *Program) onReplayTimer(st *treeState, gen int) {
	if gen != st.replayGen {
		// Superseded: an ACK already restarted the retransmit clock and a
		// newer timer chain owns replayTimerOn — clearing it here would
		// let a duplicate chain be armed alongside that one.
		return
	}
	st.replayTimerOn = false
	if len(st.replay) == 0 {
		return
	}
	if p.trees[st.cfg.TreeID] != st {
		return // tree torn down (or switch crashed) since arming
	}
	for _, pkt := range st.replay {
		p.sw.InjectClass(pkt.port, pkt.class, append([]byte(nil), pkt.frame...))
		st.Stats.RootRetransmissions++
	}
	p.armReplayTimer(st)
}

// epochNewer reports whether a is ahead of b in mod-256 arithmetic.
func epochNewer(a, b uint8) bool {
	d := a - b
	return d != 0 && d < 128
}

// emitAck sends a cumulative acknowledgement back toward the sender
// through the ingress port, tagged with the epoch it acknowledges.
func (p *Program) emitAck(c *dataplane.Ctx, st *treeState, dst uint32, cumSeq uint32, epoch uint8) {
	buf := wire.NewBuffer(wire.DefaultHeadroom, 0)
	hdr := wire.DaietHeader{
		Type:   wire.TypeAck,
		TreeID: st.cfg.TreeID,
		Seq:    cumSeq,
		Flags:  uint16(epoch) << 8,
	}
	frame := wire.BuildDaietFrame(buf, hdr, uint32(p.sw.ID()), dst, wire.UDPPortDaiet)
	c.EmitClass(c.InPort, st.cfg.AckClass, frame)
	st.Stats.AcksOut++
}

// stageForward routes any packet the aggregation stage did not consume.
func (p *Program) stageForward(c *dataplane.Ctx) {
	if c.U[slotAggregate] == 1 {
		return
	}
	c.Apply(p.fwdTable, c.B[bslotDstIP])
}

// aggregateData is the DATA_PACKET arm of Algorithm 1: for each pair, hash
// the key to a cell; store into an empty cell (pushing the index), combine
// on key match, spill on collision. The packet itself is consumed — this
// is where the traffic reduction happens.
func (p *Program) aggregateData(c *dataplane.Ctx, st *treeState) {
	n := int(c.U[slotNumPairs])
	pw := p.geom.PairWidth()
	kw := p.geom.KeyWidth
	pairs := c.B[bslotPairs]
	// The per-pair body is conceptually unrolled n <= maxPairs times (the
	// paper's manual loop unrolling); every primitive inside is metered.
	for i := 0; i < n; i++ {
		pair := pairs[i*pw : (i+1)*pw]
		key := pair[:kw]
		val := binary.BigEndian.Uint32(pair[kw:])
		st.Stats.PairsIn++

		idx := c.HashIndex(key, st.cfg.TableSize)
		occupied := c.RegRead(st.valid, idx)
		if c.Err() != nil {
			return
		}
		switch {
		case occupied == 0:
			c.BRegWrite(st.keys, idx, key)
			c.RegWrite(st.vals, idx, uint64(val))
			c.RegWrite(st.valid, idx, 1)
			top := c.RegRead(st.stackTop, 0)
			c.RegWrite(st.stack, int(top), uint64(idx))
			c.RegWrite(st.stackTop, 0, top+1)
			st.Stats.PairsStored++
		case bytes.Equal(c.BRegRead(st.keys, idx), key):
			cur := c.RegRead(st.vals, idx)
			c.RegWrite(st.vals, idx, uint64(st.agg.Combine(uint32(cur), val)))
			st.Stats.PairsCombined++
		default:
			p.spillPair(c, st, pair)
			st.Stats.PairsSpilled++
		}
		if c.Err() != nil {
			return
		}
	}
	st.Stats.DataPacketsIn++
	c.Drop() // consumed: pairs now live in switch state
}

// spillPair implements the collision path: append the pair to the spillover
// bucket; when full, its contents leave immediately toward the next node
// ("the non-aggregated values in the spillover bucket are the first to be
// sent").
func (p *Program) spillPair(c *dataplane.Ctx, st *treeState, pair []byte) {
	cnt := int(c.RegRead(st.spillCnt, 0))
	c.BRegWrite(st.spill, cnt, pair)
	cnt++
	if cnt >= st.cfg.SpillCap {
		p.emitSpill(c, st, cnt)
		cnt = 0
	}
	c.RegWrite(st.spillCnt, 0, uint64(cnt))
}

// emitSpill sends the first cnt spillover pairs downstream as a DATA packet
// flagged FlagSpill.
func (p *Program) emitSpill(c *dataplane.Ctx, st *treeState, cnt int) {
	buf := wire.NewBuffer(wire.DefaultHeadroom, cnt*p.geom.PairWidth())
	for i := 0; i < cnt; i++ {
		cell := c.BRegRead(st.spill, i)
		if c.Err() != nil {
			return
		}
		buf.AppendBytes(cell)
	}
	p.emitDaiet(c, st, buf, wire.TypeData, uint16(cnt), wire.FlagSpill)
	st.Stats.SpillPacketsOut++
	st.Stats.PairsSpillSent += uint64(cnt)
}

// handleEnd is the END_PACKET arm of Algorithm 1: count down the pending
// children; at zero, begin flushing aggregated state downstream.
func (p *Program) handleEnd(c *dataplane.Ctx, st *treeState) {
	st.Stats.EndPacketsIn++
	rem := c.RegRead(st.remaining, 0)
	if rem > 0 {
		rem--
	}
	c.RegWrite(st.remaining, 0, rem)
	if c.Err() != nil {
		return
	}
	if rem > 0 {
		c.Drop() // absorbed; downstream sees one END per tree, at flush end
		return
	}
	c.U[slotFlushMode] = 1
	p.flushPass(c, st)
}

// flushPass drains one packet's worth of state per pipeline pass,
// recirculating until done (the recirculation-driven flush loop the RMT
// architecture forces on programs that need unbounded iteration). Order:
// spillover leftovers first, then register contents via the index stack,
// then a terminal END downstream.
func (p *Program) flushPass(c *dataplane.Ctx, st *treeState) {
	if p.replayFull(st) {
		// Root-replay backpressure: every emission is retained until the
		// collector acknowledges it, so a full buffer pauses the flush
		// (stall, not recirculate: waiting on a round trip costs no
		// recirculation budget). ACKs drain the buffer; the stalled pass
		// then resumes exactly where it left off.
		st.Stats.FlushStalls++
		c.Stall()
		return
	}
	if cnt := int(c.RegRead(st.spillCnt, 0)); cnt > 0 {
		p.emitSpill(c, st, cnt)
		c.RegWrite(st.spillCnt, 0, 0)
		c.Recirculate()
		return
	}
	top := int(c.RegRead(st.stackTop, 0))
	if c.Err() != nil {
		return
	}
	if top == 0 {
		// Flush complete: propagate END, then reset for the next round.
		p.emitDaiet(c, st, wire.NewBuffer(wire.DefaultHeadroom, 0),
			wire.TypeEnd, 0, wire.FlagAggregated)
		st.Stats.EndPacketsOut++
		st.Stats.FlushesCompleted++
		c.RegWrite(st.remaining, 0, uint64(st.cfg.Children))
		c.U[slotFlushMode] = 0
		c.Drop()
		return
	}
	n := p.maxPairs
	if n > top {
		n = top
	}
	buf := wire.NewBuffer(wire.DefaultHeadroom, n*p.geom.PairWidth())
	for i := 0; i < n; i++ {
		idx := int(c.RegRead(st.stack, top-1-i))
		key := c.BRegRead(st.keys, idx)
		val := c.RegRead(st.vals, idx)
		c.RegWrite(st.valid, idx, 0)
		if c.Err() != nil {
			return
		}
		buf.AppendBytes(key)
		w := buf.Append(wire.ValueWidth)
		binary.BigEndian.PutUint32(w, uint32(val))
	}
	c.RegWrite(st.stackTop, 0, uint64(top-n))
	p.emitDaiet(c, st, buf, wire.TypeData, uint16(n), wire.FlagAggregated)
	st.Stats.FlushPacketsOut++
	st.Stats.PairsFlushed += uint64(n)
	c.Recirculate()
}

// emitDaiet wraps buf's pair payload in DAIET/UDP/IP/Ethernet headers
// addressed to the tree root and emits it out the tree port.
func (p *Program) emitDaiet(c *dataplane.Ctx, st *treeState, buf *wire.Buffer,
	typ wire.DaietType, numPairs uint16, flags uint16) {

	seq := c.RegRead(st.seq, 0)
	c.RegWrite(st.seq, 0, seq+1)
	hdr := wire.DaietHeader{
		Type:     typ,
		TreeID:   st.cfg.TreeID,
		Seq:      uint32(seq),
		NumPairs: numPairs,
		Flags:    flags | uint16(st.cfg.Epoch)<<8,
	}
	frame := wire.BuildDaietFrame(buf, hdr, uint32(p.sw.ID()), st.cfg.TreeID, wire.UDPPortDaiet)
	c.EmitClass(st.cfg.OutPort, st.cfg.DataClass, frame)
	if st.cfg.RootReplay > 0 {
		// Spill emissions during aggregation bypass the flush-loop
		// backpressure check, so the buffer can transiently exceed its cap
		// by in-flight spills; the flush loop stalls until ACKs bring it
		// back under.
		p.recordReplay(st, st.cfg.OutPort, frame)
	}
}
