package core

import (
	"testing"
	"testing/quick"
)

func TestFuncByID(t *testing.T) {
	for _, id := range []AggFuncID{AggSum, AggMin, AggMax, AggCount, AggBitOr, AggBitAnd} {
		f, err := FuncByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.ID() != id {
			t.Fatalf("id mismatch: %d vs %d", f.ID(), id)
		}
		if f.Name() == "" {
			t.Fatal("empty name")
		}
	}
	if _, err := FuncByID(999); err == nil {
		t.Fatal("unknown id must fail")
	}
	if len(Funcs()) != 6 {
		t.Fatalf("funcs: %d", len(Funcs()))
	}
}

// Property: every built-in is commutative, associative, and respects its
// identity — the paper's correctness precondition for in-network
// application.
func TestAggFuncAlgebraProperty(t *testing.T) {
	for _, f := range Funcs() {
		f := f
		comm := func(a, b uint32) bool { return f.Combine(a, b) == f.Combine(b, a) }
		assoc := func(a, b, c uint32) bool {
			return f.Combine(a, f.Combine(b, c)) == f.Combine(f.Combine(a, b), c)
		}
		ident := func(a uint32) bool { return f.Combine(f.Identity(), a) == a }
		cfg := &quick.Config{MaxCount: 200}
		if err := quick.Check(comm, cfg); err != nil {
			t.Fatalf("%s not commutative: %v", f.Name(), err)
		}
		if err := quick.Check(assoc, cfg); err != nil {
			t.Fatalf("%s not associative: %v", f.Name(), err)
		}
		if err := quick.Check(ident, cfg); err != nil {
			t.Fatalf("%s identity broken: %v", f.Name(), err)
		}
	}
}

func TestAggSemantics(t *testing.T) {
	sum, _ := FuncByID(AggSum)
	if sum.Combine(3, 4) != 7 {
		t.Fatal("sum")
	}
	min, _ := FuncByID(AggMin)
	if min.Combine(3, 4) != 3 || min.Combine(9, 2) != 2 {
		t.Fatal("min")
	}
	max, _ := FuncByID(AggMax)
	if max.Combine(3, 4) != 4 || max.Combine(9, 2) != 9 {
		t.Fatal("max")
	}
	cnt, _ := FuncByID(AggCount)
	if cnt.Combine(5, 1) != 6 {
		t.Fatal("count")
	}
	or, _ := FuncByID(AggBitOr)
	if or.Combine(0b0101, 0b0011) != 0b0111 {
		t.Fatal("or")
	}
	and, _ := FuncByID(AggBitAnd)
	if and.Combine(0b0101, 0b0011) != 0b0001 {
		t.Fatal("and")
	}
}
