// Package core implements DAIET, the paper's contribution: in-network data
// aggregation for partition/aggregate data center applications.
//
// It contains three cooperating pieces:
//
//   - Program: the switch-side packet-processing program (the paper's
//     Algorithm 1) expressed against the internal/dataplane pipeline —
//     per-tree key/value register arrays managed as single-slot hash
//     buckets, a spillover bucket for collisions, an index stack to avoid
//     scanning on flush, and END-packet fan-in counting.
//   - Sender: the worker-side library that packetizes a map task's
//     intermediate key-value pairs into DAIET-over-UDP packets (fixed-size
//     pairs, at most a parse-budget's worth per packet) and terminates the
//     stream with an END packet.
//   - Collector: the reducer-side library that receives aggregated pairs
//     (plus spillover leftovers), performs the final combine, and reports
//     the traffic statistics the evaluation measures.
package core

import "fmt"

// AggFuncID identifies an aggregation function in switch configuration and
// controller messages. Values are stable wire/flow-rule identifiers.
type AggFuncID uint32

// Built-in aggregation function IDs. The paper requires commutative and
// associative combiners so partial in-network application cannot change the
// final result; every built-in satisfies that.
const (
	AggSum AggFuncID = iota + 1
	AggMin
	AggMax
	AggCount
	AggBitOr
	AggBitAnd
)

// AggFunc combines 32-bit values. Implementations must be commutative and
// associative: Combine(a, Combine(b, c)) == Combine(Combine(a, b), c) and
// Combine(a, b) == Combine(b, a). Identity is the neutral element.
type AggFunc interface {
	ID() AggFuncID
	Name() string
	Identity() uint32
	Combine(a, b uint32) uint32
}

type aggSum struct{}

func (aggSum) ID() AggFuncID              { return AggSum }
func (aggSum) Name() string               { return "sum" }
func (aggSum) Identity() uint32           { return 0 }
func (aggSum) Combine(a, b uint32) uint32 { return a + b }

type aggMin struct{}

func (aggMin) ID() AggFuncID    { return AggMin }
func (aggMin) Name() string     { return "min" }
func (aggMin) Identity() uint32 { return ^uint32(0) }
func (aggMin) Combine(a, b uint32) uint32 {
	if b < a {
		return b
	}
	return a
}

type aggMax struct{}

func (aggMax) ID() AggFuncID    { return AggMax }
func (aggMax) Name() string     { return "max" }
func (aggMax) Identity() uint32 { return 0 }
func (aggMax) Combine(a, b uint32) uint32 {
	if b > a {
		return b
	}
	return a
}

// aggCount ignores incoming values and counts occurrences. On the wire a
// count update carries value 1; combining adds.
type aggCount struct{}

func (aggCount) ID() AggFuncID              { return AggCount }
func (aggCount) Name() string               { return "count" }
func (aggCount) Identity() uint32           { return 0 }
func (aggCount) Combine(a, b uint32) uint32 { return a + b }

type aggBitOr struct{}

func (aggBitOr) ID() AggFuncID              { return AggBitOr }
func (aggBitOr) Name() string               { return "bit_or" }
func (aggBitOr) Identity() uint32           { return 0 }
func (aggBitOr) Combine(a, b uint32) uint32 { return a | b }

type aggBitAnd struct{}

func (aggBitAnd) ID() AggFuncID              { return AggBitAnd }
func (aggBitAnd) Name() string               { return "bit_and" }
func (aggBitAnd) Identity() uint32           { return ^uint32(0) }
func (aggBitAnd) Combine(a, b uint32) uint32 { return a & b }

var builtins = map[AggFuncID]AggFunc{
	AggSum:    aggSum{},
	AggMin:    aggMin{},
	AggMax:    aggMax{},
	AggCount:  aggCount{},
	AggBitOr:  aggBitOr{},
	AggBitAnd: aggBitAnd{},
}

// FuncByID resolves an aggregation function ID.
func FuncByID(id AggFuncID) (AggFunc, error) {
	f, ok := builtins[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown aggregation function %d", id)
	}
	return f, nil
}

// Funcs returns all built-in aggregation functions (for tests and docs).
func Funcs() []AggFunc {
	out := make([]AggFunc, 0, len(builtins))
	for _, id := range []AggFuncID{AggSum, AggMin, AggMax, AggCount, AggBitOr, AggBitAnd} {
		out = append(out, builtins[id])
	}
	return out
}
