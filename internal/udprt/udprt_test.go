package udprt

import (
	"fmt"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/wire"
)

// TestRealUDPAggregation runs the full protocol over loopback sockets: two
// worker clients stream pairs to the agent; the agent aggregates in its
// pipeline and flushes to the reducer client.
func TestRealUDPAggregation(t *testing.T) {
	const (
		reducerID = 100
		workerA   = 1
		workerB   = 2
		tableSize = 256
	)
	agent, err := NewAgent(AgentConfig{
		ListenAddr: "127.0.0.1:0",
		Trees: []TreeSpec{{
			TreeID: reducerID, Children: 2, Agg: core.AggSum,
			TableSize: tableSize, NextHop: reducerID,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	addr := agent.Addr().String()

	reducer, err := Dial(addr, reducerID)
	if err != nil {
		t.Fatal(err)
	}
	defer reducer.Close()

	// Collector over the real socket.
	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(reducerID, sum, wire.DefaultGeometry, 1)

	// Workers send overlapping keys.
	want := map[string]uint32{}
	for wi, workerID := range []uint32{workerA, workerB} {
		w, err := Dial(addr, workerID)
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSender(w, reducerID, reducerID, wire.DefaultGeometry, 10)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 40; k++ {
			key := fmt.Sprintf("key%02d", k)
			val := uint32(wi*100 + k)
			want[key] += val
			if err := s.Send([]byte(key), val); err != nil {
				t.Fatal(err)
			}
		}
		s.End()
		w.Close()
	}

	// Drain the reducer socket until the collector completes.
	buf := make([]byte, 65536)
	deadline := time.Now().Add(5 * time.Second)
	for !col.Complete() {
		n, err := reducer.ReadPayload(buf, deadline)
		if err != nil {
			t.Fatalf("read: %v (stats %+v)", err, col.Stats)
		}
		col.Ingest(buf[:n])
	}

	if col.Stats.PairsReceived != 40 {
		t.Fatalf("pairs received %d want 40 (aggregated)", col.Stats.PairsReceived)
	}
	got := col.Result()
	if len(got) != len(want) {
		t.Fatalf("keys %d want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %d want %d", k, got[k], v)
		}
	}
	st, ok := agent.TreeStats(reducerID)
	if !ok {
		t.Fatal("tree not installed")
	}
	if st.PairsIn != 80 || st.EndPacketsIn != 2 || st.FlushesCompleted != 1 {
		t.Fatalf("agent stats %+v", st)
	}
}

func TestAgentIgnoresUnregisteredAndGarbage(t *testing.T) {
	agent, err := NewAgent(AgentConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// A client that never registers: Dial registers, so build raw traffic
	// via a registered client but send garbage payloads.
	c, err := Dial(agent.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SendUDP(0, 0, 0, []byte("not a daiet packet"))
	c.SendUDP(0, 0, 0, nil)
	// Give the agent a beat to process; nothing should crash.
	time.Sleep(50 * time.Millisecond)
	if _, ok := agent.TreeStats(123); ok {
		t.Fatal("phantom tree")
	}
}

func TestAgentStaticPeersAndDeferredTree(t *testing.T) {
	// The tree's next hop (the reducer) registers only later; the tree must
	// activate upon registration.
	agent, err := NewAgent(AgentConfig{
		ListenAddr: "127.0.0.1:0",
		Trees: []TreeSpec{{
			TreeID: 50, Children: 1, Agg: core.AggSum, TableSize: 64, NextHop: 50,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, ok := agent.TreeStats(50); ok {
		t.Fatal("tree active before next hop registered")
	}
	red, err := Dial(agent.Addr().String(), 50)
	if err != nil {
		t.Fatal(err)
	}
	defer red.Close()
	// Registration is async; poll briefly.
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		_, ok = agent.TreeStats(50)
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("tree never activated after registration")
	}
}

func TestAgentRejectsBadPeerIDs(t *testing.T) {
	_, err := NewAgent(AgentConfig{
		ListenAddr: "127.0.0.1:0",
		Peers:      map[uint32]string{0x900000: "127.0.0.1:9"},
	})
	if err == nil {
		t.Fatal("peer colliding with switch ID space must fail")
	}
}

func TestAgentBadListenAddr(t *testing.T) {
	if _, err := NewAgent(AgentConfig{ListenAddr: "not-an-addr:xx"}); err == nil {
		t.Fatal("bad address must fail")
	}
}

func TestAgentPeerReRegistrationRefreshesAddress(t *testing.T) {
	agent, err := NewAgent(AgentConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	addr := agent.Addr().String()

	// The same node ID reconnects from a new socket (worker restart): the
	// agent must deliver to the fresh address.
	c1, err := Dial(addr, 9)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	c2, err := Dial(addr, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Configure a tree rooted at node 9 and let a worker send through it;
	// the flush must arrive at c2, not the dead c1.
	w, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	time.Sleep(50 * time.Millisecond) // let registrations land
	if err := agent.Program().ConfigureTree(core.TreeConfig{
		TreeID: 9, Children: 1, TableSize: 16, Agg: core.AggSum,
		OutPort: agentPortOf(t, agent, 9),
	}); err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSender(w, 9, 9, wire.DefaultGeometry, 10)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Send([]byte("k"), 7)
	s.End()

	sum, _ := core.FuncByID(core.AggSum)
	col := core.NewCollector(9, sum, wire.DefaultGeometry, 1)
	buf := make([]byte, 4096)
	deadline := time.Now().Add(3 * time.Second)
	for !col.Complete() {
		n, err := c2.ReadPayload(buf, deadline)
		if err != nil {
			t.Fatalf("read on refreshed socket: %v", err)
		}
		col.Ingest(buf[:n])
	}
	if col.Result()["k"] != 7 {
		t.Fatalf("result %v", col.Result())
	}
}

// agentPortOf exposes the micro-fabric port for a registered peer.
func agentPortOf(t *testing.T, a *Agent, node uint32) int {
	t.Helper()
	a.mu.Lock()
	defer a.mu.Unlock()
	port, ok := a.ports[node]
	if !ok {
		t.Fatalf("peer %d not registered", node)
	}
	return port
}
