// Package udprt runs the DAIET switch program over real UDP sockets
// (stdlib net), standing in for a software switch daemon on an actual
// network path. The same core.Program that drives the simulated fabric is
// reused unchanged: the agent hosts a one-switch micro-fabric internally
// and bridges each registered peer to a real socket address, so every
// packet still traverses the metered RMT pipeline.
//
// This is the runtime behind cmd/daiet-switch and the udpfabric example,
// mirroring the paper's bmv2 deployment (a software switch process that
// workers reach over the network).
package udprt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// Registration datagram: "DREG" + big-endian node ID.
var regMagic = [4]byte{'D', 'R', 'E', 'G'}

const regLen = 8

// TreeSpec is one aggregation tree hosted by the agent.
type TreeSpec struct {
	TreeID    uint32 // also the reducer's node ID
	Children  int
	Agg       core.AggFuncID
	TableSize int
	// NextHop is the node the aggregated output goes to: the reducer
	// itself, or a downstream agent in a chained deployment.
	NextHop uint32
}

// AgentConfig configures one agent.
type AgentConfig struct {
	// ListenAddr is the UDP address to bind ("127.0.0.1:0" for tests).
	ListenAddr string
	// Peers statically maps node IDs to UDP addresses. Further peers may
	// register dynamically with Client.Register.
	Peers map[uint32]string
	// Trees to install; each activates once its NextHop peer is known.
	Trees []TreeSpec
	// Program tunes the switch program (zero value: paper defaults).
	Program core.ProgramConfig
}

// Agent is a DAIET software switch bound to a UDP socket.
type Agent struct {
	conn *net.UDPConn

	mu        sync.Mutex
	nw        *netsim.Network
	prog      *core.Program
	swID      netsim.NodeID
	peers     map[uint32]*net.UDPAddr
	byAddr    map[string]uint32
	ports     map[uint32]int
	pending   []TreeSpec
	installed map[uint32]bool

	wg     sync.WaitGroup
	closed bool
}

// bridgeHost is the virtual host standing in for one real peer: frames the
// switch forwards to it become outbound datagrams.
type bridgeHost struct {
	agent  *Agent
	nodeID uint32
}

func (b *bridgeHost) Attach(*netsim.Network, netsim.NodeID) {}

func (b *bridgeHost) HandleFrame(_ int, frame []byte) {
	// Unwrap Ethernet/IPv4/UDP and ship the payload to the peer. The agent
	// mutex is already held: HandleFrame only runs inside nw.Run, which the
	// agent drives under its lock.
	var eth wire.Ethernet
	rest, err := eth.DecodeFrom(frame)
	if err != nil {
		return
	}
	var ip wire.IPv4
	if rest, err = ip.DecodeFrom(rest); err != nil || ip.Protocol != wire.ProtocolUDP {
		return
	}
	var u wire.UDP
	payload, err := u.DecodeFrom(rest)
	if err != nil {
		return
	}
	addr := b.agent.peers[b.nodeID]
	if addr == nil {
		return
	}
	_, _ = b.agent.conn.WriteToUDP(payload, addr)
}

// NewAgent binds the socket, builds the internal micro-fabric and starts
// the receive loop.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("udprt: resolve %q: %w", cfg.ListenAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udprt: listen: %w", err)
	}
	prog, err := core.NewProgram(cfg.Program)
	if err != nil {
		conn.Close()
		return nil, err
	}
	a := &Agent{
		conn:      conn,
		nw:        netsim.New(0),
		prog:      prog,
		swID:      topology.SwitchBase,
		peers:     make(map[uint32]*net.UDPAddr),
		byAddr:    make(map[string]uint32),
		ports:     make(map[uint32]int),
		pending:   append([]TreeSpec(nil), cfg.Trees...),
		installed: make(map[uint32]bool),
	}
	a.nw.AddNode(a.swID, prog.Switch())
	for id, addrStr := range cfg.Peers {
		addr, err := net.ResolveUDPAddr("udp", addrStr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udprt: peer %d addr %q: %w", id, addrStr, err)
		}
		if err := a.addPeerLocked(id, addr); err != nil {
			conn.Close()
			return nil, err
		}
	}
	a.tryInstallLocked()

	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the bound socket address (useful with ":0").
func (a *Agent) Addr() *net.UDPAddr { return a.conn.LocalAddr().(*net.UDPAddr) }

// Program exposes the running switch program (stats inspection).
func (a *Agent) Program() *core.Program { return a.prog }

// TreeStats returns the named tree's counters.
func (a *Agent) TreeStats(treeID uint32) (core.TreeStats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prog.TreeStats(treeID)
}

// Close shuts the agent down and waits for the receive loop.
func (a *Agent) Close() error {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

// addPeerLocked wires one peer into the micro-fabric.
func (a *Agent) addPeerLocked(id uint32, addr *net.UDPAddr) error {
	if id >= uint32(topology.SwitchBase) {
		return fmt.Errorf("udprt: peer id %d collides with switch ID space", id)
	}
	if old, ok := a.peers[id]; ok {
		// Re-registration: refresh the address only.
		delete(a.byAddr, old.String())
		a.peers[id] = addr
		a.byAddr[addr.String()] = id
		return nil
	}
	node := netsim.NodeID(id)
	a.nw.AddNode(node, &bridgeHost{agent: a, nodeID: id})
	swPort, _ := a.nw.Connect(a.swID, node, netsim.LinkConfig{})
	a.peers[id] = addr
	a.byAddr[addr.String()] = id
	a.ports[id] = swPort
	return a.prog.InstallRoute(id, swPort)
}

// tryInstallLocked configures every pending tree whose next hop is known.
func (a *Agent) tryInstallLocked() {
	remaining := a.pending[:0]
	for _, spec := range a.pending {
		port, ok := a.ports[spec.NextHop]
		if !ok {
			remaining = append(remaining, spec)
			continue
		}
		err := a.prog.ConfigureTree(core.TreeConfig{
			TreeID:    spec.TreeID,
			OutPort:   port,
			Children:  spec.Children,
			Agg:       spec.Agg,
			TableSize: spec.TableSize,
		})
		if err == nil {
			a.installed[spec.TreeID] = true
		}
		// Configuration errors (bad spec, SRAM) drop the spec; the tree
		// counters will show nothing installed, which tests catch.
	}
	a.pending = remaining
}

// serve is the receive loop.
func (a *Agent) serve() {
	defer a.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, raddr, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		a.handleDatagram(buf[:n], raddr)
	}
}

// handleDatagram processes one inbound datagram: registration or DAIET.
func (a *Agent) handleDatagram(b []byte, raddr *net.UDPAddr) {
	a.mu.Lock()
	defer a.mu.Unlock()

	if len(b) == regLen && b[0] == regMagic[0] && b[1] == regMagic[1] &&
		b[2] == regMagic[2] && b[3] == regMagic[3] {
		id := binary.BigEndian.Uint32(b[4:8])
		if err := a.addPeerLocked(id, raddr); err == nil {
			a.tryInstallLocked()
		}
		return
	}

	src, known := a.byAddr[raddr.String()]
	if !known {
		return // unregistered peers are dropped, like an unconfigured port
	}
	var hdr wire.DaietHeader
	if _, err := hdr.DecodeFrom(b); err != nil {
		return
	}
	// Wrap the payload into a frame addressed to the tree root and inject
	// it at the peer's bridge port; then drain the micro-fabric, which
	// pushes any switch output back out through bridge hosts.
	buf := wire.NewBuffer(wire.DefaultHeadroom, len(b))
	buf.AppendBytes(b)
	u := wire.UDP{SrcPort: wire.UDPPortDaiet, DstPort: wire.UDPPortDaiet}
	u.SerializeTo(buf)
	ip := wire.IPv4{
		Protocol: wire.ProtocolUDP,
		Src:      wire.IPFromNode(src),
		Dst:      wire.IPFromNode(hdr.TreeID),
		TTL:      wire.DefaultTTL,
	}
	ip.SerializeTo(buf)
	eth := wire.Ethernet{
		Dst:       wire.MACFromNode(hdr.TreeID),
		Src:       wire.MACFromNode(src),
		EtherType: wire.EtherTypeIPv4,
	}
	eth.SerializeTo(buf)
	a.nw.Send(netsim.NodeID(src), 0, buf.Bytes())
	_ = a.nw.Run(10_000_000)
}
