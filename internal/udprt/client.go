package udprt

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"github.com/daiet/daiet/internal/netsim"
)

// Client is an end host's handle on a DAIET agent over real UDP. It
// implements core.Carrier, so core.Sender runs over it unchanged; the
// reducer side pairs ReadPayload with core.Collector.Ingest.
type Client struct {
	conn   *net.UDPConn
	nodeID uint32
}

// Dial connects to an agent and registers the client's node ID.
func Dial(agentAddr string, nodeID uint32) (*Client, error) {
	raddr, err := net.ResolveUDPAddr("udp", agentAddr)
	if err != nil {
		return nil, fmt.Errorf("udprt: resolve %q: %w", agentAddr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("udprt: dial: %w", err)
	}
	c := &Client{conn: conn, nodeID: nodeID}
	if err := c.register(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) register() error {
	var b [regLen]byte
	copy(b[:4], regMagic[:])
	binary.BigEndian.PutUint32(b[4:], c.nodeID)
	_, err := c.conn.Write(b[:])
	return err
}

// ID implements core.Carrier.
func (c *Client) ID() netsim.NodeID { return netsim.NodeID(c.nodeID) }

// SendUDP implements core.Carrier: the DAIET payload travels as one real
// datagram to the agent, which routes on the embedded tree ID (dst and the
// port arguments are carried by the real IP/UDP headers end to end).
func (c *Client) SendUDP(_ netsim.NodeID, _, _ uint16, payload []byte) {
	_, _ = c.conn.Write(payload)
}

// ReadPayload blocks (until the deadline) for one inbound DAIET payload,
// copying it into buf and returning its length.
func (c *Client) ReadPayload(buf []byte, deadline time.Time) (int, error) {
	if !deadline.IsZero() {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return 0, err
		}
	}
	n, err := c.conn.Read(buf)
	return n, err
}

// After schedules fn on a real timer, satisfying core.TimerCarrier. Note
// that over real sockets the caller is responsible for serializing sender
// methods against timer callbacks (ReliableSender is not concurrency-safe).
func (c *Client) After(d time.Duration, fn func()) {
	time.AfterFunc(d, fn)
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// LocalAddr returns the client's bound address.
func (c *Client) LocalAddr() net.Addr { return c.conn.LocalAddr() }
