package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/daiet/daiet/internal/stats"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, par := range []int{1, 2, 7, 0} {
		got, err := Map(100, par, func(shard int) (int, error) {
			return shard * shard, nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != 100 {
			t.Fatalf("par=%d: %d results", par, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: shard %d returned %d", par, i, v)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	// The runner's core promise: identical merged output at any degree.
	seq, err := Map(64, 1, func(shard int) (string, error) {
		return fmt.Sprintf("shard-%d-seed-%d", shard, ShardSeed(7, shard)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(64, runtime.GOMAXPROCS(0), func(shard int) (string, error) {
		return fmt.Sprintf("shard-%d-seed-%d", shard, ShardSeed(7, shard)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("shard %d: %q != %q", i, seq[i], par[i])
		}
	}
}

func TestMapLowestShardErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, par := range []int{1, 8} {
		_, err := Map(32, par, func(shard int) (int, error) {
			if shard%2 == 1 { // shards 1, 3, 5, ... fail
				return 0, fmt.Errorf("shard %d: %w", shard, sentinel)
			}
			return shard, nil
		})
		var se *ShardError
		if !errors.As(err, &se) {
			t.Fatalf("par=%d: error %T, want *ShardError", par, err)
		}
		if se.Shard != 1 {
			t.Fatalf("par=%d: reported shard %d, want lowest failing shard 1", par, se.Shard)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("par=%d: error chain lost the cause", par)
		}
	}
}

func TestMapAllShardsRunDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(50, 4, func(shard int) (int, error) {
		ran.Add(1)
		if shard == 0 {
			return 0, errors.New("early failure")
		}
		return shard, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 50 {
		t.Fatalf("only %d/50 shards ran; errors must not cancel the sweep", ran.Load())
	}
}

func TestMapRecoversPanics(t *testing.T) {
	_, err := Map(8, 4, func(shard int) (int, error) {
		if shard == 3 {
			panic("diverged")
		}
		return shard, nil
	})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 3 {
		t.Fatalf("panic not attributed to shard 3: %v", err)
	}
}

func TestMapZeroShards(t *testing.T) {
	got, err := Map(0, 4, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(10, 3, func(shard int) error {
		sum.Add(int64(shard))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum %d", sum.Load())
	}
}

func TestTrialsMergesInShardOrder(t *testing.T) {
	summary, all, err := Trials(4, 2, func(shard int) ([]float64, error) {
		return []float64{float64(shard * 10), float64(shard*10 + 1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 10, 11, 20, 21, 30, 31}
	if len(all) != len(want) {
		t.Fatalf("samples %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("samples out of shard order: %v", all)
		}
	}
	if ref := stats.Summarize(want); summary != ref {
		t.Fatalf("summary %+v != %+v", summary, ref)
	}
}

func TestGridShapeAndOrder(t *testing.T) {
	for _, par := range []int{1, 3, 0} {
		grid, err := Grid(4, 3, par, func(point, trial int) (string, error) {
			return fmt.Sprintf("p%d-t%d", point, trial), nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(grid) != 4 {
			t.Fatalf("par=%d: %d points", par, len(grid))
		}
		for p := range grid {
			if len(grid[p]) != 3 {
				t.Fatalf("par=%d: point %d has %d trials", par, p, len(grid[p]))
			}
			for tr, v := range grid[p] {
				if want := fmt.Sprintf("p%d-t%d", p, tr); v != want {
					t.Fatalf("par=%d: grid[%d][%d] = %q want %q", par, p, tr, v, want)
				}
			}
		}
	}
}

func TestGridErrorAttribution(t *testing.T) {
	_, err := Grid(3, 2, 4, func(point, trial int) (int, error) {
		if point == 1 && trial == 1 {
			return 0, errors.New("trial diverged")
		}
		return 0, nil
	})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 3 { // flat shard 1*2+1
		t.Fatalf("error not attributed to flat shard 3: %v", err)
	}
}

func TestGridEmptyAxes(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {3, 0}, {0, 0}} {
		got, err := Grid(dims[0], dims[1], 2, func(int, int) (int, error) { return 0, nil })
		if err != nil || got != nil {
			t.Fatalf("dims %v: got %v, %v", dims, got, err)
		}
	}
}

func TestDegree(t *testing.T) {
	if Degree(0) != runtime.GOMAXPROCS(0) || Degree(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive degree must resolve to GOMAXPROCS")
	}
	if Degree(5) != 5 {
		t.Fatal("positive degree must pass through")
	}
}

func TestShardSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for base := uint64(0); base < 8; base++ {
		for shard := 0; shard < 256; shard++ {
			s := ShardSeed(base, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: base=%d shard=%d == earlier %d", base, shard, prev)
			}
			seen[s] = shard
		}
	}
	if ShardSeed(7, 3) != ShardSeed(7, 3) {
		t.Fatal("ShardSeed not deterministic")
	}
}
