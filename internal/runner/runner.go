// Package runner is the sharded, worker-pool experiment runner: it fans
// independent simulation instances across goroutines and merges their
// results deterministically.
//
// The repository's experiments — figure reproductions, ablation sweeps,
// multirack trials — are embarrassingly parallel: each trial builds its own
// netsim.Engine (single-goroutine by design) over read-only shared inputs,
// so trials never contend on simulator state. The runner exploits exactly
// that structure. Results are always delivered in shard order, so for a
// deterministic shard function the merged output is bit-identical whether
// the pool runs with one worker or GOMAXPROCS workers; a regression test in
// internal/experiments asserts this for every figure entry point.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/stats"
)

// Degree normalizes a parallelism degree: values <= 0 select GOMAXPROCS
// (use every core), anything else is returned unchanged. All experiment
// entry points funnel their Parallelism knobs through this.
func Degree(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// ShardSeed derives an independent per-shard seed from a base experiment
// seed. Shards must not share raw seed arithmetic (base+shard collides
// across experiments that also increment seeds); SplitMix64 finalization
// decorrelates them while staying reproducible.
func ShardSeed(base uint64, shard int) uint64 {
	return hashing.Mix64(base ^ (uint64(shard)+1)*0x9e3779b97f4a7c15)
}

// ShardError wraps a failure with the shard that produced it so parallel
// sweeps report which configuration failed, not just that one did.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("runner: shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Map runs fn for every shard in [0, n) across a pool of parallelism
// workers (normalized via Degree) and returns the results in shard order.
//
// Error semantics are deterministic too: when shards fail, Map returns the
// error from the lowest-numbered failing shard — the same error a
// sequential loop would have surfaced first — wrapped in a *ShardError.
// All shards are always driven to completion (no cancellation) so that a
// retried run never observes partially-executed sweeps.
func Map[T any](n, parallelism int, fn func(shard int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)

	workers := Degree(parallelism)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, identical semantics.
		for shard := 0; shard < n; shard++ {
			results[shard], errs[shard] = fn(shard)
		}
		return merge(results, errs)
	}

	// Work-stealing by atomic counter: workers pull the next shard index,
	// so long shards don't serialize behind a static block partition.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				shard := int(next.Add(1)) - 1
				if shard >= n {
					return
				}
				results[shard], errs[shard] = run(shard, fn)
			}
		}()
	}
	wg.Wait()
	return merge(results, errs)
}

// run executes one shard, converting a panic into an error so a single
// diverging trial fails its shard instead of crashing the whole pool.
func run[T any](shard int, fn func(shard int) (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(shard)
}

func merge[T any](results []T, errs []error) ([]T, error) {
	for shard, err := range errs {
		if err != nil {
			return nil, &ShardError{Shard: shard, Err: err}
		}
	}
	return results, nil
}

// Each is Map for shard functions with no result value.
func Each(n, parallelism int, fn func(shard int) error) error {
	_, err := Map(n, parallelism, func(shard int) (struct{}, error) {
		return struct{}{}, fn(shard)
	})
	return err
}

// Grid runs fn for every (point, trial) pair of a points × trials sweep
// across the worker pool and returns results indexed [point][trial]. It is
// the per-point multi-seed primitive under the experiments Spec engine:
// each figure axis point is executed at several seeds, and the flat shard
// numbering (point*trials + trial) makes the fan-out deterministic — the
// merged grid is identical at any parallelism degree.
func Grid[T any](points, trials, parallelism int, fn func(point, trial int) (T, error)) ([][]T, error) {
	if points <= 0 || trials <= 0 {
		return nil, nil
	}
	flat, err := Map(points*trials, parallelism, func(shard int) (T, error) {
		return fn(shard/trials, shard%trials)
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]T, points)
	for p := 0; p < points; p++ {
		grid[p] = flat[p*trials : (p+1)*trials : (p+1)*trials]
	}
	return grid, nil
}

// Trials runs n independent trials and merges their per-trial samples
// through internal/stats: the samples are concatenated in shard order and
// summarized. This is the one-call shape for "run the same experiment at n
// seeds and box-plot the outcomes".
func Trials(n, parallelism int, fn func(shard int) ([]float64, error)) (stats.Summary, []float64, error) {
	perShard, err := Map(n, parallelism, fn)
	if err != nil {
		return stats.Summary{}, nil, err
	}
	var all []float64
	for _, s := range perShard {
		all = append(all, s...)
	}
	return stats.Summarize(all), all, nil
}
