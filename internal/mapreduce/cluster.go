package mapreduce

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// tcpShufflePort is where reducers accept baseline shuffle connections.
const tcpShufflePort = 6000

// ClusterConfig sizes one MapReduce deployment. The zero value reproduces
// the paper's §5 layout in miniature: every worker on one switch.
type ClusterConfig struct {
	NumMappers  int // default 24 (paper)
	NumReducers int // default 12 (paper)
	// Plan overrides the fabric (default: single switch, like bmv2).
	Plan *topology.Plan
	// Geometry is the pair layout (default: 16-byte keys).
	Geometry wire.PairGeometry
	// MaxPairsPerPacket bounds DAIET packetization (default 10, paper).
	MaxPairsPerPacket int
	// TableSize is the per-tree register array size (default 16384, paper).
	TableSize int
	// SRAMBudget per switch (default 10 MB, paper's sizing).
	SRAMBudget int
	// Seed drives the fabric's randomness.
	Seed uint64
	// MSS for the TCP baseline (default transport.DefaultMSS).
	MSS int
	// QueueBytes sizes the default fabric's per-port queues. The default
	// (64 MiB) emulates the paper's testbed — a bmv2 software switch over
	// veth, whose buffering is effectively unbounded and which the paper's
	// loss-free evaluation depends on ("we do not address the issue of
	// packet losses"). Set a small value to study incast loss instead.
	QueueBytes int
	// SimWorkers partitions the fabric into this many parallel event-engine
	// domains along the topology's rack cut. 0 (the default) autotunes:
	// min(rack-cut units, GOMAXPROCS); 1 forces the sequential engine.
	// Results are byte-identical at any value; only wall-clock changes.
	SimWorkers int
	// Recut enables measured-skew dynamic re-partitioning of the domain
	// cut (topology.RecutConfig zero value disables). Like SimWorkers it
	// never changes results, only how the wall-clock work is spread.
	Recut topology.RecutConfig
	// SwitchPool, when non-nil, attaches a shared-memory buffer pool of
	// this size to every switch (netsim Dynamic-Threshold admission across
	// the switch's egress ports) instead of the per-port QueueBytes FIFOs.
	// Plans that carry their own Pools map are honored either way; this
	// knob is the uniform-sizing shortcut. A crash (Program.Crash) empties
	// the pool along with the rest of the switch state.
	SwitchPool *netsim.PoolConfig
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.NumMappers == 0 {
		c.NumMappers = 24
	}
	if c.NumReducers == 0 {
		c.NumReducers = 12
	}
	if c.Geometry.KeyWidth == 0 {
		c.Geometry = wire.DefaultGeometry
	}
	if c.MaxPairsPerPacket == 0 {
		// Derive from the parse budget, capped at the paper's 10: wide-key
		// geometries fit fewer pairs per packet.
		c.MaxPairsPerPacket = c.Geometry.MaxPairsPerPacket()
		if c.MaxPairsPerPacket > wire.DefaultMaxPairs {
			c.MaxPairsPerPacket = wire.DefaultMaxPairs
		}
	}
	if c.TableSize == 0 {
		c.TableSize = 16384
	}
	if c.SRAMBudget == 0 {
		c.SRAMBudget = 10 << 20
	}
	if c.MSS == 0 {
		c.MSS = transport.DefaultMSS
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 64 << 20
	}
	return c
}

// Cluster is a realized MapReduce deployment: fabric, programs, hosts, and
// the mapper/reducer placement.
type Cluster struct {
	Cfg      ClusterConfig
	Net      *netsim.Network
	Fab      *topology.Fabric
	Ctl      *controller.Controller
	Programs map[netsim.NodeID]*core.Program
	Hosts    map[netsim.NodeID]*transport.Host
	Mappers  []netsim.NodeID
	Reducers []netsim.NodeID
}

// NewCluster builds the fabric and installs baseline routing.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	plan := cfg.Plan
	if plan == nil {
		plan = topology.SingleSwitch(cfg.NumMappers+cfg.NumReducers,
			netsim.LinkConfig{QueueBytes: cfg.QueueBytes})
	}
	if len(plan.Hosts) < cfg.NumMappers+cfg.NumReducers {
		return nil, fmt.Errorf("mapreduce: plan has %d hosts, need %d",
			len(plan.Hosts), cfg.NumMappers+cfg.NumReducers)
	}
	c := &Cluster{
		Cfg:      cfg,
		Net:      netsim.New(cfg.Seed),
		Programs: make(map[netsim.NodeID]*core.Program),
		Hosts:    make(map[netsim.NodeID]*transport.Host),
	}
	var buildErr error
	mkSwitch := func(id netsim.NodeID) netsim.Node {
		prog, err := core.NewProgram(core.ProgramConfig{
			Geometry:          cfg.Geometry,
			MaxPairsPerPacket: cfg.MaxPairsPerPacket,
			SRAMBudget:        cfg.SRAMBudget,
		})
		if err != nil {
			buildErr = err
			prog = mustEmptyProgram()
		}
		c.Programs[id] = prog
		return prog.Switch()
	}
	mkHost := func(id netsim.NodeID) netsim.Node {
		h := transport.NewHost()
		c.Hosts[id] = h
		return h
	}
	c.Fab = plan.Realize(c.Net, mkSwitch, mkHost)
	if buildErr != nil {
		return nil, buildErr
	}
	if cfg.SwitchPool != nil {
		for _, sw := range plan.Switches {
			if _, has := plan.Pools[sw]; has {
				continue // the plan's own per-tier sizing wins
			}
			if err := c.Net.SetNodePool(sw, *cfg.SwitchPool); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Fab.PartitionsDynamic(cfg.SimWorkers, cfg.Recut); err != nil {
		return nil, err
	}
	c.Mappers = plan.Hosts[:cfg.NumMappers]
	c.Reducers = plan.Hosts[cfg.NumMappers : cfg.NumMappers+cfg.NumReducers]
	c.Ctl = controller.New(c.Fab, c.Programs)
	if err := c.Ctl.InstallRouting(); err != nil {
		return nil, err
	}
	return c, nil
}

func mustEmptyProgram() *core.Program {
	p, err := core.NewProgram(core.ProgramConfig{})
	if err != nil {
		panic(err)
	}
	return p
}

// ReducerReport is one reducer's measured outcome — one sample of each
// Figure-3 box plot.
type ReducerReport struct {
	Reducer netsim.NodeID

	// Shuffle-side measurements at the reducer host.
	PacketsReceived uint64 // frames arriving at the reducer NIC
	PayloadBytes    uint64 // application bytes (DAIET payloads / TCP stream bytes)
	PairsReceived   uint64 // pairs crossing the wire into the reducer

	// Reduce-side measurements.
	ReduceTime time.Duration
	UniqueKeys int
	Output     []core.KV
}

// Result is one job run's full outcome.
type Result struct {
	Mode         Mode
	Job          string
	PerReducer   []ReducerReport
	TotalPairsIn uint64 // pairs emitted by all mappers (pre-shuffle)
	Elapsed      netsim.Time
	// SwitchTreeStats collects the per-(switch, tree) counters of the DAIET
	// run, captured before tree teardown. Empty for baseline modes.
	SwitchTreeStats []core.TreeStats
}

// RunJob executes one job over the given input splits (len(splits) must
// equal NumMappers) in the given mode and returns per-reducer measurements.
// Each RunJob call assumes a fresh cluster for clean counters; reusing a
// cluster across runs accumulates NIC statistics.
func (c *Cluster) RunJob(job Job, splits [][]string, mode Mode) (*Result, error) {
	if len(splits) != len(c.Mappers) {
		return nil, fmt.Errorf("mapreduce: %d splits for %d mappers", len(splits), len(c.Mappers))
	}
	agg, err := core.FuncByID(job.Agg)
	if err != nil {
		return nil, err
	}

	// ---- Map phase (host-local, no network) ----
	spills, err := runMapPhase(job, splits, len(c.Reducers), c.Cfg.Geometry)
	if err != nil {
		return nil, err
	}
	var totalPairs uint64
	for m := range spills {
		for r := range spills[m] {
			totalPairs += uint64(spills[m][r].n)
		}
	}

	// Snapshot reducer NIC counters so multiple phases on one cluster can
	// be measured independently.
	baseRx := make([]transport.HostStats, len(c.Reducers))
	for i, r := range c.Reducers {
		baseRx[i] = c.Hosts[r].Stats
	}

	// ---- Shuffle phase ----
	var reports []ReducerReport
	var treeStats []core.TreeStats
	switch mode {
	case ModeDAIET, ModeUDPBaseline:
		reports, treeStats, err = c.shuffleDaiet(job, agg, spills, mode == ModeDAIET)
	case ModeTCPBaseline:
		reports, err = c.shuffleTCP(agg, spills)
	default:
		return nil, fmt.Errorf("mapreduce: unknown mode %d", mode)
	}
	if err != nil {
		return nil, err
	}

	// NIC-level packet counts.
	for i := range reports {
		st := c.Hosts[c.Reducers[i]].Stats
		reports[i].PacketsReceived = st.FramesRx - baseRx[i].FramesRx
		reports[i].Reducer = c.Reducers[i]
	}

	// ---- Verification ----
	for i := range reports {
		if err := verifyAgainstReference(spills, i, agg, reports[i].Output); err != nil {
			return nil, err
		}
	}
	return &Result{
		Mode:            mode,
		Job:             job.Name,
		PerReducer:      reports,
		TotalPairsIn:    totalPairs,
		Elapsed:         c.Net.Now(),
		SwitchTreeStats: treeStats,
	}, nil
}

// shuffleDaiet runs the DAIET protocol shuffle; aggregate selects whether
// trees are installed (DAIET mode) or not (UDP baseline). It returns the
// per-reducer reports and, in DAIET mode, the switch-side tree counters.
func (c *Cluster) shuffleDaiet(job Job, agg core.AggFunc, spills [][]*spill, aggregate bool) ([]ReducerReport, []core.TreeStats, error) {
	collectors := make([]*core.Collector, len(c.Reducers))
	plans := make([]*controller.TreePlan, len(c.Reducers))
	for i, r := range c.Reducers {
		plan, err := c.Ctl.PlanTree(r, c.Mappers)
		if err != nil {
			return nil, nil, err
		}
		plans[i] = plan
		expectedEnds := len(c.Mappers)
		if aggregate {
			if err := c.Ctl.InstallTree(plan, controller.TreeOptions{
				Agg:       job.Agg,
				TableSize: c.Cfg.TableSize,
			}); err != nil {
				return nil, nil, err
			}
			expectedEnds = plan.RootChildren()
		}
		col := core.NewCollector(uint32(r), agg, c.Cfg.Geometry, expectedEnds)
		col.KeepRaw = true
		col.Attach(c.Hosts[r])
		collectors[i] = col
	}

	// Every mapper streams each partition then ENDs it.
	for m, mapper := range c.Mappers {
		for ri, reducer := range c.Reducers {
			s, err := core.NewSender(c.Hosts[mapper], uint32(reducer), reducer,
				c.Cfg.Geometry, c.Cfg.MaxPairsPerPacket)
			if err != nil {
				return nil, nil, err
			}
			// Bulk producer: the whole stream is queued at t=0 before the
			// event loop runs, so batching the carrier hand-offs leaves wire
			// order and timing unchanged.
			s.SetMaxBurst(32)
			sp := spills[m][ri]
			for i := 0; i < sp.n; i++ {
				k, v := sp.record(i)
				if err := s.Send(wire.TrimKey(k), v); err != nil {
					return nil, nil, err
				}
			}
			s.End()
		}
	}
	if err := c.Net.Run(0); err != nil {
		return nil, nil, err
	}

	reports := make([]ReducerReport, len(c.Reducers))
	for i, col := range collectors {
		if !col.Complete() {
			return nil, nil, fmt.Errorf("mapreduce: reducer %d shuffle incomplete (%+v)", i, col.Stats)
		}
		out, dur := reduceSortAll(col.RawPairs, agg)
		reports[i] = ReducerReport{
			PayloadBytes:  col.Stats.PayloadBytes,
			PairsReceived: col.Stats.PairsReceived,
			ReduceTime:    dur,
			UniqueKeys:    len(out),
			Output:        out,
		}
	}
	// Capture switch-side counters, then leave the fabric clean for
	// subsequent runs.
	var treeStats []core.TreeStats
	if aggregate {
		for _, plan := range plans {
			for _, sw := range plan.SwitchNodes {
				if st, ok := c.Programs[sw].TreeStats(plan.TreeID); ok {
					treeStats = append(treeStats, st)
				}
			}
			c.Ctl.UninstallTree(plan)
		}
	}
	return reports, treeStats, nil
}

// shuffleTCP runs the classic sorted shuffle over tcplite.
func (c *Cluster) shuffleTCP(agg core.AggFunc, spills [][]*spill) ([]ReducerReport, error) {
	type rxState struct {
		runs    [][]byte
		open    int
		done    bool
		payload uint64
	}
	states := make([]*rxState, len(c.Reducers))
	for i, r := range c.Reducers {
		st := &rxState{}
		states[i] = st
		host := c.Hosts[r]
		host.ListenTCP(tcpShufflePort, func(conn *transport.Conn) {
			st.open++
			idx := len(st.runs)
			st.runs = append(st.runs, nil)
			conn.OnData = func(p []byte) {
				st.runs[idx] = append(st.runs[idx], p...)
				st.payload += uint64(len(p))
			}
			conn.OnClose = func() {
				st.open--
				conn.Close()
				if st.open == 0 && len(st.runs) == len(c.Mappers) {
					st.done = true
				}
			}
		})
	}

	// Mapper-side sort, then stream each partition over its own connection.
	for m, mapper := range c.Mappers {
		for ri, reducer := range c.Reducers {
			sp := spills[m][ri]
			sp.sortRecords()
			host := c.Hosts[mapper]
			data := sp.data
			mss := c.Cfg.MSS
			conn := host.DialTCP(reducer, tcpShufflePort, func(conn *transport.Conn) {})
			conn.SetMSS(mss)
			if len(data) > 0 {
				conn.Write(data)
			}
			conn.Close()
		}
	}
	if err := c.Net.Run(0); err != nil {
		return nil, err
	}

	reports := make([]ReducerReport, len(c.Reducers))
	for i, st := range states {
		if !st.done {
			return nil, fmt.Errorf("mapreduce: reducer %d TCP shuffle incomplete (%d runs, %d open)",
				i, len(st.runs), st.open)
		}
		runs := make([][]core.KV, len(st.runs))
		var pairs uint64
		for j, raw := range st.runs {
			runs[j] = decodeRun(c.Cfg.Geometry, raw)
			pairs += uint64(len(runs[j]))
		}
		out, dur := reduceMergeRuns(runs, agg)
		reports[i] = ReducerReport{
			PayloadBytes:  st.payload,
			PairsReceived: pairs,
			ReduceTime:    dur,
			UniqueKeys:    len(out),
			Output:        out,
		}
	}
	return reports, nil
}
