package mapreduce

import (
	"fmt"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/transport"
	"github.com/daiet/daiet/internal/wire"
)

// TenantJob is one tenant's job in a multi-tenant run: its own mapper and
// reducer placement plus the shared-buffer traffic classes its aggregation
// trees run under. Tenants share one fabric; each tenant's trees are keyed
// by its reducers (TreeID = reducer node ID), so reducer sets must be
// disjoint across tenants — that is also what gives every tenant its own
// aggregation-table partition on shared switches, since per-tree register
// arrays never alias.
type TenantJob struct {
	Job      Job
	Splits   [][]string // one per mapper
	Mappers  []netsim.NodeID
	Reducers []netsim.NodeID

	// DataClass/AckClass select the pooled-switch traffic class the
	// tenant's tree emissions are admitted under (flushes vs ACKs); see
	// netsim.PoolConfig.Classes. With a multi-class SwitchPool, giving
	// each tenant its own class confines one tenant's incast to its own
	// carved slice of switch memory.
	DataClass int
	AckClass  int
}

// TenantResult is one tenant's outcome of a RunJobs call.
type TenantResult struct {
	Result
	Tenant int
	// Completion is the virtual time at which the tenant's last reducer
	// received its final END — the tenant's shuffle completion stamp,
	// comparable across tenants sharing the run.
	Completion netsim.Time
}

// RunJobs admits every tenant's job into the fabric concurrently: all
// trees installed up front (tagged with each tenant's traffic classes),
// all mappers' streams queued at t=0, one event-loop run to completion.
// Per-tenant outputs are verified against a host-side reference exactly as
// RunJob does. Like RunJob it assumes a fresh cluster for clean counters.
func (c *Cluster) RunJobs(tenants []TenantJob) ([]TenantResult, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("mapreduce: no tenants")
	}
	seenReducer := make(map[netsim.NodeID]int)
	for t := range tenants {
		tj := &tenants[t]
		if len(tj.Mappers) == 0 || len(tj.Reducers) == 0 {
			return nil, fmt.Errorf("mapreduce: tenant %d has %d mappers, %d reducers",
				t, len(tj.Mappers), len(tj.Reducers))
		}
		if len(tj.Splits) != len(tj.Mappers) {
			return nil, fmt.Errorf("mapreduce: tenant %d has %d splits for %d mappers",
				t, len(tj.Splits), len(tj.Mappers))
		}
		for _, h := range append(append([]netsim.NodeID(nil), tj.Mappers...), tj.Reducers...) {
			if _, ok := c.Hosts[h]; !ok {
				return nil, fmt.Errorf("mapreduce: tenant %d references non-host node %d", t, h)
			}
		}
		for _, r := range tj.Reducers {
			if prev, dup := seenReducer[r]; dup {
				return nil, fmt.Errorf("mapreduce: reducer %d shared by tenants %d and %d (tree IDs collide)",
					r, prev, t)
			}
			seenReducer[r] = t
		}
	}

	// ---- Map phase, per tenant (host-local, no network) ----
	aggs := make([]core.AggFunc, len(tenants))
	spills := make([][][]*spill, len(tenants))
	totalPairs := make([]uint64, len(tenants))
	for t := range tenants {
		agg, err := core.FuncByID(tenants[t].Job.Agg)
		if err != nil {
			return nil, err
		}
		aggs[t] = agg
		sp, err := runMapPhase(tenants[t].Job, tenants[t].Splits,
			len(tenants[t].Reducers), c.Cfg.Geometry)
		if err != nil {
			return nil, err
		}
		spills[t] = sp
		for m := range sp {
			for r := range sp[m] {
				totalPairs[t] += uint64(sp[m][r].n)
			}
		}
	}

	// ---- Tree install + collectors, all tenants up front ----
	type tenantRun struct {
		plans      []*controller.TreePlan
		collectors []*core.Collector
		baseRx     []transport.HostStats
		remaining  int
		completion netsim.Time
	}
	runs := make([]*tenantRun, len(tenants))
	for t := range tenants {
		tj := &tenants[t]
		tr := &tenantRun{
			plans:      make([]*controller.TreePlan, len(tj.Reducers)),
			collectors: make([]*core.Collector, len(tj.Reducers)),
			baseRx:     make([]transport.HostStats, len(tj.Reducers)),
			remaining:  len(tj.Reducers),
		}
		runs[t] = tr
		for i, r := range tj.Reducers {
			plan, err := c.Ctl.PlanTree(r, tj.Mappers)
			if err != nil {
				return nil, err
			}
			tr.plans[i] = plan
			if err := c.Ctl.InstallTree(plan, controller.TreeOptions{
				Agg:       tj.Job.Agg,
				TableSize: c.Cfg.TableSize,
				DataClass: tj.DataClass,
				AckClass:  tj.AckClass,
				Tenant:    t,
			}); err != nil {
				return nil, err
			}
			col := core.NewCollector(uint32(r), aggs[t], c.Cfg.Geometry, plan.RootChildren())
			col.KeepRaw = true
			col.Attach(c.Hosts[r])
			reducer := r
			col.OnComplete = func() {
				tr.remaining--
				if tr.remaining == 0 {
					tr.completion = c.Net.NodeNow(reducer)
				}
			}
			tr.collectors[i] = col
			tr.baseRx[i] = c.Hosts[r].Stats
		}
	}

	// ---- All tenants' streams queued at t=0, one shared run ----
	for t := range tenants {
		tj := &tenants[t]
		for m, mapper := range tj.Mappers {
			for ri, reducer := range tj.Reducers {
				s, err := core.NewSender(c.Hosts[mapper], uint32(reducer), reducer,
					c.Cfg.Geometry, c.Cfg.MaxPairsPerPacket)
				if err != nil {
					return nil, err
				}
				s.SetMaxBurst(32)
				sp := spills[t][m][ri]
				for i := 0; i < sp.n; i++ {
					k, v := sp.record(i)
					if err := s.Send(wire.TrimKey(k), v); err != nil {
						return nil, err
					}
				}
				s.End()
			}
		}
	}
	if err := c.Net.Run(0); err != nil {
		return nil, err
	}

	// ---- Per-tenant collection, verification, teardown ----
	results := make([]TenantResult, len(tenants))
	for t := range tenants {
		tj, tr := &tenants[t], runs[t]
		reports := make([]ReducerReport, len(tj.Reducers))
		for i, col := range tr.collectors {
			if !col.Complete() {
				return nil, fmt.Errorf("mapreduce: tenant %d reducer %d shuffle incomplete (%+v)",
					t, i, col.Stats)
			}
			out, dur := reduceSortAll(col.RawPairs, aggs[t])
			st := c.Hosts[tj.Reducers[i]].Stats
			reports[i] = ReducerReport{
				Reducer:         tj.Reducers[i],
				PacketsReceived: st.FramesRx - tr.baseRx[i].FramesRx,
				PayloadBytes:    col.Stats.PayloadBytes,
				PairsReceived:   col.Stats.PairsReceived,
				ReduceTime:      dur,
				UniqueKeys:      len(out),
				Output:          out,
			}
			if err := verifyAgainstReference(spills[t], i, aggs[t], out); err != nil {
				return nil, fmt.Errorf("mapreduce: tenant %d: %w", t, err)
			}
		}
		var treeStats []core.TreeStats
		for _, plan := range tr.plans {
			for _, sw := range plan.SwitchNodes {
				if st, ok := c.Programs[sw].TreeStats(plan.TreeID); ok {
					treeStats = append(treeStats, st)
				}
			}
			c.Ctl.UninstallTree(plan)
		}
		results[t] = TenantResult{
			Result: Result{
				Mode:            ModeDAIET,
				Job:             tj.Job.Name,
				PerReducer:      reports,
				TotalPairsIn:    totalPairs[t],
				Elapsed:         c.Net.Now(),
				SwitchTreeStats: treeStats,
			},
			Tenant:     t,
			Completion: tr.completion,
		}
	}
	return results, nil
}
