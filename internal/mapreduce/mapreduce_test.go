package mapreduce

import (
	"fmt"
	"testing"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/wire"
	"github.com/daiet/daiet/internal/workload"
)

// miniCorpus builds a small calibrated corpus and its splits.
func miniCorpus(t *testing.T, mappers, reducers, vocabPer int, mult float64, tableSize int) ([][]string, *workload.Corpus) {
	t.Helper()
	c, err := workload.Generate(workload.CorpusSpec{
		Seed:             11,
		Reducers:         reducers,
		VocabPerReducer:  vocabPer,
		MeanMultiplicity: mult,
		TableSize:        tableSize,
		CollisionFree:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Splits(mappers), c
}

func newTestCluster(t *testing.T, mappers, reducers, tableSize int) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		NumMappers:  mappers,
		NumReducers: reducers,
		TableSize:   tableSize,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestWordCountDAIETMatchesReference(t *testing.T) {
	const mappers, reducers, tableSize = 6, 3, 512
	splits, corpus := miniCorpus(t, mappers, reducers, 200, 6, tableSize)
	cl := newTestCluster(t, mappers, reducers, tableSize)
	res, err := cl.RunJob(WordCount, splits, ModeDAIET)
	if err != nil {
		t.Fatal(err)
	}
	// RunJob verifies outputs internally; here check global coverage: the
	// union of reducer outputs covers the whole vocabulary.
	total := 0
	for _, r := range res.PerReducer {
		total += r.UniqueKeys
	}
	if total != corpus.UniqueWords {
		t.Fatalf("outputs cover %d keys, corpus has %d", total, corpus.UniqueWords)
	}
	if res.TotalPairsIn != uint64(corpus.TotalWords) {
		t.Fatalf("pairs in %d, words %d", res.TotalPairsIn, corpus.TotalWords)
	}
}

func TestWordCountAllModesAgree(t *testing.T) {
	const mappers, reducers, tableSize = 4, 2, 512
	splits, _ := miniCorpus(t, mappers, reducers, 150, 5, tableSize)

	outputs := map[Mode][][]core.KV{}
	for _, mode := range []Mode{ModeDAIET, ModeUDPBaseline, ModeTCPBaseline} {
		cl := newTestCluster(t, mappers, reducers, tableSize)
		res, err := cl.RunJob(WordCount, splits, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		var per [][]core.KV
		for _, r := range res.PerReducer {
			per = append(per, r.Output)
		}
		outputs[mode] = per
	}
	ref := outputs[ModeTCPBaseline]
	for _, mode := range []Mode{ModeDAIET, ModeUDPBaseline} {
		for ri := range ref {
			a, b := ref[ri], outputs[mode][ri]
			if len(a) != len(b) {
				t.Fatalf("%v reducer %d: %d vs %d keys", mode, ri, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v reducer %d idx %d: %+v vs %+v", mode, ri, i, b[i], a[i])
				}
			}
		}
	}
}

func TestFigure3ShapeMiniature(t *testing.T) {
	// A scaled-down Figure 3: mean multiplicity ~8.3 must produce ~88% data
	// reduction, ~90% packet reduction vs the UDP baseline, and a positive
	// packet reduction vs TCP at small MSS.
	const mappers, reducers, tableSize = 8, 4, 1024
	splits, _ := miniCorpus(t, mappers, reducers, 600, 8.3, tableSize)

	run := func(mode Mode) *Result {
		cl := newTestCluster(t, mappers, reducers, tableSize)
		res, err := cl.RunJob(WordCount, splits, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return res
	}
	daiet := run(ModeDAIET)
	udp := run(ModeUDPBaseline)
	tcp := run(ModeTCPBaseline)

	var dataRed, pktRedUDP []float64
	for i := range daiet.PerReducer {
		dataRed = append(dataRed,
			stats.ReductionPct(float64(udp.PerReducer[i].PayloadBytes), float64(daiet.PerReducer[i].PayloadBytes)))
		pktRedUDP = append(pktRedUDP,
			stats.ReductionPct(float64(udp.PerReducer[i].PacketsReceived), float64(daiet.PerReducer[i].PacketsReceived)))
	}
	dr := stats.Summarize(dataRed)
	pr := stats.Summarize(pktRedUDP)
	if dr.Median < 80 || dr.Median > 95 {
		t.Fatalf("data reduction median %.1f%% outside [80, 95]", dr.Median)
	}
	if pr.Median < 80 || pr.Median > 95 {
		t.Fatalf("packet reduction vs UDP median %.1f%% outside [80, 95]", pr.Median)
	}
	// TCP receives far fewer packets per byte (MSS 1460 vs 10 pairs), but
	// aggregation should still not lose to it by more than the MSS ratio.
	for i := range daiet.PerReducer {
		if daiet.PerReducer[i].PacketsReceived == 0 || tcp.PerReducer[i].PacketsReceived == 0 {
			t.Fatal("zero packet count")
		}
	}
}

func TestReduceSortAll(t *testing.T) {
	sum, _ := core.FuncByID(core.AggSum)
	in := []core.KV{{Key: "b", Value: 1}, {Key: "a", Value: 2}, {Key: "b", Value: 3}, {Key: "a", Value: 5}}
	out, dur := reduceSortAll(in, sum)
	if dur < 0 {
		t.Fatal("negative duration")
	}
	want := []core.KV{{Key: "a", Value: 7}, {Key: "b", Value: 4}}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Fatalf("got %+v", out)
	}
	if got, _ := reduceSortAll(nil, sum); len(got) != 0 {
		t.Fatal("empty input")
	}
}

func TestReduceMergeRuns(t *testing.T) {
	sum, _ := core.FuncByID(core.AggSum)
	runs := [][]core.KV{
		{{Key: "a", Value: 1}, {Key: "c", Value: 2}},
		{{Key: "a", Value: 3}, {Key: "b", Value: 4}},
		{},
		{{Key: "c", Value: 5}},
	}
	out, _ := reduceMergeRuns(runs, sum)
	want := []core.KV{{Key: "a", Value: 4}, {Key: "b", Value: 4}, {Key: "c", Value: 7}}
	if len(out) != len(want) {
		t.Fatalf("got %+v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("idx %d: got %+v want %+v", i, out[i], want[i])
		}
	}
}

func TestSpillRecordsRoundtrip(t *testing.T) {
	sp := newSpill(wire.DefaultGeometry)
	for i := 0; i < 10; i++ {
		if err := sp.add(fmt.Sprintf("key%02d", 9-i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if sp.n != 10 {
		t.Fatalf("n %d", sp.n)
	}
	k, v := sp.record(0)
	if string(wire.TrimKey(k)) != "key09" || v != 0 {
		t.Fatalf("record 0: %q %d", wire.TrimKey(k), v)
	}
	sp.sortRecords()
	prev := ""
	for i := 0; i < sp.n; i++ {
		k, _ := sp.record(i)
		ks := string(wire.TrimKey(k))
		if ks < prev {
			t.Fatalf("not sorted at %d: %q < %q", i, ks, prev)
		}
		prev = ks
	}
	if err := sp.add("this-key-is-way-too-long", 1); err == nil {
		t.Fatal("oversized key must fail")
	}
}

func TestDecodeRun(t *testing.T) {
	sp := newSpill(wire.DefaultGeometry)
	_ = sp.add("x", 1)
	_ = sp.add("y", 2)
	kvs := decodeRun(wire.DefaultGeometry, sp.data)
	if len(kvs) != 2 || kvs[0].Key != "x" || kvs[1].Value != 2 {
		t.Fatalf("got %+v", kvs)
	}
}

func TestRunJobValidation(t *testing.T) {
	cl := newTestCluster(t, 2, 1, 64)
	if _, err := cl.RunJob(WordCount, make([][]string, 3), ModeDAIET); err == nil {
		t.Fatal("split/mapper mismatch must fail")
	}
	if _, err := cl.RunJob(Job{Name: "bad", Map: WordCount.Map, Agg: 999},
		make([][]string, 2), ModeDAIET); err == nil {
		t.Fatal("unknown agg must fail")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	_, err := NewCluster(ClusterConfig{
		NumMappers:  4,
		NumReducers: 4,
		Plan:        nil,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxAggregationJob(t *testing.T) {
	// A non-sum job exercises the pluggable combiner: per-key maximum.
	maxJob := Job{
		Name: "max",
		Map: func(rec string, emit func(string, uint32)) {
			// record format "key:value" is synthesized below as key only;
			// use the record index encoded in the word length as value.
			emit(rec, uint32(len(rec)))
		},
		Agg: core.AggMax,
	}
	splits := [][]string{
		{"aa", "bbb", "aa"},
		{"aaaa", "b"},
	}
	cl := newTestCluster(t, 2, 1, 64)
	res, err := cl.RunJob(maxJob, splits, ModeDAIET)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint32{}
	for _, kv := range res.PerReducer[0].Output {
		got[kv.Key] = kv.Value
	}
	if got["aa"] != 2 || got["bbb"] != 3 || got["aaaa"] != 4 || got["b"] != 1 {
		t.Fatalf("got %v", got)
	}
}
