package mapreduce

import "time"

// reduceWallClock is the real-time source behind the measured reducer
// durations (the paper's reduce-time panel). It exists to keep wall-clock
// access visibly separated from simulation logic: reducer compute is the
// ONLY real work in this package that is wall-timed, its duration feeds
// exclusively the declared-volatile reduce_ms-style metrics, and nothing
// in the simulated world ever branches on it. Tests may swap the clock to
// prove that (TestReduceWallClockInjected).
//
//simlint:wallclock declared-volatile reduce wall-time measurement source; sim logic never reads it
var reduceWallClock func() time.Time = time.Now

// stopwatch captures the clock once and measures elapsed real time, via
// the injected source.
func startStopwatch() time.Time { return reduceWallClock() }

func elapsedSince(start time.Time) time.Duration {
	return reduceWallClock().Sub(start)
}
