package mapreduce

import (
	"testing"
	"time"

	"github.com/daiet/daiet/internal/core"
)

// TestReduceWallClockInjected proves the reducer stopwatch is fully
// decoupled from the real clock: with a fake source installed, measured
// durations are exactly the fake's elapsed time and nothing in the reduce
// path reads wall time behind its back.
func TestReduceWallClockInjected(t *testing.T) {
	saved := reduceWallClock
	defer func() { reduceWallClock = saved }()

	base := time.Unix(1000, 0)
	calls := 0
	reduceWallClock = func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * 7 * time.Millisecond)
	}

	pairs := []core.KV{{Key: "b", Value: 2}, {Key: "a", Value: 1}, {Key: "a", Value: 3}}
	sum, err := core.FuncByID(core.AggSum)
	if err != nil {
		t.Fatal(err)
	}

	out, dur := reduceSortAll(pairs, sum)
	if len(out) != 2 || out[0].Key != "a" || out[0].Value != 4 || out[1].Key != "b" {
		t.Fatalf("unexpected reduce output: %+v", out)
	}
	// startStopwatch reads once, elapsedSince reads once: exactly 7ms apart.
	if dur != 7*time.Millisecond {
		t.Fatalf("measured duration %v, want 7ms from the injected clock", dur)
	}
	if calls != 2 {
		t.Fatalf("clock read %d times, want exactly 2", calls)
	}

	calls = 0
	runs := [][]core.KV{
		{{Key: "a", Value: 1}, {Key: "c", Value: 2}},
		{{Key: "b", Value: 3}},
	}
	out, dur = reduceMergeRuns(runs, sum)
	if len(out) != 3 {
		t.Fatalf("unexpected merge output: %+v", out)
	}
	if dur != 7*time.Millisecond || calls != 2 {
		t.Fatalf("merge measured %v over %d reads, want 7ms over 2", dur, calls)
	}
}
