// Package mapreduce is the partition/aggregate application substrate of the
// reproduction: a MapReduce framework whose shuffle phase can run in three
// modes, matching the paper's §5 evaluation:
//
//   - ModeDAIET: the DAIET protocol with in-network aggregation,
//   - ModeUDPBaseline: the DAIET protocol without switch aggregation
//     ("using UDP and the DAIET protocol, but without executing data
//     aggregation in the switch"),
//   - ModeTCPBaseline: "the original TCP-based data exchange" over the
//     tcplite reliable stream, mapper-side sorted as classic MapReduce
//     would.
//
// Reducer compute (sort + combine, or merge for the sorted TCP case) is
// executed for real and wall-clock timed: the paper's reduce-time panel
// measures exactly that work.
package mapreduce

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/wire"
	"github.com/daiet/daiet/internal/workload"
)

// Mode selects the shuffle transport.
type Mode int

// Shuffle modes (see package comment).
const (
	ModeDAIET Mode = iota
	ModeUDPBaseline
	ModeTCPBaseline
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDAIET:
		return "daiet"
	case ModeUDPBaseline:
		return "udp-baseline"
	case ModeTCPBaseline:
		return "tcp-baseline"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Job defines one MapReduce application. Map emits key-value pairs for one
// input record; the shuffle combines values per key with the (commutative,
// associative) aggregation function — the paper's "readily available"
// combiner — and the reducer performs the final combine plus its mandatory
// sort.
type Job struct {
	Name string
	Map  func(record string, emit func(key string, value uint32))
	Agg  core.AggFuncID
}

// WordCount is the paper's §5 benchmark job.
var WordCount = Job{
	Name: "wordcount",
	Map: func(record string, emit func(string, uint32)) {
		emit(record, 1)
	},
	Agg: core.AggSum,
}

// spill is one mapper's output for one reducer partition: fixed-size
// records, exactly the on-disk layout §4 describes ("we use a fixed-size
// representation for the pairs, so that it is easy to calculate the offsets
// of pairs in the file and extract a number of complete pairs").
type spill struct {
	geom wire.PairGeometry
	data []byte
	n    int
}

func newSpill(geom wire.PairGeometry) *spill {
	return &spill{geom: geom}
}

func (s *spill) add(key string, value uint32) error {
	if len(key) > s.geom.KeyWidth {
		return fmt.Errorf("mapreduce: key %q exceeds key width %d", key, s.geom.KeyWidth)
	}
	off := len(s.data)
	s.data = append(s.data, make([]byte, s.geom.PairWidth())...)
	copy(s.data[off:], key)
	binary.BigEndian.PutUint32(s.data[off+s.geom.KeyWidth:], value)
	s.n++
	return nil
}

// record returns the i-th (key, value).
func (s *spill) record(i int) (key []byte, value uint32) {
	off := i * s.geom.PairWidth()
	key = s.data[off : off+s.geom.KeyWidth]
	value = binary.BigEndian.Uint32(s.data[off+s.geom.KeyWidth : off+s.geom.PairWidth()])
	return key, value
}

// sortRecords sorts the spill in place by key — the mapper-side sort the
// TCP baseline performs before the shuffle.
func (s *spill) sortRecords() {
	pw := s.geom.PairWidth()
	idx := make([]int, s.n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka := s.data[idx[a]*pw : idx[a]*pw+s.geom.KeyWidth]
		kb := s.data[idx[b]*pw : idx[b]*pw+s.geom.KeyWidth]
		return string(ka) < string(kb)
	})
	sorted := make([]byte, len(s.data))
	for out, in := range idx {
		copy(sorted[out*pw:(out+1)*pw], s.data[in*pw:(in+1)*pw])
	}
	s.data = sorted
}

// decodeRun parses a fixed-record byte stream into KVs.
func decodeRun(geom wire.PairGeometry, data []byte) []core.KV {
	pw := geom.PairWidth()
	n := len(data) / pw
	out := make([]core.KV, 0, n)
	for i := 0; i < n; i++ {
		off := i * pw
		key := wire.TrimKey(data[off : off+geom.KeyWidth])
		val := binary.BigEndian.Uint32(data[off+geom.KeyWidth : off+pw])
		out = append(out, core.KV{Key: string(key), Value: val})
	}
	return out
}

// runMapPhase executes Map over every split, partitioning output into
// per-(mapper, reducer) spills.
func runMapPhase(job Job, splits [][]string, nReducers int, geom wire.PairGeometry) ([][]*spill, error) {
	spills := make([][]*spill, len(splits))
	var firstErr error
	for m, split := range splits {
		spills[m] = make([]*spill, nReducers)
		for r := range spills[m] {
			spills[m][r] = newSpill(geom)
		}
		emit := func(key string, value uint32) {
			p := workload.PartitionOf(key, geom.KeyWidth, nReducers)
			if err := spills[m][p].add(key, value); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, rec := range split {
			job.Map(rec, emit)
		}
	}
	return spills, firstErr
}

// reduceSortAll is the reducer work in the DAIET and UDP-baseline modes:
// the input arrives unsorted (and, under DAIET, pre-aggregated), so the
// reducer sorts everything and combines adjacent duplicates. The returned
// duration is real measured wall time.
func reduceSortAll(pairs []core.KV, agg core.AggFunc) ([]core.KV, time.Duration) {
	start := startStopwatch()
	sorted := append([]core.KV(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	out := make([]core.KV, 0, len(sorted))
	for _, kv := range sorted {
		if n := len(out); n > 0 && out[n-1].Key == kv.Key {
			out[n-1].Value = agg.Combine(out[n-1].Value, kv.Value)
		} else {
			out = append(out, kv)
		}
	}
	return out, elapsedSince(start)
}

// reduceMergeRuns is the reducer work in the TCP baseline: each mapper's
// run arrives sorted, so the reducer performs a k-way merge with combining.
func reduceMergeRuns(runs [][]core.KV, agg core.AggFunc) ([]core.KV, time.Duration) {
	start := startStopwatch()
	type cursor struct {
		run []core.KV
		pos int
	}
	heapLess := func(a, b *cursor) bool { return a.run[a.pos].Key < b.run[b.pos].Key }
	var h []*cursor
	push := func(c *cursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if heapLess(h[i], h[parent]) {
				h[i], h[parent] = h[parent], h[i]
				i = parent
			} else {
				break
			}
		}
	}
	pop := func() *cursor {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && heapLess(h[l], h[small]) {
				small = l
			}
			if r < len(h) && heapLess(h[r], h[small]) {
				small = r
			}
			if small == i {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
		return top
	}
	for _, run := range runs {
		if len(run) > 0 {
			push(&cursor{run: run})
		}
	}
	var out []core.KV
	for len(h) > 0 {
		c := pop()
		kv := c.run[c.pos]
		if n := len(out); n > 0 && out[n-1].Key == kv.Key {
			out[n-1].Value = agg.Combine(out[n-1].Value, kv.Value)
		} else {
			out = append(out, kv)
		}
		c.pos++
		if c.pos < len(c.run) {
			push(c)
		}
	}
	return out, elapsedSince(start)
}

// verifyAgainstReference recomputes the job output directly from the spills
// and compares — the end-to-end correctness oracle.
func verifyAgainstReference(spills [][]*spill, reducer int, agg core.AggFunc, got []core.KV) error {
	want := make(map[string]uint32)
	for m := range spills {
		sp := spills[m][reducer]
		for i := 0; i < sp.n; i++ {
			k, v := sp.record(i)
			key := string(wire.TrimKey(k))
			if cur, ok := want[key]; ok {
				want[key] = agg.Combine(cur, v)
			} else {
				want[key] = agg.Combine(agg.Identity(), v)
			}
		}
	}
	if len(want) != len(got) {
		return fmt.Errorf("mapreduce: reducer %d output has %d keys, want %d", reducer, len(got), len(want))
	}
	prev := ""
	for i, kv := range got {
		if i > 0 && kv.Key <= prev {
			return fmt.Errorf("mapreduce: reducer %d output not sorted at %d", reducer, i)
		}
		prev = kv.Key
		if want[kv.Key] != kv.Value {
			return fmt.Errorf("mapreduce: reducer %d key %q = %d, want %d", reducer, kv.Key, kv.Value, want[kv.Key])
		}
	}
	return nil
}
