package mapreduce

import (
	"fmt"
	"testing"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/workload"
)

// tenantCorpus generates one tenant's corpus with its own seed so the two
// tenants' keys and multiplicities differ.
func tenantCorpus(t *testing.T, seed uint64, mappers, reducers, vocabPer, tableSize int) ([][]string, *workload.Corpus) {
	t.Helper()
	c, err := workload.Generate(workload.CorpusSpec{
		Seed:             seed,
		Reducers:         reducers,
		VocabPerReducer:  vocabPer,
		MeanMultiplicity: 5,
		TableSize:        tableSize,
		CollisionFree:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Splits(mappers), c
}

// tenantPair builds a two-tenant RunJobs input over a cluster's host
// placement: tenant 0 gets the first half of the mappers and reducers,
// tenant 1 the second half, each under its own pair of pool classes.
func tenantPair(t *testing.T, cl *Cluster, tableSize int) ([]TenantJob, []*workload.Corpus) {
	t.Helper()
	m, r := len(cl.Mappers)/2, len(cl.Reducers)/2
	splits0, corpus0 := tenantCorpus(t, 21, m, r, 120, tableSize)
	splits1, corpus1 := tenantCorpus(t, 22, len(cl.Mappers)-m, len(cl.Reducers)-r, 160, tableSize)
	return []TenantJob{
		{Job: WordCount, Splits: splits0, Mappers: cl.Mappers[:m], Reducers: cl.Reducers[:r],
			DataClass: 0, AckClass: 1},
		{Job: WordCount, Splits: splits1, Mappers: cl.Mappers[m:], Reducers: cl.Reducers[r:],
			DataClass: 2, AckClass: 3},
	}, []*workload.Corpus{corpus0, corpus1}
}

// multiTenantPool is a four-class shared-memory pool: one {data, ack} class
// pair per tenant, each data class with a hard-carved floor.
func multiTenantPool() *netsim.PoolConfig {
	return &netsim.PoolConfig{
		TotalBytes: 1 << 20,
		Classes: []netsim.ClassConfig{
			{ReserveBytes: 4096, Alpha: 2}, // tenant 0 data
			{ReserveBytes: 1024, Alpha: 2}, // tenant 0 acks
			{ReserveBytes: 4096, Alpha: 2}, // tenant 1 data
			{ReserveBytes: 1024, Alpha: 2}, // tenant 1 acks
		},
	}
}

// TestRunJobsTenantsShareFabric admits two word-count tenants into one
// pooled fabric concurrently and checks each tenant's outputs cover exactly
// its own corpus — per-tree register arrays and per-class pool slices keep
// the tenants from corrupting each other even though every switch and link
// is shared.
func TestRunJobsTenantsShareFabric(t *testing.T) {
	const tableSize = 512
	cl, err := NewCluster(ClusterConfig{
		NumMappers: 6, NumReducers: 4, TableSize: tableSize, Seed: 3,
		SwitchPool: multiTenantPool(),
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, corpora := tenantPair(t, cl, tableSize)
	results, err := cl.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results for 2 tenants", len(results))
	}
	for i, res := range results {
		total := 0
		for _, r := range res.PerReducer {
			total += r.UniqueKeys
		}
		if total != corpora[i].UniqueWords {
			t.Fatalf("tenant %d outputs cover %d keys, corpus has %d",
				i, total, corpora[i].UniqueWords)
		}
		if res.TotalPairsIn != uint64(corpora[i].TotalWords) {
			t.Fatalf("tenant %d pairs in %d, words %d", i, res.TotalPairsIn, corpora[i].TotalWords)
		}
		if res.Completion == 0 {
			t.Fatalf("tenant %d has no completion stamp", i)
		}
	}
}

// TestRunJobsValidation pins RunJobs's admission checks: empty tenant
// lists, split/mapper mismatches, unknown hosts, and — the tree-ID
// collision hazard — reducer sets that overlap across tenants.
func TestRunJobsValidation(t *testing.T) {
	cl := newTestCluster(t, 4, 2, 512)
	splits, _ := tenantCorpus(t, 21, 2, 1, 50, 512)

	if _, err := cl.RunJobs(nil); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := cl.RunJobs([]TenantJob{
		{Job: WordCount, Splits: splits, Mappers: cl.Mappers[:1], Reducers: cl.Reducers[:1]},
	}); err == nil {
		t.Fatal("split/mapper count mismatch accepted")
	}
	if _, err := cl.RunJobs([]TenantJob{
		{Job: WordCount, Splits: splits, Mappers: cl.Mappers[:2], Reducers: []netsim.NodeID{9999}},
	}); err == nil {
		t.Fatal("unknown reducer host accepted")
	}
	if _, err := cl.RunJobs([]TenantJob{
		{Job: WordCount, Splits: splits, Mappers: cl.Mappers[:2], Reducers: cl.Reducers[:1]},
		{Job: WordCount, Splits: splits, Mappers: cl.Mappers[2:], Reducers: cl.Reducers[:1]},
	}); err == nil {
		t.Fatal("overlapping reducer sets accepted — tree IDs would collide")
	}
}

// TestRunJobsTenantSimWorkersDeterministic holds multi-tenant runs to the
// partition-invariance contract: both tenants' full results — outputs,
// packet counts, completion stamps — are byte-identical at any -sim-workers
// value.
func TestRunJobsTenantSimWorkersDeterministic(t *testing.T) {
	const tableSize = 512
	render := func(simWorkers int) string {
		cl, err := NewCluster(ClusterConfig{
			NumMappers: 6, NumReducers: 4, TableSize: tableSize, Seed: 3,
			SimWorkers: simWorkers, SwitchPool: multiTenantPool(),
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs, _ := tenantPair(t, cl, tableSize)
		results, err := cl.RunJobs(jobs)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, res := range results {
			// ReduceTime is wall-clock (host-side sort), not virtual time.
			for i := range res.PerReducer {
				res.PerReducer[i].ReduceTime = 0
			}
			out += fmt.Sprintf("%+v\n", res)
		}
		return out
	}
	seq := render(1)
	for _, w := range []int{2, 4} {
		if got := render(w); got != seq {
			t.Fatalf("tenant runs diverged at %d sim-workers:\nsequential: %s\ngot: %s", w, seq, got)
		}
	}
}
