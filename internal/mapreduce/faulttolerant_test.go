package mapreduce

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/faults"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
)

// ftPlan is the shared fault-tolerance fixture: 2 leaves × 2 spines so an
// aggregation tree crossing the spine layer has a failover path.
func ftPlan() *topology.Plan {
	return topology.LeafSpine(2, 2, 6, netsim.LinkConfig{QueueBytes: 64 << 20})
}

func ftCluster(t *testing.T, simWorkers int) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		NumMappers:  8,
		NumReducers: 2,
		Plan:        ftPlan(),
		TableSize:   512,
		Seed:        1,
		SimWorkers:  simWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// renderOutputs flattens per-reducer outputs for byte-exact comparison.
func renderOutputs(rep *FTReport) string {
	s := ""
	for i, r := range rep.PerReducer {
		s += fmt.Sprintf("reducer %d (%d keys): %v\n", i, r.UniqueKeys, r.Output)
	}
	return s
}

// TestRunJobFTFaultFree: with an empty schedule the FT driver is just a
// one-round DAIET shuffle; its outputs must match the plain RunJob path.
func TestRunJobFTFaultFree(t *testing.T) {
	splits, _ := miniCorpus(t, 8, 2, 150, 5, 512)

	ref, err := ftCluster(t, 1).RunJob(WordCount, splits, ModeDAIET)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ftCluster(t, 1).RunJobFT(WordCount, splits, nil, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsStarted != 2 || rep.RoundsAborted != 0 || rep.Failovers != 0 {
		t.Fatalf("fault-free run did recovery work: %+v", rep)
	}
	for i := range ref.PerReducer {
		want := fmt.Sprintf("%v", ref.PerReducer[i].Output)
		got := fmt.Sprintf("%v", rep.PerReducer[i].Output)
		if want != got {
			t.Fatalf("reducer %d: FT output diverged from RunJob:\nwant %s\ngot  %s", i, want, got)
		}
	}
}

// treeSpine finds a spine switch participating in reducer 0's aggregation
// tree (deterministic: planning is a pure function of the fabric).
func treeSpine(t *testing.T) netsim.NodeID {
	t.Helper()
	cl := ftCluster(t, 1)
	plan, err := cl.Ctl.PlanTree(cl.Reducers[0], cl.Mappers)
	if err != nil {
		t.Fatal(err)
	}
	spineBase := topology.SwitchBase + 2 // leaves allocate first in LeafSpine
	for _, sw := range plan.SwitchNodes {
		if sw >= spineBase {
			return sw
		}
	}
	t.Fatal("no spine in reducer 0's tree")
	return 0
}

// TestRunJobFTSwitchCrashFailover is the acceptance criterion: a mid-job
// crash of a spine inside an aggregation tree (losing whatever partial
// aggregates it held) must trigger controller-driven failover onto the
// surviving spine, and the final result must be byte-identical to the
// fault-free run.
func TestRunJobFTSwitchCrashFailover(t *testing.T) {
	splits, _ := miniCorpus(t, 8, 2, 150, 5, 512)

	ref, err := ftCluster(t, 1).RunJobFT(WordCount, splits, nil, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spine := treeSpine(t)
	crashAt := ref.Completion / 2
	if crashAt < 1 {
		t.Fatalf("degenerate reference completion %v", ref.Completion)
	}
	sched := faults.Schedule{
		{At: crashAt, Kind: faults.SwitchCrash, Node: spine},
		{At: crashAt + 4*ref.Completion, Kind: faults.SwitchRestart, Node: spine},
	}
	cfg := FTConfig{DeadTimeout: time.Duration(ref.Completion / 6)}

	rep, err := ftCluster(t, 1).RunJobFT(WordCount, splits, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failovers < 1 {
		t.Fatalf("spine crash triggered no failover: %+v", rep)
	}
	if rep.RecoveredPairs == 0 {
		t.Fatalf("failover re-drove no pairs: %+v", rep)
	}
	if got, want := renderOutputs(rep), renderOutputs(ref); got != want {
		t.Fatalf("faulted run output != fault-free output:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if rep.Completion <= ref.Completion {
		t.Fatalf("faulted completion %v not after fault-free %v", rep.Completion, ref.Completion)
	}
}

// TestRunJobFTLinkFlapOrphanedMapper: downing a mapper's only uplink
// mid-job orphans it; the tree must complete the reachable subset, then
// run a supplementary round once the link returns — still exactly-once.
func TestRunJobFTLinkFlapOrphanedMapper(t *testing.T) {
	splits, _ := miniCorpus(t, 8, 2, 150, 5, 512)

	ref, err := ftCluster(t, 1).RunJobFT(WordCount, splits, nil, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl := ftCluster(t, 1)
	mapper, leaf := cl.Mappers[0], topology.SwitchBase
	sched := faults.Schedule{
		{At: ref.Completion / 3, Kind: faults.LinkDown, A: mapper, B: leaf},
		{At: 3 * ref.Completion, Kind: faults.LinkUp, A: mapper, B: leaf},
	}
	rep, err := cl.RunJobFT(WordCount, splits, sched,
		FTConfig{DeadTimeout: time.Duration(ref.Completion / 6)})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderOutputs(rep), renderOutputs(ref); got != want {
		t.Fatalf("link-flap run output != fault-free output:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// ftPoolCluster is ftCluster with shared-memory switch buffers: every
// switch runs Dynamic-Threshold admission against one pool instead of
// per-port FIFOs. Sized generously enough that the job completes, small
// enough that a crash finds frames resident in the memory.
func ftPoolCluster(t *testing.T, simWorkers int) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		NumMappers:  8,
		NumReducers: 2,
		Plan:        ftPlan(),
		TableSize:   512,
		Seed:        1,
		SimWorkers:  simWorkers,
		SwitchPool:  &netsim.PoolConfig{TotalBytes: 256 << 10, ReserveBytes: 2 << 10, Alpha: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestRunJobFTSwitchCrashPoolReset: with shared-memory switch buffers, a
// mid-job spine crash must empty the crashed switch's pool occupancy
// (Program.Crash → Switch.ResetBuffers) and the FT job must still produce
// byte-identical output — across event-engine domain counts too.
func TestRunJobFTSwitchCrashPoolReset(t *testing.T) {
	splits, _ := miniCorpus(t, 8, 2, 150, 5, 512)

	ref, err := ftPoolCluster(t, 1).RunJobFT(WordCount, splits, nil, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spine := treeSpine(t)
	sched := faults.Schedule{
		{At: ref.Completion / 2, Kind: faults.SwitchCrash, Node: spine},
		{At: 4 * ref.Completion, Kind: faults.SwitchRestart, Node: spine},
	}
	cfg := FTConfig{DeadTimeout: time.Duration(ref.Completion / 6)}

	render := func(simWorkers int) string {
		cl := ftPoolCluster(t, simWorkers)
		rep, err := cl.RunJobFT(WordCount, splits, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Post-run pool state: every pool drained (or crash-reset) to empty,
		// high-water marks deterministic.
		pools := ""
		for _, sw := range cl.Fab.Plan.Switches {
			ps, ok := cl.Net.PoolStats(sw)
			if !ok {
				t.Fatalf("switch %d lost its pool", sw)
			}
			if ps.Used != 0 {
				t.Fatalf("switch %d pool still holds %d bytes after the run", sw, ps.Used)
			}
			if ps.HighWater == 0 {
				t.Fatalf("switch %d pool never held a frame", sw)
			}
			pools += fmt.Sprintf("pool %d: %+v\n", sw, ps)
		}
		return fmt.Sprintf("%+v\n%s%s", *rep, pools, renderOutputs(rep))
	}
	seq := render(1)
	if got, want := renderOutputs(ref), seq; !strings.Contains(want, got) {
		t.Fatalf("faulted pooled run output != fault-free output:\nwant:\n%s\nin:\n%s", got, want)
	}
	for _, w := range []int{2, 4} {
		if got := render(w); got != seq {
			t.Fatalf("pooled FT run diverged at sim-workers %d:\nsequential:\n%s\npartitioned:\n%s", w, seq, got)
		}
	}
}

// TestRunJobFTSimWorkersDeterministic: the same faulted run must be
// byte-identical — every counter, every output pair, every virtual time —
// across event-engine domain counts.
func TestRunJobFTSimWorkersDeterministic(t *testing.T) {
	splits, _ := miniCorpus(t, 8, 2, 150, 5, 512)
	ref, err := ftCluster(t, 1).RunJobFT(WordCount, splits, nil, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spine := treeSpine(t)
	sched := faults.Schedule{
		{At: ref.Completion / 2, Kind: faults.SwitchCrash, Node: spine},
		{At: 4 * ref.Completion, Kind: faults.SwitchRestart, Node: spine},
		{At: ref.Completion / 3, Kind: faults.HostPause, Node: ftCluster(t, 1).Mappers[1]},
		{At: 2 * ref.Completion, Kind: faults.HostResume, Node: ftCluster(t, 1).Mappers[1]},
	}
	cfg := FTConfig{DeadTimeout: time.Duration(ref.Completion / 6)}

	render := func(simWorkers int) string {
		rep, err := ftCluster(t, simWorkers).RunJobFT(WordCount, splits, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v\n%s", *rep, renderOutputs(rep))
	}
	seq := render(1)
	for _, w := range []int{2, 4} {
		if got := render(w); got != seq {
			t.Fatalf("FT run diverged at sim-workers %d:\nsequential:\n%s\npartitioned:\n%s", w, seq, got)
		}
	}
}

// TestRunJobFTRandomSchedules replays generated random schedules — the
// property that any mix of crashes, flaps, and stragglers leaves the
// result exactly-once (RunJobFT verifies against the reference
// internally) and deterministic across domain counts.
func TestRunJobFTRandomSchedules(t *testing.T) {
	splits, _ := miniCorpus(t, 8, 2, 100, 5, 512)
	ref, err := ftCluster(t, 1).RunJobFT(WordCount, splits, nil, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := ftPlan()
	var links [][2]netsim.NodeID
	for _, l := range plan.Links {
		links = append(links, [2]netsim.NodeID{l.A, l.B})
	}
	cfg := FTConfig{DeadTimeout: time.Duration(ref.Completion / 6)}
	for seed := uint64(0); seed < 3; seed++ {
		sched, err := faults.Generate(faults.GenConfig{
			Seed:           seed,
			Horizon:        ref.Completion,
			SwitchCrashes:  1,
			LinkFlaps:      1,
			HostStragglers: 1,
		}, plan.Switches, plan.Hosts[:8], links)
		if err != nil {
			t.Fatal(err)
		}
		render := func(simWorkers int) string {
			rep, err := ftCluster(t, simWorkers).RunJobFT(WordCount, splits, sched, cfg)
			if err != nil {
				t.Fatalf("seed %d sim-workers %d: %v", seed, simWorkers, err)
			}
			return fmt.Sprintf("%+v\n%s", *rep, renderOutputs(rep))
		}
		seq := render(1)
		if got := render(2); got != seq {
			t.Fatalf("seed %d diverged at 2 domains:\n%s\nvs\n%s", seed, seq, got)
		}
	}
}
