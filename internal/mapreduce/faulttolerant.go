package mapreduce

import (
	"fmt"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/faults"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// Fault-tolerant shuffle: RunJobFT executes a DAIET MapReduce job while a
// fault schedule (internal/faults) crashes switches, flaps links, and
// stalls hosts underneath it, and still produces a final result
// byte-identical to the fault-free run.
//
// The recovery design is round-based exactly-once:
//
//   - Each aggregation tree runs in rounds, every round pinned to a fresh
//     epoch (core.TreeConfig.PinEpoch + Sender.SetEpoch +
//     Collector.BeginEpoch). A round either completes — its aggregate is
//     merged into the tree's final result and its mappers retire — or is
//     aborted, and nothing of it survives: stale in-flight packets are
//     discarded by epoch filters at switches and reducers, so a re-driven
//     pair can never double-count.
//   - The controller's Monitor declares switches/links dead after a
//     simulated-time DeadTimeout and detects crash-restart cycles through
//     the switch boot generation. A round whose tree touches a dead or
//     rebooted component is aborted and re-planned around the failure
//     (PlanTreeAvoiding) — the aggregation-tree failover path. Partial
//     aggregates lost in a crashed switch's memory are re-driven by
//     resending the affected mappers' streams in the next round.
//   - Mappers with no surviving path wait; rounds proceed over the
//     reachable subset and a supplementary round covers returners. If no
//     aggregation tree can be installed, the round falls back to host-side
//     aggregation: mappers stream straight to the reducer and the
//     collector combines — "no worse than without in-network computation".
//   - Rounds stuck past RoundTimeout (loss windows too short for the
//     liveness timeout to blame a component) are aborted and re-driven.
//
// All control actions happen at quiescent RunUntil control points, so a
// fault run is deterministic and byte-identical at any -sim-workers value.

// FTConfig tunes the fault-tolerant driver. The zero value gets defaults.
type FTConfig struct {
	// DeadTimeout is how long a switch/link may be unresponsive before the
	// monitor declares it dead (the failover trigger). Default 200µs.
	DeadTimeout time.Duration
	// PollPeriod is the control-plane polling interval. Default
	// DeadTimeout/2.
	PollPeriod time.Duration
	// RoundTimeout aborts and re-drives a round that has not completed —
	// the backstop for loss windows no liveness verdict explains. It must
	// exceed the fault-free round time. Default 4ms.
	RoundTimeout time.Duration
	// MaxRounds bounds recovery attempts per reducer tree. Default 32.
	MaxRounds int
	// MaxEvents bounds the final drain (0 keeps the default 200M).
	MaxEvents uint64
}

func (c FTConfig) withDefaults() FTConfig {
	if c.DeadTimeout == 0 {
		c.DeadTimeout = 200 * time.Microsecond
	}
	if c.PollPeriod == 0 {
		c.PollPeriod = c.DeadTimeout / 2
	}
	if c.PollPeriod <= 0 {
		c.PollPeriod = time.Microsecond
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 4 * time.Millisecond
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 32
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 200_000_000
	}
	return c
}

// FTReport is one fault-tolerant run's outcome.
type FTReport struct {
	Job        string
	PerReducer []ReducerReport
	// TotalPairsIn counts pairs emitted by the map phase (pre-shuffle).
	TotalPairsIn uint64
	// Completion is the virtual time the last tree finished (END arrival);
	// Elapsed is the fabric time after the final drain.
	Completion netsim.Time
	Elapsed    netsim.Time

	// Recovery accounting.
	RoundsStarted  int
	RoundsAborted  int    // all aborts (failover + timeout)
	Failovers      int    // aborts attributed to dead/rebooted components
	HostFallbacks  int    // rounds run without an aggregation tree
	LostPairs      int    // partial aggregates resident in crashed switches
	RecoveredPairs uint64 // pairs re-driven in restart rounds
	StaleDropped   uint64 // stale-epoch packets discarded at the reducers
	Faults         faults.Stats
}

// ftTree is one reducer tree's recovery state machine.
type ftTree struct {
	idx     int // reducer index (spill column)
	reducer netsim.NodeID
	col     *core.Collector
	agg     core.AggFunc
	merged  map[string]uint32

	pending   []netsim.NodeID // mappers not yet delivered
	attempted map[netsim.NodeID]bool

	active       bool
	epoch        uint8
	roundMappers []netsim.NodeID
	plan         *controller.TreePlan // nil: host-side aggregation round
	roundStart   netsim.Time
	rounds       int
	// tainted marks the active round as untrustworthy even if it appears
	// to complete: a link its traffic may have used flapped mid-round. A
	// flap shorter than the liveness timeout is the one failure that can
	// silently discard some frames of a flow while delivering later ones
	// (a crash drops everything including the END; queue overflow cannot
	// happen at testbed-sized buffers), so an END after a flap proves
	// nothing — the round is re-driven instead of merged.
	tainted bool

	done         bool
	lastComplete netsim.Time // written by the reducer's domain at END arrival
}

// RunJobFT executes one DAIET-mode job under the given fault schedule and
// returns per-reducer outputs verified against the reference — identical
// to what the fault-free run produces. See the file comment for the
// recovery contract.
func (c *Cluster) RunJobFT(job Job, splits [][]string, sched faults.Schedule, cfg FTConfig) (*FTReport, error) {
	cfg = cfg.withDefaults()
	if len(splits) != len(c.Mappers) {
		return nil, fmt.Errorf("mapreduce: %d splits for %d mappers", len(splits), len(c.Mappers))
	}
	agg, err := core.FuncByID(job.Agg)
	if err != nil {
		return nil, err
	}
	spills, err := runMapPhase(job, splits, len(c.Reducers), c.Cfg.Geometry)
	if err != nil {
		return nil, err
	}
	rep := &FTReport{Job: job.Name}
	for m := range spills {
		for r := range spills[m] {
			rep.TotalPairsIn += uint64(spills[m][r].n)
		}
	}

	mapperIdx := make(map[netsim.NodeID]int, len(c.Mappers))
	for i, m := range c.Mappers {
		mapperIdx[m] = i
	}

	// Fault machinery: injector over the cluster's programs and hosts, a
	// liveness monitor over its controller.
	swTargets := make(map[netsim.NodeID]faults.SwitchTarget, len(c.Programs))
	for id, prog := range c.Programs {
		swTargets[id] = prog
	}
	hostTargets := make(map[netsim.NodeID]faults.HostTarget, len(c.Hosts))
	for id, h := range c.Hosts {
		hostTargets[id] = h
	}
	inj := faults.NewInjector(c.Net, sched, swTargets, hostTargets)
	mon := controller.NewMonitor(c.Ctl, cfg.DeadTimeout)

	trees := make([]*ftTree, len(c.Reducers))
	for i, r := range c.Reducers {
		t := &ftTree{
			idx:       i,
			reducer:   r,
			agg:       agg,
			merged:    make(map[string]uint32),
			pending:   append([]netsim.NodeID(nil), c.Mappers...),
			attempted: make(map[netsim.NodeID]bool),
		}
		t.col = core.NewCollector(uint32(r), agg, c.Cfg.Geometry, len(c.Mappers))
		t.col.Attach(c.Hosts[r])
		host := c.Hosts[r]
		tt := t
		t.col.OnComplete = func() { tt.lastComplete = host.Now() }
		trees[i] = t
	}

	d := &ftDriver{c: c, cfg: cfg, job: job, spills: spills, mapperIdx: mapperIdx,
		rep: rep, mon: mon, trees: trees}

	// Initial rounds at t=0 over the intact fabric.
	for _, t := range trees {
		if err := d.startRound(t, 0); err != nil {
			return nil, err
		}
	}

	// Control loop: advance the fabric to the next control time (fault
	// onset or liveness poll), then — quiescent — inject faults, poll
	// liveness, and react.
	pollEvery := netsim.Duration(cfg.PollPeriod)
	pollAt := pollEvery
	guard := 64 + 4*len(sched) + 4*cfg.MaxRounds*len(trees)*int(cfg.RoundTimeout/cfg.PollPeriod+1)
	for iter := 0; ; iter++ {
		if iter > guard {
			return nil, fmt.Errorf("mapreduce: fault-tolerant driver made no progress after %d control steps (t=%v)",
				iter, c.Net.Now())
		}
		allDone := true
		for _, t := range trees {
			allDone = allDone && t.done
		}
		if allDone {
			break
		}
		next := pollAt
		if at, ok := inj.NextAt(); ok && at < next {
			next = at
		}
		if err := c.Net.RunUntil(next); err != nil {
			return nil, err
		}
		now := next
		if err := inj.ApplyDue(now); err != nil {
			return nil, err
		}
		pollRep, err := mon.Poll(now)
		if err != nil {
			return nil, err
		}
		if err := d.step(now, &pollRep); err != nil {
			return nil, err
		}
		if now >= pollAt {
			pollAt += pollEvery
		}
	}

	// Drain stale in-flight traffic so the fabric ends quiescent.
	if err := c.Net.Run(cfg.MaxEvents); err != nil {
		return nil, fmt.Errorf("mapreduce: fault-tolerant drain: %w", err)
	}

	rep.Faults = inj.Stats
	rep.LostPairs = inj.Stats.LostPairs
	rep.Elapsed = c.Net.Now()
	rep.PerReducer = make([]ReducerReport, len(trees))
	for i, t := range trees {
		if t.lastComplete > rep.Completion {
			rep.Completion = t.lastComplete
		}
		rep.StaleDropped += t.col.Stats.StaleEpochDropped
		out := make([]core.KV, 0, len(t.merged))
		for k, v := range t.merged {
			out = append(out, core.KV{Key: k, Value: v})
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
		rep.PerReducer[i] = ReducerReport{
			Reducer:       t.reducer,
			PayloadBytes:  t.col.Stats.PayloadBytes,
			PairsReceived: t.col.Stats.PairsReceived,
			UniqueKeys:    len(out),
			Output:        out,
		}
		// The end-to-end exactly-once oracle: despite crashes, re-drives,
		// and stale traffic, the merged result equals the reference
		// computed directly from the spills — the fault-free answer.
		if err := verifyAgainstReference(spills, i, agg, out); err != nil {
			return nil, fmt.Errorf("mapreduce: fault-tolerant run diverged: %w", err)
		}
	}
	return rep, nil
}

// ftDriver bundles the per-run context the control loop threads around.
type ftDriver struct {
	c         *Cluster
	cfg       FTConfig
	job       Job
	spills    [][]*spill
	mapperIdx map[netsim.NodeID]int
	rep       *FTReport
	mon       *controller.Monitor
	trees     []*ftTree
}

// step reacts to one control point: finishes completed rounds, aborts
// broken or stuck ones, and (re)starts rounds for idle trees.
func (d *ftDriver) step(now netsim.Time, pollRep *controller.PollReport) error {
	avoid := d.mon.Avoid()
	for _, t := range d.trees {
		if t.done {
			continue
		}
		if t.active && !t.tainted && d.roundFlapped(t, pollRep) {
			t.tainted = true
		}
		if t.active && t.col.Complete() {
			if t.tainted {
				// Completion after a mid-round flap is not proof of
				// integrity: abort and re-drive under a fresh epoch.
				d.abortRound(t, true)
			} else {
				d.finishRound(t)
			}
		}
		if t.active {
			broken := d.roundBroken(t, pollRep, avoid)
			timedOut := now-t.roundStart >= netsim.Duration(d.cfg.RoundTimeout)
			if broken || timedOut {
				d.abortRound(t, broken)
			}
		}
		if !t.active && !t.done {
			if err := d.startRound(t, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// roundFlapped reports whether any link the active round's traffic may
// traverse took a down transition since the last poll: tree edges for
// planned rounds, any fabric link for host-side rounds (their routes are
// not pinned, so be conservative).
func (d *ftDriver) roundFlapped(t *ftTree, pollRep *controller.PollReport) bool {
	if len(pollRep.FlappedLinks) == 0 {
		return false
	}
	if t.plan == nil {
		return true
	}
	for _, l := range pollRep.FlappedLinks {
		for child, parent := range t.plan.Parent {
			if topology.LinkKey(child, parent) == l {
				return true
			}
		}
	}
	return false
}

// roundBroken reports whether the active round's topology was invalidated:
// a tree switch died or rebooted (its share of the aggregate is gone), a
// tree edge died, or — for host-side rounds — a participating mapper lost
// its path to the reducer.
func (d *ftDriver) roundBroken(t *ftTree, pollRep *controller.PollReport, avoid *topology.Avoid) bool {
	if t.plan != nil {
		for _, sw := range t.plan.SwitchNodes {
			if avoid.Nodes[sw] {
				return true
			}
			for _, r := range pollRep.RestartedSwitches {
				if r == sw {
					return true
				}
			}
		}
		for child, parent := range t.plan.Parent {
			if avoid.Links[topology.LinkKey(child, parent)] {
				return true
			}
		}
		return false
	}
	next := d.c.Fab.NextHopsAvoiding(t.reducer, avoid) // one BFS for all mappers
	for _, m := range t.roundMappers {
		if _, ok := next[m]; !ok {
			return true
		}
	}
	return false
}

// finishRound merges a completed round and retires its mappers.
func (d *ftDriver) finishRound(t *ftTree) {
	for k, v := range t.col.Result() {
		if cur, ok := t.merged[k]; ok {
			t.merged[k] = t.agg.Combine(cur, v)
		} else {
			t.merged[k] = v
		}
	}
	retired := make(map[netsim.NodeID]bool, len(t.roundMappers))
	for _, m := range t.roundMappers {
		retired[m] = true
	}
	remaining := t.pending[:0]
	for _, m := range t.pending {
		if !retired[m] {
			remaining = append(remaining, m)
		}
	}
	t.pending = remaining
	d.teardown(t)
	t.active = false
	if len(t.pending) == 0 {
		t.done = true
	}
}

// abortRound discards an active round; epoch filters neutralize whatever
// of it is still in flight.
func (d *ftDriver) abortRound(t *ftTree, failover bool) {
	d.teardown(t)
	t.active = false
	d.rep.RoundsAborted++
	if failover {
		d.rep.Failovers++
	}
}

// teardown removes the round's tree from the switches that still hold it
// (crashed ones already lost it).
func (d *ftDriver) teardown(t *ftTree) {
	if t.plan != nil {
		d.c.Ctl.UninstallTree(t.plan)
		t.plan = nil
	}
}

// startRound begins the next recovery round for a tree: plan over the
// reachable pending mappers avoiding the dead set, install epoch-pinned
// switch state (or fall back to host-side aggregation), and re-drive the
// mappers' streams under the new epoch.
func (d *ftDriver) startRound(t *ftTree, now netsim.Time) error {
	avoid := d.mon.Avoid()
	reachable, _ := d.c.Ctl.MapperSubsetAvoiding(t.reducer, t.pending, avoid)
	if len(reachable) == 0 || avoid.Nodes[t.reducer] {
		return nil // fully orphaned: wait for recovery, retry next poll
	}
	if t.rounds >= d.cfg.MaxRounds {
		return fmt.Errorf("mapreduce: reducer %d exceeded %d recovery rounds", t.idx, d.cfg.MaxRounds)
	}
	t.rounds++
	t.epoch++
	d.rep.RoundsStarted++

	expectedEnds := len(reachable)
	t.plan = nil
	plan, err := d.c.Ctl.PlanTreeAvoiding(t.reducer, reachable, avoid)
	if err == nil {
		if err := d.c.Ctl.InstallTree(plan, controller.TreeOptions{
			Agg:       d.job.Agg,
			TableSize: d.c.Cfg.TableSize,
			Epoch:     t.epoch,
			PinEpoch:  true,
		}); err == nil {
			t.plan = plan
			expectedEnds = plan.RootChildren()
		}
	}
	if t.plan == nil {
		// Host-side aggregation fallback: no switch participates; the
		// collector combines raw streams ("no worse than without
		// in-network computation").
		d.rep.HostFallbacks++
	}
	t.col.BeginEpoch(t.epoch, expectedEnds)
	t.roundMappers = reachable
	t.roundStart = now
	t.tainted = false

	for _, m := range reachable {
		sp := d.spills[d.mapperIdx[m]][t.idx]
		if t.attempted[m] {
			d.rep.RecoveredPairs += uint64(sp.n)
		}
		t.attempted[m] = true
		s, err := core.NewSender(d.c.Hosts[m], uint32(t.reducer), t.reducer,
			d.c.Cfg.Geometry, d.c.Cfg.MaxPairsPerPacket)
		if err != nil {
			return err
		}
		s.SetEpoch(t.epoch)
		s.SetMaxBurst(32)
		for i := 0; i < sp.n; i++ {
			k, v := sp.record(i)
			if err := s.Send(wire.TrimKey(k), v); err != nil {
				return err
			}
		}
		s.End()
	}
	t.active = true
	return nil
}
