package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("zero summary expected, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Fatalf("got %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 1..9: median 5, q1 3, q3 7 under linear interpolation.
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	s := Summarize(xs)
	if s.Median != 5 || s.Q1 != 3 || s.Q3 != 7 || s.Min != 1 || s.Max != 9 {
		t.Fatalf("got %+v", s)
	}
	if !almostEq(s.Mean, 5) {
		t.Fatalf("mean: got %v", s.Mean)
	}
	if !almostEq(s.IQR(), 4) {
		t.Fatalf("iqr: got %v", s.IQR())
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !almostEq(got, 5) {
		t.Fatalf("q0.5: got %v", got)
	}
	if got := Quantile(xs, 0.25); !almostEq(got, 2.5) {
		t.Fatalf("q0.25: got %v", got)
	}
}

func TestQuantileClamps(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Quantile(xs, -1); got != 1 {
		t.Fatalf("q<0: got %v", got)
	}
	if got := Quantile(xs, 2); got != 3 {
		t.Fatalf("q>1: got %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("single-sample stddev: got %v", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(got, 2) {
		t.Fatalf("stddev: got %v", got)
	}
}

func TestRatioAndReduction(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio with zero denominator must be 0")
	}
	if !almostEq(Ratio(1, 4), 0.25) {
		t.Fatal("ratio")
	}
	if !almostEq(ReductionPct(100, 12), 88) {
		t.Fatalf("reduction: got %v", ReductionPct(100, 12))
	}
	if ReductionPct(0, 5) != 0 {
		t.Fatal("reduction with zero base must be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("minmax: %v %v", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Fatal("empty minmax must be zeros")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("sum")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		min, max := MinMax(xs)
		return va <= vb+1e-9 && va >= min-1e-9 && vb <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize orders its five numbers.
func TestSummaryOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		s := Summarize(xs)
		return s.Min <= s.Q1+1e-9 && s.Q1 <= s.Median+1e-9 &&
			s.Median <= s.Q3+1e-9 && s.Q3 <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("pr")
	for i := 1; i <= 10; i++ {
		s.Add(float64(i), 0.9)
	}
	if s.Len() != 10 {
		t.Fatalf("len: %d", s.Len())
	}
	if !almostEq(s.MeanY(), 0.9) {
		t.Fatalf("meanY: %v", s.MeanY())
	}
	min, max := s.YRange()
	if min != 0.9 || max != 0.9 {
		t.Fatalf("yrange: %v %v", min, max)
	}
}

func TestTableRendersAllSeries(t *testing.T) {
	a := NewSeries("alpha")
	b := NewSeries("beta")
	a.Add(1, 0.5)
	a.Add(2, 0.6)
	b.Add(2, 0.7)
	var sb strings.Builder
	Table(&sb, "iter", a, b)
	out := sb.String()
	for _, want := range []string{"alpha", "beta", "iter", "0.5000", "0.7000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Row for x=1 must have an empty beta cell, not a value.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header+2 rows, got %d lines", len(lines))
	}
}

func TestAsciiBoxBounds(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40, 50})
	box := AsciiBox(s, 0, 100, 50)
	if len(box) != 50 {
		t.Fatalf("width: %d", len(box))
	}
	if !strings.Contains(box, "M") || !strings.Contains(box, "=") {
		t.Fatalf("box missing glyphs: %q", box)
	}
	// Degenerate range must not panic or divide by zero.
	_ = AsciiBox(s, 5, 5, 5)
}

func TestMedianMatchesSortMiddle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(99)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		m := Median(xs)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		if !almostEq(m, want) {
			t.Fatalf("median n=%d: got %v want %v", n, m, want)
		}
	}
}
