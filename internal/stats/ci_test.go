package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %.6f want %.6f (±%.6f)", name, got, want, tol)
	}
}

func TestSampleStdDevKnownValues(t *testing.T) {
	// {1,2,3,4,5}: sample variance 2.5, sample sd sqrt(2.5).
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "sample variance", SampleVariance(xs), 2.5, 1e-12)
	approx(t, "sample stddev", SampleStdDev(xs), math.Sqrt(2.5), 1e-12)
	// Population form divides by n instead: sqrt(2).
	approx(t, "population stddev", StdDev(xs), math.Sqrt(2), 1e-12)
}

func TestStdErrKnownValue(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "stderr", StdErr(xs), math.Sqrt(2.5/5), 1e-12) // 0.70710...
}

func TestMeanCI95KnownValue(t *testing.T) {
	// n=5, mean 3, stderr sqrt(0.5), t(4) = 2.776:
	// margin = 2.776 * 0.70711 = 1.9629...
	xs := []float64{1, 2, 3, 4, 5}
	e := MeanCI95(xs)
	if e.N != 5 {
		t.Fatalf("n = %d", e.N)
	}
	approx(t, "mean", e.Mean, 3, 1e-12)
	approx(t, "lo", e.Lo, 3-2.776*math.Sqrt(0.5), 1e-9)
	approx(t, "hi", e.Hi, 3+2.776*math.Sqrt(0.5), 1e-9)
	approx(t, "margin", e.Margin(), 2.776*math.Sqrt(0.5), 1e-9)
}

func TestMeanCI95TwoSamples(t *testing.T) {
	// n=2: mean 5, sample sd sqrt(2)·... xs={4,6}: variance 2, sd sqrt(2),
	// stderr 1, t(1) = 12.706.
	e := MeanCI95([]float64{4, 6})
	approx(t, "mean", e.Mean, 5, 1e-12)
	approx(t, "stderr", e.StdErr, 1, 1e-12)
	approx(t, "lo", e.Lo, 5-12.706, 1e-9)
	approx(t, "hi", e.Hi, 5+12.706, 1e-9)
}

func TestMeanCI95SingleSample(t *testing.T) {
	e := MeanCI95([]float64{42})
	if e.N != 1 || e.Mean != 42 || e.Lo != 42 || e.Hi != 42 || e.StdErr != 0 {
		t.Fatalf("degenerate estimate %+v", e)
	}
}

func TestMeanCI95Empty(t *testing.T) {
	if e := MeanCI95(nil); e != (Estimate{}) {
		t.Fatalf("empty input produced %+v", e)
	}
}

func TestMeanCI95ZeroVariance(t *testing.T) {
	// Identical samples: interval collapses to the mean.
	e := MeanCI95([]float64{7, 7, 7, 7})
	if e.StdErr != 0 || e.Lo != 7 || e.Hi != 7 {
		t.Fatalf("zero-variance estimate %+v", e)
	}
}

func TestTCritical95Table(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {-3, 0},
		{1, 12.706}, {4, 2.776}, {9, 2.262}, {30, 2.042},
		{35, 2.021}, {50, 2.000}, {100, 1.980}, {10000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Fatalf("t(%d) = %v want %v", c.df, got, c.want)
		}
	}
	// Monotone non-increasing over the table range.
	for df := 2; df <= 200; df++ {
		if TCritical95(df) > TCritical95(df-1) {
			t.Fatalf("t not non-increasing at df %d", df)
		}
	}
}

func TestEdgeCasesStayFinite(t *testing.T) {
	for _, xs := range [][]float64{nil, {}, {1}, {1, 1}} {
		e := MeanCI95(xs)
		for name, v := range map[string]float64{
			"mean": e.Mean, "stderr": e.StdErr, "lo": e.Lo, "hi": e.Hi,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s not finite for %v: %+v", name, xs, e)
			}
		}
	}
}
