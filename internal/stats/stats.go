// Package stats provides the descriptive statistics used by the experiment
// harness: five-number summaries for box plots (Figure 3 of the paper),
// percentiles, means, and small formatting helpers for printing figure
// series.
//
// All functions are deterministic and operate on float64 samples. Inputs are
// never mutated; functions that need ordering work on an internal copy.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number summary plus mean, the quantities a box plot
// displays. It is the unit in which Figure 3 results are reported.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary of xs. It returns the zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		StdDev: StdDev(s),
	}
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// IQR returns the interquartile range of the summary.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when xs has
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the same method as numpy's default).
// It returns 0 for empty input and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MinMax returns the smallest and largest values in xs. It returns (0, 0)
// for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Ratio returns part/whole as a float64, or 0 when whole is 0. It exists
// because the experiments compute many reduction ratios from integer
// counters and the zero-denominator case must not NaN-poison a series.
func Ratio(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole
}

// ReductionPct returns the percentage reduction going from base to v:
// 100 * (1 - v/base). It returns 0 when base is 0.
func ReductionPct(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - v/base)
}
