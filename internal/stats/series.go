package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is a labelled sequence of (x, y) points, the unit in which the
// figure harness emits line plots (Figures 1(a), 1(b), 1(c)).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries allocates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.X) }

// MeanY returns the mean of the series' y values.
func (s *Series) MeanY() float64 { return Mean(s.Y) }

// YRange returns the min and max of the y values.
func (s *Series) YRange() (min, max float64) { return MinMax(s.Y) }

// Table renders one or more series that share an x axis as an aligned text
// table, one row per x value, matching how the paper's figures are read.
// Series with missing points at some x render an empty cell.
func Table(w io.Writer, xLabel string, series ...*Series) {
	// Collect the union of x values in sorted order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)

	fmt.Fprintf(w, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-12.4g", x)
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4f", s.Y[i])
					break
				}
			}
			fmt.Fprintf(w, " %14s", cell)
		}
		fmt.Fprintln(w)
	}
}

// AsciiBox renders a crude horizontal ASCII box plot of the summary scaled
// into [lo, hi]. It is used by the bench harness to echo Figure 3 visually.
func AsciiBox(s Summary, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := pos(s.Q1); i <= pos(s.Q3) && i < width; i++ {
		row[i] = '='
	}
	row[pos(s.Min)] = '|'
	row[pos(s.Max)] = '|'
	row[pos(s.Median)] = 'M'
	return string(row)
}

// FormatPct formats a percentage with two digits, used uniformly by the
// harness so figures diff cleanly across runs.
func FormatPct(v float64) string { return strings.TrimSpace(fmt.Sprintf("%6.2f%%", v)) }
