package stats

import "math"

// Confidence-interval math for the multi-seed sweep framework: every figure
// point is an ensemble of independent trials (one per seed), reported as
// mean ± 95% confidence interval. Intervals are t-based (Student's t with
// n-1 degrees of freedom), the appropriate choice for the small ensembles
// (5-20 seeds) the experiment harness runs.

// Estimate is a mean with its uncertainty: the unit in which the sweep
// framework reports every metric.
type Estimate struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	// Lo and Hi bound the 95% confidence interval for the mean. With one
	// sample the interval is undefined and collapses to the point estimate;
	// with zero samples the whole Estimate is zero.
	Lo float64 `json:"ci_lo"`
	Hi float64 `json:"ci_hi"`
}

// Margin returns the half-width of the confidence interval.
func (e Estimate) Margin() float64 { return (e.Hi - e.Lo) / 2 }

// SampleVariance returns the unbiased (n-1) sample variance of xs, or 0
// when xs has fewer than two samples.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// SampleStdDev returns the sample standard deviation (n-1 denominator), or
// 0 when xs has fewer than two samples. Contrast StdDev, which is the
// population form used by the five-number summaries.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// StdErr returns the standard error of the mean, SampleStdDev/sqrt(n), or 0
// when xs has fewer than two samples.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return SampleStdDev(xs) / math.Sqrt(float64(len(xs)))
}

// tCritical95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom 1..30. Beyond 30 the table continues at selected df
// and converges to the normal quantile 1.960.
var tCritical95 = [...]float64{
	0, // df 0 unused
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (df <= 0 yields 0; large df approaches 1.960).
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df < len(tCritical95):
		return tCritical95[df]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// MeanCI95 computes the mean of xs with its two-sided 95% t-based
// confidence interval. Edge cases: empty input yields the zero Estimate;
// a single sample yields a degenerate interval at the point estimate.
func MeanCI95(xs []float64) Estimate {
	n := len(xs)
	if n == 0 {
		return Estimate{}
	}
	m := Mean(xs)
	if n == 1 {
		return Estimate{N: 1, Mean: m, Lo: m, Hi: m}
	}
	se := StdErr(xs)
	margin := TCritical95(n-1) * se
	return Estimate{N: n, Mean: m, StdErr: se, Lo: m - margin, Hi: m + margin}
}
