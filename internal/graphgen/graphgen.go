// Package graphgen generates synthetic power-law graphs standing in for
// the LiveJournal social network (4.8M vertices, 68M edges) used by the
// paper's graph-analytics analysis. The generator is R-MAT (recursive
// matrix) with LiveJournal-like skew parameters; the degree distribution's
// heavy tail is what shapes per-destination message fan-in, which is the
// quantity Figure 1(c)'s traffic-reduction ratio measures.
package graphgen

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/daiet/daiet/internal/hashing"
)

// RMATConfig parameterizes generation. The zero value is completed with
// LiveJournal-like defaults at laptop scale.
type RMATConfig struct {
	Scale      int     // 2^Scale vertices (default 16)
	EdgeFactor int     // edges per vertex (default 14, LiveJournal's ratio)
	A, B, C    float64 // R-MAT quadrant probabilities (D = 1-A-B-C)
	Seed       uint64
}

func (c RMATConfig) withDefaults() RMATConfig {
	if c.Scale == 0 {
		c.Scale = 16
	}
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 14
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	return c
}

// Graph is a directed graph in adjacency-list form. Vertex IDs are dense
// [0, N).
type Graph struct {
	N   int
	Out [][]int32
	// und caches the undirected adjacency (built on first use by Und).
	und [][]int32
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, adj := range g.Out {
		n += len(adj)
	}
	return n
}

// RMAT generates a directed R-MAT graph with self-loops removed and
// parallel edges deduplicated. Deterministic per seed.
func RMAT(cfg RMATConfig) (*Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale < 1 || cfg.Scale > 28 {
		return nil, fmt.Errorf("graphgen: scale %d outside [1, 28]", cfg.Scale)
	}
	if cfg.A <= 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return nil, fmt.Errorf("graphgen: bad quadrant probabilities %v %v %v", cfg.A, cfg.B, cfg.C)
	}
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	rng := rand.New(rand.NewSource(int64(hashing.Mix64(cfg.Seed ^ 0x9a7))))

	g := &Graph{N: n, Out: make([][]int32, n)}
	for e := 0; e < m; e++ {
		src, dst := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: neither bit set
			case r < cfg.A+cfg.B:
				dst |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src == dst {
			continue // drop self-loops
		}
		g.Out[src] = append(g.Out[src], int32(dst))
	}
	// Deduplicate parallel edges.
	for v := range g.Out {
		adj := g.Out[v]
		if len(adj) < 2 {
			continue
		}
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		out := adj[:1]
		for _, u := range adj[1:] {
			if u != out[len(out)-1] {
				out = append(out, u)
			}
		}
		g.Out[v] = out
	}
	return g, nil
}

// Und returns the undirected adjacency (union of out- and in-edges,
// deduplicated), building and caching it on first call. WCC runs on this
// view, like Pregel treats weak connectivity.
func (g *Graph) Und() [][]int32 {
	if g.und != nil {
		return g.und
	}
	und := make([][]int32, g.N)
	for v, adj := range g.Out {
		for _, u := range adj {
			und[v] = append(und[v], u)
			und[u] = append(und[u], int32(v))
		}
	}
	for v := range und {
		adj := und[v]
		if len(adj) < 2 {
			continue
		}
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		out := adj[:1]
		for _, u := range adj[1:] {
			if u != out[len(out)-1] {
				out = append(out, u)
			}
		}
		und[v] = out
	}
	g.und = und
	return und
}

// MaxOutDegree returns the largest out-degree (skew diagnostic).
func (g *Graph) MaxOutDegree() int {
	max := 0
	for _, adj := range g.Out {
		if len(adj) > max {
			max = len(adj)
		}
	}
	return max
}

// HighestDegreeVertex returns the vertex with the largest out-degree — a
// good SSSP source so the frontier actually grows (the paper runs SSSP from
// a single source; a random low-degree source on a skewed graph can stall).
func (g *Graph) HighestDegreeVertex() int {
	best, bestDeg := 0, -1
	for v, adj := range g.Out {
		if len(adj) > bestDeg {
			best, bestDeg = v, len(adj)
		}
	}
	return best
}
