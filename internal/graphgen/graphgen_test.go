package graphgen

import (
	"testing"
)

func TestRMATBasics(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Fatalf("N %d", g.N)
	}
	m := g.NumEdges()
	// Dedup and self-loop removal trim some edges; expect the bulk kept.
	if m < 4000 || m > 8192 {
		t.Fatalf("edges %d outside sanity band", m)
	}
}

func TestRMATNoSelfLoopsNoDuplicates(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v, adj := range g.Out {
		for i, u := range adj {
			if int(u) == v {
				t.Fatalf("self loop at %d", v)
			}
			if u < 0 || int(u) >= g.N {
				t.Fatalf("edge out of range: %d -> %d", v, u)
			}
			if i > 0 && adj[i-1] >= u {
				t.Fatalf("adjacency not strictly sorted at %d", v)
			}
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := RMAT(RMATConfig{Scale: 8, Seed: 7})
	b, _ := RMAT(RMATConfig{Scale: 8, Seed: 7})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for v := range a.Out {
		if len(a.Out[v]) != len(b.Out[v]) {
			t.Fatalf("degree differs at %d", v)
		}
		for i := range a.Out[v] {
			if a.Out[v][i] != b.Out[v][i] {
				t.Fatalf("edges differ at %d", v)
			}
		}
	}
	c, _ := RMAT(RMATConfig{Scale: 8, Seed: 8})
	if c.NumEdges() == a.NumEdges() {
		t.Log("note: different seeds gave equal edge counts (possible, unusual)")
	}
}

func TestRMATSkew(t *testing.T) {
	// LiveJournal-like parameters must produce a heavy-tailed out-degree:
	// max degree far above the mean.
	g, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(g.NumEdges()) / float64(g.N)
	if max := g.MaxOutDegree(); float64(max) < 8*mean {
		t.Fatalf("no skew: max degree %d vs mean %.1f", max, mean)
	}
	hub := g.HighestDegreeVertex()
	if len(g.Out[hub]) != g.MaxOutDegree() {
		t.Fatal("HighestDegreeVertex inconsistent")
	}
}

func TestUndSymmetric(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	und := g.Und()
	// Symmetry: u in und[v] <=> v in und[u].
	adjSet := make([]map[int32]bool, g.N)
	for v, adj := range und {
		adjSet[v] = make(map[int32]bool, len(adj))
		for _, u := range adj {
			adjSet[v][u] = true
		}
	}
	for v, adj := range und {
		for _, u := range adj {
			if !adjSet[u][int32(v)] {
				t.Fatalf("asymmetric edge %d-%d", v, u)
			}
		}
	}
	// Cached: second call returns the same slices.
	if &g.Und()[0] != &und[0] {
		t.Fatal("Und not cached")
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 40}); err == nil {
		t.Fatal("huge scale must fail")
	}
	if _, err := RMAT(RMATConfig{Scale: 8, A: 0.5, B: 0.4, C: 0.2}); err == nil {
		t.Fatal("probabilities >= 1 must fail")
	}
}
