package experiments

import (
	"fmt"
	"math/rand"

	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/hashing"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/transport"
)

// Shared plumbing of the fan-in experiments (incast, bigincast): realize a
// plan with DAIET programs on switches and plain hosts, draw deterministic
// per-sender workloads, and verify exactly-once aggregation.

// daietFabric bundles a realized plan's components.
type daietFabric struct {
	fab      *topology.Fabric
	programs map[netsim.NodeID]*core.Program
	hosts    map[netsim.NodeID]*transport.Host
}

// buildDaietFabric realizes plan onto nw with a default DAIET program per
// switch and a transport host per host node (pools declared on the plan are
// installed by Realize).
func buildDaietFabric(nw *netsim.Network, plan *topology.Plan) (*daietFabric, error) {
	f := &daietFabric{
		programs: map[netsim.NodeID]*core.Program{},
		hosts:    map[netsim.NodeID]*transport.Host{},
	}
	var buildErr error
	f.fab = plan.Realize(nw,
		func(id netsim.NodeID) netsim.Node {
			prog, err := core.NewProgram(core.ProgramConfig{})
			if err != nil {
				buildErr = err
				return transport.NewHost() // placeholder; buildErr aborts below
			}
			f.programs[id] = prog
			return prog.Switch()
		},
		func(id netsim.NodeID) netsim.Node {
			h := transport.NewHost()
			f.hosts[id] = h
			return h
		})
	if buildErr != nil {
		return nil, buildErr
	}
	return f, nil
}

// senderWorkload draws worker w's deterministic stream: its actual length
// within ±20% of pairsMean, keys from a shared vocab (overlap makes the
// in-network aggregation real), accumulating the ground truth into want.
// The returned RNG has consumed exactly the workload draws, so later draws
// (start jitter) never perturb the stream itself.
func senderWorkload(seed uint64, w netsim.NodeID, pairsMean, vocab int,
	want map[string]uint32) ([]core.KV, *rand.Rand) {

	rng := rand.New(rand.NewSource(int64(hashing.Mix64(seed ^ uint64(w)<<20))))
	n := pairsMean * (80 + rng.Intn(41)) / 100 // ±20%
	stream := make([]core.KV, n)
	for k := 0; k < n; k++ {
		key := fmt.Sprintf("key-%05d", rng.Intn(vocab))
		val := uint32(rng.Intn(1000))
		want[key] += val
		stream[k] = core.KV{Key: key, Value: val}
	}
	return stream, rng
}

// verifyExactOnce is the correctness gate of every loss experiment: the
// collector's aggregate must equal the ground truth exactly — a duplicate
// or lost pair anywhere in the tree shows up as a wrong sum.
func verifyExactOnce(col *core.Collector, want map[string]uint32) error {
	got := col.Result()
	if len(got) != len(want) {
		return fmt.Errorf("%d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("key %q = %d, want %d (duplicate or lost aggregation)",
				k, got[k], v)
		}
	}
	return nil
}

// jainIndex is Jain's fairness index over xs: (Σx)² / (n·Σx²) — 1.0 when
// every element is equal, approaching 1/n when one element dominates.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
