package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/telemetry"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// BigIncast is incast at fabric scale: hundreds of senders across several
// racks, all feeding one multi-rack aggregation tree, with every switch
// modeled as a shared-memory device — one buffer pool per switch under
// Dynamic-Threshold admission (netsim.BufferPool), not per-port FIFOs.
//
// The pressure points are no longer the host uplinks (those keep
// testbed-sized private queues): each rack's leaf aggregates its senders
// and emits spill/flush traffic upward, so the spill fan-in of all racks
// converges through the spine onto the root leaf, and the ACK streams back
// to every sender contend with that upstream traffic inside each leaf's
// shared memory. Loss is recovered hop by hop: host→leaf by the reliable
// gate (go-back-N senders, cumulative ACKs), and every switch→switch and
// switch→reducer hop by the switch-side replay buffer (TreeConfig.
// RootReplay generalized to interior hops: each switch retains its
// emissions until its tree parent — gate or collector — cumulatively
// acknowledges them). The run is exactly-once verified end to end.
//
// The sweep compares DT sharing against equal static partitioning of the
// same total memory (alpha = 0, reserve = total/ports — the per-port model
// every earlier figure used), reporting drop rate, completion inflation
// against a loss-free reference, pool high-water marks, and per-sender
// fairness.

// BigIncastConfig sizes one fabric-scale incast trial.
type BigIncastConfig struct {
	Seed uint64
	// Racks is the number of sender racks (default 4); the reducer sits
	// alone in one extra rack, so the tree crosses the spine.
	Racks int
	// Spines is the spine tier width (default 1). The megaincast figure
	// runs 2 so the fabric has real path diversity at 16 racks.
	Spines int
	// Senders is the total fan-in degree, spread evenly across racks
	// (default 256).
	Senders int
	// PairsPerSender is the mean stream length; each sender draws its
	// actual length within ±20% from its own seed stream (default 150).
	PairsPerSender int
	// Vocab is the shared key space (default 4096). With Vocab well above
	// TableSize, register collisions force steady spill traffic upward —
	// the fan-in the switch memories must absorb.
	Vocab int
	// TableSize is the per-tree register array per switch (default 1024).
	TableSize int
	// PoolBytes is each leaf switch's shared memory (default 256 KiB).
	// Spines get 2× (tier sizing: more ports, more transit).
	PoolBytes int
	// PoolReserve is the per-port guaranteed reserve under DT (default
	// 2 KiB ≈ one full DAIET frame burst).
	PoolReserve int
	// Alpha is the DT factor (default 1).
	Alpha float64
	// StaticPartition replaces DT with an equal static split of the same
	// total bytes: reserve = PoolBytes/ports, alpha = 0. The comparison
	// baseline the figure sweeps against.
	StaticPartition bool
	// EdgeQueueBytes sizes the host uplink private queues (default 64 MiB,
	// the loss-free testbed edge — this figure studies switch memory).
	EdgeQueueBytes int
	// Replay bounds each switch's per-tree replay buffer (default 64).
	Replay int
	// SimWorkers partitions the fabric into parallel event-engine domains
	// (0 autotunes to min(rack units, GOMAXPROCS)); results are
	// byte-identical at any value.
	SimWorkers int
	// CorePropagation, when non-zero, sets the propagation delay of every
	// switch-to-switch link. The rack cut runs along the core tier, so this
	// is the engine's synchronization-lookahead knob; zero keeps the
	// historical zero-delay core of every earlier figure.
	CorePropagation time.Duration
	// ShortCutPropagation, when non-zero, shortens exactly one core link
	// (the first leaf's first spine uplink) to this delay — the
	// heterogeneous cut of the syncproto figure: one short synchronization
	// channel among long ones.
	ShortCutPropagation time.Duration
	// SyncProtocol selects the partitioned engine's conservative
	// synchronization scheme (default netsim.SyncEIT); results are
	// byte-identical under either.
	SyncProtocol netsim.SyncProtocol
	// Recut enables measured-skew dynamic re-partitioning (zero value
	// disables); results stay byte-identical under any re-cut schedule.
	Recut topology.RecutConfig
	// Telemetry, when non-nil, records a fabric timeline during the run:
	// every pooled switch is probed on the config's cadence (pool, port
	// and tree-residency gauges) and the INT-style path sampler covers
	// the switch tier. Nil leaves the workload hot path untouched.
	Telemetry *telemetry.Config
}

func (c BigIncastConfig) withDefaults() BigIncastConfig {
	if c.Racks == 0 {
		c.Racks = 4
	}
	if c.Spines == 0 {
		c.Spines = 1
	}
	if c.Senders == 0 {
		c.Senders = 256
	}
	if c.PairsPerSender == 0 {
		c.PairsPerSender = 150
	}
	if c.Vocab == 0 {
		c.Vocab = 4096
	}
	if c.TableSize == 0 {
		c.TableSize = 1024
	}
	if c.PoolBytes == 0 {
		c.PoolBytes = 256 << 10
	}
	if c.PoolReserve == 0 {
		c.PoolReserve = 2 << 10
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.EdgeQueueBytes == 0 {
		c.EdgeQueueBytes = 64 << 20
	}
	if c.Replay == 0 {
		c.Replay = 64
	}
	return c
}

// BigIncastResult is one trial's outcome.
type BigIncastResult struct {
	Cfg BigIncastConfig

	// Switch-egress admission accounting, summed over every pooled switch
	// port (the only loss points: host uplinks are loss-free).
	FramesAttempted uint64
	FramesDropped   uint64
	DropRatePct     float64

	// Host reliability-layer work.
	Transmissions   uint64
	Retransmissions uint64
	PairsSent       uint64
	// Switch replay-buffer work (hop-by-hop go-back-N).
	SwitchRetransmissions uint64
	FlushStalls           uint64

	// PoolHighWaterPct is the worst switch's peak occupancy as a percent
	// of its memory.
	PoolHighWaterPct float64
	// PortFairness is Jain's index over per-sender network cost
	// (transmissions per pair shipped): 1.0 when the shared memory serves
	// every sender's ports evenly, sinking toward 1/n when drops single
	// out a few senders for extra retransmission rounds.
	PortFairness float64

	// Completion is the virtual time at which every sender finished and
	// the collector completed.
	Completion netsim.Time

	// Engine-scale accounting (PR 7): executed simulator events, accepted
	// frames, the peak arena footprint across all domains, how many
	// event-engine domains actually ran, and how many dynamic re-cuts the
	// policy applied. All deterministic in (Seed, config).
	Events     uint64
	Frames     uint64
	ArenaStats netsim.ArenaStats
	Domains    int
	Recuts     uint64

	// Sync is the partitioned engine's synchronization diagnostics
	// (barriers, windows, idle windows, horizon widths) — cut-dependent
	// like ArenaStats, deterministic for a fixed configuration.
	Sync netsim.SyncStats

	// Timeline is the recorded fabric timeline, non-nil only when
	// Cfg.Telemetry asked for one.
	Timeline *telemetry.Timeline
}

// bigIncastPlan builds the fabric: Racks sender racks plus one reducer
// rack, one spine, shared-memory pools on every switch.
func bigIncastPlan(cfg BigIncastConfig) (plan *topology.Plan, senders []netsim.NodeID, reducer netsim.NodeID) {
	perRack := (cfg.Senders + cfg.Racks - 1) / cfg.Racks
	plan = topology.LeafSpine(cfg.Racks+1, cfg.Spines, perRack,
		netsim.LinkConfig{QueueBytes: cfg.EdgeQueueBytes})
	plan.Name = fmt.Sprintf("bigincast-%ds-%dr", cfg.Senders, cfg.Racks)
	senders = plan.Hosts[:cfg.Senders]
	reducer = plan.Hosts[cfg.Racks*perRack] // first host of the reducer rack

	if cfg.CorePropagation != 0 {
		plan.SetCorePropagation(cfg.CorePropagation)
	}
	if cfg.ShortCutPropagation != 0 {
		for i := range plan.Links {
			if topology.IsSwitchID(plan.Links[i].A) && topology.IsSwitchID(plan.Links[i].B) {
				plan.Links[i].Cfg.Propagation = cfg.ShortCutPropagation
				break // the first core link: leaf 0's first spine uplink
			}
		}
	}

	ports := func(sw netsim.NodeID) int {
		n := 0
		for _, l := range plan.Links {
			if l.A == sw || l.B == sw {
				n++
			}
		}
		return n
	}
	pool := func(total, ports int) netsim.PoolConfig {
		if cfg.StaticPartition {
			// Equal static split of the same memory: the per-port FIFO
			// model, expressed in pool terms (alpha 0 forbids borrowing).
			return netsim.PoolConfig{TotalBytes: total, ReserveBytes: total / ports, Alpha: 0}
		}
		// Floors are hard-carved out of the memory: bytes reserved per port
		// leave the borrowable pool permanently, so an unchecked floor on a
		// high-radix tier doesn't just over-commit (which validation
		// rejects) — it silently degenerates DT into the static split by
		// carving everything. Cap the total carve at a quarter of the
		// memory so sharing stays the dominant regime (the 128 KiB sweep
		// point meets a 65-port leaf here).
		reserve := cfg.PoolReserve
		if cap := total / (4 * ports); reserve > cap {
			reserve = cap
		}
		return netsim.PoolConfig{TotalBytes: total, ReserveBytes: reserve, Alpha: cfg.Alpha}
	}
	for i, sw := range plan.Switches {
		total := cfg.PoolBytes
		if i >= cfg.Racks+1 {
			total *= 2 // spine tier: more ports, more transit memory
		}
		plan.SetPool(sw, pool(total, ports(sw)))
	}
	return plan, senders, reducer
}

// BigIncast runs one fabric-scale incast round and verifies the aggregate
// is exact. Deterministic in (Seed, config) at any SimWorkers value.
func BigIncast(cfg BigIncastConfig) (*BigIncastResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Senders < cfg.Racks {
		return nil, fmt.Errorf("experiments: bigincast: %d senders across %d racks", cfg.Senders, cfg.Racks)
	}
	plan, workers, reducer := bigIncastPlan(cfg)

	nw := netsim.New(cfg.Seed)
	fb, err := buildDaietFabric(nw, plan)
	if err != nil {
		return nil, err
	}
	if err := fb.fab.PartitionsDynamic(cfg.SimWorkers, cfg.Recut); err != nil {
		return nil, err
	}
	nw.SetSyncProtocol(cfg.SyncProtocol)
	ctl := controller.New(fb.fab, fb.programs)
	if err := ctl.InstallRouting(); err != nil {
		return nil, err
	}
	tplan, err := ctl.PlanTree(reducer, workers)
	if err != nil {
		return nil, err
	}

	// Hop-by-hop reliable tree: every switch gates its own tree children
	// (rack hosts at the leaves, child switches upstream) and retains its
	// emissions in a replay buffer until its parent acknowledges them.
	if err := ctl.InstallTree(tplan, controller.TreeOptions{
		Agg:        core.AggSum,
		TableSize:  cfg.TableSize,
		Reliable:   true,
		RootReplay: cfg.Replay,
		RootRTO:    500 * time.Microsecond,
		HopReplay:  true,
	}); err != nil {
		return nil, err
	}

	sum, err := core.FuncByID(core.AggSum)
	if err != nil {
		return nil, err
	}
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, tplan.RootChildren())
	col.Attach(fb.hosts[reducer])
	col.EnableRootAck()

	// Synchronized fan-in: every worker queues its whole stream at t=0.
	rcfg := core.ReliableConfig{
		Window:     32,
		RTO:        500 * time.Microsecond,
		MaxRetries: 10_000, // completion, not give-up, is under study
	}
	want := map[string]uint32{}
	senders := make([]*core.ReliableSender, len(workers))
	for i, w := range workers {
		mux := core.NewAckMux(fb.hosts[w])
		s, err := core.NewReliableSender(fb.hosts[w], tplan.TreeID, reducer,
			wire.DefaultGeometry, 10, rcfg)
		if err != nil {
			return nil, err
		}
		mux.Register(s)
		senders[i] = s
		stream, _ := senderWorkload(cfg.Seed, w, cfg.PairsPerSender, cfg.Vocab, want)
		for _, kv := range stream {
			if err := s.Send([]byte(kv.Key), kv.Value); err != nil {
				return nil, err
			}
		}
		s.End()
	}

	var rec *telemetry.Recorder
	if cfg.Telemetry != nil {
		rec = telemetry.NewRecorder(nw, *cfg.Telemetry)
		for _, swNode := range plan.Switches {
			if err := rec.WatchSwitch(swNode, fb.programs[swNode]); err != nil {
				return nil, fmt.Errorf("experiments: bigincast: %w", err)
			}
		}
		rec.EnablePathTrace(plan.Switches)
		rec.Start()
		if err := rec.RunSampled(500_000_000); err != nil {
			return nil, fmt.Errorf("experiments: bigincast: %w", err)
		}
	} else if err := nw.Run(500_000_000); err != nil {
		return nil, fmt.Errorf("experiments: bigincast: %w", err)
	}

	res := &BigIncastResult{Cfg: cfg, Completion: nw.Now()}
	if rec != nil {
		res.Timeline = rec.Timeline()
	}
	perSender := make([]float64, len(senders))
	for i, s := range senders {
		if !s.Done() {
			return nil, fmt.Errorf("experiments: bigincast: sender %d incomplete: %v", i, s.Err())
		}
		res.Transmissions += s.Stats.Transmissions
		res.Retransmissions += s.Stats.Retransmissions
		res.PairsSent += s.Stats.PairsSent
		// Cost per pair, so ±20% stream lengths don't read as unfairness.
		pairs := s.Stats.PairsSent
		if pairs == 0 {
			pairs = 1 // degenerate empty stream: END-only cost
		}
		perSender[i] = float64(s.Stats.Transmissions) / float64(pairs)
	}
	res.PortFairness = jainIndex(perSender)
	if !col.Complete() {
		return nil, fmt.Errorf("experiments: bigincast: collector incomplete (%+v)", col.Stats)
	}
	if err := verifyExactOnce(col, want); err != nil {
		return nil, fmt.Errorf("experiments: bigincast: %w", err)
	}

	for _, swNode := range tplan.SwitchNodes {
		if st, ok := fb.programs[swNode].TreeStats(tplan.TreeID); ok {
			res.SwitchRetransmissions += st.RootRetransmissions
			res.FlushStalls += st.FlushStalls
		}
	}
	// Switch-egress admission accounting + pool pressure.
	for _, swNode := range plan.Switches {
		for p := 0; p < nw.NumPorts(swNode); p++ {
			st := nw.PortStats(swNode, p)
			res.FramesAttempted += st.TxFrames + st.DropsPool + st.DropsFull + st.DropsLoss
			res.FramesDropped += st.DropsPool + st.DropsFull + st.DropsLoss
		}
		ps, ok := nw.PoolStats(swNode)
		if !ok {
			return nil, fmt.Errorf("experiments: bigincast: switch %d has no pool", swNode)
		}
		if pct := 100 * float64(ps.HighWater) / float64(ps.TotalBytes); pct > res.PoolHighWaterPct {
			res.PoolHighWaterPct = pct
		}
	}
	res.DropRatePct = 100 * stats.Ratio(float64(res.FramesDropped), float64(res.FramesAttempted))
	res.Events = nw.Processed()
	res.Frames = nw.TotalStats().TxFrames
	res.ArenaStats = nw.ArenaStats()
	res.Domains = nw.Domains()
	res.Recuts = nw.Recuts()
	res.Sync = nw.SyncStats()
	return res, nil
}

// bigIncastCache memoizes trials shared across sweep points: the loss-free
// reference (one per seed) and the static-partition twins (one per seed ×
// pool size; static ignores alpha, which the sweep varies). BigIncast is
// deterministic in its config, so concurrent duplicates are benign.
var bigIncastCache sync.Map // BigIncastConfig -> *BigIncastResult

func bigIncastCached(cfg BigIncastConfig) (*BigIncastResult, error) {
	if v, ok := bigIncastCache.Load(cfg); ok {
		return v.(*BigIncastResult), nil
	}
	res, err := BigIncast(cfg)
	if err != nil {
		return nil, err
	}
	bigIncastCache.Store(cfg, res)
	return res, nil
}

func init() {
	type pt struct {
		poolKiB int
		alpha   float64
	}
	sweep := []pt{
		{128, 0.5}, {128, 2}, {128, 8},
		{512, 0.5}, {512, 2}, {512, 8},
	}
	pts := make([]Point, len(sweep))
	for i, s := range sweep {
		pts[i] = Point{
			Label: fmt.Sprintf("%dKiB-a%g", s.poolKiB, s.alpha),
			X:     float64(s.poolKiB<<10) + s.alpha, // unique axis key
		}
	}
	Register(&Spec{
		Name: "bigincast",
		Title: "Extension: incast at fabric scale — 256 senders / 4 racks, shared-memory switch buffers, " +
			"DT (pool × alpha sweep) vs equal static split of the same bytes",
		XLabel: "pool-alpha",
		Points: pts,
		Metrics: []string{
			"drop_rate_pct",
			"static_drop_rate_pct",
			"completion_inflation_x",
			"pool_highwater_pct",
			"port_fairness",
		},
		Run: func(p Point, tr Trial) (map[string]float64, error) {
			var s pt
			for i := range sweep {
				if pts[i].Label == p.Label {
					s = sweep[i]
				}
			}
			base := BigIncastConfig{
				Seed:           tr.Seed,
				Senders:        scaledInt(256, tr.Scale, 16),
				Racks:          scaledInt(4, tr.Scale, 2),
				PairsPerSender: scaledInt(150, tr.Scale, 30),
				Vocab:          scaledInt(4096, tr.Scale, 320),
				TableSize:      scaledInt(1024, tr.Scale, 64), // keep the collision ratio at small scale
				SimWorkers:     tr.SimWorkers,
				Recut:          tr.Recut,
			}
			dt := base
			dt.PoolBytes = s.poolKiB << 10
			dt.Alpha = s.alpha
			res, err := BigIncast(dt)
			if err != nil {
				return nil, err
			}
			// The static twin: identical workload and memory, alpha = 0,
			// reserve = total/ports. Shared across this pool size's alpha
			// points (the split has no alpha to sweep).
			static := base
			static.PoolBytes = s.poolKiB << 10
			static.StaticPartition = true
			statRes, err := bigIncastCached(static)
			if err != nil {
				return nil, err
			}
			// The loss-free reference for completion inflation: identical
			// workload through effectively unbounded switch memory.
			ref := base
			ref.PoolBytes = 64 << 20
			ref.Alpha = 8
			refRes, err := bigIncastCached(ref)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"drop_rate_pct":          res.DropRatePct,
				"static_drop_rate_pct":   statRes.DropRatePct,
				"completion_inflation_x": stats.Ratio(float64(res.Completion), float64(refRes.Completion)),
				"pool_highwater_pct":     res.PoolHighWaterPct,
				"port_fairness":          res.PortFairness,
			}, nil
		},
	})
}
