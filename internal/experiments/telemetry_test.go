package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/daiet/daiet/internal/telemetry"
)

// TestTimelineSpecsSimWorkersDeterministic is the telemetry conformance
// suite the tentpole promises: every registered timeline — probe series
// AND sampled per-frame hop traces — is byte-identical at 1/2/4 engine
// domains and under a measured-skew re-cut schedule. Only the
// DeterministicBytes section is compared; the engine-diagnostics section
// is cut-dependent by design.
func TestTimelineSpecsSimWorkersDeterministic(t *testing.T) {
	specs := TimelineSpecs()
	if len(specs) < 2 {
		t.Fatalf("timeline registry has %d entries, want >= 2", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			base := Trial{Seed: 11, Scale: 0.08, SimWorkers: 1}
			tl, err := spec.Run(base)
			if err != nil {
				t.Fatal(err)
			}
			if len(tl.Records) == 0 {
				t.Fatal("timeline recorded nothing")
			}
			seq := tl.DeterministicBytes()
			variants := []Trial{
				{Seed: base.Seed, Scale: base.Scale, SimWorkers: 2},
				{Seed: base.Seed, Scale: base.Scale, SimWorkers: 4},
				{Seed: base.Seed, Scale: base.Scale, SimWorkers: 4, Recut: recutSchedule(base.Seed)},
			}
			for _, tr := range variants {
				tl, err := spec.Run(tr)
				if err != nil {
					t.Fatal(err)
				}
				got := tl.DeterministicBytes()
				if !bytes.Equal(seq, got) {
					t.Fatalf("%s timeline diverged at sim-workers %d (recut=%v): %d vs %d bytes\nfirst divergence: %s",
						spec.Name, tr.SimWorkers, tr.Recut.Every != 0, len(seq), len(got), firstDiff(seq, got))
				}
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(la), len(lb))
}

// TestTelemetryObserverEffect pins the observer-neutrality contract: a
// recorded run's frame-level outcome is identical to the unrecorded run.
// (Events and Completion legitimately differ — probe timers are real
// engine events and the final drain lands on a probe tick — so the
// comparison covers the workload counters only.)
func TestTelemetryObserverEffect(t *testing.T) {
	cfg := BigIncastConfig{
		Seed: 9, Senders: 16, Racks: 2, PairsPerSender: 30,
		Vocab: 320, TableSize: 64, SimWorkers: 2,
	}
	plain, err := BigIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Telemetry = artifactTelemetry(cfg.Seed)
	recorded, err := BigIncast(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Timeline == nil || len(recorded.Timeline.Records) == 0 {
		t.Fatal("recorded run produced no timeline")
	}
	render := func(r *BigIncastResult) string {
		return fmt.Sprintf("att=%d drop=%d tx=%d retx=%d pairs=%d swretx=%d stalls=%d hw=%v fair=%v frames=%d",
			r.FramesAttempted, r.FramesDropped, r.Transmissions, r.Retransmissions,
			r.PairsSent, r.SwitchRetransmissions, r.FlushStalls,
			r.PoolHighWaterPct, r.PortFairness, r.Frames)
	}
	if p, r := render(plain), render(recorded); p != r {
		t.Fatalf("telemetry perturbed the workload:\n  off: %s\n   on: %s", p, r)
	}
}

// TestTimelineHasFigureSubstance spot-checks the tenants artifact: the
// per-class gauges the figure plots must actually move — the aggressor
// class has to reach a nonzero high-water, and hop records must include
// pool-level drop verdicts during the incast burst.
func TestTimelineHasFigureSubstance(t *testing.T) {
	spec := LookupTimeline("tenants")
	if spec == nil {
		t.Fatal("tenants timeline spec missing")
	}
	tl, err := spec.Run(Trial{Seed: 11, Scale: 0.08, SimWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var aggHW int64
	hops := 0
	for i := range tl.Records {
		r := &tl.Records[i]
		switch {
		case r.Kind == telemetry.KindClass && r.K == 1: // aggressor class
			if r.V1 > aggHW {
				aggHW = r.V1
			}
		case r.Kind == telemetry.KindHop:
			hops++
		}
	}
	if aggHW == 0 {
		t.Fatal("aggressor class high-water never moved")
	}
	if hops == 0 {
		t.Fatal("no sampled hop records")
	}
}
