package experiments

import (
	"fmt"
	"time"
)

// The parallel-sim figure is the headline proof of the partitioned event
// engine (ROADMAP: parallelize *within* a single simulation): the same
// multi-rack WordCount fabric, executed with 1, 2 and 4 event-engine
// domains. The non-volatile metrics (core/edge traffic reduction, reducer
// pair counts) prove the determinism contract — every row of the table must
// carry identical values, and the registry-wide conformance tests assert it
// byte-for-byte — while wall_ms shows how wall-clock scales with domains on
// the host's cores. BENCH_results.json carries the wall_ms_* headline per
// worker count, so the speedup is tracked across PRs (and measured on the
// multi-core CI runner even when a laptop run is single-core).

// parallelSimWorkerCounts is the swept intra-sim domain axis.
var parallelSimWorkerCounts = []int{1, 2, 4}

// parallelSimConfig sizes one trial: a fabric with enough racks that the
// rack cut yields 4+ balanced domains and enough traffic that window
// synchronization amortizes.
func parallelSimConfig(seed uint64, scale float64, workers int) MultiRackConfig {
	return MultiRackConfig{
		Seed:         seed,
		Leaves:       4,
		Spines:       2,
		HostsPerLeaf: 8,
		Mappers:      24,
		Reducers:     6,
		Vocab:        scaledInt(1600, scale, 100),
		Parallelism:  1, // the two modes run sequentially; domains are the parallelism
		SimWorkers:   workers,
	}
}

func init() {
	pts := make([]Point, len(parallelSimWorkerCounts))
	for i, w := range parallelSimWorkerCounts {
		pts[i] = Point{Label: fmt.Sprintf("%dw", w), X: float64(w)}
	}
	Register(&Spec{
		Name:   "parallel-sim",
		Title:  "Extension: partitioned parallel event engine — one fabric, 1/2/4 domains (identical metrics, wall-clock scales with cores)",
		XLabel: "sim workers",
		Points: pts,
		Metrics: []string{
			"core_reduction_pct",
			"reducer_pairs",
			"wall_ms",
		},
		// Wall-clock is host time: real between runs and across worker
		// counts, excluded from determinism comparisons.
		Volatile: []string{"wall_ms"},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			t0 := time.Now() //simlint:wallclock measures the declared-volatile wall_ms metric only
			res, err := MultiRack(parallelSimConfig(tr.Seed, tr.Scale, int(pt.X)))
			if err != nil {
				return nil, err
			}
			wall := float64(time.Since(t0).Microseconds()) / 1000 //simlint:wallclock declared-volatile wall_ms metric
			return map[string]float64{
				"core_reduction_pct": res.CoreReductionPct,
				"reducer_pairs":      float64(res.ReducerPairsDAIET),
				"wall_ms":            wall,
			}, nil
		},
	})
}
