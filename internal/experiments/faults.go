package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/daiet/daiet/internal/faults"
	"github.com/daiet/daiet/internal/mapreduce"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/workload"
)

// The faults figure is the failure-mode counterpart of every other figure:
// the same WordCount-over-leaf-spine job the multirack experiment runs,
// but under a randomly-drawn fault schedule (switch crashes that lose
// in-switch partial aggregates, link flaps, host stragglers) with the
// controller's timeout-based liveness and aggregation-tree failover
// recovering it (mapreduce.RunJobFT). Swept: fault rate × recovery
// timeout, the latter expressed as a fraction of the fault-free completion
// so the axis is scale-invariant.
//
// Exactly-once is asserted inside every trial — RunJobFT verifies the
// merged result against the reference computed from the spills — so each
// figure cell is also thousands of correctness checks under failure.

// FaultScenarioConfig sizes one fault-injection trial.
type FaultScenarioConfig struct {
	Seed     uint64
	Mappers  int // default 8, spread over a 2-leaf × 2-spine fabric
	Reducers int // default 2
	Vocab    int // keys per reducer (default 300)
	// Crashes / LinkFlaps / Stragglers count the fault pairs drawn over
	// the fault-free completion horizon.
	Crashes    int
	LinkFlaps  int
	Stragglers int
	// TimeoutFrac sets the liveness DeadTimeout as a fraction of the
	// fault-free completion (default 1/8).
	TimeoutFrac float64
	// SimWorkers partitions the fabric (0 = autotune); results are
	// byte-identical at any value.
	SimWorkers int
}

func (c FaultScenarioConfig) withDefaults() FaultScenarioConfig {
	if c.Mappers == 0 {
		c.Mappers = 8
	}
	if c.Reducers == 0 {
		c.Reducers = 2
	}
	if c.Vocab == 0 {
		c.Vocab = 300
	}
	if c.TimeoutFrac == 0 {
		c.TimeoutFrac = 1.0 / 8
	}
	return c
}

// FaultScenarioResult is one trial's outcome.
type FaultScenarioResult struct {
	Cfg FaultScenarioConfig
	// Ref is the fault-free completion; Rep the faulted run's report.
	RefCompletion netsim.Time
	Rep           *mapreduce.FTReport
	InflationX    float64
}

// faultsPlan is the figure's fabric: two racks, two spines — the smallest
// fabric with a spine-level failover path.
func faultsPlan() *topology.Plan {
	return topology.LeafSpine(2, 2, 6, netsim.LinkConfig{QueueBytes: 64 << 20})
}

func faultsCluster(cfg FaultScenarioConfig) (*mapreduce.Cluster, error) {
	return mapreduce.NewCluster(mapreduce.ClusterConfig{
		NumMappers:  cfg.Mappers,
		NumReducers: cfg.Reducers,
		Plan:        faultsPlan(),
		TableSize:   1024,
		Seed:        cfg.Seed,
		SimWorkers:  cfg.SimWorkers,
	})
}

func faultsSplits(cfg FaultScenarioConfig) ([][]string, error) {
	corpus, err := workload.Generate(workload.CorpusSpec{
		Seed:             cfg.Seed,
		Reducers:         cfg.Reducers,
		VocabPerReducer:  cfg.Vocab,
		MeanMultiplicity: 6,
		TableSize:        1024,
		CollisionFree:    true,
	})
	if err != nil {
		return nil, err
	}
	return corpus.Splits(cfg.Mappers), nil
}

// faultsRefCache memoizes fault-free reference runs: every point of one
// trial shares the same reference (the fault knobs are zeroed out of the
// key), so the sweep pays for it once per (seed, size, workers) config.
var faultsRefCache sync.Map // FaultScenarioConfig -> *mapreduce.FTReport

func faultsReference(cfg FaultScenarioConfig) (*mapreduce.FTReport, error) {
	key := cfg
	key.Crashes, key.LinkFlaps, key.Stragglers, key.TimeoutFrac = 0, 0, 0, 0
	if v, ok := faultsRefCache.Load(key); ok {
		return v.(*mapreduce.FTReport), nil
	}
	cl, err := faultsCluster(cfg)
	if err != nil {
		return nil, err
	}
	splits, err := faultsSplits(cfg)
	if err != nil {
		return nil, err
	}
	// The schedule-less reference needs no recovery, so disarm the
	// round-timeout backstop (its fixed default would re-drive healthy
	// rounds once -scale pushes completion past it).
	rep, err := cl.RunJobFT(mapreduce.WordCount, splits, nil,
		mapreduce.FTConfig{RoundTimeout: time.Hour})
	if err != nil {
		return nil, err
	}
	faultsRefCache.Store(key, rep)
	return rep, nil
}

// FaultScenario runs one fault-injection trial and returns its report.
// Deterministic in the config: the schedule, the fabric, the workload and
// every recovery decision derive from cfg.Seed and virtual time.
func FaultScenario(cfg FaultScenarioConfig) (*FaultScenarioResult, error) {
	cfg = cfg.withDefaults()
	ref, err := faultsReference(cfg)
	if err != nil {
		return nil, err
	}
	if ref.Completion <= 0 {
		return nil, fmt.Errorf("experiments: faults: degenerate reference completion %v", ref.Completion)
	}
	plan := faultsPlan()
	var links [][2]netsim.NodeID
	for _, l := range plan.Links {
		links = append(links, [2]netsim.NodeID{l.A, l.B})
	}
	sched, err := faults.Generate(faults.GenConfig{
		Seed:           cfg.Seed,
		Horizon:        ref.Completion,
		SwitchCrashes:  cfg.Crashes,
		LinkFlaps:      cfg.LinkFlaps,
		HostStragglers: cfg.Stragglers,
	}, plan.Switches, plan.Hosts[:cfg.Mappers], links)
	if err != nil {
		return nil, err
	}
	deadTimeout := time.Duration(float64(ref.Completion) * cfg.TimeoutFrac)
	if deadTimeout < time.Microsecond {
		deadTimeout = time.Microsecond
	}
	cl, err := faultsCluster(cfg)
	if err != nil {
		return nil, err
	}
	splits, err := faultsSplits(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := cl.RunJobFT(mapreduce.WordCount, splits, sched, mapreduce.FTConfig{
		DeadTimeout: deadTimeout,
		// Rounds must be allowed to outlive the longest fault downtime
		// (Horizon/2) plus detection; anything stuck longer is re-driven.
		RoundTimeout: time.Duration(2*ref.Completion) + 8*deadTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: faults (seed %#x): %w", cfg.Seed, err)
	}
	return &FaultScenarioResult{
		Cfg:           cfg,
		RefCompletion: ref.Completion,
		Rep:           rep,
		InflationX:    stats.Ratio(float64(rep.Completion), float64(ref.Completion)),
	}, nil
}

func init() {
	type axis struct {
		faults      int
		timeoutFrac float64
		label       string
	}
	axes := []axis{
		{1, 1.0 / 8, "f1-t12pct"},
		{1, 1.0 / 3, "f1-t33pct"},
		{2, 1.0 / 8, "f2-t12pct"},
		{2, 1.0 / 3, "f2-t33pct"},
	}
	pts := make([]Point, len(axes))
	for i, a := range axes {
		pts[i] = Point{Label: a.label, X: float64(a.faults*100) + 100*a.timeoutFrac}
	}
	Register(&Spec{
		Name:   "faults",
		Title:  "Extension: fault injection & aggregation-tree failover — fault rate × recovery timeout (paper: failures left open)",
		XLabel: "faults/timeout",
		Points: pts,
		Metrics: []string{
			"completion_inflation_x",
			"failovers",
			"lost_aggregates",
			"recovered_pairs",
		},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			var a axis
			for _, cand := range axes {
				if pt.Label == cand.label {
					a = cand
				}
			}
			res, err := FaultScenario(FaultScenarioConfig{
				Seed:        tr.Seed,
				Vocab:       scaledInt(300, tr.Scale, 60),
				Crashes:     a.faults,
				LinkFlaps:   a.faults,
				Stragglers:  a.faults,
				TimeoutFrac: a.timeoutFrac,
				SimWorkers:  tr.SimWorkers,
			})
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"completion_inflation_x": res.InflationX,
				"failovers":              float64(res.Rep.Failovers),
				"lost_aggregates":        float64(res.Rep.LostPairs),
				"recovered_pairs":        float64(res.Rep.RecoveredPairs),
			}, nil
		},
	})
}
