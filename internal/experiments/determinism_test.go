package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/topology"
)

// The runner's contract: for the same seed, every figure entry point must
// produce byte-identical summaries and counters whether its shards run
// sequentially (parallelism 1) or across the full worker pool. Wall-clock
// fields (reduce-phase timing) are the only nondeterministic quantities and
// are excluded where they appear.

// degrees are the parallelism levels compared against the sequential run.
var degrees = []int{runtime.GOMAXPROCS(0), 3}

func assertIdentical(t *testing.T, name, seq, par string, degree int) {
	t.Helper()
	if seq != par {
		t.Fatalf("%s diverged at parallelism %d:\nsequential: %s\nparallel:   %s",
			name, degree, seq, par)
	}
}

func TestWorkerSweepDeterministic(t *testing.T) {
	seqPts, err := Figure1WorkerSweep(7, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := fmt.Sprintf("%+v", seqPts)
	for _, d := range degrees {
		parPts, err := Figure1WorkerSweep(7, 30, d)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "worker sweep", seq, fmt.Sprintf("%+v", parPts), d)
	}
}

func TestFigure1cDeterministic(t *testing.T) {
	render := func(parallelism int) string {
		fig, err := Figure1c(Figure1cConfig{Seed: 2, Scale: 12, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v %+v %+v v=%d e=%d",
			fig.PageRank, fig.SSSP, fig.WCC, fig.Vertices, fig.Edges)
	}
	seq := render(1)
	for _, d := range degrees {
		assertIdentical(t, "figure 1(c)", seq, render(d), d)
	}
}

func TestFigure3Deterministic(t *testing.T) {
	// Everything except the wall-clock reduce timings must match exactly:
	// the summaries, raw samples, corpus facts, and switch counters.
	render := func(parallelism int) string {
		res, err := Figure3(Figure3Config{Seed: 1, Scale: 0.2, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v %+v %+v data=%v udp=%v tcp=%v words=%d uniq=%d in=%d spill=%d",
			res.DataReduction, res.PacketsVsUDP, res.PacketsVsTCP,
			res.Samples.DataReduction, res.Samples.PacketsVsUDP, res.Samples.PacketsVsTCP,
			res.TotalWords, res.UniqueWords, res.PairsIn, res.PairsSpilled)
	}
	seq := render(1)
	for _, d := range degrees {
		assertIdentical(t, "figure 3", seq, render(d), d)
	}
}

func TestAblationsDeterministic(t *testing.T) {
	renderReg := func(parallelism int) string {
		pts, err := AblationRegisterSize(3, []int{64, 1024}, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", pts)
	}
	renderPairs := func(parallelism int) string {
		pts, err := AblationPairsPerPacket(3, []int{2, 10}, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", pts)
	}
	renderWidth := func(parallelism int) string {
		pts, err := AblationKeyWidth(3, []int{8, 16}, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", pts)
	}
	seqReg, seqPairs, seqWidth := renderReg(1), renderPairs(1), renderWidth(1)
	for _, d := range degrees {
		assertIdentical(t, "register-size ablation", seqReg, renderReg(d), d)
		assertIdentical(t, "pairs-per-packet ablation", seqPairs, renderPairs(d), d)
		assertIdentical(t, "key-width ablation", seqWidth, renderWidth(d), d)
	}
}

// TestSpecEngineDeterministic extends the contract to the sweep engine:
// every registered figure, executed through Spec.Execute, must produce
// identical results (up to declared Volatile metrics) at any parallelism
// degree. This covers the figures' own inner fan-out too, since the specs
// pin it to 1 and put all parallelism in the grid.
func TestSpecEngineDeterministic(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg := RunConfig{Seed: 7, Seeds: 2, Scale: 0.08, Parallelism: 1}
			res, err := spec.Execute(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq := res.DeterministicString(spec.Volatile)
			for _, d := range degrees {
				cfg.Parallelism = d
				res, err := spec.Execute(cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertIdentical(t, spec.Name, seq, res.DeterministicString(spec.Volatile), d)
			}
		})
	}
}

func TestMultiRackDeterministic(t *testing.T) {
	render := func(parallelism int) string {
		res, err := MultiRack(MultiRackConfig{Seed: 5, Vocab: 300, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", *res)
	}
	seq := render(1)
	for _, d := range degrees {
		assertIdentical(t, "multirack", seq, render(d), d)
	}
}

// ---- intra-simulation (partitioned event engine) conformance ----
//
// The contract extends inside a single simulation: partitioning one fabric
// across event-engine domains (netsim.Network.Partition) must leave every
// non-volatile result byte-identical. simWorkerCounts are the domain counts
// compared against the sequential engine.

var simWorkerCounts = []int{2, 4}

// TestSpecEngineSimWorkersDeterministic is the registry-wide conformance
// suite: every figure, executed through Spec.Execute with Partitions(1) vs
// Partitions(4) fabrics (and with the trial-level worker pool layered on
// top), produces byte-identical non-volatile metrics.
func TestSpecEngineSimWorkersDeterministic(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg := RunConfig{Seed: 7, Seeds: 2, Scale: 0.08, Parallelism: 1, SimWorkers: 1}
			res, err := spec.Execute(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq := res.DeterministicString(spec.Volatile)
			for _, w := range simWorkerCounts {
				for _, par := range []int{1, 3} {
					cfg.SimWorkers, cfg.Parallelism = w, par
					res, err := spec.Execute(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := res.DeterministicString(spec.Volatile)
					if seq != got {
						t.Fatalf("%s diverged at sim-workers %d (parallelism %d):\nsequential: %s\npartitioned: %s",
							spec.Name, w, par, seq, got)
					}
				}
			}
		})
	}
}

// TestMultiRackSimWorkersDeterministic compares the full result struct —
// every counter, not just the registry metrics — across domain counts.
func TestMultiRackSimWorkersDeterministic(t *testing.T) {
	render := func(simWorkers int) string {
		res, err := MultiRack(MultiRackConfig{Seed: 5, Vocab: 300, Parallelism: 1, SimWorkers: simWorkers})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", *res)
	}
	seq := render(1)
	for _, w := range simWorkerCounts {
		assertIdentical(t, "multirack sim-workers", seq, render(w), w)
	}
}

// TestIncastSimWorkersDeterministic covers the loss/retransmission path:
// drop counts, retransmissions and virtual completion time must survive
// partitioning bit-for-bit even under synchronized fan-in with overflowing
// queues.
func TestIncastSimWorkersDeterministic(t *testing.T) {
	render := func(simWorkers int) string {
		res, err := Incast(IncastConfig{
			Seed: 3, Senders: 8, PairsPerSender: 300,
			QueueBytes: 4096, SimWorkers: simWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Cfg.SimWorkers = 0 // the knob itself is the only allowed difference
		return fmt.Sprintf("%+v", *res)
	}
	seq := render(1)
	for _, w := range simWorkerCounts {
		assertIdentical(t, "incast sim-workers", seq, render(w), w)
	}
}

// TestIncastPoolSimWorkersDeterministic is the same contract with the
// switch running shared-memory DT admission (IncastConfig.PoolBytes): the
// ACK and flush streams contend in one pool, and every counter still
// replays identically across domain counts.
func TestIncastPoolSimWorkersDeterministic(t *testing.T) {
	render := func(simWorkers int) string {
		res, err := Incast(IncastConfig{
			Seed: 3, Senders: 8, PairsPerSender: 300,
			QueueBytes: 4096, PoolBytes: 16 << 10, PoolAlpha: 0.5,
			SimWorkers: simWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Cfg.SimWorkers = 0
		return fmt.Sprintf("%+v", *res)
	}
	seq := render(1)
	for _, w := range simWorkerCounts {
		assertIdentical(t, "incast pooled sim-workers", seq, render(w), w)
	}
}

// TestSpecEngineRecutDeterministic extends the registry-wide conformance
// suite with dynamic re-partitioning: every figure, executed with a live
// measured-skew re-cut policy on a seeded random schedule, produces
// byte-identical non-volatile metrics to the same figure with a static
// cut, at 2 and 4 domains. Figures that pin their own engine configuration
// (parallel-sim, megaincast) ignore the knob and pass trivially; every
// fabric-building figure that honors Trial.Recut is exercised for real.
func TestSpecEngineRecutDeterministic(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg := RunConfig{Seed: 7, Seeds: 2, Scale: 0.08, Parallelism: 1, SimWorkers: 1}
			res, err := spec.Execute(cfg)
			if err != nil {
				t.Fatal(err)
			}
			static := res.DeterministicString(spec.Volatile)
			for _, w := range simWorkerCounts {
				for _, recutSeed := range []uint64{1, 42} {
					cfg.SimWorkers = w
					cfg.Recut = topology.RecutConfig{
						Every:      3 * time.Microsecond,
						MinSkewPct: 0, // re-cut on any measured imbalance
						Seed:       recutSeed,
					}
					res, err := spec.Execute(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := res.DeterministicString(spec.Volatile)
					if static != got {
						t.Fatalf("%s diverged under dynamic re-cut (workers %d, recut seed %d):\nstatic: %s\nre-cut: %s",
							spec.Name, w, recutSeed, static, got)
					}
				}
			}
		})
	}
}
