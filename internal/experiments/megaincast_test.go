package experiments

import (
	"fmt"
	"testing"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/topology"
)

// TestMegaIncastCrossPointIdentical is the figure's acceptance criterion:
// the identical workload, run at 1/2/4 event-engine domains and at 4
// domains with dynamic re-partitioning live, produces byte-identical
// results — every counter of the trial result, not just the registry
// metrics. Only the engine-shape fields (domain count, arena occupancy,
// re-cut count) may differ along the axis.
func TestMegaIncastCrossPointIdentical(t *testing.T) {
	const seed, scale = 11, 0.08
	workload := func(r *BigIncastResult) string {
		// Blank out the engine-shape fields; everything else must match.
		c := *r
		c.ArenaStats = netsim.ArenaStats{}
		c.Domains = 0
		c.Recuts = 0
		c.Sync = netsim.SyncStats{}
		c.Cfg.SimWorkers = 0
		c.Cfg.Recut = topology.RecutConfig{}
		return fmt.Sprintf("%+v", c)
	}
	var base string
	for i, pt := range megaIncastPoints {
		res, err := BigIncast(megaIncastConfig(seed, scale, pt))
		if err != nil {
			t.Fatalf("%s: %v", pt.label, err)
		}
		if pt.workers > 1 && res.Domains < 2 {
			t.Fatalf("%s ran %d domains", pt.label, res.Domains)
		}
		if pt.recut && res.Recuts == 0 {
			t.Fatalf("%s applied no dynamic re-cut", pt.label)
		}
		if !pt.recut && res.Recuts != 0 {
			t.Fatalf("%s applied %d re-cuts without a policy", pt.label, res.Recuts)
		}
		got := workload(res)
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("megaincast %s diverged from %s:\n%s\nvs\n%s",
				pt.label, megaIncastPoints[0].label, got, base)
		}
	}
}
