package experiments

import (
	"fmt"
	"testing"
	"time"

	"github.com/daiet/daiet/internal/topology"
)

// TestTenantsVictimProtected is the acceptance property of the hard-carve
// model at fabric scale: with any reasonable carved floor, the paced
// streaming victim rides out a maximum-alpha incast aggressor with ZERO
// pool drops — the floor is physical, so no aggressor setting can consume
// it. The aggressor, by contrast, overflows and pays in drops.
func TestTenantsVictimProtected(t *testing.T) {
	res, err := Tenants(TenantsConfig{Seed: 5, VictimReserve: 2 << 10, AggAlpha: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimDropped != 0 || res.VictimPoolDrops != 0 {
		t.Fatalf("victim inside its carved floor dropped %d frames (%d pool): %+v",
			res.VictimDropped, res.VictimPoolDrops, res)
	}
	if res.AggPoolDrops == 0 {
		t.Fatalf("aggressor incast produced no pool pressure — workload too gentle: %+v", res)
	}
	// The victim's completion budget: paced streams finish near their
	// uncontended time when the slice holds.
	ref, err := tenantsReference(res.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inflation := float64(res.VictimCompletion) / float64(ref.VictimCompletion); inflation > 1.5 {
		t.Fatalf("victim completion inflated %.2fx despite holding floor", inflation)
	}
}

// TestTenantsNoFloorStarves pins the contrast: with no carve (the
// pre-hard-carve regime, where a reserve was only a threshold exemption
// and the memory was first-come-first-served), the same aggressor starves
// the victim — nonzero victim pool drops and visibly degraded fairness.
func TestTenantsNoFloorStarves(t *testing.T) {
	res, err := Tenants(TenantsConfig{Seed: 5, VictimReserve: -1, AggAlpha: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimPoolDrops == 0 {
		t.Fatalf("floorless victim took no drops — the sweep's c0 point shows nothing: %+v", res)
	}
}

// TestJainIndex pins the fairness metric, including the degenerate inputs
// the tenants figure can feed it: an empty slice and an all-zero slice are
// defined as perfectly fair (index 1), not NaN — a starved-to-zero tenant
// set must not poison the figure's aggregates.
func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"one-starved", []float64{1, 0}, 0.5},
		{"skewed", []float64{4, 1, 1}, 2.0 / 3.0},
	}
	for _, tc := range cases {
		got := jainIndex(tc.xs)
		if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: jainIndex(%v) = %v, want %v", tc.name, tc.xs, got, tc.want)
		}
		if got != got {
			t.Errorf("%s: jainIndex(%v) is NaN", tc.name, tc.xs)
		}
	}
}

// TestTenantsSimWorkersRecutDeterministic holds the tenants experiment to
// the partition-invariance contract: every counter — per-tenant drops,
// per-class pool attribution, completions — is byte-identical at any
// -sim-workers value and under a measured-skew re-cut schedule.
func TestTenantsSimWorkersRecutDeterministic(t *testing.T) {
	render := func(simWorkers int, recut topology.RecutConfig) string {
		res, err := Tenants(TenantsConfig{
			Seed: 9, VictimSenders: 3, VictimPairs: 120,
			AggSenders: 8, AggPairs: 300,
			VictimReserve: 1 << 10, AggAlpha: 32,
			SimWorkers: simWorkers, Recut: recut,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Cfg.SimWorkers = 0
		res.Cfg.Recut = topology.RecutConfig{}
		return fmt.Sprintf("%+v", *res)
	}
	seq := render(1, topology.RecutConfig{})
	for _, w := range []int{2, 4, 8} {
		if got := render(w, topology.RecutConfig{}); got != seq {
			t.Fatalf("tenants diverged at %d sim-workers:\nsequential: %s\ngot:        %s", w, seq, got)
		}
	}
	recut := topology.RecutConfig{Every: 3 * time.Microsecond, MinSkewPct: 0, Seed: 42}
	if got := render(4, recut); got != seq {
		t.Fatalf("tenants diverged under re-cut:\nsequential: %s\ngot:        %s", seq, got)
	}
}
