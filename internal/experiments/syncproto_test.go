package experiments

import (
	"testing"

	"github.com/daiet/daiet/internal/netsim"
)

// syncProtoSmoke runs one syncproto point at smoke scale and returns the
// workload result. Points pin their own engine config, so the Trial only
// carries seed and scale.
func syncProtoSmoke(t *testing.T, pt syncProtoPoint) *BigIncastResult {
	t.Helper()
	res, err := BigIncast(syncProtoConfig(smokeCfg.Seed, smokeCfg.Scale, pt))
	if err != nil {
		t.Fatalf("%s: %v", pt.label, err)
	}
	if res.Domains != pt.workers {
		t.Fatalf("%s: ran on %d domains, want %d", pt.label, res.Domains, pt.workers)
	}
	return res
}

// TestSyncProtoCrossPointIdentical pins the figure's determinism claim:
// the sync protocol and the domain count are engine knobs, so every
// workload-level output must be byte-identical across points that share a
// latency profile. Only the cut-dependent sync counters may differ.
func TestSyncProtoCrossPointIdentical(t *testing.T) {
	results := make([]*BigIncastResult, len(syncProtoPoints))
	for i, pt := range syncProtoPoints {
		results[i] = syncProtoSmoke(t, pt)
	}
	ref := map[bool]*BigIncastResult{}
	for i, pt := range syncProtoPoints {
		r := results[i]
		if ref[pt.short] == nil {
			ref[pt.short] = r
			continue
		}
		want := ref[pt.short]
		if r.Frames != want.Frames || r.FramesAttempted != want.FramesAttempted ||
			r.Events != want.Events || r.Transmissions != want.Transmissions ||
			r.Completion != want.Completion {
			t.Fatalf("%s diverged from its latency group: frames %d/%d attempted %d/%d events %d/%d tx %d/%d done %v/%v",
				pt.label, r.Frames, want.Frames, r.FramesAttempted, want.FramesAttempted,
				r.Events, want.Events, r.Transmissions, want.Transmissions,
				r.Completion, want.Completion)
		}
	}
	// The latency axis lives in the engine, not the workload (one short
	// link off the completion critical path): the profiles must still
	// drive the global protocol into visibly different sync regimes, or
	// the short/long axis measures nothing.
	var globalShort, globalLong netsim.SyncStats
	for i, pt := range syncProtoPoints {
		if pt.proto == netsim.SyncGlobal && pt.workers == 4 {
			if pt.short {
				globalShort = results[i].Sync
			} else {
				globalLong = results[i].Sync
			}
		}
	}
	if globalShort.Windows <= globalLong.Windows {
		t.Fatalf("latency axis degenerate: global windows short=%d !> long=%d",
			globalShort.Windows, globalLong.Windows)
	}
}

// TestSyncProtoEITBeatsGlobalOnFigure is the figure-level version of the
// acceptance criterion: on the short-cut-link topology the per-channel EIT
// protocol must execute measurably fewer, wider windows than the global
// minimum, at identical workload output. On the uniform long core the two
// protocols may differ only modestly.
func TestSyncProtoEITBeatsGlobalOnFigure(t *testing.T) {
	short := map[string]*BigIncastResult{}
	long := map[string]*BigIncastResult{}
	for _, pt := range syncProtoPoints {
		if pt.workers != 4 {
			continue
		}
		res := syncProtoSmoke(t, pt)
		if pt.short {
			short[protoName(pt)] = res
		} else {
			long[protoName(pt)] = res
		}
	}
	eit, global := short["eit"].Sync, short["global"].Sync
	if eit.Barriers >= global.Barriers {
		t.Fatalf("short cut: EIT barriers %d !< global %d", eit.Barriers, global.Barriers)
	}
	if eit.Windows >= global.Windows {
		t.Fatalf("short cut: EIT windows %d !< global %d", eit.Windows, global.Windows)
	}
	if eit.MeanHorizon() <= global.MeanHorizon() {
		t.Fatalf("short cut: EIT mean horizon %v !> global %v", eit.MeanHorizon(), global.MeanHorizon())
	}
	// Control: on the uniform core the global minimum is already near the
	// per-channel bound, so EIT must not be WORSE there.
	leit, lglobal := long["eit"].Sync, long["global"].Sync
	if leit.Windows > lglobal.Windows {
		t.Fatalf("long cut: EIT windows %d > global %d", leit.Windows, lglobal.Windows)
	}
}

func protoName(pt syncProtoPoint) string {
	if pt.proto == netsim.SyncEIT {
		return "eit"
	}
	return "global"
}
