package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/topology"
)

// This file is the declarative sweep framework every figure runs on. A
// Spec describes a figure — its axis points, the metrics each point
// reports, and a per-(point, seed) trial function — and the generic engine
// executes it as an ensemble: every point runs at several independent
// seeds (runner.Grid fans the (point, seed) matrix across the worker
// pool), and each metric is reported as mean ± 95% confidence interval
// (stats.MeanCI95). The package-level registry enumerates every figure, so
// cmd/daiet-bench, the benchmark harness, and the determinism tests are a
// single registry-driven loop with no per-figure code.

// Point is one position on a figure's sweep axis. Single-panel figures use
// one point whose X is ignored.
type Point struct {
	Label string  `json:"label"`
	X     float64 `json:"x"`
}

// DefaultSeeds is how many independent seeds each point runs when
// RunConfig does not say otherwise — the ensemble behind every confidence
// interval.
const DefaultSeeds = 5

// Spec declares one figure for the sweep engine.
type Spec struct {
	// Name is the registry key and the -experiment flag value.
	Name string
	// Title is the printed header, typically citing the paper's band.
	Title string
	// XLabel names the axis column in the rendered table.
	XLabel string
	// Points is the sweep axis (at least one).
	Points []Point
	// Metrics lists the metric names every trial must report, in canonical
	// printing order.
	Metrics []string
	// Volatile names the subset of Metrics derived from host wall-clock
	// (reduce-phase timings): they are excluded from determinism
	// comparisons, which assert bit-identical results across parallelism
	// degrees and intra-sim worker counts.
	Volatile []string
	// Run executes one trial of pt under the given Trial parameters. It
	// returns a value for every declared metric.
	Run func(pt Point, tr Trial) (map[string]float64, error)
}

// Trial carries one trial's execution parameters into a Spec's Run.
type Trial struct {
	// Seed is the trial's derived seed (same seed, same results).
	Seed uint64
	// Scale in (0, 1] shrinks the problem size (1 = the paper-scale run;
	// smoke tests use small fractions).
	Scale float64
	// SimWorkers partitions each simulated fabric the trial builds into
	// this many parallel event-engine domains (1 = the sequential engine;
	// 0 = autotune: min(rack-cut units, GOMAXPROCS) per fabric). The
	// determinism contract covers it: every non-Volatile metric is
	// byte-identical at any worker count. Figures that do not build a
	// netsim fabric ignore it.
	SimWorkers int
	// Recut enables measured-skew dynamic re-partitioning of each fabric's
	// domain cut (zero value disables). Covered by the same determinism
	// contract: any re-cut schedule replays byte-identically.
	Recut topology.RecutConfig
}

// RunConfig parameterizes one Spec execution.
type RunConfig struct {
	Seed        uint64  // base seed; trial seeds derive via runner.ShardSeed
	Seeds       int     // trials per point (default DefaultSeeds)
	Scale       float64 // problem-size multiplier (default 1)
	Parallelism int     // runner degree (<= 0: GOMAXPROCS, 1: sequential)
	// SimWorkers is the intra-simulation parallelism: each trial's fabric
	// runs partitioned across this many event-engine domains. 0 (the
	// default) autotunes per fabric — min(rack-cut units, GOMAXPROCS), via
	// topology.Plan.AutoPartitions — and 1 forces the sequential engine.
	// It composes with Parallelism (trials × domains goroutines), and
	// never changes results — only wall-clock.
	SimWorkers int
	// Recut enables measured-skew dynamic re-partitioning on every fabric
	// the trials build (zero value disables). Results are unchanged by
	// construction; only the domain cut adapts to measured load.
	Recut topology.RecutConfig
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Seeds <= 0 {
		c.Seeds = DefaultSeeds
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.SimWorkers < 0 {
		c.SimWorkers = 0 // autotune
	}
	return c
}

// PointResult is one executed axis point: every declared metric as a
// multi-seed estimate.
type PointResult struct {
	Point
	Metrics map[string]stats.Estimate `json:"metrics"`
}

// FigureResult is one executed Spec, the unit the generic table printer
// and BENCH_results.json emitter consume.
type FigureResult struct {
	Name        string        `json:"name"`
	Title       string        `json:"title"`
	XLabel      string        `json:"x_label"`
	MetricNames []string      `json:"metric_names"`
	Seeds       int           `json:"seeds"`
	Scale       float64       `json:"scale"`
	Points      []PointResult `json:"points"`
}

// Execute runs the spec: every point at cfg.Seeds independent seeds, fanned
// out over the runner pool. Seeds are derived from the trial index alone,
// so all points share the same seed set — paired trials, which tightens
// comparisons along the axis. Results are deterministic at any parallelism
// degree (up to Volatile metrics).
func (s *Spec) Execute(cfg RunConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	if len(s.Points) == 0 {
		return nil, fmt.Errorf("experiments: spec %q has no points", s.Name)
	}
	grid, err := runner.Grid(len(s.Points), cfg.Seeds, cfg.Parallelism,
		func(point, trial int) (map[string]float64, error) {
			seed := runner.ShardSeed(cfg.Seed, trial)
			m, err := s.Run(s.Points[point], Trial{Seed: seed, Scale: cfg.Scale, SimWorkers: cfg.SimWorkers, Recut: cfg.Recut})
			if err != nil {
				return nil, fmt.Errorf("%s[%s] trial %d (seed %#x): %w",
					s.Name, s.Points[point].Label, trial, seed, err)
			}
			return m, nil
		})
	if err != nil {
		return nil, err
	}

	res := &FigureResult{
		Name:        s.Name,
		Title:       s.Title,
		XLabel:      s.XLabel,
		MetricNames: append([]string(nil), s.Metrics...),
		Seeds:       cfg.Seeds,
		Scale:       cfg.Scale,
	}
	for p, trials := range grid {
		pr := PointResult{Point: s.Points[p], Metrics: make(map[string]stats.Estimate, len(s.Metrics))}
		for _, name := range s.Metrics {
			samples := make([]float64, 0, len(trials))
			for trial, m := range trials {
				v, ok := m[name]
				if !ok {
					return nil, fmt.Errorf("experiments: %s[%s] trial %d (seed %#x): omitted metric %q",
						s.Name, s.Points[p].Label, trial, runner.ShardSeed(cfg.Seed, trial), name)
				}
				samples = append(samples, v)
			}
			pr.Metrics[name] = stats.MeanCI95(samples)
		}
		res.Points = append(res.Points, pr)
	}
	return res, nil
}

// WriteTable renders the figure as an aligned text table: one row per axis
// point, one "mean ±margin" column per metric. This is the only figure
// printing code in the repository; cmd/daiet-bench calls it for every
// registry entry.
func (r *FigureResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "\n==== %s ====\n", r.Title)
	fmt.Fprintf(w, "(%d seeds per point, mean ±95%% CI)\n", r.Seeds)
	xl := r.XLabel
	if xl == "" {
		xl = "point"
	}
	fmt.Fprintf(w, "%-16s", xl)
	for _, m := range r.MetricNames {
		fmt.Fprintf(w, " %*s", colWidth(m), m)
	}
	fmt.Fprintln(w)
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-16s", pt.Label)
		for _, m := range r.MetricNames {
			e := pt.Metrics[m]
			fmt.Fprintf(w, " %*s", colWidth(m), fmt.Sprintf("%.2f ±%.2f", e.Mean, e.Margin()))
		}
		fmt.Fprintln(w)
	}
}

// colWidth sizes a metric column to fit both its header and a formatted
// estimate.
func colWidth(metric string) int {
	const minWidth = 16
	if len(metric)+1 > minWidth {
		return len(metric) + 1
	}
	return minWidth
}

// Headline flattens the figure into the metric map tracked across PRs in
// BENCH_results.json: single-point figures use the bare metric names;
// sweeps qualify each name with its point label.
func (r *FigureResult) Headline() map[string]stats.Estimate {
	out := make(map[string]stats.Estimate, len(r.Points)*len(r.MetricNames))
	for _, pt := range r.Points {
		for name, e := range pt.Metrics {
			key := name
			if len(r.Points) > 1 {
				key = name + "_" + sanitizeKey(pt.Label)
			}
			out[key] = e
		}
	}
	return out
}

// sanitizeKey maps an axis label into a JSON-key-friendly token.
func sanitizeKey(label string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			return c
		case c >= 'A' && c <= 'Z':
			return c + ('a' - 'A')
		default:
			return '_'
		}
	}, label)
}

// DeterministicString renders everything the determinism contract covers:
// all metrics except the Volatile ones, in canonical order. The
// parallel-vs-sequential regression tests compare these strings.
func (r *FigureResult) DeterministicString(volatile []string) string {
	skip := make(map[string]bool, len(volatile))
	for _, v := range volatile {
		skip[v] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s seeds=%d scale=%g\n", r.Name, r.Seeds, r.Scale)
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%s x=%g:", pt.Label, pt.X)
		for _, m := range r.MetricNames {
			if skip[m] {
				continue
			}
			e := pt.Metrics[m]
			fmt.Fprintf(&b, " %s={n=%d mean=%v se=%v lo=%v hi=%v}", m, e.N, e.Mean, e.StdErr, e.Lo, e.Hi)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---- registry ----

var registry = map[string]*Spec{}

// Register adds a Spec to the package registry; every figure file calls it
// from init. Duplicate names and malformed specs are programming errors
// and panic at init time.
func Register(s *Spec) {
	switch {
	case s.Name == "":
		panic("experiments: Register: empty spec name")
	case s.Run == nil:
		panic(fmt.Sprintf("experiments: spec %q has no Run", s.Name))
	case len(s.Points) == 0:
		panic(fmt.Sprintf("experiments: spec %q has no points", s.Name))
	case len(s.Metrics) == 0:
		panic(fmt.Sprintf("experiments: spec %q declares no metrics", s.Name))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate spec %q", s.Name))
	}
	for _, v := range s.Volatile {
		found := false
		for _, m := range s.Metrics {
			found = found || m == v
		}
		if !found {
			panic(fmt.Sprintf("experiments: spec %q: volatile %q not in Metrics", s.Name, v))
		}
	}
	registry[s.Name] = s
}

// Specs returns every registered figure sorted by name.
func Specs() []*Spec {
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the Spec registered under name, or nil.
func Lookup(name string) *Spec { return registry[name] }

// scaledInt shrinks a full-size quantity by scale with a floor, the shared
// helper spec Run functions use to map the generic scale knob onto their
// problem-size parameters.
func scaledInt(full int, scale float64, floor int) int {
	n := int(float64(full) * scale)
	if n < floor {
		n = floor
	}
	return n
}
