package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/telemetry"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// Tenants is the multi-tenant slicing experiment behind the hard-carve
// reserve model: two jobs share one shared-memory switch, each under its
// own pool traffic class (netsim.PoolConfig.Classes, threaded through
// controller.TreeOptions.DataClass/AckClass). Tenant 0, the victim, is a
// latency-sensitive streaming job: a few senders pacing small chunks into
// their aggregation tree, sized to stay inside the class-0 carved floor at
// all times. Tenant 1, the aggressor, is a synchronized incast: many
// senders blasting at t=0 under a high Dynamic-Threshold alpha.
//
// The sweep crosses the victim's carve size with the aggressor's alpha.
// Under the old threshold-exemption model the reserve was advisory — the
// aggressor's borrowed bytes physically consumed the victim's floor, and
// the victim was pool-rejected inside its own reserve (the c0 point
// reproduces that regime: no floor, pure DT). With hard carving, any
// nonzero floor covering the victim's working set drives its drop rate to
// zero regardless of aggressor alpha, which is the property the figure
// demonstrates.
//
// Everything is deterministic in (Seed, config): completions are virtual
// time, per-tenant drop attribution comes from the pool's per-class
// counters, and the registry-wide determinism suites hold the results
// byte-identical at any -sim-workers value and under re-cut schedules.

// TenantsConfig sizes one two-tenant trial.
type TenantsConfig struct {
	Seed uint64

	// Victim tenant: paced streaming fan-in (defaults: 4 senders, 240
	// pairs each, chunks of 20 pairs every 100 µs).
	VictimSenders int
	VictimPairs   int
	// VictimReserve is the swept per-port class-0 carve; -1 means an
	// explicit zero floor (0 picks the 2 KiB default, as in IncastConfig).
	VictimReserve int
	VictimAlpha   float64 // default 1

	// Aggressor tenant: synchronized incast (defaults: 16 senders, 600
	// pairs each). Class 1 carries no floor; AggAlpha is swept (default 8).
	// AggVocab (default 8192) is deliberately wider than the 4096-cell
	// aggregation table, so the aggressor's stream compresses poorly: the
	// switch spills continuously toward the aggressor's reducer, whose
	// deliberately slow downlink turns the fan-in into standing pressure
	// on the shared memory — the classic incast regime, inside the pool.
	AggSenders int
	AggPairs   int
	AggAlpha   float64
	AggVocab   int

	Vocab     int // the victim's key space (default 512)
	PoolBytes int // switch shared memory (default 64 KiB)
	// QueueBytes sizes the poolless host uplinks (default 64 MiB).
	QueueBytes int

	SimWorkers int
	Recut      topology.RecutConfig

	// VictimOnly drops the aggressor's traffic and tree: the uncontended
	// reference the completion-inflation metric divides by.
	VictimOnly bool

	// Telemetry, when non-nil, records the shared switch's occupancy
	// timeline during the run — per-class pool gauges are the figure's
	// victim-vs-aggressor money shot. Nil leaves the hot path untouched.
	Telemetry *telemetry.Config
}

func (c TenantsConfig) withDefaults() TenantsConfig {
	if c.VictimSenders == 0 {
		c.VictimSenders = 4
	}
	if c.VictimPairs == 0 {
		c.VictimPairs = 240
	}
	switch {
	case c.VictimReserve == 0:
		c.VictimReserve = 2 << 10
	case c.VictimReserve < 0:
		c.VictimReserve = 0
	}
	if c.VictimAlpha == 0 {
		c.VictimAlpha = 1
	}
	if c.AggSenders == 0 {
		c.AggSenders = 16
	}
	if c.AggPairs == 0 {
		c.AggPairs = 600
	}
	if c.AggAlpha == 0 {
		c.AggAlpha = 8
	}
	if c.AggVocab == 0 {
		c.AggVocab = 8192
	}
	if c.Vocab == 0 {
		c.Vocab = 512
	}
	if c.PoolBytes == 0 {
		c.PoolBytes = 64 << 10
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 64 << 20
	}
	return c
}

// TenantsResult is one trial's outcome.
type TenantsResult struct {
	Cfg TenantsConfig

	// Per-tenant admission accounting at the pooled switch egress. Each
	// tenant's hosts are disjoint, so its switch ports carry only its own
	// traffic and per-port counters attribute cleanly.
	VictimAttempted, VictimDropped uint64
	AggAttempted, AggDropped       uint64

	// Per-class pool drop attribution (PoolStats.Classes) — cross-checked
	// against the per-port counters above.
	VictimPoolDrops, AggPoolDrops uint64

	// Completions are per-tenant virtual times of the last END.
	VictimCompletion, AggCompletion netsim.Time

	// Timeline is the recorded switch timeline, non-nil only when
	// Cfg.Telemetry asked for one.
	Timeline *telemetry.Timeline
}

// Tenants runs one two-tenant round and verifies both tenants' aggregates
// are exact despite any loss (both trees run the reliable gate).
func Tenants(cfg TenantsConfig) (*TenantsResult, error) {
	cfg = cfg.withDefaults()

	sw := topology.SwitchBase
	plan := &topology.Plan{Name: "tenants", Switches: []netsim.NodeID{sw}}
	addHosts := func(n int, lc netsim.LinkConfig) []netsim.NodeID {
		var hs []netsim.NodeID
		for i := 0; i < n; i++ {
			h := topology.HostBase + netsim.NodeID(len(plan.Hosts))
			plan.Hosts = append(plan.Hosts, h)
			plan.Links = append(plan.Links, topology.Link{A: h, B: sw, Cfg: lc})
			hs = append(hs, h)
		}
		return hs
	}
	fat := netsim.LinkConfig{QueueBytes: cfg.QueueBytes}
	victims := addHosts(cfg.VictimSenders, fat)
	victimReducer := addHosts(1, fat)[0]
	aggs := addHosts(cfg.AggSenders, fat)
	// The aggressor reducer's downlink is the incast bottleneck: 100 Mb/s
	// against 10 Gb/s sender uplinks, so the spill/flush stream backs up
	// inside the switch's shared memory instead of draining instantly.
	aggReducer := addHosts(1, netsim.LinkConfig{
		QueueBytes: cfg.QueueBytes, BandwidthBps: 100_000_000})[0]

	// Class 0: the victim's carved slice. Class 1: the aggressor's
	// floorless DT share. The carve is per (port, class), so every switch
	// port reserves VictimReserve bytes the aggressor physically cannot
	// borrow.
	plan.SetPool(sw, netsim.PoolConfig{
		TotalBytes: cfg.PoolBytes,
		Classes: []netsim.ClassConfig{
			{ReserveBytes: cfg.VictimReserve, Alpha: cfg.VictimAlpha},
			{ReserveBytes: 0, Alpha: cfg.AggAlpha},
		},
	})

	nw := netsim.New(cfg.Seed)
	fb, err := buildDaietFabric(nw, plan)
	if err != nil {
		return nil, err
	}
	if err := fb.fab.PartitionsDynamic(cfg.SimWorkers, cfg.Recut); err != nil {
		return nil, err
	}
	ctl := controller.New(fb.fab, fb.programs)
	if err := ctl.InstallRouting(); err != nil {
		return nil, err
	}
	sum, err := core.FuncByID(core.AggSum)
	if err != nil {
		return nil, err
	}

	res := &TenantsResult{Cfg: cfg}

	// installTenant wires one tenant: reliable tree under its classes, a
	// root-ACKing collector stamping the tenant's completion, and reliable
	// senders over the given workloads.
	type tenant struct {
		senders []*core.ReliableSender
		col     *core.Collector
		want    map[string]uint32
		feedErr []error
	}
	installTenant := func(idx int, workers []netsim.NodeID, reducer netsim.NodeID,
		pairs, vocab int, rcfg core.ReliableConfig, rootReplay int,
		completion *netsim.Time, pace time.Duration, chunk int) (*tenant, error) {

		tplan, err := ctl.PlanTree(reducer, workers)
		if err != nil {
			return nil, err
		}
		if err := ctl.InstallTree(tplan, controller.TreeOptions{
			Agg:        core.AggSum,
			TableSize:  4096,
			Reliable:   true,
			RootReplay: rootReplay,
			RootRTO:    500 * time.Microsecond,
			DataClass:  idx,
			AckClass:   idx,
			Tenant:     idx,
		}); err != nil {
			return nil, err
		}
		tn := &tenant{want: map[string]uint32{}, feedErr: make([]error, len(workers))}
		tn.col = core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, tplan.RootChildren())
		tn.col.Attach(fb.hosts[reducer])
		tn.col.EnableRootAck()
		tn.col.OnComplete = func() { *completion = nw.NodeNow(reducer) }
		for i, w := range workers {
			mux := core.NewAckMux(fb.hosts[w])
			s, err := core.NewReliableSender(fb.hosts[w], tplan.TreeID, reducer,
				wire.DefaultGeometry, 10, rcfg)
			if err != nil {
				return nil, err
			}
			mux.Register(s)
			tn.senders = append(tn.senders, s)
			stream, _ := senderWorkload(cfg.Seed, w, pairs, vocab, tn.want)
			slot := &tn.feedErr[i]
			if pace <= 0 {
				// Synchronized: the whole stream queues at t=0.
				for _, kv := range stream {
					if err := s.Send([]byte(kv.Key), kv.Value); err != nil {
						return nil, err
					}
				}
				s.End()
				continue
			}
			// Paced: fixed-size chunks on the sender's own clock, so the
			// tenant's in-flight bytes stay bounded by design.
			for c := 0; c*chunk < len(stream); c++ {
				part := stream[c*chunk:]
				if len(part) > chunk {
					part = part[:chunk]
				}
				last := (c+1)*chunk >= len(stream)
				nw.NodeAfter(w, netsim.Time(c)*netsim.Duration(pace), func() {
					for _, kv := range part {
						if err := s.Send([]byte(kv.Key), kv.Value); err != nil {
							*slot = err
							return
						}
					}
					if last {
						s.End()
					}
				})
			}
		}
		return tn, nil
	}

	victimCfg := core.ReliableConfig{Window: 4, RTO: 500 * time.Microsecond, MaxRetries: 10_000}
	victim, err := installTenant(0, victims, victimReducer, cfg.VictimPairs, cfg.Vocab,
		victimCfg, 8, &res.VictimCompletion, 100*time.Microsecond, 20)
	if err != nil {
		return nil, err
	}
	var aggressor *tenant
	if !cfg.VictimOnly {
		// RootReplay 512 lets the aggressor keep ~68 KB of spill/flush
		// traffic in flight — more than the whole shared memory, so the
		// only thing bounding its occupancy is the pool's admission.
		aggCfg := core.ReliableConfig{Window: 32, RTO: 500 * time.Microsecond, MaxRetries: 10_000}
		aggressor, err = installTenant(1, aggs, aggReducer, cfg.AggPairs, cfg.AggVocab,
			aggCfg, 512, &res.AggCompletion, 0, 0)
		if err != nil {
			return nil, err
		}
	}

	var rec *telemetry.Recorder
	if cfg.Telemetry != nil {
		rec = telemetry.NewRecorder(nw, *cfg.Telemetry)
		if err := rec.WatchSwitch(sw, fb.programs[sw]); err != nil {
			return nil, fmt.Errorf("experiments: tenants: %w", err)
		}
		rec.EnablePathTrace([]netsim.NodeID{sw})
		rec.Start()
		if err := rec.RunSampled(400_000_000); err != nil {
			return nil, fmt.Errorf("experiments: tenants: %w", err)
		}
		res.Timeline = rec.Timeline()
	} else if err := nw.Run(400_000_000); err != nil {
		return nil, fmt.Errorf("experiments: tenants: %w", err)
	}

	finish := func(name string, tn *tenant) error {
		for i, err := range tn.feedErr {
			if err != nil {
				return fmt.Errorf("experiments: tenants: %s sender %d feed: %w", name, i, err)
			}
		}
		for i, s := range tn.senders {
			if !s.Done() {
				return fmt.Errorf("experiments: tenants: %s sender %d incomplete: %v", name, i, s.Err())
			}
		}
		if !tn.col.Complete() {
			return fmt.Errorf("experiments: tenants: %s collector incomplete (%+v)", name, tn.col.Stats)
		}
		if err := verifyExactOnce(tn.col, tn.want); err != nil {
			return fmt.Errorf("experiments: tenants: %s: %w", name, err)
		}
		return nil
	}
	if err := finish("victim", victim); err != nil {
		return nil, err
	}
	if aggressor != nil {
		if err := finish("aggressor", aggressor); err != nil {
			return nil, err
		}
	}

	// Per-tenant admission accounting at the pooled switch egress: the
	// ACK streams back to the tenant's senders plus the flush stream to
	// its reducer.
	account := func(hostsOf []netsim.NodeID, reducer netsim.NodeID) (attempted, dropped uint64) {
		for _, h := range append(append([]netsim.NodeID(nil), hostsOf...), reducer) {
			p := fb.fab.PortTo(sw, h)
			st := nw.PortStats(sw, p)
			attempted += st.TxFrames + st.DropsPool + st.DropsFull + st.DropsLoss
			dropped += st.DropsPool + st.DropsFull + st.DropsLoss
		}
		return attempted, dropped
	}
	res.VictimAttempted, res.VictimDropped = account(victims, victimReducer)
	res.AggAttempted, res.AggDropped = account(aggs, aggReducer)

	ps, ok := nw.PoolStats(sw)
	if !ok || len(ps.Classes) != 2 {
		return nil, fmt.Errorf("experiments: tenants: switch pool missing (%+v)", ps)
	}
	res.VictimPoolDrops = ps.Classes[0].Drops
	res.AggPoolDrops = ps.Classes[1].Drops
	// Attribution consistency: each tenant's hosts are disjoint, so the
	// per-class drop counters must equal the per-port sums.
	if vp := portPoolDrops(nw, fb.fab, sw, victims, victimReducer); vp != res.VictimPoolDrops {
		return nil, fmt.Errorf("experiments: tenants: victim drop attribution: class %d, ports %d",
			res.VictimPoolDrops, vp)
	}
	if ap := portPoolDrops(nw, fb.fab, sw, aggs, aggReducer); ap != res.AggPoolDrops {
		return nil, fmt.Errorf("experiments: tenants: aggressor drop attribution: class %d, ports %d",
			res.AggPoolDrops, ap)
	}
	return res, nil
}

// portPoolDrops sums DropsPool over the switch ports serving one tenant's
// hosts.
func portPoolDrops(nw *netsim.Network, fab *topology.Fabric, sw netsim.NodeID,
	hosts []netsim.NodeID, reducer netsim.NodeID) uint64 {

	var drops uint64
	for _, h := range append(append([]netsim.NodeID(nil), hosts...), reducer) {
		drops += nw.PortStats(sw, fab.PortTo(sw, h)).DropsPool
	}
	return drops
}

// tenantsRefCache memoizes the uncontended victim-only reference runs, one
// per config — every sweep point of a trial divides by the same reference.
var tenantsRefCache sync.Map // TenantsConfig -> *TenantsResult

func tenantsReference(cfg TenantsConfig) (*TenantsResult, error) {
	cfg.VictimOnly = true
	cfg.Telemetry = nil // the reference run is not recorded (and must cache-key cleanly)
	if v, ok := tenantsRefCache.Load(cfg); ok {
		return v.(*TenantsResult), nil
	}
	res, err := Tenants(cfg)
	if err != nil {
		return nil, err
	}
	tenantsRefCache.Store(cfg, res)
	return res, nil
}

func init() {
	// Sweep: victim carve size × aggressor alpha. The c0 row reproduces
	// the pre-carve regime (reserve floors that do not hold); the a8 row
	// isolates how much of the protection the carve provides vs a gentler
	// aggressor threshold.
	// At alpha 1024 the aggressor's DT equilibrium leaves free ≈ q/alpha —
	// a few dozen bytes, less than one frame — so a floorless victim is
	// starved outright, the regime the old threshold-exemption model
	// produced at ANY high alpha once free hit zero.
	sweep := []struct {
		label string
		carve int // -1: explicit zero floor
		alpha float64
	}{
		{"c0/a1024", -1, 1024},
		{"c512/a1024", 512, 1024},
		{"c1K/a1024", 1024, 1024},
		{"c2K/a1024", 2048, 1024},
		{"c2K/a8", 2048, 8},
	}
	pts := make([]Point, len(sweep))
	byLabel := make(map[string]int, len(sweep))
	for i, s := range sweep {
		carve := s.carve
		if carve < 0 {
			carve = 0
		}
		pts[i] = Point{Label: s.label, X: float64(carve)}
		byLabel[s.label] = i
	}
	Register(&Spec{
		Name:   "tenants",
		Title:  "Extension: multi-tenant fabric slicing — hard-carved reserves isolate a streaming victim from an incast aggressor",
		XLabel: "victim carve",
		Points: pts,
		Metrics: []string{
			"victim_drop_rate_pct",
			"victim_completion_inflation_x",
			"victim_pool_drops",
			"aggressor_pool_drops",
			"jain_fairness",
		},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			s := sweep[byLabel[pt.Label]]
			base := TenantsConfig{
				Seed:          tr.Seed,
				VictimSenders: scaledInt(4, tr.Scale, 2),
				VictimPairs:   scaledInt(240, tr.Scale, 40),
				AggSenders:    scaledInt(16, tr.Scale, 4),
				AggPairs:      scaledInt(600, tr.Scale, 80),
				VictimReserve: s.carve,
				AggAlpha:      s.alpha,
				SimWorkers:    tr.SimWorkers,
				Recut:         tr.Recut,
			}
			res, err := Tenants(base)
			if err != nil {
				return nil, err
			}
			ref, err := tenantsReference(base)
			if err != nil {
				return nil, err
			}
			// Jain fairness over each tenant's delivered fraction at the
			// shared switch: 1.0 when the slice protects both equally.
			fair := jainIndex([]float64{
				stats.Ratio(float64(res.VictimAttempted-res.VictimDropped), float64(res.VictimAttempted)),
				stats.Ratio(float64(res.AggAttempted-res.AggDropped), float64(res.AggAttempted)),
			})
			return map[string]float64{
				"victim_drop_rate_pct":          100 * stats.Ratio(float64(res.VictimDropped), float64(res.VictimAttempted)),
				"victim_completion_inflation_x": stats.Ratio(float64(res.VictimCompletion), float64(ref.VictimCompletion)),
				"victim_pool_drops":             float64(res.VictimPoolDrops),
				"aggressor_pool_drops":          float64(res.AggPoolDrops),
				"jain_fairness":                 fair,
			}, nil
		},
	})
}
