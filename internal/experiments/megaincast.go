package experiments

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/topology"
)

// The megaincast figure is the engine-scale proof behind PR 7 (ROADMAP:
// million-packet fabrics): 1024 senders across 16 racks and 2 spines, all
// feeding one hop-by-hop reliable aggregation tree through shared-memory
// (Dynamic-Threshold) switch buffers — the same workload BigIncast runs,
// pushed to the scale where the event engine itself is the experiment.
//
// The axis is the engine configuration, not the workload: 1, 2 and 4
// event-engine domains, plus 4 domains with measured-skew dynamic
// re-partitioning live (seeded jittered schedule, re-cut on any measured
// imbalance). Every workload metric — frames simulated, events executed,
// drop rate, completion time — must be byte-identical down the whole
// column; TestMegaIncastCrossPointIdentical asserts it, and the figure
// table makes the invariant visible. events_per_sec is the one volatile
// metric (host wall-clock); peak_arena_kb and recuts_applied are
// deterministic per point but intentionally vary along the axis (arena
// peaks are per-domain, re-cuts only exist on the -recut point), so the
// cross-point identity check covers the workload columns only.

// megaIncastPoint pins one engine configuration on the axis.
type megaIncastPoint struct {
	label   string
	workers int
	recut   bool
}

var megaIncastPoints = []megaIncastPoint{
	{"1w", 1, false},
	{"2w", 2, false},
	{"4w", 4, false},
	{"4w-recut", 4, true},
}

// megaIncastConfig sizes one trial. The workload is identical at every
// point — only the engine cut differs.
func megaIncastConfig(seed uint64, scale float64, pt megaIncastPoint) BigIncastConfig {
	cfg := BigIncastConfig{
		Seed:           seed,
		Senders:        scaledInt(1024, scale, 64),
		Racks:          scaledInt(16, scale, 4),
		Spines:         2,
		PairsPerSender: scaledInt(24, scale, 8),
		Vocab:          scaledInt(8192, scale, 512),
		TableSize:      scaledInt(2048, scale, 128),
		PoolBytes:      512 << 10,
		Alpha:          2,
		SimWorkers:     pt.workers,
	}
	if pt.recut {
		cfg.Recut = topology.RecutConfig{
			Every:      200 * time.Microsecond,
			MinSkewPct: 5,
			Seed:       seed ^ 0x9e3779b97f4a7c15,
		}
	}
	return cfg
}

func init() {
	pts := make([]Point, len(megaIncastPoints))
	for i, p := range megaIncastPoints {
		pts[i] = Point{Label: p.label, X: float64(i)}
	}
	Register(&Spec{
		Name: "megaincast",
		Title: "Extension: million-frame engine — 1024 senders / 16 racks / 2 spines through the reliable " +
			"tree, identical results at 1/2/4 domains and under dynamic re-partitioning",
		XLabel: "engine",
		Points: pts,
		Metrics: []string{
			"frames_total",
			"events_total",
			"events_per_sec",
			"peak_arena_kb",
			"drop_rate_pct",
			"completion_ms",
			"recuts_applied",
		},
		// events_per_sec divides deterministic event counts by host
		// wall-clock: real between runs, excluded from determinism
		// comparisons like parallel-sim's wall_ms.
		Volatile: []string{"events_per_sec"},
		Run: func(p Point, tr Trial) (map[string]float64, error) {
			var mp megaIncastPoint
			found := false
			for i := range megaIncastPoints {
				if pts[i].Label == p.Label {
					mp, found = megaIncastPoints[i], true
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: megaincast: unknown point %q", p.Label)
			}
			// The point pins the engine cut; tr.SimWorkers/tr.Recut are
			// deliberately ignored — the axis *is* the engine knob.
			cfg := megaIncastConfig(tr.Seed, tr.Scale, mp)
			t0 := time.Now() //simlint:wallclock measures the declared-volatile events_per_sec metric only
			res, err := BigIncast(cfg)
			if err != nil {
				return nil, err
			}
			wall := time.Since(t0).Seconds() //simlint:wallclock declared-volatile events_per_sec metric
			if mp.recut && res.Recuts == 0 {
				return nil, fmt.Errorf("experiments: megaincast: %s applied no dynamic re-cut", p.Label)
			}
			return map[string]float64{
				"frames_total":   float64(res.Frames),
				"events_total":   float64(res.Events),
				"events_per_sec": stats.Ratio(float64(res.Events), wall),
				"peak_arena_kb":  float64(res.ArenaStats.Bytes) / 1024,
				"drop_rate_pct":  res.DropRatePct,
				"completion_ms":  float64(res.Completion) / 1e6,
				"recuts_applied": float64(res.Recuts),
			}, nil
		},
	})
}
