// Package experiments regenerates every figure in the paper's evaluation.
// It is the single source of truth shared by cmd/daiet-bench (pretty
// printing), bench_test.go (testing.B harnesses) and EXPERIMENTS.md
// (paper-vs-measured records).
package experiments

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/daiet/daiet/internal/graphgen"
	"github.com/daiet/daiet/internal/mlps"
	"github.com/daiet/daiet/internal/pregel"
	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
)

// OverlapFigure is Figures 1(a)/1(b): per-step overlap plus headline
// numbers.
type OverlapFigure struct {
	Name    string
	Series  *stats.Series // x: step, y: overlap %
	Summary stats.Summary
	// Loss tracks training progress, a sanity signal that the workload is
	// real (first and last values).
	FirstLoss, LastLoss float64
	FinalAccuracy       float64
}

// overlapFigure runs one training config and packages the series.
func overlapFigure(name string, cfg mlps.TrainConfig, samples int) (*OverlapFigure, error) {
	ds := mlps.SyntheticMNIST(cfg.Seed, samples)
	res, err := mlps.Train(ds, cfg)
	if err != nil {
		return nil, err
	}
	if len(res.Metrics) == 0 {
		// Guard the first/last indexing below: a run that produced no metric
		// rows has nothing to report and must not panic the harness.
		return nil, fmt.Errorf("experiments: %s: training returned no metric rows (config %+v)",
			name, cfg)
	}
	fig := &OverlapFigure{Name: name, Series: stats.NewSeries(name)}
	var ys []float64
	for _, m := range res.Metrics {
		fig.Series.Add(float64(m.Step), m.OverlapPct)
		ys = append(ys, m.OverlapPct)
	}
	fig.Summary = stats.Summarize(ys)
	fig.FirstLoss = res.Metrics[0].Loss
	fig.LastLoss = res.Metrics[len(res.Metrics)-1].Loss
	fig.FinalAccuracy = res.FinalAccuracy
	return fig, nil
}

// Figure1a reproduces Figure 1(a): SGD (mini-batch 3, 5 workers) overlap
// over 200 steps. The paper reports ~34-50%, average ~42.5%.
func Figure1a(seed uint64, steps int) (*OverlapFigure, error) {
	cfg := mlps.Figure1aConfig(seed)
	if steps > 0 {
		cfg.Steps = steps
	}
	return overlapFigure("sgd-overlap", cfg, 4000)
}

// Figure1b reproduces Figure 1(b): Adam (mini-batch 100, 5 workers) overlap
// over 200 steps. The paper reports ~62-72%, average ~66.5%.
func Figure1b(seed uint64, steps int) (*OverlapFigure, error) {
	cfg := mlps.Figure1bConfig(seed)
	if steps > 0 {
		cfg.Steps = steps
	}
	return overlapFigure("adam-overlap", cfg, 4000)
}

// WorkerSweepPoint is one point of the worker-count side experiment.
type WorkerSweepPoint struct {
	Workers    int
	OverlapPct float64
}

// Figure1WorkerSweep reproduces the paper's side observation: "increasing
// the number of workers from two to five ... the overlap increases". Each
// worker count is an independent training run; parallelism (<= 0 means
// GOMAXPROCS) shards them across the runner's pool. The dataset is shared
// read-only, and mlps.Train seeds each run from cfg.Seed alone, so results
// are identical at any degree.
func Figure1WorkerSweep(seed uint64, steps, parallelism int) ([]WorkerSweepPoint, error) {
	ds := mlps.SyntheticMNIST(seed, 2500)
	workerCounts := []int{2, 3, 4, 5}
	return runner.Map(len(workerCounts), parallelism, func(shard int) (WorkerSweepPoint, error) {
		cfg := mlps.Figure1aConfig(seed)
		cfg.Workers = workerCounts[shard]
		if steps > 0 {
			cfg.Steps = steps
		} else {
			cfg.Steps = 100
		}
		res, err := mlps.Train(ds, cfg)
		if err != nil {
			return WorkerSweepPoint{}, err
		}
		return WorkerSweepPoint{Workers: cfg.Workers, OverlapPct: mlps.MeanOverlap(res.Metrics)}, nil
	})
}

// GraphFigure is Figure 1(c): per-iteration traffic reduction ratios for
// the three graph algorithms.
type GraphFigure struct {
	PageRank *stats.Series
	SSSP     *stats.Series
	WCC      *stats.Series
	// Edges/Vertices describe the generated graph.
	Vertices, Edges int
}

// Figure1cConfig sizes the graph experiment.
type Figure1cConfig struct {
	Seed       uint64
	Scale      int // 2^Scale vertices (default 16; LiveJournal would be ~23)
	EdgeFactor int // default 14 (LiveJournal's edges/vertex)
	Workers    int // default 4 (paper: GPS on 4 machines)
	Iterations int // default 10 (Figure 1(c) x-axis)
	// Parallelism shards the three graph algorithms across the runner's
	// pool (<= 0: GOMAXPROCS, 1: sequential).
	Parallelism int
}

func (c Figure1cConfig) withDefaults() Figure1cConfig {
	if c.Scale == 0 {
		c.Scale = 16
	}
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 14
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	return c
}

// Figure1c reproduces Figure 1(c): PageRank flat ~0.9, SSSP climbing from
// near zero, WCC starting high and decaying; overall band 0.48-0.93 in the
// paper.
func Figure1c(cfg Figure1cConfig) (*GraphFigure, error) {
	cfg = cfg.withDefaults()
	g, err := graphgen.RMAT(graphgen.RMATConfig{
		Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pcfg := pregel.Config{Workers: cfg.Workers, MaxSupersteps: cfg.Iterations}

	fig := &GraphFigure{
		PageRank: stats.NewSeries("PageRank"),
		SSSP:     stats.NewSeries("SSSP"),
		WCC:      stats.NewSeries("WCC"),
		Vertices: g.N,
		Edges:    g.NumEdges(),
	}
	// Materialize the graph's lazily-cached views before fanning out: the
	// shards below share g read-only and must not race on the caches.
	g.Und()
	src := g.HighestDegreeVertex()

	algos := []func() ([]pregel.SuperstepStats, error){
		func() ([]pregel.SuperstepStats, error) { return pregel.PageRank(g, pcfg).Stats, nil },
		func() ([]pregel.SuperstepStats, error) {
			res, err := pregel.SSSP(g, src, pcfg)
			if err != nil {
				return nil, err
			}
			return res.Stats, nil
		},
		func() ([]pregel.SuperstepStats, error) { return pregel.WCC(g, pcfg).Stats, nil },
	}
	perAlgo, err := runner.Map(len(algos), cfg.Parallelism,
		func(shard int) ([]pregel.SuperstepStats, error) { return algos[shard]() })
	if err != nil {
		return nil, err
	}
	for i, s := range []*stats.Series{fig.PageRank, fig.SSSP, fig.WCC} {
		for _, st := range perAlgo[i] {
			s.Add(float64(st.Superstep), st.TrafficReduction)
		}
	}
	return fig, nil
}

// ---- sweep-framework specs ----

// fig1cGraphCache memoizes R-MAT graphs across the fig1c points: seeds are
// paired across the three algorithm points, so each trial would otherwise
// rebuild the identical graph three times. The graph's one lazily-cached
// view (the undirected adjacency, Und) is materialized before storing, so
// concurrent points share the cached graph read-only.
var fig1cGraphCache sync.Map // graphgen.RMATConfig -> *graphgen.Graph

func fig1cGraph(cfg graphgen.RMATConfig) (*graphgen.Graph, error) {
	if v, ok := fig1cGraphCache.Load(cfg); ok {
		return v.(*graphgen.Graph), nil
	}
	g, err := graphgen.RMAT(cfg)
	if err != nil {
		return nil, err
	}
	g.Und()
	fig1cGraphCache.Store(cfg, g)
	return g, nil
}

// overlapSpec builds the Spec shared by Figures 1(a) and 1(b): one axis
// point, multi-seed training ensembles.
func overlapSpec(name, label, title string, mkCfg func(seed uint64) mlps.TrainConfig) *Spec {
	return &Spec{
		Name:    name,
		Title:   title,
		XLabel:  "optimizer",
		Points:  []Point{{Label: label, X: 0}},
		Metrics: []string{"mean_overlap_pct", "final_accuracy", "first_loss", "last_loss"},
		Run: func(_ Point, tr Trial) (map[string]float64, error) {
			cfg := mkCfg(tr.Seed)
			cfg.Steps = scaledInt(cfg.Steps, tr.Scale, 10)
			// The dataset must cover one full step for every worker plus
			// held-out samples, whatever the scale.
			samples := scaledInt(4000, tr.Scale, 2*cfg.Workers*cfg.BatchSize)
			fig, err := overlapFigure(name, cfg, samples)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"mean_overlap_pct": fig.Summary.Mean,
				"final_accuracy":   fig.FinalAccuracy,
				"first_loss":       fig.FirstLoss,
				"last_loss":        fig.LastLoss,
			}, nil
		},
	}
}

func init() {
	Register(overlapSpec("fig1a", "sgd",
		"Figure 1(a): SGD (mini-batch 3, 5 workers) tensor-update overlap (paper ~42.5%, band 34-50%)",
		mlps.Figure1aConfig))
	Register(overlapSpec("fig1b", "adam",
		"Figure 1(b): Adam (mini-batch 100, 5 workers) tensor-update overlap (paper ~66.5%, band 62-72%)",
		mlps.Figure1bConfig))

	Register(&Spec{
		Name:    "fig1-workers",
		Title:   "Figure 1 side experiment: overlap vs worker count (paper: increases from 2 to 5)",
		XLabel:  "workers",
		Points:  []Point{{Label: "2w", X: 2}, {Label: "3w", X: 3}, {Label: "4w", X: 4}, {Label: "5w", X: 5}},
		Metrics: []string{"overlap_pct"},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			cfg := mlps.Figure1aConfig(tr.Seed)
			cfg.Workers = int(pt.X)
			cfg.Steps = scaledInt(100, tr.Scale, 10)
			ds := mlps.SyntheticMNIST(tr.Seed, scaledInt(2500, tr.Scale, 300))
			res, err := mlps.Train(ds, cfg)
			if err != nil {
				return nil, err
			}
			return map[string]float64{"overlap_pct": mlps.MeanOverlap(res.Metrics)}, nil
		},
	})

	Register(&Spec{
		Name:   "fig1c",
		Title:  "Figure 1(c): graph analytics potential traffic reduction (paper band 0.48-0.93)",
		XLabel: "algorithm",
		Points: []Point{{Label: "pagerank", X: 0}, {Label: "sssp", X: 1}, {Label: "wcc", X: 2}},
		Metrics: []string{
			"mean_traffic_reduction", "start_traffic_reduction",
		},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			// RMAT sizes in powers of two, so the linear scale knob maps to
			// the nearest covering exponent: scale 1 is the paper's 2^16
			// vertices, smaller scales shrink proportionally (floor 2^10).
			vertices := scaledInt(1<<16, tr.Scale, 1<<10)
			g, err := fig1cGraph(graphgen.RMATConfig{
				Scale:      bits.Len(uint(vertices - 1)),
				EdgeFactor: 14,
				Seed:       tr.Seed,
			})
			if err != nil {
				return nil, err
			}
			pcfg := pregel.Config{Workers: 4, MaxSupersteps: 10}
			var sts []pregel.SuperstepStats
			switch pt.Label {
			case "pagerank":
				sts = pregel.PageRank(g, pcfg).Stats
			case "sssp":
				res, err := pregel.SSSP(g, g.HighestDegreeVertex(), pcfg)
				if err != nil {
					return nil, err
				}
				sts = res.Stats
			case "wcc":
				sts = pregel.WCC(g, pcfg).Stats
			default:
				return nil, fmt.Errorf("experiments: unknown graph algorithm %q", pt.Label)
			}
			if len(sts) == 0 {
				return nil, fmt.Errorf("experiments: %s produced no supersteps", pt.Label)
			}
			var sum float64
			for _, st := range sts {
				sum += st.TrafficReduction
			}
			return map[string]float64{
				"mean_traffic_reduction":  sum / float64(len(sts)),
				"start_traffic_reduction": sts[0].TrafficReduction,
			}, nil
		},
	})
}
