package experiments

import (
	"fmt"
	"time"

	"github.com/daiet/daiet/internal/netsim"
)

// The syncproto figure is the engine-scheduling proof behind the
// per-channel horizon redesign: the same fabric-scale incast, executed
// under the two conservative synchronization protocols the partitioned
// engine supports — the old global-minimum lookahead (every domain advances
// to the fleet-wide earliest event plus the shortest cut link) and
// per-channel earliest-input-time horizons (each domain bounded only by
// the lookahead paths that can actually reach it; empty peer heaps count
// as +∞).
//
// The axis crosses the cut-link latency profile with the protocol and the
// domain count. The "short" points shorten exactly ONE core link to 200ns
// while the rest of the core sits at 20µs — the adversarial regime for the
// global scheme, whose single lookahead collapses to the shortest cut link
// fleet-wide. Per-channel horizons confine that cost to the one channel
// that has it, which shows up directly in the metrics: fewer barriers,
// fewer (and wider) execution windows, fewer idle windows. The "long"
// points (uniform 20µs core) are the control: both protocols should look
// similar there. frames_total is the determinism cross-check — the
// workload column must be byte-identical across every point that shares a
// latency profile, whatever the protocol or cut (the registry conformance
// tests assert it; TestSyncProtoCrossPointIdentical pins it here).
//
// All five metrics are deterministic functions of (seed, config): the
// sync counters are cut-dependent, like megaincast's peak_arena_kb, but
// each point pins its engine configuration (workers, protocol, latency),
// so cmd/benchdiff gates on every column.

// syncProtoPoint pins one (latency profile, domains, protocol) cell.
type syncProtoPoint struct {
	label   string
	short   bool // one 200ns core link among the 20µs ones
	workers int
	proto   netsim.SyncProtocol
}

var syncProtoPoints = []syncProtoPoint{
	{"short-2w-global", true, 2, netsim.SyncGlobal},
	{"short-2w-eit", true, 2, netsim.SyncEIT},
	{"short-4w-global", true, 4, netsim.SyncGlobal},
	{"short-4w-eit", true, 4, netsim.SyncEIT},
	{"long-4w-global", false, 4, netsim.SyncGlobal},
	{"long-4w-eit", false, 4, netsim.SyncEIT},
}

// syncProtoConfig sizes one trial: the bigincast workload at moderate
// scale, with a real-latency core so the rack cut has long-haul channels.
// Racks stays at 4 even under -scale so the cut always runs along the core
// tier (intra-rack cuts would put zero-latency host links in the cut and
// measure a different protocol regime than the figure claims).
func syncProtoConfig(seed uint64, scale float64, pt syncProtoPoint) BigIncastConfig {
	cfg := BigIncastConfig{
		Seed:            seed,
		Senders:         scaledInt(128, scale, 32),
		Racks:           4,
		Spines:          1,
		PairsPerSender:  scaledInt(40, scale, 10),
		Vocab:           scaledInt(2048, scale, 256),
		TableSize:       scaledInt(512, scale, 64),
		SimWorkers:      pt.workers,
		CorePropagation: 20 * time.Microsecond,
		SyncProtocol:    pt.proto,
	}
	if pt.short {
		cfg.ShortCutPropagation = 200 * time.Nanosecond
	}
	return cfg
}

func init() {
	pts := make([]Point, len(syncProtoPoints))
	for i, p := range syncProtoPoints {
		pts[i] = Point{Label: p.label, X: float64(i)}
	}
	Register(&Spec{
		Name: "syncproto",
		Title: "Engine: conservative sync protocols — global-min lookahead vs per-channel EIT horizons " +
			"across cut-link latency (one 200ns link among 20µs), domains and protocol",
		XLabel: "cut / engine",
		Points: pts,
		Metrics: []string{
			"sync_barriers",
			"sync_windows",
			"sync_idle_windows",
			"mean_horizon_us",
			"frames_total",
		},
		Run: func(p Point, tr Trial) (map[string]float64, error) {
			var sp syncProtoPoint
			found := false
			for i := range syncProtoPoints {
				if pts[i].Label == p.Label {
					sp, found = syncProtoPoints[i], true
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: syncproto: unknown point %q", p.Label)
			}
			// The point pins the engine cut and protocol; tr.SimWorkers and
			// tr.Recut are deliberately ignored — the axis IS the engine knob.
			res, err := BigIncast(syncProtoConfig(tr.Seed, tr.Scale, sp))
			if err != nil {
				return nil, err
			}
			if res.Domains != sp.workers {
				return nil, fmt.Errorf("experiments: syncproto: %s ran on %d domains, want %d",
					p.Label, res.Domains, sp.workers)
			}
			return map[string]float64{
				"sync_barriers":     float64(res.Sync.Barriers),
				"sync_windows":      float64(res.Sync.Windows),
				"sync_idle_windows": float64(res.Sync.IdleWindows),
				"mean_horizon_us":   float64(res.Sync.MeanHorizon()) / 1e3,
				"frames_total":      float64(res.Frames),
			}, nil
		},
	})
}
