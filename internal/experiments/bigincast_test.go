package experiments

import (
	"fmt"
	"testing"

	"github.com/daiet/daiet/internal/netsim"
)

// smallBig is a fast-but-contended bigincast config for unit tests.
func smallBig() BigIncastConfig {
	return BigIncastConfig{
		Seed:           7,
		Senders:        32,
		Racks:          2,
		PairsPerSender: 200,
		Vocab:          2048,
		TableSize:      64, // collisions dominate: spill fan-in stays incast-shaped
		PoolBytes:      48 << 10,
	}
}

// TestBigIncastSmoke: the fabric-scale fan-in completes exactly-once under
// shared-memory pressure, and the pressure is real (drops happened, the
// pool high-water mark is meaningful).
func TestBigIncastSmoke(t *testing.T) {
	res, err := BigIncast(smallBig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drop=%.3f%% hw=%.1f%% fair=%.3f retx=%d swretx=%d stalls=%d compl=%v",
		res.DropRatePct, res.PoolHighWaterPct, res.PortFairness,
		res.Retransmissions, res.SwitchRetransmissions, res.FlushStalls, res.Completion)
	if res.FramesDropped == 0 {
		t.Fatal("no switch-memory drops: the scenario exercises nothing")
	}
	if res.PoolHighWaterPct <= 0 || res.PoolHighWaterPct > 100 {
		t.Fatalf("pool high-water %.2f%%", res.PoolHighWaterPct)
	}
	if res.PortFairness <= 0 || res.PortFairness > 1 {
		t.Fatalf("fairness %v outside (0, 1]", res.PortFairness)
	}
}

// TestBigIncastDTDominatesStatic is the headline claim of the shared-memory
// model: Dynamic-Threshold sharing of one memory strictly beats an equal
// static partition of the same total bytes on drop rate, at every swept
// alpha.
func TestBigIncastDTDominatesStatic(t *testing.T) {
	static := smallBig()
	static.StaticPartition = true
	statRes, err := BigIncast(static)
	if err != nil {
		t.Fatal(err)
	}
	if statRes.FramesDropped == 0 {
		t.Fatal("static split dropped nothing: memory not contended")
	}
	for _, alpha := range []float64{0.5, 1, 2, 8} {
		dt := smallBig()
		dt.Alpha = alpha
		res, err := BigIncast(dt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("alpha=%g: DT drop %.3f%% vs static %.3f%%", alpha, res.DropRatePct, statRes.DropRatePct)
		if res.DropRatePct >= statRes.DropRatePct {
			t.Fatalf("alpha=%g: DT drop rate %.3f%% not below static %.3f%%",
				alpha, res.DropRatePct, statRes.DropRatePct)
		}
	}
}

// TestBigIncast256x4SimWorkersDeterministic is the acceptance criterion: the
// full-size 256-sender / 4-rack fan-in runs under partitioned engines and
// every counter of the result — drops, retransmissions, pool marks,
// fairness, virtual completion — is byte-identical at 1, 2, and 4 domains.
func TestBigIncast256x4SimWorkersDeterministic(t *testing.T) {
	render := func(simWorkers int) string {
		res, err := BigIncast(BigIncastConfig{
			Seed:           3,
			Senders:        256,
			Racks:          4,
			PairsPerSender: 40, // full fan-in, shortened streams: CI-sized
			Vocab:          2048,
			TableSize:      512,
			PoolBytes:      192 << 10,
			SimWorkers:     simWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The knob itself and the engine-shape observability it implies
		// (per-domain arena footprints, domain count, sync diagnostics) are
		// the only allowed deltas; every workload counter must match
		// byte-for-byte.
		res.Cfg.SimWorkers = 0
		res.ArenaStats = netsim.ArenaStats{}
		res.Domains = 0
		res.Sync = netsim.SyncStats{}
		return fmt.Sprintf("%+v", *res)
	}
	seq := render(1)
	for _, w := range []int{2, 4} {
		if got := render(w); got != seq {
			t.Fatalf("bigincast diverged at sim-workers %d:\nsequential: %s\npartitioned: %s", w, seq, got)
		}
	}
}
