package experiments

import (
	"fmt"

	"github.com/daiet/daiet/internal/mapreduce"
	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/workload"
)

// Figure3Config sizes the WordCount evaluation. Defaults reproduce the
// paper's §5 layout (24 mappers, 12 reducers, 16K register pairs, 10
// pairs/packet, collision-free corpus) at a laptop-scale input; Scale
// multiplies the corpus volume.
type Figure3Config struct {
	Seed             uint64
	Mappers          int     // default 24
	Reducers         int     // default 12
	VocabPerReducer  int     // default 2000 (fits the 16K-slot table)
	MeanMultiplicity float64 // default 8.3 (the paper's ~88% operating point)
	TableSize        int     // default 16384
	MaxPairsPerPkt   int     // default 10
	MSS              int     // default 1460 (TCP baseline segment payload)
	Scale            float64 // multiplies VocabPerReducer (default 1)
	// Parallelism shards the three modes (DAIET, UDP baseline, TCP
	// baseline) across the runner's pool (<= 0: GOMAXPROCS, 1: sequential).
	Parallelism int
	// SimWorkers partitions each mode's fabric into parallel event-engine
	// domains (default 1; results are identical at any value).
	SimWorkers int
}

func (c Figure3Config) withDefaults() Figure3Config {
	if c.Mappers == 0 {
		c.Mappers = 24
	}
	if c.Reducers == 0 {
		c.Reducers = 12
	}
	if c.VocabPerReducer == 0 {
		c.VocabPerReducer = 2000
	}
	if c.MeanMultiplicity == 0 {
		c.MeanMultiplicity = 8.3
	}
	if c.TableSize == 0 {
		c.TableSize = 16384
	}
	if c.MaxPairsPerPkt == 0 {
		c.MaxPairsPerPkt = 10
	}
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// Figure3Result carries the four panels of Figure 3 as box-plot summaries
// over the per-reducer samples, plus the raw samples and corpus facts.
type Figure3Result struct {
	Cfg Figure3Config

	// Panel 1: reduction in data volume at reducers, DAIET vs TCP baseline.
	DataReduction stats.Summary
	// Panel 2: reduction in reduce-phase running time, DAIET vs TCP
	// baseline (despite DAIET's full reducer-side sort).
	ReduceTimeReduction stats.Summary
	// Panel 3: reduction in packets received, DAIET vs the UDP baseline.
	PacketsVsUDP stats.Summary
	// Panel 4: reduction in packets received, DAIET vs the TCP baseline.
	PacketsVsTCP stats.Summary

	Samples struct {
		DataReduction       []float64
		ReduceTimeReduction []float64
		PacketsVsUDP        []float64
		PacketsVsTCP        []float64
	}

	TotalWords  int
	UniqueWords int
	// Switch-side aggregate counters for the DAIET run.
	PairsIn, PairsSpilled uint64
}

// Figure3 runs WordCount in all three modes and computes the four panels.
func Figure3(cfg Figure3Config) (*Figure3Result, error) {
	cfg = cfg.withDefaults()
	vocab := int(float64(cfg.VocabPerReducer) * cfg.Scale)
	if vocab < 1 {
		vocab = 1
	}
	corpus, err := workload.Generate(workload.CorpusSpec{
		Seed:             cfg.Seed,
		Reducers:         cfg.Reducers,
		VocabPerReducer:  vocab,
		MeanMultiplicity: cfg.MeanMultiplicity,
		TableSize:        cfg.TableSize,
		CollisionFree:    true,
	})
	if err != nil {
		return nil, err
	}
	splits := corpus.Splits(cfg.Mappers)

	// The three modes are independent trials over the same read-only splits:
	// each shard builds its own cluster (and netsim engine), so the runner
	// can fan them out without sharing any simulator state.
	modes := []mapreduce.Mode{mapreduce.ModeDAIET, mapreduce.ModeUDPBaseline, mapreduce.ModeTCPBaseline}
	results, err := runner.Map(len(modes), cfg.Parallelism, func(shard int) (*mapreduce.Result, error) {
		cl, err := mapreduce.NewCluster(mapreduce.ClusterConfig{
			NumMappers:        cfg.Mappers,
			NumReducers:       cfg.Reducers,
			TableSize:         cfg.TableSize,
			MaxPairsPerPacket: cfg.MaxPairsPerPkt,
			MSS:               cfg.MSS,
			Seed:              cfg.Seed,
			SimWorkers:        cfg.SimWorkers,
		})
		if err != nil {
			return nil, err
		}
		return cl.RunJob(mapreduce.WordCount, splits, modes[shard])
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 3: %w", err)
	}
	daiet, udp, tcp := results[0], results[1], results[2]

	out := &Figure3Result{Cfg: cfg, TotalWords: corpus.TotalWords, UniqueWords: corpus.UniqueWords}
	for i := range daiet.PerReducer {
		d, u, t := daiet.PerReducer[i], udp.PerReducer[i], tcp.PerReducer[i]
		out.Samples.DataReduction = append(out.Samples.DataReduction,
			stats.ReductionPct(float64(t.PayloadBytes), float64(d.PayloadBytes)))
		out.Samples.ReduceTimeReduction = append(out.Samples.ReduceTimeReduction,
			stats.ReductionPct(float64(t.ReduceTime), float64(d.ReduceTime)))
		out.Samples.PacketsVsUDP = append(out.Samples.PacketsVsUDP,
			stats.ReductionPct(float64(u.PacketsReceived), float64(d.PacketsReceived)))
		out.Samples.PacketsVsTCP = append(out.Samples.PacketsVsTCP,
			stats.ReductionPct(float64(t.PacketsReceived), float64(d.PacketsReceived)))
	}
	out.DataReduction = stats.Summarize(out.Samples.DataReduction)
	out.ReduceTimeReduction = stats.Summarize(out.Samples.ReduceTimeReduction)
	out.PacketsVsUDP = stats.Summarize(out.Samples.PacketsVsUDP)
	out.PacketsVsTCP = stats.Summarize(out.Samples.PacketsVsTCP)

	// Switch-side accounting, captured by the run before tree teardown.
	for _, st := range daiet.SwitchTreeStats {
		out.PairsIn += st.PairsIn
		out.PairsSpilled += st.PairsSpilled
	}
	return out, nil
}

func init() {
	Register(&Spec{
		Name:   "fig3",
		Title:  "Figure 3: WordCount, 24 mappers / 12 reducers, 16K register pairs (paper: ~88% data, 83.6% time, 90.5%/42% packets)",
		XLabel: "workload",
		Points: []Point{{Label: "wordcount", X: 0}},
		Metrics: []string{
			"data_reduction_median_pct",
			"reduce_time_median_pct",
			"packets_vs_udp_median_pct",
			"packets_vs_tcp_median_pct",
		},
		// Reduce-phase timing is host wall-clock: real between runs, excluded
		// from determinism comparisons.
		Volatile: []string{"reduce_time_median_pct"},
		Run: func(_ Point, tr Trial) (map[string]float64, error) {
			// The grid is the fan-out level; each trial runs its three modes
			// sequentially.
			res, err := Figure3(Figure3Config{Seed: tr.Seed, Scale: tr.Scale,
				Parallelism: 1, SimWorkers: tr.SimWorkers})
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"data_reduction_median_pct": res.DataReduction.Median,
				"reduce_time_median_pct":    res.ReduceTimeReduction.Median,
				"packets_vs_udp_median_pct": res.PacketsVsUDP.Median,
				"packets_vs_tcp_median_pct": res.PacketsVsTCP.Median,
			}, nil
		},
	})
}
