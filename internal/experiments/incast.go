package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/daiet/daiet/internal/controller"
	"github.com/daiet/daiet/internal/core"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/wire"
)

// Incast is the first scenario beyond the paper's evaluation: synchronized
// fan-in under small switch buffers — the regime the paper explicitly
// leaves open ("we do not address the issue of packet losses"; the testbed
// was a bmv2 software switch whose veth buffering is effectively
// unbounded, cf. ClusterConfig.QueueBytes). Every worker starts streaming
// into one aggregation tree at t=0; the per-port queues on the
// worker→switch edge are swept from testbed-sized down to a few frames, so
// the simultaneous burst tail-drops, and the reliability extension
// (core.ReliableSender + the switch-side gate) must recover the losses.
//
// Measured per queue size: the edge drop rate, the retransmissions the
// recovery cost, and how much the synchronized round's completion time
// inflates relative to the same workload under testbed-sized buffers —
// with the correctness gate that the aggregated sums stay exact despite
// retransmission (the gate's idempotence claim, under real loss at scale).
//
// The root (switch→reducer) hop is swept along with the edge: flush
// traffic is protected by the switch-side bounded replay buffer
// (core.TreeConfig.RootReplay) — retained-until-ACKed packets, go-back-N
// retransmission, and flush-loop backpressure when the buffer fills — with
// the collector gating per-source sequence order and answering cumulative
// ACKs. Earlier revisions exempted the root hop with testbed-sized queues;
// the replay buffer removes that exemption.

// IncastConfig sizes one incast trial.
type IncastConfig struct {
	Seed    uint64
	Senders int // fan-in degree (default 24, the paper's mapper count)
	// PairsPerSender is the mean stream length; each sender draws its
	// actual length within ±20% from its own seed stream (default 1200).
	PairsPerSender int
	// Vocab is the shared key space; overlapping keys make the in-network
	// aggregation real (default 2048).
	Vocab int
	// QueueBytes sizes the swept worker→switch per-port queues, the same
	// quantity ClusterConfig.QueueBytes sets fabric-wide (default 64 MiB,
	// i.e. the loss-free testbed).
	QueueBytes int
	// RootQueueBytes sizes the switch→reducer hop. Default: QueueBytes —
	// the root hop is swept along with the edge, protected by the
	// switch-side replay buffer (RootReplay); it no longer needs the
	// testbed-sized exemption earlier revisions kept.
	RootQueueBytes int
	// RootReplay bounds the switch's per-tree replay buffer for the
	// switch→reducer hop (default 32 packets).
	RootReplay int
	// StartJitter staggers sender start times uniformly over [0,
	// StartJitter], drawn deterministically per (seed, sender). 0 keeps
	// the fully synchronized fan-in.
	StartJitter time.Duration
	TableSize   int // per-tree register cells (default 4096)
	// PoolBytes, when > 0, replaces the switch's per-port egress FIFOs with
	// one shared buffer memory of this size under Dynamic-Threshold
	// admission (netsim.PoolConfig): the ACK streams back to every worker
	// and the flush stream to the reducer then contend for one memory, the
	// way a real shared-memory ASIC behaves. 0 keeps the historical
	// per-port QueueBytes model, so the registered incast figures
	// reproduce bit-for-bit. PoolReserve/PoolAlpha parameterize the DT
	// (defaults 2 KiB and 1.0; pass -1 for an explicit zero — no reserve
	// floor / no borrowing — since 0 means "default" here). Host uplinks
	// always keep private queues — QueueBytes remains the standalone-link
	// fallback.
	PoolBytes   int
	PoolReserve int
	PoolAlpha   float64
	// SimWorkers partitions the fabric into parallel event-engine domains
	// (0 autotunes; a single-switch plan autotunes to sequential). When
	// cut explicitly, the senders themselves spread across domains;
	// results are byte-identical at any value.
	SimWorkers int
	// Recut enables measured-skew dynamic re-partitioning (zero value
	// disables); results stay byte-identical under any re-cut schedule.
	Recut topology.RecutConfig
}

func (c IncastConfig) withDefaults() IncastConfig {
	if c.Senders == 0 {
		c.Senders = 24
	}
	if c.PairsPerSender == 0 {
		c.PairsPerSender = 1200
	}
	if c.Vocab == 0 {
		c.Vocab = 2048
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 64 << 20
	}
	if c.RootQueueBytes == 0 {
		c.RootQueueBytes = c.QueueBytes
	}
	if c.RootReplay == 0 {
		c.RootReplay = 32
	}
	if c.TableSize == 0 {
		c.TableSize = 4096
	}
	if c.PoolBytes > 0 {
		switch {
		case c.PoolReserve == 0:
			c.PoolReserve = 2 << 10
		case c.PoolReserve < 0:
			c.PoolReserve = 0 // explicit: no reserve floor
		}
		switch {
		case c.PoolAlpha == 0:
			c.PoolAlpha = 1
		case c.PoolAlpha < 0:
			c.PoolAlpha = 0 // explicit: no borrowing (static reserves)
		}
	}
	return c
}

// IncastResult is one trial's outcome.
type IncastResult struct {
	Cfg IncastConfig

	// Admission accounting: the worker→switch edge, plus (in shared-memory
	// mode, PoolBytes > 0) the switch's own pooled egress ports.
	FramesAttempted uint64
	FramesDropped   uint64
	DropRatePct     float64

	// Reliability-layer work.
	Transmissions   uint64
	Retransmissions uint64
	PairsSent       uint64

	// Completion is the virtual time at which every sender's stream was
	// acknowledged and the reducer's collector completed.
	Completion netsim.Time
}

// Incast runs one synchronized fan-in round and verifies the aggregate is
// exact. The result is fully deterministic in (Seed, config): completion
// is virtual time, and drops come from queue admission, not randomness.
func Incast(cfg IncastConfig) (*IncastResult, error) {
	cfg = cfg.withDefaults()

	// Hand-build the plan so the edge and root hops get different queues.
	sw := topology.SwitchBase
	plan := &topology.Plan{Name: "incast", Switches: []netsim.NodeID{sw}}
	for i := 0; i < cfg.Senders+1; i++ {
		h := topology.HostBase + netsim.NodeID(i)
		plan.Hosts = append(plan.Hosts, h)
		lc := netsim.LinkConfig{QueueBytes: cfg.QueueBytes}
		if i == cfg.Senders { // the reducer's link: unswept
			lc.QueueBytes = cfg.RootQueueBytes
		}
		plan.Links = append(plan.Links, topology.Link{A: h, B: sw, Cfg: lc})
	}
	if cfg.PoolBytes > 0 {
		// Shared-memory mode: the switch's egress queues (per-worker ACK
		// streams + the flush stream to the reducer) share one DT pool.
		// Reserve floors are hard-carved, so the per-port floor cannot
		// exceed an equal split of the memory across the switch's
		// cfg.Senders+1 ports — clamp the default when the fan-in is wide.
		reserve := cfg.PoolReserve
		if split := cfg.PoolBytes / (cfg.Senders + 1); reserve > split {
			reserve = split
		}
		plan.SetPool(sw, netsim.PoolConfig{
			TotalBytes:   cfg.PoolBytes,
			ReserveBytes: reserve,
			Alpha:        cfg.PoolAlpha,
		})
	}
	workers, reducer := plan.Hosts[:cfg.Senders], plan.Hosts[cfg.Senders]

	nw := netsim.New(cfg.Seed)
	fb, err := buildDaietFabric(nw, plan)
	if err != nil {
		return nil, err
	}
	programs, hosts, fab := fb.programs, fb.hosts, fb.fab
	if err := fab.PartitionsDynamic(cfg.SimWorkers, cfg.Recut); err != nil {
		return nil, err
	}
	ctl := controller.New(fab, programs)
	if err := ctl.InstallRouting(); err != nil {
		return nil, err
	}
	tplan, err := ctl.PlanTree(reducer, workers)
	if err != nil {
		return nil, err
	}
	// The single switch is the tree root: it gates the workers for
	// exactly-once aggregation, and its flush hop to the reducer is
	// protected by the bounded replay buffer instead of by testbed-sized
	// queues.
	if err := ctl.InstallTree(tplan, controller.TreeOptions{
		Agg:        core.AggSum,
		TableSize:  cfg.TableSize,
		Reliable:   true,
		RootReplay: cfg.RootReplay,
		RootRTO:    500 * time.Microsecond,
	}); err != nil {
		return nil, err
	}

	sum, err := core.FuncByID(core.AggSum)
	if err != nil {
		return nil, err
	}
	col := core.NewCollector(uint32(reducer), sum, wire.DefaultGeometry, tplan.RootChildren())
	col.Attach(hosts[reducer])
	col.EnableRootAck()

	// Synchronized fan-in: every worker queues its whole stream at t=0.
	// Go-back-N keeps at most Window packets in flight per sender; under
	// small buffers even that burst overflows the edge queue.
	rcfg := core.ReliableConfig{
		Window:     32,
		RTO:        500 * time.Microsecond,
		MaxRetries: 10_000, // completion, not give-up, is under study
	}
	want := map[string]uint32{}
	senders := make([]*core.ReliableSender, len(workers))
	// One error slot per sender: a jittered feed runs on its own worker's
	// partition domain, so a shared variable would be a write-write race
	// across domains. Slots are only read after Run's final barrier.
	feedErrs := make([]error, len(workers))
	for i, w := range workers {
		mux := core.NewAckMux(hosts[w])
		s, err := core.NewReliableSender(hosts[w], tplan.TreeID, reducer,
			wire.DefaultGeometry, 10, rcfg)
		if err != nil {
			return nil, err
		}
		mux.Register(s)
		senders[i] = s
		stream, rng := senderWorkload(cfg.Seed, w, cfg.PairsPerSender, cfg.Vocab, want)
		slot := &feedErrs[i]
		feed := func() {
			for _, kv := range stream {
				if err := s.Send([]byte(kv.Key), kv.Value); err != nil {
					*slot = err
					return
				}
			}
			s.End()
		}
		if cfg.StartJitter <= 0 {
			feed() // synchronized fan-in: the whole stream queues at t=0
			continue
		}
		// Staggered start: each sender begins at its own deterministic
		// offset, drawn from its seed stream after the pairs so jitter
		// never perturbs the workload itself. Scheduled at setup on the
		// sender's own node, so it lands on the right partition domain.
		delay := netsim.Time(rng.Int63n(int64(netsim.Duration(cfg.StartJitter)) + 1))
		nw.NodeAfter(w, delay, feed)
	}

	// Bound the run: retransmission storms terminate (cumulative ACKs make
	// progress every RTO), but a bound turns a regression into an error
	// instead of a hang.
	if err := nw.Run(200_000_000); err != nil {
		return nil, fmt.Errorf("experiments: incast: %w", err)
	}
	for i, err := range feedErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: incast: sender %d feed: %w", i, err)
		}
	}

	res := &IncastResult{Cfg: cfg, Completion: nw.Now()}
	for i, s := range senders {
		if !s.Done() {
			return nil, fmt.Errorf("experiments: incast: sender %d incomplete: %v", i, s.Err())
		}
		res.Transmissions += s.Stats.Transmissions
		res.Retransmissions += s.Stats.Retransmissions
		res.PairsSent += s.Stats.PairsSent
	}
	if !col.Complete() {
		return nil, fmt.Errorf("experiments: incast: collector incomplete (%+v)", col.Stats)
	}
	// Correctness gate: exactly-once aggregation despite retransmission.
	if err := verifyExactOnce(col, want); err != nil {
		return nil, fmt.Errorf("experiments: incast: %w", err)
	}
	// Edge admission stats, worker→switch direction only (port 0 is every
	// host's uplink).
	for _, w := range workers {
		st := nw.PortStats(w, 0)
		res.FramesAttempted += st.TxFrames + st.DropsFull + st.DropsLoss
		res.FramesDropped += st.DropsFull + st.DropsLoss
	}
	if cfg.PoolBytes > 0 {
		// Shared-memory mode adds a second loss point: the switch's own
		// egress (ACK + flush streams through the pool). Count it, or the
		// figure would report ~0% drops while retransmissions show real
		// loss. Poolless runs skip this so historical metrics are
		// untouched.
		for p := 0; p < nw.NumPorts(sw); p++ {
			st := nw.PortStats(sw, p)
			res.FramesAttempted += st.TxFrames + st.DropsPool + st.DropsFull + st.DropsLoss
			res.FramesDropped += st.DropsPool + st.DropsFull + st.DropsLoss
		}
	}
	res.DropRatePct = 100 * stats.Ratio(float64(res.FramesDropped), float64(res.FramesAttempted))
	return res, nil
}

// incastRefCache memoizes loss-free reference runs across the sweep's
// points: every queue-size point of a trial needs the same reference, so
// computing it once per (seed, size) config saves the bulk of the figure's
// wall-clock. Incast is deterministic in its config, so a concurrent
// duplicate computation stores an identical value — benign.
var incastRefCache sync.Map // IncastConfig -> *IncastResult

func incastReference(cfg IncastConfig) (*IncastResult, error) {
	if v, ok := incastRefCache.Load(cfg); ok {
		return v.(*IncastResult), nil
	}
	res, err := Incast(cfg)
	if err != nil {
		return nil, err
	}
	incastRefCache.Store(cfg, res)
	return res, nil
}

func init() {
	queues := []int{2048, 4096, 8192, 16384, 65536}
	pts := make([]Point, len(queues))
	for i, q := range queues {
		pts[i] = Point{Label: fmt.Sprintf("%dKiB", q/1024), X: float64(q)}
	}
	Register(&Spec{
		Name:   "incast",
		Title:  "Extension: incast under small buffers (edge + root swept) — edge gate + root replay buffer under loss (paper: losses left open)",
		XLabel: "port queue",
		Points: pts,
		Metrics: []string{
			"drop_rate_pct",
			"retransmissions_per_kpkt",
			"completion_inflation_x",
		},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			base := IncastConfig{
				Seed:           tr.Seed,
				Senders:        scaledInt(24, tr.Scale, 4),
				PairsPerSender: scaledInt(1200, tr.Scale, 120),
				SimWorkers:     tr.SimWorkers,
				Recut:          tr.Recut,
			}
			small := base
			small.QueueBytes = int(pt.X)
			res, err := Incast(small)
			if err != nil {
				return nil, err
			}
			// The loss-free reference for completion inflation: identical
			// workload, testbed-sized buffers. It is independent of the
			// swept queue size, so all points of one trial share it.
			ref, err := incastReference(base)
			if err != nil {
				return nil, err
			}
			dataPkts := res.Transmissions - res.Retransmissions
			return map[string]float64{
				"drop_rate_pct":            res.DropRatePct,
				"retransmissions_per_kpkt": 1000 * stats.Ratio(float64(res.Retransmissions), float64(dataPkts)),
				"completion_inflation_x":   stats.Ratio(float64(res.Completion), float64(ref.Completion)),
			}, nil
		},
	})

	// incast-jitter: the same fan-in at one fixed small queue, sweeping the
	// sender start-time stagger — how much deterministic jitter defuses the
	// synchronized burst that causes the loss in the first place.
	jitters := []time.Duration{0, 25 * time.Microsecond, 100 * time.Microsecond, 400 * time.Microsecond}
	jpts := make([]Point, len(jitters))
	for i, j := range jitters {
		jpts[i] = Point{Label: fmt.Sprintf("%dus", j.Microseconds()), X: float64(j.Microseconds())}
	}
	Register(&Spec{
		Name:   "incast-jitter",
		Title:  "Extension: staggered sender starts under incast (4 KiB queues) — jitter vs loss",
		XLabel: "start jitter",
		Points: jpts,
		Metrics: []string{
			"drop_rate_pct",
			"retransmissions_per_kpkt",
			"completion_inflation_x",
		},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			base := IncastConfig{
				Seed:           tr.Seed,
				Senders:        scaledInt(24, tr.Scale, 4),
				PairsPerSender: scaledInt(1200, tr.Scale, 120),
				SimWorkers:     tr.SimWorkers,
				Recut:          tr.Recut,
			}
			jittered := base
			jittered.QueueBytes = 4096
			jittered.StartJitter = time.Duration(pt.X) * time.Microsecond
			res, err := Incast(jittered)
			if err != nil {
				return nil, err
			}
			// Inflation is measured against the loss-free synchronized
			// reference, so it prices in both the residual loss recovery
			// and the stagger itself.
			ref, err := incastReference(base)
			if err != nil {
				return nil, err
			}
			dataPkts := res.Transmissions - res.Retransmissions
			return map[string]float64{
				"drop_rate_pct":            res.DropRatePct,
				"retransmissions_per_kpkt": 1000 * stats.Ratio(float64(res.Retransmissions), float64(dataPkts)),
				"completion_inflation_x":   stats.Ratio(float64(res.Completion), float64(ref.Completion)),
			}, nil
		},
	})
}
