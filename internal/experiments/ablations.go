package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/daiet/daiet/internal/mapreduce"
	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/wire"
	"github.com/daiet/daiet/internal/workload"
)

// AblationPoint is one configuration's outcome in an ablation sweep.
type AblationPoint struct {
	Label string
	// X is the swept parameter's numeric value.
	X float64
	// DataReductionPct is the median per-reducer data-volume reduction of
	// DAIET vs the UDP baseline (isolates aggregation from transport
	// effects).
	DataReductionPct float64
	// PacketReductionPct is the median packet-count reduction vs UDP.
	PacketReductionPct float64
	// SpilledPairs counts pairs that travelled via spillover buckets.
	SpilledPairs uint64
	// ReducerPairs counts pairs arriving at reducers under DAIET.
	ReducerPairs uint64
}

// ablationCorpusCache memoizes generated corpora: a corpus depends only on
// its spec, not on the swept parameter, so the points × seeds grid of an
// ablation Spec would otherwise regenerate identical corpora per point.
// Generation is deterministic, so a concurrent duplicate computation
// stores an identical value; the corpus is read-only after generation
// (Splits allocates fresh slice headers over the shared stream).
var ablationCorpusCache sync.Map // workload.CorpusSpec -> *workload.Corpus

// ablationCorpus builds (or recalls) the shared corpus for an ablation
// run; collisions are permitted when collisionFree is false (spillover
// ablations need them).
func ablationCorpus(seed uint64, reducers, vocabPer int, mult float64,
	tableSize, maxWordLen, keyWidth int, collisionFree bool) (*workload.Corpus, error) {
	spec := workload.CorpusSpec{
		Seed:             seed,
		Reducers:         reducers,
		VocabPerReducer:  vocabPer,
		MeanMultiplicity: mult,
		TableSize:        tableSize,
		MaxWordLen:       maxWordLen,
		KeyWidth:         keyWidth,
		CollisionFree:    collisionFree,
	}
	if v, ok := ablationCorpusCache.Load(spec); ok {
		return v.(*workload.Corpus), nil
	}
	corpus, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	ablationCorpusCache.Store(spec, corpus)
	return corpus, nil
}

// runPair runs DAIET and the UDP baseline over the same splits and reports
// the medians.
func runPair(splits [][]string, ccfg mapreduce.ClusterConfig) (AblationPoint, error) {
	var pt AblationPoint
	daietCl, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return pt, err
	}
	daiet, err := daietCl.RunJob(mapreduce.WordCount, splits, mapreduce.ModeDAIET)
	if err != nil {
		return pt, err
	}
	udpCl, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return pt, err
	}
	udp, err := udpCl.RunJob(mapreduce.WordCount, splits, mapreduce.ModeUDPBaseline)
	if err != nil {
		return pt, err
	}
	var dataRed, pktRed []float64
	for i := range daiet.PerReducer {
		dataRed = append(dataRed, stats.ReductionPct(
			float64(udp.PerReducer[i].PayloadBytes), float64(daiet.PerReducer[i].PayloadBytes)))
		pktRed = append(pktRed, stats.ReductionPct(
			float64(udp.PerReducer[i].PacketsReceived), float64(daiet.PerReducer[i].PacketsReceived)))
		pt.ReducerPairs += daiet.PerReducer[i].PairsReceived
	}
	pt.DataReductionPct = stats.Median(dataRed)
	pt.PacketReductionPct = stats.Median(pktRed)
	for _, st := range daiet.SwitchTreeStats {
		pt.SpilledPairs += st.PairsSpilled
	}
	return pt, nil
}

// ablationMappers/ablationReducers/ablationVocab size every ablation: the
// single source shared by the sweep functions and the registry Specs.
const (
	ablationMappers  = 8
	ablationReducers = 2
	ablationVocab    = 800
)

// ablationRegisterSizePoint runs one table-size configuration over its own
// (seed-determined, collision-permitted) corpus: small tables must spill.
func ablationRegisterSizePoint(seed uint64, size, vocabPer, sim int) (AblationPoint, error) {
	var pt AblationPoint
	corpus, err := ablationCorpus(seed, ablationReducers, vocabPer, 8.3, 1<<20, 16, 16, false)
	if err != nil {
		return pt, err
	}
	pt, err = runPair(corpus.Splits(ablationMappers), mapreduce.ClusterConfig{
		NumMappers: ablationMappers, NumReducers: ablationReducers,
		TableSize: size, Seed: seed, SimWorkers: sim,
	})
	if err != nil {
		return pt, fmt.Errorf("experiments: table size %d: %w", size, err)
	}
	pt.Label = fmt.Sprintf("table=%d", size)
	pt.X = float64(size)
	return pt, nil
}

// AblationRegisterSize sweeps the per-tree register table size. Fewer
// cells mean more collisions (paper §5: fewer cells increase "the
// possibility that a pair is not aggregated"), degrading reduction while
// preserving correctness via spillover. Sweep points are independent
// (the corpus depends only on the seed, not the table size), so
// parallelism (<= 0 means GOMAXPROCS) shards them across the runner's
// pool.
func AblationRegisterSize(seed uint64, sizes []int, parallelism int) ([]AblationPoint, error) {
	return runner.Map(len(sizes), parallelism, func(shard int) (AblationPoint, error) {
		return ablationRegisterSizePoint(seed, sizes[shard], ablationVocab, 1)
	})
}

// ablationPairsPerPacketPoint runs one packetization bound over its own
// collision-free corpus.
func ablationPairsPerPacketPoint(seed uint64, pairs, vocabPer, sim int) (AblationPoint, error) {
	const tableSize = 4096
	var pt AblationPoint
	corpus, err := ablationCorpus(seed, ablationReducers, vocabPer, 8.3, tableSize, 16, 16, true)
	if err != nil {
		return pt, err
	}
	pt, err = runPair(corpus.Splits(ablationMappers), mapreduce.ClusterConfig{
		NumMappers: ablationMappers, NumReducers: ablationReducers,
		TableSize: tableSize, MaxPairsPerPacket: pairs, Seed: seed, SimWorkers: sim,
	})
	if err != nil {
		return pt, fmt.Errorf("experiments: pairs/packet %d: %w", pairs, err)
	}
	pt.Label = fmt.Sprintf("pairs=%d", pairs)
	pt.X = float64(pairs)
	return pt, nil
}

// AblationPairsPerPacket sweeps the packetization bound (the paper fixes
// 10 from the 200-300 B parse budget). Fewer pairs per packet inflate
// packet counts on both sides but leave the data reduction untouched.
func AblationPairsPerPacket(seed uint64, counts []int, parallelism int) ([]AblationPoint, error) {
	return runner.Map(len(counts), parallelism, func(shard int) (AblationPoint, error) {
		return ablationPairsPerPacketPoint(seed, counts[shard], ablationVocab, 1)
	})
}

// ablationKeyWidthMaxWordLen keeps words short enough that every swept
// width >= 8 is lossless.
const ablationKeyWidthMaxWordLen = 8

// ablationKeyWidthPoint runs one fixed key width; the pair geometry
// changes with the width, so each point regenerates its corpus.
func ablationKeyWidthPoint(seed uint64, width, vocabPer, sim int) (AblationPoint, error) {
	const tableSize = 4096
	var pt AblationPoint
	if width < ablationKeyWidthMaxWordLen {
		return pt, fmt.Errorf("experiments: key width %d below max word length %d",
			width, ablationKeyWidthMaxWordLen)
	}
	corpus, err := ablationCorpus(seed, ablationReducers, vocabPer, 8.3, tableSize,
		ablationKeyWidthMaxWordLen, width, true)
	if err != nil {
		return pt, err
	}
	pt, err = runPair(corpus.Splits(ablationMappers), mapreduce.ClusterConfig{
		NumMappers: ablationMappers, NumReducers: ablationReducers,
		TableSize: tableSize, Seed: seed, SimWorkers: sim,
		Geometry: wire.PairGeometry{KeyWidth: width},
	})
	if err != nil {
		return pt, fmt.Errorf("experiments: key width %d: %w", width, err)
	}
	pt.Label = fmt.Sprintf("keywidth=%d", width)
	pt.X = float64(width)
	return pt, nil
}

// AblationKeyWidth sweeps the fixed key width. The paper (§5) notes the
// 16 B fixed keys waste bytes for short words; narrower geometries shrink
// the on-wire volume for the same aggregation behaviour.
func AblationKeyWidth(seed uint64, widths []int, parallelism int) ([]AblationPoint, error) {
	for _, w := range widths {
		if w < ablationKeyWidthMaxWordLen {
			return nil, fmt.Errorf("experiments: key width %d below max word length %d",
				w, ablationKeyWidthMaxWordLen)
		}
	}
	return runner.Map(len(widths), parallelism, func(shard int) (AblationPoint, error) {
		return ablationKeyWidthPoint(seed, widths[shard], ablationVocab, 1)
	})
}

// WorkerCombinerResult contrasts worker-level combining (classic MapReduce
// combiners) with in-network aggregation — the paper's §1 motivation that
// "aggregation functions are only applied at the worker-level, missing the
// opportunity of achieving better traffic reduction ratios".
type WorkerCombinerResult struct {
	// WorkerLevelReductionPct is the pair reduction a mapper-side combiner
	// achieves alone (unique-per-mapper / emitted).
	WorkerLevelReductionPct float64
	// InNetworkReductionPct is DAIET's pair reduction over the same input
	// (reducer-received / emitted), with mapper-side combining also on.
	InNetworkReductionPct float64
}

// AblationWorkerCombiner measures both levels on one corpus.
func AblationWorkerCombiner(seed uint64) (*WorkerCombinerResult, error) {
	return ablationWorkerCombiner(seed, 600, 1)
}

func ablationWorkerCombiner(seed uint64, vocabPer, sim int) (*WorkerCombinerResult, error) {
	const (
		mappers, reducers = 8, 2
		tableSize         = 4096
	)
	corpus, err := ablationCorpus(seed, reducers, vocabPer, 8.3, tableSize, 16, 16, true)
	if err != nil {
		return nil, err
	}
	splits := corpus.Splits(mappers)

	// Worker-level combining: each mapper aggregates its split locally.
	var emitted, afterWorker int
	combined := make([][]string, len(splits))
	for m, split := range splits {
		counts := map[string]int{}
		for _, w := range split {
			counts[w]++
		}
		emitted += len(split)
		afterWorker += len(counts)
		// Re-encode as "word" repeated once with its count folded in via a
		// count-valued job below: the combined stream carries one record
		// per distinct word per mapper, in sorted order (counts is a map;
		// its randomized iteration order must not shape the input stream).
		words := make([]string, 0, len(counts))
		for w := range counts {
			words = append(words, w)
		}
		sort.Strings(words)
		for _, w := range words {
			combined[m] = append(combined[m], fmt.Sprintf("%s=%d", w, counts[w]))
		}
	}

	// DAIET run over the combined stream: a WordCount variant whose Map
	// parses "word=count".
	job := mapreduce.Job{
		Name: "wordcount-precombined",
		Map: func(rec string, emit func(string, uint32)) {
			for i := len(rec) - 1; i >= 0; i-- {
				if rec[i] == '=' {
					var n uint32
					for _, c := range rec[i+1:] {
						n = n*10 + uint32(c-'0')
					}
					emit(rec[:i], n)
					return
				}
			}
			emit(rec, 1)
		},
		Agg: mapreduce.WordCount.Agg,
	}
	cl, err := mapreduce.NewCluster(mapreduce.ClusterConfig{
		NumMappers: mappers, NumReducers: reducers, TableSize: tableSize, Seed: seed,
		SimWorkers: sim,
	})
	if err != nil {
		return nil, err
	}
	res, err := cl.RunJob(job, combined, mapreduce.ModeDAIET)
	if err != nil {
		return nil, err
	}
	var reducerPairs uint64
	for _, r := range res.PerReducer {
		reducerPairs += r.PairsReceived
	}
	return &WorkerCombinerResult{
		WorkerLevelReductionPct: stats.ReductionPct(float64(emitted), float64(afterWorker)),
		InNetworkReductionPct:   stats.ReductionPct(float64(emitted), float64(reducerPairs)),
	}, nil
}

// ---- sweep-framework specs ----

// ablationPoints converts numeric axis values into labelled Points.
func ablationPoints(prefix string, xs []int) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{Label: fmt.Sprintf("%s=%d", prefix, x), X: float64(x)}
	}
	return pts
}

func init() {
	Register(&Spec{
		Name:    "ablation-table-size",
		Title:   "Ablation: register table size (paper §5: fewer cells, more unaggregated pairs)",
		XLabel:  "table size",
		Points:  ablationPoints("table", []int{64, 256, 1024, 4096, 16384}),
		Metrics: []string{"data_reduction_pct", "pkt_reduction_pct", "spilled_pairs"},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			p, err := ablationRegisterSizePoint(tr.Seed, int(pt.X), scaledInt(ablationVocab, tr.Scale, 100), tr.SimWorkers)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"data_reduction_pct": p.DataReductionPct,
				"pkt_reduction_pct":  p.PacketReductionPct,
				"spilled_pairs":      float64(p.SpilledPairs),
			}, nil
		},
	})

	Register(&Spec{
		Name:    "ablation-pairs-per-packet",
		Title:   "Ablation: pairs per packet (paper: 10 from the 200-300B parse budget)",
		XLabel:  "pairs/packet",
		Points:  ablationPoints("pairs", []int{2, 5, 10, 12}),
		Metrics: []string{"data_reduction_pct", "pkt_reduction_pct"},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			p, err := ablationPairsPerPacketPoint(tr.Seed, int(pt.X), scaledInt(ablationVocab, tr.Scale, 100), tr.SimWorkers)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"data_reduction_pct": p.DataReductionPct,
				"pkt_reduction_pct":  p.PacketReductionPct,
			}, nil
		},
	})

	Register(&Spec{
		Name:    "ablation-key-width",
		Title:   "Ablation: fixed key width (paper §5: 16B keys waste bytes for short words)",
		XLabel:  "key width",
		Points:  ablationPoints("width", []int{8, 16, 32}),
		Metrics: []string{"data_reduction_pct", "reducer_pairs"},
		Run: func(pt Point, tr Trial) (map[string]float64, error) {
			p, err := ablationKeyWidthPoint(tr.Seed, int(pt.X), scaledInt(ablationVocab, tr.Scale, 100), tr.SimWorkers)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"data_reduction_pct": p.DataReductionPct,
				"reducer_pairs":      float64(p.ReducerPairs),
			}, nil
		},
	})

	Register(&Spec{
		Name:    "ablation-combiner",
		Title:   "Ablation: worker-level combiner vs in-network aggregation (paper §1)",
		XLabel:  "comparison",
		Points:  []Point{{Label: "combiner", X: 0}},
		Metrics: []string{"worker_level_reduction_pct", "in_network_reduction_pct"},
		Run: func(_ Point, tr Trial) (map[string]float64, error) {
			res, err := ablationWorkerCombiner(tr.Seed, scaledInt(600, tr.Scale, 100), tr.SimWorkers)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"worker_level_reduction_pct": res.WorkerLevelReductionPct,
				"in_network_reduction_pct":   res.InNetworkReductionPct,
			}, nil
		},
	})
}
