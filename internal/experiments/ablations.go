package experiments

import (
	"fmt"

	"github.com/daiet/daiet/internal/mapreduce"
	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/wire"
	"github.com/daiet/daiet/internal/workload"
)

// AblationPoint is one configuration's outcome in an ablation sweep.
type AblationPoint struct {
	Label string
	// X is the swept parameter's numeric value.
	X float64
	// DataReductionPct is the median per-reducer data-volume reduction of
	// DAIET vs the UDP baseline (isolates aggregation from transport
	// effects).
	DataReductionPct float64
	// PacketReductionPct is the median packet-count reduction vs UDP.
	PacketReductionPct float64
	// SpilledPairs counts pairs that travelled via spillover buckets.
	SpilledPairs uint64
	// ReducerPairs counts pairs arriving at reducers under DAIET.
	ReducerPairs uint64
}

// ablationCorpus builds the shared corpus for an ablation run; collisions
// are permitted when collisionFree is false (spillover ablations need
// them).
func ablationCorpus(seed uint64, reducers, vocabPer int, mult float64,
	tableSize, maxWordLen, keyWidth int, collisionFree bool) (*workload.Corpus, error) {
	return workload.Generate(workload.CorpusSpec{
		Seed:             seed,
		Reducers:         reducers,
		VocabPerReducer:  vocabPer,
		MeanMultiplicity: mult,
		TableSize:        tableSize,
		MaxWordLen:       maxWordLen,
		KeyWidth:         keyWidth,
		CollisionFree:    collisionFree,
	})
}

// runPair runs DAIET and the UDP baseline over the same splits and reports
// the medians.
func runPair(splits [][]string, ccfg mapreduce.ClusterConfig) (AblationPoint, error) {
	var pt AblationPoint
	daietCl, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return pt, err
	}
	daiet, err := daietCl.RunJob(mapreduce.WordCount, splits, mapreduce.ModeDAIET)
	if err != nil {
		return pt, err
	}
	udpCl, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return pt, err
	}
	udp, err := udpCl.RunJob(mapreduce.WordCount, splits, mapreduce.ModeUDPBaseline)
	if err != nil {
		return pt, err
	}
	var dataRed, pktRed []float64
	for i := range daiet.PerReducer {
		dataRed = append(dataRed, stats.ReductionPct(
			float64(udp.PerReducer[i].PayloadBytes), float64(daiet.PerReducer[i].PayloadBytes)))
		pktRed = append(pktRed, stats.ReductionPct(
			float64(udp.PerReducer[i].PacketsReceived), float64(daiet.PerReducer[i].PacketsReceived)))
		pt.ReducerPairs += daiet.PerReducer[i].PairsReceived
	}
	pt.DataReductionPct = stats.Median(dataRed)
	pt.PacketReductionPct = stats.Median(pktRed)
	for _, st := range daiet.SwitchTreeStats {
		pt.SpilledPairs += st.PairsSpilled
	}
	return pt, nil
}

// AblationRegisterSize sweeps the per-tree register table size. Fewer
// cells mean more collisions (paper §5: fewer cells increase "the
// possibility that a pair is not aggregated"), degrading reduction while
// preserving correctness via spillover. Sweep points are independent
// clusters over a shared read-only corpus, so parallelism (<= 0 means
// GOMAXPROCS) shards them across the runner's pool.
func AblationRegisterSize(seed uint64, sizes []int, parallelism int) ([]AblationPoint, error) {
	const (
		mappers, reducers = 8, 2
		vocabPer          = 800
	)
	// The corpus is NOT collision-free: small tables must spill.
	corpus, err := ablationCorpus(seed, reducers, vocabPer, 8.3, 1<<20, 16, 16, false)
	if err != nil {
		return nil, err
	}
	splits := corpus.Splits(mappers)
	return runner.Map(len(sizes), parallelism, func(shard int) (AblationPoint, error) {
		size := sizes[shard]
		pt, err := runPair(splits, mapreduce.ClusterConfig{
			NumMappers: mappers, NumReducers: reducers,
			TableSize: size, Seed: seed,
		})
		if err != nil {
			return pt, fmt.Errorf("experiments: table size %d: %w", size, err)
		}
		pt.Label = fmt.Sprintf("table=%d", size)
		pt.X = float64(size)
		return pt, nil
	})
}

// AblationPairsPerPacket sweeps the packetization bound (the paper fixes
// 10 from the 200-300 B parse budget). Fewer pairs per packet inflate
// packet counts on both sides but leave the data reduction untouched.
func AblationPairsPerPacket(seed uint64, counts []int, parallelism int) ([]AblationPoint, error) {
	const (
		mappers, reducers = 8, 2
		vocabPer          = 800
		tableSize         = 4096
	)
	corpus, err := ablationCorpus(seed, reducers, vocabPer, 8.3, tableSize, 16, 16, true)
	if err != nil {
		return nil, err
	}
	splits := corpus.Splits(mappers)
	return runner.Map(len(counts), parallelism, func(shard int) (AblationPoint, error) {
		n := counts[shard]
		pt, err := runPair(splits, mapreduce.ClusterConfig{
			NumMappers: mappers, NumReducers: reducers,
			TableSize: tableSize, MaxPairsPerPacket: n, Seed: seed,
		})
		if err != nil {
			return pt, fmt.Errorf("experiments: pairs/packet %d: %w", n, err)
		}
		pt.Label = fmt.Sprintf("pairs=%d", n)
		pt.X = float64(n)
		return pt, nil
	})
}

// AblationKeyWidth sweeps the fixed key width. The paper (§5) notes the
// 16 B fixed keys waste bytes for short words; narrower geometries shrink
// the on-wire volume for the same aggregation behaviour.
func AblationKeyWidth(seed uint64, widths []int, parallelism int) ([]AblationPoint, error) {
	const (
		mappers, reducers = 8, 2
		vocabPer          = 800
		tableSize         = 4096
		maxWordLen        = 8 // short words so every width >= 8 is lossless
	)
	for _, w := range widths {
		if w < maxWordLen {
			return nil, fmt.Errorf("experiments: key width %d below max word length %d", w, maxWordLen)
		}
	}
	// Each width regenerates its corpus (the pair geometry changes), so the
	// whole point — corpus included — is one shard.
	return runner.Map(len(widths), parallelism, func(shard int) (AblationPoint, error) {
		w := widths[shard]
		var pt AblationPoint
		corpus, err := ablationCorpus(seed, reducers, vocabPer, 8.3, tableSize, maxWordLen, w, true)
		if err != nil {
			return pt, err
		}
		splits := corpus.Splits(mappers)
		pt, err = runPair(splits, mapreduce.ClusterConfig{
			NumMappers: mappers, NumReducers: reducers,
			TableSize: tableSize, Seed: seed,
			Geometry: wire.PairGeometry{KeyWidth: w},
		})
		if err != nil {
			return pt, fmt.Errorf("experiments: key width %d: %w", w, err)
		}
		pt.Label = fmt.Sprintf("keywidth=%d", w)
		pt.X = float64(w)
		return pt, nil
	})
}

// WorkerCombinerResult contrasts worker-level combining (classic MapReduce
// combiners) with in-network aggregation — the paper's §1 motivation that
// "aggregation functions are only applied at the worker-level, missing the
// opportunity of achieving better traffic reduction ratios".
type WorkerCombinerResult struct {
	// WorkerLevelReductionPct is the pair reduction a mapper-side combiner
	// achieves alone (unique-per-mapper / emitted).
	WorkerLevelReductionPct float64
	// InNetworkReductionPct is DAIET's pair reduction over the same input
	// (reducer-received / emitted), with mapper-side combining also on.
	InNetworkReductionPct float64
}

// AblationWorkerCombiner measures both levels on one corpus.
func AblationWorkerCombiner(seed uint64) (*WorkerCombinerResult, error) {
	const (
		mappers, reducers = 8, 2
		vocabPer          = 600
		tableSize         = 4096
	)
	corpus, err := ablationCorpus(seed, reducers, vocabPer, 8.3, tableSize, 16, 16, true)
	if err != nil {
		return nil, err
	}
	splits := corpus.Splits(mappers)

	// Worker-level combining: each mapper aggregates its split locally.
	var emitted, afterWorker int
	combined := make([][]string, len(splits))
	for m, split := range splits {
		counts := map[string]int{}
		for _, w := range split {
			counts[w]++
		}
		emitted += len(split)
		afterWorker += len(counts)
		// Re-encode as "word" repeated once with its count folded in via a
		// count-valued job below: the combined stream carries one record
		// per distinct word per mapper.
		for w := range counts {
			combined[m] = append(combined[m], fmt.Sprintf("%s=%d", w, counts[w]))
		}
	}

	// DAIET run over the combined stream: a WordCount variant whose Map
	// parses "word=count".
	job := mapreduce.Job{
		Name: "wordcount-precombined",
		Map: func(rec string, emit func(string, uint32)) {
			for i := len(rec) - 1; i >= 0; i-- {
				if rec[i] == '=' {
					var n uint32
					for _, c := range rec[i+1:] {
						n = n*10 + uint32(c-'0')
					}
					emit(rec[:i], n)
					return
				}
			}
			emit(rec, 1)
		},
		Agg: mapreduce.WordCount.Agg,
	}
	cl, err := mapreduce.NewCluster(mapreduce.ClusterConfig{
		NumMappers: mappers, NumReducers: reducers, TableSize: tableSize, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := cl.RunJob(job, combined, mapreduce.ModeDAIET)
	if err != nil {
		return nil, err
	}
	var reducerPairs uint64
	for _, r := range res.PerReducer {
		reducerPairs += r.PairsReceived
	}
	return &WorkerCombinerResult{
		WorkerLevelReductionPct: stats.ReductionPct(float64(emitted), float64(afterWorker)),
		InNetworkReductionPct:   stats.ReductionPct(float64(emitted), float64(reducerPairs)),
	}, nil
}
