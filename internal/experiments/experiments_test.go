package experiments

import (
	"testing"
)

func TestFigure1aBand(t *testing.T) {
	fig, err := Figure1a(7, 60)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Series.Len() != 60 {
		t.Fatalf("points %d", fig.Series.Len())
	}
	// Shorter run, wider tolerance than the full assertion in mlps tests.
	if fig.Summary.Mean < 30 || fig.Summary.Mean > 55 {
		t.Fatalf("SGD overlap mean %.1f%% outside [30, 55]", fig.Summary.Mean)
	}
	if fig.LastLoss >= fig.FirstLoss {
		t.Fatalf("loss did not fall: %.3f -> %.3f", fig.FirstLoss, fig.LastLoss)
	}
}

func TestFigure1bBand(t *testing.T) {
	fig, err := Figure1b(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Summary.Mean < 55 || fig.Summary.Mean > 80 {
		t.Fatalf("Adam overlap mean %.1f%% outside [55, 80]", fig.Summary.Mean)
	}
}

func TestFigure1WorkerSweepMonotone(t *testing.T) {
	pts, err := Figure1WorkerSweep(7, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OverlapPct <= pts[i-1].OverlapPct {
			t.Fatalf("overlap not increasing: %+v", pts)
		}
	}
}

func TestFigure1cShape(t *testing.T) {
	fig, err := Figure1c(Figure1cConfig{Seed: 2, Scale: 12})
	if err != nil {
		t.Fatal(err)
	}
	if fig.PageRank.Len() != 10 {
		t.Fatalf("pagerank points %d", fig.PageRank.Len())
	}
	// PageRank flat and high.
	min, max := fig.PageRank.YRange()
	if min < 0.5 || max-min > 0.05 {
		t.Fatalf("pagerank band [%.3f, %.3f] not flat/high", min, max)
	}
	// SSSP low start, high later.
	if fig.SSSP.Y[0] > 0.5 {
		t.Fatalf("sssp starts at %.3f", fig.SSSP.Y[0])
	}
	if _, ssMax := fig.SSSP.YRange(); ssMax < 0.5 {
		t.Fatalf("sssp never climbs (max %.3f)", ssMax)
	}
	// WCC high start, decaying: compare first iteration against the last
	// with traffic.
	if fig.WCC.Y[0] < 0.5 {
		t.Fatalf("wcc starts at %.3f", fig.WCC.Y[0])
	}
	last := fig.WCC.Y[0]
	for i := len(fig.WCC.Y) - 1; i >= 0; i-- {
		if fig.WCC.Y[i] > 0 {
			last = fig.WCC.Y[i]
			break
		}
	}
	if last >= fig.WCC.Y[0] {
		t.Fatalf("wcc did not decay: %.3f -> %.3f", fig.WCC.Y[0], last)
	}
}

func TestFigure3PaperBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure-3 run is slow")
	}
	res, err := Figure3(Figure3Config{Seed: 1, Scale: 0.4}) // 800 words/reducer
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 86.9-89.3% data volume reduction; our band widened slightly
	// for the scaled-down corpus.
	if res.DataReduction.Median < 82 || res.DataReduction.Median > 93 {
		t.Fatalf("data reduction median %.1f%% outside [82, 93]", res.DataReduction.Median)
	}
	// Paper: median 83.6% reduce-time reduction. Wall-clock timing of small
	// sorts is noisy, so assert a broad positive band.
	if res.ReduceTimeReduction.Median < 40 {
		t.Fatalf("reduce time reduction median %.1f%% below 40%%", res.ReduceTimeReduction.Median)
	}
	// Paper: 88.1-90.5% packet reduction vs the UDP baseline.
	if res.PacketsVsUDP.Median < 82 || res.PacketsVsUDP.Median > 95 {
		t.Fatalf("packets vs UDP median %.1f%% outside [82, 95]", res.PacketsVsUDP.Median)
	}
	// Paper: median 42% vs TCP. Shape requirement: DAIET must receive fewer
	// packets than TCP (positive reduction).
	if res.PacketsVsTCP.Median <= 0 {
		t.Fatalf("packets vs TCP median %.1f%% not positive", res.PacketsVsTCP.Median)
	}
	if res.PairsSpilled != 0 {
		t.Fatalf("collision-free corpus spilled %d pairs", res.PairsSpilled)
	}
}

func TestAblationRegisterSizeMonotone(t *testing.T) {
	pts, err := AblationRegisterSize(3, []int{64, 512, 4096}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger tables, fewer spills.
	for i := 1; i < len(pts); i++ {
		if pts[i].SpilledPairs > pts[i-1].SpilledPairs {
			t.Fatalf("spills grew with table size: %+v", pts)
		}
	}
	// Bigger tables, better (or equal) data reduction.
	if pts[len(pts)-1].DataReductionPct < pts[0].DataReductionPct {
		t.Fatalf("reduction fell with table size: %+v", pts)
	}
	// The tiny table must actually spill.
	if pts[0].SpilledPairs == 0 {
		t.Fatal("64-cell table never spilled")
	}
}

func TestAblationPairsPerPacket(t *testing.T) {
	pts, err := AblationPairsPerPacket(3, []int{2, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Data reduction is invariant to packetization.
	if diff := pts[0].DataReductionPct - pts[1].DataReductionPct; diff > 2 || diff < -2 {
		t.Fatalf("data reduction moved with packetization: %+v", pts)
	}
	// Reducer pairs identical.
	if pts[0].ReducerPairs != pts[1].ReducerPairs {
		t.Fatalf("pair counts differ: %+v", pts)
	}
}

func TestAblationKeyWidth(t *testing.T) {
	pts, err := AblationKeyWidth(3, []int{8, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same aggregation behaviour regardless of width.
	if pts[0].ReducerPairs != pts[1].ReducerPairs {
		t.Fatalf("pair counts differ: %+v", pts)
	}
	if _, err := AblationKeyWidth(3, []int{4}, 0); err == nil {
		t.Fatal("width below word length must fail")
	}
}

func TestAblationWorkerCombiner(t *testing.T) {
	res, err := AblationWorkerCombiner(3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating claim: in-network beats worker-level-only.
	if res.InNetworkReductionPct <= res.WorkerLevelReductionPct {
		t.Fatalf("in-network %.1f%% <= worker-level %.1f%%",
			res.InNetworkReductionPct, res.WorkerLevelReductionPct)
	}
	if res.WorkerLevelReductionPct <= 0 {
		t.Fatalf("worker-level combiner did nothing: %.1f%%", res.WorkerLevelReductionPct)
	}
}

func TestMultiRackCoreReduction(t *testing.T) {
	res, err := MultiRack(MultiRackConfig{Seed: 5, Vocab: 400})
	if err != nil {
		t.Fatal(err)
	}
	// Same answer in both modes.
	if res.ReducerPairsDAIET >= res.ReducerPairsBaseline {
		t.Fatalf("DAIET pairs %d >= baseline %d", res.ReducerPairsDAIET, res.ReducerPairsBaseline)
	}
	// Hierarchical aggregation must strip most core-link traffic: leaves
	// aggregate their rack before the spine.
	if res.CoreReductionPct < 50 {
		t.Fatalf("core reduction %.1f%% below 50%%", res.CoreReductionPct)
	}
	// Edge links include each mapper's (unaggregated) first hop, so the
	// edge reduction must be strictly smaller than the core reduction.
	if res.EdgeReductionPct >= res.CoreReductionPct {
		t.Fatalf("edge %.1f%% >= core %.1f%%", res.EdgeReductionPct, res.CoreReductionPct)
	}
	if res.CoreBytesBaseline == 0 || res.CoreBytesDAIET == 0 {
		t.Fatal("no core traffic measured")
	}
}

func TestIncastLossFreeAtTestbedBuffers(t *testing.T) {
	// Testbed-sized buffers: the synchronized burst fits, nothing drops,
	// nothing retransmits — the regime every other figure runs in.
	res, err := Incast(IncastConfig{Seed: 3, Senders: 6, PairsPerSender: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDropped != 0 || res.Retransmissions != 0 {
		t.Fatalf("loss-free run dropped %d frames, retransmitted %d",
			res.FramesDropped, res.Retransmissions)
	}
	if res.DropRatePct != 0 {
		t.Fatalf("drop rate %.2f%% at testbed buffers", res.DropRatePct)
	}
}

func TestIncastSmallBuffersDropAndRecover(t *testing.T) {
	small, err := Incast(IncastConfig{Seed: 3, Senders: 6, PairsPerSender: 300, QueueBytes: 2048})
	if err != nil {
		t.Fatal(err) // Incast itself verifies exactly-once aggregation
	}
	if small.FramesDropped == 0 || small.Retransmissions == 0 {
		t.Fatalf("2 KiB queues never dropped (%d) or retransmitted (%d)",
			small.FramesDropped, small.Retransmissions)
	}
	big, err := Incast(IncastConfig{Seed: 3, Senders: 6, PairsPerSender: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Loss recovery costs time: the lossy round must finish strictly later.
	if small.Completion <= big.Completion {
		t.Fatalf("completion %v not inflated vs loss-free %v", small.Completion, big.Completion)
	}
}

func TestIncastDropRateMonotoneInQueue(t *testing.T) {
	var prev *IncastResult
	for _, q := range []int{2048, 8192, 65536} {
		res, err := Incast(IncastConfig{Seed: 5, Senders: 6, PairsPerSender: 300, QueueBytes: q})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && res.DropRatePct > prev.DropRatePct {
			t.Fatalf("drop rate grew with queue size: %d B -> %.2f%%, larger queue -> %.2f%%",
				q, prev.DropRatePct, res.DropRatePct)
		}
		prev = res
	}
}

func TestMultiRackValidation(t *testing.T) {
	if _, err := MultiRack(MultiRackConfig{Leaves: 1, HostsPerLeaf: 2, Mappers: 8, Reducers: 8}); err == nil {
		t.Fatal("oversubscribed placement must fail")
	}
}
