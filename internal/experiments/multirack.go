package experiments

import (
	"fmt"

	"github.com/daiet/daiet/internal/mapreduce"
	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/runner"
	"github.com/daiet/daiet/internal/stats"
	"github.com/daiet/daiet/internal/topology"
	"github.com/daiet/daiet/internal/workload"
)

// MultiRackResult extends the paper's single-switch evaluation to the
// cluster deployments its §1 envisions ("practical deployments for our
// proposal might be better suited within clusters and racks"): WordCount on
// a leaf-spine fabric, measuring how much traffic hierarchical in-network
// aggregation removes from the core (leaf→spine) links, where data center
// bandwidth is scarcest.
type MultiRackResult struct {
	Leaves, Spines, HostsPerLeaf int

	// CoreBytes are bytes crossing leaf->spine links during the shuffle.
	CoreBytesBaseline uint64
	CoreBytesDAIET    uint64
	// EdgeBytes are bytes on host<->leaf links.
	EdgeBytesBaseline uint64
	EdgeBytesDAIET    uint64

	// CoreReductionPct is the headline number.
	CoreReductionPct float64
	EdgeReductionPct float64

	// ReducerPairs sanity-checks equality of results between modes.
	ReducerPairsBaseline uint64
	ReducerPairsDAIET    uint64
}

// MultiRackConfig sizes the experiment.
type MultiRackConfig struct {
	Seed         uint64
	Leaves       int // default 3
	Spines       int // default 2
	HostsPerLeaf int // default 6 (mappers fill racks, reducers share them)
	Mappers      int // default 12
	Reducers     int // default 4
	Vocab        int // default 800 per reducer
	TableSize    int // default 4096
	// Parallelism shards the baseline and DAIET trials across the runner's
	// pool (<= 0: GOMAXPROCS, 1: sequential).
	Parallelism int
	// SimWorkers partitions each trial's leaf-spine fabric into parallel
	// event-engine domains along the rack cut (0 autotunes; 1 forces the
	// sequential engine). Results are byte-identical at any value; only
	// wall-clock changes.
	SimWorkers int
}

func (c MultiRackConfig) withDefaults() MultiRackConfig {
	if c.Leaves == 0 {
		c.Leaves = 3
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 6
	}
	if c.Mappers == 0 {
		c.Mappers = 12
	}
	if c.Reducers == 0 {
		c.Reducers = 4
	}
	if c.Vocab == 0 {
		c.Vocab = 800
	}
	if c.TableSize == 0 {
		c.TableSize = 4096
	}
	return c
}

// MultiRack runs the experiment. Mapper hosts occupy the first racks;
// reducers the last — so shuffle traffic must cross the spine, and leaf
// switches aggregate their rack's contribution before it does.
func MultiRack(cfg MultiRackConfig) (*MultiRackResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Mappers+cfg.Reducers > cfg.Leaves*cfg.HostsPerLeaf {
		return nil, fmt.Errorf("experiments: %d workers exceed %d hosts",
			cfg.Mappers+cfg.Reducers, cfg.Leaves*cfg.HostsPerLeaf)
	}
	corpus, err := workload.Generate(workload.CorpusSpec{
		Seed:             cfg.Seed,
		Reducers:         cfg.Reducers,
		VocabPerReducer:  cfg.Vocab,
		MeanMultiplicity: 8.3,
		TableSize:        cfg.TableSize,
		CollisionFree:    true,
	})
	if err != nil {
		return nil, err
	}
	splits := corpus.Splits(cfg.Mappers)

	// Both trials build their own fabric (and netsim engine) over the shared
	// read-only splits, so the runner fans them out as independent shards.
	type trial struct {
		res *mapreduce.Result
		cl  *mapreduce.Cluster
	}
	modes := []mapreduce.Mode{mapreduce.ModeUDPBaseline, mapreduce.ModeDAIET}
	trials, err := runner.Map(len(modes), cfg.Parallelism, func(shard int) (trial, error) {
		plan := topology.LeafSpine(cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf,
			netsim.LinkConfig{QueueBytes: 64 << 20})
		cl, err := mapreduce.NewCluster(mapreduce.ClusterConfig{
			NumMappers:  cfg.Mappers,
			NumReducers: cfg.Reducers,
			Plan:        plan,
			TableSize:   cfg.TableSize,
			Seed:        cfg.Seed,
			SimWorkers:  cfg.SimWorkers,
		})
		if err != nil {
			return trial{}, err
		}
		res, err := cl.RunJob(mapreduce.WordCount, splits, modes[shard])
		return trial{res: res, cl: cl}, err
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: multirack: %w", err)
	}
	baseRes, baseCl := trials[0].res, trials[0].cl
	daietRes, daietCl := trials[1].res, trials[1].cl

	out := &MultiRackResult{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
	}
	out.CoreBytesBaseline, out.EdgeBytesBaseline = linkBytes(baseCl)
	out.CoreBytesDAIET, out.EdgeBytesDAIET = linkBytes(daietCl)
	out.CoreReductionPct = stats.ReductionPct(float64(out.CoreBytesBaseline), float64(out.CoreBytesDAIET))
	out.EdgeReductionPct = stats.ReductionPct(float64(out.EdgeBytesBaseline), float64(out.EdgeBytesDAIET))
	for _, r := range baseRes.PerReducer {
		out.ReducerPairsBaseline += r.PairsReceived
	}
	for _, r := range daietRes.PerReducer {
		out.ReducerPairsDAIET += r.PairsReceived
	}
	return out, nil
}

// linkBytes sums transmitted bytes over core (switch<->switch) and edge
// (host<->switch) links, both directions.
func linkBytes(cl *mapreduce.Cluster) (core, edge uint64) {
	for _, l := range cl.Fab.Plan.Links {
		aSwitch := topology.IsSwitchID(l.A)
		bSwitch := topology.IsSwitchID(l.B)
		aPort := cl.Fab.PortTo(l.A, l.B)
		bPort := cl.Fab.PortTo(l.B, l.A)
		bytes := cl.Net.PortStats(l.A, aPort).TxBytes + cl.Net.PortStats(l.B, bPort).TxBytes
		if aSwitch && bSwitch {
			core += bytes
		} else {
			edge += bytes
		}
	}
	return core, edge
}

func init() {
	Register(&Spec{
		Name:    "multirack",
		Title:   "Extension: hierarchical aggregation on a leaf-spine fabric (paper §1 clusters/racks)",
		XLabel:  "fabric",
		Points:  []Point{{Label: "leafspine", X: 0}},
		Metrics: []string{"core_reduction_pct", "edge_reduction_pct"},
		Run: func(_ Point, tr Trial) (map[string]float64, error) {
			res, err := MultiRack(MultiRackConfig{
				Seed:        tr.Seed,
				Vocab:       scaledInt(800, tr.Scale, 100),
				Parallelism: 1,
				SimWorkers:  tr.SimWorkers,
			})
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"core_reduction_pct": res.CoreReductionPct,
				"edge_reduction_pct": res.EdgeReductionPct,
			}, nil
		},
	})
}
