package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/daiet/daiet/internal/netsim"
	"github.com/daiet/daiet/internal/telemetry"
	"github.com/daiet/daiet/internal/topology"
)

// Timeline specs are the observability counterpart of the figure
// registry: each entry runs one representative recorded trial of a
// figure's workload and returns its telemetry timeline. cmd/daiet-bench
// -telemetry writes each as <dir>/<name>_timeline.txt and cmd/daiet-trace
// renders those into Chrome trace JSON / CSV; the conformance suite holds
// every entry's DeterministicBytes identical across -sim-workers values
// and re-cut schedules.

// TimelineSpec declares one recordable workload.
type TimelineSpec struct {
	// Name keys the registry and names the artifact file.
	Name string
	// Title is a one-line description for listings.
	Title string
	// Run executes one recorded trial and returns its timeline.
	Run func(tr Trial) (*telemetry.Timeline, error)
}

var timelineRegistry = map[string]*TimelineSpec{}

// RegisterTimeline adds a TimelineSpec; duplicates panic at init time.
func RegisterTimeline(s *TimelineSpec) {
	if s.Name == "" || s.Run == nil {
		panic("experiments: RegisterTimeline: incomplete spec")
	}
	if _, dup := timelineRegistry[s.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate timeline spec %q", s.Name))
	}
	timelineRegistry[s.Name] = s
}

// TimelineSpecs returns every registered timeline spec sorted by name.
func TimelineSpecs() []*TimelineSpec {
	out := make([]*TimelineSpec, 0, len(timelineRegistry))
	for _, s := range timelineRegistry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupTimeline returns the TimelineSpec registered under name, or nil.
func LookupTimeline(name string) *TimelineSpec { return timelineRegistry[name] }

// artifactTelemetry is the recording configuration the timeline artifacts
// use: a 100 µs probe cadence with a deep ring (the tenants run spans a
// few tens of milliseconds of virtual time), and 1-in-16 path sampling.
func artifactTelemetry(seed uint64) *telemetry.Config {
	return &telemetry.Config{
		Cadence:  netsim.Duration(100 * time.Microsecond),
		Capacity: 65536,
		PathTrace: telemetry.PathTraceConfig{
			SampleEvery: 16,
			Seed:        seed,
			Capacity:    4096,
		},
	}
}

func init() {
	RegisterTimeline(&TimelineSpec{
		Name:  "tenants",
		Title: "victim-vs-aggressor pool occupancy at the shared switch (c2K/a1024 sweep point)",
		Run: func(tr Trial) (*telemetry.Timeline, error) {
			res, err := Tenants(TenantsConfig{
				Seed:          tr.Seed,
				VictimSenders: scaledInt(4, tr.Scale, 2),
				VictimPairs:   scaledInt(240, tr.Scale, 40),
				AggSenders:    scaledInt(16, tr.Scale, 4),
				AggPairs:      scaledInt(600, tr.Scale, 80),
				VictimReserve: 2048,
				AggAlpha:      1024,
				SimWorkers:    tr.SimWorkers,
				Recut:         tr.Recut,
				Telemetry:     artifactTelemetry(tr.Seed),
			})
			if err != nil {
				return nil, err
			}
			return res.Timeline, nil
		},
	})
	RegisterTimeline(&TimelineSpec{
		Name:  "megaincast",
		Title: "leaf/spine pool occupancy and sampled frame paths through the reliable tree",
		Run: func(tr Trial) (*telemetry.Timeline, error) {
			cfg := megaIncastConfig(tr.Seed, tr.Scale,
				megaIncastPoint{label: "recorded", workers: tr.SimWorkers})
			cfg.Recut = tr.Recut
			cfg.Telemetry = artifactTelemetry(tr.Seed)
			res, err := BigIncast(cfg)
			if err != nil {
				return nil, err
			}
			return res.Timeline, nil
		},
	})
}

// recutSchedule is the jittered re-cut configuration the telemetry
// conformance tests replay timelines under.
func recutSchedule(seed uint64) topology.RecutConfig {
	return topology.RecutConfig{
		Every:      200 * time.Microsecond,
		MinSkewPct: 5,
		Seed:       seed ^ 0x9e3779b97f4a7c15,
	}
}
