package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/daiet/daiet/internal/stats"
)

// smokeCfg is the miniature configuration every registry-wide test runs:
// two seeds so confidence intervals are non-degenerate, a small scale so
// the full registry stays fast.
var smokeCfg = RunConfig{Seed: 7, Seeds: 2, Scale: 0.08, Parallelism: 0}

// wantSpecs is the closed list of figures the registry must serve: the
// paper's evaluation, the ablations, and the extensions. A new figure file
// extends this list.
var wantSpecs = []string{
	"ablation-combiner",
	"ablation-key-width",
	"ablation-pairs-per-packet",
	"ablation-table-size",
	"bigincast",
	"faults",
	"fig1-workers",
	"fig1a",
	"fig1b",
	"fig1c",
	"fig3",
	"incast",
	"incast-jitter",
	"megaincast",
	"multirack",
	"parallel-sim",
	"syncproto",
	"tenants",
}

func TestRegistryEnumeratesEveryFigure(t *testing.T) {
	specs := Specs()
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	if !reflect.DeepEqual(names, wantSpecs) {
		t.Fatalf("registry = %v\nwant      %v", names, wantSpecs)
	}
	for _, name := range wantSpecs {
		if Lookup(name) == nil {
			t.Fatalf("Lookup(%q) = nil", name)
		}
	}
	if Lookup("no-such-figure") != nil {
		t.Fatal("Lookup of unknown figure must be nil")
	}
}

// TestEverySpecRunsAndRoundTrips executes the whole registry at smoke size
// and round-trips each result through the generic JSON emitter — the
// schema BENCH_results.json embeds.
func TestEverySpecRunsAndRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-wide smoke run")
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := spec.Execute(smokeCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Points) != len(spec.Points) {
				t.Fatalf("%d points, want %d", len(res.Points), len(spec.Points))
			}
			for _, pt := range res.Points {
				if len(pt.Metrics) != len(spec.Metrics) {
					t.Fatalf("point %s: %d metrics, want %d", pt.Label, len(pt.Metrics), len(spec.Metrics))
				}
				for _, m := range spec.Metrics {
					e, ok := pt.Metrics[m]
					if !ok {
						t.Fatalf("point %s missing metric %q", pt.Label, m)
					}
					if e.N != smokeCfg.Seeds {
						t.Fatalf("point %s metric %s: n=%d, want %d", pt.Label, m, e.N, smokeCfg.Seeds)
					}
					if !(e.Lo <= e.Mean && e.Mean <= e.Hi) {
						t.Fatalf("point %s metric %s: interval %v not ordered", pt.Label, m, e)
					}
				}
			}
			// Headline flattening: unique keys, one per (point, metric).
			head := res.Headline()
			if len(head) != len(spec.Points)*len(spec.Metrics) {
				t.Fatalf("headline has %d entries, want %d", len(head), len(spec.Points)*len(spec.Metrics))
			}
			// JSON round-trip through the generic emitter.
			blob, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			var back FigureResult
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*res, back) {
				t.Fatalf("JSON round-trip changed the result:\n%+v\n%+v", *res, back)
			}
			// The generic table renderer covers every metric column.
			var buf bytes.Buffer
			res.WriteTable(&buf)
			for _, m := range spec.Metrics {
				if !strings.Contains(buf.String(), m) {
					t.Fatalf("table missing column %q:\n%s", m, buf.String())
				}
			}
		})
	}
}

func TestExecuteRejectsMissingMetric(t *testing.T) {
	s := &Spec{
		Name:    "broken",
		Points:  []Point{{Label: "p"}},
		Metrics: []string{"present", "absent"},
		Run: func(Point, Trial) (map[string]float64, error) {
			return map[string]float64{"present": 1}, nil
		},
	}
	if _, err := s.Execute(RunConfig{Seeds: 1}); err == nil ||
		!strings.Contains(err.Error(), "absent") {
		t.Fatalf("missing metric not reported: %v", err)
	}
}

func TestRegisterValidates(t *testing.T) {
	run := func(Point, Trial) (map[string]float64, error) { return nil, nil }
	cases := map[string]*Spec{
		"empty name": {Points: []Point{{}}, Metrics: []string{"m"}, Run: run},
		"no run":     {Name: "x1", Points: []Point{{}}, Metrics: []string{"m"}},
		"no points":  {Name: "x2", Metrics: []string{"m"}, Run: run},
		"no metrics": {Name: "x3", Points: []Point{{}}, Run: run},
		"duplicate":  {Name: "fig3", Points: []Point{{}}, Metrics: []string{"m"}, Run: run},
		"volatile not declared": {Name: "x4", Points: []Point{{}}, Metrics: []string{"m"},
			Volatile: []string{"other"}, Run: run},
	}
	for name, s := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Register did not panic", name)
				}
			}()
			Register(s)
		}()
	}
}

func TestHeadlineKeys(t *testing.T) {
	mk := func(labels ...string) *FigureResult {
		r := &FigureResult{MetricNames: []string{"m"}}
		for _, l := range labels {
			r.Points = append(r.Points, PointResult{
				Point:   Point{Label: l},
				Metrics: map[string]stats.Estimate{"m": {N: 1}},
			})
		}
		return r
	}
	// Single point: bare metric name.
	if head := mk("only").Headline(); len(head) != 1 {
		t.Fatalf("headline %v", head)
	} else if _, ok := head["m"]; !ok {
		t.Fatalf("single-point key not bare: %v", head)
	}
	// Sweep: qualified, sanitized keys.
	head := mk("table=64", "Table 128").Headline()
	for _, want := range []string{"m_table_64", "m_table_128"} {
		if _, ok := head[want]; !ok {
			t.Fatalf("missing key %q in %v", want, head)
		}
	}
}
