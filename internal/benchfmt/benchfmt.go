// Package benchfmt defines the BENCH_results.json schema shared by its
// writer (cmd/daiet-bench) and its reader (cmd/benchdiff), so the two
// binaries cannot drift apart silently — encoding/json ignores unknown
// fields, which would otherwise turn a schema change into a CI gate that
// compares zero values.
package benchfmt

import "github.com/daiet/daiet/internal/stats"

// Schema is the current report version. Schema 2 replaced the
// point-estimate metric values of schema 1 with Estimate objects
// (mean/stderr/ci_lo/ci_hi/n) from the multi-seed sweep framework.
// Schema 3 added SimWorkers (the intra-simulation partition degree), which
// skews wall-clock exactly like Parallelism does. Schema 4 gave SimWorkers
// an autotuned mode: 0 records "-sim-workers auto" (each fabric picks
// min(rack-cut units, GOMAXPROCS)), and the figure set gained the
// fault-injection and incast-jitter figures. Schema 5 added the bigincast
// figure (shared-memory switch buffers: drop rates under DT vs static
// split, pool high-water marks, per-sender fairness), whose drop-rate
// metrics cmd/benchdiff can gate on via -gate-drift. Schema 6 added
// per-figure engine-scale accounting (EventsTotal, EventsPerSec,
// AllocsPerFrame — simulator events executed, their wall-clock rate, and
// heap allocations per accepted frame) plus the megaincast figure;
// cmd/benchdiff gates allocation regressions via -gate-allocs. Schema 7
// added the tenants figure (multi-class hard-carved pool slicing: per-tenant
// victim/aggressor drop attribution, completion inflation, Jain fairness),
// whose victim drop rate cmd/benchdiff gates via -gate-drift. Schema 8
// added telemetry records: when daiet-bench runs with -telemetry, each
// recorded timeline contributes a figure record (Telemetry: true, named
// "<timeline>_telemetry") whose AllocsPerFrame measures the telemetry-ON
// budget — gated absolutely via -gate-allocs next to the telemetry-OFF
// megaincast contract. Schema 9 added the partitioned engine's
// synchronization counters (SyncBarriers, SyncWindows, SyncIdleWindows —
// process-wide deltas around each figure) plus the syncproto figure
// (global-min lookahead vs per-channel EIT horizons across cut-link
// latency profiles), whose sync-counter metrics cmd/benchdiff gates via
// -gate-drift.
const Schema = 9

// FigureRecord is one figure's entry: wall-clock plus every headline
// metric as a mean with confidence bounds.
type FigureRecord struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Seeds  int     `json:"seeds"`
	// Volatile lists the headline-metric name prefixes derived from host
	// wall-clock (the Spec's Volatile metrics): real between runs and
	// across machines, so benchdiff's CI-drift check skips them.
	Volatile []string                  `json:"volatile,omitempty"`
	Metrics  map[string]stats.Estimate `json:"metrics"`

	// Engine-scale accounting (schema 6), measured around the whole figure
	// from the process-wide netsim counters and runtime.MemStats deltas.
	// Deterministic and comparable only at -parallel 1 (concurrent figures
	// interleave the process-wide counters); CI's report job runs that way.
	// These are record-level fields, not Metrics: EventsPerSec is
	// wall-clock-derived (volatile by nature) and AllocsPerFrame is gated
	// by an absolute budget (-gate-allocs), not by baseline-CI drift.
	EventsTotal    uint64  `json:"events_total"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerFrame float64 `json:"allocs_per_frame"`

	// Partitioned-engine synchronization accounting (schema 9), measured
	// like EventsTotal from the process-wide netsim counters: barriers
	// reached, execution windows dispatched, and windows that dispatched
	// zero events. All zero when every fabric in the figure ran the
	// sequential engine. Deterministic for a pinned engine configuration,
	// but cut-dependent — comparable only at matching -sim-workers.
	SyncBarriers    uint64 `json:"sync_barriers"`
	SyncWindows     uint64 `json:"sync_windows"`
	SyncIdleWindows uint64 `json:"sync_idle_windows"`

	// Telemetry marks a record produced by a recorded timeline run
	// (schema 8): its AllocsPerFrame includes the recorder's fixed budget
	// (probe sampling, hop slabs), unlike ordinary figure records whose
	// workloads run unobserved.
	Telemetry bool `json:"telemetry,omitempty"`
}

// IsVolatile reports whether headline metric key derives from a volatile
// metric. Sweep figures qualify headline keys with the point label
// (e.g. "wall_ms_4w"), so volatile names match as prefixes.
func (f FigureRecord) IsVolatile(key string) bool {
	for _, v := range f.Volatile {
		if key == v || (len(key) > len(v)+1 && key[:len(v)+1] == v+"_") {
			return true
		}
	}
	return false
}

// Report is the top-level BENCH_results.json document.
type Report struct {
	Schema      int            `json:"schema"`
	Seed        uint64         `json:"seed"`
	Seeds       int            `json:"seeds"`
	Scale       float64        `json:"scale"`
	Parallelism int            `json:"parallelism"`
	SimWorkers  int            `json:"sim_workers"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	TotalWallMS float64        `json:"total_wall_ms"`
	Figures     []FigureRecord `json:"figures"`
}
