// Package benchfmt defines the BENCH_results.json schema shared by its
// writer (cmd/daiet-bench) and its reader (cmd/benchdiff), so the two
// binaries cannot drift apart silently — encoding/json ignores unknown
// fields, which would otherwise turn a schema change into a CI gate that
// compares zero values.
package benchfmt

import "github.com/daiet/daiet/internal/stats"

// Schema is the current report version. Schema 2 replaced the
// point-estimate metric values of schema 1 with Estimate objects
// (mean/stderr/ci_lo/ci_hi/n) from the multi-seed sweep framework.
const Schema = 2

// FigureRecord is one figure's entry: wall-clock plus every headline
// metric as a mean with confidence bounds.
type FigureRecord struct {
	Name    string                    `json:"name"`
	WallMS  float64                   `json:"wall_ms"`
	Seeds   int                       `json:"seeds"`
	Metrics map[string]stats.Estimate `json:"metrics"`
}

// Report is the top-level BENCH_results.json document.
type Report struct {
	Schema      int            `json:"schema"`
	Seed        uint64         `json:"seed"`
	Seeds       int            `json:"seeds"`
	Scale       float64        `json:"scale"`
	Parallelism int            `json:"parallelism"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	TotalWallMS float64        `json:"total_wall_ms"`
	Figures     []FigureRecord `json:"figures"`
}
