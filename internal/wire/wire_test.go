package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Example from RFC 1071 §3: {0x0001, 0xf203, 0xf4f5, 0xf6f7} sums to
	// 0xddf2 with carries folded; checksum is its complement 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Fatalf("odd checksum = %#x", got)
	}
}

func TestMACNodeRoundtrip(t *testing.T) {
	f := func(id uint32) bool {
		id &= 0xffffffff
		return MACFromNode(id).NodeID() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if s := MACFromNode(1).String(); s != "02:da:00:00:00:01" {
		t.Fatalf("mac string: %s", s)
	}
}

func TestIPNodeRoundtrip(t *testing.T) {
	f := func(raw uint32) bool {
		id := raw & 0x00ffffff // 24-bit node space in 10.0.0.0/8
		return IPFromNode(id).NodeID() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if s := IPFromNode(0x010203).String(); s != "10.1.2.3" {
		t.Fatalf("ip string: %s", s)
	}
}

func TestEthernetRoundtrip(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 64)
	buf.AppendBytes([]byte("payload"))
	e := Ethernet{Dst: MACFromNode(2), Src: MACFromNode(1), EtherType: EtherTypeIPv4}
	e.SerializeTo(buf)

	var d Ethernet
	rest, err := d.DecodeFrom(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("roundtrip: got %+v want %+v", d, e)
	}
	if string(rest) != "payload" {
		t.Fatalf("payload: %q", rest)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	if _, err := d.DecodeFrom(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestIPv4RoundtripAndChecksum(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 64)
	buf.AppendBytes(bytes.Repeat([]byte{0xab}, 11))
	ip := IPv4{Protocol: ProtocolUDP, Src: IPFromNode(7), Dst: IPFromNode(9), TTL: 17, ID: 321}
	ip.SerializeTo(buf)

	raw := buf.Bytes()
	if !VerifyIPv4Checksum(raw) {
		t.Fatal("serialized header fails checksum verification")
	}
	var d IPv4
	payload, err := d.DecodeFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ProtocolUDP || d.TTL != 17 || d.ID != 321 {
		t.Fatalf("decoded %+v", d)
	}
	if len(payload) != 11 {
		t.Fatalf("payload len %d", len(payload))
	}
	// Corrupt a byte: checksum must now fail.
	raw[8] ^= 0xff
	if VerifyIPv4Checksum(raw) {
		t.Fatal("corrupted header passes checksum")
	}
}

func TestIPv4Errors(t *testing.T) {
	var d IPv4
	if _, err := d.DecodeFrom(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 6 << 4 // version 6
	if _, err := d.DecodeFrom(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	b[0] = 4<<4 | 6 // options
	if _, err := d.DecodeFrom(b); err == nil {
		t.Fatal("want error for IHL != 5")
	}
	b[0] = 4<<4 | 5
	b[3] = 200 // TotalLen 200 > len(b)
	if _, err := d.DecodeFrom(b); !errors.Is(err, ErrBadLength) {
		t.Fatalf("length: %v", err)
	}
}

func TestUDPRoundtrip(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 64)
	buf.AppendBytes([]byte{1, 2, 3})
	u := UDP{SrcPort: 4000, DstPort: UDPPortDaiet}
	u.SerializeTo(buf)
	var d UDP
	payload, err := d.DecodeFrom(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 4000 || d.DstPort != UDPPortDaiet || d.Length != UDPHeaderLen+3 {
		t.Fatalf("decoded %+v", d)
	}
	if len(payload) != 3 {
		t.Fatalf("payload %v", payload)
	}
}

func TestUDPLengthDelimitsPayload(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 64)
	buf.AppendBytes([]byte{1, 2, 3})
	u := UDP{}
	u.SerializeTo(buf)
	// Add trailing junk beyond the UDP datagram; decode must ignore it.
	raw := append(append([]byte{}, buf.Bytes()...), 0xde, 0xad)
	var d UDP
	payload, err := d.DecodeFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 3 {
		t.Fatalf("payload %v", payload)
	}
}

func TestDaietHeaderRoundtrip(t *testing.T) {
	f := func(typ uint8, tree, seq uint32, pairs uint16, flags uint16) bool {
		h := DaietHeader{
			Type:     DaietType(typ),
			TreeID:   tree,
			Seq:      seq,
			NumPairs: pairs % (MaxSupportedPairs + 1),
			Flags:    flags,
		}
		buf := NewBuffer(DefaultHeadroom, 16)
		h.SerializeTo(buf)
		var d DaietHeader
		_, err := d.DecodeFrom(buf.Bytes())
		return err == nil && d == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDaietHeaderRejects(t *testing.T) {
	var d DaietHeader
	if _, err := d.DecodeFrom(make([]byte, 8)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	buf := NewBuffer(DefaultHeadroom, 16)
	(&DaietHeader{Type: TypeData}).SerializeTo(buf)
	raw := append([]byte{}, buf.Bytes()...)
	raw[0] = 0 // break magic
	if _, err := d.DecodeFrom(raw); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}
	raw[0], raw[1] = 0xDA, 0x17
	raw[2] = 99 // break version
	if _, err := d.DecodeFrom(raw); !errors.Is(err, ErrBadDaietVer) {
		t.Fatalf("version: %v", err)
	}
	raw[2] = DaietVersion
	raw[12], raw[13] = 0xff, 0xff // absurd NumPairs
	if _, err := d.DecodeFrom(raw); err == nil {
		t.Fatal("want error for NumPairs > MaxSupportedPairs")
	}
}

func TestPairGeometry(t *testing.T) {
	if DefaultGeometry.PairWidth() != 20 {
		t.Fatalf("pair width %d", DefaultGeometry.PairWidth())
	}
	// 300-byte parse budget minus 58 bytes of headers leaves 242 -> 12 pairs
	// of 20 bytes; the paper rounds this to "at most 10", our geometry math
	// must land in the same band.
	n := DefaultGeometry.MaxPairsPerPacket()
	if n < 10 || n > 12 {
		t.Fatalf("pairs per packet %d outside paper band", n)
	}
	if err := (PairGeometry{KeyWidth: 0}).Validate(); err == nil {
		t.Fatal("want error for zero key width")
	}
	// Gigantic keys still fit at least one pair per packet.
	if got := (PairGeometry{KeyWidth: 1000}).MaxPairsPerPacket(); got != 1 {
		t.Fatalf("giant keys: %d", got)
	}
}

func TestPairAppendAndView(t *testing.T) {
	g := DefaultGeometry
	buf := NewBuffer(DefaultHeadroom, 256)
	if err := AppendPair(buf, g, []byte("hello"), 42); err != nil {
		t.Fatal(err)
	}
	if err := AppendPair(buf, g, []byte("sixteen-byte-key"), 7); err != nil {
		t.Fatal(err)
	}
	v, err := NewPairView(g, buf.Bytes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(TrimKey(v.Key(0))); got != "hello" {
		t.Fatalf("key0 %q", got)
	}
	if v.Value(0) != 42 {
		t.Fatalf("value0 %d", v.Value(0))
	}
	if got := string(TrimKey(v.Key(1))); got != "sixteen-byte-key" {
		t.Fatalf("key1 %q", got)
	}
	if v.Value(1) != 7 {
		t.Fatalf("value1 %d", v.Value(1))
	}
}

func TestPairViewBounds(t *testing.T) {
	g := DefaultGeometry
	if _, err := NewPairView(g, make([]byte, 10), 1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want truncated, got %v", err)
	}
	buf := NewBuffer(DefaultHeadroom, 64)
	_ = AppendPair(buf, g, []byte("k"), 1)
	v, _ := NewPairView(g, buf.Bytes(), 1)
	for _, idx := range []int{-1, 1} {
		func(i int) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Key(%d) must panic", i)
				}
			}()
			v.Key(i)
		}(idx)
	}
}

func TestAppendPairRejectsOversizedKey(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 64)
	err := AppendPair(buf, DefaultGeometry, bytes.Repeat([]byte{'x'}, 17), 1)
	if err == nil {
		t.Fatal("want error for oversized key")
	}
}

// Property: a full frame (pairs -> DAIET -> UDP -> IP -> Eth) decodes back
// to the same header fields and pair contents.
func TestFullFrameRoundtripProperty(t *testing.T) {
	g := DefaultGeometry
	f := func(tree, seq uint32, rawPairs []uint32, src, dst uint32) bool {
		n := len(rawPairs)
		if n > 10 {
			n = 10
		}
		src &= 0xffffff
		dst &= 0xffffff
		buf := NewBuffer(DefaultHeadroom, 512)
		for i := 0; i < n; i++ {
			key := []byte{byte('a' + i), 'k'}
			if err := AppendPair(buf, g, key, rawPairs[i]); err != nil {
				return false
			}
		}
		hdr := DaietHeader{Type: TypeData, TreeID: tree, Seq: seq, NumPairs: uint16(n)}
		frame := BuildDaietFrame(buf, hdr, src, dst, 3000)

		var pkt DaietPacket
		if err := DecodeDaietPacket(g, frame, &pkt); err != nil {
			return false
		}
		if pkt.Hdr.TreeID != tree || pkt.Hdr.Seq != seq || int(pkt.Hdr.NumPairs) != n {
			return false
		}
		if pkt.IP.Src.NodeID() != src || pkt.IP.Dst.NodeID() != dst {
			return false
		}
		for i := 0; i < n; i++ {
			if pkt.Pairs.Value(i) != rawPairs[i] {
				return false
			}
			want := []byte{byte('a' + i), 'k'}
			if !bytes.Equal(TrimKey(pkt.Pairs.Key(i)), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDaietPacketRejectsNonUDP(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 64)
	frame := BuildTCPLiteFrame(buf, TCPLite{SrcPort: 1, DstPort: 2}, 1, 2)
	var pkt DaietPacket
	if err := DecodeDaietPacket(DefaultGeometry, frame, &pkt); !errors.Is(err, ErrBadProtocol) {
		t.Fatalf("want ErrBadProtocol, got %v", err)
	}
}

func TestTCPLiteRoundtrip(t *testing.T) {
	f := func(sport, dport uint16, seq, ack uint32, flags, window uint16, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		buf := NewBuffer(DefaultHeadroom, len(payload)+32)
		buf.AppendBytes(payload)
		seg := TCPLite{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Window: window}
		frame := BuildTCPLiteFrame(buf, seg, 5, 6)

		var e Ethernet
		rest, err := e.DecodeFrom(frame)
		if err != nil {
			return false
		}
		var ip IPv4
		if rest, err = ip.DecodeFrom(rest); err != nil || ip.Protocol != ProtocolTCPLite {
			return false
		}
		var d TCPLite
		got, err := d.DecodeFrom(rest)
		if err != nil {
			return false
		}
		return d.SrcPort == sport && d.DstPort == dport && d.Seq == seq &&
			d.Ack == ack && d.Flags == flags && d.Window == window &&
			bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPLiteErrors(t *testing.T) {
	var d TCPLite
	if _, err := d.DecodeFrom(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	b := make([]byte, TCPLiteHeaderLen)
	b[16], b[17] = 0x00, 0x05 // claims 5 payload bytes that are absent
	if _, err := d.DecodeFrom(b); !errors.Is(err, ErrBadLength) {
		t.Fatalf("length: %v", err)
	}
}

func TestBufferPrependGrowth(t *testing.T) {
	// Tiny headroom forces the grow path.
	buf := NewBuffer(2, 4)
	buf.AppendBytes([]byte("xyz"))
	w := buf.Prepend(10)
	for i := range w {
		w[i] = byte(i)
	}
	got := buf.Bytes()
	if len(got) != 13 {
		t.Fatalf("len %d", len(got))
	}
	if got[0] != 0 || got[9] != 9 || string(got[10:]) != "xyz" {
		t.Fatalf("contents %v", got)
	}
}

func TestBufferReset(t *testing.T) {
	buf := NewBuffer(DefaultHeadroom, 16)
	buf.AppendBytes([]byte("abc"))
	buf.Reset()
	if buf.Len() != 0 {
		t.Fatalf("len after reset %d", buf.Len())
	}
	// Reset must leave enough headroom for a full header stack.
	buf.AppendBytes([]byte("p"))
	e := Ethernet{EtherType: EtherTypeIPv4}
	e.SerializeTo(buf)
	if buf.Len() != EthernetHeaderLen+1 {
		t.Fatalf("len %d", buf.Len())
	}
}

func TestFlowKeyStable(t *testing.T) {
	var storage [13]byte
	k1 := FlowKey(storage[:0], IPFromNode(1), IPFromNode(2), ProtocolUDP, 10, 20)
	k2 := FlowKey(make([]byte, 0, 13), IPFromNode(1), IPFromNode(2), ProtocolUDP, 10, 20)
	if !bytes.Equal(k1, k2) {
		t.Fatal("flow keys differ")
	}
	k3 := FlowKey(make([]byte, 0, 13), IPFromNode(1), IPFromNode(2), ProtocolUDP, 10, 21)
	if bytes.Equal(k1, k3) {
		t.Fatal("different ports must give different keys")
	}
}

func TestTrimKey(t *testing.T) {
	if got := TrimKey([]byte{'a', 'b', 0, 0}); string(got) != "ab" {
		t.Fatalf("got %q", got)
	}
	if got := TrimKey([]byte{0, 0}); len(got) != 0 {
		t.Fatalf("got %q", got)
	}
	if got := TrimKey(nil); len(got) != 0 {
		t.Fatalf("got %q", got)
	}
}
