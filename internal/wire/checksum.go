package wire

// Checksum computes the 16-bit one's-complement Internet checksum (RFC 1071)
// of b. It is used for the IPv4 header checksum; the UDP checksum is left at
// zero inside the simulator, which IPv4 permits.
func Checksum(b []byte) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
