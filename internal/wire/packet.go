package wire

import (
	"encoding/binary"
	"fmt"
)

// This file provides whole-packet composition and decomposition helpers for
// the common case: DAIET pairs over UDP over IPv4 over Ethernet, plus the
// TCP-lite segment header used by the TCP baseline.

// UDPPortDaiet is the well-known destination port for the DAIET protocol.
const UDPPortDaiet = 5201

// DaietPacket is the fully decoded view of one DAIET-over-UDP frame. Header
// structs are decoded by value; Pairs aliases the input buffer.
type DaietPacket struct {
	Eth   Ethernet
	IP    IPv4
	UDP   UDP
	Hdr   DaietHeader
	Pairs PairView
}

// DecodeDaietPacket decodes a full Ethernet frame carrying a DAIET packet,
// using preallocated pkt storage (gopacket DecodingLayerParser style: no
// allocation on success paths).
func DecodeDaietPacket(g PairGeometry, frame []byte, pkt *DaietPacket) error {
	p, err := pkt.Eth.DecodeFrom(frame)
	if err != nil {
		return fmt.Errorf("eth: %w", err)
	}
	if pkt.Eth.EtherType != EtherTypeIPv4 {
		return ErrBadEtherType
	}
	if p, err = pkt.IP.DecodeFrom(p); err != nil {
		return fmt.Errorf("ipv4: %w", err)
	}
	if pkt.IP.Protocol != ProtocolUDP {
		return ErrBadProtocol
	}
	if p, err = pkt.UDP.DecodeFrom(p); err != nil {
		return fmt.Errorf("udp: %w", err)
	}
	if p, err = pkt.Hdr.DecodeFrom(p); err != nil {
		return fmt.Errorf("daiet: %w", err)
	}
	pkt.Pairs, err = NewPairView(g, p, int(pkt.Hdr.NumPairs))
	if err != nil {
		return fmt.Errorf("pairs: %w", err)
	}
	return nil
}

// BuildDaietFrame assembles a complete Ethernet frame for hdr and the pairs
// already serialized in buf's payload area by AppendPair calls. src and dst
// are fabric node IDs. The returned slice aliases buf.
func BuildDaietFrame(buf *Buffer, hdr DaietHeader, srcNode, dstNode uint32, srcPort uint16) []byte {
	hdr.SerializeTo(buf)
	u := UDP{SrcPort: srcPort, DstPort: UDPPortDaiet}
	u.SerializeTo(buf)
	ip := IPv4{
		Protocol: ProtocolUDP,
		Src:      IPFromNode(srcNode),
		Dst:      IPFromNode(dstNode),
		TTL:      DefaultTTL,
	}
	ip.SerializeTo(buf)
	e := Ethernet{
		Dst:       MACFromNode(dstNode),
		Src:       MACFromNode(srcNode),
		EtherType: EtherTypeIPv4,
	}
	e.SerializeTo(buf)
	return buf.Bytes()
}

// TCP-lite: the reliable-stream baseline's segment header. Real TCP options
// and urgent pointers are irrelevant to the packet-count measurements, so
// the header keeps only the fields the tcplite state machine uses.
//
// Layout (big-endian), TCPLiteHeaderLen = 18 bytes:
//
//	sport(2) dport(2) seq(4) ack(4) flags(2) window(2) length(2)
const TCPLiteHeaderLen = 18

// TCP-lite flag bits.
const (
	TCPFlagSYN = 1 << 0
	TCPFlagACK = 1 << 1
	TCPFlagFIN = 1 << 2
	TCPFlagRST = 1 << 3
)

// TCPLite is the decoded TCP-lite segment header.
type TCPLite struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint16
	Window  uint16
	Length  uint16 // payload bytes following the header
}

// DecodeFrom parses the header at the front of b and returns the payload.
func (t *TCPLite) DecodeFrom(b []byte) (payload []byte, err error) {
	if len(b) < TCPLiteHeaderLen {
		return nil, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = binary.BigEndian.Uint16(b[12:14])
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Length = binary.BigEndian.Uint16(b[16:18])
	if int(t.Length) > len(b)-TCPLiteHeaderLen {
		return nil, ErrBadLength
	}
	return b[TCPLiteHeaderLen : TCPLiteHeaderLen+int(t.Length)], nil
}

// SerializeTo prepends the header onto buf, setting Length from the current
// buffer contents.
func (t *TCPLite) SerializeTo(buf *Buffer) {
	payloadLen := buf.Len()
	w := buf.Prepend(TCPLiteHeaderLen)
	binary.BigEndian.PutUint16(w[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(w[2:4], t.DstPort)
	binary.BigEndian.PutUint32(w[4:8], t.Seq)
	binary.BigEndian.PutUint32(w[8:12], t.Ack)
	binary.BigEndian.PutUint16(w[12:14], t.Flags)
	binary.BigEndian.PutUint16(w[14:16], t.Window)
	t.Length = uint16(payloadLen)
	binary.BigEndian.PutUint16(w[16:18], t.Length)
}

// ProtocolTCPLite is the IPv4 protocol number the fabric uses for tcplite.
// 253 and 254 are reserved for experimentation by RFC 3692.
const ProtocolTCPLite = 253

// BuildTCPLiteFrame assembles a complete Ethernet frame for a tcplite
// segment whose payload is already in buf.
func BuildTCPLiteFrame(buf *Buffer, seg TCPLite, srcNode, dstNode uint32) []byte {
	seg.SerializeTo(buf)
	ip := IPv4{
		Protocol: ProtocolTCPLite,
		Src:      IPFromNode(srcNode),
		Dst:      IPFromNode(dstNode),
		TTL:      DefaultTTL,
	}
	ip.SerializeTo(buf)
	e := Ethernet{
		Dst:       MACFromNode(dstNode),
		Src:       MACFromNode(srcNode),
		EtherType: EtherTypeIPv4,
	}
	e.SerializeTo(buf)
	return buf.Bytes()
}
