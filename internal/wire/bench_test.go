package wire

import (
	"fmt"
	"testing"
)

// benchFrame builds one fully loaded DAIET frame (10 pairs).
func benchFrame(b *testing.B) []byte {
	b.Helper()
	buf := NewBuffer(DefaultHeadroom, 256)
	for i := 0; i < 10; i++ {
		if err := AppendPair(buf, DefaultGeometry, []byte(fmt.Sprintf("key-%04d", i)), uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	hdr := DaietHeader{Type: TypeData, TreeID: 42, Seq: 7, NumPairs: 10}
	return BuildDaietFrame(buf, hdr, 1, 2, UDPPortDaiet)
}

// BenchmarkDecodeDaietPacket measures the zero-alloc full-stack decode path
// (Ethernet/IPv4/UDP/DAIET/pairs) the switch parser models.
func BenchmarkDecodeDaietPacket(b *testing.B) {
	frame := benchFrame(b)
	var pkt DaietPacket
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeDaietPacket(DefaultGeometry, frame, &pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildDaietFrame measures frame construction (pairs + 4 headers).
func BenchmarkBuildDaietFrame(b *testing.B) {
	key := []byte("key-0000")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := NewBuffer(DefaultHeadroom, 256)
		for j := 0; j < 10; j++ {
			if err := AppendPair(buf, DefaultGeometry, key, uint32(j)); err != nil {
				b.Fatal(err)
			}
		}
		hdr := DaietHeader{Type: TypeData, TreeID: 42, NumPairs: 10}
		_ = BuildDaietFrame(buf, hdr, 1, 2, UDPPortDaiet)
	}
}

// BenchmarkChecksum measures the IPv4 header checksum.
func BenchmarkChecksum(b *testing.B) {
	hdr := make([]byte, IPv4HeaderLen)
	b.SetBytes(IPv4HeaderLen)
	for i := 0; i < b.N; i++ {
		_ = Checksum(hdr)
	}
}

// BenchmarkPairViewScan measures per-pair access over a decoded packet.
func BenchmarkPairViewScan(b *testing.B) {
	frame := benchFrame(b)
	var pkt DaietPacket
	if err := DecodeDaietPacket(DefaultGeometry, frame, &pkt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint32
	for i := 0; i < b.N; i++ {
		for j := 0; j < pkt.Pairs.Len(); j++ {
			sum += pkt.Pairs.Value(j)
			_ = pkt.Pairs.Key(j)
		}
	}
	_ = sum
}
