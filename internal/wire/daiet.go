package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The DAIET shuffle protocol (paper §4): map output partitions travel in
// UDP packets carrying a small preamble ("the preamble specifies the number
// of pairs present in the packet and the tree ID the packet belongs to")
// followed by a sequence of fixed-size key-value pairs. The end of a
// partition is marked by a special END packet.
//
// Layout (big-endian), DaietHeaderLen = 16 bytes:
//
//	 0               2       3       4               8
//	+-------+-------+-------+-------+---------------+
//	|     magic     |  ver  | type  |    tree ID    |
//	+-------+-------+-------+-------+---------------+
//	|      sequence number          | pairs |flags  |
//	+-------------------------------+-------+-------+
//	 8                              12      14     16
//
// The sequence number is zero in the base protocol; the reliability
// extension (paper: "we do not address the issue of packet losses, which we
// leave as future work") uses it for retransmission, and ACK/NACK types.
const (
	DaietMagic     = 0xDA17
	DaietVersion   = 1
	DaietHeaderLen = 16
)

// DaietType enumerates DAIET packet types.
type DaietType uint8

const (
	// TypeData carries key-value pairs toward a reducer.
	TypeData DaietType = 1
	// TypeEnd marks the end of one sender's partition for a tree.
	TypeEnd DaietType = 2
	// TypeAck acknowledges a sequence number (reliability extension).
	TypeAck DaietType = 3
	// TypeNack requests retransmission from a sequence number (extension).
	TypeNack DaietType = 4
)

// String implements fmt.Stringer for diagnostics.
func (t DaietType) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeEnd:
		return "END"
	case TypeAck:
		return "ACK"
	case TypeNack:
		return "NACK"
	default:
		return fmt.Sprintf("DaietType(%d)", uint8(t))
	}
}

// Daiet header flags.
const (
	// FlagAggregated marks packets whose pairs were produced by in-network
	// aggregation (a switch flush) rather than directly by a mapper.
	FlagAggregated = 1 << 0
	// FlagSpill marks pairs evicted from a switch's spillover bucket.
	FlagSpill = 1 << 1
)

// Pair-geometry defaults from the paper's evaluation (§5): 16-byte keys
// ("words of maximum 16 characters"), 4-byte integer values, and at most 10
// pairs per packet ("current P4 hardware switches are expected to parse only
// around 200-300 B of each packet").
const (
	DefaultKeyWidth   = 16
	ValueWidth        = 4
	DefaultMaxPairs   = 10
	MaxParseBudget    = 300 // bytes a hardware parser can examine
	DefaultPairWidth  = DefaultKeyWidth + ValueWidth
	MaxSupportedPairs = 64 // sanity bound on NumPairs regardless of geometry
)

// Errors specific to DAIET decoding.
var (
	ErrBadMagic    = errors.New("wire: bad DAIET magic")
	ErrBadDaietVer = errors.New("wire: unsupported DAIET version")
	ErrPairBounds  = errors.New("wire: pair index out of range")
)

// DaietHeader is the fixed preamble of every DAIET packet.
type DaietHeader struct {
	Type     DaietType
	TreeID   uint32
	Seq      uint32
	NumPairs uint16
	Flags    uint16
}

// DecodeFrom parses the header at the front of b and returns the pair bytes.
func (h *DaietHeader) DecodeFrom(b []byte) (pairs []byte, err error) {
	if len(b) < DaietHeaderLen {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b[0:2]) != DaietMagic {
		return nil, ErrBadMagic
	}
	if b[2] != DaietVersion {
		return nil, ErrBadDaietVer
	}
	h.Type = DaietType(b[3])
	h.TreeID = binary.BigEndian.Uint32(b[4:8])
	h.Seq = binary.BigEndian.Uint32(b[8:12])
	h.NumPairs = binary.BigEndian.Uint16(b[12:14])
	h.Flags = binary.BigEndian.Uint16(b[14:16])
	if h.NumPairs > MaxSupportedPairs {
		return nil, fmt.Errorf("%w: NumPairs=%d", ErrBadLength, h.NumPairs)
	}
	return b[DaietHeaderLen:], nil
}

// SerializeTo prepends the header onto buf. NumPairs must already be set by
// the caller to match the pairs previously appended.
func (h *DaietHeader) SerializeTo(buf *Buffer) {
	w := buf.Prepend(DaietHeaderLen)
	binary.BigEndian.PutUint16(w[0:2], DaietMagic)
	w[2] = DaietVersion
	w[3] = byte(h.Type)
	binary.BigEndian.PutUint32(w[4:8], h.TreeID)
	binary.BigEndian.PutUint32(w[8:12], h.Seq)
	binary.BigEndian.PutUint16(w[12:14], h.NumPairs)
	binary.BigEndian.PutUint16(w[14:16], h.Flags)
}

// PairGeometry fixes the on-wire size of one key-value pair. The paper's
// prototype hard-codes 16-byte keys; the geometry is parameterized here so
// the key-width ablation can vary it.
type PairGeometry struct {
	KeyWidth int // bytes per key, >= 1
}

// DefaultGeometry is the paper's 16-byte-key geometry.
var DefaultGeometry = PairGeometry{KeyWidth: DefaultKeyWidth}

// PairWidth returns the bytes occupied by one pair.
func (g PairGeometry) PairWidth() int { return g.KeyWidth + ValueWidth }

// MaxPairsPerPacket returns how many pairs fit within the hardware parse
// budget after the stack of headers, capped at MaxSupportedPairs.
func (g PairGeometry) MaxPairsPerPacket() int {
	overhead := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + DaietHeaderLen
	n := (MaxParseBudget - overhead) / g.PairWidth()
	if n < 1 {
		n = 1
	}
	if n > MaxSupportedPairs {
		n = MaxSupportedPairs
	}
	return n
}

// Validate reports whether the geometry is usable.
func (g PairGeometry) Validate() error {
	if g.KeyWidth < 1 {
		return fmt.Errorf("wire: key width must be >= 1, got %d", g.KeyWidth)
	}
	return nil
}

// PairView provides index-based, zero-copy access to the pair area of a
// decoded DAIET packet. The view aliases the decoded buffer.
type PairView struct {
	geom  PairGeometry
	pairs []byte
	n     int
}

// NewPairView wraps the pair bytes that follow a decoded DaietHeader.
// It validates that the buffer really contains n pairs.
func NewPairView(g PairGeometry, pairBytes []byte, n int) (PairView, error) {
	if err := g.Validate(); err != nil {
		return PairView{}, err
	}
	need := n * g.PairWidth()
	if need > len(pairBytes) {
		return PairView{}, fmt.Errorf("%w: need %d bytes for %d pairs, have %d",
			ErrTruncated, need, n, len(pairBytes))
	}
	return PairView{geom: g, pairs: pairBytes[:need], n: n}, nil
}

// Len returns the number of pairs in the view.
func (v PairView) Len() int { return v.n }

// Key returns the i-th key bytes (aliasing the packet buffer).
func (v PairView) Key(i int) []byte {
	if i < 0 || i >= v.n {
		panic(ErrPairBounds)
	}
	off := i * v.geom.PairWidth()
	return v.pairs[off : off+v.geom.KeyWidth]
}

// Value returns the i-th 32-bit value.
func (v PairView) Value(i int) uint32 {
	if i < 0 || i >= v.n {
		panic(ErrPairBounds)
	}
	off := i*v.geom.PairWidth() + v.geom.KeyWidth
	return binary.BigEndian.Uint32(v.pairs[off : off+ValueWidth])
}

// AppendPair appends one fixed-size pair to buf. Keys shorter than the
// geometry's key width are zero-padded on the right (the paper: "the
// programmer is forced to reserve for each key as many bytes as the largest
// expected key"); longer keys are an error.
func AppendPair(buf *Buffer, g PairGeometry, key []byte, value uint32) error {
	if len(key) > g.KeyWidth {
		return fmt.Errorf("wire: key of %d bytes exceeds geometry width %d", len(key), g.KeyWidth)
	}
	w := buf.Append(g.PairWidth())
	n := copy(w, key)
	for i := n; i < g.KeyWidth; i++ {
		w[i] = 0
	}
	binary.BigEndian.PutUint32(w[g.KeyWidth:], value)
	return nil
}

// TrimKey strips the zero padding AppendPair added, recovering the original
// variable-length key. Keys that legitimately end in zero bytes are not
// representable in the fixed-size scheme — exactly the limitation the paper
// accepts for its prototype.
func TrimKey(k []byte) []byte {
	end := len(k)
	for end > 0 && k[end-1] == 0 {
		end--
	}
	return k[:end]
}
