package wire

// Buffer is a prepend-oriented serialization buffer in the style of
// gopacket's SerializeBuffer: the payload is written first and each
// enclosing header is prepended in front of the bytes already present, so a
// packet is built innermost-out (pairs, DAIET, UDP, IPv4, Ethernet).
//
// The zero value is not ready to use; construct with NewBuffer, which
// reserves headroom so prepends do not move the payload.
type Buffer struct {
	buf   []byte // full backing array
	start int    // index of first valid byte
}

// DefaultHeadroom is sized for Ethernet+IPv4+UDP+DAIET plus slack.
const DefaultHeadroom = 64

// NewBuffer returns a Buffer with the given headroom (bytes reserved for
// prepends) and payload capacity hint.
func NewBuffer(headroom, payloadCap int) *Buffer {
	if headroom < 0 {
		headroom = DefaultHeadroom
	}
	b := &Buffer{
		buf:   make([]byte, headroom, headroom+payloadCap),
		start: headroom,
	}
	return b
}

// Reset empties the buffer, retaining its backing storage. headroom is
// restored to the value the buffer was created with (its original start).
func (b *Buffer) Reset() {
	// Original headroom is the capacity-independent initial length.
	b.buf = b.buf[:cap(b.buf)]
	// We cannot recover the construction-time headroom after growth, so keep
	// a generous fixed headroom instead: DefaultHeadroom or the whole buffer
	// if smaller.
	h := DefaultHeadroom
	if h > len(b.buf) {
		h = len(b.buf)
	}
	b.buf = b.buf[:h]
	b.start = h
}

// Len returns the number of valid bytes currently in the buffer.
func (b *Buffer) Len() int { return len(b.buf) - b.start }

// Bytes returns the current packet bytes. The slice aliases the buffer and
// is invalidated by further Append/Prepend/Reset calls.
func (b *Buffer) Bytes() []byte { return b.buf[b.start:] }

// Append grows the buffer by n bytes at the tail and returns the new region
// for the caller to fill.
func (b *Buffer) Append(n int) []byte {
	old := len(b.buf)
	if old+n <= cap(b.buf) {
		b.buf = b.buf[:old+n]
	} else {
		nb := make([]byte, old+n, (old+n)*2)
		copy(nb, b.buf)
		b.buf = nb
	}
	return b.buf[old : old+n]
}

// AppendBytes appends a copy of p to the tail.
func (b *Buffer) AppendBytes(p []byte) {
	copy(b.Append(len(p)), p)
}

// Prepend grows the buffer by n bytes at the head and returns the new region
// for the caller to fill. If headroom is exhausted the contents shift right
// (one copy), preserving correctness at the cost of speed.
func (b *Buffer) Prepend(n int) []byte {
	if n <= b.start {
		b.start -= n
		return b.buf[b.start : b.start+n]
	}
	// Grow: new headroom equals n plus default slack.
	grow := n + DefaultHeadroom
	nb := make([]byte, grow+len(b.buf)-b.start, grow+cap(b.buf))
	copy(nb[grow:], b.buf[b.start:])
	b.buf = nb
	b.start = grow - n
	return b.buf[b.start : b.start+n]
}
