// Package wire defines the byte-level packet formats used throughout the
// reproduction: Ethernet, IPv4 and UDP headers plus the DAIET shuffle
// protocol (a small preamble followed by a sequence of fixed-size key-value
// pairs, §4 of the paper).
//
// The decoding style follows gopacket's DecodingLayer idiom: each header
// type decodes *in place* from a byte slice into a preallocated struct (or
// exposes index-based accessors over the original buffer) so the switch
// dataplane's per-packet hot path performs no allocation. Decoders treat
// the input as read-only; callers that reuse buffers must respect the
// documented aliasing.
//
// Serialization uses a prepend-style Buffer (again mirroring gopacket):
// payload first, then UDP, IPv4, Ethernet, each header prepended in front
// of the bytes already present.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Ethernet constants.
const (
	EthernetHeaderLen = 14
	EtherTypeIPv4     = 0x0800
)

// IPv4 constants.
const (
	IPv4HeaderLen = 20 // no options
	ProtocolUDP   = 17
	DefaultTTL    = 64
)

// UDP constants.
const UDPHeaderLen = 8

// Errors returned by decoders. Decoders never panic on hostile input.
var (
	ErrTruncated    = errors.New("wire: buffer too short")
	ErrBadEtherType = errors.New("wire: unexpected ethertype")
	ErrBadVersion   = errors.New("wire: unsupported IP version")
	ErrBadProtocol  = errors.New("wire: unexpected IP protocol")
	ErrBadLength    = errors.New("wire: length field inconsistent with buffer")
)

// MAC is a 6-byte link-layer address. The fabric derives MACs from node IDs.
type MAC [6]byte

// MACFromNode derives a locally-administered unicast MAC from a node ID.
func MACFromNode(id uint32) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = 0xda
	binary.BigEndian.PutUint32(m[2:], id)
	return m
}

// NodeID recovers the node ID a MACFromNode address encodes.
func (m MAC) NodeID() uint32 { return binary.BigEndian.Uint32(m[2:]) }

// String renders the MAC in the conventional colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4Addr is a 4-byte network address.
type IPv4Addr [4]byte

// IPFromNode maps a node ID into the fabric's 10.0.0.0/8 addressing plan.
func IPFromNode(id uint32) IPv4Addr {
	var a IPv4Addr
	a[0] = 10
	a[1] = byte(id >> 16)
	a[2] = byte(id >> 8)
	a[3] = byte(id)
	return a
}

// NodeID recovers the node ID an IPFromNode address encodes.
func (a IPv4Addr) NodeID() uint32 {
	return uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// String renders the address in dotted-quad form.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Ethernet is the 14-byte link header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// DecodeFrom parses the Ethernet header at the front of b and returns the
// remaining payload.
func (e *Ethernet) DecodeFrom(b []byte) (payload []byte, err error) {
	if len(b) < EthernetHeaderLen {
		return nil, ErrTruncated
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[EthernetHeaderLen:], nil
}

// SerializeTo prepends the Ethernet header onto buf.
func (e *Ethernet) SerializeTo(buf *Buffer) {
	h := buf.Prepend(EthernetHeaderLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], e.EtherType)
}

// IPv4 is the 20-byte (option-less) network header.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      IPv4Addr
	Dst      IPv4Addr
}

// DecodeFrom parses the IPv4 header at the front of b and returns the
// payload as delimited by TotalLen. It rejects truncated buffers, non-v4
// versions and headers with options (IHL != 5), which the fabric never
// emits.
func (ip *IPv4) DecodeFrom(b []byte) (payload []byte, err error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	vihl := b[0]
	if vihl>>4 != 4 {
		return nil, ErrBadVersion
	}
	if vihl&0x0f != 5 {
		return nil, fmt.Errorf("%w: options unsupported (ihl=%d)", ErrBadLength, vihl&0x0f)
	}
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	if int(ip.TotalLen) < IPv4HeaderLen || int(ip.TotalLen) > len(b) {
		return nil, ErrBadLength
	}
	return b[IPv4HeaderLen:ip.TotalLen], nil
}

// SerializeTo prepends the IPv4 header onto buf, setting TotalLen from the
// current buffer contents and computing the header checksum.
func (ip *IPv4) SerializeTo(buf *Buffer) {
	payloadLen := buf.Len()
	h := buf.Prepend(IPv4HeaderLen)
	h[0] = 4<<4 | 5
	h[1] = ip.TOS
	total := IPv4HeaderLen + payloadLen
	binary.BigEndian.PutUint16(h[2:4], uint16(total))
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], 0) // flags/frag: DF not modelled
	if ip.TTL == 0 {
		ip.TTL = DefaultTTL
	}
	h[8] = ip.TTL
	h[9] = ip.Protocol
	binary.BigEndian.PutUint16(h[10:12], 0)
	copy(h[12:16], ip.Src[:])
	copy(h[16:20], ip.Dst[:])
	ip.TotalLen = uint16(total)
	ip.Checksum = Checksum(h[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
}

// VerifyChecksum recomputes the header checksum over the raw header bytes
// (which must be at least IPv4HeaderLen long) and reports whether it is
// consistent.
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < IPv4HeaderLen {
		return false
	}
	return Checksum(hdr[:IPv4HeaderLen]) == 0
}

// UDP is the 8-byte transport header.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16
	Chk     uint16
}

// DecodeFrom parses the UDP header at the front of b and returns the payload
// delimited by Length.
func (u *UDP) DecodeFrom(b []byte) (payload []byte, err error) {
	if len(b) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Chk = binary.BigEndian.Uint16(b[6:8])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return nil, ErrBadLength
	}
	return b[UDPHeaderLen:u.Length], nil
}

// SerializeTo prepends the UDP header onto buf, setting Length from the
// current buffer contents. The checksum is left zero (legal over IPv4).
func (u *UDP) SerializeTo(buf *Buffer) {
	payloadLen := buf.Len()
	h := buf.Prepend(UDPHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	u.Length = uint16(UDPHeaderLen + payloadLen)
	binary.BigEndian.PutUint16(h[4:6], u.Length)
	binary.BigEndian.PutUint16(h[6:8], 0)
}

// FlowKey writes the (src, dst, proto, sport, dport) 5-tuple into dst, which
// must have capacity for 13 bytes, and returns the filled slice. The result
// feeds ECMP hashing.
func FlowKey(dst []byte, src, dstIP IPv4Addr, proto uint8, sport, dport uint16) []byte {
	dst = dst[:0]
	dst = append(dst, src[:]...)
	dst = append(dst, dstIP[:]...)
	dst = append(dst, proto)
	dst = append(dst, byte(sport>>8), byte(sport))
	dst = append(dst, byte(dport>>8), byte(dport))
	return dst
}
