package pregel

import (
	"testing"

	"github.com/daiet/daiet/internal/graphgen"
)

func benchGraph(b *testing.B) *graphgen.Graph {
	b.Helper()
	g, err := graphgen.RMAT(graphgen.RMATConfig{Scale: 14, EdgeFactor: 14, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPageRankSuperstep measures one full PageRank run (10 supersteps)
// including the per-message traffic instrumentation Figure 1(c) needs.
func BenchmarkPageRankSuperstep(b *testing.B) {
	g := benchGraph(b)
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PageRank(g, Config{Workers: 4, MaxSupersteps: 10})
	}
}

// BenchmarkWCC measures min-label propagation to convergence.
func BenchmarkWCC(b *testing.B) {
	g := benchGraph(b)
	g.Und() // pre-build the undirected view outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WCC(g, Config{Workers: 4, MaxSupersteps: 10})
	}
}

// BenchmarkSSSP measures the frontier expansion from the hub vertex.
func BenchmarkSSSP(b *testing.B) {
	g := benchGraph(b)
	src := g.HighestDegreeVertex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SSSP(g, src, Config{Workers: 4, MaxSupersteps: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
