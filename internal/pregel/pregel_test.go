package pregel

import (
	"math"
	"testing"

	"github.com/daiet/daiet/internal/graphgen"
)

// lineGraph builds a directed path 0 -> 1 -> ... -> n-1.
func lineGraph(n int) *graphgen.Graph {
	g := &graphgen.Graph{N: n, Out: make([][]int32, n)}
	for v := 0; v < n-1; v++ {
		g.Out[v] = []int32{int32(v + 1)}
	}
	return g
}

func testRMAT(t *testing.T) *graphgen.Graph {
	t.Helper()
	g, err := graphgen.RMAT(graphgen.RMATConfig{Scale: 11, EdgeFactor: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPageRankSumsToOne(t *testing.T) {
	g := testRMAT(t)
	res := PageRank(g, Config{Workers: 4, MaxSupersteps: 10})
	if len(res.Stats) != 10 {
		t.Fatalf("supersteps %d", len(res.Stats))
	}
	// Dangling mass leaks in this formulation (as in Pregel's classic
	// example), so the sum is <= 1 and positive.
	var sum float64
	for _, v := range res.Values {
		if v < 0 {
			t.Fatalf("negative rank %f", v)
		}
		sum += v
	}
	if sum <= 0.1 || sum > 1.0001 {
		t.Fatalf("rank mass %f", sum)
	}
}

func TestPageRankRanksHubsHigher(t *testing.T) {
	// Star graph: everyone points at vertex 0.
	n := 50
	g := &graphgen.Graph{N: n, Out: make([][]int32, n)}
	for v := 1; v < n; v++ {
		g.Out[v] = []int32{0}
	}
	res := PageRank(g, Config{Workers: 4, MaxSupersteps: 10})
	for v := 1; v < n; v++ {
		if res.Values[0] <= res.Values[v] {
			t.Fatalf("hub rank %f <= leaf rank %f", res.Values[0], res.Values[v])
		}
	}
}

func TestPageRankReductionFlat(t *testing.T) {
	// The paper: "the traffic reduction ratio is almost the same across all
	// iterations" for PageRank.
	g := testRMAT(t)
	res := PageRank(g, Config{Workers: 4, MaxSupersteps: 10})
	first := res.Stats[0].TrafficReduction
	for _, st := range res.Stats {
		if math.Abs(st.TrafficReduction-first) > 0.02 {
			t.Fatalf("reduction varies: %f vs %f at step %d", st.TrafficReduction, first, st.Superstep)
		}
		if st.TrafficReduction < 0.5 {
			t.Fatalf("reduction %f implausibly low for a skewed graph", st.TrafficReduction)
		}
	}
}

func TestSSSPDistancesOnLine(t *testing.T) {
	g := lineGraph(8)
	res, err := SSSP(g, 0, Config{Workers: 2, MaxSupersteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		if res.Values[v] != float64(v) {
			t.Fatalf("dist[%d] = %f", v, res.Values[v])
		}
	}
}

func TestSSSPUnreachableStaysInf(t *testing.T) {
	g := &graphgen.Graph{N: 3, Out: [][]int32{{1}, nil, nil}}
	res, err := SSSP(g, 0, Config{Workers: 2, MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Values[2], 1) {
		t.Fatalf("unreachable vertex got distance %f", res.Values[2])
	}
	if res.Values[1] != 1 {
		t.Fatalf("dist[1] = %f", res.Values[1])
	}
}

func TestSSSPValidation(t *testing.T) {
	g := lineGraph(4)
	if _, err := SSSP(g, -1, Config{}); err == nil {
		t.Fatal("negative source must fail")
	}
	if _, err := SSSP(g, 4, Config{}); err == nil {
		t.Fatal("out-of-range source must fail")
	}
}

func TestSSSPMessageGrowth(t *testing.T) {
	// The paper: "SSSP starts by sending a smaller number of messages...
	// In the following iteration, the number of messages increases".
	g := testRMAT(t)
	res, err := SSSP(g, g.HighestDegreeVertex(), Config{Workers: 4, MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Messages == 0 {
		t.Fatal("source sent nothing")
	}
	peak := int64(0)
	for _, st := range res.Stats {
		if st.Messages > peak {
			peak = st.Messages
		}
	}
	if peak <= res.Stats[0].Messages*2 {
		t.Fatalf("frontier never grew: first %d peak %d", res.Stats[0].Messages, peak)
	}
}

func TestWCCLabelsCorrect(t *testing.T) {
	// Two disjoint undirected chains: 0-1-2 and 3-4.
	g := &graphgen.Graph{N: 5, Out: [][]int32{{1}, {2}, nil, {4}, nil}}
	res := WCC(g, Config{Workers: 2, MaxSupersteps: 20})
	if res.Values[0] != 0 || res.Values[1] != 0 || res.Values[2] != 0 {
		t.Fatalf("component A labels %v", res.Values[:3])
	}
	if res.Values[3] != 3 || res.Values[4] != 3 {
		t.Fatalf("component B labels %v", res.Values[3:])
	}
}

func TestWCCTrafficDecays(t *testing.T) {
	// The paper: WCC "starts by sending large number of messages from all
	// vertices which decrease as the algorithm converges".
	g := testRMAT(t)
	res := WCC(g, Config{Workers: 4, MaxSupersteps: 10})
	first := res.Stats[0].Messages
	lastActive := res.Stats[len(res.Stats)-1]
	for i := len(res.Stats) - 1; i >= 0; i-- {
		if res.Stats[i].Messages > 0 {
			lastActive = res.Stats[i]
			break
		}
	}
	if lastActive.Messages >= first/2 {
		t.Fatalf("WCC traffic did not decay: first %d last %d", first, lastActive.Messages)
	}
}

func TestFigure1cShape(t *testing.T) {
	g := testRMAT(t)
	cfg := Config{Workers: 4, MaxSupersteps: 10}

	pr := PageRank(g, cfg)
	ss, err := SSSP(g, g.HighestDegreeVertex(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc := WCC(g, cfg)

	// Overall band: the paper reports 0.48 - 0.93 across the three
	// algorithms (we check the active iterations only).
	check := func(name string, sts []SuperstepStats, loBand, hiBand float64) {
		for _, st := range sts {
			if st.RemoteMessages == 0 {
				continue
			}
			if st.TrafficReduction < loBand || st.TrafficReduction > hiBand {
				t.Fatalf("%s step %d reduction %.3f outside [%.2f, %.2f]",
					name, st.Superstep, st.TrafficReduction, loBand, hiBand)
			}
		}
	}
	check("pagerank", pr.Stats, 0.5, 0.99)
	// SSSP's first iterations can be near zero; just require it to climb.
	climbed := false
	for _, st := range ss.Stats {
		if st.TrafficReduction > 0.5 {
			climbed = true
		}
	}
	if !climbed {
		t.Fatal("SSSP reduction never climbed above 0.5")
	}
	if ss.Stats[0].TrafficReduction >= 0.5 {
		t.Fatalf("SSSP starts at %.2f; expected low start", ss.Stats[0].TrafficReduction)
	}
	// WCC starts high...
	if wc.Stats[0].TrafficReduction < 0.5 {
		t.Fatalf("WCC starts at %.2f; expected high start", wc.Stats[0].TrafficReduction)
	}
	// ...and its reduction falls as it converges.
	lastActive := wc.Stats[0]
	for i := len(wc.Stats) - 1; i >= 0; i-- {
		if wc.Stats[i].RemoteMessages > 0 {
			lastActive = wc.Stats[i]
			break
		}
	}
	if lastActive.TrafficReduction >= wc.Stats[0].TrafficReduction {
		t.Fatalf("WCC reduction did not fall: %.3f -> %.3f",
			wc.Stats[0].TrafficReduction, lastActive.TrafficReduction)
	}
}

func TestCombinedNeverExceedsRemote(t *testing.T) {
	g := testRMAT(t)
	for _, res := range []*Result{
		PageRank(g, Config{Workers: 4, MaxSupersteps: 5}),
		WCC(g, Config{Workers: 4, MaxSupersteps: 5}),
	} {
		for _, st := range res.Stats {
			if st.CombinedRemote > st.RemoteMessages {
				t.Fatalf("%s: combined %d > remote %d", res.Algorithm, st.CombinedRemote, st.RemoteMessages)
			}
			if st.RemoteMessages > st.Messages {
				t.Fatalf("%s: remote %d > total %d", res.Algorithm, st.RemoteMessages, st.Messages)
			}
		}
	}
}

func TestWorkerCountAffectsRemoteShare(t *testing.T) {
	g := testRMAT(t)
	r1 := PageRank(g, Config{Workers: 1, MaxSupersteps: 3})
	r4 := PageRank(g, Config{Workers: 4, MaxSupersteps: 3})
	if r1.Stats[0].RemoteMessages != 0 {
		t.Fatal("single worker must have no remote traffic")
	}
	if r4.Stats[0].RemoteMessages == 0 {
		t.Fatal("four workers must have remote traffic")
	}
}
