// Package pregel is a vertex-centric BSP graph engine in the mould of GPS
// (the "open-source Pregel clone" the paper deploys on four machines):
// hash-partitioned vertices, synchronous supersteps, message combiners, and
// vote-to-halt semantics.
//
// The engine instruments exactly what Figure 1(c) plots: per superstep, the
// number of messages crossing worker boundaries and the number remaining
// after combining all messages addressed to the same destination vertex
// inside the network ("the traffic reduction ratio is calculated by
// combining all the messages sent to the same destination into a single
// message by applying the aggregation function used by the algorithm").
package pregel

import (
	"fmt"
	"math"

	"github.com/daiet/daiet/internal/graphgen"
)

// Combiner merges two messages addressed to the same vertex. It must be
// commutative and associative (sum for PageRank, min for SSSP/WCC).
type Combiner func(a, b float64) float64

// Config parameterizes a run.
type Config struct {
	// Workers is the number of logical machines (paper: 4).
	Workers int
	// MaxSupersteps bounds the run (Figure 1(c) plots 10 iterations).
	MaxSupersteps int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MaxSupersteps == 0 {
		c.MaxSupersteps = 10
	}
	return c
}

// SuperstepStats is one iteration's traffic accounting.
type SuperstepStats struct {
	Superstep      int
	ActiveVertices int
	Messages       int64 // all vertex-to-vertex messages
	RemoteMessages int64 // messages crossing worker boundaries
	// CombinedRemote is the number of network messages after in-network
	// per-destination combining: one per distinct destination vertex that
	// received at least one remote message.
	CombinedRemote int64
	// TrafficReduction is 1 - CombinedRemote/RemoteMessages (0 when no
	// remote traffic flows).
	TrafficReduction float64
}

// Result is one algorithm run.
type Result struct {
	Algorithm string
	Stats     []SuperstepStats
	Values    []float64 // final per-vertex values
}

// engine holds one run's state.
type engine struct {
	cfg    Config
	n      int
	adj    [][]int32 // adjacency used for sends
	part   []int8    // vertex -> worker
	value  []float64
	active []bool

	// Inboxes: combined message per vertex, double-buffered.
	curHas, nextHas []bool
	curMsg, nextMsg []float64
	combine         Combiner

	// Per-superstep traffic counters.
	msgs, remote int64
	// remoteSeen stamps destination vertices that already received a
	// remote message this superstep (for CombinedRemote counting).
	remoteSeen []int32
	stamp      int32
	combined   int64
}

func newEngine(adj [][]int32, n int, cfg Config, combine Combiner) *engine {
	e := &engine{
		cfg:        cfg,
		n:          n,
		adj:        adj,
		part:       make([]int8, n),
		value:      make([]float64, n),
		active:     make([]bool, n),
		curHas:     make([]bool, n),
		nextHas:    make([]bool, n),
		curMsg:     make([]float64, n),
		nextMsg:    make([]float64, n),
		combine:    combine,
		remoteSeen: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		e.part[v] = int8(v % cfg.Workers) // GPS's default hash partitioning
		e.active[v] = true
	}
	return e
}

// send delivers one message (with combining at the destination inbox) and
// accounts for it.
func (e *engine) send(src, dst int32, msg float64) {
	e.msgs++
	if e.part[src] != e.part[dst] {
		e.remote++
		if e.remoteSeen[dst] != e.stamp {
			e.remoteSeen[dst] = e.stamp
			e.combined++
		}
	}
	if e.nextHas[dst] {
		e.nextMsg[dst] = e.combine(e.nextMsg[dst], msg)
	} else {
		e.nextHas[dst] = true
		e.nextMsg[dst] = msg
	}
}

// compute is one vertex's per-superstep function. Returning false votes to
// halt (the vertex reactivates if a message arrives later).
type compute func(e *engine, superstep int, v int32, hasMsg bool, msg float64) bool

// run executes the BSP loop.
func (e *engine) run(name string, fn compute) *Result {
	res := &Result{Algorithm: name}
	for step := 0; step < e.cfg.MaxSupersteps; step++ {
		e.stamp = int32(step + 1)
		e.msgs, e.remote, e.combined = 0, 0, 0

		activeCount := 0
		for v := 0; v < e.n; v++ {
			hasMsg := e.curHas[v]
			if !e.active[v] && !hasMsg {
				continue
			}
			e.active[v] = true // message delivery reactivates
			activeCount++
			if !fn(e, step, int32(v), hasMsg, e.curMsg[v]) {
				e.active[v] = false
			}
		}

		st := SuperstepStats{
			Superstep:      step + 1,
			ActiveVertices: activeCount,
			Messages:       e.msgs,
			RemoteMessages: e.remote,
			CombinedRemote: e.combined,
		}
		if e.remote > 0 {
			st.TrafficReduction = 1 - float64(e.combined)/float64(e.remote)
		}
		res.Stats = append(res.Stats, st)

		// Swap inboxes.
		e.curHas, e.nextHas = e.nextHas, e.curHas
		e.curMsg, e.nextMsg = e.nextMsg, e.curMsg
		for i := range e.nextHas {
			e.nextHas[i] = false
		}

		// Global halt: nobody active and no messages in flight.
		if st.Messages == 0 && activeCount == 0 {
			break
		}
	}
	res.Values = e.value
	return res
}

// PageRank runs the paper's PageRank: every vertex starts with 1/N, sends
// value/outdeg to its out-neighbours each iteration, and updates with the
// 0.85 damping rule. All vertices stay active for the whole run, so the
// reduction ratio is nearly constant across iterations (Figure 1(c)).
func PageRank(g *graphgen.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	e := newEngine(g.Out, g.N, cfg, func(a, b float64) float64 { return a + b })
	n := float64(g.N)
	for v := range e.value {
		e.value[v] = 1 / n
	}
	return e.run("pagerank", func(e *engine, step int, v int32, hasMsg bool, msg float64) bool {
		if step > 0 {
			sum := 0.0
			if hasMsg {
				sum = msg
			}
			e.value[v] = 0.15/n + 0.85*sum
		}
		out := e.adj[v]
		if len(out) > 0 {
			share := e.value[v] / float64(len(out))
			for _, u := range out {
				e.send(v, u, share)
			}
		}
		return true // PageRank vertices never halt within the run
	})
}

// SSSP runs single-source shortest paths with unit edge weights from src.
// Message volume starts tiny and grows with the frontier, so the reduction
// ratio climbs over iterations (Figure 1(c)).
func SSSP(g *graphgen.Graph, src int, cfg Config) (*Result, error) {
	if src < 0 || src >= g.N {
		return nil, fmt.Errorf("pregel: source %d outside [0, %d)", src, g.N)
	}
	cfg = cfg.withDefaults()
	e := newEngine(g.Out, g.N, cfg, math.Min)
	for v := range e.value {
		e.value[v] = math.Inf(1)
	}
	e.value[src] = 0
	for v := range e.active {
		e.active[v] = v == src
	}
	res := e.run("sssp", func(e *engine, step int, v int32, hasMsg bool, msg float64) bool {
		improved := false
		if step == 0 && e.value[v] == 0 {
			improved = true // the source fires its first round
		}
		if hasMsg && msg < e.value[v] {
			e.value[v] = msg
			improved = true
		}
		if improved {
			d := e.value[v] + 1
			for _, u := range e.adj[v] {
				e.send(v, u, d)
			}
		}
		return false // halt until the next message
	})
	return res, nil
}

// WCC runs weakly-connected components by min-label propagation over the
// undirected view. Everyone broadcasts initially and traffic decays as
// labels converge, so the reduction ratio starts high and falls
// (Figure 1(c)).
func WCC(g *graphgen.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	und := g.Und()
	e := newEngine(und, g.N, cfg, math.Min)
	for v := range e.value {
		e.value[v] = float64(v)
	}
	return e.run("wcc", func(e *engine, step int, v int32, hasMsg bool, msg float64) bool {
		if step == 0 {
			for _, u := range e.adj[v] {
				e.send(v, u, e.value[v])
			}
			return false
		}
		if hasMsg && msg < e.value[v] {
			e.value[v] = msg
			for _, u := range e.adj[v] {
				e.send(v, u, e.value[v])
			}
		}
		return false
	})
}
